#include "hard/extract.h"

namespace softsched::hard {

schedule extract_schedule(core::threaded_graph& state) {
  schedule s;
  s.start = state.asap_start_times();
  s.unit.assign(s.start.size(), -1);
  const auto& g = state.source_graph();
  for (const vertex_id v : g.vertices())
    if (state.scheduled(v)) s.unit[v.value()] = state.thread_of(v);
  s.makespan = state.diameter();
  return s;
}

} // namespace softsched::hard
