#include "util/json_parse.h"

#include <charconv>
#include <cmath>

namespace softsched {

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& message) {
  throw json_error("json: offset " + std::to_string(offset) + ": " + message);
}

/// Recursive-descent parser over a string_view with an explicit cursor.
class parser {
public:
  explicit parser(std::string_view text) : text_(text) {}

  json_value parse_document() {
    json_value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters after JSON value");
    return v;
  }

private:
  static constexpr int max_depth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  json_value parse_value(int depth) {
    if (depth > max_depth) fail(pos_, "nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
    case '{': return parse_object(depth);
    case '[': return parse_array(depth);
    case '"': return json_value::make_string(parse_string());
    case 't':
      if (consume_literal("true")) return json_value::make_bool(true);
      fail(pos_, "invalid literal");
    case 'f':
      if (consume_literal("false")) return json_value::make_bool(false);
      fail(pos_, "invalid literal");
    case 'n':
      if (consume_literal("null")) return json_value::make_null();
      fail(pos_, "invalid literal");
    default: return parse_number();
    }
  }

  json_value parse_object(int depth) {
    expect('{');
    std::vector<std::pair<std::string, json_value>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return json_value::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail(pos_, "expected string key");
      std::string key = parse_string();
      for (const auto& [existing, value] : members)
        if (existing == key) fail(pos_, "duplicate key '" + key + "'");
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == '}') break;
      if (next != ',') fail(pos_ - 1, "expected ',' or '}' in object");
    }
    return json_value::make_object(std::move(members));
  }

  json_value parse_array(int depth) {
    expect('[');
    std::vector<json_value> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return json_value::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == ']') break;
      if (next != ',') fail(pos_ - 1, "expected ',' or ']' in array");
    }
    return json_value::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) fail(pos_ - 1, "control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': append_unicode_escape(out); break;
      default: fail(pos_ - 1, "invalid escape");
      }
    }
    return out;
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail(pos_, "truncated \\u escape");
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail(pos_ - 1, "invalid \\u escape");
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // Surrogate pair: the low half must follow immediately.
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
        fail(pos_, "unpaired surrogate");
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail(pos_, "invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail(pos_, "unpaired surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  json_value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t first = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      return pos_ > first;
    };
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_; // no leading zeros before further digits
    } else if (!digits()) {
      fail(start, "invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail(pos_, "digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (!digits()) fail(pos_, "digits required in exponent");
    }
    // from_chars, not strtod: JSON numbers are locale-independent, and a
    // host application may have set LC_NUMERIC to a comma-decimal locale.
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0;
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec == std::errc::result_out_of_range || !std::isfinite(value))
      fail(start, "number out of range");
    if (ec != std::errc() || end != token.data() + token.size())
      fail(start, "invalid number");
    return json_value::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

} // namespace

bool json_value::as_bool() const {
  if (kind_ != kind::boolean) throw json_error("json: expected a boolean");
  return bool_;
}

double json_value::as_number() const {
  if (kind_ != kind::number) throw json_error("json: expected a number");
  return number_;
}

const std::string& json_value::as_string() const {
  if (kind_ != kind::string) throw json_error("json: expected a string");
  return string_;
}

long long json_value::as_integer(long long lo, long long hi) const {
  // Range-check as a double BEFORE casting: long long <- out-of-range
  // double is undefined behavior, and hostile inputs like 1e30 must come
  // back as a json_error, not a sanitizer abort. Callers pass bounds well
  // within 2^53, where the double comparisons are exact.
  const double d = as_number();
  if (!(d >= static_cast<double>(lo) && d <= static_cast<double>(hi)))
    throw json_error("json: number " + std::to_string(d) + " outside [" +
                     std::to_string(lo) + ", " + std::to_string(hi) + "]");
  const long long i = static_cast<long long>(d);
  if (static_cast<double>(i) != d)
    throw json_error("json: expected an integer, got " + std::to_string(d));
  return i;
}

const std::vector<json_value>& json_value::items() const {
  if (kind_ != kind::array) throw json_error("json: expected an array");
  return items_;
}

const std::vector<std::pair<std::string, json_value>>& json_value::members() const {
  if (kind_ != kind::object) throw json_error("json: expected an object");
  return members_;
}

const json_value* json_value::find(std::string_view key) const {
  if (kind_ != kind::object) return nullptr;
  for (const auto& [name, value] : members_)
    if (name == key) return &value;
  return nullptr;
}

json_value json_value::make_bool(bool b) {
  json_value v;
  v.kind_ = kind::boolean;
  v.bool_ = b;
  return v;
}

json_value json_value::make_number(double d) {
  json_value v;
  v.kind_ = kind::number;
  v.number_ = d;
  return v;
}

json_value json_value::make_string(std::string s) {
  json_value v;
  v.kind_ = kind::string;
  v.string_ = std::move(s);
  return v;
}

json_value json_value::make_array(std::vector<json_value> items) {
  json_value v;
  v.kind_ = kind::array;
  v.items_ = std::move(items);
  return v;
}

json_value json_value::make_object(std::vector<std::pair<std::string, json_value>> members) {
  json_value v;
  v.kind_ = kind::object;
  v.members_ = std::move(members);
  return v;
}

json_value parse_json(std::string_view text) { return parser(text).parse_document(); }

} // namespace softsched
