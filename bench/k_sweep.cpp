// k_sweep - resource sweep: schedule length vs. unit count for every
// benchmark, threaded scheduler (meta 4) against the list scheduler. The
// reproduction target is the shape: both converge to the critical path as
// units grow, and track each other at every point.
#include <iostream>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "graph/distances.h"
#include "hard/list_scheduler.h"
#include "ir/benchmarks.h"
#include "meta/meta_schedule.h"
#include "util/table.h"

namespace sg = softsched::graph;
namespace sc = softsched::core;
namespace si = softsched::ir;
namespace sh = softsched::hard;
namespace sm = softsched::meta;

int main() {
  const si::resource_library lib;
  std::cout << "Latency vs. unit count (K ALUs + K multipliers), threaded\n"
            << "(meta sched4) vs. list; cp = dependence-only lower bound\n\n";
  softsched::table tbl;
  tbl.set_header({"BM", "cp", "K", "threaded", "list"});
  for (const si::dfg& d : si::figure3_benchmarks(lib)) {
    const long long cp = sg::compute_distances(d.graph()).diameter;
    for (int k = 1; k <= 6; ++k) {
      const si::resource_set rs{k, k, 1};
      sc::threaded_graph state = sc::make_hls_state(d, rs);
      state.schedule_all(sm::meta_schedule(d.graph(), sm::meta_kind::list_priority));
      tbl.add_row({d.name(), softsched::cell(cp), softsched::cell(k),
                   softsched::cell(state.diameter()),
                   softsched::cell(sh::list_schedule(d, rs).makespan)});
    }
    tbl.add_separator();
  }
  tbl.print(std::cout);
  return 0;
}
