// check.h - lightweight contract-checking helpers.
//
// The library uses exceptions for *user-facing* precondition violations
// (malformed graphs, out-of-range ids, infeasible constraints) so that a
// downstream tool embedding the scheduler can recover, and keeps internal
// invariants as assertions that also fire in release builds (EDA runs are
// long; silent corruption is worse than an abort).
#pragma once

#include <stdexcept>
#include <string>

namespace softsched {

/// Thrown when a caller violates a documented precondition of the public API.
class precondition_error : public std::logic_error {
public:
  explicit precondition_error(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an input graph is structurally invalid (e.g. cyclic).
class graph_error : public std::runtime_error {
public:
  explicit graph_error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a scheduling problem is infeasible under the given resources.
class infeasible_error : public std::runtime_error {
public:
  explicit infeasible_error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file, int line,
                                            const std::string& msg) {
  throw precondition_error(std::string(file) + ":" + std::to_string(line) +
                           ": precondition failed: " + expr + (msg.empty() ? "" : " - " + msg));
}
} // namespace detail

} // namespace softsched

/// Precondition check that throws softsched::precondition_error on failure.
#define SOFTSCHED_EXPECT(expr, msg)                                                    \
  do {                                                                                 \
    if (!(expr)) ::softsched::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
