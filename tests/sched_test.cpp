// sched_test.cpp - the scheduler-backend registry (src/sched) and the
// backend threading through serve and explore:
//
//   * registry lookup, stable indices, capability flags;
//   * parity: every backend produces a legal schedule (precedence +
//     resource constraints via the shared hard::validate_schedule checker)
//     on the named benchmarks, bounded below by the critical path and
//     above by the serial sum of delays;
//   * the Figure-3 shape: soft tracks the list scheduler within one state
//     on the paper's first two resource constraints;
//   * determinism: repeat runs are bit-identical per backend;
//   * serve: the backend lands in the cache key (identical designs under
//     different backends never share an entry), mixed-backend request
//     streams stay deterministic across worker counts and cache sizes,
//     and unknown backends error field-level at parse time;
//   * explore: the backend axis emits per-backend Pareto frontiers,
//     identical for any worker count.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "explore/dse.h"
#include "graph/distances.h"
#include "hard/schedule.h"
#include "ir/benchmarks.h"
#include "ir/dfg_hash.h"
#include "sched/backend.h"
#include "serve/engine.h"
#include "util/check.h"

namespace ss = softsched::sched;
namespace se = softsched::explore;
namespace sh = softsched::hard;
namespace si = softsched::ir;
namespace sg = softsched::graph;
namespace sv = softsched::serve;
namespace sm = softsched::meta;
using softsched::infeasible_error;
using softsched::precondition_error;

namespace {

const char* const named_benchmarks[] = {"hal", "arf", "ewf", "fir8"};

long long serial_bound(const si::dfg& d) {
  long long total = 0;
  for (const sg::vertex_id v : d.graph().vertices()) total += d.graph().delay(v);
  return total;
}

/// One run on a fresh default (arena-backed) context - the plain spelling
/// most tests want; context reuse and arena/heap parity get their own
/// tests below.
ss::backend_outcome run_once(const ss::scheduler_backend& backend, const si::dfg& d,
                             const si::resource_library& lib,
                             const si::resource_set& rs,
                             const ss::backend_options& opt = {}) {
  ss::run_context ctx;
  return backend.run({d, lib, rs, opt}, ctx);
}

} // namespace

// -- registry ---------------------------------------------------------------

TEST(SchedRegistry, NamesLookupAndStableIndices) {
  EXPECT_EQ(ss::backend_names(),
            (std::vector<std::string>{"soft", "list", "fds", "sdc-iter"}));
  ASSERT_EQ(ss::registered_backends().size(), 4u);
  for (const char* name : {"soft", "list", "fds", "sdc-iter"}) {
    const ss::scheduler_backend* b = ss::find_backend(name);
    ASSERT_NE(b, nullptr) << name;
    EXPECT_EQ(b->name(), name);
    EXPECT_EQ(&ss::get_backend(name), b);
  }
  // Registry indices feed the serve cache salt: pinned, append-only.
  EXPECT_EQ(ss::backend_index("soft"), 0);
  EXPECT_EQ(ss::backend_index("list"), 1);
  EXPECT_EQ(ss::backend_index("fds"), 2);
  EXPECT_EQ(ss::backend_index("sdc-iter"), 3);
  EXPECT_EQ(ss::backend_index("threaded"), -1);
  EXPECT_EQ(ss::find_backend("threaded"), nullptr);
}

TEST(SchedRegistry, UnknownNameThrowsListingBackends) {
  try {
    (void)ss::get_backend("simulated-annealing");
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("simulated-annealing"), std::string::npos);
    EXPECT_NE(what.find("soft|list|fds|sdc-iter"), std::string::npos);
  }
}

TEST(SchedRegistry, CapabilityFlags) {
  const ss::backend_caps soft = ss::get_backend("soft").caps();
  EXPECT_TRUE(soft.binds_units);
  EXPECT_TRUE(soft.uses_meta);
  EXPECT_TRUE(soft.refinable);
  EXPECT_FALSE(soft.time_constrained);

  const ss::backend_caps list = ss::get_backend("list").caps();
  EXPECT_TRUE(list.binds_units);
  EXPECT_FALSE(list.uses_meta);
  EXPECT_FALSE(list.refinable);

  const ss::backend_caps fds = ss::get_backend("fds").caps();
  EXPECT_FALSE(fds.binds_units);
  EXPECT_TRUE(fds.time_constrained);
  EXPECT_FALSE(fds.iterative);

  // sdc-iter is the first backend to set `iterative`; it consumes the meta
  // order (its base run is the soft kernel) and tightens latency targets.
  const ss::backend_caps iter = ss::get_backend("sdc-iter").caps();
  EXPECT_TRUE(iter.binds_units);
  EXPECT_TRUE(iter.uses_meta);
  EXPECT_TRUE(iter.time_constrained);
  EXPECT_TRUE(iter.iterative);
  EXPECT_FALSE(iter.refinable);
  for (const ss::scheduler_backend* b : ss::registered_backends())
    EXPECT_EQ(b->caps().iterative, b->name() == "sdc-iter") << b->name();
}

// -- parity: legality on the named benchmarks -------------------------------

TEST(SchedParity, EveryBackendLegalOnNamedBenchmarks) {
  const si::resource_library lib;
  for (const char* name : named_benchmarks) {
    const si::dfg d = si::make_benchmark(name, lib);
    const long long critical = sg::compute_distances(d.graph()).diameter;
    // Figure 3's first two constraint columns; the third (2+/-,1*) is where
    // the FDS heuristic's peak plateaus - covered separately below.
    for (const int constraint : {0, 1}) {
      const si::resource_set rs = si::figure3_constraint(constraint);
      for (const ss::scheduler_backend* backend : ss::registered_backends()) {
        const ss::backend_outcome r = run_once(*backend, d, lib, rs);
        ASSERT_TRUE(r.feasible) << name << " " << rs.label() << " "
                                << backend->name() << ": " << r.infeasible_reason;
        EXPECT_GE(r.latency, critical) << name << " " << backend->name();
        EXPECT_LE(r.latency, serial_bound(d)) << name << " " << backend->name();
        ASSERT_EQ(r.start_times.size(), d.op_count());
        ASSERT_EQ(r.unit_of.size(), d.op_count());
        // The shared checker: precedence feasibility + class-wise
        // concurrency limits, one implementation for every backend.
        const auto violations = sh::validate_schedule(d, ss::to_hard_schedule(r), &rs);
        EXPECT_TRUE(violations.empty())
            << name << " " << rs.label() << " " << backend->name() << ": "
            << (violations.empty() ? "" : violations.front());
        for (const int u : r.unit_of) {
          if (backend->caps().binds_units)
            EXPECT_GE(u, 0) << backend->name();
          else
            EXPECT_EQ(u, -1) << backend->name();
        }
      }
    }
  }
}

TEST(SchedParity, SoftTracksListWithinOneStateOnFigure3Constraints) {
  // The paper's Figure 3 claim: threaded soft scheduling with the
  // list-priority meta order tracks the hard list scheduler. Both are
  // bounded below by the critical path; soft never trails by more than one
  // state on the first two constraint columns.
  const si::resource_library lib;
  const ss::scheduler_backend& soft = ss::get_backend("soft");
  const ss::scheduler_backend& list = ss::get_backend("list");
  for (const char* name : named_benchmarks) {
    const si::dfg d = si::make_benchmark(name, lib);
    for (const int constraint : {0, 1}) {
      const si::resource_set rs = si::figure3_constraint(constraint);
      const ss::backend_outcome s = run_once(soft, d, lib, rs);
      const ss::backend_outcome l = run_once(list, d, lib, rs);
      ASSERT_TRUE(s.feasible && l.feasible) << name;
      EXPECT_LE(s.latency, l.latency + 1) << name << " " << rs.label();
    }
  }
}

TEST(SchedParity, ZeroUnitAllocationIsAnOutcomeNotAnException) {
  const si::resource_library lib;
  const si::dfg d = si::make_benchmark("ewf", lib);
  const si::resource_set no_muls{2, 0, 1};
  for (const ss::scheduler_backend* backend : ss::registered_backends()) {
    const ss::backend_outcome r = run_once(*backend, d, lib, no_muls);
    EXPECT_FALSE(r.feasible) << backend->name();
    EXPECT_FALSE(r.infeasible_reason.empty()) << backend->name();
    EXPECT_EQ(r.latency, -1) << backend->name();
  }
}

TEST(SchedParity, FdsReportsUnreachableAllocationInsteadOfIllegalSchedule) {
  // This FDS implementation's one-level forces plateau at peak 2 on EWF,
  // so 2+/-,1* is unreachable for any budget: the backend must say so
  // rather than return a schedule violating the allocation.
  const si::resource_library lib;
  const si::dfg d = si::make_benchmark("ewf", lib);
  const ss::backend_outcome r =
      run_once(ss::get_backend("fds"), d, lib, si::figure3_constraint(2));
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.infeasible_reason.find("peak usage exceeds"), std::string::npos);
}

TEST(SchedParity, FdsExplicitBudgetRunsOnceAndChecksTheAllocation) {
  const si::resource_library lib;
  const si::dfg d = si::make_benchmark("hal", lib);
  const si::resource_set rs = si::figure3_constraint(0);
  ss::backend_options opt;
  opt.fds_latency = 12; // comfortably above HAL's critical path of 6
  const ss::backend_outcome r = run_once(ss::get_backend("fds"), d, lib, rs, opt);
  ASSERT_TRUE(r.feasible) << r.infeasible_reason;
  EXPECT_EQ(r.latency, sh::validate_schedule(d, ss::to_hard_schedule(r), &rs).empty()
                           ? r.latency
                           : -1); // legal at the explicit budget
  EXPECT_LE(r.latency, 12);

  // A budget below the critical path is infeasible, not a throw.
  opt.fds_latency = 3;
  const ss::backend_outcome tight = run_once(ss::get_backend("fds"), d, lib, rs, opt);
  EXPECT_FALSE(tight.feasible);
  EXPECT_FALSE(tight.infeasible_reason.empty());
}

TEST(SchedParity, RepeatRunsAreBitIdenticalPerBackend) {
  const si::resource_library lib;
  const si::dfg d = si::make_benchmark("arf", lib);
  const si::resource_set rs = si::figure3_constraint(0);
  for (const ss::scheduler_backend* backend : ss::registered_backends()) {
    const ss::backend_outcome a = run_once(*backend, d, lib, rs);
    const ss::backend_outcome b = run_once(*backend, d, lib, rs);
    EXPECT_TRUE(a.same_outcome(b)) << backend->name();
  }
}

// -- the run_request/run_context API ----------------------------------------

TEST(SchedContext, OneContextReusedAcrossRunsMatchesFreshContexts) {
  // The per-worker reuse story: one context carried across designs,
  // allocations and backends (arena rewound between runs) must produce
  // exactly what a fresh context produces every time.
  const si::resource_library lib;
  ss::run_context shared;
  std::uint64_t expected_runs = 0;
  for (const char* name : named_benchmarks) {
    const si::dfg d = si::make_benchmark(name, lib);
    for (const int constraint : {0, 1}) {
      const si::resource_set rs = si::figure3_constraint(constraint);
      for (const ss::scheduler_backend* backend : ss::registered_backends()) {
        const ss::backend_outcome reused = backend->run({d, lib, rs, {}}, shared);
        const ss::backend_outcome fresh = run_once(*backend, d, lib, rs);
        EXPECT_TRUE(reused.same_outcome(fresh))
            << name << " " << rs.label() << " " << backend->name();
        ++expected_runs;
      }
    }
  }
  // At least one begin_run per backend run; iterative backends begin one
  // more per internal re-scheduling iteration, so >= rather than ==.
  EXPECT_GE(shared.runs(), expected_runs);
}

TEST(SchedContext, ArenaOffMatchesArenaOn) {
  // arena_mode::off is the cross-validated heap baseline: same outcome,
  // different memory source. Both contexts are reused across runs so the
  // comparison also covers steady-state reuse.
  const si::resource_library lib;
  ss::run_context with_arena(ss::arena_mode::on);
  ss::run_context heap(ss::arena_mode::off);
  ASSERT_TRUE(with_arena.arena_enabled());
  ASSERT_FALSE(heap.arena_enabled());
  EXPECT_EQ(heap.arena(), nullptr);
  for (const char* name : named_benchmarks) {
    const si::dfg d = si::make_benchmark(name, lib);
    const si::resource_set rs = si::figure3_constraint(0);
    for (const ss::scheduler_backend* backend : ss::registered_backends()) {
      const ss::backend_outcome a = backend->run({d, lib, rs, {}}, with_arena);
      const ss::backend_outcome h = backend->run({d, lib, rs, {}}, heap);
      EXPECT_TRUE(a.same_outcome(h)) << name << " " << backend->name();
    }
  }
  // The arena really was in play: blocks were carved and recycled.
  const softsched::util::arena_stats* st = with_arena.arena_stats();
  ASSERT_NE(st, nullptr);
  EXPECT_GT(st->allocations, 0u);
  EXPECT_GT(st->resets, 0u);
  EXPECT_EQ(heap.arena_stats(), nullptr);
}

TEST(SchedContext, SoftAccumulatesKernelStatsIntoTheContext) {
  const si::resource_library lib;
  const si::dfg d = si::make_benchmark("ewf", lib);
  const si::resource_set rs = si::figure3_constraint(0);
  ss::run_context ctx;
  const ss::backend_outcome once = ss::get_backend("soft").run({d, lib, rs, {}}, ctx);
  ASSERT_TRUE(once.feasible);
  EXPECT_EQ(ctx.totals.commits, once.stats.commits);
  (void)ss::get_backend("soft").run({d, lib, rs, {}}, ctx);
  EXPECT_EQ(ctx.totals.commits, 2 * once.stats.commits);
}

// -- the cache-key salt -----------------------------------------------------

TEST(SchedSalt, MetaEntersOnlyForMetaConsumingBackends) {
  constexpr sm::meta_kind metas[] = {sm::meta_kind::depth_first,
                                     sm::meta_kind::topological,
                                     sm::meta_kind::path_based,
                                     sm::meta_kind::list_priority};
  std::set<std::uint64_t> distinct;
  for (const ss::scheduler_backend* backend : ss::registered_backends()) {
    std::set<std::uint64_t> per_backend;
    for (const sm::meta_kind meta : metas) {
      const std::uint64_t salt = ss::backend_option_salt(*backend, meta);
      EXPECT_NE(salt, 0u);
      per_backend.insert(salt);
      distinct.insert(salt);
    }
    // Soft consumes the meta order, so every meta is a distinct schedule
    // and a distinct key; list/fds ignore it, so all metas share one cache
    // entry instead of scheduling identical results four times.
    EXPECT_EQ(per_backend.size(), backend->caps().uses_meta ? 4u : 1u)
        << backend->name();
  }
  // 4 soft + 1 list + 1 fds + 4 sdc-iter, no collisions.
  EXPECT_EQ(distinct.size(), 10u);
  // The soft salts are the pre-registry meta salts (meta + 1): cache keys
  // for soft requests survived the refactor unchanged.
  EXPECT_EQ(ss::backend_option_salt(ss::get_backend("soft"),
                                    sm::meta_kind::depth_first),
            1u);
  EXPECT_EQ(ss::backend_option_salt(ss::get_backend("soft"),
                                    sm::meta_kind::list_priority),
            4u);
}

TEST(SchedSalt, LegacyKeyValuesSurviveTheBudgetWidening) {
  // The PR 5 key values are pinned bit-for-bit: a warm cache (RAM or disk)
  // built before the salt gained budget bits must keep hitting.
  EXPECT_EQ(ss::backend_option_salt(ss::get_backend("soft"),
                                    sm::meta_kind::depth_first),
            1u);
  EXPECT_EQ(ss::backend_option_salt(ss::get_backend("soft"),
                                    sm::meta_kind::topological),
            2u);
  EXPECT_EQ(ss::backend_option_salt(ss::get_backend("soft"),
                                    sm::meta_kind::path_based),
            3u);
  EXPECT_EQ(ss::backend_option_salt(ss::get_backend("soft"),
                                    sm::meta_kind::list_priority),
            4u);
  EXPECT_EQ(ss::backend_option_salt(ss::get_backend("list"),
                                    sm::meta_kind::list_priority),
            257u);
  EXPECT_EQ(ss::backend_option_salt(ss::get_backend("fds"),
                                    sm::meta_kind::list_priority),
            513u);
  // And the budget cannot leak into a non-iterative backend's salt.
  for (const char* name : {"soft", "list", "fds"}) {
    const ss::scheduler_backend& b = ss::get_backend(name);
    EXPECT_EQ(ss::backend_option_salt(b, sm::meta_kind::list_priority, 0),
              ss::backend_option_salt(b, sm::meta_kind::list_priority, 7))
        << name;
  }
}

TEST(SchedSalt, BudgetVariantsGetDistinctSaltsForIterativeBackends) {
  const ss::scheduler_backend& iter = ss::get_backend("sdc-iter");
  std::set<std::uint64_t> salts;
  for (const long long budget : {0LL, 1LL, 2LL, 8LL, 1024LL})
    salts.insert(ss::backend_option_salt(iter, sm::meta_kind::list_priority, budget));
  EXPECT_EQ(salts.size(), 5u); // every budget its own cache key
  // -1 resolves to the default budget before salting: the default and its
  // explicit spelling share one entry instead of scheduling twice.
  EXPECT_EQ(ss::backend_option_salt(iter, sm::meta_kind::list_priority, -1),
            ss::backend_option_salt(iter, sm::meta_kind::list_priority,
                                    ss::sdc_iter_default_budget));
  // Meta still enters underneath the budget bits.
  EXPECT_NE(ss::backend_option_salt(iter, sm::meta_kind::depth_first, 4),
            ss::backend_option_salt(iter, sm::meta_kind::list_priority, 4));
}

// -- sdc-iter: the feedback-guided iterative backend -------------------------

TEST(SchedIter, BudgetZeroEqualsSoftByteForByte) {
  // The base run is the shared soft kernel itself, so budget 0 is not
  // "close to" soft - it is soft, down to the kernel counters.
  const si::resource_library lib;
  const ss::scheduler_backend& soft = ss::get_backend("soft");
  const ss::scheduler_backend& iter = ss::get_backend("sdc-iter");
  ss::backend_options zero;
  zero.iter_budget = 0;
  for (const char* name : named_benchmarks) {
    const si::dfg d = si::make_benchmark(name, lib);
    for (const int constraint : {0, 1}) {
      const si::resource_set rs = si::figure3_constraint(constraint);
      for (const sm::meta_kind meta : sm::figure3_meta_kinds) {
        ss::backend_options soft_opt;
        soft_opt.meta = meta;
        ss::backend_options iter_opt = zero;
        iter_opt.meta = meta;
        const ss::backend_outcome a = run_once(soft, d, lib, rs, soft_opt);
        const ss::backend_outcome b = run_once(iter, d, lib, rs, iter_opt);
        EXPECT_TRUE(a.same_outcome(b))
            << name << " " << rs.label() << " meta " << static_cast<int>(meta);
      }
    }
  }
}

TEST(SchedIter, QoRIsMonotoneNonWorseningInTheBudget) {
  // The incumbent-best loop makes per-iteration QoR monotone: a larger
  // budget can only extend the search, never lose the incumbent. Budget 0
  // anchors the sweep at the soft latency.
  const si::resource_library lib;
  const ss::scheduler_backend& iter = ss::get_backend("sdc-iter");
  for (const char* name : named_benchmarks) {
    const si::dfg d = si::make_benchmark(name, lib);
    for (const int constraint : {0, 1}) {
      const si::resource_set rs = si::figure3_constraint(constraint);
      long long previous = -1;
      for (long long budget = 0; budget <= 8; ++budget) {
        ss::backend_options opt;
        opt.iter_budget = budget;
        const ss::backend_outcome r = run_once(iter, d, lib, rs, opt);
        ASSERT_TRUE(r.feasible) << name << " " << rs.label();
        EXPECT_LE(r.iterations, budget);
        if (previous >= 0)
          EXPECT_LE(r.latency, previous)
              << name << " " << rs.label() << " budget " << budget;
        previous = r.latency;
      }
    }
  }
}

TEST(SchedIter, ReachesAFixedPointWellWithinALargeBudget) {
  // The loop stops when a full variant cycle cannot improve the incumbent -
  // reported iterations must sit far under an absurd budget, and pushing
  // the budget further must not change the outcome (it is a fixed point,
  // not a timeout).
  const si::resource_library lib;
  const ss::scheduler_backend& iter = ss::get_backend("sdc-iter");
  for (const char* name : named_benchmarks) {
    const si::dfg d = si::make_benchmark(name, lib);
    for (const int constraint : {0, 1}) {
      const si::resource_set rs = si::figure3_constraint(constraint);
      ss::backend_options big;
      big.iter_budget = ss::sdc_iter_max_budget;
      const ss::backend_outcome at_max = run_once(iter, d, lib, rs, big);
      ASSERT_TRUE(at_max.feasible) << name;
      EXPECT_LT(at_max.iterations, 64) << name << " " << rs.label();
      ss::backend_options half;
      half.iter_budget = ss::sdc_iter_max_budget / 2;
      const ss::backend_outcome at_half = run_once(iter, d, lib, rs, half);
      EXPECT_TRUE(at_max.same_outcome(at_half)) << name << " " << rs.label();
    }
  }
}

TEST(SchedIter, InfeasibleProblemsFoldBackAsOutcomesNeverThrows) {
  // Zero-unit allocations and starved classes are outcomes, exactly like
  // every other backend - the internal sub-scheduling must never leak an
  // infeasible_error out of run().
  const si::resource_library lib;
  const ss::scheduler_backend& iter = ss::get_backend("sdc-iter");
  const si::dfg d = si::make_benchmark("ewf", lib);
  for (const int alus : {0, 1}) {
    for (const int muls : {0, 1}) {
      const si::resource_set rs{alus, muls, 1};
      ss::backend_outcome r;
      EXPECT_NO_THROW(r = run_once(iter, d, lib, rs)) << rs.label();
      if (alus == 0 || muls == 0) {
        EXPECT_FALSE(r.feasible) << rs.label();
        EXPECT_FALSE(r.infeasible_reason.empty());
        EXPECT_EQ(r.iterations, 0);
      } else {
        EXPECT_TRUE(r.feasible) << rs.label();
      }
    }
  }
}

TEST(SchedIter, StrictlyBeatsSoftOnThePinnedCase) {
  // The acceptance pin: HAL under 2 ALUs / 1 multiplier. Soft lands at 14
  // states, the default-budget feedback loop unpacks it to 13 (the list
  // scheduler's latency) - the first case where iteration pays.
  const si::resource_library lib;
  const si::dfg d = si::make_benchmark("hal", lib);
  const si::resource_set rs{2, 1, 1};
  const ss::backend_outcome soft = run_once(ss::get_backend("soft"), d, lib, rs);
  const ss::backend_outcome iter = run_once(ss::get_backend("sdc-iter"), d, lib, rs);
  ASSERT_TRUE(soft.feasible);
  ASSERT_TRUE(iter.feasible);
  EXPECT_EQ(soft.latency, 14);
  EXPECT_EQ(iter.latency, 13);
  EXPECT_GE(iter.iterations, 1);
  // And the improved schedule is still legal under the shared checker.
  const auto violations =
      sh::validate_schedule(d, ss::to_hard_schedule(iter), &rs);
  EXPECT_TRUE(violations.empty());
}

TEST(SchedIter, NeverWorseThanSoftAcrossTheNamedGrid) {
  // The acceptance sweep: every named benchmark x allocation grid point,
  // default budget - sdc-iter's latency is bounded by soft's everywhere
  // (the incumbent argument), checked exhaustively rather than trusted.
  const si::resource_library lib;
  const ss::scheduler_backend& soft = ss::get_backend("soft");
  const ss::scheduler_backend& iter = ss::get_backend("sdc-iter");
  for (const char* name : named_benchmarks) {
    const si::dfg d = si::make_benchmark(name, lib);
    for (int alus = 1; alus <= 3; ++alus) {
      for (int muls = 1; muls <= 3; ++muls) {
        const si::resource_set rs{alus, muls, 1};
        const ss::backend_outcome s = run_once(soft, d, lib, rs);
        const ss::backend_outcome it = run_once(iter, d, lib, rs);
        ASSERT_EQ(s.feasible, it.feasible) << name << " " << rs.label();
        if (!s.feasible) continue;
        EXPECT_LE(it.latency, s.latency) << name << " " << rs.label();
        const auto violations =
            sh::validate_schedule(d, ss::to_hard_schedule(it), &rs);
        EXPECT_TRUE(violations.empty()) << name << " " << rs.label();
      }
    }
  }
}

// -- serve ------------------------------------------------------------------

namespace {

std::vector<sv::response> collect(sv::engine& eng, const std::string& text) {
  std::istringstream in(text);
  return eng.run_collect(in);
}

} // namespace

TEST(SchedServe, IdenticalDesignsUnderDifferentBackendsGetDistinctKeys) {
  sv::engine eng;
  const std::vector<sv::response> rs = collect(
      eng, "{\"bench\":\"ewf\"}\n"
           "{\"bench\":\"ewf\",\"backend\":\"soft\"}\n"
           "{\"bench\":\"ewf\",\"backend\":\"list\"}\n"
           "{\"bench\":\"ewf\",\"backend\":\"fds\"}\n"
           "{\"bench\":\"ewf\",\"backend\":\"list\",\"meta\":\"dfs\"}\n");
  ASSERT_EQ(rs.size(), 5u);
  for (const sv::response& r : rs) ASSERT_TRUE(r.error.empty()) << r.error;
  // Default backend is soft: lines 1 and 2 share one key (and dedup).
  EXPECT_EQ(rs[0].key, rs[1].key);
  EXPECT_EQ(rs[0].backend, "soft");
  // Distinct backends never share a cache entry.
  EXPECT_NE(rs[1].key, rs[2].key);
  EXPECT_NE(rs[1].key, rs[3].key);
  EXPECT_NE(rs[2].key, rs[3].key);
  // The meta order is ignored by hard backends, so it does not fragment
  // their cache entries: list+dfs coalesces onto list+default.
  EXPECT_EQ(rs[4].key, rs[2].key);
  // And the schedules really came from different schedulers: the list
  // backend binds units, fds does not, soft carries kernel stats.
  EXPECT_EQ(rs[2].backend, "list");
  ASSERT_TRUE(rs[2].result.feasible);
  for (const int u : rs[2].result.unit_of) EXPECT_GE(u, 0);
  ASSERT_TRUE(rs[3].result.feasible);
  for (const int u : rs[3].result.unit_of) EXPECT_EQ(u, -1);
  EXPECT_GT(rs[0].result.stats.commits, 0u);
  EXPECT_EQ(rs[2].result.stats.commits, 0u);
}

TEST(SchedServe, BudgetSweepsAndMixedBatchesNeverCoalesceInTheCache) {
  // The widened-salt regression: a budget sweep against sdc-iter gets one
  // cache entry per budget, -1/default/explicit-8 share exactly one, and a
  // mixed-backend batch over one design keeps every backend distinct.
  sv::engine eng;
  const std::vector<sv::response> rs = collect(
      eng, "{\"bench\":\"hal\",\"backend\":\"sdc-iter\",\"iter_budget\":0}\n"
           "{\"bench\":\"hal\",\"backend\":\"sdc-iter\",\"iter_budget\":1}\n"
           "{\"bench\":\"hal\",\"backend\":\"sdc-iter\",\"iter_budget\":4}\n"
           "{\"bench\":\"hal\",\"backend\":\"sdc-iter\"}\n"
           "{\"bench\":\"hal\",\"backend\":\"sdc-iter\",\"iter_budget\":8}\n"
           "{\"bench\":\"hal\",\"backend\":\"soft\"}\n"
           "{\"bench\":\"hal\",\"backend\":\"list\"}\n"
           "{\"bench\":\"hal\",\"backend\":\"fds\"}\n");
  ASSERT_EQ(rs.size(), 8u);
  for (const sv::response& r : rs) ASSERT_TRUE(r.error.empty()) << r.error;
  // Budgets 0, 1, 4, default: four distinct keys.
  const std::set<si::dfg_digest> budget_keys{rs[0].key, rs[1].key, rs[2].key,
                                             rs[3].key};
  EXPECT_EQ(budget_keys.size(), 4u);
  // Default (-1) and explicit 8 coalesce onto one entry.
  EXPECT_EQ(rs[3].key, rs[4].key);
  // Mixed backends on the same design never share an entry, including the
  // new one: 4 backends, 4 keys (sdc-iter keyed at its default budget).
  const std::set<si::dfg_digest> backend_keys{rs[3].key, rs[5].key, rs[6].key,
                                              rs[7].key};
  EXPECT_EQ(backend_keys.size(), 4u);
  // Budget 0 really served the soft schedule, at its own key.
  EXPECT_EQ(rs[0].result.latency, rs[5].result.latency);
  EXPECT_NE(rs[0].key, rs[5].key);
}

TEST(SchedServe, IterBudgetOnAOneShotBackendIsAFieldLevelParseError) {
  sv::engine eng;
  const std::vector<sv::response> rs = collect(
      eng, "{\"bench\":\"ewf\",\"backend\":\"list\",\"iter_budget\":4}\n"
           "{\"bench\":\"ewf\",\"iter_budget\":4}\n"
           "{\"bench\":\"ewf\",\"backend\":\"sdc-iter\",\"iter_budget\":2000}\n"
           "{\"bench\":\"ewf\",\"backend\":\"sdc-iter\",\"iter_budget\":-1}\n");
  ASSERT_EQ(rs.size(), 4u);
  // A budget against a one-shot backend (explicit or defaulted soft) is a
  // request error, not a silently identical schedule.
  EXPECT_NE(rs[0].error.find("iter_budget"), std::string::npos);
  EXPECT_NE(rs[0].error.find("iterative"), std::string::npos);
  EXPECT_NE(rs[1].error.find("iter_budget"), std::string::npos);
  // Out-of-range budgets are range errors; -1 is not accepted on the wire
  // (omit the field for the default).
  EXPECT_NE(rs[2].error.find("iter_budget"), std::string::npos);
  EXPECT_NE(rs[3].error.find("iter_budget"), std::string::npos);
}

TEST(SchedServe, UnknownBackendIsAFieldLevelParseError) {
  sv::engine eng;
  const std::vector<sv::response> rs =
      collect(eng, "{\"bench\":\"ewf\",\"backend\":\"threaded\"}\n");
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_NE(rs[0].error.find("backend"), std::string::npos);
  EXPECT_NE(rs[0].error.find("threaded"), std::string::npos);
  EXPECT_NE(rs[0].error.find("soft|list|fds|sdc-iter"), std::string::npos);
}

TEST(SchedServe, MixedBackendStreamDeterministicAcrossJobsAndCacheSizes) {
  // The acceptance property with the backend axis mixed in: responses are
  // payload-identical for any worker count and any cache budget, on a
  // stream that interleaves backends, repeats designs across backends, and
  // includes an error line.
  std::string text;
  for (int i = 0; i < 3; ++i)
    for (const char* backend : {"soft", "list", "fds", "sdc-iter"})
      text += "{\"id\":\"q" + std::to_string(i) + std::string(backend) +
              "\",\"bench\":\"hal\",\"backend\":\"" + backend +
              "\",\"alus\":" + std::to_string(2 + i) + ",\"muls\":2}\n";
  text += "{\"bench\":\"ewf\",\"backend\":\"list\"}\n";
  text += "{\"bench\":\"ewf\",\"backend\":\"nope\"}\n";

  sv::engine_options ref_opt;
  ref_opt.jobs = 1;
  sv::engine reference(ref_opt);
  const std::vector<sv::response> ref = collect(reference, text);
  ASSERT_EQ(ref.size(), 14u);

  for (const int jobs : {1, 4}) {
    for (const std::size_t cache_bytes : {std::size_t{0}, std::size_t{64} << 20}) {
      sv::engine_options opt;
      opt.jobs = jobs;
      opt.cache_bytes = cache_bytes;
      sv::engine eng(opt);
      const std::vector<sv::response> got = collect(eng, text);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_TRUE(ref[i].same_payload(got[i]))
            << "jobs=" << jobs << " cache=" << cache_bytes << " line " << i + 1;
    }
  }

  // A hot re-run serves from the cache and still emits identical payloads.
  const std::vector<sv::response> hot = collect(reference, text);
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_TRUE(ref[i].same_payload(hot[i])) << "hot line " << i + 1;
  EXPECT_GT(reference.counters().cache_hits, 0u);
}

// -- explore ----------------------------------------------------------------

namespace {

se::grid_spec small_ewf_grid() {
  se::grid_spec spec;
  spec.design.bench = "ewf";
  spec.alus = {2, 3};
  spec.muls = {1, 2};
  spec.mems = {1, 1};
  spec.mul_latency = {2, 2};
  return spec;
}

} // namespace

TEST(SchedExplore, BackendAxisEmitsPerBackendFrontiers) {
  const se::grid_spec spec = small_ewf_grid();
  se::exploration_options opt;
  opt.jobs = 2;
  opt.backends = {"soft", "list"};
  const se::exploration_result r = se::run_exploration(spec, opt);

  ASSERT_EQ(r.backends, (std::vector<std::string>{"soft", "list"}));
  const std::size_t grid = se::point_count(spec);
  ASSERT_EQ(r.points.size(), 2 * grid);
  ASSERT_EQ(r.frontiers.size(), 2u);
  EXPECT_EQ(r.frontier, r.frontiers[0]);
  EXPECT_FALSE(r.frontiers[0].empty());
  EXPECT_FALSE(r.frontiers[1].empty());
  // Backend-major blocks: grid order repeats per backend, frontier indices
  // stay inside their backend's block.
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    EXPECT_EQ(r.points[i].backend, i < grid ? "soft" : "list");
    EXPECT_EQ(r.points[i].point.index, static_cast<int>(i % grid));
  }
  for (const int i : r.frontiers[0]) EXPECT_LT(static_cast<std::size_t>(i), grid);
  for (const int i : r.frontiers[1]) {
    EXPECT_GE(static_cast<std::size_t>(i), grid);
    EXPECT_LT(static_cast<std::size_t>(i), 2 * grid);
  }
}

TEST(SchedExplore, BackendAxisDeterministicAcrossWorkerCounts) {
  const se::grid_spec spec = small_ewf_grid();
  se::exploration_options one;
  one.jobs = 1;
  one.backends = {"soft", "list", "fds"};
  se::exploration_options eight = one;
  eight.jobs = 8;
  const se::exploration_result a = se::run_exploration(spec, one);
  const se::exploration_result b = se::run_exploration(spec, eight);
  EXPECT_TRUE(a.same_outcome(b));
}

TEST(SchedExplore, DefaultOptionsStaySoftOnly) {
  const se::grid_spec spec = small_ewf_grid();
  const se::exploration_result r = se::run_exploration(spec, {.jobs = 2});
  EXPECT_EQ(r.backends, std::vector<std::string>{"soft"});
  ASSERT_EQ(r.frontiers.size(), 1u);
  EXPECT_EQ(r.frontier, r.frontiers[0]);
  for (const se::point_result& p : r.points) EXPECT_EQ(p.backend, "soft");
}

TEST(SchedExplore, UnknownBackendThrowsBeforeAnyPointRuns) {
  se::exploration_options opt;
  opt.backends = {"soft", "annealer"};
  EXPECT_THROW((void)se::run_exploration(small_ewf_grid(), opt), precondition_error);
}

TEST(SchedExplore, DuplicateBackendThrows) {
  // A repeated name would double the grid and emit a report whose
  // "frontiers" object carries the same key twice - invalid JSON by the
  // repo's own strict-parser contract.
  se::exploration_options opt;
  opt.backends = {"soft", "list", "soft"};
  EXPECT_THROW((void)se::run_exploration(small_ewf_grid(), opt), precondition_error);
}
