#include "graph/reachability.h"

#include <algorithm>
#include <bit>

#include "graph/topo.h"
#include "util/check.h"

namespace softsched::graph {

transitive_closure::transitive_closure(const precedence_graph& g, util::arena* a)
    : bits_(util::arena_allocator<std::uint64_t>(a)) {
  build(g);
}

void transitive_closure::rebuild(const precedence_graph& g) { build(g); }

void transitive_closure::build(const precedence_graph& g) {
  n_ = g.vertex_count();
  words_ = (n_ + 63) / 64;
  bits_.assign(n_ * words_, 0); // reuses capacity on a rebuild
  // Process vertices in reverse topological order; each row is the union of
  // successor rows plus the vertex itself.
  const std::vector<vertex_id> order = topological_order(g);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t u = it->value();
    set_bit(u, u);
    for (const vertex_id w : g.succs(*it)) {
      const std::size_t row_u = u * words_;
      const std::size_t row_w = w.value() * words_;
      for (std::size_t i = 0; i < words_; ++i) bits_[row_u + i] |= bits_[row_w + i];
    }
  }
}

std::size_t transitive_closure::pair_count() const {
  std::size_t total = 0;
  for (const std::uint64_t word : bits_) total += static_cast<std::size_t>(std::popcount(word));
  return total - n_; // subtract the reflexive diagonal
}

void transitive_closure::widen_rows(std::size_t new_words) {
  util::arena_vector<std::uint64_t> wide(n_ * new_words, 0, bits_.get_allocator());
  for (std::size_t r = 0; r < n_; ++r)
    std::copy_n(bits_.begin() + static_cast<std::ptrdiff_t>(r * words_), words_,
                wide.begin() + static_cast<std::ptrdiff_t>(r * new_words));
  bits_ = std::move(wide);
  words_ = new_words;
}

void transitive_closure::add_vertex() {
  const std::size_t needed = (n_ + 1 + 63) / 64;
  if (needed > words_) widen_rows(std::max(needed, words_ * 2));
  bits_.resize((n_ + 1) * words_, 0);
  set_bit(n_, n_);
  ++n_;
}

std::size_t transitive_closure::add_edge(vertex_id u, vertex_id v) {
  SOFTSCHED_EXPECT(u.valid() && v.valid() && u.value() < n_ && v.value() < n_,
                   "closure add_edge: vertex out of range");
  if (bit(u.value(), v.value())) return 0; // already ordered; nothing to propagate
  if (bit(v.value(), u.value()))
    throw graph_error("incremental closure: edge would close a cycle");
  std::size_t touched = 0;
  const std::uint64_t* src = bits_.data() + static_cast<std::size_t>(v.value()) * words_;
  for (std::size_t r = 0; r < n_; ++r) {
    if (!bit(r, u.value())) continue; // r does not reach the edge's tail
    // Rows already containing v also contain v's whole row (the update
    // always ORs complete rows), so the OR below would be a no-op.
    if (bit(r, v.value())) continue;
    std::uint64_t* dst = bits_.data() + r * words_;
    for (std::size_t i = 0; i < words_; ++i) dst[i] |= src[i];
    ++touched;
  }
  return touched;
}

std::size_t transitive_closure::grow_from(const precedence_graph& g, graph_cursor& cursor) {
  SOFTSCHED_EXPECT(cursor.rebuild_epoch == g.rebuild_epoch(),
                   "closure grow_from: graph shrank since the cursor (rebuild required)");
  SOFTSCHED_EXPECT(cursor.vertices == n_, "closure grow_from: cursor describes another closure");
  const auto log = g.edge_log();
  SOFTSCHED_EXPECT(cursor.edges_logged <= log.size(),
                   "closure grow_from: cursor is ahead of the edge log");
  std::size_t touched = 0;
  while (n_ < g.vertex_count()) {
    add_vertex();
    ++touched;
  }
  for (std::size_t i = cursor.edges_logged; i < log.size(); ++i)
    touched += add_edge(log[i].first, log[i].second);
  cursor = g.cursor();
  return touched;
}

bool transitive_closure::equals(const transitive_closure& other) const {
  if (n_ != other.n_) return false;
  const std::size_t live = (n_ + 63) / 64;
  for (std::size_t r = 0; r < n_; ++r) {
    const std::uint64_t* a = bits_.data() + r * words_;
    const std::uint64_t* b = other.bits_.data() + r * other.words_;
    if (!std::equal(a, a + live, b)) return false;
  }
  return true;
}

} // namespace softsched::graph
