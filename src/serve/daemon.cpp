#include "serve/daemon.h"

#include "serve/protocol.h"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/json.h"
#include "util/json_parse.h"

namespace softsched::serve {

namespace {

using clock_type = std::chrono::steady_clock;

double millis_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - t0).count();
}

void sleep_ms(double ms) {
  if (ms > 0)
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// Same bounds as the engine's source memo (engine.h): the memo is a
/// recognition shortcut, not the capacity story.
constexpr std::size_t memo_entry_limit = 1 << 16;

unsigned parse_fault_index(std::string_view text, std::string_view rule) {
  bool ok = !text.empty() && text.size() <= 6;
  unsigned value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      ok = false;
      break;
    }
    value = value * 10 + static_cast<unsigned>(c - '0');
  }
  SOFTSCHED_EXPECT(ok, "fault spec: bad target index in rule '" + std::string(rule) + "'");
  return value;
}

double parse_fault_delay(std::string_view text, std::string_view rule) {
  bool ok = !text.empty();
  double value = 0;
  if (ok) {
    try {
      std::size_t used = 0;
      value = std::stod(std::string(text), &used);
      ok = used == text.size() && value >= 0;
    } catch (const std::exception&) {
      ok = false;
    }
  }
  SOFTSCHED_EXPECT(ok, "fault spec: bad delay_ms in rule '" + std::string(rule) + "'");
  return value;
}

} // namespace

fault_plan fault_plan::parse(std::string_view spec) {
  fault_plan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::size_t end = comma == std::string_view::npos ? spec.size() : comma;
    const std::string_view rule = spec.substr(pos, end - pos);
    pos = end + 1;
    if (rule.empty()) continue;

    std::vector<std::string_view> segments;
    std::size_t seg = 0;
    while (seg <= rule.size()) {
      const std::size_t colon = rule.find(':', seg);
      const std::size_t seg_end = colon == std::string_view::npos ? rule.size() : colon;
      segments.push_back(rule.substr(seg, seg_end - seg));
      seg = seg_end + 1;
    }
    SOFTSCHED_EXPECT(segments.size() >= 2,
                     "fault spec: rule '" + std::string(rule) +
                         "' needs <target>:<action> (e.g. slot=0:delay_ms=5)");

    const std::string_view target = segments[0];
    const bool is_io = target.substr(0, 3) == "io=";
    const bool is_conn = target.substr(0, 5) == "conn=";
    if (is_conn) {
      // Connection rules have their own action vocabulary: drop / stall_ms.
      conn_fault_action action;
      for (std::size_t a = 1; a < segments.size(); ++a) {
        const std::string_view part = segments[a];
        if (part == "drop") {
          action.drop = true;
        } else if (part.substr(0, 9) == "stall_ms=") {
          action.stall_ms = parse_fault_delay(part.substr(9), rule);
        } else {
          SOFTSCHED_EXPECT(false, "fault spec: unknown conn action '" + std::string(part) +
                                      "' in rule '" + std::string(rule) +
                                      "' (expected drop or stall_ms=<float>)");
        }
      }
      plan.conns[parse_fault_index(target.substr(5), rule)] = action;
      continue;
    }
    disk_fault_action action; // superset: slot/shard rules use delay/fail only
    for (std::size_t a = 1; a < segments.size(); ++a) {
      const std::string_view part = segments[a];
      if (part == "fail") {
        action.fail = true;
      } else if (part == "torn") {
        SOFTSCHED_EXPECT(is_io, "fault spec: action 'torn' only applies to io=<n> targets "
                                "(rule '" + std::string(rule) + "')");
        action.torn = true;
      } else if (part.substr(0, 9) == "delay_ms=") {
        action.delay_ms = parse_fault_delay(part.substr(9), rule);
      } else {
        SOFTSCHED_EXPECT(false, "fault spec: unknown action '" + std::string(part) +
                                    "' in rule '" + std::string(rule) + "'");
      }
    }
    if (target.substr(0, 5) == "slot=") {
      plan.slots[parse_fault_index(target.substr(5), rule)] =
          fault_action{action.delay_ms, action.fail};
    } else if (target.substr(0, 6) == "shard=") {
      plan.shards[parse_fault_index(target.substr(6), rule)] =
          fault_action{action.delay_ms, action.fail};
    } else if (is_io) {
      plan.io.ops[parse_fault_index(target.substr(3), rule)] = action;
    } else {
      SOFTSCHED_EXPECT(false, "fault spec: unknown target '" + std::string(target) +
                                  "' (expected slot=<n>, shard=<n>, io=<n> or conn=<n>)");
    }
  }
  return plan;
}

fault_plan fault_plan::from_env() {
  const char* spec = std::getenv("SOFTSCHED_INJECT");
  if (spec == nullptr || *spec == '\0') return {};
  return parse(spec);
}

service::service(const service_options& options)
    : options_(options),
      jobs_(options.jobs < 1 ? thread_pool::hardware_workers()
                             : static_cast<unsigned>(options.jobs)),
      cache_(options.cache_bytes, options.cache_shards),
      started_at_(clock_type::now()) {
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
  if (!options_.cache_dir.empty() && options_.disk_cache_bytes > 0) {
    disk_cache_options disk;
    disk.directory = options_.cache_dir;
    disk.byte_budget = options_.disk_cache_bytes;
    disk.flush_queue_capacity = std::max<std::size_t>(options_.disk_flush_queue, 1);
    disk.faults = options_.faults.io;
    disk_ = std::make_unique<disk_cache>(disk);
  }
  pool_ = std::make_unique<thread_pool>(jobs_);
  const auto mode = options_.arena ? sched::arena_mode::on : sched::arena_mode::off;
  const std::size_t block = options_.arena_block_bytes > 0
                                ? options_.arena_block_bytes
                                : util::arena::default_block_bytes;
  contexts_.reserve(jobs_ + 1);
  for (unsigned i = 0; i <= jobs_; ++i)
    contexts_.push_back(std::make_unique<sched::run_context>(mode, block));
}

sched::run_context& service::context_for_current_thread() noexcept {
  const int worker = thread_pool::current_worker_index();
  return *contexts_[worker >= 0 ? static_cast<std::size_t>(worker) : jobs_];
}

service::~service() {
  drain();
  pool_.reset();
}

bool service::submit(std::uint64_t seq, std::string text, callback done) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t depth = queue_depth_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (depth > options_.queue_capacity) {
    // Shed, don't queue: the rollback leaves admission state exactly as if
    // this request never arrived, and the caller answers "overloaded".
    queue_depth_.fetch_sub(1, std::memory_order_acq_rel);
    overloaded_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::size_t peak = peak_queue_depth_.load(std::memory_order_relaxed);
  while (depth > peak &&
         !peak_queue_depth_.compare_exchange_weak(peak, depth, std::memory_order_relaxed)) {
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  const auto admitted_at = clock_type::now();
  pool_->submit([this, seq, text = std::move(text), done = std::move(done), admitted_at] {
    process(seq, text, done, admitted_at);
  });
  return true;
}

response service::overloaded_response(std::uint64_t seq) const {
  response r;
  r.line = seq;
  r.id = "line" + std::to_string(seq);
  r.error = "overloaded";
  r.retry_after_ms = options_.retry_after_ms;
  return r;
}

void service::complete(response r, const callback& done,
                       clock_type::time_point admitted_at) {
  latency_.record(millis_since(admitted_at));
  if (done) done(std::move(r));
  {
    // completed_ advances under the drain mutex so drain()'s predicate and
    // the notify can never miss each other.
    const std::lock_guard<std::mutex> lock(drain_mutex_);
    completed_.fetch_add(1, std::memory_order_release);
    queue_depth_.fetch_sub(1, std::memory_order_acq_rel);
  }
  drained_.notify_all();
}

void service::drain() {
  const std::uint64_t target = admitted_.load(std::memory_order_acquire);
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drained_.wait(lock,
                [&] { return completed_.load(std::memory_order_acquire) >= target; });
}

std::size_t service::flush_disk() { return disk_ != nullptr ? disk_->flush() : 0; }

source_info service::lookup_source(const request& req) {
  const std::string sig = req.source_signature();
  {
    const std::lock_guard<std::mutex> lock(memo_mutex_);
    const auto it = source_memo_.find(sig);
    if (it != source_memo_.end()) return it->second;
  }
  // Hash outside the lock (the expensive part); first publisher wins, a
  // concurrent duplicate hash of the same source is wasted work, not a bug.
  source_info info = hash_request_source(req);
  const std::lock_guard<std::mutex> lock(memo_mutex_);
  if (source_memo_.size() > memo_entry_limit ||
      source_memo_bytes_ > std::max<std::size_t>(options_.cache_bytes, 8ull << 20)) {
    source_memo_.clear();
    source_memo_bytes_ = 0;
  }
  const auto [it, inserted] = source_memo_.try_emplace(sig, info);
  if (inserted)
    source_memo_bytes_ += sig.size() + info.error.size() +
                          info.canonical_of.size() * sizeof(std::uint32_t) +
                          sizeof(source_info) + 64;
  return info;
}

void service::process(std::uint64_t seq, const std::string& text, const callback& done,
                      clock_type::time_point admitted_at) {
  response r;
  r.line = seq;
  r.id = "line" + std::to_string(seq);
  try {
    // -- worker-slot injection: a pure function of the sequence number, so
    //    tests can target "the request that lands on slot 0" regardless of
    //    which pool thread actually runs it ---------------------------------
    const unsigned slot = static_cast<unsigned>((seq > 0 ? seq - 1 : 0) % jobs_);
    const auto slot_rule = options_.faults.slots.find(slot);
    if (slot_rule != options_.faults.slots.end()) {
      sleep_ms(slot_rule->second.delay_ms);
      if (slot_rule->second.fail) {
        r.error = "injected fault: worker slot " + std::to_string(slot);
        errors_.fetch_add(1, std::memory_order_relaxed);
        complete(std::move(r), done, admitted_at);
        return;
      }
    }

    // -- parse ---------------------------------------------------------------
    request req;
    try {
      req = parse_request_line(text);
    } catch (const json_error& e) {
      r.error = e.what();
      errors_.fetch_add(1, std::memory_order_relaxed);
      complete(std::move(r), done, admitted_at);
      return;
    }
    if (!req.id.empty()) r.id = req.id;
    r.backend = req.backend;

    // -- canonical hash (memoized) + cache key -------------------------------
    const source_info source = lookup_source(req);
    if (!source.error.empty()) {
      r.error = source.error;
      errors_.fetch_add(1, std::memory_order_relaxed);
      complete(std::move(r), done, admitted_at);
      return;
    }
    r.key = schedule_key_for(req, source.digest);

    // -- shard injection: a failed shard is *unavailable*, not fatal - its
    //    lookups miss and its inserts are dropped, so requests keep being
    //    served (recomputed), just degraded --------------------------------
    bool shard_available = true;
    double shard_delay = 0;
    if (!options_.faults.shards.empty()) {
      const auto rule = options_.faults.shards.find(cache_.shard_index(r.key));
      if (rule != options_.faults.shards.end()) {
        shard_available = !rule->second.fail;
        shard_delay = rule->second.delay_ms;
      }
    }

    // -- join or lead the in-flight computation ------------------------------
    std::shared_future<flight_ptr> joined;
    std::promise<flight_ptr> promise;
    bool leader = false;
    {
      const std::lock_guard<std::mutex> lock(flight_mutex_);
      const auto it = flights_.find(r.key);
      if (it != flights_.end()) {
        joined = it->second;
      } else {
        joined = promise.get_future().share();
        flights_.emplace(r.key, joined);
        leader = true;
      }
    }

    if (!leader) {
      // A flight exists only while its leader is actively running (it
      // registers inside its own job), so this wait always terminates. The
      // result comes straight off the flight - never a cache re-lookup,
      // which would miss when the value was oversize-rejected.
      const flight_ptr outcome = joined.get();
      if (!outcome->error.empty()) {
        r.error = outcome->error;
        errors_.fetch_add(1, std::memory_order_relaxed);
      } else {
        r.result = result_to_source_order(*outcome->result, source.canonical_of);
        deduped_.fetch_add(1, std::memory_order_relaxed);
      }
      complete(std::move(r), done, admitted_at);
      return;
    }

    // -- leader: cache consult, compute on miss, publish ---------------------
    flight f;
    bool from_cache = false;
    double compute_ms = 0;
    try {
      sleep_ms(shard_delay);
      schedule_cache::result_ptr cached;
      if (shard_available) cached = cache_.lookup(r.key);
      if (cached == nullptr && disk_ != nullptr) {
        // Read-through: a RAM miss consults the persistent tier; a disk
        // hit is promoted so the next ask is a RAM hit. The disk tier is
        // global (not sharded), so an injected shard failure only blocks
        // the promotion, never the read.
        cached = disk_->lookup(r.key);
        if (cached != nullptr && shard_available) cache_.insert(r.key, cached);
      }
      if (cached != nullptr) {
        from_cache = true;
        f.result = std::move(cached);
      } else {
        const auto t0 = clock_type::now();
        f.result = std::make_shared<const schedule_result>(compute_canonical_schedule(
            req, source.canonical_of, context_for_current_thread()));
        compute_ms = millis_since(t0);
        if (shard_available) cache_.insert(r.key, f.result);
        if (disk_ != nullptr) disk_->enqueue(r.key, f.result); // write-behind
      }
    } catch (const std::exception& e) {
      f.error = e.what();
      f.result = nullptr;
    }
    const flight_ptr published = std::make_shared<const flight>(std::move(f));
    {
      const std::lock_guard<std::mutex> lock(flight_mutex_);
      flights_.erase(r.key);
    }
    promise.set_value(published);

    if (!published->error.empty()) {
      r.error = published->error;
      errors_.fetch_add(1, std::memory_order_relaxed);
    } else {
      r.result = result_to_source_order(*published->result, source.canonical_of);
      if (from_cache) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        computed_.fetch_add(1, std::memory_order_relaxed);
        r.ms = compute_ms;
      }
    }
    complete(std::move(r), done, admitted_at);
  } catch (const std::exception& e) {
    // Pool jobs must not throw; any unexpected escape becomes an error
    // response so the request still completes and drain() still terminates.
    r.error = std::string("serve: internal error: ") + e.what();
    r.result = {};
    errors_.fetch_add(1, std::memory_order_relaxed);
    complete(std::move(r), done, admitted_at);
  }
}

service_stats service::stats() const {
  service_stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.overloaded = overloaded_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.computed = computed_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.deduped = deduped_.load(std::memory_order_relaxed);
  s.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  s.peak_queue_depth = peak_queue_depth_.load(std::memory_order_relaxed);
  s.uptime_ms = millis_since(started_at_);
  s.qps = s.uptime_ms > 0 ? static_cast<double>(s.completed) / (s.uptime_ms / 1e3) : 0;
  s.p50_ms = latency_.percentile(50);
  s.p95_ms = latency_.percentile(95);
  s.p99_ms = latency_.percentile(99);
  const std::uint64_t served = s.completed - std::min(s.errors, s.completed);
  s.hit_rate = served > 0
                   ? static_cast<double>(s.cache_hits + s.deduped) / static_cast<double>(served)
                   : 0;
  if (disk_ != nullptr) {
    const disk_cache_counters d = disk_->counters();
    s.disk_enabled = true;
    s.disk_degraded = d.degraded;
    s.disk_hits = d.hits;
    s.disk_misses = d.misses;
    s.disk_writes = d.writes;
    s.disk_evictions = d.evictions;
    s.disk_corrupt_dropped = d.corrupt_dropped;
    s.disk_io_errors = d.io_errors;
    s.disk_queue_dropped = d.queue_dropped;
    s.disk_flushed = d.flushed;
    s.disk_entries = d.entries;
    s.disk_bytes = d.bytes;
    s.disk_recovery_scan_ms = d.recovery_scan_ms;
    s.disk_recovered_entries = d.recovered_entries;
  }
  return s;
}

namespace {

std::string render_response(const response& r, bool emit_schedule) {
  std::ostringstream oss;
  write_response_line(oss, r, emit_schedule);
  return std::move(oss).str();
}

/// Serializes response frames either immediately (streaming) or through a
/// reorder buffer that releases strictly by sequence number (input-order
/// mode). Control frames (stats, transport errors, the shutdown ack)
/// always bypass the reorder buffer - they answer "now", not "in turn".
/// A failed write (peer gone) is sticky: subsequent frames are counted as
/// produced but silently discarded, so workers finishing after the client
/// died still complete and the connection still drains.
struct frame_writer {
  frame_writer(byte_stream& o, bool order_responses) : out(o), ordered(order_responses) {}

  byte_stream& out;
  bool ordered;
  std::mutex mutex;
  std::uint64_t next_seq = 1;
  std::map<std::uint64_t, std::string> held;
  std::uint64_t written = 0;
  bool failed = false;

  void send(std::string_view payload) {
    if (!failed && !write_frame(out, payload)) failed = true;
    ++written;
  }

  void emit(std::uint64_t seq, std::string payload) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (!ordered) {
      send(payload);
      return;
    }
    held.emplace(seq, std::move(payload));
    while (!held.empty() && held.begin()->first == next_seq) {
      send(held.begin()->second);
      held.erase(held.begin());
      ++next_seq;
    }
  }

  void control(std::string_view payload) {
    const std::lock_guard<std::mutex> lock(mutex);
    send(payload);
  }
};

/// Per-connection drain: serve_connection must wait for *its own* admitted
/// requests only, so one dead or slow connection can never make another
/// connection's drain wait on it (service::drain() is global). Incremented
/// before submit, decremented by the completion callback (or by the
/// submitter itself when the request was shed and the callback will never
/// fire).
struct pending_gate {
  std::mutex mutex;
  std::condition_variable done;
  std::size_t outstanding = 0;

  void arm() {
    const std::lock_guard<std::mutex> lock(mutex);
    ++outstanding;
  }
  void disarm() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      --outstanding;
    }
    done.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mutex);
    done.wait(lock, [&] { return outstanding == 0; });
  }
};

} // namespace

connection_summary serve_connection(byte_stream& stream, service& svc,
                                    const connection_options& options,
                                    connection_counters* counters) {
  connection_summary summary;
  frame_writer writer(stream, options.ordered);
  pending_gate pending;
  const bool emit_schedule = options.emit_schedule;
  std::uint64_t seq = 0;

  for (;;) {
    frame_read frame = read_frame(stream, options.limits);
    if (frame.status == frame_status::eof) break;
    if (frame.status == frame_status::error) {
      // Framing is unrecoverable on this stream - after a malformed frame
      // we no longer know where the next one starts, so resynchronizing
      // silently would risk misattributing payloads. Answer once, stop
      // reading *this connection*, drain it, close. Other connections on
      // the same service are untouched.
      summary.end = connection_end::transport_error;
      if (counters != nullptr)
        counters->transport_errors.fetch_add(1, std::memory_order_relaxed);
      response r;
      r.id = "transport";
      r.error = frame.error;
      writer.control(render_response(r, emit_schedule));
      break;
    }
    ++summary.frames;

    const control_frame control = classify_control(frame.payload);
    if (control.kind != control_kind::none) {
      switch (control.kind) {
      case control_kind::hello:
        writer.control(render_hello());
        break;
      case control_kind::stats: {
        connection_counters_snapshot conns =
            counters != nullptr ? snapshot(*counters) : connection_counters_snapshot{};
        connection_view self;
        self.frames = summary.frames;
        self.requests = summary.requests;
        self.bytes_in = stream.bytes_in();
        self.bytes_out = stream.bytes_out();
        self.transport = stream.label();
        // This connection's bytes fold into the aggregate only at close;
        // count the live ones so stats never under-reports the asker.
        conns.bytes_in += self.bytes_in;
        conns.bytes_out += self.bytes_out;
        writer.control(render_stats(svc.stats(), conns, self));
        break;
      }
      case control_kind::shutdown:
        summary.end = connection_end::shutdown_op;
        break; // drain below; the ack is this connection's final frame
      default:
        writer.control(render_unknown_op(control));
        break;
      }
      if (summary.end == connection_end::shutdown_op) break;
      continue;
    }

    const std::uint64_t this_seq = ++seq;
    ++summary.requests;
    pending.arm();
    const bool admitted = svc.submit(
        this_seq, std::move(frame.payload),
        [&writer, &pending, emit_schedule](response r) {
          writer.emit(r.line, render_response(r, emit_schedule));
          pending.disarm();
        });
    if (!admitted) {
      pending.disarm();
      writer.emit(this_seq, render_response(svc.overloaded_response(this_seq), emit_schedule));
    }
  }

  // Graceful drain: every request admitted on this connection answers
  // before it closes, whatever ended the read loop (EOF, shutdown,
  // transport error), and the write-behind queue is flushed to disk before
  // the final frame - a closing connection never strands warm entries.
  pending.wait();
  const std::size_t flushed = svc.flush_disk();
  if (summary.end == connection_end::shutdown_op)
    writer.control(render_shutdown_ack(flushed));
  summary.responses = writer.written;
  summary.write_failed = writer.failed;
  if (counters != nullptr) {
    counters->bytes_in.fetch_add(stream.bytes_in(), std::memory_order_relaxed);
    counters->bytes_out.fetch_add(stream.bytes_out(), std::memory_order_relaxed);
  }
  return summary;
}

daemon_summary run_daemon(std::istream& in, std::ostream& out,
                          const daemon_options& options) {
  daemon_summary summary;
  service svc(options.service);
  iostream_byte_stream stream(&in, &out);
  connection_counters counters;
  counters.transport = "stdio";
  counters.accepted.store(1, std::memory_order_relaxed);
  counters.active.store(1, std::memory_order_relaxed);

  connection_options copt;
  copt.ordered = options.ordered;
  copt.emit_schedule = options.service.emit_schedule;
  copt.limits = options.limits;
  const connection_summary conn = serve_connection(stream, svc, copt, &counters);
  // The connection gate releases when the last callback returns; the
  // service-level drain additionally orders the counter updates behind it,
  // so summary.stats below is a settled snapshot.
  svc.drain();

  counters.active.store(0, std::memory_order_relaxed);
  counters.closed.store(1, std::memory_order_relaxed);
  summary.frames = conn.frames;
  summary.requests = conn.requests;
  summary.responses = conn.responses;
  summary.shutdown_requested = conn.end == connection_end::shutdown_op;
  summary.transport_error = conn.end == connection_end::transport_error;
  summary.stats = svc.stats();
  summary.conns = snapshot(counters);
  return summary;
}

} // namespace softsched::serve
