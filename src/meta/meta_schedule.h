// meta_schedule.h - the meta schedule of Definition 2: the order in which
// operations are fed to the online scheduler. Section 5 evaluates four:
//
//   1. depth-first traversal of the precedence graph,
//   2. topological order,
//   3. path partition, paths fed longest-first,
//   4. a list-scheduling-like priority order.
//
// A random order is provided on top for the property tests and the
// meta-sensitivity ablation (bench/meta_ablation): soft scheduling must
// stay *correct* under any permutation; quality is what varies.
#pragma once

#include <string_view>
#include <vector>

#include "graph/precedence_graph.h"
#include "util/rng.h"

namespace softsched::meta {

using graph::precedence_graph;
using graph::vertex_id;

/// The meta schedules of the paper's Figure 3, plus `random`.
enum class meta_kind {
  depth_first,   ///< meta sched 1
  topological,   ///< meta sched 2
  path_based,    ///< meta sched 3
  list_priority, ///< meta sched 4
  random,        ///< extension: uniform random permutation
};

inline constexpr meta_kind figure3_meta_kinds[] = {
    meta_kind::depth_first, meta_kind::topological, meta_kind::path_based,
    meta_kind::list_priority};

/// Paper-style display name ("meta sched1" ... "meta sched4", "random").
[[nodiscard]] std::string_view meta_name(meta_kind kind) noexcept;

/// Computes the vertex order for a deterministic meta schedule. `kind`
/// must not be meta_kind::random (that overload needs an rng).
[[nodiscard]] std::vector<vertex_id> meta_schedule(const precedence_graph& g,
                                                   meta_kind kind);

/// Internal buffers of the allocation-free meta_schedule overload. One
/// instance per worker (it lives inside sched::run_context); reuse across
/// runs is what keeps the serve hot path heap-silent.
struct meta_scratch {
  std::vector<long long> tdist;
  std::vector<std::int32_t> topo;
  std::vector<std::int32_t> degree;
  std::vector<std::pair<long long, std::uint32_t>> heap;
};

/// Allocation-free variant: clears `out` and fills it with the same order
/// meta_schedule(g, kind) returns, reusing `out` and `scratch` capacity.
/// (list_priority runs entirely on the scratch buffers - it is the serve
/// default; the other kinds fall back to the allocating helpers.)
void meta_schedule(const precedence_graph& g, meta_kind kind, meta_scratch& scratch,
                   std::vector<vertex_id>& out);

/// Random meta order.
[[nodiscard]] std::vector<vertex_id> random_meta_schedule(const precedence_graph& g,
                                                          rng& rand);

/// Meta schedule 4 in isolation: topological order whose ready set is
/// prioritized by descending sink distance (critical-path-first), the same
/// priority the hard list scheduler uses - making Figure 3 an
/// equal-priority comparison.
[[nodiscard]] std::vector<vertex_id> list_priority_order(const precedence_graph& g);

} // namespace softsched::meta
