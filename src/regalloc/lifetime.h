// lifetime.h - value lifetimes over a hard schedule. The register
// allocation substrate of the paper's first phase-coupling scenario:
// "traditional HLS assumes all values can be fit into registers ...
// spilling has to be performed when the number of simultaneously alive
// values exceeds the number of registers available."
#pragma once

#include <vector>

#include "hard/schedule.h"
#include "ir/dfg.h"

namespace softsched::regalloc {

using graph::vertex_id;

/// One value = the result of one operation, alive from the cycle it is
/// produced until the start of its last consumer; primary outputs are
/// handed to the environment the cycle they are produced (one-cycle
/// lifetime).
struct value_lifetime {
  vertex_id producer;
  long long def = 0;      ///< first cycle the value exists (start + delay)
  long long last_use = 0; ///< exclusive end of the interval

  [[nodiscard]] long long length() const noexcept { return last_use - def; }
  [[nodiscard]] bool alive_at(long long cycle) const noexcept {
    return cycle >= def && cycle < last_use;
  }
};

/// Lifetimes of all values under a complete schedule. Store operations
/// produce no register value (their result lives in background memory) and
/// are skipped. Throws precondition_error on incomplete schedules.
[[nodiscard]] std::vector<value_lifetime> compute_lifetimes(const ir::dfg& d,
                                                            const hard::schedule& s);

/// Maximum number of simultaneously alive values (the register demand).
[[nodiscard]] int max_live(const std::vector<value_lifetime>& lifetimes);

/// A cycle at which max_live is attained (-1 when there are no values).
[[nodiscard]] long long peak_cycle(const std::vector<value_lifetime>& lifetimes);

} // namespace softsched::regalloc
