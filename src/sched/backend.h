// backend.h - the pluggable scheduler-backend layer: one uniform interface
// over the soft scheduler (core/threaded_graph, the paper's contribution)
// and the hard baselines (hard/list_scheduler, hard/force_directed), so
// every consumer - the CLI, the batch scheduling service, the DSE grid -
// can pick a scheduler by name and compare them head-to-head (the paper's
// Figure 1/3 story, generalized per docs/DESIGN.md §7).
//
// A backend is a stateless, deterministic strategy object:
//
//   run(run_request, run_context&) -> backend_outcome
//
// run_request (sched/run_context.h) aggregates the design, the library its
// delays were baked from, the unit allocation, and the per-run options.
// run_context is the caller-owned per-worker scratch object - arena plus
// staging buffers - the backend may burn through; it never changes the
// outcome, only its cost (arena on/off is byte-for-byte cross-validated).
// Outcomes use one shape - per-op start cycles, per-op unit binding
// (-1 = unbound, e.g. FDS), final latency in states, and the soft kernel's
// schedule_stats (zero for hard backends) - so results are directly
// comparable and cacheable.
//
// Registration is static: registered_backends() returns the fixed registry
// in a stable order, and each backend's registry index feeds the serve
// cache key salt (backend_option_salt). The index MUST therefore never be
// reordered within a release - see docs/DESIGN.md §7 for why the cache key
// has to include the backend at all.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/threaded_graph.h"
#include "hard/schedule.h"
#include "ir/dfg.h"
#include "ir/resource.h"
#include "meta/meta_schedule.h"
#include "sched/run_context.h"

namespace softsched::sched {

/// What a backend can and cannot do - consumers branch on capabilities,
/// never on backend names.
struct backend_caps {
  bool binds_units = true;  ///< emits a unit index per op (FDS does not)
  bool uses_meta = false;   ///< consumes the meta feed order (soft only)
  bool refinable = false;   ///< schedule stays soft / live-refinable
  bool time_constrained = false; ///< accepts an explicit latency budget (FDS)
};

/// The uniform scheduling outcome. Infeasible allocations are a reported
/// outcome, not an exception - every consumer (serve cache, DSE grid)
/// treats them as first-class results.
struct backend_outcome {
  bool feasible = false;
  std::string infeasible_reason;      ///< set iff !feasible
  long long latency = -1;             ///< makespan in states; -1 when infeasible
  std::vector<long long> start_times; ///< per-op start cycle (vertex-id order)
  std::vector<int> unit_of;           ///< per-op unit binding; -1 = unbound
  core::schedule_stats stats;         ///< soft kernel counters; zero for hard backends

  /// Value equality - the repeat-run determinism witness.
  [[nodiscard]] bool same_outcome(const backend_outcome& other) const;
};

/// A feasible outcome as a hard::schedule - the shape
/// hard::validate_schedule (the shared legality checker), write_gantt and
/// the register allocator consume.
[[nodiscard]] hard::schedule to_hard_schedule(const backend_outcome& outcome);

/// One scheduler strategy. Implementations are stateless and deterministic:
/// the outcome of run() is a pure function of the request - the context
/// only changes where scratch memory comes from - so outcomes are cacheable
/// by content (serve) and reproducible for any worker count (explore).
class scheduler_backend {
public:
  virtual ~scheduler_backend() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;
  [[nodiscard]] virtual backend_caps caps() const noexcept = 0;

  /// Schedules request.design under request.resources, staging all
  /// per-run state in `ctx` (calls ctx.begin_run() on entry, so the
  /// previous run's scratch is recycled). Must not throw on an infeasible
  /// allocation - that is an outcome. Throws graph_error on a cyclic
  /// input. `ctx` must not be shared across threads.
  [[nodiscard]] virtual backend_outcome run(const run_request& request,
                                            run_context& ctx) const = 0;
};

/// The registry, in stable registration order: soft (index 0), list (1),
/// fds (2). Index order is part of the serve cache-key contract.
[[nodiscard]] std::span<const scheduler_backend* const> registered_backends();

/// Lookup by name ("soft" | "list" | "fds"); nullptr when unknown.
[[nodiscard]] const scheduler_backend* find_backend(std::string_view name);

/// Lookup that throws precondition_error listing the registered names.
[[nodiscard]] const scheduler_backend& get_backend(std::string_view name);

/// Registry index of a backend (position in registered_backends()); -1
/// when unknown. Stable across runs - the serve cache salt depends on it.
[[nodiscard]] int backend_index(std::string_view name);

/// All registered names in registry order ("soft", "list", "fds").
[[nodiscard]] std::vector<std::string> backend_names();

/// The registered names joined as "soft|list|fds" - the one spelling every
/// unknown-backend error message uses (get_backend, the serve request
/// parser).
[[nodiscard]] std::string backend_names_joined();

/// The option salt the serve engine mixes into schedule_key: everything
/// the outcome depends on beyond graph + delays + allocation, i.e. which
/// backend ran and - only for backends whose caps().uses_meta - the feed
/// order. Backends that ignore the meta kind get one salt for every meta,
/// so a client sweeping meta orders against `list` hits one cache entry
/// instead of scheduling identical results N times. The salt is nonzero
/// for every (backend, meta) pair so "no salt" stays distinguishable, and
/// the soft backend with any meta produces the exact salts the
/// pre-registry engine used (cache keys for soft requests are unchanged
/// across the refactor). The arena mode of the context is deliberately
/// NOT in the salt: it cannot change the outcome.
[[nodiscard]] std::uint64_t backend_option_salt(const scheduler_backend& backend,
                                                meta::meta_kind meta);

} // namespace softsched::sched
