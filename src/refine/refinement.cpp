#include "refine/refinement.h"

#include <string>

#include "core/hls_binding.h"
#include "util/check.h"

namespace softsched::refine {

namespace {

std::string derived_name(const ir::dfg& d, vertex_id base, const char* prefix) {
  std::string name(prefix);
  name += '_';
  name += d.graph().name(base);
  return name;
}

} // namespace

std::vector<vertex_id> insert_spill_ops(ir::dfg& d, vertex_id value) {
  auto& g = d.graph();
  g.require_vertex(value);
  SOFTSCHED_EXPECT(d.kind(value) != ir::op_kind::store, "cannot spill a store result");
  SOFTSCHED_EXPECT(!g.succs(value).empty(), "spilling a value nobody consumes is pointless");

  std::vector<vertex_id> inserted;
  const vertex_id st =
      d.add_op(ir::op_kind::store, {value}, derived_name(d, value, "st"));
  inserted.push_back(st);

  // Snapshot the consumers before rewiring (the span invalidates on edits).
  std::vector<vertex_id> consumers;
  for (const vertex_id c : g.succs(value))
    if (c != st) consumers.push_back(c);

  // The rewires below are reach-preserving (value ->* c survives through the
  // store/load pair), so the scheduler's closure cache stays on its
  // incremental path instead of rebuilding per refinement.
  for (const vertex_id c : consumers) {
    g.remove_edge_reach_preserved(value, c);
    const vertex_id ld = d.add_op(ir::op_kind::load, {st}, derived_name(d, c, "ld"));
    g.add_edge(ld, c);
    inserted.push_back(ld);
  }
  return inserted;
}

vertex_id insert_wire_op(ir::dfg& d, vertex_id from, vertex_id to, int delay) {
  auto& g = d.graph();
  SOFTSCHED_EXPECT(g.has_edge(from, to), "wire refinement needs an existing dependence");
  g.remove_edge_reach_preserved(from, to); // replaced by from -> wd -> to
  const vertex_id wd = d.add_wire(delay, {from}, derived_name(d, to, "wd"));
  g.add_edge(wd, to);
  return wd;
}

vertex_id insert_move_op(ir::dfg& d, vertex_id from, vertex_id to) {
  auto& g = d.graph();
  SOFTSCHED_EXPECT(g.has_edge(from, to), "move refinement needs an existing dependence");
  g.remove_edge_reach_preserved(from, to); // replaced by from -> mv -> to
  const vertex_id mv = d.add_op(ir::op_kind::move, {from}, derived_name(d, to, "mv"));
  g.add_edge(mv, to);
  return mv;
}

refinement_report apply_spill(ir::dfg& d, core::threaded_graph& state, vertex_id value) {
  SOFTSCHED_EXPECT(state.scheduled(value), "spill refinement targets a scheduled value");
  refinement_report report;
  report.diameter_before = state.diameter();
  const std::vector<vertex_id> inserted = insert_spill_ops(d, value);
  for (const vertex_id v : inserted) state.schedule(v);
  report.ops_inserted = inserted.size();
  report.diameter_after = state.diameter();
  return report;
}

refinement_report apply_wire_delay(ir::dfg& d, core::threaded_graph& state,
                                   vertex_id from, vertex_id to, int delay) {
  refinement_report report;
  report.diameter_before = state.diameter();
  const vertex_id wd = insert_wire_op(d, from, to, delay);
  core::add_wire_thread(state, wd);
  state.schedule(wd);
  report.ops_inserted = 1;
  report.diameter_after = state.diameter();
  return report;
}

refinement_report apply_wire_insertions(ir::dfg& d, core::threaded_graph& state,
                                        const std::vector<phys::wire_insertion>& plan) {
  refinement_report report;
  report.diameter_before = state.diameter();
  for (const phys::wire_insertion& w : plan) {
    const vertex_id wd = insert_wire_op(d, w.from, w.to, w.delay);
    core::add_wire_thread(state, wd);
    state.schedule(wd);
    ++report.ops_inserted;
  }
  report.diameter_after = state.diameter();
  return report;
}

refinement_report apply_register_move(ir::dfg& d, core::threaded_graph& state,
                                      vertex_id from, vertex_id to) {
  refinement_report report;
  report.diameter_before = state.diameter();
  const vertex_id mv = insert_move_op(d, from, to);
  state.schedule(mv);
  report.ops_inserted = 1;
  report.diameter_after = state.diameter();
  return report;
}

} // namespace softsched::refine
