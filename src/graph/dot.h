// dot.h - Graphviz export for debugging and documentation.
#pragma once

#include <ostream>
#include <string_view>

#include "graph/precedence_graph.h"

namespace softsched::graph {

/// Writes g in Graphviz DOT syntax. Vertex labels are "name (delay)" when a
/// name is set, otherwise "v<id> (delay)".
void write_dot(std::ostream& os, const precedence_graph& g,
               std::string_view graph_name = "G");

} // namespace softsched::graph
