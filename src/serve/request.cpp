#include "serve/request.h"

#include <bit>
#include <cmath>

#include "ir/dfg_io.h"
#include "sched/backend.h"

namespace softsched::serve {

namespace {

[[noreturn]] void bad_field(const std::string& key, const std::string& why) {
  throw json_error("request field '" + key + "': " + why);
}

int integer_field(const json_value& v, const std::string& key, long long lo,
                  long long hi) {
  try {
    return static_cast<int>(v.as_integer(lo, hi));
  } catch (const json_error& e) {
    bad_field(key, e.what());
  }
}

} // namespace

std::string request::source_signature() const {
  // The exact constructor arguments of the design, plus the multiplier
  // latency the library bakes into vertex delays. Text-format designs sign
  // with their raw text: byte-identical text parses to an identical graph.
  std::string sig;
  if (!dfg_text.empty()) {
    sig = "dfg:" + dfg_text;
  } else if (!design.bench.empty()) {
    sig = "bench:" + design.bench;
  } else {
    // edge_prob enters as its exact bit pattern: a decimal rendering
    // (std::to_string keeps 6 digits) would collide nearby probabilities
    // into one signature and serve one design's schedule for the other.
    sig = "random:" + std::to_string(design.random_vertices) + ":" +
          std::to_string(design.seed) + ":" +
          std::to_string(std::bit_cast<std::uint64_t>(design.random_edge_prob));
  }
  sig += "#ml" + std::to_string(mul_latency);
  return sig;
}

meta::meta_kind parse_request_meta(const std::string& name) {
  if (name == "dfs") return meta::meta_kind::depth_first;
  if (name == "topo") return meta::meta_kind::topological;
  if (name == "path") return meta::meta_kind::path_based;
  if (name == "list") return meta::meta_kind::list_priority;
  throw json_error("unknown meta schedule '" + name +
                   "' (expected dfs|topo|path|list)");
}

request parse_request(const json_value& object) {
  if (!object.is_object()) throw json_error("request must be a JSON object");
  request req;
  int sources = 0;
  bool saw_seed = false;
  bool saw_edge_prob = false;
  for (const auto& [key, value] : object.members()) {
    if (key == "id") {
      if (!value.is_string()) bad_field(key, "must be a string");
      req.id = value.as_string();
    } else if (key == "bench") {
      if (!value.is_string() || value.as_string().empty())
        bad_field(key, "must be a non-empty benchmark name");
      req.design.bench = value.as_string();
      ++sources;
    } else if (key == "random") {
      req.design.random_vertices = integer_field(value, key, 1, 200000);
      ++sources;
    } else if (key == "dfg") {
      if (!value.is_string() || value.as_string().empty())
        bad_field(key, "must be non-empty .dfg text");
      req.dfg_text = value.as_string();
      ++sources;
    } else if (key == "seed") {
      if (!value.is_number()) bad_field(key, "must be a number");
      const double d = value.as_number();
      // Cap at 2^53: beyond it doubles stop being exact integers, and an
      // unchecked uint64 cast of e.g. 1e300 would be undefined behavior.
      if (d < 0 || d != std::floor(d) || d > 9007199254740992.0)
        bad_field(key, "must be a non-negative integer <= 2^53");
      req.design.seed = static_cast<std::uint64_t>(d);
      saw_seed = true;
    } else if (key == "edge_prob") {
      if (!value.is_number()) bad_field(key, "must be a number");
      const double p = value.as_number();
      if (!(p > 0.0 && p <= 1.0)) bad_field(key, "must be in (0, 1]");
      req.design.random_edge_prob = p;
      saw_edge_prob = true;
    } else if (key == "alus") {
      req.resources.alus = integer_field(value, key, 0, 1000000);
    } else if (key == "muls") {
      req.resources.multipliers = integer_field(value, key, 0, 1000000);
    } else if (key == "mems") {
      req.resources.memory_ports = integer_field(value, key, 0, 1000000);
    } else if (key == "mul_latency") {
      req.mul_latency = integer_field(value, key, 1, 64);
    } else if (key == "meta") {
      if (!value.is_string()) bad_field(key, "must be a string");
      req.meta = parse_request_meta(value.as_string());
    } else if (key == "backend") {
      if (!value.is_string()) bad_field(key, "must be a string");
      if (sched::find_backend(value.as_string()) == nullptr)
        bad_field(key, "unknown scheduler backend '" + value.as_string() +
                           "' (expected " + sched::backend_names_joined() + ")");
      req.backend = value.as_string();
    } else if (key == "iter_budget") {
      req.iter_budget =
          integer_field(value, key, 0, sched::sdc_iter_max_budget);
    } else {
      throw json_error("unknown request field '" + key + "'");
    }
  }
  if (sources != 1)
    throw json_error("request needs exactly one of 'bench' / 'random' / 'dfg'");
  // Fields that only parameterize the random family must not be silently
  // ignored on other sources - a client who believes `seed` varies the
  // design deserves an error, not an identical schedule back.
  if (req.design.random_vertices == 0) {
    if (saw_seed) bad_field("seed", "only valid with a 'random' design source");
    if (saw_edge_prob)
      bad_field("edge_prob", "only valid with a 'random' design source");
  }
  // Same non-silence rule for the iteration budget: a client sweeping
  // iter_budget against a one-shot backend would get N identical schedules
  // back - surface the mismatch instead.
  if (req.iter_budget >= 0 &&
      !sched::get_backend(req.backend).caps().iterative)
    bad_field("iter_budget", "only valid with an iterative backend (backend '" +
                                 req.backend + "' ignores it)");
  return req;
}

request parse_request_line(std::string_view text) {
  return parse_request(parse_json(text));
}

ir::dfg build_request_design(const request& req, const ir::resource_library& library) {
  if (!req.dfg_text.empty()) return ir::read_dfg_string(req.dfg_text, library);
  return explore::build_design(req.design, library);
}

} // namespace softsched::serve
