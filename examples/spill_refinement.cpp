// spill_refinement - the paper's register-allocation coupling scenario
// (Section 1, Figure 1 (c)) on a real benchmark:
//
//   1. soft-schedule a 16-tap FIR filter (its multiplier results stay
//      alive across the adder tree - real register pressure),
//   2. run register-lifetime analysis on the provisional schedule,
//   3. discover the register budget is blown,
//   4. pick spill victims (Belady-style) and inject store/load pairs into
//      the *live* threaded schedule - no rescheduling from scratch,
//   5. show the refined schedule still validates, the budget now holds,
//      and compare against the traditional flow (full reschedule).
//
// Build & run:  ./build/examples/spill_refinement [register_budget]
#include <cstdlib>
#include <iostream>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "hard/extract.h"
#include "hard/list_scheduler.h"
#include "ir/benchmarks.h"
#include "meta/meta_schedule.h"
#include "refine/refinement.h"
#include "regalloc/left_edge.h"
#include "regalloc/lifetime.h"
#include "regalloc/spill.h"

namespace si = softsched::ir;
namespace sc = softsched::core;
namespace sh = softsched::hard;
namespace sm = softsched::meta;
namespace sr = softsched::regalloc;
namespace sf = softsched::refine;
using softsched::graph::vertex_id;

int main(int argc, char** argv) {
  const si::resource_library library;
  si::dfg fir = si::make_fir(library, 16);
  const si::resource_set resources{2, 2, 1};

  // 1. Soft-schedule.
  sc::threaded_graph state = sc::make_hls_state(fir, resources);
  state.schedule_all(sm::meta_schedule(fir.graph(), sm::meta_kind::list_priority));
  std::cout << "FIR16 soft schedule: " << state.diameter() << " states\n";

  // 2. Lifetime analysis on the provisional (extracted) schedule.
  sh::schedule provisional = sh::extract_schedule(state);
  const auto lifetimes = sr::compute_lifetimes(fir, provisional);
  const int demand = sr::max_live(lifetimes);
  std::cout << "register demand: " << demand << " (peak at cycle "
            << sr::peak_cycle(lifetimes) << ")\n";

  // 3. The datapath only has `budget` registers. Spilling can only shrink
  // multi-cycle lifetimes, so the reachable minimum is the spill floor
  // (reloads, outputs and chained one-cycle values keep their registers).
  const int floor = sr::min_spillable_demand(fir, lifetimes);
  std::cout << "spill floor:      " << floor << '\n';
  const int budget = argc > 1 ? std::atoi(argv[1]) : std::max(floor, demand - 1);
  if (budget < 1) {
    std::cerr << "register budget must be >= 1\n";
    return 1;
  }
  std::cout << "register budget:  " << budget << '\n';
  if (budget < floor) {
    std::cerr << "budget " << budget << " is below the spill floor " << floor
              << " - no spill plan can satisfy it on this schedule\n";
    return 1;
  }
  const sr::spill_plan plan = sr::choose_spills(fir, lifetimes, budget);
  if (plan.values.empty()) {
    std::cout << "budget already satisfied - nothing to spill.\n";
    return 0;
  }
  std::cout << "spilling " << plan.values.size() << " value(s):";
  for (const vertex_id v : plan.values) std::cout << ' ' << fir.graph().name(v);
  std::cout << '\n';

  // 4. Refine the live threaded schedule: store/load ops drop into the
  // memory-port thread; already-made soft decisions stay put.
  for (const vertex_id v : plan.values) {
    const sf::refinement_report report = sf::apply_spill(fir, state, v);
    std::cout << "  spill " << fir.graph().name(v) << ": +" << report.ops_inserted
              << " memory ops, " << report.diameter_before << " -> "
              << report.diameter_after << " states\n";
  }

  // 5. Validate and compare with the traditional hard flow.
  sh::schedule refined = sh::extract_schedule(state);
  const auto violations = sh::validate_schedule(fir, refined, &resources);
  if (!violations.empty()) {
    std::cerr << "refined schedule INVALID: " << violations.front() << '\n';
    return 1;
  }
  const auto refined_lifetimes = sr::compute_lifetimes(fir, refined);
  std::cout << "refined register demand: " << sr::max_live(refined_lifetimes)
            << " (left-edge binding uses "
            << sr::left_edge_allocate(refined_lifetimes).register_count
            << " registers)\n";

  si::dfg scratch = si::make_fir(library, 16);
  for (const vertex_id v : plan.values) sf::insert_spill_ops(scratch, v);
  std::cout << "\ncomparison - traditional flow (full list reschedule): "
            << sh::list_schedule(scratch, resources).makespan
            << " states vs soft incremental: " << state.diameter() << " states\n";
  return 0;
}
