// partial_state_test.cpp - behaviour on *partially* scheduled states: the
// soft scheduler's whole point is that the state is usable mid-flight
// (other phases query it before every operation is placed).
#include <gtest/gtest.h>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "graph/topo.h"
#include "hard/extract.h"
#include "hard/schedule.h"
#include "ir/benchmarks.h"
#include "meta/meta_schedule.h"
#include "util/check.h"

namespace sg = softsched::graph;
namespace sc = softsched::core;
namespace si = softsched::ir;
namespace sh = softsched::hard;
namespace sm = softsched::meta;
using sg::vertex_id;

namespace {

/// HAL with only the first half of the topological order scheduled.
struct half_scheduled {
  si::resource_library lib;
  si::dfg d;
  sc::threaded_graph state;
  std::vector<vertex_id> scheduled;
  std::vector<vertex_id> pending;

  half_scheduled() : d(si::make_hal(lib)), state(sc::make_hls_state(d, si::resource_set{2, 2, 1})) {
    const auto order = sm::meta_schedule(d.graph(), sm::meta_kind::topological);
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (i < order.size() / 2) {
        state.schedule(order[i]);
        scheduled.push_back(order[i]);
      } else {
        pending.push_back(order[i]);
      }
    }
  }
};

} // namespace

TEST(PartialState, AsapStartsAreMinusOneForPending) {
  half_scheduled fx;
  const auto start = fx.state.asap_start_times();
  for (const vertex_id v : fx.scheduled) EXPECT_GE(start[v.value()], 0);
  for (const vertex_id v : fx.pending) EXPECT_EQ(start[v.value()], -1);
}

TEST(PartialState, ExtractionMarksPendingUnscheduled) {
  half_scheduled fx;
  const sh::schedule s = sh::extract_schedule(fx.state);
  EXPECT_FALSE(s.complete(fx.d));
  for (const vertex_id v : fx.pending) {
    EXPECT_EQ(s.start[v.value()], -1);
    EXPECT_EQ(s.unit[v.value()], -1);
  }
  // The validator reports every pending op.
  const auto violations = sh::validate_schedule(fx.d, s, nullptr);
  EXPECT_EQ(violations.size(), fx.pending.size());
}

TEST(PartialState, QueriesRejectPendingVertices) {
  half_scheduled fx;
  const vertex_id pending = fx.pending.front();
  EXPECT_THROW((void)fx.state.thread_of(pending), softsched::precondition_error);
  EXPECT_THROW((void)fx.state.source_distance(pending), softsched::precondition_error);
  EXPECT_THROW((void)fx.state.sink_distance(pending), softsched::precondition_error);
  EXPECT_THROW((void)fx.state.position_after(pending), softsched::precondition_error);
}

TEST(PartialState, DiameterOnlyCountsScheduledWork) {
  half_scheduled fx;
  // The half-state's diameter cannot exceed the full schedule's.
  sc::threaded_graph full = sc::make_hls_state(fx.d, si::resource_set{2, 2, 1});
  full.schedule_all(sm::meta_schedule(fx.d.graph(), sm::meta_kind::topological));
  EXPECT_LE(fx.state.diameter(), full.diameter());
  EXPECT_GT(fx.state.diameter(), 0);
}

TEST(PartialState, InvariantsHoldAndFinishingWorks) {
  half_scheduled fx;
  fx.state.check_invariants();
  for (const vertex_id v : fx.pending) fx.state.schedule(v);
  fx.state.check_invariants();
  EXPECT_EQ(fx.state.scheduled_count(), fx.d.op_count());
  const sh::schedule s = sh::extract_schedule(fx.state);
  EXPECT_TRUE(s.complete(fx.d));
}

TEST(PartialState, SelectIsDeterministicAndRepeatable) {
  half_scheduled fx;
  const vertex_id v = fx.pending.front();
  const sc::insert_position a = fx.state.select(v);
  const sc::insert_position b = fx.state.select(v);
  EXPECT_EQ(a.thread, b.thread);
  EXPECT_EQ(a.after, b.after);
  EXPECT_EQ(a.cost, b.cost);
  // select() must not mutate the observable state.
  fx.state.check_invariants();
  EXPECT_EQ(fx.state.scheduled_count(), fx.scheduled.size());
}

TEST(PartialState, StateEdgesOnlyMentionScheduledOps) {
  half_scheduled fx;
  for (const auto& [from, to] : fx.state.state_edges()) {
    EXPECT_TRUE(fx.state.scheduled(from));
    EXPECT_TRUE(fx.state.scheduled(to));
  }
}

TEST(PartialState, ThreadSequencesGrowMonotonically) {
  // Earlier thread contents are a prefix-preserving subset of later ones:
  // committed positions never move (the soft-decision guarantee).
  const si::resource_library lib;
  const si::dfg d = si::make_ewf(lib);
  sc::threaded_graph state = sc::make_hls_state(d, si::resource_set{2, 2, 1});
  const auto order = sm::meta_schedule(d.graph(), sm::meta_kind::list_priority);

  std::vector<std::vector<vertex_id>> previous(
      static_cast<std::size_t>(state.thread_count()));
  for (const vertex_id v : order) {
    state.schedule(v);
    for (int k = 0; k < state.thread_count(); ++k) {
      const auto now = state.thread_sequence(k);
      auto& before = previous[static_cast<std::size_t>(k)];
      // Every previously committed op is still there, in the same relative
      // order (insertions are allowed anywhere, removals never happen).
      std::size_t cursor = 0;
      for (const vertex_id u : before) {
        while (cursor < now.size() && now[cursor] != u) ++cursor;
        ASSERT_LT(cursor, now.size())
            << "op vanished or reordered within its thread";
      }
      before = now;
    }
  }
}
