#include "hard/asap_alap.h"

#include <algorithm>

#include "graph/distances.h"
#include "graph/topo.h"
#include "util/check.h"

namespace softsched::hard {

schedule asap_schedule(const ir::dfg& d) {
  const auto& g = d.graph();
  schedule s;
  s.start.assign(g.vertex_count(), 0);
  s.unit.assign(g.vertex_count(), -1);
  for (const vertex_id v : graph::topological_order(g)) {
    long long earliest = 0;
    for (const vertex_id p : g.preds(v))
      earliest = std::max(earliest, s.start[p.value()] + g.delay(p));
    s.start[v.value()] = earliest;
    s.makespan = std::max(s.makespan, earliest + g.delay(v));
  }
  return s;
}

schedule alap_schedule(const ir::dfg& d, long long latency) {
  const auto& g = d.graph();
  const long long critical = graph::compute_distances(g).diameter;
  SOFTSCHED_EXPECT(latency >= critical,
                   "ALAP latency is below the critical path length");
  schedule s;
  s.start.assign(g.vertex_count(), 0);
  s.unit.assign(g.vertex_count(), -1);
  s.makespan = latency;
  const std::vector<vertex_id> order = graph::topological_order(g);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const vertex_id v = *it;
    long long latest = latency - g.delay(v);
    for (const vertex_id q : g.succs(v))
      latest = std::min(latest, s.start[q.value()] - g.delay(v));
    s.start[v.value()] = latest;
  }
  return s;
}

std::vector<long long> mobility(const ir::dfg& d, long long latency) {
  const schedule asap = asap_schedule(d);
  const schedule alap = alap_schedule(d, latency);
  std::vector<long long> m(d.graph().vertex_count());
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = alap.start[i] - asap.start[i];
  return m;
}

} // namespace softsched::hard
