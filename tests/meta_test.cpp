// meta_test.cpp - the four meta schedules of Section 5 (+ random):
// permutation/feasibility properties and their characteristic shapes.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/distances.h"
#include "graph/generators.h"
#include "graph/topo.h"
#include "ir/benchmarks.h"
#include "meta/meta_schedule.h"
#include "util/check.h"
#include "util/rng.h"

namespace sg = softsched::graph;
namespace sm = softsched::meta;
namespace si = softsched::ir;
using sg::vertex_id;
using softsched::rng;

namespace {

sg::precedence_graph sample_graph(std::uint64_t seed) {
  rng rand(seed);
  return sg::gnp_dag(30, 0.15, 1, 2, rand);
}

} // namespace

TEST(MetaSchedule, NamesMatchPaperRows) {
  EXPECT_EQ(sm::meta_name(sm::meta_kind::depth_first), "meta sched1");
  EXPECT_EQ(sm::meta_name(sm::meta_kind::topological), "meta sched2");
  EXPECT_EQ(sm::meta_name(sm::meta_kind::path_based), "meta sched3");
  EXPECT_EQ(sm::meta_name(sm::meta_kind::list_priority), "meta sched4");
  EXPECT_EQ(sm::meta_name(sm::meta_kind::random), "random");
}

TEST(MetaSchedule, AllKindsProducePermutations) {
  const sg::precedence_graph g = sample_graph(51);
  for (const sm::meta_kind kind : sm::figure3_meta_kinds) {
    const auto order = sm::meta_schedule(g, kind);
    EXPECT_TRUE(sg::is_permutation(g, order)) << sm::meta_name(kind);
  }
  rng rand(5);
  EXPECT_TRUE(sg::is_permutation(g, sm::random_meta_schedule(g, rand)));
}

TEST(MetaSchedule, TopologicalKindIsTopological) {
  const sg::precedence_graph g = sample_graph(52);
  EXPECT_TRUE(sg::is_topological(g, sm::meta_schedule(g, sm::meta_kind::topological)));
}

TEST(MetaSchedule, ListPriorityIsTopologicalAndCriticalPathFirst) {
  const sg::precedence_graph g = sample_graph(53);
  const auto order = sm::meta_schedule(g, sm::meta_kind::list_priority);
  EXPECT_TRUE(sg::is_topological(g, order));
  // The first vertex must start a critical path: its sink distance equals
  // the diameter.
  const sg::distance_labels labels = sg::compute_distances(g);
  EXPECT_EQ(labels.tdist[order.front().value()], labels.diameter);
}

TEST(MetaSchedule, PathBasedStartsWithCriticalPath) {
  const sg::precedence_graph g = sample_graph(54);
  const auto order = sm::meta_schedule(g, sm::meta_kind::path_based);
  const sg::distance_labels labels = sg::compute_distances(g);
  // The order begins with a full critical path, in path order.
  long long walked = 0;
  std::size_t i = 0;
  for (; i < order.size(); ++i) {
    walked += g.delay(order[i]);
    if (walked == labels.diameter) break;
  }
  EXPECT_EQ(walked, labels.diameter) << "first peeled path must be critical";
  for (std::size_t j = 1; j <= i; ++j)
    EXPECT_TRUE(g.has_edge(order[j - 1], order[j]));
}

TEST(MetaSchedule, RandomKindThroughDeterministicEntryThrows) {
  const sg::precedence_graph g = sample_graph(55);
  EXPECT_THROW((void)sm::meta_schedule(g, sm::meta_kind::random),
               softsched::precondition_error);
}

TEST(MetaSchedule, DepthFirstDivesBeforeWidening) {
  // On a chain-of-chains, DFS emits a full downstream chain before any
  // sibling.
  sg::precedence_graph g;
  const vertex_id root = g.add_vertex(1, "root");
  const vertex_id a1 = g.add_vertex(1, "a1");
  const vertex_id a2 = g.add_vertex(1, "a2");
  const vertex_id b1 = g.add_vertex(1, "b1");
  g.add_edge(root, a1);
  g.add_edge(a1, a2);
  g.add_edge(root, b1);
  const auto order = sm::meta_schedule(g, sm::meta_kind::depth_first);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], root);
  EXPECT_EQ(order[1], a1);
  EXPECT_EQ(order[2], a2); // dives through a-branch before b1
  EXPECT_EQ(order[3], b1);
}

TEST(MetaSchedule, DeterministicAcrossCalls) {
  const sg::precedence_graph g = sample_graph(56);
  for (const sm::meta_kind kind : sm::figure3_meta_kinds) {
    EXPECT_EQ(sm::meta_schedule(g, kind), sm::meta_schedule(g, kind))
        << sm::meta_name(kind);
  }
}

TEST(MetaSchedule, WorksOnAllPaperBenchmarks) {
  const si::resource_library lib;
  for (const si::dfg& d : si::figure3_benchmarks(lib)) {
    for (const sm::meta_kind kind : sm::figure3_meta_kinds) {
      const auto order = sm::meta_schedule(d.graph(), kind);
      EXPECT_TRUE(sg::is_permutation(d.graph(), order))
          << d.name() << "/" << sm::meta_name(kind);
    }
  }
}
