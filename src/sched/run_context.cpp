#include "sched/run_context.h"

namespace softsched::sched {

run_context::run_context(arena_mode mode, std::size_t arena_block_bytes)
    : arena_(mode == arena_mode::on ? std::make_unique<util::arena>(arena_block_bytes)
                                    : nullptr) {}

run_context::~run_context() {
  // The state's vectors deallocate into the arena (a no-op), so it must
  // still be alive when they die: reset the optional before arena_ goes.
  state.reset();
}

void run_context::begin_run() {
  state.reset(); // storage lives in the arena; destroy before the rewind
  if (arena_ != nullptr) arena_->reset();
  ++runs_;
}

void run_context::accumulate(const core::schedule_stats& s) noexcept {
  totals.select_calls += s.select_calls;
  totals.positions_scanned += s.positions_scanned;
  totals.positions_rejected += s.positions_rejected;
  totals.commits += s.commits;
  totals.label_passes += s.label_passes;
  totals.cross_edge_updates += s.cross_edge_updates;
  totals.nodes_relabeled += s.nodes_relabeled;
  totals.closure_rebuilds += s.closure_rebuilds;
  totals.closure_syncs += s.closure_syncs;
  totals.closure_rows_touched += s.closure_rows_touched;
}

} // namespace softsched::sched
