// list_scheduler.h - the traditional resource-constrained list scheduler
// (the "list sched" rows of Figure 3). Critical-path priority: ready
// operations with the largest sink distance go first, the same priority
// meta schedule 4 feeds the soft scheduler.
#pragma once

#include "hard/schedule.h"

namespace softsched::hard {

/// Resource-constrained list scheduling. Units are non-pipelined; an op
/// occupies its unit for `delay` cycles. Wire ops are dedicated and start
/// as early as dependences allow. Throws infeasible_error if a needed
/// class has zero units.
[[nodiscard]] schedule list_schedule(const ir::dfg& d, const ir::resource_set& resources);

} // namespace softsched::hard
