// floorplan.h - the simulated physical-design substrate. The paper's
// second phase-coupling scenario needs interconnect delays that "can be
// determined only after place and route"; we stand in for the P&R tool
// with a deterministic grid floorplanner over the functional-unit
// instances (= threads of the threaded schedule), from which Manhattan
// distances and wire delays follow.
#pragma once

#include <utility>
#include <vector>

#include "ir/resource.h"

namespace softsched::phys {

/// Grid coordinates of one placed block (functional unit).
struct block_position {
  int x = 0;
  int y = 0;
};

/// A placed datapath: position per functional-unit instance, indexed the
/// same way the HLS thread binding indexes threads (ALUs first, then
/// multipliers, then memory ports).
class floorplan {
public:
  /// Places `unit_count` unit blocks row-major on a grid `columns` wide.
  /// Units are spread apart by `pitch` grid units (multiplier blocks are
  /// physically large; a coarse pitch models routing detours).
  floorplan(int unit_count, int columns, int pitch = 2);

  [[nodiscard]] int unit_count() const noexcept { return static_cast<int>(pos_.size()); }
  [[nodiscard]] block_position position(int unit) const;

  /// Manhattan distance between two unit blocks, in grid units.
  [[nodiscard]] int distance(int unit_a, int unit_b) const;

  /// Largest pairwise distance on the die.
  [[nodiscard]] int diameter() const;

private:
  std::vector<block_position> pos_;
};

/// Convenience: floorplan for a resource set (one block per unit instance,
/// in thread-index order), using a near-square aspect ratio.
[[nodiscard]] floorplan floorplan_for(const ir::resource_set& resources);

} // namespace softsched::phys
