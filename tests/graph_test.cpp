// graph_test.cpp - unit tests for the precedence-graph substrate:
// construction, mutation, Definition-1 distance metrics, orderings,
// transitive closure, generators and DOT export.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "graph/distances.h"
#include "graph/dot.h"
#include "graph/generators.h"
#include "graph/precedence_graph.h"
#include "graph/reachability.h"
#include "graph/topo.h"
#include "util/check.h"
#include "util/rng.h"

namespace sg = softsched::graph;
using sg::vertex_id;
using softsched::rng;

namespace {

/// The paper's Figure 1 (a) skeleton as a raw graph (unit delays).
sg::precedence_graph figure1_graph() {
  sg::precedence_graph g;
  for (int i = 0; i < 7; ++i) g.add_vertex(1, std::to_string(i + 1));
  auto v = [](int i) { return vertex_id(static_cast<std::uint32_t>(i - 1)); };
  g.add_edge(v(1), v(2));
  g.add_edge(v(1), v(3));
  g.add_edge(v(2), v(4));
  g.add_edge(v(3), v(6));
  g.add_edge(v(4), v(6));
  g.add_edge(v(6), v(7));
  g.add_edge(v(5), v(7));
  return g;
}

} // namespace

TEST(PrecedenceGraph, EmptyGraph) {
  sg::precedence_graph g;
  EXPECT_EQ(g.vertex_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.is_dag());
  EXPECT_NO_THROW(g.validate());
}

TEST(PrecedenceGraph, AddVertexAssignsSequentialIds) {
  sg::precedence_graph g;
  EXPECT_EQ(g.add_vertex(1).value(), 0u);
  EXPECT_EQ(g.add_vertex(2).value(), 1u);
  EXPECT_EQ(g.delay(vertex_id(0)), 1);
  EXPECT_EQ(g.delay(vertex_id(1)), 2);
}

TEST(PrecedenceGraph, NegativeDelayRejected) {
  sg::precedence_graph g;
  EXPECT_THROW((void)g.add_vertex(-1), softsched::precondition_error);
}

TEST(PrecedenceGraph, SelfLoopRejected) {
  sg::precedence_graph g;
  const vertex_id v = g.add_vertex(1);
  EXPECT_THROW(g.add_edge(v, v), softsched::precondition_error);
}

TEST(PrecedenceGraph, DuplicateEdgeIgnored) {
  sg::precedence_graph g;
  const vertex_id a = g.add_vertex(1);
  const vertex_id b = g.add_vertex(1);
  g.add_edge(a, b);
  g.add_edge(a, b);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.succs(a).size(), 1u);
  EXPECT_EQ(g.preds(b).size(), 1u);
}

TEST(PrecedenceGraph, RemoveEdge) {
  sg::precedence_graph g;
  const vertex_id a = g.add_vertex(1);
  const vertex_id b = g.add_vertex(1);
  g.add_edge(a, b);
  EXPECT_TRUE(g.remove_edge(a, b));
  EXPECT_FALSE(g.remove_edge(a, b));
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.has_edge(a, b));
}

TEST(PrecedenceGraph, OutOfRangeVertexThrows) {
  sg::precedence_graph g;
  g.add_vertex(1);
  EXPECT_THROW((void)g.delay(vertex_id(5)), softsched::precondition_error);
  EXPECT_THROW((void)g.delay(vertex_id::invalid()), softsched::precondition_error);
}

TEST(PrecedenceGraph, CycleDetection) {
  sg::precedence_graph g;
  const vertex_id a = g.add_vertex(1);
  const vertex_id b = g.add_vertex(1);
  const vertex_id c = g.add_vertex(1);
  g.add_edge(a, b);
  g.add_edge(b, c);
  EXPECT_TRUE(g.is_dag());
  g.add_edge(c, a);
  EXPECT_FALSE(g.is_dag());
  EXPECT_THROW(g.validate(), softsched::graph_error);
}

TEST(PrecedenceGraph, SourcesAndSinks) {
  const sg::precedence_graph g = figure1_graph();
  const auto sources = g.sources();
  const auto sinks = g.sinks();
  // Sources: 1 and 5; sink: 7.
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(g.name(sources[0]), "1");
  EXPECT_EQ(g.name(sources[1]), "5");
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(g.name(sinks[0]), "7");
}

TEST(PrecedenceGraph, RevisionAdvancesOnMutation) {
  sg::precedence_graph g;
  const auto r0 = g.revision();
  const vertex_id a = g.add_vertex(1);
  const vertex_id b = g.add_vertex(1);
  EXPECT_GT(g.revision(), r0);
  const auto r1 = g.revision();
  g.add_edge(a, b);
  EXPECT_GT(g.revision(), r1);
  const auto r2 = g.revision();
  g.remove_edge(a, b);
  EXPECT_GT(g.revision(), r2);
}

TEST(Distances, Figure1DiameterIsFive) {
  const sg::precedence_graph g = figure1_graph();
  const sg::distance_labels labels = sg::compute_distances(g);
  EXPECT_EQ(labels.diameter, 5); // the paper's 5-state ALAP schedule
}

TEST(Distances, SourceDistanceIncludesOwnDelay) {
  sg::precedence_graph g = sg::chain(3, 4);
  const sg::distance_labels labels = sg::compute_distances(g);
  EXPECT_EQ(labels.sdist[0], 4);
  EXPECT_EQ(labels.sdist[1], 8);
  EXPECT_EQ(labels.sdist[2], 12);
  EXPECT_EQ(labels.tdist[0], 12);
  EXPECT_EQ(labels.tdist[2], 4);
  EXPECT_EQ(labels.diameter, 12);
}

TEST(Distances, ThroughDistanceDecomposition) {
  // Lemma 5: ||->v->|| = sdist + tdist - delay for every vertex.
  rng rand(7);
  const sg::precedence_graph g = sg::gnp_dag(40, 0.15, 1, 3, rand);
  const sg::distance_labels labels = sg::compute_distances(g);
  for (const vertex_id v : g.vertices()) {
    long long best_pred = 0;
    for (const vertex_id p : g.preds(v))
      best_pred = std::max(best_pred, labels.sdist[p.value()]);
    long long best_succ = 0;
    for (const vertex_id q : g.succs(v))
      best_succ = std::max(best_succ, labels.tdist[q.value()]);
    EXPECT_EQ(labels.through(v, g), best_pred + g.delay(v) + best_succ);
  }
}

TEST(Distances, CriticalPathIsConsistent) {
  rng rand(17);
  const sg::precedence_graph g = sg::gnp_dag(60, 0.1, 1, 2, rand);
  const sg::distance_labels labels = sg::compute_distances(g);
  const std::vector<vertex_id> path = sg::critical_path(g);
  ASSERT_FALSE(path.empty());
  long long total = 0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    total += g.delay(path[i]);
    if (i > 0) {
      EXPECT_TRUE(g.has_edge(path[i - 1], path[i]));
    }
  }
  EXPECT_EQ(total, labels.diameter);
}

TEST(Distances, CyclicGraphThrows) {
  sg::precedence_graph g;
  const vertex_id a = g.add_vertex(1);
  const vertex_id b = g.add_vertex(1);
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_THROW((void)sg::compute_distances(g), softsched::graph_error);
}

TEST(Topo, TopologicalOrderRespectsEdges) {
  rng rand(23);
  const sg::precedence_graph g = sg::gnp_dag(50, 0.1, 1, 1, rand);
  const auto order = sg::topological_order(g);
  EXPECT_TRUE(sg::is_topological(g, order));
}

TEST(Topo, TopologicalOrderDetectsCycle) {
  sg::precedence_graph g;
  const vertex_id a = g.add_vertex(1);
  const vertex_id b = g.add_vertex(1);
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_THROW((void)sg::topological_order(g), softsched::graph_error);
}

TEST(Topo, DepthFirstOrderIsPermutationButNotNecessarilyTopological) {
  const sg::precedence_graph g = figure1_graph();
  const auto order = sg::depth_first_order(g);
  EXPECT_TRUE(sg::is_permutation(g, order));
  // DFS from vertex 1 dives 1,2,4,6,7 - which puts 6 before its other
  // predecessor 3 has been emitted? No: preorder emits 6 after 4 but 3 is
  // only reached later, so the order is NOT topological for this graph.
  EXPECT_FALSE(sg::is_topological(g, order));
}

TEST(Topo, PathPartitionCoversAllVerticesDisjointly) {
  rng rand(29);
  const sg::precedence_graph g = sg::gnp_dag(45, 0.12, 1, 2, rand);
  const auto paths = sg::path_partition(g);
  std::vector<bool> seen(g.vertex_count(), false);
  for (const auto& path : paths) {
    for (std::size_t i = 0; i < path.size(); ++i) {
      EXPECT_FALSE(seen[path[i].value()]) << "vertex on two paths";
      seen[path[i].value()] = true;
      if (i > 0) {
        // Consecutive path elements must be actual graph edges.
        EXPECT_TRUE(g.has_edge(path[i - 1], path[i]));
      }
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Topo, PathPartitionLongestFirst) {
  rng rand(31);
  const sg::precedence_graph g = sg::gnp_dag(45, 0.12, 1, 2, rand);
  const auto paths = sg::path_partition(g);
  auto weight = [&g](const std::vector<vertex_id>& p) {
    long long w = 0;
    for (const vertex_id v : p) w += g.delay(v);
    return w;
  };
  for (std::size_t i = 1; i < paths.size(); ++i)
    EXPECT_GE(weight(paths[i - 1]), weight(paths[i]));
  // The first path must realize the diameter.
  EXPECT_EQ(weight(paths[0]), sg::compute_distances(g).diameter);
}

TEST(Reachability, ClosureMatchesBfs) {
  rng rand(37);
  const sg::precedence_graph g = sg::gnp_dag(35, 0.15, 1, 1, rand);
  const sg::transitive_closure closure(g);
  // Reference: per-vertex DFS.
  for (const vertex_id src : g.vertices()) {
    std::vector<bool> seen(g.vertex_count(), false);
    std::vector<vertex_id> stack{src};
    seen[src.value()] = true;
    while (!stack.empty()) {
      const vertex_id u = stack.back();
      stack.pop_back();
      for (const vertex_id w : g.succs(u)) {
        if (!seen[w.value()]) {
          seen[w.value()] = true;
          stack.push_back(w);
        }
      }
    }
    for (const vertex_id dst : g.vertices()) {
      EXPECT_EQ(closure.reaches(src, dst), seen[dst.value()])
          << src.value() << " -> " << dst.value();
      EXPECT_EQ(closure.strictly_reaches(src, dst), src != dst && seen[dst.value()]);
    }
  }
}

TEST(Reachability, PairCountOnChain) {
  const sg::precedence_graph g = sg::chain(5, 1);
  const sg::transitive_closure closure(g);
  EXPECT_EQ(closure.pair_count(), 10u); // C(5,2) ordered pairs on a chain
}

TEST(Generators, LayeredRandomShape) {
  rng rand(41);
  sg::layered_params params;
  params.layers = 5;
  params.width = 6;
  params.edge_prob = 0.3;
  const sg::precedence_graph g = sg::layered_random(params, rand);
  EXPECT_EQ(g.vertex_count(), 30u);
  EXPECT_TRUE(g.is_dag());
  // connect_layers guarantees non-input vertices have predecessors.
  for (std::size_t i = 6; i < 30; ++i)
    EXPECT_FALSE(g.preds(vertex_id(static_cast<std::uint32_t>(i))).empty());
}

TEST(Generators, GnpDagIsAcyclicAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    rng rand(seed);
    const sg::precedence_graph g = sg::gnp_dag(30, 0.3, 1, 2, rand);
    EXPECT_TRUE(g.is_dag()) << "seed " << seed;
  }
}

TEST(Generators, ReductionTreeShape) {
  const sg::precedence_graph g = sg::reduction_tree(8, 2, 1);
  EXPECT_EQ(g.vertex_count(), 15u); // 8 leaves + 7 internal
  EXPECT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(g.sources().size(), 8u);
  EXPECT_EQ(sg::compute_distances(g).diameter, 2 + 3); // leaf + 3 tree levels
}

TEST(Generators, ChainAndDegenerateSizes) {
  EXPECT_EQ(sg::chain(0).vertex_count(), 0u);
  EXPECT_EQ(sg::chain(1).vertex_count(), 1u);
  EXPECT_EQ(sg::reduction_tree(1, 1, 1).vertex_count(), 1u);
}

TEST(Dot, ExportContainsVerticesAndEdges) {
  const sg::precedence_graph g = figure1_graph();
  std::ostringstream ss;
  sg::write_dot(ss, g, "fig1");
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("digraph \"fig1\""), std::string::npos);
  EXPECT_NE(dot.find("v0 -> v1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"1 (1)\""), std::string::npos);
}
