#include "serve/transport.h"

#include <istream>
#include <ostream>

namespace softsched::serve {

namespace {

/// The length line may not be longer than the digits of max_frame_bytes
/// plus slack; anything beyond that is a garbage stream, not a number.
constexpr std::size_t max_length_digits = 20;

} // namespace

int iostream_byte_stream::get() {
  if (in_ == nullptr) return -1;
  const int ch = in_->get();
  if (ch == std::istream::traits_type::eof()) return -1;
  count_in(1);
  return ch;
}

bool iostream_byte_stream::read_exact(char* dst, std::size_t n) {
  if (n == 0) return true;
  if (in_ == nullptr) return false;
  in_->read(dst, static_cast<std::streamsize>(n));
  const auto got = static_cast<std::size_t>(in_->gcount());
  count_in(got);
  return got == n;
}

bool iostream_byte_stream::write_all(std::string_view data) {
  if (out_ == nullptr) return false;
  out_->write(data.data(), static_cast<std::streamsize>(data.size()));
  if (out_->fail()) return false;
  count_out(data.size());
  return true;
}

bool iostream_byte_stream::flush() {
  if (out_ == nullptr) return false;
  out_->flush();
  return !out_->fail();
}

connection_counters_snapshot snapshot(const connection_counters& c) {
  connection_counters_snapshot s;
  s.accepted = c.accepted.load(std::memory_order_relaxed);
  s.active = c.active.load(std::memory_order_relaxed);
  s.shed = c.shed.load(std::memory_order_relaxed);
  s.closed = c.closed.load(std::memory_order_relaxed);
  s.transport_errors = c.transport_errors.load(std::memory_order_relaxed);
  s.faulted = c.faulted.load(std::memory_order_relaxed);
  s.bytes_in = c.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = c.bytes_out.load(std::memory_order_relaxed);
  s.transport = c.transport;
  return s;
}

frame_read read_frame(byte_stream& in, const frame_limits& limits) {
  frame_read out;

  // -- length line: bare decimal digits up to '\n' --------------------------
  std::string digits;
  for (;;) {
    const int ch = in.get();
    if (ch < 0) {
      if (digits.empty()) return out; // clean EOF at a frame boundary
      out.status = frame_status::error;
      out.error = "transport: EOF inside frame length";
      return out;
    }
    if (ch == '\n') break;
    if (ch < '0' || ch > '9' || digits.size() >= max_length_digits) {
      out.status = frame_status::error;
      out.error = "transport: malformed frame length (expected decimal digits)";
      return out;
    }
    digits.push_back(static_cast<char>(ch));
  }
  if (digits.empty()) {
    out.status = frame_status::error;
    out.error = "transport: empty frame length";
    return out;
  }

  // Accumulate with an overflow guard; the cap check runs before any
  // payload byte is buffered, so an oversize announcement costs nothing.
  std::size_t length = 0;
  for (const char d : digits) {
    if (length > (limits.max_frame_bytes / 10) + 1) {
      length = limits.max_frame_bytes + 1;
      break;
    }
    length = length * 10 + static_cast<std::size_t>(d - '0');
  }
  if (length > limits.max_frame_bytes) {
    out.status = frame_status::error;
    out.error = "transport: frame of " + digits + " bytes exceeds the " +
                std::to_string(limits.max_frame_bytes) + "-byte limit";
    return out;
  }

  // -- payload: exactly `length` bytes, then the terminator ----------------
  out.payload.resize(length);
  if (length > 0 && !in.read_exact(out.payload.data(), length)) {
    out.status = frame_status::error;
    out.payload.clear();
    out.error =
        "transport: truncated frame (EOF before " + digits + " payload bytes)";
    return out;
  }
  if (in.get() != '\n') {
    out.status = frame_status::error;
    out.payload.clear();
    out.error = "transport: missing frame terminator";
    return out;
  }
  out.status = frame_status::ok;
  return out;
}

bool write_frame(byte_stream& out, std::string_view payload) {
  std::string head = std::to_string(payload.size());
  head.push_back('\n');
  if (!out.write_all(head)) return false;
  if (!out.write_all(payload)) return false;
  if (!out.write_all("\n")) return false;
  return out.flush();
}

frame_read read_frame(std::istream& in, const frame_limits& limits) {
  iostream_byte_stream stream(&in, nullptr);
  return read_frame(stream, limits);
}

void write_frame(std::ostream& out, std::string_view payload) {
  iostream_byte_stream stream(nullptr, &out);
  (void)write_frame(stream, payload);
}

} // namespace softsched::serve
