#include "hard/schedule.h"

#include <algorithm>

#include "util/check.h"

namespace softsched::hard {

bool schedule::complete(const ir::dfg& d) const {
  if (start.size() != d.graph().vertex_count()) return false;
  return std::all_of(start.begin(), start.end(), [](long long s) { return s >= 0; });
}

std::vector<std::string> validate_schedule(const ir::dfg& d, const schedule& s,
                                           const ir::resource_set* resources) {
  std::vector<std::string> violations;
  const auto& g = d.graph();
  if (s.start.size() != g.vertex_count()) {
    violations.push_back("start vector size does not match the graph");
    return violations;
  }
  for (const vertex_id v : g.vertices()) {
    if (s.start[v.value()] < 0) {
      violations.push_back("operation " + std::string(g.name(v)) + " is unscheduled");
      continue;
    }
    for (const vertex_id p : g.preds(v)) {
      if (s.start[p.value()] < 0) continue; // reported for p itself
      if (s.start[v.value()] < s.start[p.value()] + g.delay(p)) {
        violations.push_back("precedence violated: " + std::string(g.name(p)) + " -> " +
                             std::string(g.name(v)));
      }
    }
    if (s.start[v.value()] + g.delay(v) > s.makespan) {
      violations.push_back("operation " + std::string(g.name(v)) +
                           " finishes after the makespan");
    }
  }
  if (resources != nullptr) {
    for (const ir::resource_class cls :
         {ir::resource_class::alu, ir::resource_class::multiplier,
          ir::resource_class::memory_port}) {
      const int peak = peak_usage(d, s, cls);
      if (peak > resources->count(cls)) {
        violations.push_back(std::string(ir::class_name(cls)) + " over-subscribed: peak " +
                             std::to_string(peak) + " > " +
                             std::to_string(resources->count(cls)));
      }
    }
  }
  // Unit-binding consistency: two ops bound to the same unit must not
  // overlap (only checked where bindings are present).
  const auto& g2 = d.graph();
  if (s.unit.size() == g2.vertex_count()) {
    for (const vertex_id a : g2.vertices()) {
      if (s.unit[a.value()] < 0 || s.start[a.value()] < 0) continue;
      for (const vertex_id b : g2.vertices()) {
        if (b.value() <= a.value() || s.unit[b.value()] != s.unit[a.value()] ||
            s.start[b.value()] < 0)
          continue;
        const long long a0 = s.start[a.value()], a1 = a0 + g2.delay(a);
        const long long b0 = s.start[b.value()], b1 = b0 + g2.delay(b);
        if (a0 < b1 && b0 < a1) {
          violations.push_back("unit conflict between " + std::string(g2.name(a)) +
                               " and " + std::string(g2.name(b)));
        }
      }
    }
  }
  return violations;
}

std::vector<int> usage_profile(const ir::dfg& d, const schedule& s,
                               ir::resource_class cls) {
  std::vector<int> profile(static_cast<std::size_t>(std::max<long long>(s.makespan, 0)), 0);
  for (const vertex_id v : d.graph().vertices()) {
    if (d.unit_class(v) != cls || s.start[v.value()] < 0) continue;
    for (long long c = s.start[v.value()]; c < s.start[v.value()] + d.graph().delay(v); ++c) {
      if (c >= 0 && static_cast<std::size_t>(c) < profile.size())
        ++profile[static_cast<std::size_t>(c)];
    }
  }
  return profile;
}

int peak_usage(const ir::dfg& d, const schedule& s, ir::resource_class cls) {
  const std::vector<int> profile = usage_profile(d, s, cls);
  return profile.empty() ? 0 : *std::max_element(profile.begin(), profile.end());
}

void write_gantt(std::ostream& os, const ir::dfg& d, const schedule& s) {
  std::vector<vertex_id> order = d.graph().vertices();
  std::stable_sort(order.begin(), order.end(), [&s](vertex_id a, vertex_id b) {
    return s.start[a.value()] < s.start[b.value()];
  });
  os << "cycle     ";
  for (long long c = 0; c < s.makespan; ++c) os << (c % 10);
  os << '\n';
  for (const vertex_id v : order) {
    if (s.start[v.value()] < 0) continue;
    std::string row(static_cast<std::size_t>(s.makespan), '.');
    for (long long c = s.start[v.value()];
         c < s.start[v.value()] + d.graph().delay(v) && c < s.makespan; ++c)
      row[static_cast<std::size_t>(c)] = '#';
    std::string label(d.graph().name(v));
    label.resize(8, ' ');
    os << label << "  " << row;
    if (s.unit.size() == d.graph().vertex_count() && s.unit[v.value()] >= 0)
      os << "  u" << s.unit[v.value()];
    os << '\n';
  }
}

} // namespace softsched::hard
