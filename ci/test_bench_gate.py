"""pytest suite for ci/bench_gate.py: malformed input, missing metrics,
schema validation, and the 2x regression boundary. Run by the ci-tools
CI job (`python3 -m pytest ci/ -q`)."""

import copy
import json
import subprocess
import sys
from pathlib import Path

GATE = Path(__file__).resolve().parent / "bench_gate.py"


def minimal_doc():
    """The smallest document bench_gate.py considers healthy."""
    storm = {
        "speedup": 5.0,
        "modes_agree": True,
        "incremental_stats": {"closure_rebuilds": 1},
    }
    return {
        "schema": "softsched-bench-v1",
        "scenarios": {
            "paper_benchmarks": [{"name": "HAL"}],
            "random_dag_sweep": [{"vertices": 100}],
            "refinement_storm": copy.deepcopy(storm),
            "hls_refinement_storm": copy.deepcopy(storm),
            "dse": {
                "deterministic": True,
                "points_per_sec_multi": 1000.0,
                "points_per_sec_single": 500.0,
                "total_points": 48,
                "threads": 4,
                "speedup": 2.0,
            },
            "serve": {
                "deterministic": True,
                "requests": 400,
                "catalog": 30,
                "jobs": 4,
                "requests_per_sec_hot": 200000.0,
                "requests_per_sec_cold": 4000.0,
                "speedup_hot_over_cold": 50.0,
                "hit_rate": 0.925,
            },
            "load": {
                "jobs": 4,
                "queue_capacity": 64,
                "replay_requests": 1500,
                "overload_factor": 2.0,
                "sustainable_rps": 100000.0,
                "target_rps": 200000.0,
                "p99_ms": 0.5,
                "drop_rate": 0.45,
                "goodput_rps": 90000.0,
                "peak_queue_depth": 64,
                "slo": {"pass": True},
            },
            "socket": {
                "transport": "unix:/tmp/bench.sock",
                "jobs": 4,
                "connections": 8,
                "churn_every": 50,
                "queue_capacity": 64,
                "replay_requests": 1200,
                "overload_factor": 2.0,
                "sustainable_rps": 100000.0,
                "target_rps": 200000.0,
                "p99_ms": 8.0,
                "shed_rate": 0.2,
                "goodput_rps": 15000.0,
                "peak_queue_depth": 64,
                "client": {
                    "frames_read": 1200,
                    "parse_skips": 0,
                    "control_skips": 0,
                    "range_skips": 0,
                    "clean_eofs": 24,
                    "reader_errors": 0,
                },
                "conns": {
                    "accepted": 24,
                    "shed": 0,
                    "closed": 24,
                    "faulted": 0,
                    "transport_errors": 0,
                },
                "slo": {"pass": True},
            },
            "persist": {
                "requests": 400,
                "catalog": 30,
                "jobs": 4,
                "warm_restart_hit_rate": 1.0,
                "recovery_scan_ms": 0.2,
                "recovered_entries": 30,
                "requests_per_sec_warm": 60000.0,
                "requests_per_sec_degraded": 5000.0,
                "degraded_request_errors": 0,
                "deterministic": True,
                "gate": {"pass": True},
            },
            "memory": {
                "constraint": "2+/-,2*",
                "designs": ["hal", "arf", "ewf", "fir8"],
                "passes": 50,
                "arena": {
                    "allocations_per_design": 8.0,
                    "bytes_per_design": 2000.0,
                    "frees_per_design": 8.0,
                },
                "heap": {
                    "allocations_per_design": 48.0,
                    "bytes_per_design": 40000.0,
                    "frees_per_design": 48.0,
                },
                "alloc_ratio": 6.0,
                "min_alloc_ratio": 5.0,
                "peak_live_bytes": 262144,
                "arena_blocks": 4,
                "arena_block_bytes": 262144,
                "modes_agree": True,
                "instrumented": True,
                "ok": True,
            },
            "backend": {
                "constraint": "2+/-,2*",
                "designs": ["hal", "arf", "ewf", "fir8"],
                "deterministic": True,
                "per_backend": {
                    name: {
                        "points_per_sec": rate,
                        "deterministic": True,
                        "all_legal": True,
                    }
                    for name, rate in (
                        ("soft", 40000.0),
                        ("list", 150000.0),
                        ("fds", 50.0),
                    )
                },
            },
            "iter": {
                "budget": 8,
                "grid": [
                    {
                        "design": "hal",
                        "constraint": "2+/-,1*",
                        "soft_states": 14,
                        "iter_states": 13,
                        "delta": -1,
                        "iterations": 5,
                        "legal": True,
                    },
                ],
                "qor_delta_vs_soft": -2,
                "improved_points": 2,
                "max_iterations": 5,
                "timed_passes": 40,
                "total_ms": 100.0,
                "points_per_sec": 5000.0,
                "deterministic": True,
                "all_legal": True,
                "gate": {"pass": True},
            },
        },
    }


def run_gate(tmp_path, baseline, fresh):
    """Writes the two documents (raw strings pass through) and runs the gate."""
    base_path = tmp_path / "baseline.json"
    fresh_path = tmp_path / "fresh.json"
    for path, doc in ((base_path, baseline), (fresh_path, fresh)):
        text = doc if isinstance(doc, str) else json.dumps(doc)
        path.write_text(text)
    return subprocess.run(
        [sys.executable, str(GATE), str(base_path), str(fresh_path)],
        capture_output=True,
        text=True,
    )


def test_identical_documents_pass(tmp_path):
    result = run_gate(tmp_path, minimal_doc(), minimal_doc())
    assert result.returncode == 0, result.stdout + result.stderr
    assert "Gate passed" in result.stdout
    assert "serve.requests_per_sec_hot" in result.stdout


def test_malformed_json_fails_readably(tmp_path):
    result = run_gate(tmp_path, minimal_doc(), '{"schema": "softsched-bench-v1", ')
    assert result.returncode == 1
    assert "malformed benchmark document" in result.stdout
    assert "Traceback" not in result.stderr


def test_missing_metric_fails_readably(tmp_path):
    fresh = minimal_doc()
    del fresh["scenarios"]["serve"]
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "serve" in result.stdout
    assert "Traceback" not in result.stderr


def test_wrong_schema_fails(tmp_path):
    fresh = minimal_doc()
    fresh["schema"] = "something-else"
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "unexpected schema" in result.stdout


def test_regression_boundary_exactly_2x_passes(tmp_path):
    # The gate fails strictly below baseline/2, so exactly half survives.
    fresh = minimal_doc()
    fresh["scenarios"]["serve"]["requests_per_sec_hot"] = 100000.0
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 0, result.stdout + result.stderr


def test_regression_beyond_2x_fails(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["serve"]["requests_per_sec_hot"] = 99000.0
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "regressed more than" in result.stdout
    assert "serve.requests_per_sec_hot" in result.stdout


def test_hit_rate_collapse_fails(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["serve"]["hit_rate"] = 0.4  # < 0.925 / 2
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "serve.hit_rate" in result.stdout


def test_ungated_metric_may_regress(tmp_path):
    # requests_per_sec_cold is informational: a 10x drop is reported, not fatal.
    fresh = minimal_doc()
    fresh["scenarios"]["serve"]["requests_per_sec_cold"] = 400.0
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 0, result.stdout + result.stderr


def test_hot_cold_speedup_floor_enforced(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["serve"]["speedup_hot_over_cold"] = 4.0
    # Keep the ratio metrics consistent with the floor violation.
    fresh["scenarios"]["serve"]["requests_per_sec_hot"] = 16000.0
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "< 5x" in result.stdout


def test_nondeterministic_serve_fails(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["serve"]["deterministic"] = False
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "diverged" in result.stdout


def test_missing_backend_scenario_fails(tmp_path):
    fresh = minimal_doc()
    del fresh["scenarios"]["backend"]
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "backend" in result.stdout
    assert "Traceback" not in result.stderr


def test_illegal_backend_schedule_fails(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["backend"]["per_backend"]["fds"]["all_legal"] = False
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "illegal schedule" in result.stdout


def test_missing_load_scenario_fails(tmp_path):
    fresh = minimal_doc()
    del fresh["scenarios"]["load"]
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "load" in result.stdout
    assert "Traceback" not in result.stderr


def test_load_drop_rate_out_of_range_fails(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["load"]["drop_rate"] = 1.2
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "drop_rate outside" in result.stdout


def test_load_queue_depth_over_capacity_fails(tmp_path):
    # peak depth > capacity means admission control stopped bounding the
    # queue - exactly the failure the daemon exists to prevent.
    fresh = minimal_doc()
    fresh["scenarios"]["load"]["peak_queue_depth"] = 65
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "exceeded capacity" in result.stdout


def test_load_slo_failure_fails(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["load"]["slo"]["pass"] = False
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "SLO gate failed" in result.stdout


def test_load_p99_within_floored_tolerance_passes(tmp_path):
    # Baseline p99 is below the 1 ms floor, so the gate allows anything up
    # to floor * tolerance = 4 ms - machine jitter on sub-ms tails is noise.
    fresh = minimal_doc()
    fresh["scenarios"]["load"]["p99_ms"] = 3.9
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 0, result.stdout + result.stderr


def test_load_p99_regression_beyond_tolerance_fails(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["load"]["p99_ms"] = 4.1  # > max(0.5, 1.0) * 4
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "load.p99_ms" in result.stdout
    assert "regressed" in result.stdout


def test_load_p99_improvement_passes(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["load"]["p99_ms"] = 0.01
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 0, result.stdout + result.stderr


def test_load_drop_rate_regression_fails(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["load"]["drop_rate"] = 0.95  # > max(0.45, 0.1) * 2
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "load.drop_rate" in result.stdout


def test_load_goodput_is_informational(tmp_path):
    # Goodput is machine-dependent; a big drop is reported, not fatal.
    fresh = minimal_doc()
    fresh["scenarios"]["load"]["goodput_rps"] = 9000.0
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 0, result.stdout + result.stderr


def test_missing_persist_scenario_fails(tmp_path):
    fresh = minimal_doc()
    del fresh["scenarios"]["persist"]
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "persist" in result.stdout
    assert "Traceback" not in result.stderr


def test_persist_gate_failure_fails(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["persist"]["gate"]["pass"] = False
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "persist: scenario's own gate failed" in result.stdout


def test_persist_zero_warm_hit_rate_fails(tmp_path):
    # A warm restart that recomputes everything means the disk tier never
    # answered - the whole point of persistence is gone.
    fresh = minimal_doc()
    fresh["scenarios"]["persist"]["warm_restart_hit_rate"] = 0.0
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "warm_restart_hit_rate" in result.stdout


def test_persist_degraded_request_errors_fail(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["persist"]["degraded_request_errors"] = 3
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "degrade to RAM-only" in result.stdout


def test_persist_hit_rate_collapse_fails(tmp_path):
    # warm_restart_hit_rate is a gated higher-is-better metric: a >2x drop
    # against baseline fails even when it stays inside (0, 1].
    fresh = minimal_doc()
    fresh["scenarios"]["persist"]["warm_restart_hit_rate"] = 0.4
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "persist.warm_restart_hit_rate" in result.stdout


def test_persist_recovery_scan_within_floored_tolerance_passes(tmp_path):
    # Baseline scan is sub-ms; the 50 ms floor means anything under 200 ms
    # is filesystem jitter, not a regression.
    fresh = minimal_doc()
    fresh["scenarios"]["persist"]["recovery_scan_ms"] = 150.0
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 0, result.stdout + result.stderr


def test_persist_recovery_scan_blowup_fails(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["persist"]["recovery_scan_ms"] = 250.0  # > 50 * 4
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "persist.recovery_scan_ms" in result.stdout


def test_persist_degraded_rps_is_informational(tmp_path):
    # Outage-mode throughput is machine-dependent; a drop reports, not fails.
    fresh = minimal_doc()
    fresh["scenarios"]["persist"]["requests_per_sec_degraded"] = 100.0
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 0, result.stdout + result.stderr


def test_ungated_backend_throughput_may_regress(tmp_path):
    # Only the soft backend's throughput gates; the baselines are trend info.
    fresh = minimal_doc()
    fresh["scenarios"]["backend"]["per_backend"]["fds"]["points_per_sec"] = 1.0
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 0, result.stdout + result.stderr
    fresh["scenarios"]["backend"]["per_backend"]["soft"]["points_per_sec"] = 1.0
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "backend.soft_points_per_sec" in result.stdout


def test_missing_memory_scenario_fails(tmp_path):
    fresh = minimal_doc()
    del fresh["scenarios"]["memory"]
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "memory" in result.stdout
    assert "Traceback" not in result.stderr


def test_memory_mode_divergence_fails(tmp_path):
    # The arena is a cost lever, never a result lever: any outcome drift
    # between arena and heap modes is fatal regardless of the ratios.
    fresh = minimal_doc()
    fresh["scenarios"]["memory"]["modes_agree"] = False
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "result lever" in result.stdout


def test_memory_uninstrumented_binary_fails(tmp_path):
    # Counters reading zero means the harness silently lost the counting
    # allocator link edge - the whole scenario would be vacuous.
    fresh = minimal_doc()
    fresh["scenarios"]["memory"]["instrumented"] = False
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "counting allocator" in result.stdout


def test_memory_alloc_ratio_below_min_fails(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["memory"]["alloc_ratio"] = 4.0  # < min_alloc_ratio 5
    fresh["scenarios"]["memory"]["ok"] = False
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "fewer heap" in result.stdout


def test_memory_arena_allocs_within_floored_tolerance_pass(tmp_path):
    # max(baseline 8, floor 4) * 2 = 16 allocs/design is the ceiling.
    fresh = minimal_doc()
    fresh["scenarios"]["memory"]["arena"]["allocations_per_design"] = 15.0
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 0, result.stdout + result.stderr


def test_memory_arena_alloc_creep_fails(tmp_path):
    # A per-run heap allocation reappearing on the hot path more than
    # doubles the warmed count; the trend gate catches it even when the
    # scenario's own >=5x ratio still holds.
    fresh = minimal_doc()
    fresh["scenarios"]["memory"]["arena"]["allocations_per_design"] = 17.0
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "memory.arena_allocs_per_design" in result.stdout


def test_memory_ratio_collapse_fails_against_baseline(tmp_path):
    # alloc_ratio is a gated higher-is-better metric: >2x drop vs the
    # committed baseline fails even above the absolute minimum.
    fresh = minimal_doc()
    fresh["scenarios"]["memory"]["alloc_ratio"] = 12.0
    baseline = minimal_doc()
    baseline["scenarios"]["memory"]["alloc_ratio"] = 30.0
    result = run_gate(tmp_path, baseline, fresh)
    assert result.returncode == 1
    assert "memory.alloc_ratio" in result.stdout


def test_missing_socket_scenario_fails(tmp_path):
    fresh = minimal_doc()
    del fresh["scenarios"]["socket"]
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "socket" in result.stdout
    assert "Traceback" not in result.stderr


def test_socket_slo_failure_fails(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["socket"]["slo"]["pass"] = False
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "socket: scenario's own SLO gate failed" in result.stdout


def test_socket_queue_depth_over_capacity_fails(tmp_path):
    # The socket transport must not launder unbounded queueing: the same
    # admission bound gates behind every transport.
    fresh = minimal_doc()
    fresh["scenarios"]["socket"]["peak_queue_depth"] = 65
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "behind the socket transport" in result.stdout


def test_socket_reader_errors_fail(tmp_path):
    # A client reader that died on a framing error (not a clean EOF) means
    # response frames were silently discarded - the delivery accounting in
    # the scenario can no longer be trusted.
    fresh = minimal_doc()
    fresh["scenarios"]["socket"]["client"]["reader_errors"] = 1
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "reader" in result.stdout


def test_socket_missing_client_block_fails(tmp_path):
    fresh = minimal_doc()
    del fresh["scenarios"]["socket"]["client"]
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "client" in result.stdout


def test_socket_transport_errors_fail(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["socket"]["conns"]["transport_errors"] = 2
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "transport" in result.stdout


def test_socket_lost_clients_fail(tmp_path):
    # Fewer accepts than clients means the accept loop dropped someone.
    fresh = minimal_doc()
    fresh["scenarios"]["socket"]["conns"]["accepted"] = 5
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "accept loop lost clients" in result.stdout


def test_socket_p99_within_floored_tolerance_passes(tmp_path):
    # The 10 ms floor absorbs scheduler/socket jitter: baseline 8 ms may
    # drift to 39 ms before the gate cares.
    fresh = minimal_doc()
    fresh["scenarios"]["socket"]["p99_ms"] = 39.0
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 0, result.stdout + result.stderr


def test_socket_p99_regression_beyond_tolerance_fails(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["socket"]["p99_ms"] = 41.0  # > max(8, 10) * 4
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "socket.p99_ms" in result.stdout
    assert "regressed" in result.stdout


def test_socket_shed_rate_regression_fails(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["socket"]["shed_rate"] = 0.9  # > max(0.2, 0.1) * 2
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "socket.shed_rate" in result.stdout


def test_socket_goodput_is_informational(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["socket"]["goodput_rps"] = 100.0
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 0, result.stdout + result.stderr


def test_missing_iter_scenario_fails(tmp_path):
    fresh = minimal_doc()
    del fresh["scenarios"]["iter"]
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "iter" in result.stdout
    assert "Traceback" not in result.stderr


def test_iter_worse_than_soft_fails(tmp_path):
    # The QoR story is a hard floor, not a trend: any grid point ending
    # worse than the soft base run pushes the summed delta positive.
    fresh = minimal_doc()
    fresh["scenarios"]["iter"]["qor_delta_vs_soft"] = 1
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "worse than its soft base run" in result.stdout


def test_iter_zero_delta_with_an_improved_point_passes(tmp_path):
    # Zero summed delta is acceptable as long as some point still improves
    # (improvements elsewhere may be offset by nothing, never by losses).
    fresh = minimal_doc()
    fresh["scenarios"]["iter"]["qor_delta_vs_soft"] = 0
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 0, result.stdout + result.stderr


def test_iter_no_improvement_fails(tmp_path):
    # An iterative backend that never beats its base run anywhere on the
    # grid is a no-op wearing a budget.
    fresh = minimal_doc()
    fresh["scenarios"]["iter"]["improved_points"] = 0
    fresh["scenarios"]["iter"]["qor_delta_vs_soft"] = 0
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "no grid point improved" in result.stdout


def test_iter_budget_exhaustion_fails(tmp_path):
    # max_iterations above the default budget means some grid point never
    # reached a fixed point - termination came from the cap, not convergence.
    fresh = minimal_doc()
    fresh["scenarios"]["iter"]["max_iterations"] = 9
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "no fixed point" in result.stdout


def test_iter_gate_failure_fails(tmp_path):
    fresh = minimal_doc()
    fresh["scenarios"]["iter"]["gate"]["pass"] = False
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "iter: scenario's own gate failed" in result.stdout


def test_iter_throughput_collapse_fails(tmp_path):
    # points_per_sec is a gated higher-is-better metric: >2x drop vs the
    # committed baseline fails (budget sweeps are the first runtime-vs-QoR
    # Pareto surface, so the runtime side must hold too).
    fresh = minimal_doc()
    fresh["scenarios"]["iter"]["points_per_sec"] = 1000.0
    result = run_gate(tmp_path, minimal_doc(), fresh)
    assert result.returncode == 1
    assert "iter.points_per_sec" in result.stdout
