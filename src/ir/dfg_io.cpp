#include "ir/dfg_io.h"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace softsched::ir {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw graph_error("dfg_io: line " + std::to_string(line) + ": " + message);
}

} // namespace

op_kind parse_op_kind(const std::string& name) {
  if (name == "add") return op_kind::add;
  if (name == "sub") return op_kind::sub;
  if (name == "mul") return op_kind::mul;
  if (name == "compare") return op_kind::compare;
  if (name == "load") return op_kind::load;
  if (name == "store") return op_kind::store;
  if (name == "move") return op_kind::move;
  throw graph_error("dfg_io: unknown operation kind '" + name + "'");
}

dfg read_dfg(std::istream& in, const resource_library& library) {
  std::string header_name = "unnamed";
  std::map<std::string, vertex_id> by_name;
  // Two-phase: we need the dfg's name before constructing it, so buffer
  // parsed declarations first.
  struct op_decl {
    int line;
    std::string name;
    bool is_wire = false;
    op_kind kind = op_kind::add;
    int wire_delay = 1;
    std::vector<std::string> inputs;
  };
  struct edge_decl {
    int line;
    std::string from, to;
  };
  std::vector<op_decl> ops;
  std::vector<edge_decl> edges;

  std::string line_text;
  int line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line_text)) {
    ++line_no;
    const std::size_t hash = line_text.find('#');
    if (hash != std::string::npos) line_text.resize(hash);
    std::istringstream tokens(line_text);
    std::string keyword;
    if (!(tokens >> keyword)) continue; // blank/comment line

    if (keyword == "dfg") {
      if (saw_header) fail(line_no, "duplicate dfg header");
      if (!(tokens >> header_name)) fail(line_no, "dfg header needs a name");
      saw_header = true;
    } else if (keyword == "op" || keyword == "wire") {
      op_decl decl;
      decl.line = line_no;
      decl.is_wire = keyword == "wire";
      if (!(tokens >> decl.name)) fail(line_no, "missing operation name");
      if (decl.is_wire) {
        if (!(tokens >> decl.wire_delay)) fail(line_no, "wire needs a delay");
        if (decl.wire_delay < 1) fail(line_no, "wire delay must be >= 1");
      } else {
        std::string kind_name;
        if (!(tokens >> kind_name)) fail(line_no, "missing operation kind");
        try {
          decl.kind = parse_op_kind(kind_name);
        } catch (const graph_error&) {
          fail(line_no, "unknown operation kind '" + kind_name + "'");
        }
      }
      std::string input;
      while (tokens >> input) decl.inputs.push_back(input);
      ops.push_back(std::move(decl));
    } else if (keyword == "edge") {
      edge_decl decl;
      decl.line = line_no;
      if (!(tokens >> decl.from >> decl.to)) fail(line_no, "edge needs two operations");
      edges.push_back(std::move(decl));
    } else {
      fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }

  dfg d(header_name, library);
  for (const op_decl& decl : ops) {
    if (by_name.count(decl.name) != 0) fail(decl.line, "duplicate operation '" + decl.name + "'");
    std::vector<vertex_id> inputs;
    for (const std::string& input : decl.inputs) {
      const auto it = by_name.find(input);
      if (it == by_name.end()) fail(decl.line, "undeclared operand '" + input + "'");
      inputs.push_back(it->second);
    }
    const vertex_id v =
        decl.is_wire
            ? d.add_wire(decl.wire_delay, {}, decl.name)
            : d.add_op(decl.kind, std::span<const vertex_id>(inputs), decl.name);
    if (decl.is_wire) {
      for (const vertex_id in : inputs) d.add_dependence(in, v);
    }
    by_name.emplace(decl.name, v);
  }
  for (const edge_decl& decl : edges) {
    const auto from = by_name.find(decl.from);
    const auto to = by_name.find(decl.to);
    if (from == by_name.end()) fail(decl.line, "undeclared operation '" + decl.from + "'");
    if (to == by_name.end()) fail(decl.line, "undeclared operation '" + decl.to + "'");
    d.add_dependence(from->second, to->second);
  }
  d.validate();
  return d;
}

dfg read_dfg_string(const std::string& text, const resource_library& library) {
  std::istringstream in(text);
  return read_dfg(in, library);
}

void write_dfg(std::ostream& out, const dfg& d) {
  const auto& g = d.graph();
  out << "dfg " << d.name() << '\n';
  // Vertices in id order are topological for builder-produced graphs, but
  // not necessarily after refinements (loads are appended after the
  // consumers they feed). Emit ops in id order and defer every input
  // reference to a vertex with a higher id to an explicit edge line.
  std::vector<std::pair<vertex_id, vertex_id>> deferred;
  for (const vertex_id v : g.vertices()) {
    if (d.kind(v) == op_kind::wire)
      out << "wire " << g.name(v) << ' ' << g.delay(v);
    else
      out << "op " << g.name(v) << ' ' << kind_name(d.kind(v));
    for (const vertex_id p : g.preds(v)) {
      if (p < v)
        out << ' ' << g.name(p);
      else
        deferred.emplace_back(p, v);
    }
    out << '\n';
  }
  for (const auto& [from, to] : deferred)
    out << "edge " << g.name(from) << ' ' << g.name(to) << '\n';
}

} // namespace softsched::ir
