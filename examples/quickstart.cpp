// quickstart - the 60-second tour of the library:
//   1. build a dataflow graph (the HAL differential-equation benchmark),
//   2. soft-schedule it onto "2 ALUs + 2 multipliers" with the threaded
//      scheduler,
//   3. inspect the soft state (threads, diameter),
//   4. extract the final hard schedule and validate it.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "hard/extract.h"
#include "hard/schedule.h"
#include "ir/benchmarks.h"
#include "meta/meta_schedule.h"

namespace si = softsched::ir;
namespace sc = softsched::core;
namespace sh = softsched::hard;
namespace sm = softsched::meta;

int main() {
  // 1. A dataflow graph. make_hal() builds the classic HLS benchmark; see
  // ir/dfg.h to assemble your own with add_op()/add_dependence().
  const si::resource_library library; // ALU ops: 1 cycle, multiply: 2 cycles
  const si::dfg hal = si::make_hal(library);
  std::cout << "HAL: " << hal.op_count() << " operations ("
            << hal.count_kind(si::op_kind::mul) << " multiplies)\n";

  // 2. The soft scheduler. Threads = functional units: the resource set
  // "2+/-,2*" creates 2 ALU threads, 2 multiplier threads (+1 memory port).
  const si::resource_set resources{2, 2, 1};
  sc::threaded_graph state = sc::make_hls_state(hal, resources);

  // A meta schedule decides the feed order; the online scheduler places
  // one operation at a time, each placement online-optimal (Theorem 2).
  state.schedule_all(sm::meta_schedule(hal.graph(), sm::meta_kind::list_priority));

  // 3. The result is *soft*: a partial order. Threads are totally ordered
  // (they serialize one unit); operations on different threads stay
  // unordered unless data dependences say otherwise - that slack is what
  // later refinement steps (spill code, wire delays) consume.
  std::cout << "\nsoft schedule: " << state.diameter() << " states, "
            << state.thread_count() << " threads\n";
  for (int k = 0; k < state.thread_count(); ++k) {
    const auto seq = state.thread_sequence(k);
    if (seq.empty()) continue;
    std::cout << "  thread " << k << " ("
              << si::class_name(static_cast<si::resource_class>(state.thread_tag(k)))
              << "):";
    for (const auto v : seq) std::cout << ' ' << hal.graph().name(v);
    std::cout << '\n';
  }

  // 4. The hard decision - the exact cycle per operation - is delayed
  // until you ask for it.
  sh::schedule final_schedule = sh::extract_schedule(state);
  std::cout << "\nextracted hard schedule (makespan " << final_schedule.makespan
            << " cycles):\n";
  sh::write_gantt(std::cout, hal, final_schedule);

  const auto violations = sh::validate_schedule(hal, final_schedule, &resources);
  std::cout << (violations.empty() ? "\nschedule is valid.\n"
                                   : "\nschedule INVALID: " + violations.front() + "\n");
  return violations.empty() ? 0 : 1;
}
