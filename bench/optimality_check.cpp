// optimality_check - Theorem 2 / Definition 5 at scale: sweeps random
// DAGs x thread counts x feed orders, comparing the fast select()'s
// resulting diameter against the naive exhaustive-speculation minimum at
// every single step, and reports a mismatch table (all-zero = the online
// optimality theorem reproduces).
#include <iostream>
#include <vector>

#include "core/threaded_graph.h"
#include "graph/generators.h"
#include "graph/topo.h"
#include "util/rng.h"
#include "util/table.h"

namespace sg = softsched::graph;
namespace sc = softsched::core;
using sg::vertex_id;
using softsched::rng;

namespace {

struct sweep_row {
  int vertices;
  int threads;
  const char* order;
  long long steps = 0;
  long long mismatches = 0;
};

sweep_row run_sweep(int layers, int width, int threads, bool reverse_order,
                    std::uint64_t seed) {
  rng rand(seed);
  sg::layered_params params;
  params.layers = layers;
  params.width = width;
  params.edge_prob = 0.3;
  const sg::precedence_graph g = sg::layered_random(params, rand);

  std::vector<vertex_id> order = sg::topological_order(g);
  if (reverse_order) {
    std::reverse(order.begin(), order.end());
  } else {
    rand.shuffle(order);
  }

  sweep_row row{static_cast<int>(g.vertex_count()), threads,
                reverse_order ? "reverse-topo" : "random", 0, 0};
  sc::threaded_graph state(g, threads);
  for (const vertex_id v : order) {
    const sc::insert_position fast = state.select(v);
    const sc::insert_position naive = state.select_naive(v);
    sc::threaded_graph probe(state);
    probe.commit(fast, v);
    ++row.steps;
    if (probe.diameter() != naive.cost) ++row.mismatches;
    state.commit(fast, v);
  }
  return row;
}

} // namespace

int main() {
  std::cout << "Online optimality sweep (Theorem 2): fast select vs naive\n"
            << "speculative minimum, per scheduling step.\n\n";
  softsched::table tbl;
  tbl.set_header({"|V|", "K", "feed order", "steps", "mismatches"});
  long long total_steps = 0;
  long long total_mismatches = 0;
  std::uint64_t seed = 1;
  for (const auto& [layers, width] : {std::pair{4, 4}, {8, 4}, {8, 8}, {16, 8}}) {
    for (const int threads : {1, 2, 4}) {
      for (const bool reverse : {false, true}) {
        const sweep_row row = run_sweep(layers, width, threads, reverse, seed++);
        tbl.add_row({softsched::cell(row.vertices), softsched::cell(row.threads),
                     row.order, softsched::cell(row.steps),
                     softsched::cell(row.mismatches)});
        total_steps += row.steps;
        total_mismatches += row.mismatches;
      }
    }
  }
  tbl.add_separator();
  tbl.add_row({"total", "", "", softsched::cell(total_steps),
               softsched::cell(total_mismatches)});
  tbl.print(std::cout);
  std::cout << (total_mismatches == 0
                    ? "\nPASS: every step was online-optimal.\n"
                    : "\nFAIL: optimality mismatches found!\n");
  return total_mismatches == 0 ? 0 : 1;
}
