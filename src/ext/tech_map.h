// tech_map.h - resource-constrained technology mapping with the threaded
// scheduler as its evaluation kernel, one of the two polynomial-time
// algorithms the paper's outlook (Section 6) claims the kernel enables.
//
// The mapping decision here is multiply-accumulate fusion: a multiply
// whose single consumer is an add can be covered by one MAC unit
// operation (latency mac_latency < mul + add). Whether a fusion helps
// depends on the schedule - it trades ALU pressure against multiplier
// occupancy - so each candidate is accepted or rejected by rescheduling
// the mapped DFG with the threaded scheduler under the given resources.
#pragma once

#include <vector>

#include "ir/benchmarks.h"
#include "ir/dfg.h"

namespace softsched::ext {

using graph::vertex_id;

/// A fusable multiply -> add pair (the multiply's only consumer).
struct mac_candidate {
  vertex_id mul;
  vertex_id add;
};

/// All fusable pairs, deterministically ordered. A multiply qualifies when
/// its single consumer is an add; each add participates in at most one
/// candidate (the lowest-id multiply wins).
[[nodiscard]] std::vector<mac_candidate> find_mac_candidates(const ir::dfg& d);

struct tech_map_result {
  ir::dfg mapped;               ///< the final mapped DFG
  std::size_t fused = 0;        ///< accepted fusions
  std::size_t candidates = 0;   ///< fusable pairs examined
  long long latency_before = 0; ///< threaded-schedule length, unmapped
  long long latency_after = 0;  ///< threaded-schedule length, mapped
};

/// Greedy mapping: walks the candidates, keeps a fusion iff the threaded
/// schedule of the cumulatively mapped DFG is no worse than the current
/// best. O(candidates) scheduler runs; each run is the linear online
/// algorithm, so the whole mapping is polynomial.
[[nodiscard]] tech_map_result map_macs(const ir::dfg& d, const ir::resource_set& resources,
                                       int mac_latency = 2);

/// Rebuilds `d` with the given fusions applied (each pair becomes one
/// multiplier-class op of latency mac_latency named "mac_<add>"). Exposed
/// for tests.
[[nodiscard]] ir::dfg fuse_macs(const ir::dfg& d, const std::vector<mac_candidate>& fusions,
                                int mac_latency);

} // namespace softsched::ext
