// dse.h - the design-space exploration engine: fan one design out over a
// resource/latency grid on the work-stealing thread pool, soft-schedule
// every point, and reduce the outcomes to an area/latency Pareto frontier.
//
// Concurrency contract (docs/DESIGN.md §5): a grid point is a share-nothing
// job. Each job builds its own resource library, its own DFG, and its own
// threaded state, and writes into a result slot pre-allocated at its grid
// index; the only cross-thread communication is the pool's queue and the
// final join. Consequently the *values* in an exploration_result - points,
// schedules, frontier - are a pure function of (grid_spec, meta kind) and
// identical for any worker count; only the wall-clock fields vary.
#pragma once

#include <string>
#include <vector>

#include "core/threaded_graph.h"
#include "explore/grid.h"
#include "explore/pareto.h"
#include "meta/meta_schedule.h"
#include "sched/backend.h"
#include "util/json.h"

namespace softsched::explore {

/// Outcome of scheduling one grid point with one backend.
struct point_result {
  design_point point;
  std::string backend = "soft"; ///< scheduler backend that produced this point
  bool feasible = false;
  std::string infeasible_reason; ///< set iff !feasible
  std::size_t ops = 0;
  long long latency = -1; ///< final ||S|| in states; -1 when infeasible
  long long area = 0;     ///< allocation_area(point.resources)
  double wall_ms = 0;     ///< this job's scheduling time (timing only -
                          ///< excluded from determinism comparisons)
  core::schedule_stats stats;
  std::vector<long long> start_times; ///< per-op ASAP start cycle
  std::vector<int> unit_of;           ///< per-op thread (functional unit)

  /// Value equality ignoring the wall-clock field: the determinism witness
  /// the jobs-1-vs-jobs-N property checks per point.
  [[nodiscard]] bool same_schedule(const point_result& other) const;
};

struct exploration_result {
  /// Backend names actually explored, in option order (default {"soft"}).
  std::vector<std::string> backends;
  /// Backend-major: backend b's outcomes occupy the contiguous block
  /// [b·P, (b+1)·P) in grid enumeration order, P = point_count(spec).
  std::vector<point_result> points;
  /// One Pareto frontier per backend (indices into `points`) - a single
  /// grid run emits the per-backend frontiers side by side.
  std::vector<std::vector<int>> frontiers;
  std::vector<int> frontier; ///< frontiers[0], kept for single-backend callers
  unsigned jobs = 1;         ///< worker count actually used
  double wall_ms = 0;        ///< whole-exploration wall time

  [[nodiscard]] std::size_t feasible_count() const;
  [[nodiscard]] double points_per_sec() const;

  /// True iff every point's schedule and the frontier match (timings and
  /// worker counts are ignored).
  [[nodiscard]] bool same_outcome(const exploration_result& other) const;
};

struct exploration_options {
  int jobs = 0; ///< worker threads; < 1 means thread_pool::hardware_workers()
  meta::meta_kind meta = meta::meta_kind::list_priority; ///< not `random`
  /// Scheduler backends to fan the grid out over (registry names, see
  /// sched::backend_names()); empty means {"soft"}. Unknown names throw
  /// precondition_error before any point runs.
  std::vector<std::string> backends = {};
  /// Baseline iteration budget for iterative backends when the grid's
  /// iter_budget axis is off; -1 = backend default. A point on the axis
  /// overrides this per point.
  long long iter_budget = -1;
  /// Per-worker run_context arenas (off = the heap baseline); never changes
  /// a point's values - the jobs-1-vs-jobs-N property holds either way.
  bool arena = true;
  std::size_t arena_block_bytes = 0; ///< 0 = util::arena::default_block_bytes
};

/// Schedules one grid point in isolation with the soft scheduler (also the
/// body each pool job runs). Infeasible allocations - a resource class the
/// design needs with zero units - come back with feasible = false, not an
/// exception.
[[nodiscard]] point_result run_point(const grid_spec& spec, const design_point& point,
                                     meta::meta_kind meta);

/// Backend-parameterized variant: same isolation contract, any registered
/// scheduler backend. `ctx` is the calling worker's scratch (the engine
/// keeps one per pool worker); it never changes the point's values, only
/// where the run's memory comes from.
[[nodiscard]] point_result run_point(const grid_spec& spec, const design_point& point,
                                     const sched::scheduler_backend& backend,
                                     const sched::backend_options& options,
                                     sched::run_context& ctx);

/// One-shot variant on a private heap-mode context.
[[nodiscard]] point_result run_point(const grid_spec& spec, const design_point& point,
                                     const sched::scheduler_backend& backend,
                                     const sched::backend_options& options);

/// The engine: enumerate, fan out, reduce.
[[nodiscard]] exploration_result run_exploration(const grid_spec& spec,
                                                 const exploration_options& options = {});

/// JSON report: grid + per-point outcomes (with schedule_stats) + frontier.
/// Emits one object into an already-open writer position.
void write_report(json_writer& j, const grid_spec& spec, const exploration_result& result);

/// One schedule_stats counter block as a JSON object - shared by
/// write_report and the bench harnesses so every report spells the
/// counters the same way.
void write_schedule_stats(json_writer& j, const core::schedule_stats& s);

} // namespace softsched::explore
