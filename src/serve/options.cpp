#include "serve/options.h"

#include "util/check.h"

namespace softsched::serve {

arena_flag parse_arena_flag(const std::string& value) {
  if (value == "on") return {true, 0};
  if (value == "off") return {false, 0};
  std::size_t bytes = 0;
  for (const char c : value) {
    SOFTSCHED_EXPECT(c >= '0' && c <= '9',
                     "--arena must be on, off, or a positive block byte count");
    bytes = bytes * 10 + static_cast<std::size_t>(c - '0');
  }
  SOFTSCHED_EXPECT(!value.empty() && bytes > 0,
                   "--arena must be on, off, or a positive block byte count");
  return {true, bytes};
}

void validate_serve_flags(const serve_flags& flags) {
  (void)parse_arena_flag(flags.arena); // throws on a malformed value
  SOFTSCHED_EXPECT(flags.cache_mb >= 0, "--cache-mb must be >= 0");
  SOFTSCHED_EXPECT(flags.disk_cache_mb >= 0, "--disk-cache-mb must be >= 0");
  SOFTSCHED_EXPECT(flags.serve_batch_size >= 0, "--serve-batch-size must be >= 0");
  SOFTSCHED_EXPECT(flags.serve_queue >= 1, "--serve-queue must be >= 1");
  SOFTSCHED_EXPECT(flags.max_conns >= 1, "--max-conns must be >= 1");
  (void)listen_spec::parse(flags.listen); // throws on a malformed spec
}

listen_spec listen_from_flags(const serve_flags& flags) {
  validate_serve_flags(flags);
  return listen_spec::parse(flags.listen);
}

engine_options engine_options_from_flags(const serve_flags& flags) {
  validate_serve_flags(flags);
  engine_options opt;
  opt.jobs = flags.jobs;
  opt.cache_bytes = static_cast<std::size_t>(flags.cache_mb) << 20;
  opt.batch_size = static_cast<std::size_t>(flags.serve_batch_size);
  opt.emit_schedule = !flags.serve_compact;
  opt.cache_dir = flags.cache_dir;
  opt.disk_cache_bytes = static_cast<std::size_t>(flags.disk_cache_mb) << 20;
  // Only the io= family applies to the batch engine (slot/shard/conn
  // target the daemon); it is consumed exclusively by the disk tier.
  opt.disk_faults = fault_plan::from_env().io;
  const arena_flag arena = parse_arena_flag(flags.arena);
  opt.arena = arena.enabled;
  opt.arena_block_bytes = arena.block_bytes;
  return opt;
}

daemon_options daemon_options_from_flags(const serve_flags& flags) {
  validate_serve_flags(flags);
  daemon_options opt;
  opt.service.jobs = flags.jobs;
  opt.service.cache_bytes = static_cast<std::size_t>(flags.cache_mb) << 20;
  opt.service.queue_capacity = static_cast<std::size_t>(flags.serve_queue);
  opt.service.emit_schedule = !flags.serve_compact;
  opt.service.faults = fault_plan::from_env();
  opt.service.cache_dir = flags.cache_dir;
  opt.service.disk_cache_bytes = static_cast<std::size_t>(flags.disk_cache_mb) << 20;
  const arena_flag arena = parse_arena_flag(flags.arena);
  opt.service.arena = arena.enabled;
  opt.service.arena_block_bytes = arena.block_bytes;
  opt.ordered = flags.serve_ordered;
  opt.max_connections = static_cast<std::size_t>(flags.max_conns);
  return opt;
}

} // namespace softsched::serve
