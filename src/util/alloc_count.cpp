#include "util/alloc_count.h"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

// The counters and the operator new/delete replacements must share this TU:
// a static archive member is linked in only when one of its symbols is
// referenced, and the consumers reference the accessors.

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<std::uint64_t> g_frees{0};

void* counted_alloc(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (align > alignof(std::max_align_t)) {
    // aligned_alloc requires size to be a multiple of the alignment.
    const std::size_t padded = (size + align - 1) / align * align;
    return std::aligned_alloc(align, padded);
  }
  return std::malloc(size == 0 ? 1 : size);
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

} // namespace

namespace softsched::util {

std::uint64_t heap_alloc_count() noexcept {
  return g_allocs.load(std::memory_order_relaxed);
}
std::uint64_t heap_alloc_bytes() noexcept {
  return g_bytes.load(std::memory_order_relaxed);
}
std::uint64_t heap_free_count() noexcept {
  return g_frees.load(std::memory_order_relaxed);
}

} // namespace softsched::util

// -- global replacements (linked only into instrumented binaries) ----------

void* operator new(std::size_t size) {
  void* p = counted_alloc(size, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size, alignof(std::max_align_t));
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size, alignof(std::max_align_t));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }
