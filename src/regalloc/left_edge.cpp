#include "regalloc/left_edge.h"

#include <algorithm>
#include <numeric>

namespace softsched::regalloc {

register_binding left_edge_allocate(const std::vector<value_lifetime>& lifetimes) {
  register_binding binding;
  binding.reg.assign(lifetimes.size(), -1);

  // Process values by ascending definition time (the "left edge").
  std::vector<std::size_t> order(lifetimes.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&lifetimes](std::size_t a, std::size_t b) {
    if (lifetimes[a].def != lifetimes[b].def) return lifetimes[a].def < lifetimes[b].def;
    return lifetimes[a].last_use < lifetimes[b].last_use;
  });

  std::vector<long long> register_free; // per register: cycle it frees up
  for (const std::size_t i : order) {
    int chosen = -1;
    for (std::size_t r = 0; r < register_free.size(); ++r) {
      if (register_free[r] <= lifetimes[i].def) {
        chosen = static_cast<int>(r);
        break;
      }
    }
    if (chosen < 0) {
      chosen = static_cast<int>(register_free.size());
      register_free.push_back(0);
    }
    register_free[static_cast<std::size_t>(chosen)] = lifetimes[i].last_use;
    binding.reg[i] = chosen;
  }
  binding.register_count = static_cast<int>(register_free.size());
  return binding;
}

} // namespace softsched::regalloc
