// soft_definition_test.cpp - the formal conditions of Section 3 verified
// on execution traces of the threaded scheduler:
//
//   Definition 3 (online schedule): initial, correctness, incremental.
//   Definition 4 (threaded graph): thread partition + per-thread total order.
//   Hard-vs-soft: a 1-threaded state is totally ordered (a hard schedule);
//   a K>1 state is generally only partially ordered (soft).
//   Lemma 4: diameters are monotonically non-decreasing.
//   Lemma 6: scheduling v leaves its predecessors' source distances and
//   its successors' sink distances unchanged.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/threaded_graph.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "graph/topo.h"
#include "util/rng.h"

namespace sg = softsched::graph;
namespace sc = softsched::core;
using sg::vertex_id;
using softsched::rng;

namespace {

sg::precedence_graph random_graph(std::uint64_t seed) {
  rng rand(seed);
  return sg::gnp_dag(22, 0.18, 1, 2, rand);
}

} // namespace

TEST(SoftDefinition, InitialConditionEmptyState) {
  const sg::precedence_graph g = random_graph(2);
  sc::threaded_graph state(g, 3);
  EXPECT_EQ(state.scheduled_count(), 0u);
  EXPECT_TRUE(state.state_edges().empty());
  EXPECT_EQ(state.diameter(), 0);
}

TEST(SoftDefinition, CorrectnessConditionOnTrace) {
  // p <=G q for scheduled p, q implies p <=S q at every step.
  const sg::precedence_graph g = random_graph(3);
  const sg::transitive_closure closure(g);
  sc::threaded_graph state(g, 2);
  rng rand(99);
  std::vector<vertex_id> order = g.vertices();
  rand.shuffle(order);
  std::vector<vertex_id> scheduled;
  for (const vertex_id v : order) {
    state.schedule(v);
    scheduled.push_back(v);
    for (const vertex_id p : scheduled)
      for (const vertex_id q : scheduled)
        if (closure.strictly_reaches(p, q)) {
          ASSERT_TRUE(state.state_precedes(p, q))
              << "correctness violated: " << p.value() << " <G " << q.value();
        }
  }
}

TEST(SoftDefinition, IncrementalConditionOnTrace) {
  // Each step adds exactly the new vertex and only tightens the order:
  // every (a, b) related before stays related after.
  const sg::precedence_graph g = random_graph(4);
  sc::threaded_graph state(g, 3);
  rng rand(7);
  std::vector<vertex_id> order = g.vertices();
  rand.shuffle(order);
  std::vector<vertex_id> scheduled;
  for (const vertex_id v : order) {
    // Record the relation over the current support.
    std::vector<std::pair<vertex_id, vertex_id>> related;
    for (const vertex_id a : scheduled)
      for (const vertex_id b : scheduled)
        if (a != b && state.state_precedes(a, b)) related.emplace_back(a, b);

    state.schedule(v);
    scheduled.push_back(v);
    EXPECT_EQ(state.scheduled_count(), scheduled.size());
    for (const auto& [a, b] : related)
      ASSERT_TRUE(state.state_precedes(a, b))
          << "incremental condition violated at v" << v.value();
  }
}

TEST(SoftDefinition, OneThreadStateIsTotallyOrdered) {
  // K = 1 degenerates the soft scheduler into a hard one: any two
  // scheduled operations are comparable.
  const sg::precedence_graph g = random_graph(5);
  sc::threaded_graph state(g, 1);
  state.schedule_all(sg::topological_order(g));
  for (const vertex_id a : g.vertices())
    for (const vertex_id b : g.vertices())
      EXPECT_TRUE(state.state_precedes(a, b) || state.state_precedes(b, a));
}

TEST(SoftDefinition, MultiThreadStateIsPartiallyOrdered) {
  // With parallelism available, some pair must stay incomparable -
  // that is what makes the schedule soft.
  sg::precedence_graph g;
  const vertex_id a = g.add_vertex(1);
  const vertex_id b = g.add_vertex(1);
  sc::threaded_graph state(g, 2);
  state.schedule(a);
  state.schedule(b);
  EXPECT_FALSE(state.state_precedes(a, b) && state.state_precedes(b, a));
  EXPECT_TRUE(!state.state_precedes(a, b) || !state.state_precedes(b, a));
  // They landed on different threads (independent ops, 2 units).
  EXPECT_NE(state.thread_of(a), state.thread_of(b));
  EXPECT_FALSE(state.state_precedes(a, b));
  EXPECT_FALSE(state.state_precedes(b, a));
}

TEST(SoftDefinition, ThreadPartitionCoversEveryScheduledOp) {
  const sg::precedence_graph g = random_graph(6);
  sc::threaded_graph state(g, 4);
  state.schedule_all(sg::topological_order(g));
  std::set<std::uint32_t> seen;
  for (int k = 0; k < state.thread_count(); ++k) {
    for (const vertex_id v : state.thread_sequence(k)) {
      EXPECT_EQ(state.thread_of(v), k);
      EXPECT_TRUE(seen.insert(v.value()).second) << "vertex on two threads";
    }
  }
  EXPECT_EQ(seen.size(), g.vertex_count());
}

TEST(SoftDefinition, ThreadSequencesAreTotallyOrderedChains) {
  const sg::precedence_graph g = random_graph(8);
  sc::threaded_graph state(g, 3);
  state.schedule_all(sg::topological_order(g));
  for (int k = 0; k < state.thread_count(); ++k) {
    const auto seq = state.thread_sequence(k);
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      EXPECT_TRUE(state.state_precedes(seq[i], seq[i + 1]));
      EXPECT_FALSE(state.state_precedes(seq[i + 1], seq[i]));
    }
  }
}

TEST(SoftDefinition, Lemma4DiameterMonotonic) {
  const sg::precedence_graph g = random_graph(9);
  sc::threaded_graph state(g, 2);
  rng rand(11);
  std::vector<vertex_id> order = g.vertices();
  rand.shuffle(order);
  long long prev = 0;
  for (const vertex_id v : order) {
    state.schedule(v);
    const long long now = state.diameter();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(SoftDefinition, Lemma6NeighborDistancesStable) {
  // Scheduling v must not change ||->p|| of scheduled predecessors p nor
  // ||q->|| of scheduled successors q.
  const sg::precedence_graph g = random_graph(10);
  const sg::transitive_closure closure(g);
  sc::threaded_graph state(g, 3);
  rng rand(13);
  std::vector<vertex_id> order = g.vertices();
  rand.shuffle(order);
  std::vector<vertex_id> scheduled;
  for (const vertex_id v : order) {
    std::vector<std::pair<vertex_id, long long>> pred_sdist;
    std::vector<std::pair<vertex_id, long long>> succ_tdist;
    for (const vertex_id u : scheduled) {
      if (closure.strictly_reaches(u, v)) pred_sdist.emplace_back(u, state.source_distance(u));
      if (closure.strictly_reaches(v, u)) succ_tdist.emplace_back(u, state.sink_distance(u));
    }
    state.schedule(v);
    scheduled.push_back(v);
    for (const auto& [u, sd] : pred_sdist)
      EXPECT_EQ(state.source_distance(u), sd) << "pred sdist changed (Lemma 6)";
    for (const auto& [u, td] : succ_tdist)
      EXPECT_EQ(state.sink_distance(u), td) << "succ tdist changed (Lemma 6)";
  }
}

TEST(SoftDefinition, StateOrderRefinesGraphOrder) {
  // The state's partial order is a *tightening*: it contains <=G
  // (restricted to scheduled ops) and possibly more (artificial edges),
  // never less.
  const sg::precedence_graph g = random_graph(12);
  const sg::transitive_closure closure(g);
  sc::threaded_graph state(g, 2);
  state.schedule_all(sg::topological_order(g));
  std::size_t graph_pairs = 0;
  std::size_t state_pairs = 0;
  for (const vertex_id a : g.vertices()) {
    for (const vertex_id b : g.vertices()) {
      if (a == b) continue;
      if (closure.strictly_reaches(a, b)) {
        ++graph_pairs;
        EXPECT_TRUE(state.state_precedes(a, b));
      }
      if (a != b && state.state_precedes(a, b)) ++state_pairs;
    }
  }
  EXPECT_GE(state_pairs, graph_pairs);
}
