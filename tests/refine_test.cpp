// refine_test.cpp - the refinement engine: spill code, wire delays and
// register moves injected into live threaded schedules. Includes the
// paper's Figure-1 narrative numbers: the 7-vertex example soft-schedules
// in 5 states; spilling vertex 3 yields 6 states; a one-cycle wire delay
// on 3 -> 6 keeps 5 states.
#include <gtest/gtest.h>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "graph/topo.h"
#include "hard/extract.h"
#include "hard/list_scheduler.h"
#include "hard/schedule.h"
#include "ir/benchmarks.h"
#include "meta/meta_schedule.h"
#include "phys/floorplan.h"
#include "phys/wire_model.h"
#include "refine/refinement.h"
#include "regalloc/lifetime.h"
#include "regalloc/spill.h"

#include <algorithm>
#include "util/check.h"

namespace sg = softsched::graph;
namespace sc = softsched::core;
namespace si = softsched::ir;
namespace sh = softsched::hard;
namespace sm = softsched::meta;
namespace sp = softsched::phys;
namespace sr = softsched::regalloc;
namespace sf = softsched::refine;
using sg::vertex_id;

namespace {

/// Figure-1 setup: the 7-vertex example scheduled onto 2 generic units
/// plus one memory port for spill refinements.
struct figure1_fixture {
  si::resource_library lib;
  si::dfg d;
  sc::threaded_graph state;

  figure1_fixture()
      : d(si::make_figure1(lib)), state(sc::make_hls_state(d, si::resource_set{2, 1, 1})) {
    state.schedule_all(sg::topological_order(d.graph()));
  }
};

} // namespace

TEST(Refine, Figure1SoftScheduleFiveStates) {
  figure1_fixture fx;
  EXPECT_EQ(fx.state.diameter(), 5);
}

TEST(Refine, Figure1SpillYieldsSixStates) {
  // Figure 1 (c): spilling vertex 3's value inserts st/ld on the 3 -> 6
  // dependence; the refined threaded schedule reaches 6 states.
  figure1_fixture fx;
  const sf::refinement_report report =
      sf::apply_spill(fx.d, fx.state, si::find_op(fx.d, "3"));
  EXPECT_EQ(report.diameter_before, 5);
  EXPECT_EQ(report.ops_inserted, 2u); // one store, one load (single consumer)
  EXPECT_EQ(report.diameter_after, 6);
  fx.state.check_invariants();
  // The refined state extracts into a valid schedule.
  sh::schedule s = sh::extract_schedule(fx.state);
  EXPECT_TRUE(sh::validate_schedule(fx.d, s, nullptr).empty());
}

TEST(Refine, Figure1WireDelayKeepsFiveStates) {
  // Figure 1 (d): a one-cycle wire delay on 3 -> 6 slots into the slack;
  // the schedule stays at 5 states.
  figure1_fixture fx;
  const sf::refinement_report report = sf::apply_wire_delay(
      fx.d, fx.state, si::find_op(fx.d, "3"), si::find_op(fx.d, "6"), 1);
  EXPECT_EQ(report.diameter_before, 5);
  EXPECT_EQ(report.diameter_after, 5);
  fx.state.check_invariants();
}

TEST(Refine, SpillStructureRewiresDependences) {
  figure1_fixture fx;
  const vertex_id v3 = si::find_op(fx.d, "3");
  const vertex_id v6 = si::find_op(fx.d, "6");
  ASSERT_TRUE(fx.d.graph().has_edge(v3, v6));
  sf::apply_spill(fx.d, fx.state, v3);
  EXPECT_FALSE(fx.d.graph().has_edge(v3, v6)) << "direct edge must be rewired";
  const vertex_id st = si::find_op(fx.d, "st_3");
  const vertex_id ld = si::find_op(fx.d, "ld_6");
  EXPECT_TRUE(fx.d.graph().has_edge(v3, st));
  EXPECT_TRUE(fx.d.graph().has_edge(st, ld));
  EXPECT_TRUE(fx.d.graph().has_edge(ld, v6));
  EXPECT_EQ(fx.d.kind(st), si::op_kind::store);
  EXPECT_EQ(fx.d.kind(ld), si::op_kind::load);
  // Memory ops landed on the memory-port thread.
  EXPECT_EQ(fx.state.thread_tag(fx.state.thread_of(st)),
            static_cast<int>(si::resource_class::memory_port));
}

TEST(Refine, SpillWithMultipleConsumersLoadsPerConsumer) {
  const si::resource_library lib;
  si::dfg d("t", lib);
  const vertex_id a = d.add_op(si::op_kind::add, {}, "a");
  const vertex_id c1 = d.add_op(si::op_kind::add, {a}, "c1");
  const vertex_id c2 = d.add_op(si::op_kind::add, {a}, "c2");
  sc::threaded_graph state = sc::make_hls_state(d, si::resource_set{2, 1, 1});
  state.schedule_all(sg::topological_order(d.graph()));
  const sf::refinement_report report = sf::apply_spill(d, state, a);
  EXPECT_EQ(report.ops_inserted, 3u); // st + 2 loads
  EXPECT_FALSE(d.graph().has_edge(a, c1));
  EXPECT_FALSE(d.graph().has_edge(a, c2));
  state.check_invariants();
}

TEST(Refine, SpillPreconditions) {
  figure1_fixture fx;
  const vertex_id v7 = si::find_op(fx.d, "7"); // sink: no consumers
  EXPECT_THROW(sf::apply_spill(fx.d, fx.state, v7), softsched::precondition_error);
}

TEST(Refine, WireDelayNeedsExistingEdge) {
  figure1_fixture fx;
  EXPECT_THROW(sf::apply_wire_delay(fx.d, fx.state, si::find_op(fx.d, "1"),
                                    si::find_op(fx.d, "7"), 1),
               softsched::precondition_error);
}

TEST(Refine, RegisterMoveKeepsValidity) {
  figure1_fixture fx;
  const sf::refinement_report report = sf::apply_register_move(
      fx.d, fx.state, si::find_op(fx.d, "1"), si::find_op(fx.d, "2"));
  EXPECT_EQ(report.ops_inserted, 1u);
  fx.state.check_invariants();
  sh::schedule s = sh::extract_schedule(fx.state);
  EXPECT_TRUE(sh::validate_schedule(fx.d, s, nullptr).empty());
}

TEST(Refine, WireInsertionBatchFromFloorplan) {
  // End-to-end physical refinement: schedule, bind (threads), floorplan,
  // plan wires, inject them, and stay valid.
  const si::resource_library lib;
  si::dfg d = si::make_ewf(lib);
  const si::resource_set rs = si::figure3_constraint(0);
  sc::threaded_graph state = sc::make_hls_state(d, rs);
  state.schedule_all(sm::meta_schedule(d.graph(), sm::meta_kind::list_priority));
  const long long before = state.diameter();

  const sh::schedule bound = sh::extract_schedule(state);
  const sp::floorplan plan(5, 2, 4);
  const sp::wire_model model{3, 0.5};
  const auto insertions = sp::plan_wire_insertions(d, bound, plan, model);
  ASSERT_FALSE(insertions.empty());

  const sf::refinement_report report = sf::apply_wire_insertions(d, state, insertions);
  EXPECT_EQ(report.ops_inserted, insertions.size());
  EXPECT_GE(report.diameter_after, before);
  state.check_invariants();
  sh::schedule refined = sh::extract_schedule(state);
  EXPECT_TRUE(sh::validate_schedule(d, refined, nullptr).empty());
}

TEST(Refine, SpillPlanDrivenRefinementKeepsBudget) {
  // Full register-pressure flow: schedule FIR16 (long multiplier-result
  // lifetimes across the adder tree), find the spill plan for a tight
  // register budget, apply every spill, and verify the refined schedule's
  // register demand meets the budget.
  const si::resource_library lib;
  si::dfg d = si::make_fir(lib, 16);
  const si::resource_set rs = si::figure3_constraint(0);
  sc::threaded_graph state = sc::make_hls_state(d, rs);
  state.schedule_all(sm::meta_schedule(d.graph(), sm::meta_kind::list_priority));

  sh::schedule s0 = sh::extract_schedule(state);
  const auto lifetimes = sr::compute_lifetimes(d, s0);
  const int demand = sr::max_live(lifetimes);
  const int budget = std::max(sr::min_spillable_demand(d, lifetimes), demand - 1);
  ASSERT_GT(demand, budget);
  const sr::spill_plan plan = sr::choose_spills(d, lifetimes, budget);
  ASSERT_FALSE(plan.values.empty());

  for (const vertex_id v : plan.values) sf::apply_spill(d, state, v);
  state.check_invariants();

  sh::schedule refined = sh::extract_schedule(state);
  EXPECT_TRUE(sh::validate_schedule(d, refined, nullptr).empty());
  // Note: the spilled values' register intervals shrink to one cycle; the
  // loads create fresh short values. Demand must not exceed the original.
  const auto refined_lifetimes = sr::compute_lifetimes(d, refined);
  EXPECT_LE(sr::max_live(refined_lifetimes), demand);
}

TEST(Refine, IncrementalMatchesScratchValidityNotWorseThanDouble) {
  // The phase-coupling headline: after a refinement, the soft flow's
  // incremental result must stay within a sane factor of rerunning the
  // hard scheduler from scratch on the refined DFG. (Quality parity is
  // measured by bench/refinement; here we assert validity + a loose bound.)
  const si::resource_library lib;
  for (int c = 0; c < si::figure3_constraint_count; ++c) {
    const si::resource_set rs = si::figure3_constraint(c);
    si::dfg soft_dfg = si::make_arf(lib);
    sc::threaded_graph state = sc::make_hls_state(soft_dfg, rs);
    state.schedule_all(sm::meta_schedule(soft_dfg.graph(), sm::meta_kind::list_priority));

    // Spill the first multiplier's value.
    const vertex_id victim = si::find_op(soft_dfg, "m1");
    sf::apply_spill(soft_dfg, state, victim);
    const long long incremental = state.diameter();

    si::dfg hard_dfg = si::make_arf(lib);
    sf::insert_spill_ops(hard_dfg, si::find_op(hard_dfg, "m1"));
    const long long scratch = sh::list_schedule(hard_dfg, rs).makespan;

    EXPECT_LE(incremental, 2 * scratch) << rs.label();
    state.check_invariants();
  }
}

TEST(Refine, EngineeringChangeAddsLateOperation) {
  // ECO scenario from the conclusion: new behaviour arrives after
  // scheduling; the online scheduler absorbs it without restarting.
  const si::resource_library lib;
  si::dfg d = si::make_hal(lib);
  sc::threaded_graph state = sc::make_hls_state(d, si::figure3_constraint(0));
  state.schedule_all(sm::meta_schedule(d.graph(), sm::meta_kind::topological));
  const long long before = state.diameter();

  // ECO: an extra correction subtract consuming u' and y'.
  const vertex_id fix = d.add_op(si::op_kind::sub,
                                 {si::find_op(d, "s2"), si::find_op(d, "a2")}, "eco");
  state.schedule(fix);
  EXPECT_TRUE(state.scheduled(fix));
  EXPECT_GE(state.diameter(), before);
  state.check_invariants();
  sh::schedule s = sh::extract_schedule(state);
  EXPECT_TRUE(sh::validate_schedule(d, s, nullptr).empty());
}
