// grid.h - the design-space-exploration grid: which design to schedule and
// which resource allocations / latency variants to fan it out over.
//
// A grid is the cross product of four inclusive integer axes (ALU count x
// multiplier count x memory-port count x multiplier latency) applied to one
// design. The design is either a registered benchmark (ir::make_benchmark
// syntax) or a member of the seeded layered random-DFG family; either way
// every grid point rebuilds its own private copy, because the multiplier-
// latency axis changes the resource library the DFG bakes its vertex delays
// from - and because private copies are what make the parallel runner
// share-nothing (docs/DESIGN.md §5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/dfg.h"

namespace softsched::explore {

/// The design one exploration fans out. Exactly one of `bench` /
/// `random_vertices` selects the source.
struct design_spec {
  std::string bench;       ///< non-empty: built-in benchmark name ("ewf", "fir16", ...)
  int random_vertices = 0; ///< > 0: layered random DFG of about this many ops
  double random_edge_prob = 0.25;
  std::uint64_t seed = 1;  ///< random-family seed; all grid points share it

  /// Display name ("ewf", "random800", ...).
  [[nodiscard]] std::string name() const;
};

/// Inclusive integer axis. hi < lo is an empty axis (zero grid points);
/// lo = 0 is allowed and yields infeasible points for designs that need the
/// resource class.
struct axis_range {
  int lo = 1;
  int hi = 1;

  [[nodiscard]] int count() const noexcept { return hi < lo ? 0 : hi - lo + 1; }
};

struct grid_spec {
  design_spec design;
  axis_range alus{1, 4};
  axis_range muls{1, 3};
  axis_range mems{1, 1};
  axis_range mul_latency{2, 2}; ///< technology/pipelining variants of the multiplier
  /// Iteration budget axis for iterative backends (sdc-iter): the first
  /// runtime-vs-QoR axis - more budget costs scheduler time, never area.
  /// The default {-1,-1} keeps it out of the grid (backend-default budget,
  /// one point); one-shot backends produce identical schedules along it.
  axis_range iter_budget{-1, -1};
};

/// One grid point: a resource allocation plus the multiplier-latency
/// variant. `index` is the position in enumeration order - the determinism
/// anchor every reduction sorts by, so results cannot depend on which
/// worker finished first.
struct design_point {
  int index = -1;
  ir::resource_set resources;
  int mul_latency = 2;
  int iter_budget = -1; ///< -1 = backend default (not on the budget axis)
};

[[nodiscard]] std::size_t point_count(const grid_spec& spec);

/// The grid in canonical enumeration order: mul_latency outermost, then
/// alus, muls, mems innermost.
[[nodiscard]] std::vector<design_point> enumerate_grid(const grid_spec& spec);

/// Applies a point's latency variant to a fresh library.
void apply_point_latency(const design_point& point, ir::resource_library& library);

/// Materializes the spec's design against `library` (which must outlive the
/// returned dfg). Deterministic: the same spec and library always produce
/// the same graph, so two points differing only in resources schedule
/// byte-identical DFGs.
[[nodiscard]] ir::dfg build_design(const design_spec& spec,
                                   const ir::resource_library& library);

} // namespace softsched::explore
