// daemon.h - the resident scheduling service behind `softsched_cli --serve`
// (ROADMAP item 1): the batch engine's pipeline reshaped for a long-lived
// process where tail latency under overload, not warm-cache throughput, is
// the headline number.
//
// Two layers:
//
//   * `service` - the transport-free core. submit() runs admission control
//     (a bounded queue; at capacity the request is shed immediately with
//     `"error":"overloaded"` + a retry_after_ms hint instead of queueing
//     without bound), then hands the request to the worker pool: parse ->
//     memoized canonical hash -> in-flight dedup (concurrent identical
//     requests coalesce onto one computation via a shared future - the
//     follower receives the leader's result directly, so it stays correct
//     even when the cache rejected the value as oversize) -> sharded
//     schedule cache -> scheduler backend. Responses stream back through a
//     per-request callback as they complete; drain() blocks until every
//     admitted request has responded. Live counters and a lock-light
//     latency histogram (serve/metrics.h) feed stats().
//
//   * `run_daemon` - the framed front-end: reads `<count>\n<payload>\n`
//     frames (serve/transport.h) from a stream, sniffs control ops
//     ({"op":"stats"} / {"op":"shutdown"}), submits everything else to the
//     service, and writes response frames either as they complete
//     (streaming, the default) or in input order behind a reorder buffer
//     (--serve-ordered: byte-identical payloads to --serve-batch, the PR-4
//     determinism contract). EOF, shutdown and transport errors all end in
//     the same graceful drain: every admitted request gets its response
//     before the daemon returns.
//
// Fault injection: a fault_plan (usually parsed from the SOFTSCHED_INJECT
// environment knob) deterministically delays or fails chosen *worker
// slots* (a request's slot is (seq - 1) % jobs - a pure function of the
// submission sequence, independent of which pool thread actually runs it)
// and *cache shards* (a failed shard is treated as unavailable: lookups
// miss, inserts are dropped). This exists only in the serve layer, only to
// make overload, slow-consumer and mid-drain-shutdown paths deterministic
// under test; the scheduling math is never perturbed.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "serve/cache.h"
#include "serve/diskcache.h"
#include "serve/engine.h"
#include "serve/metrics.h"
#include "serve/transport.h"
#include "util/thread_pool.h"

namespace softsched::serve {

/// What an injection rule does to its target: delay it, fail it, or both
/// (delay first, then fail).
struct fault_action {
  double delay_ms = 0;
  bool fail = false;
};

/// What a `conn=<n>` rule does to the Nth accepted connection: stall it
/// before serving, drop it at accept, or both (stall first, then drop).
struct conn_fault_action {
  double stall_ms = 0;
  bool drop = false;
};

/// Deterministic fault-injection plan for the serve layer. Spec grammar
/// (the SOFTSCHED_INJECT value): comma-separated rules, each
/// `<target>:<action>[:<action>...]` with targets `slot=<n>` / `shard=<n>`
/// / `io=<n>` / `conn=<n>` and actions `delay_ms=<float>` / `fail` /
/// `torn` (io only) / `stall_ms=<float>` / `drop` (conn only), e.g.
///
///   SOFTSCHED_INJECT="slot=0:delay_ms=5,shard=3:fail,io=2:torn,conn=2:drop"
///
/// A failed worker slot turns its requests into `"error":"injected fault:
/// worker slot <n>"` responses; a failed cache shard is unavailable (its
/// lookups miss, its inserts are dropped) - degraded, never crashed. An
/// `io=<n>` rule targets the Nth disk-tier record operation (1-based,
/// counting every record read/write attempt): `fail` reports an I/O error
/// (the disk tier degrades to RAM-only), `torn` makes a write persist only
/// a prefix while reporting success (the power-loss shape), and `delay_ms`
/// stalls the operation - under the flusher mutex, which is how the CI
/// kill-mid-write-behind leg pins its SIGKILL to a deterministic point.
/// A `conn=<n>` rule targets the Nth connection a socket listener accepts
/// (1-based, counting shed connections too): `drop` closes it without
/// reading a byte (the mid-flight client-death shape, server side) and
/// `stall_ms` parks it before its first read while it holds an active
/// slot - which is how tests pin the --max-conns shed boundary.
struct fault_plan {
  std::unordered_map<unsigned, fault_action> slots;
  std::unordered_map<unsigned, fault_action> shards;
  std::unordered_map<unsigned, conn_fault_action> conns;
  disk_fault_plan io; ///< forwarded to the disk tier (serve/diskcache.h)

  [[nodiscard]] bool empty() const noexcept {
    return slots.empty() && shards.empty() && conns.empty() && io.empty();
  }

  /// Parses a spec string; throws precondition_error on grammar errors
  /// (unknown target, unknown action, non-numeric index/delay).
  [[nodiscard]] static fault_plan parse(std::string_view spec);

  /// parse(getenv("SOFTSCHED_INJECT")); empty plan when unset/empty.
  [[nodiscard]] static fault_plan from_env();
};

struct service_options {
  int jobs = 0;                          ///< worker threads; < 1 = hardware_workers()
  std::size_t cache_bytes = 64ull << 20; ///< schedule-cache byte budget
  unsigned cache_shards = 16;
  std::size_t queue_capacity = 256; ///< admitted-but-unfinished bound (>= 1)
  bool emit_schedule = true;        ///< include start/unit arrays in responses
  double retry_after_ms = 10;       ///< backpressure hint on shed requests
  fault_plan faults;                ///< empty = no injection

  // Persistent tier (docs/SERVING.md "Persistence"): enabled iff cache_dir
  // is non-empty and disk_cache_bytes > 0. RAM misses read through to disk
  // (hits are promoted into the RAM tier); computed results are
  // write-behind-queued for a background flusher.
  std::string cache_dir;
  std::size_t disk_cache_bytes = 0;
  std::size_t disk_flush_queue = 256; ///< write-behind bound (>= 1)

  // Per-worker scheduling arenas (docs/DESIGN.md §8), same semantics as
  // engine_options: off = the cross-validated heap baseline; the mode can
  // never change a response byte.
  bool arena = true;
  std::size_t arena_block_bytes = 0; ///< 0 = util::arena::default_block_bytes
};

/// The resident scheduling service: bounded-queue admission, streaming
/// completion callbacks, graceful drain. Thread-safe: submit() may be
/// called from any number of client threads.
class service {
public:
  /// Completion callback: fires exactly once per admitted request, on a
  /// worker thread, when its response is ready. Must not throw.
  using callback = std::function<void(response)>;

  explicit service(const service_options& options = {});

  /// Drains admitted work, then joins the workers.
  ~service();

  service(const service&) = delete;
  service& operator=(const service&) = delete;

  /// Submits one raw JSONL request line under sequence number `seq`
  /// (1-based; becomes the response's line number, and picks the worker
  /// slot for fault injection). Returns true when admitted - `done` will
  /// fire exactly once. Returns false when the queue is at capacity: the
  /// request was shed, `done` never fires, and the caller should answer
  /// with overloaded_response(seq).
  [[nodiscard]] bool submit(std::uint64_t seq, std::string text, callback done);

  /// The shed-request response: `"error":"overloaded"` with the
  /// configured retry_after_ms hint.
  [[nodiscard]] response overloaded_response(std::uint64_t seq) const;

  /// Blocks until every admitted request has completed (its callback
  /// returned). Safe to call concurrently with submit(): requests admitted
  /// after drain() begins are *not* waited for.
  void drain();

  /// Drains the disk tier's write-behind queue; returns how many records
  /// this call flushed (0 when the disk tier is off). The daemon calls
  /// this after drain() so a clean stop never loses warm entries, and
  /// reports the count as `"flushed":<n>` in the shutdown ack.
  std::size_t flush_disk();

  /// One snapshot of the live counters (the {"op":"stats"} payload).
  [[nodiscard]] service_stats stats() const;

  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }
  [[nodiscard]] const service_options& options() const noexcept { return options_; }
  [[nodiscard]] schedule_cache& cache() noexcept { return cache_; }
  /// The persistent tier, or nullptr when not configured.
  [[nodiscard]] disk_cache* disk() noexcept { return disk_.get(); }

private:
  /// In-flight dedup rendezvous: the leader publishes its canonical-space
  /// outcome here; followers that arrived while it was computing read the
  /// result straight from the future (never from a cache re-lookup, which
  /// would return null for oversize-rejected values).
  struct flight {
    std::string error; ///< set by the leader iff the computation failed
    schedule_cache::result_ptr result;
  };
  using flight_ptr = std::shared_ptr<const flight>;

  void process(std::uint64_t seq, const std::string& text, const callback& done,
               std::chrono::steady_clock::time_point admitted_at);
  void complete(response r, const callback& done,
                std::chrono::steady_clock::time_point admitted_at);
  [[nodiscard]] source_info lookup_source(const request& req);
  /// Pool worker i owns contexts_[i]; any non-pool thread the extra slot.
  [[nodiscard]] sched::run_context& context_for_current_thread() noexcept;

  service_options options_;
  unsigned jobs_ = 1;
  schedule_cache cache_;
  std::unique_ptr<disk_cache> disk_; ///< null when the persistent tier is off
  std::unique_ptr<thread_pool> pool_;
  /// jobs_ + 1 per-worker scheduling contexts (see context_for_current_thread).
  std::vector<std::unique_ptr<sched::run_context>> contexts_;
  std::chrono::steady_clock::time_point started_at_;

  // Admission + drain bookkeeping. queue_depth_ = admitted - completed;
  // admission is one fetch_add with a rollback, so shedding never takes a
  // lock. peak_queue_depth_ witnesses boundedness for the load harness.
  std::atomic<std::size_t> queue_depth_{0};
  std::atomic<std::size_t> peak_queue_depth_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> overloaded_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> computed_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> deduped_{0};
  latency_histogram latency_;
  mutable std::mutex drain_mutex_;
  std::condition_variable drained_;

  // Source-signature -> source_info memo (the engine's memo, made
  // thread-safe): each distinct design is hashed once. Same bounds as the
  // engine: entry count and bytes, wiped when either trips.
  std::mutex memo_mutex_;
  std::unordered_map<std::string, source_info> source_memo_;
  std::size_t source_memo_bytes_ = 0;

  // Key -> in-flight computation. The leader inserts a promise before
  // touching the cache and erases it after publishing, so any follower
  // either joins the flight or does its own (possibly cached) lookup.
  std::mutex flight_mutex_;
  std::unordered_map<ir::dfg_digest, std::shared_future<flight_ptr>,
                     ir::dfg_digest_hash>
      flights_;
};

/// Everything the daemon front-end needs beyond the service core - the one
/// parsed struct the CLI flag surface (--serve-queue, --serve-ordered,
/// --listen, --max-conns, cache flags) collapses into. Built and validated
/// exclusively by serve/options.h, so CLI and tests share one error path.
struct daemon_options {
  service_options service;
  bool ordered = false; ///< input-order responses (PR-4 determinism contract)
                        ///< instead of streaming-as-completed
  frame_limits limits;
  std::size_t max_connections = 64; ///< socket front-ends: accepted-but-open
                                    ///< bound; beyond it connections shed
};

// ---------------------------------------------------------------------------
// The shared connection loop: one framed client session over any transport.

/// How a connection ended.
enum class connection_end {
  eof,            ///< clean EOF at a frame boundary
  shutdown_op,    ///< {"op":"shutdown"}: drained, acked, stopped
  transport_error ///< malformed frame: answered once, drained, closed
};

/// Knobs of one connection (a slice of daemon_options).
struct connection_options {
  bool ordered = false;
  bool emit_schedule = true;
  frame_limits limits;
};

/// Per-connection accounting.
struct connection_summary {
  connection_end end = connection_end::eof;
  std::uint64_t frames = 0;    ///< well-formed frames read (incl. control)
  std::uint64_t requests = 0;  ///< frames submitted to the service
  std::uint64_t responses = 0; ///< response frames written (incl. shed)
  bool write_failed = false;   ///< the peer vanished mid-conversation
};

/// Serves one client over `stream` against a shared service: reads frames,
/// answers control ops (hello / stats / shutdown - serve/protocol.h),
/// submits everything else, and writes response frames either streaming or
/// in input order. Always drains *this connection's* admitted requests
/// before returning - a transport error or dead peer here never stalls or
/// aborts other connections on the same service - and flushes the disk
/// tier's write-behind queue so a closing connection never strands warm
/// entries. `counters`, when given, receives this connection's closing
/// byte totals and feeds the {"op":"stats"} "conns" object.
connection_summary serve_connection(byte_stream& stream, service& svc,
                                    const connection_options& options,
                                    connection_counters* counters = nullptr);

/// Per-run accounting of one daemon session.
struct daemon_summary {
  std::uint64_t frames = 0;        ///< well-formed frames read (incl. control)
  std::uint64_t requests = 0;      ///< frames submitted to the service
  std::uint64_t responses = 0;     ///< response frames written (incl. shed)
  bool shutdown_requested = false; ///< ended by {"op":"shutdown"}
  bool transport_error = false;    ///< ended by a malformed frame
  service_stats stats;             ///< final service counters
  connection_counters_snapshot conns; ///< transport-level totals
};

/// Runs the resident daemon over framed streams until EOF, a shutdown op,
/// or a transport error - always draining admitted work before returning.
/// A thin adapter: wraps the streams in an iostream_byte_stream and runs
/// serve_connection over a fresh service. Socket transports run the same
/// loop per accepted connection (serve/socket.h). Wire protocol:
/// docs/SERVING.md §"Wire protocol".
daemon_summary run_daemon(std::istream& in, std::ostream& out,
                          const daemon_options& options = {});

} // namespace softsched::serve
