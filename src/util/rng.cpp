#include "util/rng.h"

namespace softsched {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

} // namespace

rng::rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t rng::below(std::uint64_t bound) noexcept {
  // Lemire-style rejection-free-enough mapping; bias is negligible for the
  // bounds used here, and determinism is what we actually need.
  return next() % bound;
}

std::int64_t rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
}

double rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool rng::chance(double p) noexcept { return uniform() < p; }

} // namespace softsched
