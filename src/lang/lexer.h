// lexer.h - tokenizer for the tiny behavioral input language the CLI and
// tests feed into HLS, mirroring the style of the paper's own benchmark
// sources (straight-line arithmetic blocks like the HAL diffeq body):
//
//     x1 = x + dx;
//     u1 = u - 3*x*u*dx - 3*y*dx;
//     y1 = y + u*dx;
//     c  = x1 < a;
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace softsched::lang {

/// Raised for both lexical and syntactic errors, with line/column context.
class parse_error : public std::runtime_error {
public:
  explicit parse_error(const std::string& what) : std::runtime_error(what) {}
};

enum class token_kind {
  identifier,
  number,
  assign,     // =
  plus,       // +
  minus,      // -
  star,       // *
  less,       // <
  lparen,     // (
  rparen,     // )
  semicolon,  // ;
  end_of_input,
};

[[nodiscard]] std::string token_kind_name(token_kind kind);

struct token {
  token_kind kind;
  std::string text;
  int line = 1;
  int column = 1;
};

/// Tokenizes the whole input. '#' starts a comment to end of line. Throws
/// parse_error on unexpected characters. The final token is end_of_input.
[[nodiscard]] std::vector<token> tokenize(const std::string& source);

} // namespace softsched::lang
