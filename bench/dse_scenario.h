// dse_scenario.h - the shared "dse" benchmark scenario: two fixed 24-point
// grids (the EWF paper benchmark and a layered random DFG from the shared
// generator family), each explored twice - single-threaded and with the
// full worker pool - recording points/sec for both, the speedup, and
// whether the two runs produced bit-identical outcomes.
//
// Included by both bench/perf_harness.cpp (which embeds the block into
// BENCH_softsched.json next to the other scenarios) and bench/dse_harness.cpp
// (the focused standalone runner), so the two always measure the same
// workload. The grids deliberately do not scale with --quick: the scenario
// is sub-second, and keeping it fixed makes the CI regression gate compare
// like against like.
#pragma once

#include <cstdint>
#include <iostream>

#include "explore/dse.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace softsched::bench {

struct dse_grid_outcome {
  explore::exploration_result single;
  explore::exploration_result multi;
  bool deterministic = false;
};

inline dse_grid_outcome run_dse_grid(const explore::grid_spec& spec, unsigned jobs) {
  dse_grid_outcome out;
  explore::exploration_options opt;
  opt.jobs = 1;
  out.single = explore::run_exploration(spec, opt);
  opt.jobs = static_cast<int>(jobs);
  out.multi = explore::run_exploration(spec, opt);
  out.deterministic = out.single.same_outcome(out.multi);
  return out;
}

/// Emits the whole scenario as the value of an already-written "dse" key.
/// `jobs` = 0 picks thread_pool::hardware_workers(). Returns false if any
/// grid's single- and multi-threaded runs diverged.
inline bool write_dse_scenario(json_writer& j, std::uint64_t seed, unsigned jobs = 0) {
  if (jobs == 0) jobs = thread_pool::hardware_workers();

  explore::grid_spec ewf;
  ewf.design.bench = "ewf";
  ewf.alus = {1, 4};
  ewf.muls = {1, 3};
  ewf.mems = {1, 1};
  ewf.mul_latency = {1, 2};

  explore::grid_spec random;
  random.design.random_vertices = 600;
  random.design.random_edge_prob = 0.25;
  random.design.seed = seed;
  random.alus = {1, 4};
  random.muls = {1, 3};
  random.mems = {1, 2};
  random.mul_latency = {2, 2};

  bool deterministic = true;
  double single_ms = 0, multi_ms = 0;
  std::size_t total_points = 0;

  j.begin_object();
  j.member("threads", static_cast<unsigned long long>(jobs));
  j.key("grids");
  j.begin_array();
  for (const explore::grid_spec& spec : {ewf, random}) {
    const dse_grid_outcome got = run_dse_grid(spec, jobs);
    deterministic = deterministic && got.deterministic;
    single_ms += got.single.wall_ms;
    multi_ms += got.multi.wall_ms;
    total_points += got.single.points.size();

    j.begin_object();
    j.member("design", spec.design.name());
    j.member("points", got.single.points.size());
    j.member("feasible", got.single.feasible_count());
    j.member("frontier_size", got.single.frontier.size());
    j.member("single_ms", got.single.wall_ms);
    j.member("multi_ms", got.multi.wall_ms);
    j.member("points_per_sec_single", got.single.points_per_sec());
    j.member("points_per_sec_multi", got.multi.points_per_sec());
    j.member("speedup",
             got.multi.wall_ms > 0 ? got.single.wall_ms / got.multi.wall_ms : 0.0);
    j.member("deterministic", got.deterministic);
    j.end_object();

    if (!got.deterministic)
      std::cerr << "dse: " << spec.design.name()
                << " grid diverged between 1 and " << jobs << " jobs\n";
  }
  j.end_array();
  j.member("total_points", total_points);
  j.member("points_per_sec_single",
           single_ms > 0 ? static_cast<double>(total_points) / (single_ms / 1e3) : 0.0);
  j.member("points_per_sec_multi",
           multi_ms > 0 ? static_cast<double>(total_points) / (multi_ms / 1e3) : 0.0);
  j.member("speedup", multi_ms > 0 ? single_ms / multi_ms : 0.0);
  j.member("deterministic", deterministic);
  j.end_object();
  return deterministic;
}

} // namespace softsched::bench
