// util_test.cpp - utility layer: deterministic RNG and the ASCII table
// writer used by the benchmark harnesses.
#include <gtest/gtest.h>

#include <sstream>

#include "util/check.h"
#include "util/json.h"
#include "util/json_parse.h"
#include "util/rng.h"
#include "util/table.h"

using softsched::rng;
using softsched::table;

TEST(Rng, DeterministicAcrossInstances) {
  rng a(42);
  rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a(1);
  rng b(2);
  bool differed = false;
  for (int i = 0; i < 10 && !differed; ++i) differed = a.next() != b.next();
  EXPECT_TRUE(differed);
}

TEST(Rng, BelowStaysInRange) {
  rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  rng r(8);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t x = r.range(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  rng r(10);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ShufflePreservesElements) {
  rng r(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  r.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Table, AlignsColumns) {
  table t;
  t.set_header({"a", "long-header", "c"});
  t.add_row({"xxxxxx", "1", "2"});
  t.add_separator();
  t.add_row({"y", "22", "333"});
  std::ostringstream ss;
  t.print(ss);
  const std::string text = ss.str();
  // All rule lines identical -> columns aligned.
  std::istringstream lines(text);
  std::string line;
  std::string rule;
  std::size_t rule_count = 0;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] == '+') {
      if (rule.empty()) rule = line;
      EXPECT_EQ(line, rule);
      ++rule_count;
    }
  }
  EXPECT_EQ(rule_count, 4u); // top, under-header, separator, bottom
  EXPECT_NE(text.find("long-header"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), softsched::precondition_error);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(softsched::cell(42), "42");
  EXPECT_EQ(softsched::cell(-7), "-7");
  EXPECT_EQ(softsched::cell(3.14159, 2), "3.14");
  EXPECT_EQ(softsched::cell(2.0, 1), "2.0");
}

TEST(Check, MacroThrowsWithContext) {
  try {
    SOFTSCHED_EXPECT(1 == 2, "one is not two");
    FAIL() << "expected precondition_error";
  } catch (const softsched::precondition_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
  }
}

// -- json_parse: the reader side of the serve engine's JSONL protocol ------

TEST(JsonParse, ParsesScalarsAndNesting) {
  const auto v = softsched::parse_json(
      R"({"name":"ewf","n":3,"neg":-2.5,"big":1e3,"ok":true,"off":false,"none":null,)"
      R"("list":[1,[2,3],{"k":"v"}]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("name")->as_string(), "ewf");
  EXPECT_EQ(v.find("n")->as_integer(0, 10), 3);
  EXPECT_DOUBLE_EQ(v.find("neg")->as_number(), -2.5);
  EXPECT_DOUBLE_EQ(v.find("big")->as_number(), 1000.0);
  EXPECT_TRUE(v.find("ok")->as_bool());
  EXPECT_FALSE(v.find("off")->as_bool());
  EXPECT_TRUE(v.find("none")->is_null());
  const auto& list = v.find("list")->items();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[1].items()[1].as_integer(0, 10), 3);
  EXPECT_EQ(list[2].find("k")->as_string(), "v");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, DecodesEscapes) {
  const auto v = softsched::parse_json(R"("a\"b\\c\n\tAé€")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\n\tA\xc3\xa9\xe2\x82\xac");
  const auto pair = softsched::parse_json(R"("😀")"); // surrogate pair
  EXPECT_EQ(pair.as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, PreservesMemberOrderAndRejectsDuplicates) {
  const auto v = softsched::parse_json(R"({"z":1,"a":2})");
  ASSERT_EQ(v.members().size(), 2u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_THROW(softsched::parse_json(R"({"a":1,"a":2})"), softsched::json_error);
}

TEST(JsonParse, RejectsMalformedDocuments) {
  using softsched::json_error;
  using softsched::parse_json;
  EXPECT_THROW(parse_json(""), json_error);
  EXPECT_THROW(parse_json("{"), json_error);
  EXPECT_THROW(parse_json("[1,]"), json_error);
  EXPECT_THROW(parse_json(R"({"a" 1})"), json_error);
  EXPECT_THROW(parse_json("{} trailing"), json_error);
  EXPECT_THROW(parse_json(R"("unterminated)"), json_error);
  EXPECT_THROW(parse_json(R"("bad \x escape")"), json_error);
  EXPECT_THROW(parse_json("01"), json_error);
  EXPECT_THROW(parse_json("1."), json_error);
  EXPECT_THROW(parse_json("tru"), json_error);
  EXPECT_THROW(parse_json("\"tab\tliteral\""), json_error);
  EXPECT_THROW(parse_json(R"("\ud800 lonely")"), json_error);
}

TEST(JsonParse, TypedAccessorsEnforceKinds) {
  const auto v = softsched::parse_json(R"({"s":"x","n":1.5})");
  EXPECT_THROW((void)v.find("s")->as_number(), softsched::json_error);
  EXPECT_THROW((void)v.find("n")->as_string(), softsched::json_error);
  EXPECT_THROW((void)v.find("n")->as_integer(0, 10), softsched::json_error);
  EXPECT_THROW((void)v.as_bool(), softsched::json_error);
  EXPECT_THROW((void)softsched::parse_json("[1]").members(), softsched::json_error);
}

TEST(JsonWriter, CompactModeIsSingleLine) {
  std::ostringstream os;
  softsched::json_writer j(os, /*compact=*/true);
  j.begin_object();
  j.member("a", 1);
  j.key("list");
  j.begin_array();
  j.value(2);
  j.value("x");
  j.end_array();
  j.end_object();
  EXPECT_TRUE(j.done());
  EXPECT_EQ(os.str(), R"({"a":1,"list":[2,"x"]})");
  // And the round trip through the parser holds.
  const auto v = softsched::parse_json(os.str());
  EXPECT_EQ(v.find("a")->as_integer(0, 10), 1);
}
