// retime.h - resource-constrained retiming, the second outlook algorithm
// of Section 6. A synchronous (cyclic) dataflow graph carries registers
// as edge weights; a retiming r moves registers across vertices. The
// quality of a retiming under *resource constraints* is the schedule
// length of its zero-weight body - which we evaluate with the threaded
// scheduler, exactly the "kernel embedded into other algorithms" use the
// paper anticipates.
#pragma once

#include <vector>

#include "ir/dfg.h"

namespace softsched::ext {

/// A synchronous dataflow graph: ops (by kind) + weighted edges; weight =
/// number of pipeline registers on the edge. Cycles are allowed as long
/// as every cycle carries at least one register.
struct retime_problem {
  struct edge {
    int from = 0;
    int to = 0;
    int weight = 0;
  };
  std::vector<ir::op_kind> ops;
  std::vector<edge> edges;
};

/// True iff every edge weight stays >= 0 under r and the zero-weight
/// subgraph is acyclic (a legal synchronous circuit).
[[nodiscard]] bool valid_retiming(const retime_problem& p, const std::vector<int>& r);

/// The acyclic body: ops connected by the edges whose retimed weight is 0.
[[nodiscard]] ir::dfg body_dfg(const retime_problem& p, const std::vector<int>& r,
                               const ir::resource_library& library);

struct retime_result {
  std::vector<int> r;            ///< final lag per vertex
  long long latency_before = 0;  ///< body schedule length at r = 0
  long long latency_after = 0;   ///< body schedule length at the final r
  int rounds = 0;                ///< hill-climbing rounds taken
};

/// Resource-constrained retiming by iterative target tightening: for each
/// target latency (starting one below the identity retiming's body
/// length), a FEAS-style probe increments the lag of every operation that
/// finishes past the target in the scheduled body and reschedules - the
/// threaded scheduler is the inner evaluation kernel. Stops at the first
/// unachievable target or after max_rounds. The identity retiming must be
/// valid.
[[nodiscard]] retime_result retime_min_latency(const retime_problem& p,
                                               const ir::resource_set& resources,
                                               const ir::resource_library& library,
                                               int max_rounds = 32);

/// The classic Leiserson-Saxe style correlator ring: `taps` stages of
/// (compare, add) against a circulating host edge; the canonical retiming
/// showcase. The delay-line edges carry one register each (two on the
/// host edge, modelling input buffering); the combinational accumulation
/// chain at r = 0 is deliberately long.
[[nodiscard]] retime_problem make_correlator(int taps);

} // namespace softsched::ext
