#include "phys/floorplan.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/check.h"

namespace softsched::phys {

floorplan::floorplan(int unit_count, int columns, int pitch) {
  SOFTSCHED_EXPECT(unit_count >= 1, "floorplan needs at least one unit");
  SOFTSCHED_EXPECT(columns >= 1, "floorplan needs at least one column");
  SOFTSCHED_EXPECT(pitch >= 1, "pitch must be positive");
  pos_.reserve(static_cast<std::size_t>(unit_count));
  for (int u = 0; u < unit_count; ++u) {
    pos_.push_back(block_position{(u % columns) * pitch, (u / columns) * pitch});
  }
}

block_position floorplan::position(int unit) const {
  SOFTSCHED_EXPECT(unit >= 0 && unit < unit_count(), "unit index out of range");
  return pos_[static_cast<std::size_t>(unit)];
}

int floorplan::distance(int unit_a, int unit_b) const {
  const block_position a = position(unit_a);
  const block_position b = position(unit_b);
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

int floorplan::diameter() const {
  int best = 0;
  for (int a = 0; a < unit_count(); ++a)
    for (int b = a + 1; b < unit_count(); ++b) best = std::max(best, distance(a, b));
  return best;
}

floorplan floorplan_for(const ir::resource_set& resources) {
  const int units = resources.alus + resources.multipliers + resources.memory_ports;
  const int columns = std::max(1, static_cast<int>(std::ceil(std::sqrt(units))));
  return floorplan(units, columns);
}

} // namespace softsched::phys
