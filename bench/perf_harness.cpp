// perf_harness - the measured-baseline harness behind BENCH_softsched.json.
//
// Three scenario families, all timed with the same clock and emitted as one
// JSON document so every future PR has a trajectory to compare against:
//
//   * paper_benchmarks  - schedule the Figure-3 suite (HAL, AR, EWF, FIR)
//                         plus larger parameterized workloads end to end;
//   * random_dag_sweep  - layered random DAGs up to |V| = 10k through the
//                         generic K-threaded core, recording the dirty-
//                         region relabeling counters against what full
//                         relabeling would have written (the empirical
//                         Theorem-3 check: label work per commit stays far
//                         below the state size);
//   * refinement storms - sustained random rewires/ECOs against a live
//                         schedule, run twice: incremental maintenance on
//                         (the soft-scheduling hot path) vs. the
//                         from-scratch baseline (set_incremental(false):
//                         closure rebuild per change + full relabel per
//                         commit). Both wall times and the speedup are
//                         recorded; the two runs must agree on the final
//                         diameter or the harness exits nonzero.
//
// Usage: perf_harness [--quick] [--out PATH] [--seed N]
//   --quick caps sizes/iterations for CI smoke jobs.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "backend_scenario.h"
#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "dse_scenario.h"
#include "iter_scenario.h"
#include "load_scenario.h"
#include "memory_scenario.h"
#include "persist_scenario.h"
#include "serve_scenario.h"
#include "socket_scenario.h"
#include "graph/generators.h"
#include "ir/benchmarks.h"
#include "meta/meta_schedule.h"
#include "refine/refinement.h"
#include "util/json.h"
#include "util/rng.h"

namespace sc = softsched::core;
namespace sg = softsched::graph;
namespace si = softsched::ir;
namespace sm = softsched::meta;
namespace sf = softsched::refine;
using sg::vertex_id;
using softsched::json_writer;
using softsched::rng;

namespace {

using clock_type = std::chrono::steady_clock;

double millis_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - t0).count();
}

// One spelling of the counter block everywhere (reports, harnesses).
void write_stats(json_writer& j, const sc::schedule_stats& s) {
  softsched::explore::write_schedule_stats(j, s);
}

// -- scenario 1: the paper benchmarks end to end ---------------------------

void run_paper_benchmarks(json_writer& j, bool quick) {
  const si::resource_library lib;
  std::vector<si::dfg> suite = si::figure3_benchmarks(lib);
  suite.push_back(si::make_fir(lib, quick ? 32 : 64));
  suite.push_back(si::make_iir_cascade(lib, quick ? 8 : 16));
  const int reps = quick ? 5 : 25;

  j.key("paper_benchmarks");
  j.begin_array();
  for (const si::dfg& d : suite) {
    const si::resource_set rs = si::figure3_constraint(0);
    const std::vector<vertex_id> order =
        sm::meta_schedule(d.graph(), sm::meta_kind::list_priority);
    double best_ms = 0;
    long long states = 0;
    sc::schedule_stats last_stats;
    for (int rep = 0; rep < reps; ++rep) {
      sc::threaded_graph state = sc::make_hls_state(d, rs);
      const auto t0 = clock_type::now();
      state.schedule_all(order);
      states = state.diameter();
      const double ms = millis_since(t0);
      if (rep == 0 || ms < best_ms) best_ms = ms;
      last_stats = state.stats();
    }
    j.begin_object();
    j.member("name", d.name());
    j.member("ops", d.op_count());
    j.member("resource_set", rs.label());
    j.member("states", states);
    j.member("reps", reps);
    j.member("best_ms", best_ms);
    j.member("ops_per_sec", best_ms > 0 ? static_cast<double>(d.op_count()) / (best_ms / 1e3)
                                        : 0.0);
    j.key("stats");
    write_stats(j, last_stats);
    j.end_object();
  }
  j.end_array();
}

// -- scenario 2: random DAG sweep ------------------------------------------

void run_random_dag_sweep(json_writer& j, bool quick, std::uint64_t seed) {
  std::vector<int> sizes{100, 300, 1000};
  if (!quick) {
    sizes.push_back(3000);
    sizes.push_back(10000);
  }

  j.key("random_dag_sweep");
  j.begin_array();
  for (const int n : sizes) {
    rng rand(seed + static_cast<std::uint64_t>(n));
    const sg::precedence_graph g =
        sg::layered_random(sg::layered_for_size(n, 0.15), rand);
    const std::vector<vertex_id> order = sm::meta_schedule(g, sm::meta_kind::list_priority);
    // Unit count scales with design size (a 10k-op design does not run on
    // the same 8 FUs as a 100-op one). This is also where the dirty-region
    // cone is provably sub-linear: each append relabels ~|thread| = V/K
    // chain nodes (a real label change - the serial chain suffix grows),
    // so with K ~ sqrt(V) the per-commit cone is O(sqrt(V)) against the
    // O(V) a full label() pass writes.
    const int threads = std::max(4, static_cast<int>(std::sqrt(static_cast<double>(n)) / 2));

    sc::threaded_graph state(g, threads);
    // full_relabel_equiv: label writes a full label() pass would have done
    // at every commit (state node count at that moment) - the denominator
    // of the sub-linearity claim.
    std::uint64_t full_relabel_equiv = 0;
    const auto t0 = clock_type::now();
    for (const vertex_id v : order) {
      state.schedule(v);
      full_relabel_equiv += state.scheduled_count() +
                            2 * static_cast<std::uint64_t>(state.thread_count());
    }
    const double ms = millis_since(t0);
    const sc::schedule_stats& stats = state.stats();
    const double commits = static_cast<double>(stats.commits ? stats.commits : 1);

    j.begin_object();
    j.member("vertices", g.vertex_count());
    j.member("edges", g.edge_count());
    j.member("threads", threads);
    j.member("wall_ms", ms);
    j.member("ops_per_sec",
             ms > 0 ? static_cast<double>(g.vertex_count()) / (ms / 1e3) : 0.0);
    j.member("diameter", state.diameter());
    j.member("nodes_relabeled", stats.nodes_relabeled);
    j.member("full_relabel_equiv", full_relabel_equiv);
    j.member("avg_relabeled_per_commit",
             static_cast<double>(stats.nodes_relabeled) / commits);
    j.member("avg_state_size_per_commit",
             static_cast<double>(full_relabel_equiv) / commits);
    j.key("stats");
    write_stats(j, stats);
    j.end_object();
  }
  j.end_array();
}

// -- scenario 3a: generic refinement storm ---------------------------------

struct storm_result {
  double wall_ms = 0;
  long long diameter = 0;
  std::size_t scheduled = 0;
  sc::schedule_stats stats;
};

/// One storm run over the generic core: random reach-preserving rewires
/// (spill/wire-shaped) and ECO vertex additions against a live schedule.
/// Fully deterministic from `seed`, so the incremental and from-scratch
/// runs see the identical mutation sequence.
storm_result run_generic_storm(int base_vertices, int steps, std::uint64_t seed,
                               bool incremental) {
  rng rand(seed);
  // Dense dependences (p = 0.7): the shape that makes closure rebuilds
  // (O(V*E/64) per change) the baseline's cost.
  sg::precedence_graph g =
      sg::layered_random(sg::layered_for_size(base_vertices, 0.7, 50), rand);

  sc::threaded_graph state(g, 4);
  state.set_incremental(incremental);
  state.schedule_all(sm::meta_schedule(g, sm::meta_kind::topological));
  state.reset_stats();

  // Random vertex that still produces something (bounded retries keep the
  // storm deterministic and allocation-free).
  const auto pick_producer = [&]() -> vertex_id {
    for (int attempt = 0; attempt < 16; ++attempt) {
      const vertex_id u(static_cast<std::uint32_t>(rand.below(g.vertex_count())));
      if (!g.succs(u).empty()) return u;
    }
    return vertex_id::invalid();
  };

  storm_result out;
  std::vector<vertex_id> consumers; // reused across steps
  const auto t0 = clock_type::now();
  for (int step = 0; step < steps; ++step) {
    int action = static_cast<int>(rand.below(3));
    vertex_id u = vertex_id::invalid();
    if (action != 2) {
      u = pick_producer();
      if (!u.valid()) action = 2;
    }
    if (action == 0) {
      // Wire/move-shaped rewire: u -> v becomes u -> w -> v.
      const auto succs = g.succs(u);
      const vertex_id v = succs[static_cast<std::size_t>(rand.below(succs.size()))];
      g.remove_edge_reach_preserved(u, v);
      const vertex_id w = g.add_vertex(1 + static_cast<int>(rand.below(3)));
      g.add_edge(u, w);
      g.add_edge(w, v);
      state.schedule(w);
    } else if (action == 1) {
      // Spill-shaped rewire: producer u gets a store; each rewired
      // consumer gets its own load.
      const auto succs = g.succs(u);
      consumers.assign(succs.begin(), succs.end());
      if (consumers.size() > 3) consumers.resize(3);
      const vertex_id st = g.add_vertex(1);
      g.add_edge(u, st);
      for (const vertex_id c : consumers) {
        g.remove_edge_reach_preserved(u, c);
        const vertex_id ld = g.add_vertex(1);
        g.add_edge(st, ld);
        g.add_edge(ld, c);
      }
      state.schedule(st);
      for (const vertex_id v : g.succs(st)) state.schedule(v);
    } else {
      // ECO: a new op consuming up to three random existing values.
      const vertex_id eco = g.add_vertex(1);
      const int fanin = 1 + static_cast<int>(rand.below(3));
      for (int i = 0; i < fanin; ++i) {
        const vertex_id src(
            static_cast<std::uint32_t>(rand.below(g.vertex_count() - 1)));
        if (src != eco) g.add_edge(src, eco);
      }
      state.schedule(eco);
    }
    out.diameter = state.diameter(); // consume labels every step, as the
                                     // refinement_report bookkeeping does
  }
  out.wall_ms = millis_since(t0);
  out.scheduled = state.scheduled_count();
  out.stats = state.stats();
  return out;
}

// -- scenario 3b: HLS refinement storm (DFG + resource binding) ------------

storm_result run_hls_storm(int taps, int steps, std::uint64_t seed, bool incremental) {
  const si::resource_library lib;
  si::dfg d = si::make_fir(lib, taps);
  rng rand(seed);
  const si::resource_set rs{3, 3, 2};

  sc::threaded_graph state = sc::make_hls_state(d, rs);
  state.set_incremental(incremental);
  state.schedule_all(sm::meta_schedule(d.graph(), sm::meta_kind::list_priority));
  state.reset_stats();

  const auto pick_edge = [&](std::pair<vertex_id, vertex_id>& out_edge) {
    std::vector<std::pair<vertex_id, vertex_id>> edges;
    for (const vertex_id v : d.graph().vertices()) {
      if (d.kind(v) == si::op_kind::wire) continue;
      for (const vertex_id s : d.graph().succs(v)) {
        if (d.kind(s) == si::op_kind::wire) continue;
        edges.emplace_back(v, s);
      }
    }
    if (edges.empty()) return false;
    out_edge = edges[static_cast<std::size_t>(rand.below(edges.size()))];
    return true;
  };

  // Only the refinement applications (DFG rewire + online scheduling +
  // diameter bookkeeping) are timed; the O(V+E) candidate scans above are
  // harness driver cost identical in both modes and would dilute the
  // recorded speedup.
  storm_result out;
  for (int step = 0; step < steps; ++step) {
    const int action = static_cast<int>(rand.below(4));
    std::pair<vertex_id, vertex_id> e;
    switch (action) {
    case 0: { // spill a random spillable value
      std::vector<vertex_id> candidates;
      for (const vertex_id v : d.graph().vertices()) {
        if (d.kind(v) == si::op_kind::store || d.kind(v) == si::op_kind::wire) continue;
        if (d.graph().succs(v).empty()) continue;
        candidates.push_back(v);
      }
      if (candidates.empty()) break;
      const vertex_id victim =
          candidates[static_cast<std::size_t>(rand.below(candidates.size()))];
      const auto t0 = clock_type::now();
      sf::apply_spill(d, state, victim);
      out.wall_ms += millis_since(t0);
      break;
    }
    case 1:
      if (pick_edge(e)) {
        const int delay = 1 + static_cast<int>(rand.below(3));
        const auto t0 = clock_type::now();
        sf::apply_wire_delay(d, state, e.first, e.second, delay);
        out.wall_ms += millis_since(t0);
      }
      break;
    case 2:
      if (pick_edge(e)) {
        const auto t0 = clock_type::now();
        sf::apply_register_move(d, state, e.first, e.second);
        out.wall_ms += millis_since(t0);
      }
      break;
    default: {
      const vertex_id a(static_cast<std::uint32_t>(rand.below(d.graph().vertex_count())));
      const vertex_id b(static_cast<std::uint32_t>(rand.below(d.graph().vertex_count())));
      std::vector<vertex_id> ins{a};
      if (b != a) ins.push_back(b);
      const auto t0 = clock_type::now();
      state.schedule(d.add_op(si::op_kind::add, std::span<const vertex_id>(ins),
                              std::string("eco") += std::to_string(step)));
      out.wall_ms += millis_since(t0);
      break;
    }
    }
    const auto t0 = clock_type::now();
    out.diameter = state.diameter();
    out.wall_ms += millis_since(t0);
  }
  out.scheduled = state.scheduled_count();
  out.stats = state.stats();
  return out;
}

template <typename RunFn>
bool write_storm(json_writer& j, const char* name, RunFn run) {
  // Best of two interleaved reps per mode: wall-clock noise shows up as a
  // one-sided slowdown, so the min is the stable estimator.
  storm_result incremental = run(true);
  storm_result baseline = run(false);
  const storm_result inc2 = run(true);
  const storm_result base2 = run(false);
  const bool consistent = incremental.diameter == baseline.diameter &&
                          incremental.scheduled == baseline.scheduled &&
                          inc2.diameter == incremental.diameter &&
                          base2.diameter == baseline.diameter;
  incremental.wall_ms = std::min(incremental.wall_ms, inc2.wall_ms);
  baseline.wall_ms = std::min(baseline.wall_ms, base2.wall_ms);
  j.key(name);
  j.begin_object();
  j.member("final_scheduled_ops", incremental.scheduled);
  j.member("final_diameter", incremental.diameter);
  j.member("incremental_ms", incremental.wall_ms);
  j.member("from_scratch_ms", baseline.wall_ms);
  j.member("speedup", incremental.wall_ms > 0 ? baseline.wall_ms / incremental.wall_ms : 0.0);
  j.member("modes_agree", consistent);
  j.key("incremental_stats");
  write_stats(j, incremental.stats);
  j.key("from_scratch_stats");
  write_stats(j, baseline.stats);
  j.end_object();
  if (!consistent)
    std::cerr << name << ": incremental and from-scratch runs diverged (diameter "
              << incremental.diameter << " vs " << baseline.diameter << ")\n";
  return consistent;
}

} // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_softsched.json";
  std::uint64_t seed = 20260729;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else {
      std::cerr << "usage: perf_harness [--quick] [--out PATH] [--seed N]\n";
      return 2;
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }

  json_writer j(out);
  j.begin_object();
  j.member("schema", "softsched-bench-v1");
  j.member("quick", quick);
  j.member("seed", seed);
  j.key("scenarios");
  j.begin_object();

  std::cerr << "perf_harness: paper benchmarks...\n";
  run_paper_benchmarks(j, quick);
  std::cerr << "perf_harness: random DAG sweep...\n";
  run_random_dag_sweep(j, quick, seed);

  std::cerr << "perf_harness: refinement storm (generic core)...\n";
  bool ok = write_storm(j, "refinement_storm", [&](bool inc) {
    return run_generic_storm(quick ? 1000 : 2500, quick ? 120 : 400, seed, inc);
  });
  std::cerr << "perf_harness: refinement storm (HLS binding)...\n";
  ok = write_storm(j, "hls_refinement_storm", [&](bool inc) {
            return run_hls_storm(quick ? 16 : 32, quick ? 40 : 120, seed, inc);
          }) &&
       ok;

  // Same fixed grids in quick and full mode (see dse_scenario.h), so the CI
  // regression gate always compares like against like.
  std::cerr << "perf_harness: design-space exploration...\n";
  j.key("dse");
  ok = softsched::bench::write_dse_scenario(j, seed) && ok;

  // Fixed cold/hot request mix in quick and full mode (see
  // serve_scenario.h), so the CI gate always compares like against like.
  std::cerr << "perf_harness: batch scheduling service...\n";
  j.key("serve");
  ok = softsched::bench::write_serve_scenario(j, seed) && ok;

  // Open-loop overload replay against the resident service (see
  // load_scenario.h): sustainable-rate calibration, then 2x replay with a
  // self-gating SLO block. Fixed mix in quick and full mode.
  std::cerr << "perf_harness: resident service overload replay...\n";
  j.key("load");
  ok = softsched::bench::write_load_scenario(j, seed) && ok;

  // The same overload replay driven over real unix-socket connections
  // with connection churn (see socket_scenario.h). Self-gating.
  std::cerr << "perf_harness: multi-client socket overload replay...\n";
  j.key("socket");
  ok = softsched::bench::write_socket_scenario(j, seed) && ok;

  // Two-tier persistent cache: cold-populate a disk tier, warm-restart a
  // fresh engine over it, then serve through an injected disk outage (see
  // persist_scenario.h). Self-gating; fixed mix in quick and full mode.
  std::cerr << "perf_harness: persistent cache warm restart...\n";
  j.key("persist");
  ok = softsched::bench::write_persist_scenario(j, seed) && ok;

  // Fixed benchmark suite under every registered scheduler backend (see
  // backend_scenario.h): the head-to-head numbers the paper's comparison
  // story rests on, cross-checked for determinism and legality.
  std::cerr << "perf_harness: scheduler backends...\n";
  j.key("backend");
  ok = softsched::bench::write_backend_scenario(j) && ok;

  // sdc-iter QoR vs runtime on the named-benchmark constraint grid (see
  // iter_scenario.h): latency deltas against soft, iterations to fixed
  // point, and iterated-scheduling throughput. Self-gating on "never worse
  // than soft, strictly better somewhere".
  std::cerr << "perf_harness: iterative scheduling...\n";
  j.key("iter");
  ok = softsched::bench::write_iter_scenario(j) && ok;

  // Memory micro-profile of the soft hot path: warmed arena context vs the
  // heap baseline under instrumented allocation counters (see
  // memory_scenario.h). Self-gating on the allocation ratio and on
  // arena/heap outcome parity.
  std::cerr << "perf_harness: memory micro-profile...\n";
  j.key("memory");
  ok = softsched::bench::write_memory_scenario(j) && ok;

  j.end_object(); // scenarios
  j.end_object(); // root
  out << '\n';
  if (!j.done() || !out) {
    std::cerr << "failed to emit well-formed JSON to " << out_path << "\n";
    return 1;
  }
  std::cerr << "perf_harness: wrote " << out_path << "\n";
  return ok ? 0 : 1;
}
