// generators.h - synthetic precedence-graph workloads for tests and
// benchmarks: random layered DAGs (typical dataflow shape), uniform random
// DAGs, chains/trees, and parameterized FIR-like structures.
#pragma once

#include "graph/precedence_graph.h"
#include "util/rng.h"

namespace softsched::graph {

/// Parameters for the layered random DAG generator.
struct layered_params {
  int layers = 8;           ///< number of layers (>= 1)
  int width = 8;            ///< vertices per layer (>= 1)
  double edge_prob = 0.3;   ///< probability of an edge between adjacent-layer pairs
  int min_delay = 1;        ///< inclusive delay range
  int max_delay = 2;
  bool connect_layers = true; ///< guarantee each non-input vertex has a predecessor
};

/// Random layered DAG: edges only go from layer i to layer i+1, which mimics
/// pipelined dataflow graphs and keeps path structure controllable.
[[nodiscard]] precedence_graph layered_random(const layered_params& params, rng& rand);

/// Layered-DAG shape for a target vertex count: layers = max(8, vertices /
/// vertices_per_layer), width = vertices / layers. This is the one sizing
/// rule every sweep-style harness (perf_harness, dse_harness, the explore
/// random family) shares, so "a 3000-vertex random design" means the same
/// workload everywhere.
[[nodiscard]] layered_params layered_for_size(int vertices, double edge_prob,
                                              int vertices_per_layer = 64);

/// Uniform random DAG on n vertices: each pair (i, j), i < j in a random
/// hidden permutation, gets an edge with probability p.
[[nodiscard]] precedence_graph gnp_dag(int n, double p, int min_delay, int max_delay,
                                       rng& rand);

/// Single chain of n unit-delay vertices (worst case for parallelism).
[[nodiscard]] precedence_graph chain(int n, int delay = 1);

/// Complete binary in-tree with n leaves reduced pairwise (adder-tree shape).
[[nodiscard]] precedence_graph reduction_tree(int leaves, int leaf_delay, int node_delay);

} // namespace softsched::graph
