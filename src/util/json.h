// json.h - minimal streaming JSON writer for the benchmark harnesses
// (BENCH_softsched.json). Emits pretty-printed, deterministic output with
// correct string escaping and comma placement; no DOM, no parsing. The CI
// smoke job validates the result with an external JSON parser, so the
// writer enforces well-formedness structurally (keys only inside objects,
// values only where a value is expected) via precondition checks.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace softsched {

/// Streaming JSON writer. Usage:
///
///   json_writer j(os);
///   j.begin_object();
///     j.key("name"); j.value("ewf");
///     j.key("sizes"); j.begin_array();
///       j.value(1); j.value(2);
///     j.end_array();
///   j.end_object();
///
/// Destruction does not auto-close containers; callers finish what they
/// open (done() checks).
class json_writer {
public:
  /// `compact` drops all newlines/indentation - one-line output for JSONL
  /// streams (the serve engine's response lines).
  explicit json_writer(std::ostream& os, bool compact = false)
      : os_(&os), compact_(compact) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object member name; must be directly followed by a value/container.
  void key(std::string_view name);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b);
  void value(double d);
  void value(long long i);
  void value(unsigned long long i);
  void value(int i) { value(static_cast<long long>(i)); }
  void value(std::size_t i) { value(static_cast<unsigned long long>(i)); }

  /// Convenience: key + value in one call.
  template <typename T>
  void member(std::string_view name, T v) {
    key(name);
    value(v);
  }

  /// True once every opened container has been closed (and something was
  /// written).
  [[nodiscard]] bool done() const noexcept;

private:
  enum class frame : std::uint8_t { object, array };

  void before_value();
  void write_escaped(std::string_view s);

  std::ostream* os_;
  bool compact_ = false;
  std::vector<frame> stack_;
  std::vector<bool> has_items_; // parallel to stack_
  bool key_pending_ = false;
  bool wrote_root_ = false;

  void newline_indent();
};

} // namespace softsched
