// arena_test.cpp - the bump/block arena and the run_context memory model:
// alignment, O(1) reset with block retention, geometric growth, oversize
// requests, counter accuracy; then the two properties the redesign gates
// on: (1) instrumented allocation counts - a warmed arena context runs the
// soft scheduler with several-fold fewer heap allocations than heap mode -
// and (2) serve responses are byte-identical with the arena on or off
// across worker counts, cache sizes, and block sizes.
//
// This binary links softsched::alloc_count, so every operator new in the
// process is counted; tests diff the counters around the region of
// interest instead of expecting absolute values.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "ir/benchmarks.h"
#include "sched/backend.h"
#include "serve/engine.h"
#include "serve/options.h"
#include "util/alloc_count.h"
#include "util/arena.h"
#include "util/check.h"

namespace si = softsched::ir;
namespace ss = softsched::sched;
namespace sv = softsched::serve;
namespace su = softsched::util;

namespace {

bool aligned_to(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

} // namespace

// -- arena ------------------------------------------------------------------

TEST(Arena, AllocationsAreAlignedIncludingOverAligned) {
  su::arena a(256);
  // Deliberately misalign the bump pointer before each aligned request.
  for (const std::size_t align : {std::size_t{1}, std::size_t{8}, std::size_t{16},
                                  std::size_t{64}, std::size_t{128}}) {
    (void)a.allocate(3, 1);
    void* p = a.allocate(align * 2, align);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(aligned_to(p, align)) << "align " << align;
  }
  // Zero-byte requests still yield distinct valid pointers (operator new
  // parity, so arena_vector behaves like std::vector on empty reserves).
  void* p0 = a.allocate(0, 1);
  void* p1 = a.allocate(0, 1);
  EXPECT_NE(p0, nullptr);
  EXPECT_NE(p0, p1);
}

TEST(Arena, ResetRetainsBlocksAndSteadyStateIsHeapSilent) {
  su::arena a(4096);
  const auto fill = [&] {
    for (int i = 0; i < 64; ++i) (void)a.allocate(128, 8);
  };
  fill(); // warm-up: grows whatever blocks this pattern needs
  a.reset();
  const std::size_t blocks = a.stats().blocks;
  const std::size_t capacity = a.stats().block_bytes;
  const std::uint64_t heap_before = su::heap_alloc_count();
  for (int run = 0; run < 10; ++run) {
    fill();
    EXPECT_EQ(a.live_bytes(), 64u * 128u);
    a.reset();
    EXPECT_EQ(a.live_bytes(), 0u);
  }
  // The steady state: zero operator new anywhere in the loop, and the
  // block set is exactly what the warm-up left behind.
  EXPECT_EQ(su::heap_alloc_count(), heap_before);
  EXPECT_EQ(a.stats().blocks, blocks);
  EXPECT_EQ(a.stats().block_bytes, capacity);
}

TEST(Arena, BlocksGrowGeometricallyNotPerAllocation) {
  su::arena a(64); // floor block size
  for (int i = 0; i < 256; ++i) (void)a.allocate(64, 8);
  // 16 KiB served from 64-byte seed blocks: linear growth would need ~256
  // blocks, geometric doubling needs at most a dozen.
  EXPECT_GE(a.stats().blocks, 2u);
  EXPECT_LE(a.stats().blocks, 12u);
  EXPECT_GE(a.stats().block_bytes, 256u * 64u);
}

TEST(Arena, OversizeRequestGetsDedicatedBlock) {
  su::arena a(64);
  (void)a.allocate(16, 8);
  const std::size_t before = a.stats().blocks;
  void* big = a.allocate(1 << 20, 64); // far beyond any geometric step
  ASSERT_NE(big, nullptr);
  EXPECT_TRUE(aligned_to(big, 64));
  EXPECT_EQ(a.stats().blocks, before + 1);
  // The small-block chain is not poisoned: the next small request must not
  // trigger another 1 MiB block.
  const std::size_t bytes_after_big = a.stats().block_bytes;
  (void)a.allocate(16, 8);
  EXPECT_EQ(a.stats().block_bytes, bytes_after_big);
}

TEST(Arena, CountersTrackAllocationsBytesAndResets) {
  su::arena a(1024);
  EXPECT_EQ(a.stats().allocations, 0u);
  (void)a.allocate(100, 8);
  (void)a.allocate(28, 4);
  EXPECT_EQ(a.stats().allocations, 2u);
  EXPECT_EQ(a.stats().bytes, 128u);
  EXPECT_EQ(a.live_bytes(), 128u);
  EXPECT_EQ(a.stats().peak_bytes, 128u);
  a.reset();
  EXPECT_EQ(a.stats().resets, 1u);
  EXPECT_EQ(a.live_bytes(), 0u);
  (void)a.allocate(8, 8);
  // Cumulative counters survive reset (they feed the per-run averages);
  // peak tracks the high-water mark across resets.
  EXPECT_EQ(a.stats().allocations, 3u);
  EXPECT_EQ(a.stats().peak_bytes, 128u);
  a.release();
  EXPECT_EQ(a.stats().blocks, 0u);
  EXPECT_EQ(a.stats().block_bytes, 0u);
}

TEST(ArenaAllocator, NullArenaIsTheHeapBaseline) {
  su::arena_vector<int> heap_backed; // default: null arena -> operator new
  for (int i = 0; i < 1000; ++i) heap_backed.push_back(i);
  su::arena a;
  su::arena_vector<int> arena_backed{su::arena_allocator<int>(&a)};
  for (int i = 0; i < 1000; ++i) arena_backed.push_back(i);
  ASSERT_EQ(heap_backed.size(), arena_backed.size());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(heap_backed[i], arena_backed[i]);
  EXPECT_GT(a.stats().allocations, 0u);
}

// -- instrumented allocation regression ------------------------------------

TEST(AllocRegression, WarmedArenaContextBeatsHeapModeFivefold) {
  const si::resource_library lib;
  const si::dfg design = si::make_benchmark("ewf", lib);
  const si::resource_set constraint = si::figure3_constraint(0);
  const ss::scheduler_backend& soft = ss::get_backend("soft");

  ss::run_context with_arena(ss::arena_mode::on);
  ss::run_context heap_mode(ss::arena_mode::off);
  // One warm-up run each: the arena grows its blocks, vectors reach their
  // steady-state capacity. What's measured below is the serve hot loop.
  const ss::backend_outcome warm_a = soft.run({design, lib, constraint, {}}, with_arena);
  const ss::backend_outcome warm_h = soft.run({design, lib, constraint, {}}, heap_mode);
  ASSERT_TRUE(warm_a.feasible);
  ASSERT_TRUE(warm_a.same_outcome(warm_h));

  constexpr int runs = 20;
  const std::uint64_t arena_before = su::heap_alloc_count();
  for (int i = 0; i < runs; ++i)
    ASSERT_TRUE(soft.run({design, lib, constraint, {}}, with_arena).same_outcome(warm_a));
  const std::uint64_t arena_allocs = su::heap_alloc_count() - arena_before;

  const std::uint64_t heap_before = su::heap_alloc_count();
  for (int i = 0; i < runs; ++i)
    ASSERT_TRUE(soft.run({design, lib, constraint, {}}, heap_mode).same_outcome(warm_a));
  const std::uint64_t heap_allocs = su::heap_alloc_count() - heap_before;

  // The redesign's memory gate: the warmed arena path must allocate at
  // least 5x less per run than heap mode (BENCH_softsched.json gates the
  // same ratio; this is the in-tree regression tripwire). The remaining
  // arena-mode allocations are the outcome vectors themselves.
  EXPECT_GE(heap_allocs, 5u * arena_allocs)
      << "heap mode " << heap_allocs << " allocs vs arena " << arena_allocs << " over "
      << runs << " runs";
  // And reuse really is happening, not just cheap runs all around: one
  // reset per begin_run (the warm-up plus every measured run).
  EXPECT_EQ(with_arena.arena_stats()->resets, 1u + runs);
}

// -- serve byte parity ------------------------------------------------------

namespace {

std::string serialized_modulo_ms(sv::engine& eng, const std::vector<std::string>& lines) {
  std::string text;
  for (const std::string& l : lines) text += l + "\n";
  std::istringstream in(text);
  std::ostringstream out;
  for (sv::response r : eng.run_collect(in)) {
    r.ms = 0; // the one field allowed to differ between configurations
    eng.write_response(out, r);
    out << '\n';
  }
  return out.str();
}

} // namespace

TEST(ServeParity, ArenaOnOffByteIdenticalAcrossJobsAndCaches) {
  const std::vector<std::string> lines = {
      R"({"id":"a","bench":"ewf"})",
      R"({"id":"b","bench":"hal","alus":1})",
      R"({"id":"c","random":120,"seed":5})",
      R"({"id":"d","bench":"ewf","alus":3,"meta":"topo"})",
      R"({"id":"bad","bench":"nope"})",
      R"({"id":"e","bench":"fir16","muls":3})",
      R"({"id":"f","bench":"iir4","mul_latency":1})",
  };
  sv::engine_options serial;
  serial.jobs = 1;
  serial.arena = false; // the heap baseline is the reference
  sv::engine reference(serial);
  const std::string expected = serialized_modulo_ms(reference, lines);
  ASSERT_FALSE(expected.empty());

  for (const int jobs : {1, 4, 8}) {
    for (const std::size_t cache_bytes : {std::size_t{0}, std::size_t{1} << 26}) {
      for (const bool arena : {true, false}) {
        sv::engine_options opt;
        opt.jobs = jobs;
        opt.cache_bytes = cache_bytes;
        opt.arena = arena;
        sv::engine eng(opt);
        EXPECT_EQ(serialized_modulo_ms(eng, lines), expected)
            << "jobs " << jobs << " cache " << cache_bytes << " arena " << arena;
      }
    }
  }
  // A pathologically small block size only changes how many blocks the
  // arena chains, never a byte of output.
  sv::engine_options tiny;
  tiny.jobs = 4;
  tiny.arena = true;
  tiny.arena_block_bytes = 256;
  sv::engine eng(tiny);
  EXPECT_EQ(serialized_modulo_ms(eng, lines), expected);
}

TEST(ServeParity, ArenaFlagGrammarRoundTrips) {
  EXPECT_TRUE(sv::parse_arena_flag("on").enabled);
  EXPECT_FALSE(sv::parse_arena_flag("off").enabled);
  const sv::arena_flag sized = sv::parse_arena_flag("65536");
  EXPECT_TRUE(sized.enabled);
  EXPECT_EQ(sized.block_bytes, 65536u);
  EXPECT_THROW((void)sv::parse_arena_flag(""), softsched::precondition_error);
  EXPECT_THROW((void)sv::parse_arena_flag("0"), softsched::precondition_error);
  EXPECT_THROW((void)sv::parse_arena_flag("64k"), softsched::precondition_error);
  EXPECT_THROW((void)sv::parse_arena_flag("auto"), softsched::precondition_error);
}
