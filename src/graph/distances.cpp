#include "graph/distances.h"

#include <algorithm>

#include "graph/topo.h"
#include "util/check.h"

namespace softsched::graph {

long long distance_labels::through(vertex_id v, const precedence_graph& g) const {
  g.require_vertex(v);
  return sdist[v.value()] + tdist[v.value()] - g.delay(v);
}

distance_labels compute_distances(const precedence_graph& g) {
  const std::vector<vertex_id> order = topological_order(g); // throws on cycles
  distance_labels labels;
  labels.sdist.assign(g.vertex_count(), 0);
  labels.tdist.assign(g.vertex_count(), 0);

  for (const vertex_id v : order) {
    long long best = 0;
    for (const vertex_id p : g.preds(v)) best = std::max(best, labels.sdist[p.value()]);
    labels.sdist[v.value()] = best + g.delay(v);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const vertex_id v = *it;
    long long best = 0;
    for (const vertex_id q : g.succs(v)) best = std::max(best, labels.tdist[q.value()]);
    labels.tdist[v.value()] = best + g.delay(v);
  }
  for (const vertex_id v : order)
    labels.diameter = std::max(labels.diameter, labels.through(v, g));
  return labels;
}

std::vector<vertex_id> critical_path(const precedence_graph& g) {
  if (g.vertex_count() == 0) return {};
  const distance_labels labels = compute_distances(g);

  // Start at the lowest-id vertex achieving the diameter with sdist == delay
  // (i.e. a source of a critical path), then greedily extend forward.
  vertex_id head = vertex_id::invalid();
  for (const vertex_id v : g.vertices()) {
    if (labels.through(v, g) == labels.diameter &&
        labels.sdist[v.value()] == g.delay(v)) {
      head = v;
      break;
    }
  }
  SOFTSCHED_EXPECT(head.valid(), "critical path must start at some source");

  std::vector<vertex_id> path{head};
  vertex_id cur = head;
  while (!g.succs(cur).empty()) {
    vertex_id next = vertex_id::invalid();
    for (const vertex_id q : g.succs(cur)) {
      // q continues a critical path iff its sink distance accounts for the
      // remaining length exactly.
      if (labels.tdist[q.value()] == labels.tdist[cur.value()] - g.delay(cur) &&
          (!next.valid() || q < next)) {
        next = q;
      }
    }
    if (!next.valid()) break; // cur is a sink of the critical path
    path.push_back(next);
    cur = next;
  }
  return path;
}

} // namespace softsched::graph
