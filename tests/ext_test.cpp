// ext_test.cpp - the outlook extensions (Section 6): resource-constrained
// technology mapping (MAC fusion) and resource-constrained retiming, both
// built on the threaded scheduling kernel.
#include <gtest/gtest.h>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "ext/retime.h"
#include "ext/tech_map.h"
#include "graph/distances.h"
#include "ir/benchmarks.h"
#include "meta/meta_schedule.h"
#include "util/check.h"

namespace si = softsched::ir;
namespace sc = softsched::core;
namespace sm = softsched::meta;
namespace se = softsched::ext;
using softsched::graph::vertex_id;

TEST(TechMap, FirCandidatesAreTheFirstAdderLevel) {
  const si::resource_library lib;
  const si::dfg d = si::make_fir8(lib);
  const auto candidates = se::find_mac_candidates(d);
  // Eight multiplies feed four first-level adds pairwise; each add is
  // claimed once (by its lower-id multiply).
  EXPECT_EQ(candidates.size(), 4u);
  for (const auto& c : candidates) {
    EXPECT_EQ(d.kind(c.mul), si::op_kind::mul);
    EXPECT_EQ(d.kind(c.add), si::op_kind::add);
    EXPECT_EQ(d.graph().succs(c.mul).size(), 1u);
  }
}

TEST(TechMap, FuseReducesOpCountAndStaysValid) {
  const si::resource_library lib;
  const si::dfg d = si::make_fir8(lib);
  const auto candidates = se::find_mac_candidates(d);
  const si::dfg mapped = se::fuse_macs(d, candidates, 2);
  EXPECT_EQ(mapped.op_count(), d.op_count() - candidates.size());
  EXPECT_NO_THROW(mapped.validate());
  // Fused MACs keep the multiplier class with the MAC latency.
  const vertex_id mac = si::find_op(mapped, "mac_a1");
  EXPECT_EQ(mapped.unit_class(mac), si::resource_class::multiplier);
  EXPECT_EQ(mapped.graph().delay(mac), 2);
}

TEST(TechMap, EmptyFusionIsIdentity) {
  const si::resource_library lib;
  const si::dfg d = si::make_hal(lib);
  const si::dfg mapped = se::fuse_macs(d, {}, 2);
  EXPECT_EQ(mapped.op_count(), d.op_count());
  EXPECT_EQ(mapped.graph().edge_count(), d.graph().edge_count());
}

TEST(TechMap, GreedyMappingNeverHurtsLatency) {
  const si::resource_library lib;
  for (const si::dfg& d : si::figure3_benchmarks(lib)) {
    for (int c = 0; c < si::figure3_constraint_count; ++c) {
      const se::tech_map_result result = se::map_macs(d, si::figure3_constraint(c));
      EXPECT_LE(result.latency_after, result.latency_before)
          << d.name() << " @ " << si::figure3_constraint(c).label();
      EXPECT_LE(result.fused, result.candidates);
      EXPECT_NO_THROW(result.mapped.validate());
    }
  }
}

TEST(TechMap, FirBenefitsFromMacs) {
  // FIR is the canonical MAC workload: under a tight multiplier budget,
  // fusing the first adder level must shorten the schedule.
  const si::resource_library lib;
  // ALU-bound machine: one adder serializes the 15-add tree while four
  // multipliers idle - moving adds into MACs frees the bottleneck.
  const si::dfg d = si::make_fir(lib, 16);
  const se::tech_map_result result = se::map_macs(d, si::resource_set{1, 4, 1});
  EXPECT_GT(result.fused, 0u);
  EXPECT_LT(result.latency_after, result.latency_before);
}

TEST(Retime, CorrelatorProblemShape) {
  const se::retime_problem p = se::make_correlator(4);
  EXPECT_EQ(p.ops.size(), 9u); // host + 4 comparators + 4 adders
  std::vector<int> identity(p.ops.size(), 0);
  EXPECT_TRUE(se::valid_retiming(p, identity));
}

TEST(Retime, InvalidRetimingsRejected) {
  const se::retime_problem p = se::make_correlator(3);
  std::vector<int> r(p.ops.size(), 0);
  r[0] = 100; // drains every register on host-outgoing edges negative
  EXPECT_FALSE(se::valid_retiming(p, r));
  EXPECT_FALSE(se::valid_retiming(p, std::vector<int>(3, 0))); // wrong size
}

TEST(Retime, BodyDfgContainsOnlyZeroWeightEdges) {
  const si::resource_library lib;
  const se::retime_problem p = se::make_correlator(3);
  const std::vector<int> identity(p.ops.size(), 0);
  const si::dfg body = se::body_dfg(p, identity, lib);
  EXPECT_EQ(body.op_count(), p.ops.size());
  std::size_t zero_edges = 0;
  for (const auto& e : p.edges)
    if (e.weight == 0) ++zero_edges;
  EXPECT_EQ(body.graph().edge_count(), zero_edges);
}

TEST(Retime, HillClimbImprovesCorrelatorLatency) {
  // The whole point: moving registers into the accumulation chain must
  // shorten the resource-constrained body schedule.
  const si::resource_library lib;
  const se::retime_problem p = se::make_correlator(6);
  const se::retime_result result =
      se::retime_min_latency(p, si::resource_set{2, 1, 1}, lib);
  EXPECT_LT(result.latency_after, result.latency_before);
  EXPECT_GT(result.rounds, 0);
  EXPECT_TRUE(se::valid_retiming(p, result.r));
}

TEST(Retime, ResultIsDeterministic) {
  const si::resource_library lib;
  const se::retime_problem p = se::make_correlator(5);
  const auto r1 = se::retime_min_latency(p, si::resource_set{2, 1, 1}, lib);
  const auto r2 = se::retime_min_latency(p, si::resource_set{2, 1, 1}, lib);
  EXPECT_EQ(r1.r, r2.r);
  EXPECT_EQ(r1.latency_after, r2.latency_after);
}

TEST(Retime, MoreAlusShortenTheRetimedBody) {
  const si::resource_library lib;
  const se::retime_problem p = se::make_correlator(8);
  const auto tight = se::retime_min_latency(p, si::resource_set{1, 1, 1}, lib);
  const auto wide = se::retime_min_latency(p, si::resource_set{4, 1, 1}, lib);
  EXPECT_LE(wide.latency_after, tight.latency_after);
}
