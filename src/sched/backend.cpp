#include "sched/backend.h"

#include <algorithm>
#include <array>

#include "core/hls_binding.h"
#include "graph/distances.h"
#include "hard/asap_alap.h"
#include "hard/force_directed.h"
#include "hard/list_scheduler.h"
#include "util/check.h"

namespace softsched::sched {

namespace {

using graph::vertex_id;

/// The classes an allocation can actually constrain (wire is dedicated).
constexpr std::array<ir::resource_class, 3> contended_classes = {
    ir::resource_class::alu, ir::resource_class::multiplier,
    ir::resource_class::memory_port};

backend_outcome outcome_from_hard(const hard::schedule& s) {
  backend_outcome r;
  r.feasible = true;
  r.latency = s.makespan;
  r.start_times = s.start;
  r.unit_of = s.unit;
  return r;
}

/// The shared soft-kernel run: schedules request.design with the threaded
/// scheduler over the feed order already staged in ctx.meta_order. The
/// caller owns begin_run() and the meta order - the soft backend fills it
/// from the requested meta kind, sdc-iter from its fold of the previous
/// iteration's critical subgraph. Factoring this out is what makes
/// "sdc-iter at budget 0 equals soft byte-for-byte" a structural fact
/// instead of a test hope.
backend_outcome soft_kernel_run(const run_request& request, run_context& ctx) {
  const ir::dfg& d = request.design;
  backend_outcome r;
  try {
    ctx.state.emplace(
        core::make_hls_state(d, request.resources, ctx.arena(), ctx.thread_tags));
    core::threaded_graph& state = *ctx.state;
    // Wire pseudo-ops each need their dedicated thread before scheduling
    // (hls_binding contract) - inline .dfg designs may carry them.
    const auto n = static_cast<std::uint32_t>(d.op_count());
    for (std::uint32_t i = 0; i < n; ++i)
      if (d.kind(vertex_id(i)) == ir::op_kind::wire)
        core::add_wire_thread(state, vertex_id(i));
    state.schedule_all(ctx.meta_order);
    r.latency = state.diameter();
    state.asap_start_times(r.start_times);
    r.unit_of.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
      r.unit_of.push_back(state.thread_of(vertex_id(i)));
    r.stats = state.stats();
    ctx.accumulate(r.stats);
    r.feasible = true;
  } catch (const infeasible_error& e) {
    r.infeasible_reason = e.what();
  }
  return r;
}

// -- soft: the paper's K-threaded online scheduler -------------------------

class soft_backend final : public scheduler_backend {
public:
  [[nodiscard]] std::string_view name() const noexcept override { return "soft"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "K-threaded soft scheduler (Algorithm 1, refinable partial order)";
  }
  [[nodiscard]] backend_caps caps() const noexcept override {
    return {.binds_units = true, .uses_meta = true, .refinable = true,
            .time_constrained = false};
  }

  [[nodiscard]] backend_outcome run(const run_request& request,
                                    run_context& ctx) const override {
    SOFTSCHED_EXPECT(request.options.meta != meta::meta_kind::random,
                     "backend runs need a deterministic meta schedule");
    ctx.begin_run();
    meta::meta_schedule(request.design.graph(), request.options.meta, ctx.meta,
                        ctx.meta_order);
    return soft_kernel_run(request, ctx);
  }
};

// -- list: the resource-constrained critical-path baseline -----------------

class list_backend final : public scheduler_backend {
public:
  [[nodiscard]] std::string_view name() const noexcept override { return "list"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "resource-constrained list scheduler (critical-path priority)";
  }
  [[nodiscard]] backend_caps caps() const noexcept override {
    return {.binds_units = true, .uses_meta = false, .refinable = false,
            .time_constrained = false};
  }

  [[nodiscard]] backend_outcome run(const run_request& request,
                                    run_context& ctx) const override {
    ctx.begin_run(); // hard backends still honor the context contract
    try {
      return outcome_from_hard(hard::list_schedule(request.design, request.resources));
    } catch (const infeasible_error& e) {
      backend_outcome r;
      r.infeasible_reason = e.what();
      return r;
    }
  }
};

// -- fds: force-directed, made resource-comparable by a budget search ------

class fds_backend final : public scheduler_backend {
public:
  [[nodiscard]] std::string_view name() const noexcept override { return "fds"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "force-directed scheduling (smallest latency budget fitting the allocation)";
  }
  [[nodiscard]] backend_caps caps() const noexcept override {
    return {.binds_units = false, .uses_meta = false, .refinable = false,
            .time_constrained = true};
  }

  [[nodiscard]] backend_outcome run(const run_request& request,
                                    run_context& ctx) const override {
    ctx.begin_run(); // hard backends still honor the context contract
    const ir::dfg& d = request.design;
    const ir::resource_set& resources = request.resources;
    const backend_options& options = request.options;
    backend_outcome r;
    // Same zero-unit screen as the other backends: FDS itself is
    // time-constrained and would happily "fit" an allocation with no units
    // by smearing pressure it never checks against.
    for (const ir::resource_class cls : contended_classes) {
      if (d.count_class(cls) > 0 && resources.count(cls) == 0) {
        r.infeasible_reason = d.name() + " needs at least one " +
                              std::string(ir::class_name(cls)) + " unit";
        return r;
      }
    }

    // Lower bounds on any resource-legal latency: the critical path, and
    // per class ceil(total work / units) - FDS cannot beat either, so the
    // budget search starts at their max instead of probing dead budgets.
    const long long critical = graph::compute_distances(d.graph()).diameter;
    if (options.fds_latency > 0 && options.fds_latency < critical) {
      r.infeasible_reason = "latency budget " + std::to_string(options.fds_latency) +
                            " is below the critical path " + std::to_string(critical);
      return r;
    }
    long long floor = critical;
    for (const ir::resource_class cls : contended_classes) {
      const int units = resources.count(cls);
      if (units <= 0) continue;
      long long work = 0;
      for (const vertex_id v : d.graph().vertices())
        if (d.unit_class(v) == cls) work += d.graph().delay(v);
      floor = std::max(floor, (work + units - 1) / units);
    }

    const long long first = options.fds_latency > 0 ? options.fds_latency : floor;
    // -1 asks for the smallest fitting budget; an explicit budget runs once.
    const long long last = options.fds_latency > 0 ? first : floor + budget_scan;
    for (long long latency = first; latency <= last; ++latency) {
      hard::fds_result fds;
      try {
        fds = hard::force_directed_schedule(d, latency);
      } catch (const infeasible_error& e) {
        r.infeasible_reason = e.what(); // budget below the critical path
        return r;
      }
      const bool fits = std::ranges::all_of(contended_classes, [&](auto cls) {
        return fds.peak[static_cast<int>(cls)] <= resources.count(cls);
      });
      if (fits) return outcome_from_hard(fds.sched);
    }
    r.infeasible_reason =
        options.fds_latency > 0
            ? "force-directed peak usage exceeds " + resources.label() +
                  " at latency budget " + std::to_string(first)
            : "force-directed peak usage exceeds " + resources.label() +
                  " for every latency budget up to " + std::to_string(last);
    return r;
  }

private:
  /// How far past the lower bound the budget search walks before declaring
  /// the allocation unreachable. FDS balances well; real designs fit at or
  /// within a few states of the bound, and the cap keeps a pathological
  /// (design, allocation) pair from scanning forever.
  static constexpr long long budget_scan = 64;
};

// -- sdc-iter: feedback-guided iterative refinement (Ye et al. style) ------

/// One refinement step's extraction: the critical subgraph of `best` -
/// every op on a schedule-tight dependence chain ending at the makespan
/// (the longest register-to-register paths) plus every op active in a
/// state where its class' usage has saturated the allocation. Returns a
/// per-vertex membership mask.
std::vector<char> extract_critical_set(const ir::dfg& d,
                                       const ir::resource_set& resources,
                                       const backend_outcome& best) {
  const auto n = d.op_count();
  std::vector<char> in_set(n, 0);
  // Tight chains: walk predecessors backwards from every op finishing at
  // the makespan, following edges with zero slack (finish(u) == start(v)).
  std::vector<vertex_id> worklist;
  for (std::size_t i = 0; i < n; ++i) {
    const vertex_id v{static_cast<std::uint32_t>(i)};
    if (best.start_times[i] + d.graph().delay(v) == best.latency) {
      in_set[i] = 1;
      worklist.push_back(v);
    }
  }
  while (!worklist.empty()) {
    const vertex_id v = worklist.back();
    worklist.pop_back();
    for (const vertex_id u : d.graph().preds(v)) {
      if (in_set[u.value()]) continue;
      if (best.start_times[u.value()] + d.graph().delay(u) ==
          best.start_times[v.value()]) {
        in_set[u.value()] = 1;
        worklist.push_back(u);
      }
    }
  }
  // Oversubscribed states: ops of a contended class active in a cycle
  // where that class' usage equals its allocation (the states a tighter
  // schedule must unpack first).
  const hard::schedule hs = to_hard_schedule(best);
  for (const ir::resource_class cls : contended_classes) {
    const int units = resources.count(cls);
    if (units <= 0 || d.count_class(cls) == 0) continue;
    const std::vector<int> profile = hard::usage_profile(d, hs, cls);
    for (std::size_t i = 0; i < n; ++i) {
      const vertex_id v{static_cast<std::uint32_t>(i)};
      if (in_set[i] || d.unit_class(v) != cls) continue;
      const long long s = best.start_times[i];
      const long long e = s + d.graph().delay(v);
      for (long long t = s; t < e && t < static_cast<long long>(profile.size()); ++t) {
        if (profile[static_cast<std::size_t>(t)] >= units) {
          in_set[i] = 1;
          break;
        }
      }
    }
  }
  return in_set;
}

class sdc_iter_backend final : public scheduler_backend {
public:
  [[nodiscard]] std::string_view name() const noexcept override { return "sdc-iter"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "feedback-guided iterative scheduler (critical-subgraph extraction + re-fold)";
  }
  [[nodiscard]] backend_caps caps() const noexcept override {
    return {.binds_units = true, .uses_meta = true, .refinable = false,
            .time_constrained = true, .iterative = true};
  }

  /// schedule -> extract -> re-schedule tightened -> fold -> repeat:
  ///   1. Base run: the soft kernel over the requested meta order -
  ///      byte-for-byte the soft backend (budget 0 returns it unchanged).
  ///   2. Extract the critical subgraph of the incumbent best schedule
  ///      (extract_critical_set above).
  ///   3. Re-schedule that subgraph in canonical (ascending-vertex-id)
  ///      space under tightened constraints: a resource-constrained list
  ///      schedule of the induced sub-DFG plus its ALAP frame against a
  ///      latency target one state under the incumbent.
  ///   4. Fold back: a new feed order that promotes the extracted ops in
  ///      sub-schedule priority, the remainder following in a meta order
  ///      cycled deterministically per iteration, and re-run the kernel.
  ///   5. Keep the incumbent best (QoR is monotone non-worsening); stop at
  ///      the budget or at a fixed point - a full variant cycle with no
  ///      improvement reproduces itself forever, so it is one.
  [[nodiscard]] backend_outcome run(const run_request& request,
                                    run_context& ctx) const override {
    SOFTSCHED_EXPECT(request.options.meta != meta::meta_kind::random,
                     "backend runs need a deterministic meta schedule");
    const long long budget = request.options.iter_budget < 0
                                 ? sdc_iter_default_budget
                                 : request.options.iter_budget;
    ctx.begin_run();
    const ir::dfg& d = request.design;
    meta::meta_schedule(d.graph(), request.options.meta, ctx.meta, ctx.meta_order);
    backend_outcome best = soft_kernel_run(request, ctx);
    if (!best.feasible || budget == 0 || d.op_count() == 0) return best;

    const long long critical = graph::compute_distances(d.graph()).diameter;
    // The remainder variants start at the requested meta kind so iteration
    // order - and therefore the outcome - is a pure function of the request.
    constexpr int variant_count =
        static_cast<int>(std::size(meta::figure3_meta_kinds));
    int base_variant = 0;
    for (int i = 0; i < variant_count; ++i)
      if (meta::figure3_meta_kinds[i] == request.options.meta) base_variant = i;

    std::vector<vertex_id> folded;
    int stale = 0; // non-improving iterations since the last improvement
    for (long long iter = 0; iter < budget; ++iter) {
      if (best.latency <= critical) break; // already optimal: fixed point
      if (stale >= variant_count) break;   // full variant cycle, no change
      const std::vector<char> in_set =
          extract_critical_set(d, request.resources, best);
      const meta::meta_kind remainder_kind =
          meta::figure3_meta_kinds[(base_variant + stale) % variant_count];
      if (!fold_order(d, request.resources, best, in_set, remainder_kind, ctx,
                      folded))
        break; // infeasible subproblem: the incumbent is the outcome
      ctx.begin_run();
      ctx.meta_order = folded;
      backend_outcome candidate = soft_kernel_run(request, ctx);
      best.iterations = iter + 1;
      if (candidate.feasible && candidate.latency < best.latency) {
        const long long iterations = best.iterations;
        best = std::move(candidate);
        best.iterations = iterations;
        stale = 0;
      } else {
        ++stale;
      }
    }
    return best;
  }

private:
  /// Builds the fold of one iteration into `folded`: the extracted ops
  /// first, ordered by their tightened sub-schedule (list start, ALAP
  /// start, vertex id), then the remainder in `remainder_kind` order.
  /// Returns false when the subproblem is degenerate or infeasible - the
  /// caller folds the incumbent back as the outcome instead of throwing.
  static bool fold_order(const ir::dfg& d, const ir::resource_set& resources,
                         const backend_outcome& best,
                         const std::vector<char>& in_set,
                         meta::meta_kind remainder_kind, run_context& ctx,
                         std::vector<vertex_id>& folded) {
    const auto n = d.op_count();
    // Induced sub-DFG in canonical space: members in ascending vertex id,
    // edges restricted to the set (ordering heuristic, not a legality
    // claim - the fold feeds the soft kernel, which re-checks everything).
    std::vector<std::uint32_t> sub_id(n, UINT32_MAX);
    std::vector<vertex_id> members;
    for (std::size_t i = 0; i < n; ++i)
      if (in_set[i]) {
        sub_id[i] = static_cast<std::uint32_t>(members.size());
        members.push_back(vertex_id{static_cast<std::uint32_t>(i)});
      }
    if (members.empty() || members.size() == n) return false;
    ir::dfg sub("sdc-iter-sub", d.library());
    std::vector<vertex_id> inputs;
    for (const vertex_id v : members) {
      inputs.clear();
      for (const vertex_id p : d.graph().preds(v))
        if (sub_id[p.value()] != UINT32_MAX)
          inputs.push_back(vertex_id{sub_id[p.value()]});
      if (d.kind(v) == ir::op_kind::wire) {
        const vertex_id w = sub.add_wire(d.graph().delay(v), {});
        for (const vertex_id in : inputs) sub.add_dependence(in, w);
      } else {
        sub.add_op(d.kind(v), inputs);
      }
    }
    // Tightened re-schedule: resource-constrained list schedule of the
    // subgraph, plus the ALAP frame against one state under the incumbent
    // (clamped to the subgraph's own critical path - the tightest target
    // that is still schedulable).
    hard::schedule sub_sched;
    try {
      sub_sched = hard::list_schedule(sub, resources);
    } catch (const infeasible_error&) {
      return false;
    }
    const long long sub_critical = graph::compute_distances(sub.graph()).diameter;
    const long long target = std::max(sub_critical, best.latency - 1);
    std::vector<long long> alap_start;
    try {
      alap_start = hard::alap_schedule(sub, target).start;
    } catch (const infeasible_error&) {
      return false;
    }
    std::ranges::sort(members, [&](vertex_id a, vertex_id b) {
      const std::uint32_t sa = sub_id[a.value()];
      const std::uint32_t sb = sub_id[b.value()];
      if (sub_sched.start[sa] != sub_sched.start[sb])
        return sub_sched.start[sa] < sub_sched.start[sb];
      if (alap_start[sa] != alap_start[sb]) return alap_start[sa] < alap_start[sb];
      return a.value() < b.value();
    });
    folded.assign(members.begin(), members.end());
    meta::meta_schedule(d.graph(), remainder_kind, ctx.meta, ctx.meta_order);
    for (const vertex_id v : ctx.meta_order)
      if (!in_set[v.value()]) folded.push_back(v);
    return true;
  }
};

const soft_backend soft_instance;
const list_backend list_instance;
const fds_backend fds_instance;
const sdc_iter_backend sdc_iter_instance;

/// Registration order is a wire contract: backend_index feeds the serve
/// cache salt (docs/DESIGN.md §7). Append only.
constexpr std::array<const scheduler_backend*, 4> registry = {
    &soft_instance, &list_instance, &fds_instance, &sdc_iter_instance};

} // namespace

hard::schedule to_hard_schedule(const backend_outcome& outcome) {
  hard::schedule s;
  s.start = outcome.start_times;
  s.unit = outcome.unit_of;
  s.makespan = outcome.latency;
  return s;
}

bool backend_outcome::same_outcome(const backend_outcome& other) const {
  return feasible == other.feasible && infeasible_reason == other.infeasible_reason &&
         latency == other.latency && start_times == other.start_times &&
         unit_of == other.unit_of && stats == other.stats &&
         iterations == other.iterations;
}

std::span<const scheduler_backend* const> registered_backends() { return registry; }

const scheduler_backend* find_backend(std::string_view name) {
  for (const scheduler_backend* b : registry)
    if (b->name() == name) return b;
  return nullptr;
}

const scheduler_backend& get_backend(std::string_view name) {
  const scheduler_backend* b = find_backend(name);
  if (b == nullptr)
    throw precondition_error("unknown scheduler backend '" + std::string(name) +
                             "' (expected " + backend_names_joined() + ")");
  return *b;
}

int backend_index(std::string_view name) {
  for (std::size_t i = 0; i < registry.size(); ++i)
    if (registry[i]->name() == name) return static_cast<int>(i);
  return -1;
}

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  names.reserve(registry.size());
  for (const scheduler_backend* b : registry) names.emplace_back(b->name());
  return names;
}

std::string backend_names_joined() {
  std::string joined;
  for (const scheduler_backend* b : registry) {
    if (!joined.empty()) joined += "|";
    joined += b->name();
  }
  return joined;
}

std::uint64_t backend_option_salt(const scheduler_backend& backend,
                                  meta::meta_kind meta, long long iter_budget) {
  // Low byte: meta kind + 1 (the pre-registry salt, so soft keys are
  // unchanged) - but only for backends that consume the meta order; the
  // rest collapse every meta onto one salt so identical outcomes share one
  // cache entry. Bits 8-31: the registry index, so the same design +
  // allocation under two backends can never share an entry. Bits 32+:
  // effective iteration budget + 1, only for iterative backends - budget
  // sweeps against sdc-iter get distinct keys while non-iterative backends
  // collapse every budget onto one salt (the knob cannot change their
  // outcome). -1 resolves to the default budget before salting so the
  // default and its explicit spelling share one entry. Every pre-iter
  // (backend, meta) salt value is bit-for-bit the PR 5 value.
  const int index = backend_index(backend.name());
  SOFTSCHED_EXPECT(index >= 0, "salt requested for an unregistered backend");
  const std::uint64_t meta_bits =
      backend.caps().uses_meta ? static_cast<std::uint64_t>(meta) + 1 : 1;
  std::uint64_t salt = (static_cast<std::uint64_t>(index) << 8) | meta_bits;
  if (backend.caps().iterative) {
    const long long effective =
        iter_budget < 0 ? sdc_iter_default_budget : iter_budget;
    salt |= (static_cast<std::uint64_t>(effective) + 1) << 32;
  }
  return salt;
}

} // namespace softsched::sched
