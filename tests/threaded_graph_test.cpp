// threaded_graph_test.cpp - unit tests for the threaded scheduling state:
// construction, scheduling mechanics, Figure-1 behaviour, invariants, and
// online optimality against the naive Definition-5 selector.
#include <gtest/gtest.h>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "graph/distances.h"
#include "graph/generators.h"
#include "graph/topo.h"
#include "ir/benchmarks.h"
#include "util/check.h"
#include "util/rng.h"

namespace sg = softsched::graph;
namespace sc = softsched::core;
namespace si = softsched::ir;
using softsched::rng;
using sg::vertex_id;

TEST(ThreadedGraph, EmptyStateHasZeroDiameter) {
  sg::precedence_graph g;
  sc::threaded_graph state(g, 3);
  EXPECT_EQ(state.thread_count(), 3);
  EXPECT_EQ(state.scheduled_count(), 0u);
  EXPECT_EQ(state.diameter(), 0);
  EXPECT_NO_THROW(state.check_invariants());
}

TEST(ThreadedGraph, RequiresAtLeastOneThread) {
  sg::precedence_graph g;
  EXPECT_THROW(sc::threaded_graph(g, 0), softsched::precondition_error);
}

TEST(ThreadedGraph, SingleVertexScheduling) {
  sg::precedence_graph g;
  const vertex_id v = g.add_vertex(3, "only");
  sc::threaded_graph state(g, 2);
  state.schedule(v);
  EXPECT_TRUE(state.scheduled(v));
  EXPECT_EQ(state.scheduled_count(), 1u);
  EXPECT_EQ(state.diameter(), 3);
  EXPECT_NO_THROW(state.check_invariants());
}

TEST(ThreadedGraph, ReschedulingIsIdempotent) {
  // Definition 3: v already in V_S leaves the state untouched.
  sg::precedence_graph g;
  const vertex_id a = g.add_vertex(1);
  const vertex_id b = g.add_vertex(1);
  g.add_edge(a, b);
  sc::threaded_graph state(g, 1);
  state.schedule(a);
  state.schedule(b);
  const auto edges_before = state.state_edges();
  state.schedule(a);
  EXPECT_EQ(state.state_edges(), edges_before);
  EXPECT_EQ(state.scheduled_count(), 2u);
}

TEST(ThreadedGraph, SelectOnScheduledVertexThrows) {
  sg::precedence_graph g;
  const vertex_id a = g.add_vertex(1);
  sc::threaded_graph state(g, 1);
  state.schedule(a);
  EXPECT_THROW((void)state.select(a), softsched::precondition_error);
}

TEST(ThreadedGraph, ChainOnOneThreadSerializes) {
  rng unused(1);
  sg::precedence_graph g = sg::chain(5, 2);
  sc::threaded_graph state(g, 1);
  state.schedule_all(sg::topological_order(g));
  EXPECT_EQ(state.diameter(), 10);
  EXPECT_EQ(state.thread_sequence(0).size(), 5u);
  state.check_invariants();
}

TEST(ThreadedGraph, IndependentOpsSpreadAcrossThreads) {
  sg::precedence_graph g;
  for (int i = 0; i < 4; ++i) g.add_vertex(1);
  sc::threaded_graph state(g, 4);
  state.schedule_all(g.vertices());
  // Four independent unit ops on four threads: diameter stays 1.
  EXPECT_EQ(state.diameter(), 1);
  state.check_invariants();
}

TEST(ThreadedGraph, TwoThreadsSerializeWhenSaturated) {
  sg::precedence_graph g;
  for (int i = 0; i < 4; ++i) g.add_vertex(1);
  sc::threaded_graph state(g, 2);
  state.schedule_all(g.vertices());
  // Four independent unit ops on two units -> two per thread -> diameter 2.
  EXPECT_EQ(state.diameter(), 2);
  state.check_invariants();
}

TEST(ThreadedGraph, ArtificialEdgeSerializesSharedUnit) {
  // The paper's Section 3 example: vertices 2 and 5 share a unit, so the
  // state carries an artificial 2 -> 5 (or 5 -> 2) edge even though they
  // are incomparable in G.
  si::resource_library lib;
  const si::dfg d = si::make_figure1(lib);
  sc::threaded_graph state(d.graph(), 2);
  state.schedule_all(sg::topological_order(d.graph()));
  const vertex_id v2 = si::find_op(d, "2");
  const vertex_id v5 = si::find_op(d, "5");
  if (state.thread_of(v2) == state.thread_of(v5)) {
    EXPECT_TRUE(state.state_precedes(v2, v5) || state.state_precedes(v5, v2));
  }
  state.check_invariants();
}

TEST(ThreadedGraph, Figure1SoftScheduleReaches5States) {
  // Figure 1 (e): the 7-vertex example on two units schedules in 5 states.
  si::resource_library lib;
  const si::dfg d = si::make_figure1(lib);
  EXPECT_EQ(sg::compute_distances(d.graph()).diameter, 5);
  sc::threaded_graph state(d.graph(), 2);
  state.schedule_all(sg::topological_order(d.graph()));
  EXPECT_EQ(state.diameter(), 5);
  state.check_invariants();
}

TEST(ThreadedGraph, InfeasibleWhenNoCompatibleThread) {
  si::resource_library lib;
  const si::dfg d = si::make_hal(lib);
  // Zero multipliers but HAL has six multiplications.
  EXPECT_THROW((void)sc::make_hls_state(d, si::resource_set{2, 0, 1}),
               softsched::infeasible_error);
}

TEST(ThreadedGraph, HlsBindingRespectsResourceClasses) {
  si::resource_library lib;
  const si::dfg d = si::make_hal(lib);
  sc::threaded_graph state = sc::make_hls_state(d, si::resource_set{2, 2, 1});
  state.schedule_all(sg::topological_order(d.graph()));
  state.check_invariants();
  // Every multiplication must sit on a multiplier thread.
  for (const vertex_id v : d.graph().vertices()) {
    const int tag = state.thread_tag(state.thread_of(v));
    EXPECT_EQ(tag, static_cast<int>(d.unit_class(v)))
        << "op " << d.graph().name(v) << " bound to wrong unit class";
  }
}

TEST(ThreadedGraph, StateEdgesContainThreadChains) {
  sg::precedence_graph g = sg::chain(3, 1);
  sc::threaded_graph state(g, 1);
  state.schedule_all(sg::topological_order(g));
  const auto edges = state.state_edges();
  // Chain of 3 on one thread: exactly the two chain edges.
  EXPECT_EQ(edges.size(), 2u);
}

TEST(ThreadedGraph, AddThreadExtendsCapacity) {
  sg::precedence_graph g;
  for (int i = 0; i < 3; ++i) g.add_vertex(1);
  sc::threaded_graph state(g, 1);
  state.schedule(vertex_id(0));
  EXPECT_EQ(state.add_thread(0), 1);
  state.schedule(vertex_id(1));
  state.schedule(vertex_id(2));
  EXPECT_EQ(state.thread_count(), 2);
  // Three unit ops over two threads -> diameter 2.
  EXPECT_EQ(state.diameter(), 2);
  state.check_invariants();
}

TEST(ThreadedGraph, SourceAndSinkDistancesMatchDefinition) {
  sg::precedence_graph g = sg::chain(4, 3); // delays 3,3,3,3
  sc::threaded_graph state(g, 1);
  state.schedule_all(sg::topological_order(g));
  EXPECT_EQ(state.source_distance(vertex_id(0)), 3);
  EXPECT_EQ(state.source_distance(vertex_id(3)), 12);
  EXPECT_EQ(state.sink_distance(vertex_id(0)), 12);
  EXPECT_EQ(state.sink_distance(vertex_id(3)), 3);
}

TEST(ThreadedGraph, AsapStartTimesRespectState) {
  si::resource_library lib;
  const si::dfg d = si::make_figure1(lib);
  sc::threaded_graph state(d.graph(), 2);
  state.schedule_all(sg::topological_order(d.graph()));
  const std::vector<long long> start = state.asap_start_times();
  for (const auto& [from, to] : state.state_edges()) {
    EXPECT_GE(start[to.value()],
              start[from.value()] + d.graph().delay(from))
        << "state edge violated by start times";
  }
}

TEST(ThreadedGraph, RegressionLine59UsesInsertedVertexDelay) {
  // Algorithm 1 line 59 reads "curDelay = sdist + tdist + cur.delay" in the
  // paper; the Lemma-5 quantity is the *inserted* vertex's delay. This
  // construction separates the two formulas:
  //   G: p(10) -> v(1); z(2) unrelated. p on thread 0, z on thread 1.
  //   true cost: after-p = 11, front-of-t1 = 13, after-z = 11
  //   cur.delay cost: after-p = 20, front-of-t1 = 12, after-z = 12
  // A cur.delay implementation would pick front-of-t1 and land at
  // diameter 13; the correct formula reaches 11.
  sg::precedence_graph g;
  const vertex_id p = g.add_vertex(10, "p");
  const vertex_id v = g.add_vertex(1, "v");
  const vertex_id z = g.add_vertex(2, "z");
  g.add_edge(p, v);
  sc::threaded_graph state(g, 2);
  state.commit(state.position_front(0), p);
  state.commit(state.position_front(1), z);

  const sc::insert_position chosen = state.select(v);
  EXPECT_EQ(chosen.cost, 11);
  state.commit(chosen, v);
  EXPECT_EQ(state.diameter(), 11);
  state.check_invariants();
}

// ---------------------------------------------------------------------------
// Property tests over random DAGs: invariants after every step, and online
// optimality of the fast select against the naive Definition-5 selector.
// ---------------------------------------------------------------------------

struct random_case {
  std::uint64_t seed;
  int layers;
  int width;
  double edge_prob;
  int threads;
};

class ThreadedGraphRandom : public ::testing::TestWithParam<random_case> {};

TEST_P(ThreadedGraphRandom, InvariantsHoldAfterEveryStep) {
  const random_case param = GetParam();
  rng rand(param.seed);
  sg::layered_params lp;
  lp.layers = param.layers;
  lp.width = param.width;
  lp.edge_prob = param.edge_prob;
  const sg::precedence_graph g = sg::layered_random(lp, rand);
  sc::threaded_graph state(g, param.threads);

  // Feed in a random (non-topological!) meta order: the online schedule
  // must stay correct regardless (Definition 3).
  std::vector<vertex_id> order = g.vertices();
  rand.shuffle(order);
  for (const vertex_id v : order) {
    state.schedule(v);
    ASSERT_NO_THROW(state.check_invariants()) << "after scheduling v" << v.value();
  }
  EXPECT_EQ(state.scheduled_count(), g.vertex_count());

  // Correctness condition: the final makespan is at least the critical path.
  EXPECT_GE(state.diameter(), sg::compute_distances(g).diameter);
}

TEST_P(ThreadedGraphRandom, FastSelectMatchesNaiveDiameter) {
  const random_case param = GetParam();
  rng rand(param.seed ^ 0xabcdef);
  sg::layered_params lp;
  lp.layers = param.layers;
  lp.width = param.width;
  lp.edge_prob = param.edge_prob;
  const sg::precedence_graph g = sg::layered_random(lp, rand);
  sc::threaded_graph state(g, param.threads);

  std::vector<vertex_id> order = g.vertices();
  rand.shuffle(order);
  for (const vertex_id v : order) {
    const sc::insert_position fast = state.select(v);
    const sc::insert_position naive = state.select_naive(v);
    // Theorem 2 / Corollary 1: committing the fast choice yields the same
    // (minimal) diameter as exhaustive speculation. The positions may
    // differ under cost ties, so compare resulting diameters.
    sc::threaded_graph fast_state(state);
    fast_state.commit(fast, v);
    EXPECT_EQ(fast_state.diameter(), naive.cost)
        << "fast select suboptimal for v" << v.value();
    // Lemma 4: diameters never shrink; Lemma 5/6: predicted cost is exact.
    EXPECT_EQ(fast_state.diameter(), std::max(state.diameter(), fast.cost));
    state.commit(fast, v);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDags, ThreadedGraphRandom,
    ::testing::Values(random_case{11, 4, 3, 0.4, 2}, random_case{12, 6, 4, 0.3, 3},
                      random_case{13, 5, 5, 0.5, 2}, random_case{14, 8, 3, 0.25, 4},
                      random_case{15, 3, 8, 0.35, 3}, random_case{16, 10, 2, 0.5, 2},
                      random_case{17, 7, 4, 0.2, 5}, random_case{18, 5, 6, 0.45, 1}),
    [](const ::testing::TestParamInfo<random_case>& info) {
      return "seed" + std::to_string(info.param.seed);
    });
