#include "serve/cache.h"

#include "util/check.h"

namespace softsched::serve {

std::size_t schedule_result::bytes() const noexcept {
  return sizeof(schedule_result) + infeasible_reason.size() +
         start_times.size() * sizeof(long long) + unit_of.size() * sizeof(int);
}

bool schedule_result::same_schedule(const schedule_result& other) const {
  return feasible == other.feasible && infeasible_reason == other.infeasible_reason &&
         ops == other.ops && latency == other.latency &&
         start_times == other.start_times && unit_of == other.unit_of &&
         stats == other.stats;
}

schedule_cache::schedule_cache(std::size_t byte_budget, unsigned shard_count) {
  if (shard_count < 1) shard_count = 1;
  shards_.reserve(shard_count);
  for (unsigned i = 0; i < shard_count; ++i) shards_.push_back(std::make_unique<shard>());
  shard_budget_ = byte_budget / shard_count;
}

unsigned schedule_cache::shard_index(const ir::dfg_digest& key) const noexcept {
  const std::uint64_t spread = key.hi ^ (key.hi >> 32) ^ (key.lo << 1);
  return static_cast<unsigned>(spread % shards_.size());
}

schedule_cache::shard& schedule_cache::shard_of(const ir::dfg_digest& key) {
  return *shards_[shard_index(key)];
}

schedule_cache::result_ptr schedule_cache::lookup(const ir::dfg_digest& key) {
  shard& s = shard_of(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    ++s.tally.misses;
    return nullptr;
  }
  ++s.tally.hits;
  s.lru.splice(s.lru.begin(), s.lru, it->second); // refresh: move to MRU front
  return it->second->value;
}

void schedule_cache::insert(const ir::dfg_digest& key, schedule_result value) {
  insert(key, std::make_shared<const schedule_result>(std::move(value)));
}

void schedule_cache::insert(const ir::dfg_digest& key, result_ptr value) {
  SOFTSCHED_EXPECT(value != nullptr, "schedule_cache: null value");
  shard& s = shard_of(key);
  const std::size_t value_bytes = value->bytes();
  const std::lock_guard<std::mutex> lock(s.mutex);

  // Oversize check first: rejecting a replacement must not destroy the
  // value already cached under the key (values are pure functions of the
  // key, so whatever is resident stays correct).
  if (value_bytes > shard_budget_) {
    ++s.tally.rejected_oversize;
    return;
  }
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    s.bytes -= it->second->bytes;
    s.lru.erase(it->second);
    s.index.erase(it);
  }
  s.lru.push_front(entry{key, std::move(value), value_bytes});
  s.index.emplace(key, s.lru.begin());
  s.bytes += value_bytes;
  ++s.tally.insertions;
  while (s.bytes > shard_budget_ && s.lru.size() > 1) {
    const entry& victim = s.lru.back();
    s.bytes -= victim.bytes;
    s.index.erase(victim.key);
    s.lru.pop_back();
    ++s.tally.evictions;
  }
}

void schedule_cache::clear() {
  for (const auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s->mutex);
    s->lru.clear();
    s->index.clear();
    s->bytes = 0;
  }
}

cache_counters schedule_cache::counters() const {
  cache_counters total;
  for (const auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s->mutex);
    total.hits += s->tally.hits;
    total.misses += s->tally.misses;
    total.insertions += s->tally.insertions;
    total.evictions += s->tally.evictions;
    total.rejected_oversize += s->tally.rejected_oversize;
    total.entries += s->lru.size();
    total.bytes += s->bytes;
  }
  return total;
}

} // namespace softsched::serve
