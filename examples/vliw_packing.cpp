// vliw_packing - the paper's Section 1 points out that soft scheduling
// also targets VLIW code generation. This example uses threads as VLIW
// *issue slots*: scheduling a basic block onto a 2-ALU + 1-MUL machine,
// then reading the packed instruction words straight off the extracted
// schedule (slot = thread = issue lane).
//
// Build & run:  ./build/examples/vliw_packing
#include <iostream>
#include <map>
#include <vector>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "hard/extract.h"
#include "ir/benchmarks.h"
#include "meta/meta_schedule.h"
#include "refine/refinement.h"

namespace si = softsched::ir;
namespace sc = softsched::core;
namespace sh = softsched::hard;
namespace sm = softsched::meta;
using softsched::graph::vertex_id;

int main() {
  const si::resource_library library;
  // The basic block: an IIR biquad cascade - a typical DSP inner loop body.
  si::dfg block = si::make_iir_cascade(library, 2);
  std::cout << "basic block: " << block.op_count() << " operations\n";

  // The machine: 2 ALU lanes + 1 multiplier lane (+ 1 load/store port).
  const si::resource_set machine{2, 1, 1};
  sc::threaded_graph state = sc::make_hls_state(block, machine);
  state.schedule_all(sm::meta_schedule(block.graph(), sm::meta_kind::list_priority));

  const sh::schedule s = sh::extract_schedule(state);
  std::cout << "packed into " << s.makespan << " VLIW words ("
            << block.op_count() << " ops over " << state.thread_count()
            << " lanes)\n\n";

  // Emit the instruction words: rows = cycles, columns = lanes. A
  // multi-cycle op occupies its lane ("|" continuation) until done.
  std::map<long long, std::vector<std::string>> words;
  for (long long c = 0; c < s.makespan; ++c)
    words[c].assign(static_cast<std::size_t>(state.thread_count()), "nop");
  for (const vertex_id v : block.graph().vertices()) {
    const auto lane = static_cast<std::size_t>(s.unit[v.value()]);
    words[s.start[v.value()]][lane] = std::string(block.graph().name(v));
    // assign(1, '|') rather than = "|": the const char* assignment trips
    // GCC 12's -Wrestrict false positive (libstdc++ PR105651) at -O3.
    for (int extra = 1; extra < block.graph().delay(v); ++extra)
      words[s.start[v.value()] + extra][lane].assign(1, '|');
  }
  std::cout << "cycle |";
  for (int k = 0; k < state.thread_count(); ++k) {
    const auto cls = static_cast<si::resource_class>(state.thread_tag(k));
    std::cout << ' ' << (cls == si::resource_class::alu        ? "alu   "
                         : cls == si::resource_class::multiplier ? "mul   "
                                                                 : "mem   ");
  }
  std::cout << '\n';
  for (const auto& [cycle, slots] : words) {
    std::cout << (cycle < 10 ? "    " : "   ") << cycle << " |";
    for (const std::string& slot : slots) {
      std::string cell = slot;
      cell.resize(6, ' ');
      std::cout << ' ' << cell;
    }
    std::cout << '\n';
  }

  // The soft-scheduling advantage for a VLIW backend: late compiler
  // passes (e.g. resolving an SSA phi into a move after register
  // allocation) amend the packing without redoing it.
  std::cout << "\nECO: register allocator materializes a move on w2_1 -> ff1_1\n";
  namespace sf = softsched::refine;
  const auto report = sf::apply_register_move(
      block, state, si::find_op(block, "w2_1"), si::find_op(block, "ff1_1"));
  std::cout << "packing grows " << report.diameter_before << " -> "
            << report.diameter_after << " words (incremental, no repack)\n";
  return 0;
}
