// persist_test.cpp - the corruption matrix for the persistent schedule
// cache tier (serve/diskcache.h). The governing invariant under test:
// a torn, truncated, bit-flipped or version-skewed record is a MISS -
// never a wrong answer and never a crash - and any real I/O failure
// degrades the tier to RAM-only instead of surfacing an error.
//
// The matrix walks *every* byte boundary for torn writes and *every* byte
// position for bit flips, first through the decoder (cheap, exhaustive)
// and then through the full open-scan-lookup path on real files. The
// kill-mid-flush shape is reproduced with `torn` write injection (a
// prefix of the record hits disk and success is reported anyway); the CI
// persist job additionally kills a live daemon with SIGKILL and replays.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/diskcache.h"
#include "util/binio.h"

namespace fs = std::filesystem;
namespace sv = softsched::serve;
namespace si = softsched::ir;

namespace {

si::dfg_digest key_of(std::uint64_t n) { return si::dfg_digest{n * 0x9e3779b9ULL + 1, ~n}; }

/// A small but fully populated schedule_result - every field the record
/// payload serializes is non-default so a round-trip mismatch cannot hide.
sv::schedule_result sample_result(std::uint64_t salt) {
  sv::schedule_result r;
  r.feasible = true;
  r.ops = 3;
  r.latency = static_cast<long long>(7 + salt % 5);
  r.start_times = {0, static_cast<long long>(1 + salt % 3), 4};
  r.unit_of = {0, 1, static_cast<int>(salt % 2)};
  r.stats.select_calls = 11 + salt;
  r.stats.positions_scanned = 23 + salt;
  r.stats.positions_rejected = 5;
  r.stats.commits = 3;
  r.stats.label_passes = 2;
  r.stats.cross_edge_updates = 9;
  r.stats.nodes_relabeled = 4;
  r.stats.closure_rebuilds = 1;
  r.stats.closure_syncs = 6;
  r.stats.closure_rows_touched = 42 + salt;
  return r;
}

sv::schedule_result infeasible_result() {
  sv::schedule_result r;
  r.feasible = false;
  r.infeasible_reason = "not enough ALUs";
  return r;
}

/// Fresh empty cache directory under the test's temp space.
class persist_fixture : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("softsched_persist_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  sv::disk_cache_options options() const {
    sv::disk_cache_options o;
    o.directory = dir_.string();
    return o;
  }

  fs::path record_path(const si::dfg_digest& key) const {
    return dir_ / sv::disk_cache::record_filename(key);
  }

  void write_bytes(const fs::path& p, const std::string& bytes) const {
    std::ofstream f(p, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(f.good());
  }

  fs::path dir_;
};

} // namespace

// -- record format round trip -----------------------------------------------

TEST_F(persist_fixture, SerializeDeserializeRoundTripsEveryField) {
  const si::dfg_digest key = key_of(1);
  const sv::schedule_result original = sample_result(9);
  const std::string record = sv::disk_cache::serialize_record(key, original);
  ASSERT_GE(record.size(), sv::disk_cache::record_header_bytes);

  const auto decoded = sv::disk_cache::deserialize_record(record, &key);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first, key);
  EXPECT_TRUE(decoded->second.same_schedule(original));
}

TEST_F(persist_fixture, InfeasibleResultsRoundTripToo) {
  const si::dfg_digest key = key_of(2);
  const std::string record = sv::disk_cache::serialize_record(key, infeasible_result());
  const auto decoded = sv::disk_cache::deserialize_record(record);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->second.feasible);
  EXPECT_EQ(decoded->second.infeasible_reason, "not enough ALUs");
}

TEST_F(persist_fixture, DecoderRejectsWrongKeyWhenExpected) {
  const si::dfg_digest key = key_of(3), other = key_of(4);
  const std::string record = sv::disk_cache::serialize_record(key, sample_result(1));
  EXPECT_TRUE(sv::disk_cache::deserialize_record(record, &key).has_value());
  EXPECT_FALSE(sv::disk_cache::deserialize_record(record, &other).has_value());
}

// -- torn writes: every truncation boundary ---------------------------------

TEST_F(persist_fixture, DecoderRejectsEveryTruncation) {
  const si::dfg_digest key = key_of(5);
  const std::string record = sv::disk_cache::serialize_record(key, sample_result(2));
  for (std::size_t cut = 0; cut < record.size(); ++cut) {
    const std::string_view torn(record.data(), cut);
    EXPECT_FALSE(sv::disk_cache::deserialize_record(torn).has_value())
        << "truncation at byte " << cut << " decoded as valid";
  }
}

TEST_F(persist_fixture, TornFileAtEveryBoundaryIsAMissNeverAnAnswer) {
  const si::dfg_digest key = key_of(6);
  const std::string record = sv::disk_cache::serialize_record(key, sample_result(3));
  for (std::size_t cut = 0; cut < record.size(); ++cut) {
    write_bytes(record_path(key), record.substr(0, cut));
    sv::disk_cache cache(options());
    EXPECT_EQ(cache.lookup(key), nullptr) << "cut=" << cut;
    const sv::disk_cache_counters c = cache.counters();
    EXPECT_GE(c.corrupt_dropped, 1u) << "cut=" << cut;
    EXPECT_FALSE(c.degraded) << "cut=" << cut;
    EXPECT_FALSE(fs::exists(record_path(key))) << "cut=" << cut << ": not quarantined";
  }
}

// -- bit flips: every byte of header, key, length, checksum and payload -----

TEST_F(persist_fixture, DecoderRejectsEverySingleBitFlip) {
  const si::dfg_digest key = key_of(7);
  const std::string record = sv::disk_cache::serialize_record(key, sample_result(4));
  for (std::size_t pos = 0; pos < record.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = record;
      flipped[pos] = static_cast<char>(flipped[pos] ^ (1 << bit));
      EXPECT_FALSE(sv::disk_cache::deserialize_record(flipped, &key).has_value())
          << "flip at byte " << pos << " bit " << bit << " decoded as valid";
    }
  }
}

TEST_F(persist_fixture, FlippedFileAtEveryByteIsAMissNeverAnAnswer) {
  const si::dfg_digest key = key_of(8);
  const std::string record = sv::disk_cache::serialize_record(key, sample_result(5));
  for (std::size_t pos = 0; pos < record.size(); ++pos) {
    std::string flipped = record;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x10);
    write_bytes(record_path(key), flipped);
    sv::disk_cache cache(options());
    EXPECT_EQ(cache.lookup(key), nullptr) << "flip at byte " << pos;
    EXPECT_GE(cache.counters().corrupt_dropped, 1u) << "flip at byte " << pos;
    EXPECT_FALSE(cache.counters().degraded) << "flip at byte " << pos;
  }
}

// -- version skew -----------------------------------------------------------

TEST_F(persist_fixture, VersionSkewedRecordIsCorruptNotGarbage) {
  const si::dfg_digest key = key_of(9);
  // Version 2 with a checksum that is *internally consistent* - only the
  // version gate can reject it, not the checksum.
  const std::string skewed =
      sv::disk_cache::serialize_record(key, sample_result(6), sv::disk_cache::record_version + 1);
  EXPECT_FALSE(sv::disk_cache::deserialize_record(skewed).has_value());

  write_bytes(record_path(key), skewed);
  sv::disk_cache cache(options());
  EXPECT_EQ(cache.lookup(key), nullptr);
  EXPECT_GE(cache.counters().corrupt_dropped, 1u);
  EXPECT_FALSE(fs::exists(record_path(key)));
}

// -- directory states -------------------------------------------------------

TEST_F(persist_fixture, EmptyDirectoryOpensCleanAndMisses) {
  sv::disk_cache cache(options());
  EXPECT_EQ(cache.lookup(key_of(10)), nullptr);
  const sv::disk_cache_counters c = cache.counters();
  EXPECT_EQ(c.recovered_entries, 0u);
  EXPECT_EQ(c.entries, 0u);
  EXPECT_EQ(c.hits, 0u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_FALSE(c.degraded);
}

TEST_F(persist_fixture, PartialDirectoryRecoversValidQuarantinesInvalidKeepsForeign) {
  const si::dfg_digest good1 = key_of(11), good2 = key_of(12), bad = key_of(13);
  const sv::schedule_result r1 = sample_result(7), r2 = sample_result(8);
  write_bytes(record_path(good1), sv::disk_cache::serialize_record(good1, r1));
  write_bytes(record_path(good2), sv::disk_cache::serialize_record(good2, r2));
  // A record whose file name does not match its embedded key: the rename
  // attack / fs corruption shape. Must never answer for `bad`.
  write_bytes(record_path(bad), sv::disk_cache::serialize_record(good1, r1));
  write_bytes(dir_ / "short.rec", std::string("SSDC"));
  write_bytes(dir_ / "README.txt", std::string("not a record"));

  sv::disk_cache cache(options());
  const sv::disk_cache_counters open = cache.counters();
  EXPECT_EQ(open.recovered_entries, 2u);
  EXPECT_GE(open.corrupt_dropped, 2u); // key-mismatch record + short.rec

  const auto h1 = cache.lookup(good1);
  const auto h2 = cache.lookup(good2);
  ASSERT_NE(h1, nullptr);
  ASSERT_NE(h2, nullptr);
  EXPECT_TRUE(h1->same_schedule(r1));
  EXPECT_TRUE(h2->same_schedule(r2));
  EXPECT_EQ(cache.lookup(bad), nullptr);

  EXPECT_FALSE(fs::exists(record_path(bad)));
  EXPECT_FALSE(fs::exists(dir_ / "short.rec"));
  EXPECT_TRUE(fs::exists(dir_ / "README.txt")); // foreign files untouched
}

// -- store / lookup / eviction / oversize -----------------------------------

TEST_F(persist_fixture, StoreThenLookupReturnsTheExactValue) {
  sv::disk_cache cache(options());
  const si::dfg_digest key = key_of(14);
  const sv::schedule_result r = sample_result(10);
  cache.store(key, std::make_shared<const sv::schedule_result>(r));
  const auto hit = cache.lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->same_schedule(r));
  const sv::disk_cache_counters c = cache.counters();
  EXPECT_EQ(c.writes, 1u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.entries, 1u);
}

TEST_F(persist_fixture, OversizeValueIsRejectedNotStored) {
  sv::disk_cache_options o = options();
  o.byte_budget = 64; // smaller than any real record
  sv::disk_cache cache(o);
  cache.store(key_of(15), std::make_shared<const sv::schedule_result>(sample_result(11)));
  const sv::disk_cache_counters c = cache.counters();
  EXPECT_EQ(c.rejected_oversize, 1u);
  EXPECT_EQ(c.entries, 0u);
  EXPECT_EQ(cache.lookup(key_of(15)), nullptr);
}

TEST_F(persist_fixture, BudgetEvictsLeastRecentlyUsedRecordsFromDisk) {
  const std::string one_record =
      sv::disk_cache::serialize_record(key_of(0), sample_result(0));
  sv::disk_cache_options o = options();
  o.byte_budget = one_record.size() * 3; // room for ~3 records
  sv::disk_cache cache(o);
  for (std::uint64_t i = 0; i < 8; ++i)
    cache.store(key_of(20 + i), std::make_shared<const sv::schedule_result>(sample_result(i)));
  const sv::disk_cache_counters c = cache.counters();
  EXPECT_GE(c.evictions, 5u);
  EXPECT_LE(c.bytes, o.byte_budget);
  EXPECT_NE(cache.lookup(key_of(27)), nullptr); // newest survives
  EXPECT_EQ(cache.lookup(key_of(20)), nullptr); // oldest evicted
}

// -- write-behind -----------------------------------------------------------

TEST_F(persist_fixture, EnqueueFlushPersistsAndSurvivesReopen) {
  const sv::schedule_result r = sample_result(12);
  {
    sv::disk_cache cache(options());
    for (std::uint64_t i = 0; i < 10; ++i)
      EXPECT_TRUE(cache.enqueue(key_of(30 + i), std::make_shared<const sv::schedule_result>(r)));
    const std::size_t drained = cache.flush();
    EXPECT_LE(drained, 10u); // flusher may have raced ahead of flush()
    EXPECT_EQ(cache.counters().flushed, 10u);
    EXPECT_EQ(cache.counters().queue_depth, 0u);
  }
  sv::disk_cache reopened(options());
  EXPECT_EQ(reopened.counters().recovered_entries, 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto hit = reopened.lookup(key_of(30 + i));
    ASSERT_NE(hit, nullptr) << "record " << i << " lost across reopen";
    EXPECT_TRUE(hit->same_schedule(r));
  }
}

TEST_F(persist_fixture, FullQueueShedsInsteadOfBlocking) {
  sv::disk_cache_options o = options();
  o.flush_queue_capacity = 2;
  // Pin the flusher on the first record so the queue genuinely fills.
  o.faults.ops[1] = sv::disk_fault_action{60.0, false, false};
  sv::disk_cache cache(o);
  std::uint64_t accepted = 0;
  for (std::uint64_t i = 0; i < 16; ++i)
    if (cache.enqueue(key_of(50 + i), std::make_shared<const sv::schedule_result>(sample_result(i))))
      ++accepted;
  EXPECT_LT(accepted, 16u);
  (void)cache.flush();
  const sv::disk_cache_counters c = cache.counters();
  EXPECT_EQ(c.queue_dropped, 16u - accepted);
  EXPECT_EQ(c.flushed, accepted);
}

// -- concurrent reader during flush -----------------------------------------

TEST_F(persist_fixture, ConcurrentForeignReaderDuringFlushNeverSeesAWrongAnswer) {
  // A second disk_cache over the same directory plays the "other process"
  // reader: no shared lock, protected only by record validation. Every
  // lookup must return either nullptr or the exact stored value.
  constexpr std::uint64_t n = 40;
  const sv::schedule_result r = sample_result(13);
  sv::disk_cache writer(options());
  sv::disk_cache reader(options()); // opened on the empty directory

  std::thread t([&] {
    for (int pass = 0; pass < 20; ++pass)
      for (std::uint64_t i = 0; i < n; ++i) {
        const auto hit = reader.lookup(key_of(100 + i));
        if (hit != nullptr) {
          EXPECT_TRUE(hit->same_schedule(r));
        }
      }
  });
  for (std::uint64_t i = 0; i < n; ++i)
    writer.enqueue(key_of(100 + i), std::make_shared<const sv::schedule_result>(r));
  (void)writer.flush();
  t.join();
  EXPECT_FALSE(writer.degraded());
  // The reader's misses may have quarantined records it saw mid-write; the
  // writer's in-memory index may disagree with the filesystem afterwards -
  // but *correctness* held throughout, which is the property under test.
}

// -- kill mid-flush (torn write injection) ----------------------------------

TEST_F(persist_fixture, TornWriteBehindReopensToZeroWrongAnswers) {
  constexpr std::uint64_t n = 6;
  std::vector<sv::schedule_result> values;
  for (std::uint64_t i = 0; i < n; ++i) values.push_back(sample_result(100 + i));
  {
    sv::disk_cache_options o = options();
    // Third record write is torn: a prefix hits disk, success is reported -
    // the power-loss shape.
    o.faults.ops[3] = sv::disk_fault_action{0, false, true};
    sv::disk_cache cache(o);
    for (std::uint64_t i = 0; i < n; ++i)
      cache.enqueue(key_of(200 + i), std::make_shared<const sv::schedule_result>(values[i]));
    (void)cache.flush();
    EXPECT_FALSE(cache.degraded());
  }
  sv::disk_cache reopened(options());
  std::uint64_t recovered = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto hit = reopened.lookup(key_of(200 + i));
    if (hit != nullptr) {
      EXPECT_TRUE(hit->same_schedule(values[i])) << "wrong answer for record " << i;
      ++recovered;
    }
  }
  EXPECT_EQ(recovered, n - 1); // the torn record is the one loss
  EXPECT_GE(reopened.counters().corrupt_dropped, 1u);
}

// -- I/O failure degrades, never errors -------------------------------------

TEST_F(persist_fixture, InjectedWriteFailureDegradesToInertTier) {
  sv::disk_cache_options o = options();
  o.faults.ops[1] = sv::disk_fault_action{0, true, false};
  sv::disk_cache cache(o);
  cache.store(key_of(60), std::make_shared<const sv::schedule_result>(sample_result(14)));
  EXPECT_TRUE(cache.degraded());
  const sv::disk_cache_counters c = cache.counters();
  EXPECT_GE(c.io_errors, 1u);
  // Degraded tier is inert: lookups miss fast, writes are dropped silently.
  EXPECT_EQ(cache.lookup(key_of(60)), nullptr);
  EXPECT_FALSE(cache.enqueue(key_of(61), std::make_shared<const sv::schedule_result>(sample_result(15))));
  cache.store(key_of(62), std::make_shared<const sv::schedule_result>(sample_result(16)));
  EXPECT_EQ(cache.counters().entries, 0u);
}

TEST_F(persist_fixture, VanishedDirectoryDegradesInsteadOfThrowing) {
  sv::disk_cache cache(options());
  cache.store(key_of(70), std::make_shared<const sv::schedule_result>(sample_result(17)));
  ASSERT_NE(cache.lookup(key_of(70)), nullptr);
  fs::remove_all(dir_);
  // The index still claims the record; the read fails with a real error
  // (not ENOENT-on-an-unknown-key), or at minimum misses. Either way: no
  // throw, no wrong answer, and the tier keeps answering.
  EXPECT_EQ(cache.lookup(key_of(70)), nullptr);
  cache.store(key_of(71), std::make_shared<const sv::schedule_result>(sample_result(18)));
  EXPECT_EQ(cache.lookup(key_of(70)), nullptr);
}

// -- export / import --------------------------------------------------------

TEST_F(persist_fixture, ExportImportRoundTripsEveryRecord) {
  constexpr std::uint64_t n = 5;
  std::vector<sv::schedule_result> values;
  for (std::uint64_t i = 0; i < n; ++i) values.push_back(sample_result(300 + i));
  sv::disk_cache source(options());
  for (std::uint64_t i = 0; i < n; ++i)
    source.store(key_of(80 + i), std::make_shared<const sv::schedule_result>(values[i]));

  std::stringstream snapshot;
  const auto exported = source.export_to(snapshot);
  ASSERT_TRUE(exported.has_value());
  EXPECT_EQ(*exported, n);

  const fs::path dest_dir = dir_ / "import";
  fs::create_directories(dest_dir);
  sv::disk_cache_options dopt;
  dopt.directory = dest_dir.string();
  sv::disk_cache dest(dopt);
  const sv::disk_import_summary s = dest.import_from(snapshot);
  EXPECT_EQ(s.imported, n);
  EXPECT_EQ(s.corrupt_skipped, 0u);
  EXPECT_FALSE(s.truncated);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto hit = dest.lookup(key_of(80 + i));
    ASSERT_NE(hit, nullptr);
    EXPECT_TRUE(hit->same_schedule(values[i]));
  }
}

TEST_F(persist_fixture, ImportStopsAtFirstCorruptRecord) {
  sv::disk_cache source(options());
  source.store(key_of(90), std::make_shared<const sv::schedule_result>(sample_result(20)));
  source.store(key_of(91), std::make_shared<const sv::schedule_result>(sample_result(21)));
  std::stringstream snapshot;
  ASSERT_TRUE(source.export_to(snapshot).has_value());

  std::string bytes = snapshot.str();
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  std::istringstream corrupted(bytes);

  const fs::path dest_dir = dir_ / "import";
  fs::create_directories(dest_dir);
  sv::disk_cache_options dopt;
  dopt.directory = dest_dir.string();
  sv::disk_cache dest(dopt);
  const sv::disk_import_summary s = dest.import_from(corrupted);
  EXPECT_LT(s.imported, 2u);
  EXPECT_TRUE(s.corrupt_skipped >= 1 || s.truncated);
}

TEST_F(persist_fixture, ImportRejectsTruncatedContainer) {
  sv::disk_cache source(options());
  source.store(key_of(95), std::make_shared<const sv::schedule_result>(sample_result(22)));
  std::stringstream snapshot;
  ASSERT_TRUE(source.export_to(snapshot).has_value());
  const std::string bytes = snapshot.str();

  const fs::path dest_dir = dir_ / "import";
  fs::create_directories(dest_dir);
  sv::disk_cache_options dopt;
  dopt.directory = dest_dir.string();
  sv::disk_cache dest(dopt);
  std::istringstream torn(bytes.substr(0, bytes.size() - 3));
  const sv::disk_import_summary s = dest.import_from(torn);
  EXPECT_EQ(s.imported, 0u);
  EXPECT_TRUE(s.truncated || s.corrupt_skipped >= 1);
}
