#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>
#include <utility>

#include "explore/dse.h"
#include "sched/backend.h"
#include "util/check.h"

namespace softsched::serve {

namespace {

using clock_type = std::chrono::steady_clock;

double millis_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - t0).count();
}

} // namespace

/// Runs the request's scheduler backend, share-nothing (private library,
/// DFG and whatever state the backend builds - the same isolation argument
/// as explore::run_point, so outcomes are identical for any worker count;
/// registry backends are stateless). Infeasible allocations are a
/// cacheable outcome, not an error.
///
/// Scheduling happens *in canonical space*: the request's DFG is rebuilt
/// with vertices renumbered into the canonical order behind its digest
/// (`canonical_of`: source vertex id -> canonical index), and the result
/// arrays are canonical-indexed. Isomorphic submissions rebuild identical
/// labelled graphs, so the cached outcome is a pure function of the cache
/// key even though every scheduler (meta orders, priority and select
/// tie-breaks) is sensitive to vertex numbering - without this step,
/// serving request B a result computed from an isomorphic-but-renumbered
/// request A would both misalign the arrays and break cache-size
/// independence.
schedule_result compute_canonical_schedule(const request& req,
                                           const std::vector<std::uint32_t>& canonical_of,
                                           sched::run_context& ctx) {
  schedule_result r;
  ir::resource_library library;
  library.set_latency(ir::op_kind::mul, req.mul_latency);
  const ir::dfg source = build_request_design(req, library);
  std::vector<graph::vertex_id> order(source.op_count());
  for (std::size_t src = 0; src < canonical_of.size(); ++src)
    order[canonical_of[src]] = graph::vertex_id(static_cast<std::uint32_t>(src));
  const ir::dfg design = ir::canonical_form(source, order, library);
  r.ops = design.op_count();
  sched::backend_options options;
  options.meta = req.meta;
  options.iter_budget = req.iter_budget;
  sched::backend_outcome outcome = sched::get_backend(req.backend)
                                       .run({design, library, req.resources, options}, ctx);
  r.feasible = outcome.feasible;
  r.infeasible_reason = std::move(outcome.infeasible_reason);
  r.latency = outcome.latency;
  r.start_times = std::move(outcome.start_times);
  r.unit_of = std::move(outcome.unit_of);
  r.stats = outcome.stats;
  return r;
}

schedule_result compute_canonical_schedule(const request& req,
                                           const std::vector<std::uint32_t>& canonical_of) {
  sched::run_context ctx(sched::arena_mode::off); // one-shot: skip the block grab
  return compute_canonical_schedule(req, canonical_of, ctx);
}

schedule_result result_to_source_order(const schedule_result& canonical,
                                       const std::vector<std::uint32_t>& canonical_of) {
  schedule_result r = canonical; // scalars + stats; arrays rewritten below
  for (std::size_t src = 0; src < canonical_of.size(); ++src) {
    if (src < r.start_times.size())
      r.start_times[src] = canonical.start_times[canonical_of[src]];
    if (src < r.unit_of.size()) r.unit_of[src] = canonical.unit_of[canonical_of[src]];
  }
  return r;
}

source_info hash_request_source(const request& req) {
  source_info info;
  try {
    ir::resource_library library;
    library.set_latency(ir::op_kind::mul, req.mul_latency);
    const ir::dfg design = build_request_design(req, library);
    const std::vector<graph::vertex_id> order = ir::canonical_topo_order(design);
    info.digest = ir::canonical_dfg_digest(design, order);
    info.canonical_of.resize(order.size());
    for (std::size_t ci = 0; ci < order.size(); ++ci)
      info.canonical_of[order[ci].value()] = static_cast<std::uint32_t>(ci);
  } catch (const std::exception& e) {
    info.error = e.what();
  }
  return info;
}

ir::dfg_digest schedule_key_for(const request& req, const ir::dfg_digest& digest) {
  return ir::schedule_key(
      digest, req.resources,
      sched::backend_option_salt(sched::get_backend(req.backend), req.meta,
                                 req.iter_budget));
}

bool response::same_payload(const response& other) const {
  return line == other.line && id == other.id && error == other.error &&
         retry_after_ms == other.retry_after_ms && backend == other.backend &&
         key == other.key && result.same_schedule(other.result);
}

engine_counters engine_counters::operator-(const engine_counters& rhs) const noexcept {
  engine_counters d;
  d.requests = requests - rhs.requests;
  d.parse_errors = parse_errors - rhs.parse_errors;
  d.computed = computed - rhs.computed;
  d.deduped = deduped - rhs.deduped;
  d.cache_hits = cache_hits - rhs.cache_hits;
  return d;
}

double engine_counters::hit_rate() const noexcept {
  const std::uint64_t served = requests - parse_errors;
  return served > 0
             ? static_cast<double>(deduped + cache_hits) / static_cast<double>(served)
             : 0.0;
}

double stream_summary::requests_per_sec() const noexcept {
  return wall_ms > 0
             ? static_cast<double>(counters.requests) / (wall_ms / 1e3)
             : 0.0;
}

engine::engine(const engine_options& options)
    : options_(options),
      jobs_(options.jobs < 1 ? thread_pool::hardware_workers()
                             : static_cast<unsigned>(options.jobs)),
      cache_(options.cache_bytes, options.cache_shards) {
  if (!options_.cache_dir.empty() && options_.disk_cache_bytes > 0) {
    disk_cache_options disk;
    disk.directory = options_.cache_dir;
    disk.byte_budget = options_.disk_cache_bytes;
    disk.flush_queue_capacity = std::max<std::size_t>(options_.disk_flush_queue, 1);
    disk.faults = options_.disk_faults;
    disk_ = std::make_unique<disk_cache>(disk);
  }
  if (jobs_ > 1) pool_ = std::make_unique<thread_pool>(jobs_);
  const auto mode = options_.arena ? sched::arena_mode::on : sched::arena_mode::off;
  const std::size_t block = options_.arena_block_bytes > 0
                                ? options_.arena_block_bytes
                                : util::arena::default_block_bytes;
  contexts_.reserve(jobs_ + 1);
  for (unsigned i = 0; i <= jobs_; ++i)
    contexts_.push_back(std::make_unique<sched::run_context>(mode, block));
}

sched::run_context& engine::context_for_current_thread() noexcept {
  const int worker = thread_pool::current_worker_index();
  return *contexts_[worker >= 0 ? static_cast<std::size_t>(worker) : jobs_];
}

engine::~engine() = default;

std::size_t engine::flush_disk() { return disk_ != nullptr ? disk_->flush() : 0; }

std::size_t engine::source_memo_byte_budget() const noexcept {
  // Same order as the operator's cache budget, floored so a tiny (or zero)
  // --cache-mb does not degenerate into wiping the memo every batch.
  return std::max<std::size_t>(options_.cache_bytes, 8ull << 20);
}

std::vector<response> engine::run_batch(const std::vector<batch_line>& lines) {
  const std::size_t n = lines.size();
  std::vector<response> out(n);
  std::vector<request> reqs(n);
  std::vector<std::uint8_t> ok(n, 0);

  // -- parse (serial; errors must land on their input line) ---------------
  counters_.requests += n;
  for (std::size_t i = 0; i < n; ++i) {
    out[i].line = lines[i].line;
    try {
      reqs[i] = parse_request_line(lines[i].text);
      ok[i] = 1;
    } catch (const json_error& e) {
      out[i].error = e.what();
      ++counters_.parse_errors;
    }
    out[i].id = (ok[i] && !reqs[i].id.empty())
                    ? reqs[i].id
                    : "line" + std::to_string(lines[i].line);
    if (ok[i]) out[i].backend = reqs[i].backend;
  }

  // -- sign + memo lookup: which distinct design sources still need a
  //    canonical hash? ----------------------------------------------------
  struct hash_job {
    std::string sig;
    std::size_t rep = 0; ///< representative request index
    memo_entry result;
  };
  std::vector<std::string> sigs(n);
  std::vector<hash_job> to_hash;
  // Bound the memo *before* this batch consults it: entries published below
  // must survive until the key-derivation loop reads them back.
  if (source_memo_.size() > source_memo_limit ||
      source_memo_bytes_ > source_memo_byte_budget()) {
    source_memo_.clear();
    source_memo_bytes_ = 0;
  }
  {
    std::unordered_map<std::string_view, std::size_t> pending;
    for (std::size_t i = 0; i < n; ++i) {
      if (!ok[i]) continue;
      sigs[i] = reqs[i].source_signature();
      if (source_memo_.find(sigs[i]) != source_memo_.end()) continue;
      if (pending.find(sigs[i]) != pending.end()) continue;
      pending.emplace(sigs[i], to_hash.size());
      to_hash.push_back(hash_job{sigs[i], i, {}});
    }
  }

  // -- hash new sources (parallel; pure per-job work into its own slot) ---
  parallel_for_index(pool_.get(), to_hash.size(), [&](std::size_t k) {
    to_hash[k].result = hash_request_source(reqs[to_hash[k].rep]);
  });

  // -- publish memo + derive cache keys (serial) --------------------------
  for (hash_job& job : to_hash) {
    source_memo_bytes_ += job.sig.size() + job.result.error.size() +
                          job.result.canonical_of.size() * sizeof(std::uint32_t) +
                          sizeof(memo_entry) + 64;
    source_memo_.emplace(std::move(job.sig), std::move(job.result));
  }
  std::vector<const memo_entry*> memos(n, nullptr); // node-based map: stable
  for (std::size_t i = 0; i < n; ++i) {
    if (!ok[i]) continue;
    const memo_entry& memo = source_memo_.at(sigs[i]);
    if (!memo.error.empty()) {
      out[i].error = memo.error;
      ok[i] = 0;
      ++counters_.parse_errors;
      continue;
    }
    memos[i] = &memo;
    out[i].key = schedule_key_for(reqs[i], memo.digest);
  }

  // -- dedup identical in-flight requests, consult the cache (serial, so
  //    LRU traffic and hit/miss accounting are reproducible) --------------
  struct unique_work {
    ir::dfg_digest key;
    std::size_t rep = 0;
    bool from_cache = false;
    std::string error;
    schedule_cache::result_ptr result; ///< canonical-indexed
    double ms = 0;
  };
  std::vector<unique_work> uniques;
  std::vector<std::size_t> unique_of(n, 0);
  {
    std::unordered_map<ir::dfg_digest, std::size_t, ir::dfg_digest_hash> index;
    for (std::size_t i = 0; i < n; ++i) {
      if (!ok[i]) continue;
      const auto [it, inserted] = index.try_emplace(out[i].key, uniques.size());
      if (inserted) uniques.push_back(unique_work{out[i].key, i, false, {}, nullptr, 0});
      unique_of[i] = it->second;
    }
  }
  std::vector<std::size_t> to_compute;
  for (std::size_t u = 0; u < uniques.size(); ++u) {
    auto hit = cache_.lookup(uniques[u].key);
    if (hit == nullptr && disk_ != nullptr) {
      // Read-through: a RAM miss consults the persistent tier; a disk hit
      // is promoted so the next ask is a RAM hit. Still serial and in
      // input order, so hit patterns stay reproducible.
      hit = disk_->lookup(uniques[u].key);
      if (hit != nullptr) cache_.insert(uniques[u].key, hit);
    }
    if (hit != nullptr) {
      uniques[u].result = std::move(hit);
      uniques[u].from_cache = true;
    } else {
      to_compute.push_back(u);
    }
  }

  // -- schedule the misses (parallel, share-nothing) ----------------------
  parallel_for_index(pool_.get(), to_compute.size(), [&](std::size_t k) {
    unique_work& u = uniques[to_compute[k]];
    const auto t0 = clock_type::now();
    try {
      u.result = std::make_shared<const schedule_result>(compute_canonical_schedule(
          reqs[u.rep], memos[u.rep]->canonical_of, context_for_current_thread()));
    } catch (const std::exception& e) {
      u.error = e.what(); // should be unreachable: the source already built once
    }
    u.ms = millis_since(t0);
  });

  // -- publish to the cache (serial, input order: eviction sequences are a
  //    pure function of the request stream) -------------------------------
  for (const std::size_t u : to_compute)
    if (uniques[u].error.empty()) {
      cache_.insert(uniques[u].key, uniques[u].result);
      if (disk_ != nullptr) disk_->enqueue(uniques[u].key, uniques[u].result); // write-behind
    }

  // -- respond in input order ---------------------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    if (!ok[i]) continue;
    const unique_work& u = uniques[unique_of[i]];
    if (!u.error.empty()) {
      out[i].error = u.error;
      ++counters_.parse_errors;
      continue;
    }
    out[i].result = result_to_source_order(*u.result, memos[i]->canonical_of);
    if (u.from_cache) {
      ++counters_.cache_hits;
    } else if (i == u.rep) {
      ++counters_.computed;
      out[i].ms = u.ms;
    } else {
      ++counters_.deduped;
    }
  }
  return out;
}

std::size_t engine::drain_stream(std::istream& in,
                                 const std::function<void(std::vector<response>)>& sink) {
  std::size_t batches = 0;
  std::vector<batch_line> batch;
  std::string text;
  std::size_t line_no = 0;
  const auto flush = [&] {
    if (batch.empty()) return;
    sink(run_batch(batch));
    batch.clear();
    ++batches;
  };
  while (std::getline(in, text)) {
    ++line_no;
    if (text.empty()) continue;
    batch.push_back(batch_line{line_no, std::move(text)});
    if (options_.batch_size > 0 && batch.size() >= options_.batch_size) flush();
  }
  flush();
  return batches;
}

std::vector<response> engine::run_collect(std::istream& in) {
  std::vector<response> all;
  drain_stream(in, [&](std::vector<response> part) {
    all.insert(all.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  });
  return all;
}

stream_summary engine::run_stream(std::istream& in, std::ostream& out) {
  const engine_counters before = counters_;
  stream_summary summary;
  const auto t0 = clock_type::now();
  summary.batches = drain_stream(in, [&](std::vector<response> part) {
    for (const response& r : part) {
      write_response(out, r);
      out << '\n';
    }
  });
  summary.wall_ms = millis_since(t0);
  summary.counters = counters_ - before;
  return summary;
}

void engine::write_response(std::ostream& out, const response& r) const {
  write_response_line(out, r, options_.emit_schedule);
}

void write_response_line(std::ostream& out, const response& r, bool emit_schedule) {
  json_writer j(out, /*compact=*/true);
  j.begin_object();
  j.member("line", r.line);
  j.member("id", r.id);
  if (!r.error.empty()) {
    j.member("error", r.error);
    if (r.retry_after_ms > 0) j.member("retry_after_ms", r.retry_after_ms);
  } else {
    j.member("backend", r.backend);
    j.member("key", r.key.hex());
    j.member("ops", r.result.ops);
    j.member("feasible", r.result.feasible);
    if (r.result.feasible) {
      j.member("latency", r.result.latency);
      if (emit_schedule) {
        j.key("start");
        j.begin_array();
        for (const long long s : r.result.start_times) j.value(s);
        j.end_array();
        j.key("unit");
        j.begin_array();
        for (const int u : r.result.unit_of) j.value(u);
        j.end_array();
      }
      j.key("stats");
      explore::write_schedule_stats(j, r.result.stats);
    } else {
      j.member("infeasible_reason", r.result.infeasible_reason);
    }
  }
  j.member("ms", r.ms);
  j.end_object();
  SOFTSCHED_EXPECT(j.done(), "serve: response serialization left JSON open");
}

} // namespace softsched::serve
