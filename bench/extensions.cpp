// extensions - the Section 6 outlook algorithms built on the threaded
// kernel: (1) resource-constrained technology mapping (MAC fusion) on the
// benchmark suite, (2) resource-constrained retiming on correlator rings.
#include <iostream>

#include "ext/retime.h"
#include "ext/tech_map.h"
#include "ir/benchmarks.h"
#include "util/table.h"

namespace si = softsched::ir;
namespace se = softsched::ext;

int main() {
  const si::resource_library lib;

  std::cout << "Extension 1: resource-constrained technology mapping (MAC fusion)\n\n";
  softsched::table map_tbl;
  map_tbl.set_header({"BM", "resources", "candidates", "fused", "before", "after"});
  std::vector<si::dfg> workloads = si::figure3_benchmarks(lib);
  workloads.push_back(si::make_fir(lib, 16));
  workloads.push_back(si::make_iir_cascade(lib, 4));
  for (const si::dfg& d : workloads) {
    for (const si::resource_set& rs :
         {si::resource_set{1, 2, 1}, si::resource_set{2, 2, 1}}) {
      const se::tech_map_result result = se::map_macs(d, rs);
      map_tbl.add_row({d.name(), rs.label(),
                       softsched::cell(static_cast<long long>(result.candidates)),
                       softsched::cell(static_cast<long long>(result.fused)),
                       softsched::cell(result.latency_before),
                       softsched::cell(result.latency_after)});
    }
  }
  map_tbl.print(std::cout);

  std::cout << "\nExtension 2: resource-constrained retiming (correlator rings)\n\n";
  softsched::table rt_tbl;
  rt_tbl.set_header({"taps", "resources", "body before", "body after", "rounds"});
  for (const int taps : {4, 6, 8, 12}) {
    const se::retime_problem p = se::make_correlator(taps);
    for (const si::resource_set& rs :
         {si::resource_set{1, 1, 1}, si::resource_set{2, 1, 1},
          si::resource_set{4, 1, 1}}) {
      const se::retime_result result = se::retime_min_latency(p, rs, lib);
      rt_tbl.add_row({softsched::cell(taps), rs.label(),
                      softsched::cell(result.latency_before),
                      softsched::cell(result.latency_after),
                      softsched::cell(result.rounds)});
    }
  }
  rt_tbl.print(std::cout);
  std::cout << "\nBoth algorithms call the threaded scheduler as their inner\n"
               "evaluation kernel - the embedding use case of Section 6.\n";
  return 0;
}
