#include "core/threaded_graph.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "util/check.h"

namespace softsched::core {

namespace {
constexpr std::int32_t no_node = -1;

/// SOFTSCHED_PARANOID in the environment turns every incremental closure
/// sync and dirty-region relabel into a self-checking one that
/// cross-validates against the from-scratch computation and throws on
/// divergence. Meant for tests and bug triage, not production runs.
bool paranoid_checks_enabled() {
  static const bool enabled = std::getenv("SOFTSCHED_PARANOID") != nullptr;
  return enabled;
}
} // namespace

threaded_graph::threaded_graph(const precedence_graph& g, int thread_count)
    : threaded_graph(g, std::vector<int>(static_cast<std::size_t>(thread_count), 0),
                     [](vertex_id) { return 0; }) {}

threaded_graph::threaded_graph(const precedence_graph& g, std::vector<int> thread_tags,
                               tag_fn vertex_tag)
    : threaded_graph(g, std::span<const int>(thread_tags), std::move(vertex_tag),
                     nullptr) {}

threaded_graph::threaded_graph(const precedence_graph& g, std::span<const int> thread_tags,
                               tag_fn vertex_tag, util::arena* arena)
    : g_(&g), vertex_tag_(std::move(vertex_tag)), arena_(arena),
      thread_tags_(thread_tags.begin(), thread_tags.end(), util::arena_allocator<int>(arena)),
      nodes_(util::arena_allocator<node>(arena)),
      out_(util::arena_allocator<std::int32_t>(arena)),
      in_(util::arena_allocator<std::int32_t>(arena)),
      s_(util::arena_allocator<std::int32_t>(arena)),
      t_(util::arena_allocator<std::int32_t>(arena)),
      node_index_(util::arena_allocator<std::int32_t>(arena)),
      scratch_topo_(util::arena_allocator<std::int32_t>(arena)),
      scratch_degree_(util::arena_allocator<std::int32_t>(arena)),
      scratch_succ_reach_(util::arena_allocator<std::uint8_t>(arena)),
      scratch_pred_reach_(util::arena_allocator<std::uint8_t>(arena)),
      scratch_queue_(util::arena_allocator<std::int32_t>(arena)),
      scratch_queued_(util::arena_allocator<std::uint8_t>(arena)),
      scratch_latest_pred_(util::arena_allocator<std::int32_t>(arena)),
      scratch_earliest_succ_(util::arena_allocator<std::int32_t>(arena)),
      scratch_seen_(util::arena_allocator<std::uint8_t>(arena)),
      scratch_bfs_(util::arena_allocator<std::int32_t>(arena)),
      scratch_labels_(
          util::arena_allocator<std::pair<long long, long long>>(arena)) {
  SOFTSCHED_EXPECT(!thread_tags_.empty(), "a threaded graph needs at least one thread");
  SOFTSCHED_EXPECT(static_cast<bool>(vertex_tag_), "vertex tag function must be callable");
  k_ = static_cast<int>(thread_tags_.size());
  s_.resize(static_cast<std::size_t>(k_));
  t_.resize(static_cast<std::size_t>(k_));
  // Algorithm 1 constructor (lines 14-21): per thread one source sentinel s[k]
  // linked to one sink sentinel t[k]. Sentinels have zero delay and never
  // carry cross edges.
  for (int k = 0; k < k_; ++k) {
    const auto s = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(node{vertex_id::invalid(), k, 0, 0, 0, 0});
    const auto t = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(node{vertex_id::invalid(), k, 0, 1, 0, 0});
    out_.insert(out_.end(), 2 * static_cast<std::size_t>(k_), no_node);
    in_.insert(in_.end(), 2 * static_cast<std::size_t>(k_), no_node);
    out_slot(s, k) = t;
    in_slot(t, k) = s;
    s_[static_cast<std::size_t>(k)] = s;
    t_[static_cast<std::size_t>(k)] = t;
  }
}

void threaded_graph::reserve_vertices(std::size_t expected_vertices) {
  const std::size_t count = nodes_.size() + expected_vertices;
  nodes_.reserve(count);
  out_.reserve(count * static_cast<std::size_t>(k_));
  in_.reserve(count * static_cast<std::size_t>(k_));
  node_index_.reserve(g_->vertex_count());
}

std::int32_t threaded_graph::node_of(vertex_id v) const {
  if (!v.valid() || v.value() >= node_index_.size()) return no_node;
  return node_index_[v.value()];
}

bool threaded_graph::scheduled(vertex_id v) const { return node_of(v) != no_node; }

int threaded_graph::thread_of(vertex_id v) const {
  const std::int32_t n = node_of(v);
  SOFTSCHED_EXPECT(n != no_node, "vertex is not scheduled");
  return nodes_[static_cast<std::size_t>(n)].thread;
}

int threaded_graph::thread_tag(int thread) const {
  SOFTSCHED_EXPECT(thread >= 0 && thread < k_, "thread index out of range");
  return thread_tags_[static_cast<std::size_t>(thread)];
}

std::vector<vertex_id> threaded_graph::thread_sequence(int thread) const {
  std::vector<vertex_id> seq;
  thread_sequence(thread, seq);
  return seq;
}

void threaded_graph::thread_sequence(int thread, std::vector<vertex_id>& out) const {
  SOFTSCHED_EXPECT(thread >= 0 && thread < k_, "thread index out of range");
  out.clear();
  for (std::int32_t cur = out_slot(s_[static_cast<std::size_t>(thread)], thread);
       cur != t_[static_cast<std::size_t>(thread)]; cur = out_slot(cur, thread)) {
    out.push_back(nodes_[static_cast<std::size_t>(cur)].gv);
  }
}

int threaded_graph::add_thread(int tag) {
  const int old_k = k_;
  const int new_k = k_ + 1;
  const std::size_t count = nodes_.size();
  // Re-layout both slot arrays to the wider stride (same backing arena).
  util::arena_vector<std::int32_t> new_out(count * static_cast<std::size_t>(new_k),
                                           no_node, out_.get_allocator());
  util::arena_vector<std::int32_t> new_in(count * static_cast<std::size_t>(new_k),
                                          no_node, in_.get_allocator());
  for (std::size_t n = 0; n < count; ++n) {
    for (int k = 0; k < old_k; ++k) {
      new_out[n * static_cast<std::size_t>(new_k) + static_cast<std::size_t>(k)] =
          out_[n * static_cast<std::size_t>(old_k) + static_cast<std::size_t>(k)];
      new_in[n * static_cast<std::size_t>(new_k) + static_cast<std::size_t>(k)] =
          in_[n * static_cast<std::size_t>(old_k) + static_cast<std::size_t>(k)];
    }
  }
  out_ = std::move(new_out);
  in_ = std::move(new_in);
  k_ = new_k;
  thread_tags_.push_back(tag);

  const int k = new_k - 1;
  const auto s = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(node{vertex_id::invalid(), k, 0, 0, 0, 0});
  const auto t = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(node{vertex_id::invalid(), k, 0, 1, 0, 0});
  out_.insert(out_.end(), 2 * static_cast<std::size_t>(new_k), no_node);
  in_.insert(in_.end(), 2 * static_cast<std::size_t>(new_k), no_node);
  out_slot(s, k) = t;
  in_slot(t, k) = s;
  s_.push_back(s);
  t_.push_back(t);
  // The fresh sentinels are born with their exact labels (sdist = tdist = 0
  // on an empty thread) and nothing else moves, so labels_valid_ survives.
  return k;
}

void threaded_graph::refresh_closure() {
  const graph::graph_cursor now = g_->cursor();
  if (closure_ && closure_cursor_ == now) return;
  if (closure_ && incremental_ && closure_cursor_.rebuild_epoch == now.rebuild_epoch) {
    // The source graph only grew since the last sync: replay the growth
    // instead of rebuilding the whole O(V*E/64) bitset.
    stats_.closure_rows_touched += closure_->grow_from(*g_, closure_cursor_);
    ++stats_.closure_syncs;
    if (paranoid_checks_enabled() &&
        !closure_->equals(graph::transitive_closure(*g_)))
      throw graph_error("paranoid: incremental closure diverged from a rebuild");
    return;
  }
  if (closure_)
    closure_->rebuild(*g_); // reuses the bitset storage; validates acyclicity
  else
    closure_.emplace(*g_, arena_);
  closure_cursor_ = now;
  ++stats_.closure_rebuilds;
}

void threaded_graph::state_topo_order() {
  const std::size_t count = nodes_.size();
  scratch_degree_.assign(count, 0);
  for (std::size_t n = 0; n < count; ++n) {
    for (int k = 0; k < k_; ++k) {
      if (in_slot(static_cast<std::int32_t>(n), k) != no_node)
        ++scratch_degree_[n];
    }
  }
  scratch_topo_.clear();
  scratch_topo_.reserve(count);
  for (std::size_t n = 0; n < count; ++n)
    if (scratch_degree_[n] == 0) scratch_topo_.push_back(static_cast<std::int32_t>(n));
  for (std::size_t head = 0; head < scratch_topo_.size(); ++head) {
    const std::int32_t u = scratch_topo_[head];
    for (int k = 0; k < k_; ++k) {
      const std::int32_t w = out_slot(u, k);
      if (w != no_node && --scratch_degree_[static_cast<std::size_t>(w)] == 0)
        scratch_topo_.push_back(w);
    }
  }
  if (scratch_topo_.size() != count)
    throw graph_error("threaded graph state contains a cycle");
}

void threaded_graph::label() {
  if (labels_valid_) return;
  ++stats_.label_passes;
  state_topo_order();
  // forwardLabel (line 44): sdist = max over predecessors + own delay.
  for (const std::int32_t n : scratch_topo_) {
    long long best = 0;
    for (int k = 0; k < k_; ++k) {
      const std::int32_t p = in_slot(n, k);
      if (p != no_node) best = std::max(best, nodes_[static_cast<std::size_t>(p)].sdist);
    }
    nodes_[static_cast<std::size_t>(n)].sdist = best + nodes_[static_cast<std::size_t>(n)].delay;
  }
  // backwardLabel (line 45).
  for (auto it = scratch_topo_.rbegin(); it != scratch_topo_.rend(); ++it) {
    long long best = 0;
    for (int k = 0; k < k_; ++k) {
      const std::int32_t q = out_slot(*it, k);
      if (q != no_node) best = std::max(best, nodes_[static_cast<std::size_t>(q)].tdist);
    }
    nodes_[static_cast<std::size_t>(*it)].tdist = best + nodes_[static_cast<std::size_t>(*it)].delay;
  }
  diameter_cache_ = 0;
  for (const node& nd : nodes_)
    diameter_cache_ = std::max(diameter_cache_, nd.sdist + nd.tdist - nd.delay);
  labels_valid_ = true;
}

void threaded_graph::incremental_relabel(std::int32_t n) {
  const std::size_t count = nodes_.size();
  // Seed: the spliced node's labels from its (unchanged) neighbours.
  {
    node& nd = nodes_[static_cast<std::size_t>(n)];
    long long src = 0;
    long long snk = 0;
    for (int k = 0; k < k_; ++k) {
      const std::int32_t p = in_slot(n, k);
      if (p != no_node) src = std::max(src, nodes_[static_cast<std::size_t>(p)].sdist);
      const std::int32_t q = out_slot(n, k);
      if (q != no_node) snk = std::max(snk, nodes_[static_cast<std::size_t>(q)].tdist);
    }
    nd.sdist = src + nd.delay;
    nd.tdist = snk + nd.delay;
    diameter_cache_ = std::max(diameter_cache_, nd.sdist + nd.tdist - nd.delay);
  }
  ++stats_.nodes_relabeled;

  // Forward cone: push sdist increases along out slots. Every label change
  // a commit causes is an increase through n, so max-propagation from n is
  // exact (docs/DESIGN.md §4). Only select()-produced positions reach this
  // code, so the state stays acyclic; as defense in depth, a cycle (which
  // would necessarily pass through n - all new edges are incident to it)
  // is still detected when propagation laps back into n, and demotes to
  // invalidated labels so the next label() reports it.
  // The queued flags are self-cleaning (every dequeue unsets its flag), so
  // the array only needs to cover the new node - no O(n) clear per commit.
  if (scratch_queued_.size() < count) scratch_queued_.resize(count, 0);
  scratch_queue_.clear();
  scratch_queue_.push_back(n);
  scratch_queued_[static_cast<std::size_t>(n)] = 1;
  for (std::size_t head = 0; head < scratch_queue_.size(); ++head) {
    const std::int32_t u = scratch_queue_[head];
    scratch_queued_[static_cast<std::size_t>(u)] = 0;
    for (int k = 0; k < k_; ++k) {
      const std::int32_t w = out_slot(u, k);
      if (w == no_node) continue;
      if (w == n && u != n) { // every queued u is downstream of n: a cycle
        for (std::size_t i = head; i < scratch_queue_.size(); ++i)
          scratch_queued_[static_cast<std::size_t>(scratch_queue_[i])] = 0;
        labels_valid_ = false;
        return;
      }
      node& wd = nodes_[static_cast<std::size_t>(w)];
      const long long cand = nodes_[static_cast<std::size_t>(u)].sdist + wd.delay;
      if (cand <= wd.sdist) continue;
      wd.sdist = cand;
      diameter_cache_ = std::max(diameter_cache_, wd.sdist + wd.tdist - wd.delay);
      ++stats_.nodes_relabeled;
      if (!scratch_queued_[static_cast<std::size_t>(w)]) {
        scratch_queued_[static_cast<std::size_t>(w)] = 1;
        scratch_queue_.push_back(w);
      }
    }
  }

  // Backward cone: tdist increases along in slots. The forward loop left
  // every flag unset again, so the array is ready as-is.
  scratch_queue_.clear();
  scratch_queue_.push_back(n);
  scratch_queued_[static_cast<std::size_t>(n)] = 1;
  for (std::size_t head = 0; head < scratch_queue_.size(); ++head) {
    const std::int32_t u = scratch_queue_[head];
    scratch_queued_[static_cast<std::size_t>(u)] = 0;
    for (int k = 0; k < k_; ++k) {
      const std::int32_t p = in_slot(u, k);
      if (p == no_node) continue;
      if (p == n && u != n) { // every queued u is upstream of n: a cycle
        for (std::size_t i = head; i < scratch_queue_.size(); ++i)
          scratch_queued_[static_cast<std::size_t>(scratch_queue_[i])] = 0;
        labels_valid_ = false;
        return;
      }
      node& pd = nodes_[static_cast<std::size_t>(p)];
      const long long cand = nodes_[static_cast<std::size_t>(u)].tdist + pd.delay;
      if (cand <= pd.tdist) continue;
      pd.tdist = cand;
      diameter_cache_ = std::max(diameter_cache_, pd.sdist + pd.tdist - pd.delay);
      ++stats_.nodes_relabeled;
      if (!scratch_queued_[static_cast<std::size_t>(p)]) {
        scratch_queued_[static_cast<std::size_t>(p)] = 1;
        scratch_queue_.push_back(p);
      }
    }
  }
}

bool threaded_graph::labels_match_full_relabel() {
  label(); // materialize the (possibly incrementally maintained) labels
  scratch_labels_.clear();
  scratch_labels_.reserve(nodes_.size());
  for (const node& nd : nodes_) scratch_labels_.emplace_back(nd.sdist, nd.tdist);
  labels_valid_ = false;
  label(); // forced full pass; also repairs the labels on divergence
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (scratch_labels_[i] != std::make_pair(nodes_[i].sdist, nodes_[i].tdist))
      return false;
  return true;
}

void threaded_graph::compute_legality_and_intrinsics(vertex_id v, long long& intrinsic_src,
                                                     long long& intrinsic_snk) {
  label();
  const std::size_t count = nodes_.size();
  if (scratch_succ_reach_.size() < count) {
    scratch_succ_reach_.resize(count, 0);
    scratch_pred_reach_.resize(count, 0);
  }
  if (++reach_epoch_ == 0) { // epoch wrapped: every stale stamp could alias
    std::fill(scratch_succ_reach_.begin(), scratch_succ_reach_.end(), 0u);
    std::fill(scratch_pred_reach_.begin(), scratch_pred_reach_.end(), 0u);
    reach_epoch_ = 1;
  }
  const std::uint32_t epoch = reach_epoch_;
  intrinsic_src = 0;
  intrinsic_snk = 0;
  // Seeds: scheduled transitive successors/predecessors of v in G
  // (Algorithm 1 lines 53-54 compute the intrinsic distances over exactly
  // these sets), reduced to the per-thread extremes in one pass over the
  // state - within a thread every other seed is implied through the chain,
  // and sdist/tdist are monotone along it, so the extremes also carry the
  // intrinsic distances. Two closure bit tests per scheduled node; both
  // hit v's own row or the node's row head, which stay cached.
  scratch_latest_pred_.assign(static_cast<std::size_t>(k_), no_node);
  scratch_earliest_succ_.assign(static_cast<std::size_t>(k_), no_node);
  for (std::size_t n = 0; n < count; ++n) {
    const vertex_id gv = nodes_[n].gv;
    if (!gv.valid()) continue;
    const auto j = static_cast<std::size_t>(nodes_[n].thread);
    if (closure_->strictly_reaches(v, gv)) {
      if (scratch_earliest_succ_[j] == no_node ||
          nodes_[n].rank <
              nodes_[static_cast<std::size_t>(scratch_earliest_succ_[j])].rank)
        scratch_earliest_succ_[j] = static_cast<std::int32_t>(n);
    } else if (closure_->strictly_reaches(gv, v)) {
      if (scratch_latest_pred_[j] == no_node ||
          nodes_[n].rank > nodes_[static_cast<std::size_t>(scratch_latest_pred_[j])].rank)
        scratch_latest_pred_[j] = static_cast<std::int32_t>(n);
    }
  }
  // succ_reach[n]: some scheduled successor of v reaches n in the state -
  // the forward closure of the seed set. BFS from the per-thread earliest
  // seeds is enough: every other seed is downstream of one of them through
  // its thread chain, so the cones coincide. The mark is monotone, so no
  // topological order is needed.
  scratch_queue_.clear();
  for (int j = 0; j < k_; ++j) {
    const std::int32_t n = scratch_earliest_succ_[static_cast<std::size_t>(j)];
    if (n == no_node) continue;
    intrinsic_snk = std::max(intrinsic_snk, nodes_[static_cast<std::size_t>(n)].tdist);
    scratch_succ_reach_[static_cast<std::size_t>(n)] = epoch;
    scratch_queue_.push_back(n);
  }
  for (std::size_t head = 0; head < scratch_queue_.size(); ++head) {
    const std::int32_t u = scratch_queue_[head];
    for (int k = 0; k < k_; ++k) {
      const std::int32_t w = out_slot(u, k);
      if (w == no_node || scratch_succ_reach_[static_cast<std::size_t>(w)] == epoch)
        continue;
      scratch_succ_reach_[static_cast<std::size_t>(w)] = epoch;
      scratch_queue_.push_back(w);
    }
  }
  // pred_reach[n]: n reaches some scheduled predecessor of v in the state -
  // the backward closure, same BFS along in slots from the per-thread
  // latest seeds.
  scratch_queue_.clear();
  for (int j = 0; j < k_; ++j) {
    const std::int32_t n = scratch_latest_pred_[static_cast<std::size_t>(j)];
    if (n == no_node) continue;
    intrinsic_src = std::max(intrinsic_src, nodes_[static_cast<std::size_t>(n)].sdist);
    scratch_pred_reach_[static_cast<std::size_t>(n)] = epoch;
    scratch_queue_.push_back(n);
  }
  for (std::size_t head = 0; head < scratch_queue_.size(); ++head) {
    const std::int32_t u = scratch_queue_[head];
    for (int k = 0; k < k_; ++k) {
      const std::int32_t p = in_slot(u, k);
      if (p == no_node || scratch_pred_reach_[static_cast<std::size_t>(p)] == epoch)
        continue;
      scratch_pred_reach_[static_cast<std::size_t>(p)] = epoch;
      scratch_queue_.push_back(p);
    }
  }
}

insert_position threaded_graph::select(vertex_id v) {
  refresh_closure();
  return select_impl(v);
}

insert_position threaded_graph::select_impl(vertex_id v) {
  g_->require_vertex(v);
  SOFTSCHED_EXPECT(!scheduled(v), "select: vertex is already scheduled");
  ++stats_.select_calls;

  long long intrinsic_src = 0;
  long long intrinsic_snk = 0;
  compute_legality_and_intrinsics(v, intrinsic_src, intrinsic_snk);

  const int vtag = vertex_tag_(v);
  const long long dv = g_->delay(v);
  insert_position best;
  long long best_cost = std::numeric_limits<long long>::max();
  bool any_compatible = false;

  for (int k = 0; k < k_; ++k) {
    if (thread_tags_[static_cast<std::size_t>(k)] != vtag) continue;
    any_compatible = true;
    const std::int32_t tail = t_[static_cast<std::size_t>(k)];
    for (std::int32_t cur = s_[static_cast<std::size_t>(k)]; cur != tail;
         cur = out_slot(cur, k)) {
      // Inserting after a node some scheduled G-successor of v already
      // reaches would close a cycle; the predicate is monotone along the
      // thread, so the remaining positions are illegal too.
      if (scratch_succ_reach_[static_cast<std::size_t>(cur)] == reach_epoch_) {
        ++stats_.positions_rejected;
        break;
      }
      // Dominance prune: sdist is monotone along the thread, so once even
      // the optimistic bound sdist(cur) + dv + intrinsic_snk reaches the
      // incumbent cost, no later position in this thread can beat it (and
      // ties never displace the incumbent - select keeps the first
      // minimum). The chosen position is exactly the unpruned scan's.
      if (nodes_[static_cast<std::size_t>(cur)].sdist + dv + intrinsic_snk >= best_cost)
        break;
      const std::int32_t next = out_slot(cur, k);
      // Symmetric guard: next must not reach a scheduled G-predecessor.
      if (scratch_pred_reach_[static_cast<std::size_t>(next)] == reach_epoch_) {
        ++stats_.positions_rejected;
        continue;
      }
      ++stats_.positions_scanned;
      // Lemma 5: the distance through v at this position (line 57-59).
      const long long cost =
          std::max(nodes_[static_cast<std::size_t>(cur)].sdist, intrinsic_src) + dv +
          std::max(nodes_[static_cast<std::size_t>(next)].tdist, intrinsic_snk);
      if (cost < best_cost) {
        best = insert_position{k, cur, cost};
        best_cost = cost;
      }
    }
  }
  if (!any_compatible)
    throw infeasible_error("no thread is compatible with vertex '" +
                           std::string(g_->name(v)) + "'");
  // A legal slot always exists in every compatible thread (docs/DESIGN.md §1:
  // the two illegality predicates are monotone in opposite directions and
  // cannot cover a whole thread without implying a cycle among already
  // scheduled vertices).
  SOFTSCHED_EXPECT(best.valid(), "threaded schedule invariant violated: no legal position");
  return best;
}

insert_position threaded_graph::select_naive(vertex_id v) const {
  // Definition 5 evaluated literally: speculatively commit at every legal
  // position and measure the resulting diameter.
  threaded_graph base(*this);
  base.g_->require_vertex(v);
  SOFTSCHED_EXPECT(!base.scheduled(v), "select_naive: vertex is already scheduled");
  base.refresh_closure();
  long long intrinsic_src = 0;
  long long intrinsic_snk = 0;
  base.compute_legality_and_intrinsics(v, intrinsic_src, intrinsic_snk);

  const int vtag = base.vertex_tag_(v);
  insert_position best;
  long long best_diameter = std::numeric_limits<long long>::max();
  bool any_compatible = false;

  for (int k = 0; k < base.k_; ++k) {
    if (base.thread_tags_[static_cast<std::size_t>(k)] != vtag) continue;
    any_compatible = true;
    const std::int32_t tail = base.t_[static_cast<std::size_t>(k)];
    for (std::int32_t cur = base.s_[static_cast<std::size_t>(k)]; cur != tail;
         cur = base.out_slot(cur, k)) {
      if (base.scratch_succ_reach_[static_cast<std::size_t>(cur)] == base.reach_epoch_)
        break;
      const std::int32_t next = base.out_slot(cur, k);
      if (base.scratch_pred_reach_[static_cast<std::size_t>(next)] == base.reach_epoch_)
        continue;
      threaded_graph speculative(base);
      speculative.commit(insert_position{k, cur, 0}, v);
      const long long diam = speculative.diameter();
      if (diam < best_diameter) {
        best = insert_position{k, cur, diam};
        best_diameter = diam;
      }
    }
  }
  if (!any_compatible)
    throw infeasible_error("no thread is compatible with vertex '" +
                           std::string(base.g_->name(v)) + "'");
  SOFTSCHED_EXPECT(best.valid(), "select_naive: no legal position");
  return best;
}

void threaded_graph::renumber_thread(int k) {
  int rank = 0;
  for (std::int32_t cur = s_[static_cast<std::size_t>(k)]; cur != no_node;
       cur = out_slot(cur, k)) {
    nodes_[static_cast<std::size_t>(cur)].rank = rank++;
  }
}

void threaded_graph::ensure_cross_edge(std::int32_t u, std::int32_t w) {
  const int j = nodes_[static_cast<std::size_t>(u)].thread;
  const int k = nodes_[static_cast<std::size_t>(w)].thread;
  SOFTSCHED_EXPECT(j != k, "cross edges join distinct threads");

  // Figure 2 (a): u already points at-or-before w in thread k; implied.
  const std::int32_t uo = out_slot(u, k);
  if (uo != no_node &&
      nodes_[static_cast<std::size_t>(uo)].rank <= nodes_[static_cast<std::size_t>(w)].rank)
    return;

  // A later thread-j vertex already precedes w: u <=S wi <=S w; implied.
  const std::int32_t wi = in_slot(w, j);
  if (wi != no_node &&
      nodes_[static_cast<std::size_t>(wi)].rank >= nodes_[static_cast<std::size_t>(u)].rank)
    return;

  // Figure 2 (c): u points after w; that relation becomes implied through
  // w's thread chain once u -> w exists, so drop it.
  if (uo != no_node) {
    SOFTSCHED_EXPECT(in_slot(uo, j) == u, "slot pairing invariant broken (out)");
    in_slot(uo, j) = no_node;
    out_slot(u, k) = no_node;
  }
  // Figure 2 (f) mirror: an earlier thread-j vertex pointed at w; implied
  // through u's thread chain once u -> w exists.
  if (wi != no_node) {
    SOFTSCHED_EXPECT(out_slot(wi, k) == w, "slot pairing invariant broken (in)");
    out_slot(wi, k) = no_node;
    in_slot(w, j) = no_node;
  }
  // Figure 2 (b)/(e): add the edge.
  ++stats_.cross_edge_updates;
  out_slot(u, k) = w;
  in_slot(w, j) = u;
}

void threaded_graph::commit(const insert_position& pos, vertex_id v) {
  refresh_closure();
  commit_impl(pos, v, /*trusted_legal=*/false);
}

void threaded_graph::commit_impl(const insert_position& pos, vertex_id v,
                                 bool trusted_legal) {
  g_->require_vertex(v);
  SOFTSCHED_EXPECT(!scheduled(v), "commit: vertex is already scheduled");
  SOFTSCHED_EXPECT(pos.valid() && pos.thread < k_, "commit: invalid position");
  SOFTSCHED_EXPECT(thread_tags_[static_cast<std::size_t>(pos.thread)] == vertex_tag_(v),
                   "commit: thread is not compatible with the vertex");
  // Whether the labels can be patched in place afterwards instead of
  // invalidated: they must be exact now, incremental mode on, and the
  // position must come from select() (trusted_legal). A *manual* commit may
  // be illegal and close a cycle; invalidating keeps the documented
  // diagnosis path - the next label() throws on any cycle, including
  // zero-weight ones the patch worklist's lap detector cannot see.
  const bool patch_labels = labels_valid_ && incremental_ && trusted_legal;

  ++stats_.commits;
  const int k = pos.thread;
  const std::int32_t after = pos.after;
  SOFTSCHED_EXPECT(after >= 0 && static_cast<std::size_t>(after) < nodes_.size() &&
                       nodes_[static_cast<std::size_t>(after)].thread == k &&
                       out_slot(after, k) != no_node,
                   "commit: position is not an insertion point of the thread");

  // Create the state node for v.
  const auto n = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(node{v, k, g_->delay(v), 0, 0, 0});
  out_.insert(out_.end(), static_cast<std::size_t>(k_), no_node);
  in_.insert(in_.end(), static_cast<std::size_t>(k_), no_node);
  if (node_index_.size() < g_->vertex_count()) node_index_.resize(g_->vertex_count(), no_node);
  node_index_[v.value()] = n;
  ++scheduled_count_;

  // Algorithm 1 lines 26-27: splice into the thread chain.
  const std::int32_t next = out_slot(after, k);
  out_slot(after, k) = n;
  in_slot(n, k) = after;
  out_slot(n, k) = next;
  in_slot(next, k) = n;
  renumber_thread(k);

  // Lines 28-41: re-route cross edges. Only the *latest* scheduled
  // G-predecessor per thread (and the earliest successor) can carry a
  // non-implied edge; all other relations follow through that thread's
  // chain. On the schedule() path select_impl's legality scan already
  // computed the per-thread extremes on this very state (the splice cannot
  // change other nodes' thread or rank order); recompute for manual
  // commits, and in from-scratch mode for baseline fidelity.
  if (!trusted_legal || !incremental_) {
    scratch_latest_pred_.assign(static_cast<std::size_t>(k_), no_node);
    scratch_earliest_succ_.assign(static_cast<std::size_t>(k_), no_node);
    closure_->for_each_strictly_reachable(v, [&](vertex_id gw) {
      const std::int32_t w = node_of(gw);
      if (w == no_node || w == n) return;
      const auto j = static_cast<std::size_t>(nodes_[static_cast<std::size_t>(w)].thread);
      if (scratch_earliest_succ_[j] == no_node ||
          nodes_[static_cast<std::size_t>(w)].rank <
              nodes_[static_cast<std::size_t>(scratch_earliest_succ_[j])].rank)
        scratch_earliest_succ_[j] = w;
    });
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const vertex_id gv = nodes_[i].gv;
      if (!gv.valid() || static_cast<std::int32_t>(i) == n) continue;
      if (closure_->strictly_reaches(gv, v)) {
        const auto j = static_cast<std::size_t>(nodes_[i].thread);
        if (scratch_latest_pred_[j] == no_node ||
            nodes_[i].rank > nodes_[static_cast<std::size_t>(scratch_latest_pred_[j])].rank)
          scratch_latest_pred_[j] = static_cast<std::int32_t>(i);
      }
    }
  }
  for (int j = 0; j < k_; ++j) {
    const std::int32_t p = scratch_latest_pred_[static_cast<std::size_t>(j)];
    if (p == no_node) continue;
    if (j == k) {
      // Same thread: the chain orders them; legality guaranteed p < v.
      SOFTSCHED_EXPECT(nodes_[static_cast<std::size_t>(p)].rank <
                           nodes_[static_cast<std::size_t>(n)].rank,
                       "commit: illegal position, a predecessor follows the slot");
    } else {
      ensure_cross_edge(p, n);
    }
  }
  for (int j = 0; j < k_; ++j) {
    const std::int32_t q = scratch_earliest_succ_[static_cast<std::size_t>(j)];
    if (q == no_node) continue;
    if (j == k) {
      SOFTSCHED_EXPECT(nodes_[static_cast<std::size_t>(q)].rank >
                           nodes_[static_cast<std::size_t>(n)].rank,
                       "commit: illegal position, a successor precedes the slot");
    } else {
      ensure_cross_edge(n, q);
    }
  }
  if (patch_labels) {
    incremental_relabel(n); // resets labels_valid_ itself on a detected cycle
    if (labels_valid_ && paranoid_checks_enabled() && !labels_match_full_relabel())
      throw graph_error("paranoid: dirty-region relabel diverged from full label()");
  } else {
    labels_valid_ = false;
  }
}

bool threaded_graph::position_legal(vertex_id v, const insert_position& pos) {
  g_->require_vertex(v);
  SOFTSCHED_EXPECT(!scheduled(v), "position_legal: vertex is already scheduled");
  if (!pos.valid() || pos.thread >= k_) return false;
  if (thread_tags_[static_cast<std::size_t>(pos.thread)] != vertex_tag_(v)) return false;
  if (pos.after < 0 || static_cast<std::size_t>(pos.after) >= nodes_.size()) return false;
  if (nodes_[static_cast<std::size_t>(pos.after)].thread != pos.thread) return false;
  const std::int32_t next = out_slot(pos.after, pos.thread);
  if (next == no_node) return false; // the sink sentinel is not a position
  refresh_closure();
  long long intrinsic_src = 0;
  long long intrinsic_snk = 0;
  compute_legality_and_intrinsics(v, intrinsic_src, intrinsic_snk);
  return scratch_succ_reach_[static_cast<std::size_t>(pos.after)] != reach_epoch_ &&
         scratch_pred_reach_[static_cast<std::size_t>(next)] != reach_epoch_;
}

insert_position threaded_graph::position_front(int thread) const {
  SOFTSCHED_EXPECT(thread >= 0 && thread < k_, "thread index out of range");
  return insert_position{thread, s_[static_cast<std::size_t>(thread)], 0};
}

insert_position threaded_graph::position_after(vertex_id v) const {
  const std::int32_t n = node_of(v);
  SOFTSCHED_EXPECT(n != no_node, "position_after needs a scheduled vertex");
  return insert_position{nodes_[static_cast<std::size_t>(n)].thread, n, 0};
}

void threaded_graph::schedule(vertex_id v) {
  if (scheduled(v)) return; // Definition 3: v already in V_S leaves S unchanged
  refresh_closure();        // single guard for the whole select + commit pair
  commit_impl(select_impl(v), v, /*trusted_legal=*/true);
}

void threaded_graph::schedule_all(const std::vector<vertex_id>& meta_order) {
  for (const vertex_id v : meta_order) schedule(v);
}

long long threaded_graph::diameter() {
  // label() refreshes diameter_cache_ on a full pass; incremental_relabel
  // keeps it current (sound because labels never decrease: the maximum is
  // max(previous diameter, contributions of the patched nodes)).
  label();
  return diameter_cache_;
}

long long threaded_graph::source_distance(vertex_id v) {
  const std::int32_t n = node_of(v);
  SOFTSCHED_EXPECT(n != no_node, "vertex is not scheduled");
  label();
  return nodes_[static_cast<std::size_t>(n)].sdist;
}

long long threaded_graph::sink_distance(vertex_id v) {
  const std::int32_t n = node_of(v);
  SOFTSCHED_EXPECT(n != no_node, "vertex is not scheduled");
  label();
  return nodes_[static_cast<std::size_t>(n)].tdist;
}

std::vector<long long> threaded_graph::asap_start_times() {
  std::vector<long long> start;
  asap_start_times(start);
  return start;
}

void threaded_graph::asap_start_times(std::vector<long long>& out) {
  label();
  out.assign(g_->vertex_count(), -1);
  for (const node& nd : nodes_) {
    if (!nd.gv.valid()) continue;
    out[nd.gv.value()] = nd.sdist - nd.delay;
  }
}

bool threaded_graph::state_precedes(vertex_id a, vertex_id b) const {
  const std::int32_t from = node_of(a);
  const std::int32_t to = node_of(b);
  SOFTSCHED_EXPECT(from != no_node && to != no_node, "both vertices must be scheduled");
  if (from == to) return true;
  scratch_seen_.assign(nodes_.size(), 0);
  scratch_bfs_.clear();
  scratch_bfs_.push_back(from);
  auto& seen = scratch_seen_;
  auto& queue = scratch_bfs_;
  seen[static_cast<std::size_t>(from)] = 1;
  while (!queue.empty()) {
    const std::int32_t u = queue.back();
    queue.pop_back();
    for (int k = 0; k < k_; ++k) {
      const std::int32_t w = out_slot(u, k);
      if (w == no_node || seen[static_cast<std::size_t>(w)]) continue;
      if (w == to) return true;
      seen[static_cast<std::size_t>(w)] = 1;
      queue.push_back(w);
    }
  }
  return false;
}

std::vector<std::pair<vertex_id, vertex_id>> threaded_graph::state_edges() const {
  std::vector<std::pair<vertex_id, vertex_id>> edges;
  state_edges(edges);
  return edges;
}

void threaded_graph::state_edges(std::vector<std::pair<vertex_id, vertex_id>>& edges) const {
  edges.clear();
  edges.reserve(scheduled_count_ * 2); // chain edge + typical cross-edge count
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].gv.valid()) continue;
    for (int k = 0; k < k_; ++k) {
      const std::int32_t w = out_slot(static_cast<std::int32_t>(i), k);
      if (w == no_node || !nodes_[static_cast<std::size_t>(w)].gv.valid()) continue;
      edges.emplace_back(nodes_[i].gv, nodes_[static_cast<std::size_t>(w)].gv);
    }
  }
}

void threaded_graph::check_invariants() const {
  const std::size_t count = nodes_.size();
  // 1. Thread chains: partition, strictly increasing ranks, paired slots.
  std::vector<std::uint8_t> on_chain(count, 0);
  std::size_t member_count = 0;
  for (int k = 0; k < k_; ++k) {
    std::int32_t prev = s_[static_cast<std::size_t>(k)];
    if (nodes_[static_cast<std::size_t>(prev)].rank != 0)
      throw graph_error("invariant: source sentinel rank must be 0");
    on_chain[static_cast<std::size_t>(prev)] = 1;
    for (std::int32_t cur = out_slot(prev, k); cur != no_node; cur = out_slot(cur, k)) {
      const node& nd = nodes_[static_cast<std::size_t>(cur)];
      if (nd.thread != k) throw graph_error("invariant: chain crosses into another thread");
      if (in_slot(cur, k) != prev) throw graph_error("invariant: chain slots not paired");
      if (nd.rank <= nodes_[static_cast<std::size_t>(prev)].rank)
        throw graph_error("invariant: thread ranks must strictly increase");
      if (on_chain[static_cast<std::size_t>(cur)])
        throw graph_error("invariant: vertex appears twice in thread chains");
      on_chain[static_cast<std::size_t>(cur)] = 1;
      if (nd.gv.valid()) ++member_count;
      prev = cur;
    }
    if (prev != t_[static_cast<std::size_t>(k)])
      throw graph_error("invariant: thread chain does not end at the sink sentinel");
  }
  for (std::size_t i = 0; i < count; ++i)
    if (!on_chain[i]) throw graph_error("invariant: node not covered by the thread partition");
  if (member_count != scheduled_count_)
    throw graph_error("invariant: scheduled count mismatch");

  // 2. Slot discipline: every out slot k points into thread k, slots are
  // paired, sentinels carry no cross edges.
  for (std::size_t i = 0; i < count; ++i) {
    const auto u = static_cast<std::int32_t>(i);
    for (int k = 0; k < k_; ++k) {
      const std::int32_t w = out_slot(u, k);
      if (w == no_node) continue;
      if (nodes_[static_cast<std::size_t>(w)].thread != k)
        throw graph_error("invariant: out slot k must point into thread k");
      const bool chain_edge = nodes_[i].thread == k;
      if (!chain_edge && (is_sentinel(u) || is_sentinel(w)))
        throw graph_error("invariant: sentinels must not carry cross edges");
      if (in_slot(w, nodes_[i].thread) != u)
        throw graph_error("invariant: out/in slots must pair up");
    }
    for (int j = 0; j < k_; ++j) {
      const std::int32_t p = in_slot(u, j);
      if (p == no_node) continue;
      if (nodes_[static_cast<std::size_t>(p)].thread != j)
        throw graph_error("invariant: in slot j must come from thread j");
      if (out_slot(p, nodes_[i].thread) != u)
        throw graph_error("invariant: in/out slots must pair up");
    }
  }

  // 3. Acyclicity (local Kahn; does not touch label caches).
  {
    std::vector<int> degree(count, 0);
    for (std::size_t i = 0; i < count; ++i)
      for (int k = 0; k < k_; ++k)
        if (in_slot(static_cast<std::int32_t>(i), k) != no_node) ++degree[i];
    std::vector<std::int32_t> order;
    order.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      if (degree[i] == 0) order.push_back(static_cast<std::int32_t>(i));
    for (std::size_t head = 0; head < order.size(); ++head)
      for (int k = 0; k < k_; ++k) {
        const std::int32_t w = out_slot(order[head], k);
        if (w != no_node && --degree[static_cast<std::size_t>(w)] == 0) order.push_back(w);
      }
    if (order.size() != count) throw graph_error("invariant: state graph is cyclic");
  }

  // 4. Correctness condition (Definition 3): for scheduled p, q with
  // p <G q the state must order p before q. Forward BFS from every node.
  graph::transitive_closure closure(*g_);
  for (std::size_t i = 0; i < count; ++i) {
    if (!nodes_[i].gv.valid()) continue;
    std::vector<std::uint8_t> seen(count, 0);
    std::vector<std::int32_t> queue{static_cast<std::int32_t>(i)};
    seen[i] = 1;
    while (!queue.empty()) {
      const std::int32_t u = queue.back();
      queue.pop_back();
      for (int k = 0; k < k_; ++k) {
        const std::int32_t w = out_slot(u, k);
        if (w != no_node && !seen[static_cast<std::size_t>(w)]) {
          seen[static_cast<std::size_t>(w)] = 1;
          queue.push_back(w);
        }
      }
    }
    for (std::size_t b = 0; b < count; ++b) {
      if (!nodes_[b].gv.valid() || b == i) continue;
      if (closure.strictly_reaches(nodes_[i].gv, nodes_[b].gv) && !seen[b])
        throw graph_error("invariant: correctness condition violated (p <G q but not p <=S q)");
    }
  }
}

} // namespace softsched::core
