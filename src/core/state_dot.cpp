#include "core/state_dot.h"

#include <map>

namespace softsched::core {

void write_state_dot(std::ostream& os, const threaded_graph& state,
                     std::string_view graph_name) {
  const precedence_graph& g = state.source_graph();
  os << "digraph \"" << graph_name << "\" {\n  rankdir=TB;\n  node [shape=box];\n";

  // Clusters: one per thread, members in thread order.
  std::map<std::pair<vertex_id, vertex_id>, bool> chain_edge;
  for (int k = 0; k < state.thread_count(); ++k) {
    const auto seq = state.thread_sequence(k);
    os << "  subgraph cluster_thread" << k << " {\n"
       << "    label=\"thread " << k << " (tag " << state.thread_tag(k) << ")\";\n";
    for (const vertex_id v : seq) {
      os << "    v" << v.value() << " [label=\"";
      if (!g.name(v).empty())
        os << g.name(v);
      else
        os << 'v' << v.value();
      os << " (" << g.delay(v) << ")\"];\n";
    }
    os << "  }\n";
    for (std::size_t i = 0; i + 1 < seq.size(); ++i)
      chain_edge[{seq[i], seq[i + 1]}] = true;
  }

  for (const auto& [from, to] : state.state_edges()) {
    os << "  v" << from.value() << " -> v" << to.value();
    if (!chain_edge.count({from, to})) os << " [style=dashed]";
    os << ";\n";
  }
  os << "}\n";
}

} // namespace softsched::core
