// dfg_io_test.cpp - the DFG text format: parsing, error reporting, and
// write/read round-trips across all benchmarks (including refined graphs
// with wires, spills and forward references).
#include <gtest/gtest.h>

#include <sstream>

#include "graph/distances.h"
#include "ir/benchmarks.h"
#include "ir/dfg_io.h"
#include "refine/refinement.h"
#include "util/check.h"

namespace si = softsched::ir;
namespace sf = softsched::refine;
namespace sg = softsched::graph;
using sg::vertex_id;

namespace {

/// Structural equality: same ops (name, kind, delay) and same edges.
void expect_same_dfg(const si::dfg& a, const si::dfg& b) {
  ASSERT_EQ(a.op_count(), b.op_count());
  EXPECT_EQ(a.name(), b.name());
  for (const vertex_id v : a.graph().vertices()) {
    const vertex_id w = si::find_op(b, std::string(a.graph().name(v)));
    EXPECT_EQ(a.kind(v), b.kind(w));
    EXPECT_EQ(a.graph().delay(v), b.graph().delay(w));
    EXPECT_EQ(a.graph().preds(v).size(), b.graph().preds(w).size());
    for (const vertex_id p : a.graph().preds(v)) {
      EXPECT_TRUE(b.graph().has_edge(si::find_op(b, std::string(a.graph().name(p))), w));
    }
  }
}

} // namespace

TEST(DfgIo, ParsesMinimalGraph) {
  const si::resource_library lib;
  const si::dfg d = si::read_dfg_string("dfg tiny\n"
                                        "op m mul\n"
                                        "op a add m\n",
                                        lib);
  EXPECT_EQ(d.name(), "tiny");
  EXPECT_EQ(d.op_count(), 2u);
  EXPECT_TRUE(d.graph().has_edge(si::find_op(d, "m"), si::find_op(d, "a")));
  EXPECT_EQ(d.graph().delay(si::find_op(d, "m")), 2);
}

TEST(DfgIo, ParsesWiresAndExtraEdges) {
  const si::resource_library lib;
  const si::dfg d = si::read_dfg_string("dfg t\n"
                                        "op a add\n"
                                        "wire w 3 a\n"
                                        "op b add\n"
                                        "edge w b\n",
                                        lib);
  const vertex_id w = si::find_op(d, "w");
  EXPECT_EQ(d.kind(w), si::op_kind::wire);
  EXPECT_EQ(d.graph().delay(w), 3);
  EXPECT_TRUE(d.graph().has_edge(si::find_op(d, "a"), w));
  EXPECT_TRUE(d.graph().has_edge(w, si::find_op(d, "b")));
}

TEST(DfgIo, CommentsAndBlankLines) {
  const si::resource_library lib;
  const si::dfg d = si::read_dfg_string("# header comment\n"
                                        "dfg t\n"
                                        "\n"
                                        "op a add   # trailing comment\n",
                                        lib);
  EXPECT_EQ(d.op_count(), 1u);
}

TEST(DfgIo, ErrorsCarryLineNumbers) {
  const si::resource_library lib;
  const auto expect_error = [&lib](const std::string& text, const std::string& needle) {
    try {
      (void)si::read_dfg_string(text, lib);
      FAIL() << "expected graph_error for: " << text;
    } catch (const softsched::graph_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  expect_error("op a add\nop a add\n", "line 2");                 // duplicate
  expect_error("op a frobnicate\n", "unknown operation kind");    // bad kind
  expect_error("op a add ghost\n", "undeclared operand 'ghost'"); // unknown input
  expect_error("edge a b\n", "undeclared operation");             // unknown edge end
  expect_error("wire w 0\n", "wire delay");                       // bad delay
  expect_error("banana a b\n", "unknown keyword");                // bad keyword
  expect_error("dfg a\ndfg b\n", "duplicate dfg header");         // two headers
}

TEST(DfgIo, RoundTripsAllBenchmarks) {
  const si::resource_library lib;
  for (const si::dfg& original : si::figure3_benchmarks(lib)) {
    std::ostringstream out;
    si::write_dfg(out, original);
    const si::dfg parsed = si::read_dfg_string(out.str(), lib);
    expect_same_dfg(original, parsed);
    EXPECT_EQ(sg::compute_distances(original.graph()).diameter,
              sg::compute_distances(parsed.graph()).diameter);
  }
}

TEST(DfgIo, RoundTripsRefinedGraphWithForwardReferences) {
  // After spill refinement the loads are appended *after* their consumers,
  // so the writer must emit forward references as explicit edge lines.
  const si::resource_library lib;
  si::dfg d = si::make_figure1(lib);
  sf::insert_spill_ops(d, si::find_op(d, "3"));
  sf::insert_wire_op(d, si::find_op(d, "4"), si::find_op(d, "6"), 2);

  std::ostringstream out;
  si::write_dfg(out, d);
  const si::dfg parsed = si::read_dfg_string(out.str(), lib);
  expect_same_dfg(d, parsed);
}

TEST(DfgIo, ParseOpKindNames) {
  EXPECT_EQ(si::parse_op_kind("add"), si::op_kind::add);
  EXPECT_EQ(si::parse_op_kind("sub"), si::op_kind::sub);
  EXPECT_EQ(si::parse_op_kind("mul"), si::op_kind::mul);
  EXPECT_EQ(si::parse_op_kind("compare"), si::op_kind::compare);
  EXPECT_EQ(si::parse_op_kind("load"), si::op_kind::load);
  EXPECT_EQ(si::parse_op_kind("store"), si::op_kind::store);
  EXPECT_EQ(si::parse_op_kind("move"), si::op_kind::move);
  EXPECT_THROW((void)si::parse_op_kind("wire"), softsched::graph_error);
}
