// pareto.h - the area/latency reduction at the end of an exploration: an
// abstract datapath area model for resource allocations, and the Pareto
// frontier over (area, latency) objective pairs.
#pragma once

#include <vector>

#include "ir/resource.h"

namespace softsched::explore {

/// Abstract area cost per functional-unit instance. The absolute scale is
/// arbitrary; the ratios follow datapath folklore (an array multiplier is
/// several adders wide, a memory port is mostly wiring + muxes). Fixed
/// constants so frontier outputs are stable across machines.
inline constexpr long long alu_area = 2;
inline constexpr long long multiplier_area = 9;
inline constexpr long long memory_port_area = 4;

[[nodiscard]] long long allocation_area(const ir::resource_set& resources);

/// One point's objectives as seen by the reduction. Infeasible points never
/// enter the frontier.
struct objective {
  long long area = 0;
  long long latency = 0;
  bool feasible = false;
};

/// Indices of the non-dominated feasible objectives, sorted by (area,
/// latency, index). p dominates q when p is <= q in both objectives and
/// strictly better in at least one; exact (area, latency) ties all survive.
/// Depends only on the objective values - never on the order points were
/// evaluated in - which is what makes the parallel engine's output
/// reproducible for any worker count.
[[nodiscard]] std::vector<int> pareto_frontier(const std::vector<objective>& objectives);

} // namespace softsched::explore
