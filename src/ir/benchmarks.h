// benchmarks.h - the HLSynth-era benchmark dataflow graphs evaluated in the
// paper's Figure 3 (HAL, AR, EF, FIR), the worked example of Figure 1, and
// parameterized generators for the extended experiments.
//
// The original UCI benchmark netlists are not distributed with the paper;
// these are canonical reconstructions from the published literature (op
// counts and delay model match the standard suite; see docs/DESIGN.md §2).
#pragma once

#include <string>
#include <vector>

#include "ir/dfg.h"

namespace softsched::ir {

/// HAL differential-equation solver (Paulin & Knight): 11 operations -
/// 6 multiplies, 2 subtracts, 2 adds, 1 compare. Computes one Euler step of
///   x' = x + dx;  u' = u - 3*x*u*dx - 3*y*dx;  y' = y + u*dx;  c = x' < a.
[[nodiscard]] dfg make_hal(const resource_library& library);

/// AR (auto-regression) lattice filter: 28 operations - 16 multiplies and
/// 12 adds arranged in two multiply stages with pairwise add reductions.
[[nodiscard]] dfg make_arf(const resource_library& library);

/// EF - fifth-order elliptic wave filter: 34 operations - 26 adds and
/// 8 multiplies; critical path 17 cycles under the standard delay model
/// (add = 1, multiply = 2), the classic EWF minimum-latency figure.
[[nodiscard]] dfg make_ewf(const resource_library& library);

/// FIR filter, 8 taps with a balanced adder tree: 8 multiplies + 7 adds.
[[nodiscard]] dfg make_fir8(const resource_library& library);

/// Parameterized FIR (taps >= 1): taps multiplies + (taps-1) tree adds.
[[nodiscard]] dfg make_fir(const resource_library& library, int taps);

/// Parameterized cascade of IIR biquad sections (extended workload, not in
/// the paper): each section is 4 multiplies + 4 adds chained section to
/// section, stressing serial mul/add interleave.
[[nodiscard]] dfg make_iir_cascade(const resource_library& library, int sections);

/// The 7-vertex running example of the paper's Figure 1 (unit delays).
/// Vertices are named "1".."7"; edges: 1->2, 1->3, 2->4, 3->6, 4->6, 6->7,
/// 5->7. Its ALAP hard schedule takes 5 states; spilling vertex 3's value
/// adds a store+load on the 3->6 dependence (6 states); a one-cycle wire
/// delay on 3->6 keeps 5 states - the numbers the paper's Section 1 and 4.1
/// walk through.
[[nodiscard]] dfg make_figure1(const resource_library& library);

/// Benchmark lookup by CLI-style name: "hal", "arf", "ewf", "fig1",
/// "fir<N>" (e.g. "fir8"), "iir<N>". One parser shared by softsched_cli and
/// the design-space exploration engine. Throws precondition_error on an
/// unknown name or a malformed parameter.
[[nodiscard]] dfg make_benchmark(const std::string& name,
                                 const resource_library& library);

/// Vertex handle lookup by the diagnostic name assigned at construction.
/// Throws precondition_error if absent.
[[nodiscard]] vertex_id find_op(const dfg& graph, const std::string& name);

/// The four Figure-3 benchmarks, in table order (HAL, AR, EF, FIR).
[[nodiscard]] std::vector<dfg> figure3_benchmarks(const resource_library& library);

} // namespace softsched::ir
