// force_directed.h - Paulin & Knight's force-directed scheduling (FDS),
// the time-constrained hard baseline cited in the paper's related work.
// Given a latency budget, FDS balances per-class "distribution graphs" by
// repeatedly fixing the (operation, start-cycle) pair with the lowest
// force, minimizing peak unit usage.
#pragma once

#include "hard/schedule.h"

namespace softsched::hard {

struct fds_result {
  schedule sched;
  int peak[ir::resource_class_count] = {0, 0, 0, 0}; ///< indexed by resource_class
};

/// Schedules d within `latency` cycles (must be >= the critical path).
/// Deterministic: force ties break toward the lower vertex id and the
/// earlier cycle. O(V^2 * L) - fine for benchmark-scale graphs.
[[nodiscard]] fds_result force_directed_schedule(const ir::dfg& d, long long latency);

} // namespace softsched::hard
