#include "serve/protocol.h"

#include <sstream>

#include "util/json.h"
#include "util/json_parse.h"

namespace softsched::serve {

control_frame classify_control(std::string_view payload) {
  control_frame frame;
  try {
    const json_value v = parse_json(std::string(payload));
    const json_value* member = v.find("op");
    if (member == nullptr) return frame;
    frame.kind = control_kind::unknown;
    if (member->is_string()) {
      frame.op = member->as_string();
      if (frame.op == "hello") frame.kind = control_kind::hello;
      else if (frame.op == "stats") frame.kind = control_kind::stats;
      else if (frame.op == "shutdown") frame.kind = control_kind::shutdown;
    }
  } catch (const json_error&) {
    // Unparseable payloads are not control frames; the service's strict
    // request parser owns their error response.
  }
  return frame;
}

std::string render_hello() {
  std::ostringstream oss;
  json_writer j(oss, /*compact=*/true);
  j.begin_object();
  j.member("op", "hello");
  j.member("v", wire_version);
  j.key("transports");
  j.begin_array();
  j.value("stdio");
  j.value("tcp");
  j.value("unix");
  j.end_array();
  j.key("caps");
  j.begin_array();
  j.value("hello");
  j.value("stats");
  j.value("shutdown");
  j.value("ordered");
  j.value("streaming");
  j.value("shed");
  j.value("dedup");
  j.value("disk_cache");
  j.end_array();
  j.end_object();
  return std::move(oss).str();
}

std::string render_unknown_op(const control_frame& frame) {
  std::ostringstream oss;
  json_writer j(oss, /*compact=*/true);
  j.begin_object();
  j.member("id", "control");
  j.member("error", "unknown_op");
  if (!frame.op.empty()) j.member("op", frame.op);
  j.member("v", wire_version);
  j.end_object();
  return std::move(oss).str();
}

std::string render_stats(const service_stats& s,
                         const connection_counters_snapshot& conns,
                         const connection_view& conn) {
  std::ostringstream oss;
  json_writer j(oss, /*compact=*/true);
  j.begin_object();
  j.member("op", "stats");
  j.member("v", wire_version);
  j.member("uptime_ms", s.uptime_ms);
  j.member("qps", s.qps);
  j.member("p50_ms", s.p50_ms);
  j.member("p95_ms", s.p95_ms);
  j.member("p99_ms", s.p99_ms);
  j.member("queue_depth", s.queue_depth);
  j.member("peak_queue_depth", s.peak_queue_depth);
  j.member("hit_rate", s.hit_rate);
  j.member("submitted", s.submitted);
  j.member("admitted", s.admitted);
  j.member("overloaded", s.overloaded);
  j.member("completed", s.completed);
  j.member("errors", s.errors);
  j.member("computed", s.computed);
  j.member("cache_hits", s.cache_hits);
  j.member("deduped", s.deduped);
  j.key("conns");
  j.begin_object();
  j.member("transport", conns.transport);
  j.member("accepted", conns.accepted);
  j.member("active", conns.active);
  j.member("shed", conns.shed);
  j.member("closed", conns.closed);
  j.member("transport_errors", conns.transport_errors);
  j.member("faulted", conns.faulted);
  j.member("bytes_in", conns.bytes_in);
  j.member("bytes_out", conns.bytes_out);
  j.end_object();
  j.key("conn");
  j.begin_object();
  j.member("transport", conn.transport);
  j.member("frames", conn.frames);
  j.member("requests", conn.requests);
  j.member("bytes_in", conn.bytes_in);
  j.member("bytes_out", conn.bytes_out);
  j.end_object();
  j.key("disk");
  j.begin_object();
  j.member("enabled", s.disk_enabled);
  j.member("degraded", s.disk_degraded);
  j.member("hits", s.disk_hits);
  j.member("misses", s.disk_misses);
  j.member("writes", s.disk_writes);
  j.member("evictions", s.disk_evictions);
  j.member("corrupt_dropped", s.disk_corrupt_dropped);
  j.member("io_errors", s.disk_io_errors);
  j.member("queue_dropped", s.disk_queue_dropped);
  j.member("flushed", s.disk_flushed);
  j.member("entries", s.disk_entries);
  j.member("bytes", s.disk_bytes);
  j.member("recovery_scan_ms", s.disk_recovery_scan_ms);
  j.member("recovered_entries", s.disk_recovered_entries);
  j.end_object();
  j.end_object();
  return std::move(oss).str();
}

std::string render_connection_shed(double retry_after_ms) {
  std::ostringstream oss;
  json_writer j(oss, /*compact=*/true);
  j.begin_object();
  j.member("id", "control");
  j.member("error", "too_many_connections");
  j.member("retry_after_ms", retry_after_ms);
  j.end_object();
  return std::move(oss).str();
}

std::string render_shutdown_ack(std::size_t flushed) {
  std::ostringstream oss;
  json_writer j(oss, /*compact=*/true);
  j.begin_object();
  j.member("op", "shutdown");
  j.member("drained", true);
  j.member("flushed", flushed);
  j.end_object();
  return std::move(oss).str();
}

} // namespace softsched::serve
