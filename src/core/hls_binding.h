// hls_binding.h - glue between the HLS IR (dfg + resource_set) and the
// generic threaded scheduling core: one thread per functional-unit
// instance, tagged by resource class, so select() only considers
// compatible units (the paper's relaxed Section 4.1 assumption).
//
// Wire-delay pseudo operations are bound to *dedicated* threads: an
// interconnect segment is not a shared unit, so every wire vertex receives
// its own uniquely-tagged thread via add_wire_thread().
#pragma once

#include <vector>

#include "core/threaded_graph.h"
#include "ir/dfg.h"
#include "util/arena.h"

namespace softsched::core {

/// Tag space: resource classes occupy [0, resource_class_count); dedicated
/// wire threads use wire_tag_base + vertex id.
inline constexpr int wire_tag_base = 1 << 16;

/// Compatibility tag of an operation under the HLS binding.
[[nodiscard]] int hls_vertex_tag(const ir::dfg& d, vertex_id v);

/// Builds the empty threaded state for a DFG under a resource constraint:
/// `resources.alus` threads tagged ALU, `resources.multipliers` threads
/// tagged multiplier, `resources.memory_ports` threads tagged memory port.
/// The dfg must outlive the returned state. Throws infeasible_error if the
/// DFG needs a class the constraint provides zero units of.
[[nodiscard]] threaded_graph make_hls_state(const ir::dfg& d,
                                            const ir::resource_set& resources);

/// Hot-path variant (the run_context backend API): internal state arrays
/// draw from `arena` when non-null, and the thread-tag staging buffer is
/// caller-owned so a warmed-up worker rebuilds states heap-silently. The
/// returned state is move-cheap (vector steals under an equal allocator).
[[nodiscard]] threaded_graph make_hls_state(const ir::dfg& d,
                                            const ir::resource_set& resources,
                                            util::arena* arena,
                                            std::vector<int>& tags_scratch);

/// Adds the dedicated thread for a wire vertex and returns its index. Must
/// be called once per wire vertex before scheduling it.
int add_wire_thread(threaded_graph& state, vertex_id wire_vertex);

} // namespace softsched::core
