// phys_test.cpp - the simulated physical-design substrate: grid
// floorplanning, the wire-delay model, and wire-insertion planning over a
// bound schedule.
#include <gtest/gtest.h>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "hard/extract.h"
#include "ir/benchmarks.h"
#include "meta/meta_schedule.h"
#include "phys/floorplan.h"
#include "phys/wire_model.h"
#include "util/check.h"

namespace si = softsched::ir;
namespace sc = softsched::core;
namespace sh = softsched::hard;
namespace sm = softsched::meta;
namespace sp = softsched::phys;
using softsched::graph::vertex_id;

TEST(Floorplan, RowMajorGridPositions) {
  const sp::floorplan plan(5, 2, 2);
  EXPECT_EQ(plan.unit_count(), 5);
  EXPECT_EQ(plan.position(0).x, 0);
  EXPECT_EQ(plan.position(0).y, 0);
  EXPECT_EQ(plan.position(1).x, 2);
  EXPECT_EQ(plan.position(1).y, 0);
  EXPECT_EQ(plan.position(2).x, 0);
  EXPECT_EQ(plan.position(2).y, 2);
  EXPECT_EQ(plan.position(4).x, 0);
  EXPECT_EQ(plan.position(4).y, 4);
}

TEST(Floorplan, ManhattanDistanceSymmetric) {
  const sp::floorplan plan(6, 3, 1);
  for (int a = 0; a < 6; ++a) {
    EXPECT_EQ(plan.distance(a, a), 0);
    for (int b = 0; b < 6; ++b) EXPECT_EQ(plan.distance(a, b), plan.distance(b, a));
  }
  EXPECT_EQ(plan.distance(0, 5), 2 + 1); // (0,0) -> (2,1)
  EXPECT_GT(plan.diameter(), 0);
}

TEST(Floorplan, InvalidArgumentsThrow) {
  EXPECT_THROW(sp::floorplan(0, 1), softsched::precondition_error);
  EXPECT_THROW(sp::floorplan(1, 0), softsched::precondition_error);
  const sp::floorplan plan(2, 2);
  EXPECT_THROW((void)plan.position(2), softsched::precondition_error);
}

TEST(Floorplan, ForResourceSetCoversAllUnits) {
  const si::resource_set rs{2, 2, 1};
  const sp::floorplan plan = sp::floorplan_for(rs);
  EXPECT_EQ(plan.unit_count(), 5);
}

TEST(WireModel, ShortTransfersAreFree) {
  const sp::wire_model model{2, 0.5};
  EXPECT_EQ(model.wire_cycles(0), 0);
  EXPECT_EQ(model.wire_cycles(2), 0);
  EXPECT_EQ(model.wire_cycles(3), 1);  // ceil(1 * 0.5)
  EXPECT_EQ(model.wire_cycles(6), 2);  // ceil(4 * 0.5)
  EXPECT_EQ(model.wire_cycles(10), 4); // ceil(8 * 0.5)
  EXPECT_THROW((void)model.wire_cycles(-1), softsched::precondition_error);
}

TEST(WirePlanning, FindsOnlyCrossUnitLongTransfers) {
  const si::resource_library lib;
  const si::dfg d = si::make_ewf(lib);
  const si::resource_set rs = si::figure3_constraint(0);
  sc::threaded_graph state = sc::make_hls_state(d, rs);
  state.schedule_all(sm::meta_schedule(d.graph(), sm::meta_kind::list_priority));
  const sh::schedule bound = sh::extract_schedule(state);
  // A spread-out floorplan with an aggressive wire model.
  const sp::floorplan plan(5, 2, 4);
  const sp::wire_model model{3, 0.5};
  const auto insertions = sp::plan_wire_insertions(d, bound, plan, model);
  EXPECT_FALSE(insertions.empty()) << "a spread floorplan must create long wires";
  for (const auto& w : insertions) {
    EXPECT_TRUE(d.graph().has_edge(w.from, w.to));
    EXPECT_NE(bound.unit[w.from.value()], bound.unit[w.to.value()]);
    EXPECT_GE(w.delay, 1);
    EXPECT_EQ(w.delay,
              model.wire_cycles(plan.distance(bound.unit[w.from.value()],
                                              bound.unit[w.to.value()])));
  }
}

TEST(WirePlanning, TightFloorplanNeedsNoWires) {
  const si::resource_library lib;
  const si::dfg d = si::make_hal(lib);
  const si::resource_set rs = si::figure3_constraint(0);
  sc::threaded_graph state = sc::make_hls_state(d, rs);
  state.schedule_all(sm::meta_schedule(d.graph(), sm::meta_kind::topological));
  const sh::schedule bound = sh::extract_schedule(state);
  // Everything adjacent + generous free distance: no wires needed.
  const sp::floorplan plan(5, 3, 1);
  const sp::wire_model model{8, 0.5};
  EXPECT_TRUE(sp::plan_wire_insertions(d, bound, plan, model).empty());
}

TEST(WirePlanning, RequiresBoundSchedule) {
  const si::resource_library lib;
  const si::dfg d = si::make_hal(lib);
  sh::schedule unbound; // empty unit vector
  unbound.start.assign(d.op_count(), 0);
  const sp::floorplan plan(5, 3, 1);
  const sp::wire_model model{1, 1.0};
  EXPECT_THROW((void)sp::plan_wire_insertions(d, unbound, plan, model),
               softsched::precondition_error);
}
