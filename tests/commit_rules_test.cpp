// commit_rules_test.cpp - the six edge-update rules of the paper's
// Figure 2, each exercised by an explicitly constructed scenario using
// manual insert positions:
//
//   predecessors p of the new vertex v (cross edges into v's thread k):
//     (a) p.out[k] before v      -> state untouched
//     (b) p.out[k] == null       -> add p -> v
//     (c) p.out[k] after v       -> replace with p -> v
//   successors q (cross edges out of v's thread k):
//     (d) q.in[k] after v        -> state untouched
//     (e) q.in[k] == null        -> add v -> q
//     (f) q.in[k] before v       -> replace with v -> q
#include <gtest/gtest.h>

#include <algorithm>

#include "core/threaded_graph.h"
#include "graph/precedence_graph.h"
#include "util/check.h"

namespace sg = softsched::graph;
namespace sc = softsched::core;
using sg::vertex_id;

namespace {

bool has_state_edge(const sc::threaded_graph& state, vertex_id a, vertex_id b) {
  const auto edges = state.state_edges();
  return std::find(edges.begin(), edges.end(), std::make_pair(a, b)) != edges.end();
}

} // namespace

TEST(CommitRules, RuleB_AddsEdgeToNewPredecessorlessSlot) {
  // G: p -> v, two threads. p scheduled alone; committing v into the other
  // thread must add the cross edge p -> v (p.out[k] was null).
  sg::precedence_graph g;
  const vertex_id p = g.add_vertex(1, "p");
  const vertex_id v = g.add_vertex(1, "v");
  g.add_edge(p, v);
  sc::threaded_graph state(g, 2);
  state.commit(state.position_front(0), p);
  state.commit(state.position_front(1), v);
  EXPECT_TRUE(has_state_edge(state, p, v));
  state.check_invariants();
}

TEST(CommitRules, RuleA_KeepsEdgeWhenTargetPrecedesNewVertex) {
  // G: p -> x, p -> v. x sits in thread 1; v lands after x. p already
  // points at x (before v), so the state stays untouched: no direct
  // p -> v edge, yet p <=S v through x's chain.
  sg::precedence_graph g;
  const vertex_id p = g.add_vertex(1, "p");
  const vertex_id x = g.add_vertex(1, "x");
  const vertex_id v = g.add_vertex(1, "v");
  g.add_edge(p, x);
  g.add_edge(p, v);
  sc::threaded_graph state(g, 2);
  state.commit(state.position_front(0), p);
  state.commit(state.position_front(1), x);
  ASSERT_TRUE(has_state_edge(state, p, x));
  state.commit(state.position_after(x), v);
  EXPECT_TRUE(has_state_edge(state, p, x));
  EXPECT_FALSE(has_state_edge(state, p, v)) << "edge must stay implied via x";
  EXPECT_TRUE(state.state_precedes(p, v));
  state.check_invariants();
}

TEST(CommitRules, RuleC_ReplacesEdgeWhenNewVertexComesFirst) {
  // Same graph, but v is inserted *before* x in thread 1: p's old edge to
  // x is re-routed to v; x stays ordered after p through v's chain.
  sg::precedence_graph g;
  const vertex_id p = g.add_vertex(1, "p");
  const vertex_id x = g.add_vertex(1, "x");
  const vertex_id v = g.add_vertex(1, "v");
  g.add_edge(p, x);
  g.add_edge(p, v);
  sc::threaded_graph state(g, 2);
  state.commit(state.position_front(0), p);
  state.commit(state.position_front(1), x);
  state.commit(state.position_front(1), v); // head of thread 1: before x
  EXPECT_TRUE(has_state_edge(state, p, v));
  EXPECT_FALSE(has_state_edge(state, p, x)) << "old edge must be re-routed";
  EXPECT_TRUE(state.state_precedes(p, x)) << "ordering must survive via v's chain";
  EXPECT_TRUE(state.state_precedes(v, x));
  state.check_invariants();
}

TEST(CommitRules, RuleE_AddsEdgeToNewSuccessorlessSlot) {
  // G: v -> q. q scheduled alone; committing v into the other thread adds
  // the cross edge v -> q (q.in[k] was null).
  sg::precedence_graph g;
  const vertex_id v = g.add_vertex(1, "v");
  const vertex_id q = g.add_vertex(1, "q");
  g.add_edge(v, q);
  sc::threaded_graph state(g, 2);
  state.commit(state.position_front(0), q);
  state.commit(state.position_front(1), v);
  EXPECT_TRUE(has_state_edge(state, v, q));
  state.check_invariants();
}

TEST(CommitRules, RuleD_KeepsEdgeWhenSourceFollowsNewVertex) {
  // G: u -> q, v -> q. u sits in thread 0 pointing at q (thread 1); v is
  // inserted *before* u in thread 0. q.in[thread0] = u comes after v, so
  // the state stays untouched: v <=S u <=S q through the chain.
  sg::precedence_graph g;
  const vertex_id u = g.add_vertex(1, "u");
  const vertex_id q = g.add_vertex(1, "q");
  const vertex_id v = g.add_vertex(1, "v");
  g.add_edge(u, q);
  g.add_edge(v, q);
  sc::threaded_graph state(g, 2);
  state.commit(state.position_front(0), u);
  state.commit(state.position_front(1), q);
  ASSERT_TRUE(has_state_edge(state, u, q));
  state.commit(state.position_front(0), v); // before u in thread 0
  EXPECT_TRUE(has_state_edge(state, u, q));
  EXPECT_FALSE(has_state_edge(state, v, q)) << "edge must stay implied via u";
  EXPECT_TRUE(state.state_precedes(v, q));
  state.check_invariants();
}

TEST(CommitRules, RuleF_ReplacesEdgeWhenNewVertexComesLater) {
  // Same graph, but v lands *after* u in thread 0: q's incoming slot from
  // thread 0 is re-routed from u to v; u stays ordered before q through
  // v's chain.
  sg::precedence_graph g;
  const vertex_id u = g.add_vertex(1, "u");
  const vertex_id q = g.add_vertex(1, "q");
  const vertex_id v = g.add_vertex(1, "v");
  g.add_edge(u, q);
  g.add_edge(v, q);
  sc::threaded_graph state(g, 2);
  state.commit(state.position_front(0), u);
  state.commit(state.position_front(1), q);
  state.commit(state.position_after(u), v); // after u in thread 0
  EXPECT_TRUE(has_state_edge(state, v, q));
  EXPECT_FALSE(has_state_edge(state, u, q)) << "old edge must be re-routed";
  EXPECT_TRUE(state.state_precedes(u, q)) << "ordering must survive via v's chain";
  state.check_invariants();
}

TEST(CommitRules, LemmaSeven_DegreeNeverExceedsThreadCount) {
  // Lemma 7: after any commit sequence, each vertex carries at most K
  // incoming and K outgoing state edges. Exercise with a dense fan graph.
  sg::precedence_graph g;
  const vertex_id hub = g.add_vertex(1, "hub");
  std::vector<vertex_id> succs;
  for (int i = 0; i < 12; ++i) {
    const vertex_id s = g.add_vertex(1);
    g.add_edge(hub, s);
    succs.push_back(s);
  }
  const int k = 3;
  sc::threaded_graph state(g, k);
  state.schedule(hub);
  for (const vertex_id s : succs) state.schedule(s);
  state.check_invariants();
  int hub_out = 0;
  for (const auto& [from, to] : state.state_edges())
    if (from == hub) ++hub_out;
  EXPECT_LE(hub_out, k);
}

TEST(CommitRules, CommitRejectsIncompatibleThread) {
  sg::precedence_graph g;
  const vertex_id v = g.add_vertex(1);
  sc::threaded_graph state(g, {0, 7}, [](vertex_id) { return 7; });
  EXPECT_THROW(state.commit(state.position_front(0), v), softsched::precondition_error);
  state.commit(state.position_front(1), v);
  EXPECT_TRUE(state.scheduled(v));
}

TEST(CommitRules, CommitRejectsSameThreadOrderViolation) {
  // G: a -> b with both forced into one thread; committing b *before* a
  // violates the total order and must be rejected.
  sg::precedence_graph g;
  const vertex_id a = g.add_vertex(1, "a");
  const vertex_id b = g.add_vertex(1, "b");
  g.add_edge(a, b);
  sc::threaded_graph state(g, 1);
  state.commit(state.position_front(0), a);
  EXPECT_THROW(state.commit(state.position_front(0), b), softsched::precondition_error);
}

TEST(CommitRules, CommitRejectsDoubleCommit) {
  sg::precedence_graph g;
  const vertex_id a = g.add_vertex(1);
  sc::threaded_graph state(g, 2);
  state.commit(state.position_front(0), a);
  EXPECT_THROW(state.commit(state.position_front(1), a), softsched::precondition_error);
}
