// precedence_graph.h - the precedence graph of Definition 1 in the paper:
// a DAG G = <V, E, D> with a per-vertex delay function D.
//
// This is the substrate every other module builds on. Vertices are arena
// indices (no pointer graphs); adjacency is stored both ways so that the
// schedulers can walk predecessors and successors symmetrically.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace softsched::graph {

/// Strongly-typed vertex index. Comparable and hashable; invalid() is the
/// sentinel "no vertex".
class vertex_id {
public:
  constexpr vertex_id() noexcept = default;
  constexpr explicit vertex_id(std::uint32_t value) noexcept : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != std::numeric_limits<std::uint32_t>::max();
  }

  [[nodiscard]] static constexpr vertex_id invalid() noexcept { return vertex_id(); }

  friend constexpr bool operator==(vertex_id, vertex_id) noexcept = default;
  friend constexpr auto operator<=>(vertex_id, vertex_id) noexcept = default;

private:
  std::uint32_t value_ = std::numeric_limits<std::uint32_t>::max();
};

/// Synchronization point for incremental consumers of a precedence_graph
/// (the transitive-closure cache). A consumer records cursor() after a full
/// rebuild; as long as the graph's rebuild_epoch() still matches, everything
/// the graph gained since is exactly the vertices past `vertices` and the
/// edge_log() entries past `edges_logged`, so the consumer can replay them
/// instead of rebuilding from scratch.
struct graph_cursor {
  std::uint64_t rebuild_epoch = 0; ///< rebuild_epoch() at sync time
  std::size_t vertices = 0;        ///< vertex_count() at sync time
  std::size_t edges_logged = 0;    ///< edge_log().size() at sync time

  friend bool operator==(const graph_cursor&, const graph_cursor&) = default;
};

/// Directed acyclic graph with integer vertex delays (Definition 1).
///
/// Acyclicity is *not* enforced on every add_edge (builders are free to
/// create edges in any order); call validate() once construction finishes,
/// or rely on the algorithms that require a DAG to throw graph_error.
class precedence_graph {
public:
  precedence_graph() = default;

  /// Creates a vertex with the given delay (must be >= 0) and optional
  /// diagnostic name. Returns its id.
  vertex_id add_vertex(int delay, std::string name = {});

  /// Adds the edge from -> to. Self-loops are rejected; duplicate edges are
  /// ignored (the partial order is a set).
  void add_edge(vertex_id from, vertex_id to);

  /// Removes the edge if present; returns whether it existed. Reachability
  /// may shrink, so this bumps rebuild_epoch() and forces incremental
  /// consumers back to a full rebuild.
  bool remove_edge(vertex_id from, vertex_id to);

  /// remove_edge variant for *reach-preserving* rewires: the caller promises
  /// to restore every severed from ->* to path (through vertices/edges added
  /// in the same rewire) before the next reachability query. The refinement
  /// patterns all have this shape - a spill replaces value -> consumer with
  /// value -> store -> load -> consumer - so the closure cache may keep its
  /// (still true) bits and stay on the incremental path. Does not bump
  /// rebuild_epoch(); see docs/DESIGN.md §4 for the invariant.
  bool remove_edge_reach_preserved(vertex_id from, vertex_id to);

  [[nodiscard]] bool has_edge(vertex_id from, vertex_id to) const;

  [[nodiscard]] std::size_t vertex_count() const noexcept { return delay_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  [[nodiscard]] int delay(vertex_id v) const;
  void set_delay(vertex_id v, int delay);

  [[nodiscard]] std::string_view name(vertex_id v) const;
  void set_name(vertex_id v, std::string name);

  [[nodiscard]] std::span<const vertex_id> preds(vertex_id v) const;
  [[nodiscard]] std::span<const vertex_id> succs(vertex_id v) const;

  /// Vertices without predecessors ("primary inputs" in the paper).
  [[nodiscard]] std::vector<vertex_id> sources() const;
  /// Vertices without successors ("primary outputs").
  [[nodiscard]] std::vector<vertex_id> sinks() const;

  /// All vertex ids, 0..n-1.
  [[nodiscard]] std::vector<vertex_id> vertices() const;

  /// True iff the graph is acyclic.
  [[nodiscard]] bool is_dag() const;

  /// Throws graph_error if the graph contains a cycle or dangling state.
  void validate() const;

  /// Bounds-checks v and throws precondition_error if it is not a vertex
  /// of this graph.
  void require_vertex(vertex_id v) const;

  /// Monotonically increasing mutation counter. Consumers (e.g. the
  /// threaded scheduler's transitive-closure cache) use it to detect that
  /// the graph changed underneath them.
  [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }

  /// Counter of *non-monotone* structural changes (edge removals that are
  /// not declared reach-preserving). While it stands still, the graph only
  /// grew: incremental consumers may replay the growth instead of
  /// rebuilding.
  [[nodiscard]] std::uint64_t rebuild_epoch() const noexcept { return rebuild_epoch_; }

  /// Chronological log of every edge actually added (duplicates that were
  /// ignored do not appear). Entries are never rewritten; removals leave
  /// the log untouched so replay positions stay stable.
  [[nodiscard]] std::span<const std::pair<vertex_id, vertex_id>> edge_log() const noexcept {
    return edge_log_;
  }

  /// Snapshot of the growth state for incremental consumers.
  [[nodiscard]] graph_cursor cursor() const noexcept {
    return graph_cursor{rebuild_epoch_, delay_.size(), edge_log_.size()};
  }

private:
  bool remove_edge_impl(vertex_id from, vertex_id to);

  std::vector<int> delay_;
  std::vector<std::string> name_;
  std::vector<std::vector<vertex_id>> out_;
  std::vector<std::vector<vertex_id>> in_;
  std::vector<std::pair<vertex_id, vertex_id>> edge_log_;
  std::size_t edge_count_ = 0;
  std::uint64_t revision_ = 0;
  std::uint64_t rebuild_epoch_ = 0;
};

} // namespace softsched::graph
