// diskcache.h - the persistent tier below the RAM schedule cache
// (serve/cache.h): a content-addressed on-disk store of serialized
// schedule_result records, keyed by the same process-stable 128-bit
// schedule_key, with its own byte budget and LRU eviction, a bounded
// write-behind flusher, and export/import so a fleet can ship warm caches.
//
// The governing invariant is **degrade, never lie**:
//
//   * a torn, truncated, bit-flipped, version-skewed or otherwise invalid
//     record is a MISS - the record is quarantined (deleted) and counted
//     in corrupt_dropped, and the caller recomputes. Every read verifies
//     magic + version + key + length + checksum before a byte of payload
//     is trusted;
//   * any real I/O failure (open/read/write/fsync error, the directory
//     vanishing mid-run) flips the cache into *degraded* mode: the disk
//     tier goes inert (lookups miss instantly, writes are dropped), the
//     io_errors/degraded counters record it, and the engine keeps serving
//     from RAM. Nothing on this path ever throws into the serving loop.
//
// On-disk format: one file per record, named `<32-hex-key>.rec` inside the
// cache directory. Record layout (all integers little-endian, util/binio):
//
//   u32 magic 'SSDC'   u32 version   u64 key_hi   u64 key_lo
//   u64 payload_len    u64 checksum  payload bytes
//
// The checksum is FNV-1a 64 over (version, key_hi, key_lo, payload), so a
// bit flip anywhere that matters - including in the key field, which would
// otherwise let record A answer for key B - fails verification. The
// payload is the byte_writer serialization of one schedule_result
// (field-count-prefixed stats, so adding a counter to schedule_stats
// without bumping the record version reads as corrupt, not as garbage).
//
// Concurrency: one mutex serializes index/LRU/counters *and* the record
// I/O. This tier sits below a RAM miss - the slow path by construction -
// and holding the lock across the (small) file read/write keeps the
// index/filesystem agreement trivially correct. The background flusher
// takes the same mutex per record. Readers in *other processes* share no
// lock; they are protected by record validation alone (a half-written
// record reads as corrupt -> miss), which is exactly the crash-tolerance
// property and is pinned in tests/persist_test.cpp.
//
// Fault injection: disk_fault_plan targets the Nth disk operation (1-based
// count of record read/write attempts, in order) with delay / fail / torn
// actions - `fail` is a reported I/O error (degrades the tier), `torn`
// writes a prefix of the record and *pretends success* (the kill -9 /
// power-loss shape: bytes partially hit disk and nobody knew). Parsed from
// SOFTSCHED_INJECT's `io=` rules (serve/daemon.h).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <condition_variable>
#include <deque>

#include "serve/cache.h"

namespace softsched::serve {

/// What an injected disk fault does to its target operation.
struct disk_fault_action {
  double delay_ms = 0;
  bool fail = false; ///< report an I/O error (tier degrades)
  bool torn = false; ///< writes: persist a prefix, report success
};

/// Injection plan for the disk tier: op index (1-based, counting every
/// record read/write attempt in order) -> action. Deterministic for a
/// serial request stream, which is what the corruption/outage tests need.
struct disk_fault_plan {
  std::unordered_map<std::uint64_t, disk_fault_action> ops;

  [[nodiscard]] bool empty() const noexcept { return ops.empty(); }
};

struct disk_cache_options {
  std::string directory;                  ///< must be non-empty
  std::size_t byte_budget = 256ull << 20; ///< payload+header bytes on disk
  std::size_t flush_queue_capacity = 256; ///< write-behind bound (>= 1)
  bool sync_writes = false;               ///< fsync each record before success
  disk_fault_plan faults;                 ///< empty = no injection
};

/// Cumulative disk-tier counters (all monotone except entries/bytes/
/// queue_depth, which describe current residency).
struct disk_cache_counters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;          ///< includes degraded-mode fast misses
  std::uint64_t writes = 0;          ///< records successfully persisted
  std::uint64_t evictions = 0;       ///< records deleted for budget
  std::uint64_t rejected_oversize = 0;
  std::uint64_t corrupt_dropped = 0; ///< invalid records quarantined
  std::uint64_t io_errors = 0;       ///< real I/O failures (each may degrade)
  std::uint64_t queue_dropped = 0;   ///< write-behind entries shed (queue full)
  std::uint64_t flushed = 0;         ///< write-behind entries drained to disk
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t queue_depth = 0;       ///< write-behind entries not yet on disk
  bool degraded = false;
  double recovery_scan_ms = 0;       ///< open-time directory scan duration
  std::uint64_t recovered_entries = 0; ///< records indexed by the open scan
};

/// Summary of an import_from() run.
struct disk_import_summary {
  std::uint64_t imported = 0;        ///< records validated and stored
  std::uint64_t corrupt_skipped = 0; ///< invalid records encountered
  bool truncated = false; ///< stream ended inside a record / bad container header
};

/// The persistent schedule-cache tier. Thread-safe. Never throws from
/// lookup/store/flush (constructor may throw precondition_error on an
/// empty directory string only - everything filesystem-shaped degrades
/// instead).
class disk_cache {
public:
  using result_ptr = schedule_cache::result_ptr;

  /// Opens (creating the directory if needed) and runs the recovery scan:
  /// every `*.rec` file is header-validated and indexed; invalid files are
  /// quarantined. A directory that cannot be created/scanned leaves the
  /// cache constructed but degraded.
  explicit disk_cache(const disk_cache_options& options);

  /// Flushes the write-behind queue, then joins the flusher.
  ~disk_cache();

  disk_cache(const disk_cache&) = delete;
  disk_cache& operator=(const disk_cache&) = delete;

  /// Read-through lookup: returns the deserialized record or nullptr on
  /// miss / corruption / degraded mode. A returned value is exactly what
  /// store() was given (bit-for-bit round trip), so promoting it into the
  /// RAM tier preserves the response-byte determinism contract.
  [[nodiscard]] result_ptr lookup(const ir::dfg_digest& key);

  /// Synchronous write (also the flusher's backend): serialize, persist,
  /// index, evict LRU records past the budget. Oversize values are
  /// rejected; I/O failures degrade.
  void store(const ir::dfg_digest& key, result_ptr value);

  /// Write-behind: enqueue for the background flusher. Returns false (and
  /// counts queue_dropped) when the bounded queue is full - the RAM tier
  /// still has the value; losing a write-behind is a future cold miss,
  /// never an error.
  bool enqueue(const ir::dfg_digest& key, result_ptr value);

  /// Blocks until every currently queued write-behind record is on disk
  /// (or dropped by degradation); returns how many this call drained. The
  /// daemon's drain path calls this so a clean stop never loses warm
  /// entries, and reports the count in the shutdown ack.
  std::size_t flush();

  [[nodiscard]] disk_cache_counters counters() const;
  [[nodiscard]] bool degraded() const;
  [[nodiscard]] const disk_cache_options& options() const noexcept { return options_; }

  /// Streams every valid resident record to `out` behind a container
  /// header; corrupt records are quarantined and skipped. Returns the
  /// record count written, or nullopt on a write error to `out`.
  std::optional<std::uint64_t> export_to(std::ostream& out);

  /// Reads a container written by export_to and store()s every valid
  /// record (subject to budget/eviction). Stops at the first corrupt
  /// record (a bad length field makes resynchronization unsafe) and
  /// reports it in the summary.
  disk_import_summary import_from(std::istream& in);

  // -- record format (exposed for tests and the corruption matrix) --------
  static constexpr std::uint32_t record_magic = 0x43445353u;   ///< "SSDC" LE
  static constexpr std::uint32_t record_version = 1;
  static constexpr std::size_t record_header_bytes = 40;
  static constexpr std::uint32_t export_magic = 0x58435353u;   ///< "SSCX" LE

  /// `<32-hex>.rec` filename for a key (no directory part).
  [[nodiscard]] static std::string record_filename(const ir::dfg_digest& key);

  /// Serializes one complete record (header + payload). `version` is
  /// overridable so tests can craft version-skewed records whose checksum
  /// is otherwise valid.
  [[nodiscard]] static std::string serialize_record(const ir::dfg_digest& key,
                                                    const schedule_result& value,
                                                    std::uint32_t version = record_version);

  /// Validates + decodes one record. Returns nullopt on any defect
  /// (wrong magic/version/length/checksum, short buffer, malformed
  /// payload). When `expect_key` is non-null the record's key field must
  /// match it too.
  [[nodiscard]] static std::optional<std::pair<ir::dfg_digest, schedule_result>>
  deserialize_record(std::string_view bytes, const ir::dfg_digest* expect_key = nullptr);

private:
  struct entry {
    ir::dfg_digest key;
    std::size_t bytes = 0;
  };
  using lru_list = std::list<entry>;

  [[nodiscard]] std::string path_of(const ir::dfg_digest& key) const;
  void scan_directory();
  /// Applies the injection rule for the next disk op. Returns the action
  /// (empty action when uninjected).
  disk_fault_action next_op_fault();
  void degrade_locked(const char* what);
  /// store() body under mutex_ already held.
  void store_locked(const ir::dfg_digest& key, const schedule_result& value);
  void evict_to_budget_locked();
  void drop_record_locked(const ir::dfg_digest& key, bool corrupt);
  [[nodiscard]] bool write_record_file(const std::string& path, std::string_view bytes,
                                       const disk_fault_action& fault);
  [[nodiscard]] bool read_record_file(const std::string& path, std::string& out,
                                      const disk_fault_action& fault, bool& missing);
  void flusher_main();

  disk_cache_options options_;
  mutable std::mutex mutex_;
  lru_list lru_; ///< front = most recently used
  std::unordered_map<ir::dfg_digest, lru_list::iterator, ir::dfg_digest_hash> index_;
  disk_cache_counters tally_; ///< entries/bytes/queue_depth derived on read
  std::size_t bytes_ = 0;
  bool degraded_ = false;
  std::uint64_t op_counter_ = 0; ///< injection op index (under mutex_)

  // Write-behind queue + flusher thread.
  std::condition_variable queue_cv_;   ///< signals the flusher: work or stop
  std::condition_variable flushed_cv_; ///< signals flush(): queue went empty
  std::deque<std::pair<ir::dfg_digest, result_ptr>> queue_;
  bool writing_ = false; ///< flusher holds a dequeued record not yet stored
  bool stopping_ = false;
  std::thread flusher_;
};

} // namespace softsched::serve
