// left_edge.h - the classic left-edge register binding: optimal for
// interval (lifetime) graphs, assigning each value the lowest-numbered
// register free at its definition.
#pragma once

#include <vector>

#include "regalloc/lifetime.h"

namespace softsched::regalloc {

/// Register binding: register index per value (parallel to the lifetime
/// vector) and the total register count used.
struct register_binding {
  std::vector<int> reg;
  int register_count = 0;
};

/// Left-edge allocation over non-overlapping reuse. The result uses
/// exactly max_live(lifetimes) registers (optimality of left-edge on
/// interval graphs), which the tests assert.
[[nodiscard]] register_binding left_edge_allocate(const std::vector<value_lifetime>& lifetimes);

} // namespace softsched::regalloc
