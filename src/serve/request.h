// request.h - the JSONL request schema of the batch scheduling service and
// its strict parser. One request = one JSON object per input line:
//
//   {"id": "q1", "bench": "ewf", "alus": 2, "muls": 2, "mems": 1,
//    "mul_latency": 2, "meta": "list"}
//   {"id": "q2", "random": 600, "seed": 7, "edge_prob": 0.25, "alus": 3}
//   {"id": "q3", "dfg": "dfg t\nop a add\nop b add a\n", "backend": "list"}
//
// Exactly one of "bench" / "random" / "dfg" names the design; everything
// else is optional with the CLI's defaults. "backend" picks the scheduler
// backend by registry name (sched::backend_names(); default "soft").
// Unknown keys are rejected (a typo must surface as an error response, not
// as a silently-default schedule). The full schema is documented in
// docs/SERVING.md.
#pragma once

#include <cstdint>
#include <string>

#include "explore/grid.h"
#include "ir/dfg.h"
#include "meta/meta_schedule.h"
#include "util/json_parse.h"

namespace softsched::serve {

/// One parsed scheduling request.
struct request {
  std::string id;               ///< client echo token; engine defaults to "line<N>"
  explore::design_spec design;  ///< bench / random source (unused when dfg_text set)
  std::string dfg_text;         ///< inline .dfg format source (dfg_io)
  ir::resource_set resources{2, 2, 1};
  int mul_latency = 2;
  meta::meta_kind meta = meta::meta_kind::list_priority; ///< never `random`
  /// Scheduler backend (registry name); validated at parse time, mixed
  /// into the schedule cache key so backends never share cache entries.
  std::string backend = "soft";
  /// Iteration budget for iterative backends (sdc-iter); -1 = backend
  /// default. Only valid when the named backend is iterative, and mixed
  /// into the cache key so budget sweeps never coalesce.
  long long iter_budget = -1;

  /// Canonical description of the *design source* (not the allocation):
  /// two requests with equal source signatures build byte-identical DFGs.
  /// The engine memoizes source signature -> canonical digest so the hot
  /// path hashes each distinct design once, not once per request.
  [[nodiscard]] std::string source_signature() const;
};

/// Parses one request object. Throws json_error with a field-level message
/// on malformed input: wrong types, out-of-range values, zero or multiple
/// design sources, unknown keys, or meta "random" (a served schedule must
/// be reproducible from the request alone).
[[nodiscard]] request parse_request(const json_value& object);

/// Convenience: parse the JSON text of one request line.
[[nodiscard]] request parse_request_line(std::string_view text);

/// Meta-kind name used by the request schema ("dfs", "topo", "path",
/// "list"). Throws json_error for anything else, including "random".
[[nodiscard]] meta::meta_kind parse_request_meta(const std::string& name);

/// Builds the request's DFG against `library` (which the caller must have
/// configured with the request's mul_latency and must keep alive). Throws
/// graph_error / precondition_error on an invalid inline DFG or unknown
/// benchmark.
[[nodiscard]] ir::dfg build_request_design(const request& req,
                                           const ir::resource_library& library);

} // namespace softsched::serve
