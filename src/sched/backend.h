// backend.h - the pluggable scheduler-backend layer: one uniform interface
// over the soft scheduler (core/threaded_graph, the paper's contribution)
// and the hard baselines (hard/list_scheduler, hard/force_directed), so
// every consumer - the CLI, the batch scheduling service, the DSE grid -
// can pick a scheduler by name and compare them head-to-head (the paper's
// Figure 1/3 story, generalized per docs/DESIGN.md §7).
//
// A backend is a stateless, deterministic strategy object:
//
//   run(run_request, run_context&) -> backend_outcome
//
// run_request (sched/run_context.h) aggregates the design, the library its
// delays were baked from, the unit allocation, and the per-run options.
// run_context is the caller-owned per-worker scratch object - arena plus
// staging buffers - the backend may burn through; it never changes the
// outcome, only its cost (arena on/off is byte-for-byte cross-validated).
// Outcomes use one shape - per-op start cycles, per-op unit binding
// (-1 = unbound, e.g. FDS), final latency in states, and the soft kernel's
// schedule_stats (zero for hard backends) - so results are directly
// comparable and cacheable.
//
// Registration is static: registered_backends() returns the fixed registry
// in a stable order, and each backend's registry index feeds the serve
// cache key salt (backend_option_salt). The index MUST therefore never be
// reordered within a release - see docs/DESIGN.md §7 for why the cache key
// has to include the backend at all.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/threaded_graph.h"
#include "hard/schedule.h"
#include "ir/dfg.h"
#include "ir/resource.h"
#include "meta/meta_schedule.h"
#include "sched/run_context.h"

namespace softsched::sched {

/// What a backend can and cannot do - consumers branch on capabilities,
/// never on backend names.
struct backend_caps {
  bool binds_units = true;  ///< emits a unit index per op (FDS does not)
  bool uses_meta = false;   ///< consumes the meta feed order (soft, sdc-iter)
  bool refinable = false;   ///< schedule stays soft / live-refinable
  bool time_constrained = false; ///< targets an explicit latency (FDS, sdc-iter)
  bool iterative = false;   ///< re-schedules in a feedback loop; consumes iter_budget
};

/// The uniform scheduling outcome. Infeasible allocations are a reported
/// outcome, not an exception - every consumer (serve cache, DSE grid)
/// treats them as first-class results.
struct backend_outcome {
  bool feasible = false;
  std::string infeasible_reason;      ///< set iff !feasible
  long long latency = -1;             ///< makespan in states; -1 when infeasible
  std::vector<long long> start_times; ///< per-op start cycle (vertex-id order)
  std::vector<int> unit_of;           ///< per-op unit binding; -1 = unbound
  core::schedule_stats stats;         ///< soft kernel counters; zero for hard backends
  /// Refinement iterations actually run past the base schedule; 0 for
  /// every one-shot backend and for an iterative backend at budget 0.
  long long iterations = 0;

  /// Value equality - the repeat-run determinism witness.
  [[nodiscard]] bool same_outcome(const backend_outcome& other) const;
};

/// A feasible outcome as a hard::schedule - the shape
/// hard::validate_schedule (the shared legality checker), write_gantt and
/// the register allocator consume.
[[nodiscard]] hard::schedule to_hard_schedule(const backend_outcome& outcome);

/// One scheduler strategy. Implementations are stateless and deterministic:
/// the outcome of run() is a pure function of the request - the context
/// only changes where scratch memory comes from - so outcomes are cacheable
/// by content (serve) and reproducible for any worker count (explore).
class scheduler_backend {
public:
  virtual ~scheduler_backend() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;
  [[nodiscard]] virtual backend_caps caps() const noexcept = 0;

  /// Schedules request.design under request.resources, staging all
  /// per-run state in `ctx` (calls ctx.begin_run() on entry, so the
  /// previous run's scratch is recycled). Must not throw on an infeasible
  /// allocation - that is an outcome. Throws graph_error on a cyclic
  /// input. `ctx` must not be shared across threads.
  [[nodiscard]] virtual backend_outcome run(const run_request& request,
                                            run_context& ctx) const = 0;
};

/// The registry, in stable registration order: soft (index 0), list (1),
/// fds (2), sdc-iter (3). Index order is part of the serve cache-key
/// contract - append only.
[[nodiscard]] std::span<const scheduler_backend* const> registered_backends();

/// Lookup by name ("soft" | "list" | "fds" | "sdc-iter"); nullptr when
/// unknown.
[[nodiscard]] const scheduler_backend* find_backend(std::string_view name);

/// Lookup that throws precondition_error listing the registered names.
[[nodiscard]] const scheduler_backend& get_backend(std::string_view name);

/// Registry index of a backend (position in registered_backends()); -1
/// when unknown. Stable across runs - the serve cache salt depends on it.
[[nodiscard]] int backend_index(std::string_view name);

/// All registered names in registry order ("soft", "list", "fds",
/// "sdc-iter").
[[nodiscard]] std::vector<std::string> backend_names();

/// The registered names joined as "soft|list|fds|sdc-iter" - the one
/// spelling every unknown-backend error message uses (get_backend, the
/// serve request parser).
[[nodiscard]] std::string backend_names_joined();

/// sdc-iter's refinement budget when the request leaves iter_budget at -1,
/// and the ceiling the CLI / serve request validation enforces. The
/// default is part of the cache-key contract: -1 resolves to it before
/// salting, so "default budget" and "explicitly 8" share one entry.
inline constexpr long long sdc_iter_default_budget = 8;
inline constexpr long long sdc_iter_max_budget = 1024;

/// The option salt the serve engine mixes into schedule_key: everything
/// the outcome depends on beyond graph + delays + allocation, i.e. which
/// backend ran, the feed order (only for backends whose caps().uses_meta),
/// and the iteration budget (only for backends whose caps().iterative).
/// Backends that ignore a knob get one salt for every value of it, so a
/// client sweeping meta orders against `list` - or budgets against `soft` -
/// hits one cache entry instead of scheduling identical results N times.
///
/// Layout (docs/DESIGN.md §7/§9): bits 0-7 meta+1 (or 1 when meta is
/// ignored), bits 8-31 registry index, bits 32+ effective budget + 1 for
/// iterative backends (zero otherwise). The salt is nonzero for every
/// combination so "no salt" stays distinguishable, the soft backend with
/// any meta produces the exact salts the pre-registry engine used, and
/// every pre-iter backend keeps its PR 5 key values (soft 1-4, list 257,
/// fds 513) - warm caches survive the widening. iter_budget -1 resolves
/// to sdc_iter_default_budget before salting. The arena mode of the
/// context is deliberately NOT in the salt: it cannot change the outcome.
[[nodiscard]] std::uint64_t backend_option_salt(const scheduler_backend& backend,
                                                meta::meta_kind meta,
                                                long long iter_budget = -1);

} // namespace softsched::sched
