// threaded_graph.h - the paper's core contribution: the K-threaded
// scheduling state (Definition 4) together with Algorithm 1's
// label/select/commit operations.
//
// The state is itself a precedence graph whose vertices are the already
// scheduled operations, partitioned into K totally-ordered *threads* (one
// per functional unit). Every vertex has at most one incoming and one
// outgoing edge per thread (Lemma 7): slot out[k] points to the earliest
// thread-k vertex this vertex must precede, slot in[j] to the latest
// thread-j vertex that must precede it. Thread-chain edges live in the
// vertex's own thread slot. All Algorithm 1 costs follow from this bounded
// degree: one schedule() call is O(K * |V|).
//
// Scheduling one operation = select() the best (thread, position) pair -
// the spot minimizing the resulting critical path (Definition 5, online
// optimality) - then commit() it, re-routing cross edges by the six rules
// of the paper's Figure 2.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/precedence_graph.h"
#include "graph/reachability.h"
#include "util/arena.h"

namespace softsched::core {

using graph::precedence_graph;
using graph::vertex_id;

/// A candidate insertion point produced by select(): splice the new vertex
/// into `thread` immediately after the state node `after` (which may be the
/// thread's source sentinel). `cost` is the predicted distance
/// ||-> v ->|| through the new vertex in the updated state; by Lemmas 4-6
/// the updated diameter is max(old diameter, cost).
struct insert_position {
  int thread = -1;
  std::int32_t after = -1;
  long long cost = 0;

  [[nodiscard]] bool valid() const noexcept { return thread >= 0; }
};

/// Operation counters accumulated by a threaded_graph - the empirical side
/// of Theorem 3 (positions scanned per select() stays O(|V|); every
/// counter grows linearly in the schedule length for fixed K).
struct schedule_stats {
  std::uint64_t select_calls = 0;
  std::uint64_t positions_scanned = 0;  ///< candidate slots costed in select()
  std::uint64_t positions_rejected = 0; ///< slots skipped by the legality guard
  std::uint64_t commits = 0;
  std::uint64_t label_passes = 0;       ///< full forward+backward relabelings
  std::uint64_t cross_edge_updates = 0; ///< Figure-2 rule applications
  std::uint64_t nodes_relabeled = 0;    ///< label writes by dirty-region relabeling
  std::uint64_t closure_rebuilds = 0;   ///< from-scratch transitive-closure builds
  std::uint64_t closure_syncs = 0;      ///< incremental closure catch-ups
  std::uint64_t closure_rows_touched = 0; ///< bitset rows updated by incremental syncs

  /// Field-complete by construction: determinism witnesses (DSE, serve)
  /// compare stats blocks, and a hand-rolled comparison would silently
  /// ignore the next counter added here.
  friend bool operator==(const schedule_stats&, const schedule_stats&) = default;
};

/// The K-threaded scheduling state over a precedence graph G, plus the
/// threaded-schedule online algorithm (Algorithm 1).
///
/// Thread compatibility: every thread carries an integer `tag`; a vertex
/// may only be scheduled into threads whose tag equals `vertex_tag(v)`.
/// The default tag function maps every vertex to 0 (the paper's "each
/// function unit can implement all operations" assumption); the HLS
/// binding (hls_binding.h) supplies resource-class tags instead.
///
/// The referenced graph may *grow* after construction (the refinement
/// engine inserts spill/wire/move vertices); the transitive-closure cache
/// catches up incrementally via precedence_graph::cursor() while the graph
/// only grew, and rebuilds from scratch after an arbitrary change (see
/// docs/DESIGN.md §4).
class threaded_graph {
public:
  using tag_fn = std::function<int(vertex_id)>;

  /// Empty state with `thread_count` threads of tag 0.
  threaded_graph(const precedence_graph& g, int thread_count);

  /// Empty state with one thread per entry of `thread_tags`, and the given
  /// vertex-compatibility tag function.
  threaded_graph(const precedence_graph& g, std::vector<int> thread_tags,
                 tag_fn vertex_tag);

  /// The master constructor: as above, but every internal array (state
  /// nodes, slot arrays, closure bitset, scratch) draws from `arena` when
  /// non-null - the run_context hot path, reclaimed wholesale by
  /// arena::reset() between runs. A null arena is the plain-heap baseline;
  /// the two modes are byte-identical in every result (docs/DESIGN.md §8).
  threaded_graph(const precedence_graph& g, std::span<const int> thread_tags,
                 tag_fn vertex_tag, util::arena* arena);

  /// Pre-sizes the state arrays for `expected_vertices` scheduled
  /// operations so a full schedule_all() performs no mid-run growth.
  void reserve_vertices(std::size_t expected_vertices);

  threaded_graph(const threaded_graph&) = default;
  threaded_graph& operator=(const threaded_graph&) = default;
  threaded_graph(threaded_graph&&) noexcept = default;
  threaded_graph& operator=(threaded_graph&&) noexcept = default;

  // -- the online schedule (Definition 3 / Algorithm 1) ----------------

  /// Schedules one operation: select() + commit(). No-op if v is already
  /// scheduled (Definition 3's incremental condition). Throws
  /// infeasible_error when no compatible thread exists.
  void schedule(vertex_id v);

  /// Schedules a whole meta-schedule order.
  void schedule_all(const std::vector<vertex_id>& meta_order);

  /// Finds the online-optimal legal insertion position for v without
  /// mutating the state. Throws infeasible_error if v has no compatible
  /// thread; never fails otherwise (a legal slot always exists - see
  /// docs/DESIGN.md §1). O(K * |V|).
  [[nodiscard]] insert_position select(vertex_id v);

  /// Reference implementation of Definition 5: evaluates every legal
  /// position by speculatively committing on a copy of the state and
  /// recomputing the diameter from scratch. Quadratic per call; used by
  /// the optimality tests and the complexity benchmark.
  [[nodiscard]] insert_position select_naive(vertex_id v) const;

  /// Splices v into the state at `pos` and re-routes cross edges (Figure 2
  /// rules). `pos` must come from select()/select_naive() on the current
  /// state, or from the explicit position helpers below (manual placement
  /// bypasses online optimality but not correctness: an illegal position
  /// is rejected or caught by check_invariants).
  void commit(const insert_position& pos, vertex_id v);

  /// Whether committing `v` at `pos` keeps the state a threaded graph
  /// (no cycle, thread compatible). This is exactly the guard select()
  /// applies to every candidate slot; exposed for manual-placement tools
  /// and the legality tests.
  [[nodiscard]] bool position_legal(vertex_id v, const insert_position& pos);

  /// Explicit position at the head of a thread (after the source sentinel).
  [[nodiscard]] insert_position position_front(int thread) const;

  /// Explicit position immediately after a scheduled vertex, inside that
  /// vertex's thread.
  [[nodiscard]] insert_position position_after(vertex_id v) const;

  // -- thread management ------------------------------------------------

  [[nodiscard]] int thread_count() const noexcept { return k_; }
  [[nodiscard]] int thread_tag(int thread) const;

  /// Appends a new empty thread (e.g. a dedicated wire "unit") and returns
  /// its index. O(K * |V|) re-layout.
  int add_thread(int tag);

  // -- state queries ------------------------------------------------------

  [[nodiscard]] const precedence_graph& source_graph() const noexcept { return *g_; }
  [[nodiscard]] bool scheduled(vertex_id v) const;
  [[nodiscard]] std::size_t scheduled_count() const noexcept { return scheduled_count_; }

  /// Thread that executes v. Throws if v is not scheduled.
  [[nodiscard]] int thread_of(vertex_id v) const;

  /// Scheduled operations of a thread, in thread order.
  [[nodiscard]] std::vector<vertex_id> thread_sequence(int thread) const;

  /// Allocation-free variant for hot loops: clears `out` and fills it with
  /// the thread's operations, reusing the buffer's capacity.
  void thread_sequence(int thread, std::vector<vertex_id>& out) const;

  /// ||S||: the critical-path length of the current state (Definition 1's
  /// diameter). Refreshes labels if needed.
  [[nodiscard]] long long diameter();

  /// Source distance ||-> v|| / sink distance ||v ->|| of a scheduled
  /// vertex in the current state.
  [[nodiscard]] long long source_distance(vertex_id v);
  [[nodiscard]] long long sink_distance(vertex_id v);

  /// ASAP start cycle of every scheduled vertex in the state: start(v) =
  /// ||-> v|| - delay(v). Unscheduled vertices get -1. This is the "hard
  /// decision delayed to the desired stage" - the exact operation -> time
  /// step mapping (Section 3).
  [[nodiscard]] std::vector<long long> asap_start_times();

  /// Reusable-output variant: clears `out` and fills it, reusing capacity.
  void asap_start_times(std::vector<long long>& out);

  /// Reachability in the state: a <=S b (reflexive). Both must be
  /// scheduled. O(K * |V|) breadth-first walk; meant for tests/validation.
  [[nodiscard]] bool state_precedes(vertex_id a, vertex_id b) const;

  /// All state edges (thread-chain + cross) between scheduled operations,
  /// as pairs of source-graph vertex ids. Definition 6's "subgraph of
  /// `this` spanned by V \ s \ t".
  [[nodiscard]] std::vector<std::pair<vertex_id, vertex_id>> state_edges() const;

  /// Allocation-free variant: clears `out` and fills it, reusing capacity.
  void state_edges(std::vector<std::pair<vertex_id, vertex_id>>& out) const;

  /// Structural self-check of every invariant (thread partition, total
  /// order per thread, slot pairing, degree bound, acyclicity, correctness
  /// condition w.r.t. G). Throws graph_error with a description on
  /// violation. Used heavily by the property tests.
  void check_invariants() const;

  /// Cumulative operation counters (see schedule_stats).
  [[nodiscard]] const schedule_stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = schedule_stats{}; }

  // -- incremental-maintenance controls ---------------------------------

  /// Toggles the incremental closure sync and dirty-region relabeling.
  /// Disabled, every commit invalidates all labels and every source-graph
  /// change rebuilds the closure from scratch - the pre-incremental
  /// behaviour, kept as the measurable baseline for bench/perf_harness and
  /// as an escape hatch. Results are identical either way; only cost
  /// differs.
  void set_incremental(bool enabled) noexcept { incremental_ = enabled; }
  [[nodiscard]] bool incremental() const noexcept { return incremental_; }

  /// Cross-validates the current (possibly incrementally maintained)
  /// labels against a forced full label() pass. Returns true iff every
  /// sdist/tdist matches. The equivalence tests call this after every
  /// commit; setting the SOFTSCHED_PARANOID environment variable makes
  /// every commit/closure-sync self-check the same way and throw
  /// graph_error on divergence.
  [[nodiscard]] bool labels_match_full_relabel();

private:
  struct node {
    vertex_id gv;         // invalid() for sentinels
    int thread = -1;
    int delay = 0;
    int rank = 0;         // order inside the thread; s = 0, members 1.., t = last
    long long sdist = 0;  // ||-> n|| in the state
    long long tdist = 0;  // ||n ->||
  };

  // Slot accessors into the flattened stride-K adjacency arrays.
  [[nodiscard]] std::int32_t& out_slot(std::int32_t n, int k) { return out_[static_cast<std::size_t>(n) * static_cast<std::size_t>(k_) + static_cast<std::size_t>(k)]; }
  [[nodiscard]] std::int32_t& in_slot(std::int32_t n, int k) { return in_[static_cast<std::size_t>(n) * static_cast<std::size_t>(k_) + static_cast<std::size_t>(k)]; }
  [[nodiscard]] std::int32_t out_slot(std::int32_t n, int k) const { return out_[static_cast<std::size_t>(n) * static_cast<std::size_t>(k_) + static_cast<std::size_t>(k)]; }
  [[nodiscard]] std::int32_t in_slot(std::int32_t n, int k) const { return in_[static_cast<std::size_t>(n) * static_cast<std::size_t>(k_) + static_cast<std::size_t>(k)]; }

  [[nodiscard]] bool is_sentinel(std::int32_t n) const { return !nodes_[static_cast<std::size_t>(n)].gv.valid(); }
  [[nodiscard]] std::int32_t node_of(vertex_id v) const;

  /// forwardLabel + backwardLabel of Algorithm 1: longest-path labels over
  /// the state via one Kahn pass each way. Throws graph_error if the state
  /// is cyclic (only reachable through deliberately corrupted commits in
  /// tests). O(K * |V|).
  void label();

  /// Dirty-region relabeling after commit() spliced node n: only the cone
  /// reachable from n (forward for sdist, backward for tdist) is updated
  /// via a bounded worklist. Sound because every label change a commit can
  /// cause is an *increase* routed through n - the chain/cross edges the
  /// Figure-2 rules drop are implied by at-least-as-long paths, so no
  /// label ever decreases (docs/DESIGN.md §4). Requires labels_valid_.
  void incremental_relabel(std::int32_t n);

  /// Brings <=G up to date with the source graph: no-op when in sync,
  /// incremental grow_from() while the graph only grew, full rebuild
  /// otherwise. Called once per public entry point (not per internal
  /// stage).
  void refresh_closure();

  // refresh_closure-free bodies; public wrappers refresh once and delegate.
  // trusted_legal marks positions produced by select_impl on the current
  // state (schedule()); only those commits may patch labels in place - a
  // manual commit can be illegal, and invalidation keeps the old
  // cycle-diagnosis path intact.
  [[nodiscard]] insert_position select_impl(vertex_id v);
  void commit_impl(const insert_position& pos, vertex_id v, bool trusted_legal);

  /// Seeds + propagates the two legality predicates for inserting v:
  ///   succ_reach[n]: some scheduled x with v <G x satisfies x <=S n
  ///   pred_reach[n]: some scheduled p with p <G v satisfies n <=S p
  /// and the intrinsic source/sink distances of v (Algorithm 1 lines
  /// 53-54). Fills scratch_succ_reach_/scratch_pred_reach_, plus
  /// scratch_latest_pred_/scratch_earliest_succ_ (per-thread extremes of
  /// the seed sets) so a commit_impl immediately following on the same
  /// state can skip its own closure scan.
  void compute_legality_and_intrinsics(vertex_id v, long long& intrinsic_src,
                                       long long& intrinsic_snk);

  /// Ensures u <=S w holds via a direct cross edge or an implied path,
  /// maintaining the one-slot-per-thread pairing invariant (the Figure 2
  /// update rules, generalized to keep out/in slots symmetric).
  void ensure_cross_edge(std::int32_t u, std::int32_t w);

  void renumber_thread(int k);

  /// Topological order of the current state into scratch_topo_. Throws
  /// graph_error on a cycle.
  void state_topo_order();

  const precedence_graph* g_;
  tag_fn vertex_tag_;
  util::arena* arena_ = nullptr; ///< backs every container below; null = heap
  util::arena_vector<int> thread_tags_;
  int k_ = 0;

  util::arena_vector<node> nodes_;
  util::arena_vector<std::int32_t> out_; // nodes x K slots, -1 = empty
  util::arena_vector<std::int32_t> in_;
  util::arena_vector<std::int32_t> s_;   // per-thread source sentinel node
  util::arena_vector<std::int32_t> t_;   // per-thread sink sentinel node
  util::arena_vector<std::int32_t> node_index_; // g vertex value -> node or -1
  std::size_t scheduled_count_ = 0;

  std::optional<graph::transitive_closure> closure_;
  graph::graph_cursor closure_cursor_;

  bool labels_valid_ = false;
  bool incremental_ = true;
  long long diameter_cache_ = 0; // valid iff labels_valid_; see diameter()
  schedule_stats stats_;

  // Scratch buffers reused across schedule() calls to stay allocation-free
  // in the steady state (Theorem 3's constant factors matter in the
  // complexity benchmark).
  util::arena_vector<std::int32_t> scratch_topo_;
  util::arena_vector<std::int32_t> scratch_degree_;
  // Reach marks are epoch stamps, not booleans: bumping reach_epoch_
  // invalidates both arrays in O(1), so a select() never pays an O(n)
  // clear. A mark means "reached" iff it equals the current epoch.
  util::arena_vector<std::uint32_t> scratch_succ_reach_;
  util::arena_vector<std::uint32_t> scratch_pred_reach_;
  std::uint32_t reach_epoch_ = 0;
  util::arena_vector<std::int32_t> scratch_queue_;
  util::arena_vector<std::uint8_t> scratch_queued_;
  util::arena_vector<std::int32_t> scratch_latest_pred_;   // per thread, see
  util::arena_vector<std::int32_t> scratch_earliest_succ_; // compute_legality_and_intrinsics
  // Query scratch (state_precedes / labels_match_full_relabel are logically
  // const validators; their buffers are cost, not state).
  mutable util::arena_vector<std::uint8_t> scratch_seen_;
  mutable util::arena_vector<std::int32_t> scratch_bfs_;
  util::arena_vector<std::pair<long long, long long>> scratch_labels_;
};

} // namespace softsched::core
