// parser.h - recursive-descent front-end turning a behavioral block into a
// dataflow graph. Each binary operation becomes one DFG vertex; plain
// identifiers and literals are free primary inputs (they live in registers
// or are constants - no operation needed). Assignments define values that
// later statements may reference; redefinition shadows (single-assignment
// per name is recommended but not required).
//
// Grammar:
//   block      := statement*
//   statement  := identifier '=' comparison ';'
//   comparison := additive ('<' additive)?
//   additive   := term (('+' | '-') term)*
//   term       := factor ('*' factor)*
//   factor     := identifier | number | '(' comparison ')'
#pragma once

#include <string>

#include "ir/dfg.h"
#include "lang/lexer.h"

namespace softsched::lang {

/// Compiles a behavioral block into a DFG named `name`. The root operation
/// of each statement is named after the assigned identifier; intermediate
/// operations get derived names ("<dest>_t<N>"). Throws parse_error on
/// syntax errors; a statement whose right-hand side is a bare identifier
/// or literal (no operation) is also rejected - there is nothing to
/// schedule for it.
[[nodiscard]] ir::dfg compile_behavior(const std::string& source, std::string name,
                                       const ir::resource_library& library);

} // namespace softsched::lang
