// state_tools_test.cpp - the state introspection tooling: scheduler
// operation counters (the empirical face of Theorem 3) and the DOT export
// of threaded states.
#include <gtest/gtest.h>

#include <sstream>

#include "core/hls_binding.h"
#include "core/state_dot.h"
#include "core/threaded_graph.h"
#include "graph/generators.h"
#include "graph/topo.h"
#include "ir/benchmarks.h"
#include "meta/meta_schedule.h"
#include "util/rng.h"

namespace sg = softsched::graph;
namespace sc = softsched::core;
namespace si = softsched::ir;
namespace sm = softsched::meta;
using sg::vertex_id;
using softsched::rng;

TEST(Stats, CountersTrackScheduling) {
  const si::resource_library lib;
  const si::dfg d = si::make_hal(lib);
  sc::threaded_graph state = sc::make_hls_state(d, si::figure3_constraint(0));
  EXPECT_EQ(state.stats().select_calls, 0u);
  state.schedule_all(sm::meta_schedule(d.graph(), sm::meta_kind::topological));
  const sc::schedule_stats& stats = state.stats();
  EXPECT_EQ(stats.select_calls, d.op_count());
  EXPECT_EQ(stats.commits, d.op_count());
  EXPECT_GT(stats.positions_scanned, 0u);
  EXPECT_GT(stats.label_passes, 0u);
  state.reset_stats();
  EXPECT_EQ(state.stats().select_calls, 0u);
}

TEST(Stats, PositionsScannedPerSelectIsLinearInV) {
  // Theorem 3, empirically: the positions costed by one select() are at
  // most (scheduled ops + K) - one slot per scheduled op plus each
  // thread's head slot - on every step, for any feed order.
  rng rand(77);
  const sg::precedence_graph g = sg::gnp_dag(60, 0.12, 1, 2, rand);
  const int k = 3;
  sc::threaded_graph state(g, k);
  std::vector<vertex_id> order = g.vertices();
  rand.shuffle(order);
  std::uint64_t scheduled = 0;
  for (const vertex_id v : order) {
    const std::uint64_t before =
        state.stats().positions_scanned + state.stats().positions_rejected;
    state.schedule(v);
    const std::uint64_t scanned =
        state.stats().positions_scanned + state.stats().positions_rejected - before;
    EXPECT_LE(scanned, scheduled + static_cast<std::uint64_t>(k));
    ++scheduled;
  }
}

TEST(Stats, CrossEdgeUpdatesBoundedByDegreeLemma) {
  // Lemma 7: each commit touches at most 2K cross edges (one predecessor
  // and one successor slot per thread).
  const si::resource_library lib;
  const si::dfg d = si::make_ewf(lib);
  sc::threaded_graph state = sc::make_hls_state(d, si::figure3_constraint(0));
  const int k = state.thread_count();
  std::uint64_t previous = 0;
  for (const vertex_id v : sm::meta_schedule(d.graph(), sm::meta_kind::topological)) {
    state.schedule(v);
    const std::uint64_t updates = state.stats().cross_edge_updates - previous;
    previous = state.stats().cross_edge_updates;
    EXPECT_LE(updates, static_cast<std::uint64_t>(2 * k));
  }
}

TEST(StateDot, ContainsThreadsAndEdges) {
  const si::resource_library lib;
  const si::dfg d = si::make_figure1(lib);
  sc::threaded_graph state = sc::make_hls_state(d, si::resource_set{2, 1, 1});
  state.schedule_all(sg::topological_order(d.graph()));
  std::ostringstream ss;
  sc::write_state_dot(ss, state, "fig1_state");
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("digraph \"fig1_state\""), std::string::npos);
  EXPECT_NE(dot.find("cluster_thread0"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  // Cross edges are dashed; with two ALU threads there must be at least one.
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(StateDot, EmptyStateStillValidDot) {
  sg::precedence_graph g;
  sc::threaded_graph state(g, 2);
  std::ostringstream ss;
  sc::write_state_dot(ss, state);
  EXPECT_NE(ss.str().find("digraph"), std::string::npos);
  EXPECT_NE(ss.str().find('}'), std::string::npos);
}
