// dfg_io.h - plain-text serialization of dataflow graphs, so benchmarks
// can live as files and the CLI driver can consume user designs.
//
// Format (one declaration per line, '#' comments, blank lines ignored):
//
//     dfg <name>
//     op <op-name> <kind> [<input-op> ...]     # kind: add|sub|mul|compare|
//                                              #       load|store|move
//     wire <op-name> <delay> [<input-op> ...]
//     edge <from-op> <to-op>                   # extra dependence
//
// Operations must be declared before use (the format is topological by
// construction); `edge` lines may appear anywhere after both endpoints.
#pragma once

#include <iosfwd>
#include <string>

#include "ir/dfg.h"

namespace softsched::ir {

/// Parses the text format. Throws graph_error with a line-numbered message
/// on malformed input (unknown kind, undeclared operand, duplicate name).
[[nodiscard]] dfg read_dfg(std::istream& in, const resource_library& library);

/// Convenience: parse from a string.
[[nodiscard]] dfg read_dfg_string(const std::string& text, const resource_library& library);

/// Writes d in the same format; read_dfg(write_dfg(d)) round-trips
/// structure, names, kinds and wire delays.
void write_dfg(std::ostream& out, const dfg& d);

/// Kind name <-> op_kind helpers used by the format ("add", "mul", ...).
/// parse_op_kind throws graph_error for unknown names (wire is handled by
/// the dedicated `wire` declaration, not here).
[[nodiscard]] op_kind parse_op_kind(const std::string& name);

} // namespace softsched::ir
