#include "graph/reachability.h"

#include <bit>

#include "graph/topo.h"

namespace softsched::graph {

transitive_closure::transitive_closure(const precedence_graph& g)
    : n_(g.vertex_count()), words_((n_ + 63) / 64), bits_(n_ * words_, 0) {
  // Process vertices in reverse topological order; each row is the union of
  // successor rows plus the vertex itself.
  const std::vector<vertex_id> order = topological_order(g);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t u = it->value();
    set_bit(u, u);
    for (const vertex_id w : g.succs(*it)) {
      const std::size_t row_u = u * words_;
      const std::size_t row_w = w.value() * words_;
      for (std::size_t i = 0; i < words_; ++i) bits_[row_u + i] |= bits_[row_w + i];
    }
  }
}

bool transitive_closure::reaches(vertex_id u, vertex_id v) const {
  return bit(u.value(), v.value());
}

bool transitive_closure::strictly_reaches(vertex_id u, vertex_id v) const {
  return u != v && bit(u.value(), v.value());
}

std::size_t transitive_closure::pair_count() const {
  std::size_t total = 0;
  for (const std::uint64_t word : bits_) total += static_cast<std::size_t>(std::popcount(word));
  return total - n_; // subtract the reflexive diagonal
}

} // namespace softsched::graph
