#include "ir/dfg.h"

#include "util/check.h"

namespace softsched::ir {

vertex_id dfg::add_op(op_kind kind, std::initializer_list<vertex_id> inputs,
                      std::string name) {
  return add_op(kind, std::span<const vertex_id>(inputs.begin(), inputs.size()),
                std::move(name));
}

vertex_id dfg::add_op(op_kind kind, std::span<const vertex_id> inputs, std::string name) {
  SOFTSCHED_EXPECT(kind != op_kind::wire, "use add_wire for wire-delay vertices");
  if (name.empty())
    name = std::string(mnemonic(kind)) += std::to_string(graph_.vertex_count());
  const vertex_id v = graph_.add_vertex(library_->latency(kind), std::move(name));
  kinds_.push_back(kind);
  for (const vertex_id in : inputs) graph_.add_edge(in, v);
  return v;
}

vertex_id dfg::add_wire(int delay, std::initializer_list<vertex_id> inputs,
                        std::string name) {
  SOFTSCHED_EXPECT(delay >= 1, "wire delay must be at least one cycle");
  if (name.empty()) name = std::string("wd") += std::to_string(graph_.vertex_count());
  const vertex_id v = graph_.add_vertex(delay, std::move(name));
  kinds_.push_back(op_kind::wire);
  for (const vertex_id in : inputs) graph_.add_edge(in, v);
  return v;
}

op_kind dfg::kind(vertex_id v) const {
  graph_.require_vertex(v);
  return kinds_[v.value()];
}

std::size_t dfg::count_kind(op_kind kind) const {
  std::size_t n = 0;
  for (const op_kind k : kinds_)
    if (k == kind) ++n;
  return n;
}

std::size_t dfg::count_class(resource_class cls) const {
  std::size_t n = 0;
  for (const op_kind k : kinds_)
    if (class_of(k) == cls) ++n;
  return n;
}

} // namespace softsched::ir
