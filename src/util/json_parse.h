// json_parse.h - minimal JSON reader for the batch-scheduling service: the
// serve engine consumes one JSON object per JSONL request line. Counterpart
// of the streaming json_writer (json.h), which stays write-only.
//
// Scope is deliberately narrow: full JSON value grammar (object, array,
// string with escapes, number, true/false/null), strict - trailing garbage,
// unterminated containers and bad escapes are errors - and a small DOM that
// preserves object member order. Numbers are stored as double (request
// fields are small integers; 53 bits of exactness is far more than any
// field needs).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace softsched {

/// Thrown on malformed JSON text, with a character offset in the message.
class json_error : public std::runtime_error {
public:
  explicit json_error(const std::string& what) : std::runtime_error(what) {}
};

/// One parsed JSON value. Object members keep their textual order;
/// duplicate keys are rejected at parse time.
class json_value {
public:
  enum class kind { null, boolean, number, string, array, object };

  json_value() = default;

  [[nodiscard]] kind type() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == kind::null; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == kind::boolean; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == kind::number; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == kind::string; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == kind::array; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == kind::object; }

  /// Typed accessors; throw json_error when the value has another kind.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;

  /// as_number() that additionally requires an integer in [lo, hi].
  [[nodiscard]] long long as_integer(long long lo, long long hi) const;

  [[nodiscard]] const std::vector<json_value>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, json_value>>& members() const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const json_value* find(std::string_view key) const;

  static json_value make_null() { return json_value(); }
  static json_value make_bool(bool b);
  static json_value make_number(double d);
  static json_value make_string(std::string s);
  static json_value make_array(std::vector<json_value> items);
  static json_value make_object(std::vector<std::pair<std::string, json_value>> members);

private:
  kind kind_ = kind::null;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<json_value> items_;
  std::vector<std::pair<std::string, json_value>> members_;
};

/// Parses exactly one JSON value spanning the whole input (surrounding
/// whitespace allowed). Throws json_error on malformed text.
[[nodiscard]] json_value parse_json(std::string_view text);

} // namespace softsched
