// backend_harness - standalone runner for the scheduler-backend comparison
// scenario (the same suite perf_harness embeds as the "backend" block of
// BENCH_softsched.json; see backend_scenario.h): every registered backend
// over the named paper benchmarks under 2+/-,2*, printing the JSON block
// to stdout. Exits nonzero if any backend is nondeterministic across
// passes or produces an illegal schedule.
//
// Usage: backend_harness
#include <iostream>

#include "backend_scenario.h"

int main() {
  softsched::json_writer j(std::cout);
  const bool ok = softsched::bench::write_backend_scenario(j);
  std::cout << '\n';
  if (!j.done()) {
    std::cerr << "backend_harness: emitted malformed JSON\n";
    return 1;
  }
  return ok ? 0 : 1;
}
