// iter_scenario.h - the sdc-iter QoR-vs-runtime benchmark scenario: the
// named paper benchmarks (HAL, AR, EWF, FIR8) under a small constraint grid
// that includes both the Figure-3 point (2+/-,2*) and the adder-starved
// points where iteration actually pays (2+/-,1* is the pinned case where
// sdc-iter strictly beats soft). For every grid point the scenario runs
// soft and sdc-iter at the default budget, records the latency delta, the
// iterations the loop took to reach its fixed point, and the sdc-iter
// scheduling throughput over a ~100 ms timed window.
//
// Included by bench/perf_harness.cpp, which embeds the block as the "iter"
// key of BENCH_softsched.json. The grid is fixed - it does not scale with
// --quick - because ci/bench_gate.py compares qor_delta_vs_soft and
// points_per_sec against the committed baseline and must compare like
// against like.
//
// The block is self-gating: it returns false (and the harness exits
// nonzero) if any grid point ends worse than soft, if no point improves,
// if any run is nondeterministic or illegal, or if any point fails to
// reach a fixed point inside the default budget.
#pragma once

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "hard/schedule.h"
#include "ir/benchmarks.h"
#include "sched/backend.h"
#include "util/json.h"

namespace softsched::bench {

struct iter_point_outcome {
  std::string design;
  std::string constraint;
  long long soft_states = 0;
  long long iter_states = 0;
  long long delta = 0;      ///< iter_states - soft_states (gated <= 0)
  long long iterations = 0; ///< kernel re-runs the sdc-iter loop performed
  bool legal = false;
};

/// Emits the whole scenario as the value of an already-written "iter" key.
/// Returns false when the scenario's own gate fails (see header comment).
inline bool write_iter_scenario(json_writer& j) {
  const ir::resource_library library;
  const sched::scheduler_backend& soft = sched::get_backend("soft");
  const sched::scheduler_backend& iter = sched::get_backend("sdc-iter");

  std::vector<ir::dfg> suite;
  std::vector<std::string> names;
  for (const char* name : {"hal", "arf", "ewf", "fir8"}) {
    suite.push_back(ir::make_benchmark(name, library));
    names.emplace_back(name);
  }
  const ir::resource_set constraints[] = {
      ir::figure3_constraint(0), // 2+/-,2*: the paper's comparison point
      {2, 1, 1},                 // the pinned strict-improvement point (HAL)
      {3, 1, 1},                 // multiplier-starved, adders to spare
  };

  // One persistent context per backend, reused across every pass - the
  // serve worker's steady state, same discipline as backend_scenario.h.
  sched::run_context soft_ctx;
  sched::run_context iter_ctx;

  std::vector<iter_point_outcome> points;
  bool deterministic = true;
  bool all_legal = true;
  long long qor_delta = 0;
  long long improved = 0;
  long long max_iterations = 0;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    for (const ir::resource_set& rs : constraints) {
      const sched::backend_outcome s = soft.run({suite[i], library, rs, {}}, soft_ctx);
      const sched::backend_outcome a = iter.run({suite[i], library, rs, {}}, iter_ctx);
      const sched::backend_outcome b = iter.run({suite[i], library, rs, {}}, iter_ctx);
      deterministic = deterministic && a.same_outcome(b);
      iter_point_outcome p;
      p.design = names[i];
      p.constraint = rs.label();
      if (!s.feasible || !a.feasible) continue; // every grid point fits; belt only
      p.soft_states = s.latency;
      p.iter_states = a.latency;
      p.delta = a.latency - s.latency;
      p.iterations = a.iterations;
      p.legal = hard::validate_schedule(suite[i], sched::to_hard_schedule(a), &rs).empty();
      all_legal = all_legal && p.legal;
      qor_delta += p.delta;
      if (p.delta < 0) ++improved;
      if (p.iterations > max_iterations) max_iterations = p.iterations;
      points.push_back(std::move(p));
    }
  }

  // Timed window: whole-grid sdc-iter passes until ~100 ms accumulate, so
  // the gated throughput is never one sub-0.1 ms timing a CI runner
  // scheduler hiccup could halve.
  constexpr double window_ms = 100.0;
  constexpr int max_passes = 4096;
  double total_ms = 0;
  int timed_passes = 0;
  while (total_ms < window_ms && timed_passes < max_passes) {
    const auto t0 = std::chrono::steady_clock::now();
    for (const ir::dfg& d : suite)
      for (const ir::resource_set& rs : constraints)
        (void)iter.run({d, library, rs, {}}, iter_ctx);
    total_ms += std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    ++timed_passes;
  }
  const double points_per_sec =
      total_ms > 0 ? static_cast<double>(points.size()) * timed_passes /
                         (total_ms / 1e3)
                   : 0.0;

  // The scenario's own gate: the tentpole acceptance criteria, enforced at
  // bench time so a regenerated baseline can never encode a regression.
  const bool fixed_point = max_iterations <= sched::sdc_iter_default_budget;
  const bool pass = deterministic && all_legal && qor_delta <= 0 &&
                    improved >= 1 && fixed_point &&
                    points.size() == suite.size() * std::size(constraints);
  if (!pass)
    std::cerr << "iter: gate failed (deterministic=" << deterministic
              << " all_legal=" << all_legal << " qor_delta=" << qor_delta
              << " improved=" << improved << " points=" << points.size()
              << " max_iterations=" << max_iterations << ")\n";

  j.begin_object();
  j.member("budget", sched::sdc_iter_default_budget);
  j.key("grid");
  j.begin_array();
  for (const iter_point_outcome& p : points) {
    j.begin_object();
    j.member("design", p.design);
    j.member("constraint", p.constraint);
    j.member("soft_states", p.soft_states);
    j.member("iter_states", p.iter_states);
    j.member("delta", p.delta);
    j.member("iterations", p.iterations);
    j.member("legal", p.legal);
    j.end_object();
  }
  j.end_array();
  j.member("qor_delta_vs_soft", qor_delta);
  j.member("improved_points", improved);
  j.member("max_iterations", max_iterations);
  j.member("timed_passes", timed_passes);
  j.member("total_ms", total_ms);
  j.member("points_per_sec", points_per_sec);
  j.member("deterministic", deterministic);
  j.member("all_legal", all_legal);
  j.key("gate");
  j.begin_object();
  j.member("pass", pass);
  j.end_object();
  j.end_object();
  return pass;
}

} // namespace softsched::bench
