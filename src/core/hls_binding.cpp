#include "core/hls_binding.h"

#include "util/check.h"

namespace softsched::core {

int hls_vertex_tag(const ir::dfg& d, vertex_id v) {
  if (d.kind(v) == ir::op_kind::wire) return wire_tag_base + static_cast<int>(v.value());
  return static_cast<int>(d.unit_class(v));
}

threaded_graph make_hls_state(const ir::dfg& d, const ir::resource_set& resources) {
  std::vector<int> tags;
  return make_hls_state(d, resources, nullptr, tags);
}

threaded_graph make_hls_state(const ir::dfg& d, const ir::resource_set& resources,
                              util::arena* arena, std::vector<int>& tags_scratch) {
  SOFTSCHED_EXPECT(resources.alus >= 0 && resources.multipliers >= 0 &&
                       resources.memory_ports >= 0,
                   "resource counts must be non-negative");
  for (const ir::resource_class cls :
       {ir::resource_class::alu, ir::resource_class::multiplier,
        ir::resource_class::memory_port}) {
    if (d.count_class(cls) > 0 && resources.count(cls) == 0)
      throw infeasible_error(d.name() + " needs at least one " +
                             std::string(ir::class_name(cls)) + " unit");
  }
  std::vector<int>& tags = tags_scratch;
  tags.clear();
  for (int i = 0; i < resources.alus; ++i)
    tags.push_back(static_cast<int>(ir::resource_class::alu));
  for (int i = 0; i < resources.multipliers; ++i)
    tags.push_back(static_cast<int>(ir::resource_class::multiplier));
  for (int i = 0; i < resources.memory_ports; ++i)
    tags.push_back(static_cast<int>(ir::resource_class::memory_port));
  SOFTSCHED_EXPECT(!tags.empty(), "resource set provides no units at all");
  const ir::dfg* dp = &d;
  threaded_graph state(d.graph(), std::span<const int>(tags),
                       [dp](vertex_id v) { return hls_vertex_tag(*dp, v); }, arena);
  state.reserve_vertices(d.op_count());
  return state;
}

int add_wire_thread(threaded_graph& state, vertex_id wire_vertex) {
  return state.add_thread(wire_tag_base + static_cast<int>(wire_vertex.value()));
}

} // namespace softsched::core
