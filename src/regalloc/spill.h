// spill.h - spill-candidate selection: which values to push to background
// memory when register demand exceeds the budget. The selected candidates
// feed the refinement engine (refine/refinement.h), which inserts the
// store/load operations into the DFG and - in the soft flow - into the
// live threaded schedule.
#pragma once

#include <vector>

#include "regalloc/lifetime.h"

namespace softsched::regalloc {

/// Values chosen for spilling, in selection order.
struct spill_plan {
  std::vector<vertex_id> values;
};

/// Greedy Belady-style selection: while demand exceeds the budget, at a
/// pressure peak spill the alive value with the longest remaining
/// lifetime (it frees a register for the longest stretch). A spilled
/// value's interval shrinks to the single cycle it is produced in (it
/// goes straight to memory). Reload results, primary outputs and values
/// that already live only one cycle cannot be spilled.
///
/// Feasibility is exact: the plan succeeds iff
/// register_budget >= min_spillable_demand(d, lifetimes); otherwise
/// infeasible_error is thrown. Returns an empty plan when the budget
/// already suffices. Throws precondition_error for budget < 1.
[[nodiscard]] spill_plan choose_spills(const ir::dfg& d,
                                       const std::vector<value_lifetime>& lifetimes,
                                       int register_budget);

/// The register demand that remains if *every* spillable value is pushed
/// to memory - the exact lower bound on what choose_spills can reach
/// (pressure from reloads, outputs, one-cycle chained values, and the
/// unavoidable production cycle of each spilled value).
[[nodiscard]] int min_spillable_demand(const ir::dfg& d,
                                       const std::vector<value_lifetime>& lifetimes);

} // namespace softsched::regalloc
