#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace softsched {

void table::set_header(std::vector<std::string> cells) { header_ = std::move(cells); }

void table::add_row(std::vector<std::string> cells) {
  SOFTSCHED_EXPECT(header_.empty() || cells.size() == header_.size(),
                   "row width must match header width");
  rows_.push_back(row{false, std::move(cells)});
}

void table::add_separator() { rows_.push_back(row{true, {}}); }

void table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_)
    if (!r.separator) widen(r.cells);

  auto print_rule = [&os, &widths]() {
    os << '+';
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_cells = [&os, &widths](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& text = i < cells.size() ? cells[i] : std::string();
      os << ' ' << text << std::string(widths[i] - text.size(), ' ') << " |";
    }
    os << '\n';
  };

  print_rule();
  if (!header_.empty()) {
    print_cells(header_);
    print_rule();
  }
  for (const auto& r : rows_) {
    if (r.separator)
      print_rule();
    else
      print_cells(r.cells);
  }
  print_rule();
}

std::string cell(long long value) { return std::to_string(value); }

std::string cell(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

} // namespace softsched
