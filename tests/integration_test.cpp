// integration_test.cpp - cross-module flows on the full benchmark suite:
// the Figure-3 comparison claims, threaded-vs-naive equivalence at scale,
// the full soft flow (schedule -> bind -> regalloc -> spill -> floorplan
// -> wires -> extract), and quality parity between the soft and hard
// pipelines after refinement.
#include <gtest/gtest.h>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "graph/distances.h"
#include "graph/generators.h"
#include "hard/extract.h"
#include "hard/list_scheduler.h"
#include "hard/schedule.h"
#include "ir/benchmarks.h"
#include "meta/meta_schedule.h"
#include "phys/floorplan.h"
#include "phys/wire_model.h"
#include "refine/refinement.h"
#include "regalloc/left_edge.h"
#include "regalloc/lifetime.h"
#include "regalloc/spill.h"
#include "util/rng.h"

namespace sg = softsched::graph;
namespace sc = softsched::core;
namespace si = softsched::ir;
namespace sh = softsched::hard;
namespace sm = softsched::meta;
namespace sp = softsched::phys;
namespace sr = softsched::regalloc;
namespace sf = softsched::refine;
using sg::vertex_id;
using softsched::rng;

namespace {

long long threaded_length(const si::dfg& d, const si::resource_set& rs,
                          sm::meta_kind kind) {
  sc::threaded_graph state = sc::make_hls_state(d, rs);
  state.schedule_all(sm::meta_schedule(d.graph(), kind));
  return state.diameter();
}

} // namespace

TEST(Integration, Figure3ShapeThreadedMatchesList) {
  // The experimental claim of Section 5: "with few exceptions, the
  // threaded scheduler is able to achieve the same result as the list
  // scheduler with a number of meta schedules". We assert the measured
  // form of that: for every benchmark x constraint, the *best* meta
  // schedule is within one cycle of list scheduling, and every meta
  // schedule is within 25% + 2 cycles.
  const si::resource_library lib;
  for (const si::dfg& d : si::figure3_benchmarks(lib)) {
    for (int c = 0; c < si::figure3_constraint_count; ++c) {
      const si::resource_set rs = si::figure3_constraint(c);
      const long long list_len = sh::list_schedule(d, rs).makespan;
      long long best = std::numeric_limits<long long>::max();
      for (const sm::meta_kind kind : sm::figure3_meta_kinds) {
        const long long len = threaded_length(d, rs, kind);
        best = std::min(best, len);
        EXPECT_LE(len, list_len + list_len / 4 + 2)
            << d.name() << "/" << sm::meta_name(kind) << " @ " << rs.label();
      }
      EXPECT_LE(best, list_len + 1) << d.name() << " @ " << rs.label();
    }
  }
}

TEST(Integration, ThreadedNeverBeatsCriticalPathAndAlwaysFeasible) {
  const si::resource_library lib;
  for (const si::dfg& d : si::figure3_benchmarks(lib)) {
    const long long cp = sg::compute_distances(d.graph()).diameter;
    for (int c = 0; c < si::figure3_constraint_count; ++c) {
      const si::resource_set rs = si::figure3_constraint(c);
      for (const sm::meta_kind kind : sm::figure3_meta_kinds) {
        const long long len = threaded_length(d, rs, kind);
        EXPECT_GE(len, cp);
      }
    }
  }
}

TEST(Integration, FullSoftFlowEndToEnd) {
  // The complete flow the paper motivates, all inside one live state:
  //   1. threaded scheduling (soft decisions)
  //   2. unit binding falls out of the threads
  //   3. register allocation -> spill refinement
  //   4. floorplan -> wire-delay refinement
  //   5. final hard extraction (the delayed "hard decision")
  const si::resource_library lib;
  si::dfg d = si::make_ewf(lib);
  const si::resource_set rs = si::figure3_constraint(0);

  sc::threaded_graph state = sc::make_hls_state(d, rs);
  state.schedule_all(sm::meta_schedule(d.graph(), sm::meta_kind::list_priority));
  const long long after_scheduling = state.diameter();

  // Register allocation on the provisional schedule. The budget is one
  // register below demand, clamped to the exact spill feasibility floor.
  sh::schedule provisional = sh::extract_schedule(state);
  auto lifetimes = sr::compute_lifetimes(d, provisional);
  const int budget = std::max(sr::min_spillable_demand(d, lifetimes),
                              sr::max_live(lifetimes) - 1);
  for (const vertex_id v : sr::choose_spills(d, lifetimes, budget).values)
    sf::apply_spill(d, state, v);

  // Physical design on the bound, spill-refined schedule.
  sh::schedule bound = sh::extract_schedule(state);
  const sp::floorplan plan(5, 2, 3);
  const sp::wire_model model{3, 0.34};
  sf::apply_wire_insertions(d, state, sp::plan_wire_insertions(d, bound, plan, model));

  // Final hard decision.
  state.check_invariants();
  sh::schedule final_schedule = sh::extract_schedule(state);
  EXPECT_TRUE(final_schedule.complete(d));
  const auto violations = sh::validate_schedule(d, final_schedule, &rs);
  EXPECT_TRUE(violations.empty()) << violations.front();
  EXPECT_GE(final_schedule.makespan, after_scheduling);

  // Register binding on the final schedule fits the spilled budget's
  // ballpark (loads add short-lived values, so allow the budget + 2).
  const auto final_lifetimes = sr::compute_lifetimes(d, final_schedule);
  const sr::register_binding binding = sr::left_edge_allocate(final_lifetimes);
  EXPECT_EQ(binding.register_count, sr::max_live(final_lifetimes));
}

TEST(Integration, SoftRefinementParityWithHardRerun) {
  // After identical spill refinements, the incremental soft result must
  // be competitive with a from-scratch hard reschedule (within 2 cycles
  // on the paper benchmarks - the bench records exact numbers).
  const si::resource_library lib;
  for (const si::dfg& base : si::figure3_benchmarks(lib)) {
    const si::resource_set rs = si::figure3_constraint(0);

    // Soft flow.
    si::dfg soft_dfg = base;
    sc::threaded_graph state = sc::make_hls_state(soft_dfg, rs);
    state.schedule_all(sm::meta_schedule(soft_dfg.graph(), sm::meta_kind::list_priority));
    // Spill the first value with >= 1 consumer (deterministic pick).
    vertex_id victim = vertex_id::invalid();
    for (const vertex_id v : soft_dfg.graph().vertices()) {
      if (!soft_dfg.graph().succs(v).empty() &&
          soft_dfg.kind(v) != si::op_kind::store) {
        victim = v;
        break;
      }
    }
    ASSERT_TRUE(victim.valid());
    sf::apply_spill(soft_dfg, state, victim);
    const long long soft_len = state.diameter();

    // Hard flow: same refinement on a fresh copy, full list reschedule.
    si::dfg hard_dfg = base;
    sf::insert_spill_ops(hard_dfg, victim);
    const long long hard_len = sh::list_schedule(hard_dfg, rs).makespan;

    EXPECT_LE(soft_len, hard_len + 2) << base.name();
    state.check_invariants();
  }
}

TEST(Integration, LargeRandomGraphsEndToEnd) {
  // Scale check: a few hundred operations through schedule + extract +
  // validate, multiple thread tags, random meta order.
  rng rand(2024);
  sg::layered_params lp;
  lp.layers = 20;
  lp.width = 12;
  lp.edge_prob = 0.2;
  const sg::precedence_graph g = sg::layered_random(lp, rand);

  sc::threaded_graph state(g, 6);
  std::vector<vertex_id> order = g.vertices();
  rand.shuffle(order);
  state.schedule_all(order);
  EXPECT_EQ(state.scheduled_count(), g.vertex_count());
  state.check_invariants();

  const std::vector<long long> start = state.asap_start_times();
  for (const vertex_id v : g.vertices()) EXPECT_GE(start[v.value()], 0);
  EXPECT_GE(state.diameter(), sg::compute_distances(g).diameter);
}

TEST(Integration, MetaScheduleQualityOrderingSanity) {
  // The informed orders (topological, list-priority) must not lose badly
  // to the uninformed ones on the paper suite; random orders are allowed
  // to be worse but must still be correct.
  const si::resource_library lib;
  rng rand(5);
  for (const si::dfg& d : si::figure3_benchmarks(lib)) {
    const si::resource_set rs = si::figure3_constraint(0);
    const long long informed =
        std::min(threaded_length(d, rs, sm::meta_kind::topological),
                 threaded_length(d, rs, sm::meta_kind::list_priority));
    sc::threaded_graph random_state = sc::make_hls_state(d, rs);
    random_state.schedule_all(sm::random_meta_schedule(d.graph(), rand));
    EXPECT_GE(random_state.diameter(), sg::compute_distances(d.graph()).diameter);
    EXPECT_LE(informed, random_state.diameter() + 1) << d.name();
  }
}
