// backend_scenario.h - the shared "backend" benchmark scenario: the named
// paper benchmarks (HAL, AR, EWF, FIR8) scheduled by every registered
// scheduler backend under the Figure-3 "2+/-,2*" constraint, recording per
// backend the scheduling throughput (designs = points per second), the
// per-design latency and its delta against the soft scheduler, and whether
// two full passes produce bit-identical outcomes.
//
// Included by both bench/perf_harness.cpp (which embeds the block into
// BENCH_softsched.json next to the other scenarios) and
// bench/backend_harness.cpp (the focused standalone runner), so the two
// always measure the same workload. The suite is fixed - it does not scale
// with --quick - because the CI bench gate compares the soft throughput
// against the committed baseline and must compare like against like.
//
// Why this scenario exists: the paper's claim is comparative (soft
// scheduling tracks the fixed-priority baselines while staying refinable),
// so the benchmark trajectory must keep the head-to-head numbers - not
// just the soft scheduler's - from PR to PR.
#pragma once

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "hard/schedule.h"
#include "ir/benchmarks.h"
#include "sched/backend.h"
#include "util/json.h"

namespace softsched::bench {

struct backend_design_outcome {
  std::string design;
  sched::backend_outcome outcome;
  long long vs_soft = 0; ///< latency - soft latency on the same design
  bool legal = false;    ///< hard::validate_schedule found no violation
};

struct backend_suite_outcome {
  std::string name;
  std::vector<backend_design_outcome> designs;
  double best_ms = 0;  ///< fastest single suite pass in the timed window
  double total_ms = 0; ///< whole timed window (timed_passes suite passes)
  int timed_passes = 0;
  bool deterministic = false;
  bool all_legal = false;

  /// Designs scheduled per second over the whole timed window. The window
  /// is sized to tens of milliseconds (see write_backend_scenario), so the
  /// CI-gated soft throughput is not a single sub-0.1 ms timing that one
  /// context switch on a shared runner could halve.
  [[nodiscard]] double points_per_sec() const {
    return total_ms > 0 ? static_cast<double>(designs.size()) * timed_passes /
                              (total_ms / 1e3)
                        : 0.0;
  }
};

/// One timed pass of `backend` over the suite (outcomes written in suite
/// order; timing covers scheduling only, not validation). `ctx` persists
/// across passes - exactly the serve worker's steady state, which is what
/// the gated throughput must measure.
inline std::vector<sched::backend_outcome>
run_backend_pass(const sched::scheduler_backend& backend, const std::vector<ir::dfg>& suite,
                 const ir::resource_library& library, const ir::resource_set& constraint,
                 sched::run_context& ctx, double& wall_ms) {
  std::vector<sched::backend_outcome> outcomes;
  outcomes.reserve(suite.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (const ir::dfg& d : suite)
    outcomes.push_back(backend.run({d, library, constraint, {}}, ctx));
  wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                      t0)
                .count();
  return outcomes;
}

/// Emits the whole scenario as the value of an already-written "backend"
/// key. Returns false if any backend was nondeterministic across passes or
/// produced an illegal feasible schedule.
inline bool write_backend_scenario(json_writer& j) {
  const ir::resource_library library;
  const ir::resource_set constraint = ir::figure3_constraint(0); // 2+/-,2*
  std::vector<ir::dfg> suite;
  std::vector<std::string> names;
  for (const char* name : {"hal", "arf", "ewf", "fir8"}) {
    suite.push_back(ir::make_benchmark(name, library));
    names.emplace_back(name);
  }

  std::vector<backend_suite_outcome> results;
  std::vector<long long> soft_latency(suite.size(), -1);
  bool ok = true;
  for (const sched::scheduler_backend* backend : sched::registered_backends()) {
    backend_suite_outcome r;
    r.name = backend->name();
    // One persistent context per backend, reused across every pass: the
    // first pass warms the arena, the timed window then runs heap-silent -
    // the serve worker's steady state.
    sched::run_context ctx;
    // Two correctness passes (the second is the determinism witness), then
    // a timed window of enough further passes to accumulate ~100 ms for
    // the fast backends - a sub-0.1 ms single-pass timing would make the
    // gated throughput hostage to one scheduler hiccup on a CI runner.
    // fds is slow enough that one pass already exceeds the window.
    double ms_a = 0, ms_b = 0;
    const std::vector<sched::backend_outcome> pass_a =
        run_backend_pass(*backend, suite, library, constraint, ctx, ms_a);
    const std::vector<sched::backend_outcome> pass_b =
        run_backend_pass(*backend, suite, library, constraint, ctx, ms_b);
    constexpr double window_ms = 100.0;
    constexpr int max_passes = 4096;
    r.best_ms = ms_a < ms_b ? ms_a : ms_b;
    while (r.total_ms < window_ms && r.timed_passes < max_passes) {
      double ms = 0;
      (void)run_backend_pass(*backend, suite, library, constraint, ctx, ms);
      r.total_ms += ms;
      if (ms < r.best_ms) r.best_ms = ms;
      ++r.timed_passes;
    }
    r.deterministic = true;
    r.all_legal = true;
    for (std::size_t i = 0; i < suite.size(); ++i) {
      r.deterministic = r.deterministic && pass_a[i].same_outcome(pass_b[i]);
      backend_design_outcome d;
      d.design = names[i];
      d.outcome = pass_a[i];
      if (backend->name() == "soft" && d.outcome.feasible)
        soft_latency[i] = d.outcome.latency;
      d.vs_soft = d.outcome.feasible && soft_latency[i] >= 0
                      ? d.outcome.latency - soft_latency[i]
                      : 0;
      if (d.outcome.feasible) {
        d.legal =
            hard::validate_schedule(suite[i], sched::to_hard_schedule(d.outcome),
                                    &constraint)
                .empty();
        r.all_legal = r.all_legal && d.legal;
      }
      r.designs.push_back(std::move(d));
    }
    if (!r.deterministic)
      std::cerr << "backend: " << r.name << " diverged across repeat passes\n";
    if (!r.all_legal)
      std::cerr << "backend: " << r.name << " produced an illegal schedule\n";
    ok = ok && r.deterministic && r.all_legal;
    results.push_back(std::move(r));
  }

  j.begin_object();
  j.member("constraint", constraint.label());
  j.key("designs");
  j.begin_array();
  for (const std::string& name : names) j.value(name);
  j.end_array();
  j.key("per_backend");
  j.begin_object();
  for (const backend_suite_outcome& r : results) {
    j.key(r.name);
    j.begin_object();
    j.member("best_ms", r.best_ms);
    j.member("timed_passes", r.timed_passes);
    j.member("total_ms", r.total_ms);
    j.member("points_per_sec", r.points_per_sec());
    j.member("deterministic", r.deterministic);
    j.member("all_legal", r.all_legal);
    j.key("latency");
    j.begin_object();
    for (const backend_design_outcome& d : r.designs) {
      j.key(d.design);
      j.begin_object();
      j.member("feasible", d.outcome.feasible);
      j.member("states", d.outcome.latency);
      j.member("vs_soft", d.vs_soft);
      j.end_object();
    }
    j.end_object();
    j.end_object();
  }
  j.end_object();
  j.member("deterministic", ok);
  j.end_object();
  return ok;
}

} // namespace softsched::bench
