#include "util/thread_pool.h"

#include "util/check.h"

namespace softsched {

// Locking note: all queue state - the per-worker deques, the outstanding
// counter, the stop flag - is guarded by the single state_mutex_. The
// deques still implement the work-stealing *policy* (submit deals
// round-robin, a worker pops its own lane's front, a thief takes a
// victim's back), but claims are serialized: a job here is a whole
// scheduling run (milliseconds), a queue operation is nanoseconds, so the
// lock is invisible in profiles while making the accounting exact -
// outstanding_ equals lane contents plus in-flight jobs whenever the mutex
// is free, and a claim pops atomically with the decision to run, so
// cancel_pending() and a claiming worker can never race over one job.

thread_pool::thread_pool(unsigned worker_count) {
  const unsigned n = worker_count == 0 ? 1 : worker_count;
  lanes_.reserve(n);
  for (unsigned i = 0; i < n; ++i) lanes_.push_back(std::make_unique<lane>());
  workers_.reserve(n);
  try {
    for (unsigned i = 0; i < n; ++i)
      workers_.emplace_back([this, i] { worker_main(i); });
  } catch (...) {
    // A spawn failed (resource exhaustion). Joinable std::threads must be
    // joined before destruction or the process terminates, so stop and
    // join the workers that did start, then surface the original error.
    {
      std::lock_guard<std::mutex> lk(state_mutex_);
      stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread& w : workers_) w.join();
    throw;
  }
}

thread_pool::~thread_pool() {
  cancel_pending();
  {
    std::lock_guard<std::mutex> lk(state_mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void thread_pool::submit(job j) {
  SOFTSCHED_EXPECT(j != nullptr, "thread_pool::submit needs a callable job");
  {
    std::lock_guard<std::mutex> lk(state_mutex_);
    SOFTSCHED_EXPECT(!stopping_, "thread_pool::submit after shutdown began");
    lanes_[next_lane_]->jobs.push_back(std::move(j));
    next_lane_ = (next_lane_ + 1) % lanes_.size();
    ++outstanding_;
  }
  work_available_.notify_one();
}

bool thread_pool::try_pop(std::size_t self, job& out) {
  // Own lane first, oldest job first; then steal the newest job from the
  // first non-empty sibling. Caller holds state_mutex_.
  lane& own = *lanes_[self];
  if (!own.jobs.empty()) {
    out = std::move(own.jobs.front());
    own.jobs.pop_front();
    return true;
  }
  for (std::size_t i = 1; i < lanes_.size(); ++i) {
    lane& victim = *lanes_[(self + i) % lanes_.size()];
    if (!victim.jobs.empty()) {
      out = std::move(victim.jobs.back());
      victim.jobs.pop_back();
      return true;
    }
  }
  return false;
}

namespace {
// Which worker the current thread is; -1 off-pool. One pool is live at a
// time in every binary here, so a plain thread_local index suffices.
thread_local int t_worker_index = -1;
} // namespace

int thread_pool::current_worker_index() noexcept { return t_worker_index; }

void thread_pool::worker_main(std::size_t self) {
  t_worker_index = static_cast<int>(self);
  for (;;) {
    job j;
    {
      std::unique_lock<std::mutex> lk(state_mutex_);
      // The predicate claims work as a side effect: when it returns true
      // because try_pop succeeded, j holds the job and the pop happened
      // atomically with the claim (both under state_mutex_), so a
      // concurrent cancel_pending() can never drop a job a worker already
      // committed to running.
      work_available_.wait(lk, [&] { return stopping_ || try_pop(self, j); });
      if (!j) return; // stopping, and the queues are drained
    }
    try {
      j();
    } catch (...) {
      std::lock_guard<std::mutex> lk(state_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(state_mutex_);
      --outstanding_;
      if (outstanding_ == 0) idle_.notify_all();
    }
  }
}

void thread_pool::wait_idle() {
  std::unique_lock<std::mutex> lk(state_mutex_);
  idle_.wait(lk, [&] { return outstanding_ == 0; });
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

std::size_t thread_pool::cancel_pending() {
  std::size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lk(state_mutex_);
    for (auto& l : lanes_) {
      dropped += l->jobs.size();
      l->jobs.clear();
    }
    outstanding_ -= dropped;
    if (outstanding_ == 0) idle_.notify_all();
  }
  return dropped;
}

unsigned thread_pool::hardware_workers() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void parallel_for_index(thread_pool* pool, std::size_t count,
                        const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || pool->worker_count() <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  for (std::size_t i = 0; i < count; ++i)
    pool->submit([&fn, i] { fn(i); });
  pool->wait_idle();
}

} // namespace softsched
