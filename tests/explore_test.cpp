// explore_test - the design-space exploration engine and its thread pool:
// the determinism property (identical Pareto frontier and per-point
// schedules for 1 vs 8 workers on a fixed seed), grid edge cases
// (empty, singleton, infeasible points), and thread-pool lifecycle
// (shutdown with pending jobs, cancellation, error propagation).
#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "explore/dse.h"
#include "explore/grid.h"
#include "explore/pareto.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace se = softsched::explore;
namespace si = softsched::ir;
using softsched::thread_pool;

namespace {

se::grid_spec ewf_grid() {
  se::grid_spec spec;
  spec.design.bench = "ewf";
  spec.alus = {1, 4};
  spec.muls = {1, 3};
  spec.mems = {1, 1};
  spec.mul_latency = {1, 2};
  return spec; // 4 * 3 * 1 * 2 = 24 points
}

// -- determinism: the tentpole property ------------------------------------

TEST(ExploreDeterminism, EwfGridIdenticalFor1And8Jobs) {
  const se::grid_spec spec = ewf_grid();
  ASSERT_EQ(se::point_count(spec), 24u);

  se::exploration_options one;
  one.jobs = 1;
  se::exploration_options eight;
  eight.jobs = 8;
  const se::exploration_result r1 = se::run_exploration(spec, one);
  const se::exploration_result r8 = se::run_exploration(spec, eight);

  ASSERT_EQ(r1.points.size(), 24u);
  EXPECT_EQ(r1.jobs, 1u);
  EXPECT_EQ(r8.jobs, 8u);
  // Identical frontier AND identical per-point schedules (start times +
  // unit bindings), not just equal frontier sizes.
  EXPECT_EQ(r1.frontier, r8.frontier);
  for (std::size_t i = 0; i < r1.points.size(); ++i)
    EXPECT_TRUE(r1.points[i].same_schedule(r8.points[i])) << "point " << i;
  EXPECT_TRUE(r1.same_outcome(r8));
  EXPECT_FALSE(r1.frontier.empty());
}

TEST(ExploreDeterminism, RandomFamilyIdenticalFor1And8Jobs) {
  se::grid_spec spec;
  spec.design.random_vertices = 200;
  spec.design.seed = 42;
  spec.alus = {1, 2};
  spec.muls = {1, 2};
  spec.mems = {1, 2};
  const se::exploration_options one{.jobs = 1};
  const se::exploration_options eight{.jobs = 8};
  const se::exploration_result r1 = se::run_exploration(spec, one);
  const se::exploration_result r8 = se::run_exploration(spec, eight);
  EXPECT_TRUE(r1.same_outcome(r8));
  EXPECT_EQ(r1.feasible_count(), r1.points.size());
}

TEST(ExploreDeterminism, RepeatedRunsBitIdentical) {
  const se::grid_spec spec = ewf_grid();
  const se::exploration_options opt{.jobs = 3};
  const se::exploration_result a = se::run_exploration(spec, opt);
  const se::exploration_result b = se::run_exploration(spec, opt);
  EXPECT_TRUE(a.same_outcome(b));
}

// -- grid edge cases -------------------------------------------------------

TEST(ExploreGrid, EmptyGridYieldsNoPointsAndNoFrontier) {
  se::grid_spec spec = ewf_grid();
  spec.alus = {3, 2}; // hi < lo: empty axis
  EXPECT_EQ(se::point_count(spec), 0u);
  const se::exploration_result r = se::run_exploration(spec, {.jobs = 4});
  EXPECT_TRUE(r.points.empty());
  EXPECT_TRUE(r.frontier.empty());
  EXPECT_EQ(r.feasible_count(), 0u);
}

TEST(ExploreGrid, SingletonGridSchedulesTheOnePoint) {
  se::grid_spec spec;
  spec.design.bench = "hal";
  spec.alus = {2, 2};
  spec.muls = {2, 2};
  spec.mems = {1, 1};
  const se::exploration_result r = se::run_exploration(spec, {.jobs = 4});
  ASSERT_EQ(r.points.size(), 1u);
  ASSERT_TRUE(r.points[0].feasible);
  // HAL on 2 ALUs + 2 multipliers: the classic 8-state schedule.
  EXPECT_EQ(r.points[0].latency, 8);
  EXPECT_EQ(r.frontier, std::vector<int>{0});
}

TEST(ExploreGrid, InfeasibleAllocationIsReportedNotThrown) {
  se::grid_spec spec;
  spec.design.bench = "ewf"; // needs multipliers
  spec.alus = {2, 2};
  spec.muls = {0, 1}; // the 0-multiplier point is infeasible
  const se::exploration_result r = se::run_exploration(spec, {.jobs = 2});
  ASSERT_EQ(r.points.size(), 2u);
  EXPECT_FALSE(r.points[0].feasible);
  EXPECT_FALSE(r.points[0].infeasible_reason.empty());
  EXPECT_EQ(r.points[0].latency, -1);
  EXPECT_TRUE(r.points[1].feasible);
  // The infeasible point must never enter the frontier.
  EXPECT_EQ(r.frontier, std::vector<int>{1});
}

TEST(ExploreGrid, EnumerationOrderIsCanonical) {
  se::grid_spec spec = ewf_grid();
  const std::vector<se::design_point> pts = se::enumerate_grid(spec);
  ASSERT_EQ(pts.size(), 24u);
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_EQ(pts[i].index, static_cast<int>(i));
  // mul_latency is the outermost axis, mems the innermost.
  EXPECT_EQ(pts[0].mul_latency, 1);
  EXPECT_EQ(pts[12].mul_latency, 2);
  EXPECT_EQ(pts[0].resources.alus, 1);
  EXPECT_EQ(pts[0].resources.multipliers, 1);
}

TEST(ExploreGrid, RandomDesignIsReproducibleFromSeed) {
  se::design_spec spec;
  spec.random_vertices = 150;
  spec.seed = 7;
  const si::resource_library lib;
  const si::dfg a = se::build_design(spec, lib);
  const si::dfg b = se::build_design(spec, lib);
  ASSERT_EQ(a.op_count(), b.op_count());
  for (const auto v : a.graph().vertices()) {
    EXPECT_EQ(a.kind(v), b.kind(v));
    EXPECT_EQ(a.graph().preds(v).size(), b.graph().preds(v).size());
  }
}

// -- pareto reduction ------------------------------------------------------

TEST(Pareto, FrontierDropsDominatedKeepsTiesAndIgnoresInfeasible) {
  std::vector<se::objective> objs{
      {10, 20, true},  // 0: on frontier
      {10, 20, true},  // 1: exact tie with 0 - survives
      {10, 25, true},  // 2: dominated by 0 (same area, worse latency)
      {12, 18, true},  // 3: on frontier (more area, less latency)
      {14, 18, true},  // 4: dominated by 3
      {8, 15, false},  // 5: would dominate everything, but infeasible
      {15, 12, true},  // 6: on frontier
  };
  EXPECT_EQ(se::pareto_frontier(objs), (std::vector<int>{0, 1, 3, 6}));
}

TEST(Pareto, FrontierIsOrderIndependent) {
  std::vector<se::objective> objs{
      {10, 20, true}, {12, 18, true}, {15, 12, true}, {11, 30, true}};
  const std::vector<int> f = se::pareto_frontier(objs);
  std::vector<se::objective> shuffled{objs[2], objs[0], objs[3], objs[1]};
  const std::vector<int> g = se::pareto_frontier(shuffled);
  // Same member objectives, expressed against each permutation's indexing.
  ASSERT_EQ(f.size(), g.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    const se::objective& a = objs[static_cast<std::size_t>(f[i])];
    bool found = false;
    for (const int gi : g) {
      const se::objective& b = shuffled[static_cast<std::size_t>(gi)];
      found = found || (a.area == b.area && a.latency == b.latency);
    }
    EXPECT_TRUE(found);
  }
}

TEST(Pareto, AreaModelIsMonotoneInEveryUnit) {
  const long long base = se::allocation_area(si::resource_set{1, 1, 1});
  EXPECT_GT(se::allocation_area(si::resource_set{2, 1, 1}), base);
  EXPECT_GT(se::allocation_area(si::resource_set{1, 2, 1}), base);
  EXPECT_GT(se::allocation_area(si::resource_set{1, 1, 2}), base);
}

// -- thread pool lifecycle -------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedJobExactlyOnce) {
  std::atomic<int> count{0};
  thread_pool pool(4);
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForIndexCoversEveryIndex) {
  std::vector<int> hits(257, 0);
  thread_pool pool(8);
  softsched::parallel_for_index(&pool, hits.size(),
                                [&](std::size_t i) { hits[i] += 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ThreadPool, CancelPendingDropsExactlyTheUnstartedJobs) {
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> started;
  std::atomic<int> ran{0};
  thread_pool pool(1); // single worker: the blocker pins the whole pool
  pool.submit([&started, gate] {
    started.set_value();
    gate.wait();
  });
  started.get_future().wait(); // the blocker is in flight, not pending
  for (int i = 0; i < 50; ++i)
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  // The worker is parked inside the blocker, so all 50 are still queued.
  EXPECT_EQ(pool.cancel_pending(), 50u);
  release.set_value();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 0);
  // The pool stays usable after a cancellation.
  pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ShutdownWithPendingJobsDoesNotHangOrCorrupt) {
  // Exercises the destructor's cancel-pending + join path with work still
  // queued. Which of the 20 jobs run is a scheduling race by construction
  // (once the gate opens, the worker may drain some before the destructor's
  // cancel) - the exact-drop accounting is pinned deterministically by
  // CancelPendingDropsExactlyTheUnstartedJobs above; here the assertions
  // are "terminates, and every job either ran to completion or never
  // started", with ASan/UBSan watching the teardown.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> started;
  std::atomic<int> ran{0};
  {
    thread_pool pool(1);
    pool.submit([&started, gate] {
      started.set_value();
      gate.wait();
    });
    started.get_future().wait();
    for (int i = 0; i < 20; ++i)
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    release.set_value();
    // Destructor: cancels whatever has not started, joins the rest.
  }
  EXPECT_GE(ran.load(), 0);
  EXPECT_LE(ran.load(), 20);
}

TEST(ThreadPool, WaitIdleRethrowsTheFirstJobError) {
  thread_pool pool(2);
  pool.submit([] { throw std::runtime_error("job exploded"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The latched error is consumed; the pool keeps working.
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, WorkerCountIsClampedAndHardwareProbeIsPositive) {
  thread_pool zero(0);
  EXPECT_EQ(zero.worker_count(), 1u); // 0 is clamped, never "no workers"
  thread_pool three(3);
  EXPECT_EQ(three.worker_count(), 3u);
  EXPECT_GE(thread_pool::hardware_workers(), 1u);
  EXPECT_THROW(three.submit(nullptr), softsched::precondition_error);
}

} // namespace
