// arena.h - a bump/block allocator for request-scoped scratch memory.
//
// The scheduling hot path (one backend run per serve request) allocates a
// burst of short-lived vectors - state arrays, closure bitsets, worklists -
// that all die together when the run ends. An arena turns that burst into
// pointer bumps inside a few reusable blocks: allocate() is a couple of
// arithmetic instructions, and reset() retires the whole run in O(1) while
// *retaining* the blocks, so a warmed-up arena performs zero heap
// allocations per run (the steady state the memory micro-profile in
// BENCH_softsched.json gates).
//
// Ownership model (docs/DESIGN.md §8): an arena belongs to exactly one
// sched::run_context, which belongs to exactly one worker thread. Nothing
// here is thread-safe - per-worker ownership *is* the synchronization.
//
// arena_allocator<T> adapts the arena to the std::allocator interface so
// the hot structures can stay std::vector-shaped. A null-arena allocator
// falls back to operator new/delete - that heap mode is the cross-validated
// baseline (same pattern as threaded_graph::set_incremental(false)):
// results must be byte-identical either way, only cost differs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace softsched::util {

/// Byte/allocation counters of one arena. `blocks` and `block_bytes` are
/// lifetime-cumulative capacity; `allocations` and `bytes` count every
/// allocate() since construction (reset() does not clear them - they feed
/// the per-run averages the perf harness reports).
struct arena_stats {
  std::uint64_t allocations = 0; ///< allocate() calls served
  std::uint64_t bytes = 0;       ///< bytes handed out (after alignment)
  std::uint64_t resets = 0;      ///< reset() calls
  std::size_t blocks = 0;        ///< blocks currently owned
  std::size_t block_bytes = 0;   ///< total capacity of those blocks
  std::size_t peak_bytes = 0;    ///< max bytes live at any point between resets
};

/// Bump/block allocator. Blocks grow geometrically from `block_bytes`;
/// an oversize request gets a dedicated block of exactly its size. reset()
/// rewinds every block to empty without freeing it.
class arena {
public:
  static constexpr std::size_t default_block_bytes = 64 * 1024;

  explicit arena(std::size_t block_bytes = default_block_bytes);
  ~arena();

  arena(const arena&) = delete;
  arena& operator=(const arena&) = delete;

  /// Returns `bytes` bytes aligned to `align` (a power of two). Never
  /// returns nullptr; a zero-byte request yields a unique valid pointer.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align);

  /// O(1): rewinds all blocks to empty, retaining their storage for the
  /// next run. Everything previously allocated becomes invalid.
  void reset() noexcept;

  /// Frees every block (capacity drops to zero). reset() semantics plus
  /// release of the memory itself.
  void release() noexcept;

  [[nodiscard]] const arena_stats& stats() const noexcept { return stats_; }

  /// Bytes currently live (allocated since the last reset).
  [[nodiscard]] std::size_t live_bytes() const noexcept { return live_bytes_; }

private:
  struct block {
    std::unique_ptr<std::byte[]> storage;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] void* allocate_slow(std::size_t bytes, std::size_t align);

  std::vector<block> blocks_;
  std::size_t active_ = 0; ///< blocks_[0..active_) are (partially) used
  std::size_t block_bytes_ = default_block_bytes;
  /// Capacity of the next geometric block. Kept separately from the block
  /// list so an oversize dedicated block never inflates the chain.
  std::size_t next_block_bytes_ = default_block_bytes;
  std::size_t live_bytes_ = 0;
  arena_stats stats_;
};

/// std::allocator adapter over an arena. With a null arena it degrades to
/// plain operator new/delete - the heap baseline mode. Deallocation into a
/// live arena is a no-op (memory is reclaimed wholesale by reset()).
template <typename T>
class arena_allocator {
public:
  using value_type = T;
  // Containers adopt the source allocator on copy/move/swap so an
  // arena-backed vector can be moved into (or out of) heap-backed storage
  // without element-wise fixups.
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  arena_allocator() noexcept = default;
  explicit arena_allocator(arena* a) noexcept : arena_(a) {}
  template <typename U>
  arena_allocator(const arena_allocator<U>& other) noexcept : arena_(other.backing()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (arena_ != nullptr)
      return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
    // Arena memory is reclaimed by reset(), never piecemeal.
  }

  [[nodiscard]] arena* backing() const noexcept { return arena_; }

  template <typename U>
  [[nodiscard]] bool operator==(const arena_allocator<U>& rhs) const noexcept {
    return arena_ == rhs.backing();
  }

private:
  arena* arena_ = nullptr;
};

/// The vector shape of every arena-backed hot structure. Default-constructed
/// (null arena) it behaves exactly like std::vector - the heap baseline.
template <typename T>
using arena_vector = std::vector<T, arena_allocator<T>>;

} // namespace softsched::util
