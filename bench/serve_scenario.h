// serve_scenario.h - the shared "serve" benchmark scenario: a zipf-skewed
// JSONL request mix over benchmark and seeded-random design families,
// played against the batch scheduling engine twice - once against a cold
// cache, once hot - recording requests/sec for both, the cold-run hit
// rate, and whether the responses are identical across worker counts and
// cache sizes.
//
// Included by both bench/perf_harness.cpp (which embeds the block into
// BENCH_softsched.json) and bench/serve_harness.cpp (the standalone
// runner), so the two always measure the same workload. The mix is fixed -
// it does not scale with --quick - because the CI bench gate compares the
// hot throughput and hit rate against the committed baseline and must
// compare like against like.
//
// Why the skewed mix: real HLS flows (feedback-guided iterative
// scheduling, constraint sweeps) re-submit near-identical designs with
// zipf-like popularity; a content-addressed cache turns the popular head
// into pure hash-plus-lookup work, which is where the hot/cold throughput
// gap - the tentpole's measurable speed story - comes from.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/engine.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace softsched::bench {

/// The catalog: every distinct (design, allocation) pair the mix draws
/// from. 5 design families x 6 allocations = 30 schedulable combinations;
/// zipf rank follows catalog order.
inline std::vector<std::string> serve_catalog(std::uint64_t seed) {
  // Larger designs deliberately sit at popular ranks: the service story is
  // "scheduling is expensive, recognition is cheap", so the head of the
  // distribution is where caching pays.
  const std::vector<std::string> designs = {
      "\"random\":700,\"seed\":" + std::to_string(seed + 1),
      "\"bench\":\"fir64\"",
      "\"random\":300,\"seed\":" + std::to_string(seed),
      "\"bench\":\"iir16\"",
      "\"bench\":\"ewf\"",
  };
  const std::vector<std::string> allocations = {
      "\"alus\":2,\"muls\":2,\"mems\":1", "\"alus\":3,\"muls\":2,\"mems\":1",
      "\"alus\":2,\"muls\":3,\"mems\":1", "\"alus\":4,\"muls\":3,\"mems\":2",
      "\"alus\":3,\"muls\":3,\"mems\":2", "\"alus\":2,\"muls\":2,\"mems\":2",
  };
  std::vector<std::string> combos;
  combos.reserve(designs.size() * allocations.size());
  for (const std::string& d : designs)
    for (const std::string& a : allocations) combos.push_back(d + "," + a);
  return combos;
}

/// `count` JSONL request lines, catalog ranks sampled from a zipf(s = 0.9)
/// distribution. Deterministic from `seed`.
inline std::vector<std::string> make_serve_mix(std::uint64_t seed, int count) {
  const std::vector<std::string> combos = serve_catalog(seed);
  std::vector<double> cumulative(combos.size());
  double total = 0;
  for (std::size_t r = 0; r < combos.size(); ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), 0.9);
    cumulative[r] = total;
  }

  rng rand(seed ^ 0x5e77e5ULL);
  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double roll = rand.uniform() * total;
    std::size_t rank = 0;
    while (rank + 1 < combos.size() && cumulative[rank] < roll) ++rank;
    lines.push_back("{\"id\":\"q" + std::to_string(i) + "\"," + combos[rank] + "}");
  }
  return lines;
}

struct serve_run_outcome {
  serve::stream_summary summary;
  serve::cache_counters cache;
};

inline serve_run_outcome run_serve_stream(serve::engine& eng, const std::string& text) {
  std::istringstream in(text);
  std::ostringstream sink; // responses are part of the served work
  serve_run_outcome out;
  out.summary = eng.run_stream(in, sink);
  out.cache = eng.cache().counters();
  return out;
}

/// Emits the whole scenario as the value of an already-written "serve"
/// key. `jobs` = 0 picks thread_pool::hardware_workers(). Returns false
/// if any configuration's responses diverged from the serial cold run.
inline bool write_serve_scenario(json_writer& j, std::uint64_t seed, unsigned jobs = 0) {
  if (jobs == 0) jobs = thread_pool::hardware_workers();
  constexpr int request_count = 400;
  constexpr std::size_t batch_size = 32;

  const std::vector<std::string> lines = make_serve_mix(seed, request_count);
  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text += '\n';
  }

  serve::engine_options opt;
  opt.jobs = static_cast<int>(jobs);
  opt.batch_size = batch_size;
  opt.emit_schedule = false; // throughput of the service, not of array printing

  // Determinism: responses must be identical payload-for-payload across
  // worker counts and cache sizes (including a cache too small to hold
  // anything, which forces recomputation instead of hits).
  bool deterministic = true;
  {
    serve::engine_options serial = opt;
    serial.jobs = 1;
    serve::engine reference(serial);
    serve::engine parallel_engine(opt);
    serve::engine_options tiny = opt;
    tiny.cache_bytes = 1 << 14;
    serve::engine tiny_cache(tiny);

    std::istringstream in_a(text), in_b(text), in_c(text);
    const std::vector<serve::response> ref = reference.run_collect(in_a);
    const std::vector<serve::response> par = parallel_engine.run_collect(in_b);
    const std::vector<serve::response> tin = tiny_cache.run_collect(in_c);
    deterministic = ref.size() == par.size() && ref.size() == tin.size();
    for (std::size_t i = 0; deterministic && i < ref.size(); ++i)
      deterministic = ref[i].same_payload(par[i]) && ref[i].same_payload(tin[i]);
    if (!deterministic)
      std::cerr << "serve: responses diverged across jobs/cache configurations\n";
  }

  // The measured runs: one engine, cold stream then hot stream.
  serve::engine eng(opt);
  const serve_run_outcome cold = run_serve_stream(eng, text);
  const serve_run_outcome hot = run_serve_stream(eng, text);

  const double rps_cold = cold.summary.requests_per_sec();
  const double rps_hot = hot.summary.requests_per_sec();

  j.begin_object();
  j.member("requests", static_cast<long long>(request_count));
  j.member("catalog", serve_catalog(seed).size());
  j.member("batch", batch_size);
  j.member("jobs", static_cast<unsigned long long>(jobs));
  j.member("unique_scheduled", cold.summary.counters.computed);
  j.member("cold_ms", cold.summary.wall_ms);
  j.member("hot_ms", hot.summary.wall_ms);
  j.member("requests_per_sec_cold", rps_cold);
  j.member("requests_per_sec_hot", rps_hot);
  j.member("speedup_hot_over_cold", rps_cold > 0 ? rps_hot / rps_cold : 0.0);
  j.member("hit_rate", cold.summary.counters.hit_rate());
  j.member("hit_rate_hot", hot.summary.counters.hit_rate());
  j.member("deterministic", deterministic);
  j.key("cache");
  j.begin_object();
  j.member("hits", hot.cache.hits);
  j.member("misses", hot.cache.misses);
  j.member("insertions", hot.cache.insertions);
  j.member("evictions", hot.cache.evictions);
  j.member("entries", hot.cache.entries);
  j.member("bytes", hot.cache.bytes);
  j.end_object();
  j.end_object();
  return deterministic;
}

} // namespace softsched::bench
