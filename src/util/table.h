// table.h - minimal ASCII table writer used by the benchmark harnesses to
// print the paper's tables (Figure 3 etc.) in a fixed, diffable format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace softsched {

/// Column-aligned ASCII table. Rows are added as vectors of cells; the
/// writer pads every column to its widest cell. A separator row can be
/// inserted between logical groups (e.g. between benchmarks in Figure 3).
class table {
public:
  /// Sets the header row. Column count of all later rows must match.
  void set_header(std::vector<std::string> cells);

  /// Appends a data row. Throws precondition_error on column mismatch once
  /// a header has been set.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator at this position.
  void add_separator();

  /// Renders the table.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

private:
  struct row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<row> rows_;
};

/// Convenience: format an integer cell.
[[nodiscard]] std::string cell(long long value);

/// Convenience: format a double with the given precision.
[[nodiscard]] std::string cell(double value, int precision);

} // namespace softsched
