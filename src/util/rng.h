// rng.h - deterministic pseudo-random number generation for tests, benches
// and workload generators. All randomness in the repository flows through
// this class so results are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <vector>

namespace softsched {

/// SplitMix64-seeded xoshiro256** generator. Deterministic across platforms
/// (unlike std::mt19937 + std::uniform_int_distribution, whose mapping is
/// implementation-defined).
class rng {
public:
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli draw with probability p of returning true.
  bool chance(double p) noexcept;

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

private:
  std::uint64_t state_[4];
};

} // namespace softsched
