// transport.h - the framing layer of the resident scheduling daemon
// (`softsched_cli --serve`). One frame carries one JSONL payload in either
// direction:
//
//   <decimal byte count>\n<payload bytes>\n
//
// The count covers exactly the payload (not the terminating newline), so a
// stream of single-line JSON payloads stays line-structured - length lines
// and payload lines alternate, and shell tooling (`awk 'NR%2==0'`) can
// recover the payloads - while payloads containing embedded newlines
// (inline multi-line `dfg` uploads) remain unambiguous, because the reader
// consumes by count, never by scanning for a delimiter.
//
// The codec is transport-agnostic on purpose: it reads std::istream and
// writes std::ostream, so the same framing serves stdio today and a socket
// streambuf later without touching the daemon. Hostile input never throws
// and never desynchronizes silently - a malformed length, an oversize
// frame, or an EOF mid-frame comes back as frame_status::error with a
// diagnostic, and the daemon's policy (emit one transport-error response,
// stop reading, drain) is pinned in tests/daemon_test.cpp.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

namespace softsched::serve {

/// Transport bounds. The frame cap exists for admission control at the
/// byte level: a client must not be able to make the daemon buffer an
/// unbounded payload before the request queue ever sees it.
struct frame_limits {
  std::size_t max_frame_bytes = 8u << 20; ///< largest accepted payload
};

enum class frame_status {
  ok,   ///< one complete frame read
  eof,  ///< clean end of stream (EOF exactly at a frame boundary)
  error ///< malformed input; `error` holds the diagnostic
};

/// Result of one read_frame call.
struct frame_read {
  frame_status status = frame_status::eof;
  std::string payload; ///< valid iff status == ok
  std::string error;   ///< non-empty iff status == error
};

/// Reads one frame. Anything but a well-formed `<count>\n<payload>\n`
/// whose count is within `limits` is an error: a non-digit or empty length
/// line, a length above max_frame_bytes (rejected *before* buffering any
/// payload), EOF inside the length line, EOF before `count` payload bytes
/// arrived (truncated frame), or a missing frame terminator.
[[nodiscard]] frame_read read_frame(std::istream& in, const frame_limits& limits = {});

/// Writes `payload` as one frame (length line, payload bytes, terminator)
/// and flushes, so a single-request client sees its response without
/// waiting for the daemon's output buffer to fill.
void write_frame(std::ostream& out, std::string_view payload);

} // namespace softsched::serve
