// wire_delay_eco - the paper's deep-submicron coupling scenario
// (Section 1, Figure 1 (d)): interconnect delay is only known after
// place & route, long after scheduling. The soft flow absorbs it as an
// engineering change order (ECO):
//
//   1. soft-schedule the AR filter; unit binding = the threads,
//   2. "place" the datapath with the grid floorplanner,
//   3. estimate wire delays for every cross-unit transfer,
//   4. inject wire-delay vertices into the live threaded schedule,
//   5. extract and validate; compare against a pessimistic-margin flow.
//
// Build & run:  ./build/examples/wire_delay_eco
#include <iostream>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "hard/extract.h"
#include "hard/list_scheduler.h"
#include "ir/benchmarks.h"
#include "meta/meta_schedule.h"
#include "phys/floorplan.h"
#include "phys/wire_model.h"
#include "refine/refinement.h"

namespace si = softsched::ir;
namespace sc = softsched::core;
namespace sh = softsched::hard;
namespace sm = softsched::meta;
namespace sp = softsched::phys;
namespace sf = softsched::refine;

int main() {
  const si::resource_library library;
  si::dfg arf = si::make_arf(library);
  const si::resource_set resources{2, 2, 1};

  // 1. Soft schedule. Each thread is one functional unit, so the state
  // already fixes which unit produces and consumes every value.
  sc::threaded_graph state = sc::make_hls_state(arf, resources);
  state.schedule_all(sm::meta_schedule(arf.graph(), sm::meta_kind::list_priority));
  std::cout << "AR soft schedule (pre-layout): " << state.diameter() << " states\n";

  // 2. Physical design, simulated: spread the 5 unit blocks on a coarse
  // grid (pitch 4 models a routing-hungry die).
  const sh::schedule bound = sh::extract_schedule(state);
  const sp::floorplan plan(5, 2, 4);
  std::cout << "floorplan: " << plan.unit_count() << " blocks, die diameter "
            << plan.diameter() << " units\n";

  // 3. Which transfers are now too long to fit in the producer's cycle?
  const sp::wire_model model{3, 0.5};
  const auto insertions = sp::plan_wire_insertions(arf, bound, plan, model);
  std::cout << insertions.size() << " transfer(s) need wire-delay vertices:\n";
  for (const auto& w : insertions) {
    std::cout << "  " << arf.graph().name(w.from) << " -> " << arf.graph().name(w.to)
              << "  (unit " << bound.unit[w.from.value()] << " -> unit "
              << bound.unit[w.to.value()] << ", +" << w.delay << " cycle(s))\n";
  }

  // 4. The ECO: each wire becomes a dedicated-thread vertex scheduled
  // online into the existing state - the committed soft decisions and
  // their slack absorb what they can.
  const sf::refinement_report report = sf::apply_wire_insertions(arf, state, insertions);
  std::cout << "post-layout soft schedule: " << report.diameter_before << " -> "
            << report.diameter_after << " states\n";

  // 5. Validate, and contrast with the pessimistic traditional answer:
  // assume worst-case wire delay on *every* transfer up front.
  sh::schedule refined = sh::extract_schedule(state);
  const auto violations = sh::validate_schedule(arf, refined, &resources);
  if (!violations.empty()) {
    std::cerr << "refined schedule INVALID: " << violations.front() << '\n';
    return 1;
  }

  si::dfg pessimist = si::make_arf(library);
  const int worst = model.wire_cycles(plan.diameter());
  std::vector<std::pair<softsched::graph::vertex_id, softsched::graph::vertex_id>> edges;
  for (const auto v : pessimist.graph().vertices())
    for (const auto s : pessimist.graph().succs(v)) edges.emplace_back(v, s);
  for (const auto& [from, to] : edges) sf::insert_wire_op(pessimist, from, to, worst);
  std::cout << "\npessimistic-margin flow (worst-case wire on every edge): "
            << sh::list_schedule(pessimist, resources).makespan
            << " states vs soft ECO: " << state.diameter() << " states\n";
  return 0;
}
