// wire_model.h - interconnect delay estimation over a floorplan, and the
// planner that decides which data transfers of a bound schedule need a
// wire-delay vertex inserted ("if the register ... is placed far enough
// from the functional unit which uses its value, additional node
// representing the wire delay has to be introduced").
#pragma once

#include <vector>

#include "hard/schedule.h"
#include "ir/dfg.h"
#include "phys/floorplan.h"

namespace softsched::phys {

using graph::vertex_id;

/// Linear wire-delay model: transfers over Manhattan distance
/// <= free_distance are absorbed in the producer's cycle; longer ones take
/// ceil((distance - free_distance) * cycles_per_unit) extra cycles.
struct wire_model {
  int free_distance = 2;
  double cycles_per_unit = 0.5;

  [[nodiscard]] int wire_cycles(int distance) const;
};

/// One producer -> consumer transfer that needs a wire-delay vertex.
struct wire_insertion {
  vertex_id from;
  vertex_id to;
  int delay = 1;
};

/// Scans every data edge of a *bound* schedule (unit binding = thread
/// index, e.g. from hard::extract_schedule) and returns the transfers
/// whose source/destination blocks are far enough apart to need wire
/// vertices. Deterministic edge order (by vertex id).
[[nodiscard]] std::vector<wire_insertion> plan_wire_insertions(const ir::dfg& d,
                                                               const hard::schedule& bound,
                                                               const floorplan& plan,
                                                               const wire_model& model);

} // namespace softsched::phys
