// ir_test.cpp - unit tests for the HLS IR: operation kinds, resource
// library/constraints, DFG container, and the canonical benchmark graphs
// (op counts and critical paths under the standard delay model).
#include <gtest/gtest.h>

#include "graph/distances.h"
#include "ir/benchmarks.h"
#include "ir/dfg.h"
#include "ir/operation.h"
#include "ir/resource.h"
#include "util/check.h"

namespace si = softsched::ir;
namespace sg = softsched::graph;
using sg::vertex_id;

TEST(Operation, MnemonicsAndNames) {
  EXPECT_EQ(si::mnemonic(si::op_kind::add), "+");
  EXPECT_EQ(si::mnemonic(si::op_kind::mul), "*");
  EXPECT_EQ(si::mnemonic(si::op_kind::load), "ld");
  EXPECT_EQ(si::mnemonic(si::op_kind::store), "st");
  EXPECT_EQ(si::mnemonic(si::op_kind::wire), "wd");
  EXPECT_EQ(si::kind_name(si::op_kind::compare), "compare");
}

TEST(Resource, ClassMapping) {
  EXPECT_EQ(si::class_of(si::op_kind::add), si::resource_class::alu);
  EXPECT_EQ(si::class_of(si::op_kind::sub), si::resource_class::alu);
  EXPECT_EQ(si::class_of(si::op_kind::compare), si::resource_class::alu);
  EXPECT_EQ(si::class_of(si::op_kind::move), si::resource_class::alu);
  EXPECT_EQ(si::class_of(si::op_kind::mul), si::resource_class::multiplier);
  EXPECT_EQ(si::class_of(si::op_kind::load), si::resource_class::memory_port);
  EXPECT_EQ(si::class_of(si::op_kind::store), si::resource_class::memory_port);
  EXPECT_EQ(si::class_of(si::op_kind::wire), si::resource_class::wire);
}

TEST(Resource, DefaultLatencies) {
  const si::resource_library lib;
  EXPECT_EQ(lib.latency(si::op_kind::add), 1);
  EXPECT_EQ(lib.latency(si::op_kind::mul), 2); // non-pipelined 2-cycle multiplier
  EXPECT_EQ(lib.latency(si::op_kind::compare), 1);
}

TEST(Resource, LatencyOverride) {
  si::resource_library lib;
  lib.set_latency(si::op_kind::mul, 3);
  EXPECT_EQ(lib.latency(si::op_kind::mul), 3);
  EXPECT_THROW(lib.set_latency(si::op_kind::mul, 0), softsched::precondition_error);
}

TEST(Resource, SetLabelsMatchPaperColumns) {
  EXPECT_EQ(si::figure3_constraint(0).label(), "2+/-,2*");
  EXPECT_EQ(si::figure3_constraint(1).label(), "4+/-,4*");
  EXPECT_EQ(si::figure3_constraint(2).label(), "2+/-,1*");
  EXPECT_THROW((void)si::figure3_constraint(3), softsched::precondition_error);
}

TEST(Resource, CountByClass) {
  const si::resource_set rs{3, 2, 1};
  EXPECT_EQ(rs.count(si::resource_class::alu), 3);
  EXPECT_EQ(rs.count(si::resource_class::multiplier), 2);
  EXPECT_EQ(rs.count(si::resource_class::memory_port), 1);
  EXPECT_EQ(rs.count(si::resource_class::wire), 0); // dedicated, never pooled
}

TEST(Dfg, AddOpWiresDependences) {
  const si::resource_library lib;
  si::dfg d("t", lib);
  const vertex_id a = d.add_op(si::op_kind::mul, {});
  const vertex_id b = d.add_op(si::op_kind::add, {a});
  EXPECT_TRUE(d.graph().has_edge(a, b));
  EXPECT_EQ(d.graph().delay(a), 2);
  EXPECT_EQ(d.graph().delay(b), 1);
  EXPECT_EQ(d.kind(a), si::op_kind::mul);
  EXPECT_EQ(d.unit_class(b), si::resource_class::alu);
}

TEST(Dfg, WireNeedsAddWire) {
  const si::resource_library lib;
  si::dfg d("t", lib);
  EXPECT_THROW((void)d.add_op(si::op_kind::wire, {}), softsched::precondition_error);
  const vertex_id w = d.add_wire(3, {});
  EXPECT_EQ(d.graph().delay(w), 3);
  EXPECT_THROW((void)d.add_wire(0, {}), softsched::precondition_error);
}

TEST(Dfg, CountKindsAndClasses) {
  const si::resource_library lib;
  const si::dfg d = si::make_hal(lib);
  EXPECT_EQ(d.count_kind(si::op_kind::mul), 6u);
  EXPECT_EQ(d.count_kind(si::op_kind::sub), 2u);
  EXPECT_EQ(d.count_kind(si::op_kind::add), 2u);
  EXPECT_EQ(d.count_kind(si::op_kind::compare), 1u);
  EXPECT_EQ(d.count_class(si::resource_class::alu), 5u);
  EXPECT_EQ(d.count_class(si::resource_class::multiplier), 6u);
}

TEST(Dfg, FindOpByName) {
  const si::resource_library lib;
  const si::dfg d = si::make_hal(lib);
  EXPECT_EQ(d.graph().name(si::find_op(d, "m4")), "m4");
  EXPECT_THROW((void)si::find_op(d, "nonexistent"), softsched::precondition_error);
}

// --- benchmark structure: op counts and critical paths match the
// --- standard-suite figures documented in docs/DESIGN.md §2.

TEST(Benchmarks, HalShape) {
  const si::resource_library lib;
  const si::dfg d = si::make_hal(lib);
  EXPECT_EQ(d.op_count(), 11u);
  // Critical path m1/m2 -> m4 -> s1 -> s2: 2 + 2 + 1 + 1 = 6.
  EXPECT_EQ(sg::compute_distances(d.graph()).diameter, 6);
}

TEST(Benchmarks, ArfShape) {
  const si::resource_library lib;
  const si::dfg d = si::make_arf(lib);
  EXPECT_EQ(d.op_count(), 28u);
  EXPECT_EQ(d.count_kind(si::op_kind::mul), 16u);
  EXPECT_EQ(d.count_kind(si::op_kind::add), 12u);
  // mul + add + mul + add + add + add = 2+1+2+1+1+1 = 8.
  EXPECT_EQ(sg::compute_distances(d.graph()).diameter, 8);
}

TEST(Benchmarks, EwfShape) {
  const si::resource_library lib;
  const si::dfg d = si::make_ewf(lib);
  EXPECT_EQ(d.op_count(), 34u);
  EXPECT_EQ(d.count_kind(si::op_kind::add), 26u);
  EXPECT_EQ(d.count_kind(si::op_kind::mul), 8u);
  // The classic EWF minimum latency under add=1/mul=2.
  EXPECT_EQ(sg::compute_distances(d.graph()).diameter, 17);
}

TEST(Benchmarks, FirShape) {
  const si::resource_library lib;
  const si::dfg d = si::make_fir8(lib);
  EXPECT_EQ(d.op_count(), 15u);
  EXPECT_EQ(d.count_kind(si::op_kind::mul), 8u);
  EXPECT_EQ(d.count_kind(si::op_kind::add), 7u);
  // mul + 3 tree levels = 2 + 3 = 5.
  EXPECT_EQ(sg::compute_distances(d.graph()).diameter, 5);
}

TEST(Benchmarks, FirParameterized) {
  const si::resource_library lib;
  for (const int taps : {1, 2, 3, 5, 16, 33}) {
    const si::dfg d = si::make_fir(lib, taps);
    EXPECT_EQ(d.count_kind(si::op_kind::mul), static_cast<std::size_t>(taps));
    EXPECT_EQ(d.count_kind(si::op_kind::add), static_cast<std::size_t>(taps - 1));
    EXPECT_NO_THROW(d.validate());
  }
  EXPECT_THROW((void)si::make_fir(lib, 0), softsched::precondition_error);
}

TEST(Benchmarks, IirCascadeScales) {
  const si::resource_library lib;
  const si::dfg d = si::make_iir_cascade(lib, 4);
  EXPECT_EQ(d.op_count(), 4u * 8u);
  EXPECT_EQ(d.count_kind(si::op_kind::mul), 16u);
  EXPECT_NO_THROW(d.validate());
  // Sections chain: the critical path grows with the section count.
  const si::dfg d1 = si::make_iir_cascade(lib, 1);
  EXPECT_GT(sg::compute_distances(d.graph()).diameter,
            sg::compute_distances(d1.graph()).diameter);
}

TEST(Benchmarks, Figure1Shape) {
  const si::resource_library lib;
  const si::dfg d = si::make_figure1(lib);
  EXPECT_EQ(d.op_count(), 7u);
  EXPECT_EQ(sg::compute_distances(d.graph()).diameter, 5);
  // Edge set from the figure.
  const auto& g = d.graph();
  auto v = [&d](const char* name) { return si::find_op(d, name); };
  EXPECT_TRUE(g.has_edge(v("1"), v("2")));
  EXPECT_TRUE(g.has_edge(v("1"), v("3")));
  EXPECT_TRUE(g.has_edge(v("2"), v("4")));
  EXPECT_TRUE(g.has_edge(v("3"), v("6")));
  EXPECT_TRUE(g.has_edge(v("4"), v("6")));
  EXPECT_TRUE(g.has_edge(v("6"), v("7")));
  EXPECT_TRUE(g.has_edge(v("5"), v("7")));
  EXPECT_EQ(g.edge_count(), 7u);
}

TEST(Benchmarks, Figure3SuiteOrder) {
  const si::resource_library lib;
  const auto suite = si::figure3_benchmarks(lib);
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0].name(), "HAL");
  EXPECT_EQ(suite[1].name(), "AR");
  EXPECT_EQ(suite[2].name(), "EF");
  EXPECT_EQ(suite[3].name(), "FIR8");
}
