// serve_harness - focused runner for the batch-scheduling-service
// scenario: the same zipf-skewed cold/hot request mix perf_harness embeds
// into BENCH_softsched.json (see bench/serve_scenario.h), as a standalone
// document for quick throughput/hit-rate checks without re-running the
// full perf suite.
//
// Usage: serve_harness [--out PATH] [--seed N] [--jobs N]
//   --jobs 0 (default) uses every hardware thread.
// Exits nonzero if responses diverged across worker counts / cache sizes.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "serve_scenario.h"

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serve.json";
  std::uint64_t seed = 20260729;
  unsigned jobs = 0;
  // stoull/stoul throw on non-numeric values; a bad flag value must print
  // usage like any other bad flag, not std::terminate.
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--out" && i + 1 < argc) {
        out_path = argv[++i];
      } else if (arg == "--seed" && i + 1 < argc) {
        seed = std::stoull(argv[++i]);
      } else if (arg == "--jobs" && i + 1 < argc) {
        jobs = static_cast<unsigned>(std::stoul(argv[++i]));
      } else {
        throw std::invalid_argument(arg);
      }
    }
  } catch (const std::exception&) {
    std::cerr << "usage: serve_harness [--out PATH] [--seed N] [--jobs N]\n";
    return 2;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }

  softsched::json_writer j(out);
  j.begin_object();
  j.member("schema", "softsched-serve-v1");
  j.member("seed", seed);
  j.key("serve");
  const bool ok = softsched::bench::write_serve_scenario(j, seed, jobs);
  j.end_object();
  out << '\n';
  if (!j.done() || !out) {
    std::cerr << "failed to emit well-formed JSON to " << out_path << "\n";
    return 1;
  }
  std::cerr << "serve_harness: wrote " << out_path << "\n";
  return ok ? 0 : 1;
}
