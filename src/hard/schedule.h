// schedule.h - the *hard* schedule: the exact operation -> time-step
// mapping traditional HLS produces directly, and which soft scheduling
// delays until all information is in (Section 3). Used as the output
// container of the baselines (list, force-directed) and of hard-schedule
// extraction from a threaded state.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "ir/dfg.h"

namespace softsched::hard {

using graph::vertex_id;

/// Start cycle per operation (-1 = unscheduled) plus an optional unit
/// binding per operation (-1 = unbound). An operation with delay d
/// occupies cycles [start, start + d).
struct schedule {
  std::vector<long long> start;
  std::vector<int> unit; ///< functional-unit instance (thread index) or -1
  long long makespan = 0;

  [[nodiscard]] bool complete(const ir::dfg& d) const;
};

/// Checks precedence feasibility and, when `resources` is non-null,
/// class-wise concurrency limits (non-pipelined units; wire ops are
/// dedicated and exempt). Returns human-readable violations; empty means
/// the schedule is valid.
[[nodiscard]] std::vector<std::string> validate_schedule(const ir::dfg& d,
                                                         const schedule& s,
                                                         const ir::resource_set* resources);

/// Peak number of simultaneously busy units of a class.
[[nodiscard]] int peak_usage(const ir::dfg& d, const schedule& s, ir::resource_class cls);

/// Per-cycle busy-unit counts for a class, length = makespan.
[[nodiscard]] std::vector<int> usage_profile(const ir::dfg& d, const schedule& s,
                                             ir::resource_class cls);

/// ASCII Gantt chart: one row per operation ordered by start cycle, showing
/// the occupied interval - handy in the examples and for debugging.
void write_gantt(std::ostream& os, const ir::dfg& d, const schedule& s);

} // namespace softsched::hard
