// persist_harness - focused runner for the persistent-cache scenario:
// cold-populate a disk tier, warm-restart a fresh engine over it (disk
// hits, recovery-scan time), then serve through an injected disk outage -
// the same block perf_harness embeds into BENCH_softsched.json (see
// bench/persist_scenario.h). The CI persist job runs it under the
// sanitizer matrix.
//
// Usage: persist_harness [--quick] [--out PATH] [--seed N] [--jobs N]
//   --jobs 0 (default) uses every hardware thread. --quick is accepted for
//   CI-invocation symmetry with perf_harness but changes nothing: the mix
//   is fixed so the gate always compares like against like.
// Exits nonzero when the scenario's own gate fails.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "persist_scenario.h"

int main(int argc, char** argv) {
  std::string out_path = "BENCH_persist.json";
  std::uint64_t seed = 20260729;
  unsigned jobs = 0;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        // accepted, no effect: fixed mix (see header comment)
      } else if (arg == "--out" && i + 1 < argc) {
        out_path = argv[++i];
      } else if (arg == "--seed" && i + 1 < argc) {
        seed = std::stoull(argv[++i]);
      } else if (arg == "--jobs" && i + 1 < argc) {
        jobs = static_cast<unsigned>(std::stoul(argv[++i]));
      } else {
        throw std::invalid_argument(arg);
      }
    }
  } catch (const std::exception&) {
    std::cerr << "usage: persist_harness [--quick] [--out PATH] [--seed N] [--jobs N]\n";
    return 2;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }

  softsched::json_writer j(out);
  j.begin_object();
  j.member("schema", "softsched-persist-v1");
  j.member("seed", seed);
  j.key("persist");
  const bool ok = softsched::bench::write_persist_scenario(j, seed, jobs);
  j.end_object();
  out << '\n';
  if (!j.done() || !out) {
    std::cerr << "failed to emit well-formed JSON to " << out_path << "\n";
    return 1;
  }
  std::cerr << "persist_harness: wrote " << out_path << (ok ? "" : " (GATE FAILED)")
            << "\n";
  return ok ? 0 : 1;
}
