// metrics.h - live service metrics for the resident scheduling daemon: a
// lock-light latency histogram (per-bucket atomic counters, no mutex on
// the record path) and the stats snapshot the `{"op":"stats"}` request
// exposes.
//
// The histogram is logarithmic: 8 buckets per octave (bucket bounds grow
// by 2^(1/8) ~ 1.09x), from 1 microsecond to ~4.5 minutes. record() is one
// relaxed fetch_add - workers never contend on a lock to report a latency,
// which is what keeps tail-latency measurement from perturbing the tail it
// measures. percentile() scans the (small, fixed) bucket array and returns
// the *upper bound* of the bucket holding the requested rank, so it never
// under-reports: the returned value is >= the exact order statistic and
// overshoots it by at most one bucket ratio (~9.1%). That bound is pinned
// against a sorted-vector oracle in tests/daemon_test.cpp.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace softsched::serve {

/// Lock-light log-bucketed latency histogram (milliseconds).
class latency_histogram {
public:
  static constexpr int buckets_per_octave = 8;
  static constexpr int bucket_count = buckets_per_octave * 28; ///< 1us .. ~268s
  static constexpr double floor_ms = 1e-3;

  /// Worst-case relative overshoot of percentile() vs the exact order
  /// statistic (one bucket ratio): 2^(1/8) - 1.
  [[nodiscard]] static double relative_error() noexcept;

  /// Records one latency. Negative/zero/subsample values land in the
  /// bottom bucket; values beyond the range land in the top one. Wait-free
  /// (one relaxed atomic increment).
  void record(double ms) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept;

  /// Upper bound of the bucket containing the p-th percentile (nearest
  /// rank, p in [0, 100]); 0 when nothing was recorded. Concurrent
  /// record() calls may or may not be included - the snapshot is
  /// monotone-consistent, not atomic across buckets, which is fine for
  /// monitoring counters.
  [[nodiscard]] double percentile(double p) const noexcept;

  /// Upper bound of a bucket (exposed for tests and bucket introspection).
  [[nodiscard]] static double bucket_upper_bound(int index) noexcept;
  [[nodiscard]] static int bucket_of(double ms) noexcept;

private:
  std::array<std::atomic<std::uint64_t>, bucket_count> counts_{};
};

/// One consistent-enough snapshot of the resident service's live counters:
/// the payload of a `{"op":"stats"}` response (docs/SERVING.md). Every
/// admitted request ends in exactly one of errors / computed / cache_hits
/// / deduped once completed.
struct service_stats {
  std::uint64_t submitted = 0;  ///< admitted + overloaded
  std::uint64_t admitted = 0;   ///< passed admission control
  std::uint64_t overloaded = 0; ///< shed at admission (queue full)
  std::uint64_t completed = 0;  ///< admitted requests fully responded
  std::uint64_t errors = 0;     ///< parse/build/injected failures
  std::uint64_t computed = 0;   ///< ran a scheduler backend
  std::uint64_t cache_hits = 0; ///< served from the schedule cache
  std::uint64_t deduped = 0;    ///< coalesced onto an in-flight twin
  std::size_t queue_depth = 0;      ///< admitted - completed right now
  std::size_t peak_queue_depth = 0; ///< boundedness witness (<= queue capacity)
  double uptime_ms = 0;
  double qps = 0;     ///< completed / uptime
  double p50_ms = 0;  ///< service latency percentiles (admission -> response)
  double p95_ms = 0;
  double p99_ms = 0;
  double hit_rate = 0; ///< (cache_hits + deduped) / completed-without-error

  // Persistent-tier counters (serve/diskcache.h); all zero when the disk
  // tier is off. disk_enabled distinguishes "off" from "on but idle".
  bool disk_enabled = false;
  bool disk_degraded = false;    ///< disk tier hit an I/O error; RAM-only now
  std::uint64_t disk_hits = 0;   ///< RAM misses served from disk
  std::uint64_t disk_misses = 0;
  std::uint64_t disk_writes = 0; ///< records persisted
  std::uint64_t disk_evictions = 0;
  std::uint64_t disk_corrupt_dropped = 0; ///< invalid records quarantined
  std::uint64_t disk_io_errors = 0;
  std::uint64_t disk_queue_dropped = 0; ///< write-behinds shed (queue full)
  std::uint64_t disk_flushed = 0;       ///< write-behinds drained to disk
  std::size_t disk_entries = 0;
  std::size_t disk_bytes = 0;
  double disk_recovery_scan_ms = 0;       ///< open-time directory scan
  std::uint64_t disk_recovered_entries = 0; ///< records indexed at open
};

} // namespace softsched::serve
