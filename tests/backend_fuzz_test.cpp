// backend_fuzz_test.cpp - the differential cross-backend fuzz oracle.
//
// Four backends share one run(run_request, run_context&) contract and one
// legality checker; none of them should be trusted per-heuristic. This
// suite drives seeded graph::layered_for_size DFG families (the same
// generator behind `random<N>` designs in explore/serve) across an
// allocation grid and every registered backend, and checks the properties
// that hold by construction rather than by tuning:
//
//   * every feasible schedule passes hard::validate_schedule (precedence +
//     class-wise concurrency), start/unit arrays are fully populated, and
//     the latency is bracketed by the critical path and an upper bound (the
//     serial bound, or the requested budget for time-constrained fds);
//   * infeasible outcomes carry a reason and never throw;
//   * repeat runs are bit-for-bit identical per backend (same_outcome),
//     including across a reused context;
//   * cross-backend: soft never strays past 2x the hard list scheduler (a
//     serializing regression trips this on any wide design), and sdc-iter -
//     whose base run IS the soft kernel - never exceeds soft's latency.
//
// The paper's one-state Figure 3 envelope (soft <= list + 1) is pinned on
// the named benchmarks in sched_test; it is NOT a property of arbitrary
// layered families - a 1000-design sweep shows gaps up to 16 states
// (ratio <= 1.31x), so the fuzz oracle pins the 2x sanity envelope instead.
//
// Every failure message leads with the reproducing (seed, vertices,
// edge_prob, allocation) tuple. SOFTSCHED_FUZZ_DESIGNS scales the sweep:
// the tier-1 default keeps ctest fast; the nightly storm leg runs 1000
// designs under ASan/UBSan.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "explore/grid.h"
#include "graph/distances.h"
#include "hard/schedule.h"
#include "ir/dfg.h"
#include "ir/resource.h"
#include "sched/backend.h"
#include "util/check.h"

namespace ss = softsched::sched;
namespace se = softsched::explore;
namespace sh = softsched::hard;
namespace si = softsched::ir;
namespace sg = softsched::graph;

namespace {

/// How many random designs the sweep draws. Tier-1 stays small enough for
/// ctest; the nightly storm sets SOFTSCHED_FUZZ_DESIGNS=1000.
int fuzz_designs() {
  if (const char* env = std::getenv("SOFTSCHED_FUZZ_DESIGNS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 24;
}

struct fuzz_case {
  std::uint64_t seed;
  int vertices;
  double edge_prob;
};

/// The DFG family: explore's seeded layered random designs (shape from
/// graph::layered_for_size, kinds from the fixed explore mix), sized and
/// wired from the case alone - the reproducing tuple rebuilds the graph
/// exactly.
si::dfg build_case(const fuzz_case& c, const si::resource_library& lib) {
  se::design_spec spec;
  spec.random_vertices = c.vertices;
  spec.random_edge_prob = c.edge_prob;
  spec.seed = c.seed;
  return se::build_design(spec, lib);
}

std::string repro(const fuzz_case& c, const si::resource_set& rs) {
  return "repro: seed=" + std::to_string(c.seed) +
         " vertices=" + std::to_string(c.vertices) +
         " edge_prob=" + std::to_string(c.edge_prob) + " resources " +
         rs.label();
}

long long serial_bound(const si::dfg& d) {
  long long total = 0;
  for (const sg::vertex_id v : d.graph().vertices()) total += d.graph().delay(v);
  return total;
}

/// The design sweep: deterministic from the base seed, cycling sizes and
/// densities so one run covers chains, diamonds and wide layers.
std::vector<fuzz_case> fuzz_cases() {
  constexpr int sizes[] = {8, 20, 45, 90, 160};
  constexpr double probs[] = {0.10, 0.25, 0.45};
  std::vector<fuzz_case> cases;
  const int n = fuzz_designs();
  cases.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    fuzz_case c;
    c.seed = 0x5eedf00dULL + static_cast<std::uint64_t>(i) * 7919;
    c.vertices = sizes[i % std::size(sizes)];
    c.edge_prob = probs[(i / static_cast<int>(std::size(sizes))) % std::size(probs)];
    cases.push_back(c);
  }
  return cases;
}

/// The allocation grid each design fans out over: starved, tight and
/// comfortable points, plus a zero-unit column that must come back as an
/// infeasible outcome, never a throw.
const si::resource_set allocation_grid[] = {
    {0, 1, 1}, {1, 0, 1}, {1, 1, 1}, {2, 1, 1},
    {1, 2, 1}, {2, 2, 1}, {3, 2, 2}, {4, 3, 2},
};

} // namespace

TEST(BackendFuzz, EveryBackendLegalDeterministicAndCrossChecked) {
  const si::resource_library lib;
  // One reused context per backend: the fuzz sweep doubles as a long
  // arena-reuse soak, and a reused context must never change an outcome
  // (the fresh-context rerun below witnesses it per case).
  std::vector<std::unique_ptr<ss::run_context>> contexts;
  const auto backends = ss::registered_backends();
  for (std::size_t b = 0; b < backends.size(); ++b)
    contexts.push_back(std::make_unique<ss::run_context>());

  for (const fuzz_case& c : fuzz_cases()) {
    const si::dfg d = build_case(c, lib);
    const long long critical = sg::compute_distances(d.graph()).diameter;
    const long long serial = serial_bound(d);
    // fds' default mode scans a 64-budget window, each pass O(V * L); on a
    // 160-vertex design that is ~40s per run. An explicit budget just above
    // the critical path keeps the storm leg tractable and pins the
    // time-constrained contract directly: fds must fit the budget or report
    // an infeasible outcome.
    const long long fds_budget = critical + 8;
    for (const si::resource_set& rs : allocation_grid) {
      const std::string tuple = repro(c, rs);
      long long soft_latency = -1;
      long long list_latency = -1;
      long long iter_latency = -1;
      for (std::size_t b = 0; b < backends.size(); ++b) {
        const ss::scheduler_backend& backend = *backends[b];
        const bool is_fds = backend.name() == "fds";
        ss::backend_options opt;
        if (is_fds) opt.fds_latency = fds_budget;
        ss::backend_outcome r;
        ASSERT_NO_THROW(r = backend.run({d, lib, rs, opt}, *contexts[b]))
            << tuple << " backend " << backend.name();

        // Bit-for-bit repeat determinism, reused and fresh contexts alike.
        const ss::backend_outcome again = backend.run({d, lib, rs, opt}, *contexts[b]);
        EXPECT_TRUE(r.same_outcome(again))
            << tuple << " backend " << backend.name() << " (reused context)";
        ss::run_context fresh;
        const ss::backend_outcome cold = backend.run({d, lib, rs, opt}, fresh);
        EXPECT_TRUE(r.same_outcome(cold))
            << tuple << " backend " << backend.name() << " (fresh context)";

        if (!r.feasible) {
          EXPECT_FALSE(r.infeasible_reason.empty())
              << tuple << " backend " << backend.name();
          continue;
        }
        ASSERT_EQ(r.start_times.size(), d.op_count())
            << tuple << " backend " << backend.name();
        ASSERT_EQ(r.unit_of.size(), d.op_count())
            << tuple << " backend " << backend.name();
        EXPECT_GE(r.latency, critical) << tuple << " backend " << backend.name();
        // Time-constrained fds answers to its budget, not the serial bound
        // (which it may legally exceed on short-critical-path designs).
        EXPECT_LE(r.latency, is_fds ? fds_budget : serial)
            << tuple << " backend " << backend.name();
        // The shared oracle: one legality checker for every backend.
        const auto violations =
            sh::validate_schedule(d, ss::to_hard_schedule(r), &rs);
        EXPECT_TRUE(violations.empty())
            << tuple << " backend " << backend.name() << ": "
            << (violations.empty() ? "" : violations.front());

        if (backend.name() == "soft") soft_latency = r.latency;
        if (backend.name() == "list") list_latency = r.latency;
        if (backend.name() == "sdc-iter") iter_latency = r.latency;
      }
      // Cross-backend invariants. Feasibility agrees for the unit-binding
      // backends (all screen zero-unit classes identically), so a feasible
      // soft implies feasible list and sdc-iter on this grid.
      if (soft_latency >= 0) {
        ASSERT_GE(list_latency, 0) << tuple;
        ASSERT_GE(iter_latency, 0) << tuple;
        // The sanity envelope on arbitrary layered designs: soft's greedy
        // serialization can trail the hard list scheduler (observed gaps up
        // to 16 states / 1.31x over a 1000-design sweep), but doubling it
        // means a serializing regression, not a heuristic gap. The paper's
        // one-state envelope is pinned on the named benchmarks in sched_test.
        EXPECT_LE(soft_latency, 2 * list_latency) << tuple;
        // sdc-iter's base run is the soft kernel and the loop keeps the
        // incumbent: iterated latency never exceeds its base backend's.
        EXPECT_LE(iter_latency, soft_latency) << tuple;
      }
    }
  }
}

TEST(BackendFuzz, ZeroUnitAllocationsAreOutcomesForEveryBackend) {
  // The all-starved corner on one design of each size: every backend must
  // report infeasibility with a reason instead of throwing or "fitting".
  const si::resource_library lib;
  for (const int vertices : {8, 45, 160}) {
    const fuzz_case c{0xdeadULL + static_cast<std::uint64_t>(vertices), vertices,
                      0.25};
    const si::dfg d = build_case(c, lib);
    const si::resource_set rs{0, 0, 0};
    for (const ss::scheduler_backend* backend : ss::registered_backends()) {
      ss::run_context ctx;
      ss::backend_outcome r;
      ASSERT_NO_THROW(r = backend->run({d, lib, rs, {}}, ctx))
          << repro(c, rs) << " backend " << backend->name();
      EXPECT_FALSE(r.feasible) << repro(c, rs) << " backend " << backend->name();
      EXPECT_FALSE(r.infeasible_reason.empty())
          << repro(c, rs) << " backend " << backend->name();
    }
  }
}
