#include "phys/wire_model.h"

#include <cmath>

#include "util/check.h"

namespace softsched::phys {

int wire_model::wire_cycles(int distance) const {
  SOFTSCHED_EXPECT(distance >= 0, "distance must be non-negative");
  if (distance <= free_distance) return 0;
  return static_cast<int>(
      std::ceil(static_cast<double>(distance - free_distance) * cycles_per_unit));
}

std::vector<wire_insertion> plan_wire_insertions(const ir::dfg& d,
                                                 const hard::schedule& bound,
                                                 const floorplan& plan,
                                                 const wire_model& model) {
  const auto& g = d.graph();
  SOFTSCHED_EXPECT(bound.unit.size() == g.vertex_count(),
                   "wire planning needs a unit-bound schedule");
  std::vector<wire_insertion> insertions;
  for (const vertex_id from : g.vertices()) {
    const int u_from = bound.unit[from.value()];
    if (u_from < 0) continue; // unbound (e.g. wire pseudo-op): no block
    for (const vertex_id to : g.succs(from)) {
      const int u_to = bound.unit[to.value()];
      if (u_to < 0 || u_from == u_to) continue;
      const int cycles = model.wire_cycles(plan.distance(u_from, u_to));
      if (cycles > 0) insertions.push_back(wire_insertion{from, to, cycles});
    }
  }
  return insertions;
}

} // namespace softsched::phys
