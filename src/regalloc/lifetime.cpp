#include "regalloc/lifetime.h"

#include <algorithm>

#include "util/check.h"

namespace softsched::regalloc {

std::vector<value_lifetime> compute_lifetimes(const ir::dfg& d, const hard::schedule& s) {
  SOFTSCHED_EXPECT(s.complete(d), "lifetimes need a complete schedule");
  const auto& g = d.graph();
  std::vector<value_lifetime> lifetimes;
  for (const vertex_id v : g.vertices()) {
    if (d.kind(v) == ir::op_kind::store) continue; // result lives in memory
    value_lifetime lt;
    lt.producer = v;
    lt.def = s.start[v.value()] + g.delay(v);
    long long last = lt.def;
    // Primary outputs are handed to the environment the cycle they are
    // produced (last = def, clamped to one cycle below); consumed values
    // live until their last consumer starts.
    for (const vertex_id c : g.succs(v)) last = std::max(last, s.start[c.value()]);
    // A value consumed the cycle it is produced (chaining) still occupies
    // its register for that cycle.
    lt.last_use = std::max(last, lt.def + 1);
    lifetimes.push_back(lt);
  }
  return lifetimes;
}

int max_live(const std::vector<value_lifetime>& lifetimes) {
  // Sweep over interval endpoints.
  std::vector<std::pair<long long, int>> events;
  events.reserve(lifetimes.size() * 2);
  for (const value_lifetime& lt : lifetimes) {
    events.emplace_back(lt.def, +1);
    events.emplace_back(lt.last_use, -1);
  }
  std::sort(events.begin(), events.end());
  int live = 0;
  int peak = 0;
  for (const auto& [cycle, delta] : events) {
    live += delta;
    peak = std::max(peak, live);
  }
  return peak;
}

long long peak_cycle(const std::vector<value_lifetime>& lifetimes) {
  if (lifetimes.empty()) return -1;
  const int target = max_live(lifetimes);
  long long horizon = 0;
  for (const value_lifetime& lt : lifetimes) horizon = std::max(horizon, lt.last_use);
  for (long long c = 0; c < horizon; ++c) {
    int live = 0;
    for (const value_lifetime& lt : lifetimes)
      if (lt.alive_at(c)) ++live;
    if (live == target) return c;
  }
  return -1;
}

} // namespace softsched::regalloc
