// load_scenario.h - the shared "load" benchmark scenario: an open-loop
// zipf replay against the resident scheduling service (serve/daemon.h),
// measuring what the batch scenario cannot - tail latency and shedding
// behavior under sustained overload.
//
// Three phases, all against the same zipf(s = 0.9) request mix as
// serve_scenario.h:
//
//   1. warm    - every catalog entry once, so the replay measures the
//                serving path, not first-touch scheduling;
//   2. calibrate - closed-loop (submit-with-retry, as fast as the service
//                completes) over a warm cache: the measured completion
//                rate is the *sustainable* rate;
//   3. replay  - open-loop at 2x the sustainable rate: request i has the
//                fixed arrival time t0 + i/rate regardless of how the
//                service is doing, and its latency is measured from that
//                scheduled arrival, not from the submit call - so a
//                stalled service shows up as tail latency instead of
//                being silently absolved (no coordinated omission).
//
// Under 2x overload the admission queue must stay bounded (peak depth <=
// capacity - that is what admission control is for), goodput must stay
// near the sustainable rate, and the rest of the offered load is *shed*
// ("overloaded" responses), not queued. The emitted block ends with an
// "slo" object that self-gates (pass = all limits met); the harness exits
// nonzero when it fails, and ci/bench_gate.py additionally compares p99 /
// drop rate against the committed baseline.
//
// The mix and phase sizes are fixed (no --quick scaling) so the CI gate
// always compares like against like. SOFTSCHED_INJECT is honored - the
// nightly injected-storm leg replays this scenario with a slot delay and a
// failed cache shard to prove the SLO story holds degraded.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "serve/daemon.h"
#include "serve_scenario.h"
#include "util/json.h"
#include "util/rng.h"

namespace softsched::bench {

/// Knobs for write_load_scenario beyond the seed.
struct load_options {
  unsigned jobs = 0; ///< worker threads; 0 = thread_pool::hardware_workers()

  /// Closed-loop retry on shed requests: instead of counting a shed
  /// request as dropped immediately, resubmit it after the service's own
  /// retry_after_ms hint (exponential backoff, +-25% deterministic jitter,
  /// at most retry_max_attempts total attempts). This is the client-side
  /// half of the admission-control contract - the hint the daemon sends
  /// with every "overloaded" response, finally exercised.
  bool retry = false;
  int retry_max_attempts = 3; ///< total attempts per request (1 = no retry)

  /// Optional persistent tier for the replayed service (the nightly
  /// disk-fault storm leg points this at a scratch directory and injects
  /// io= faults to prove the SLO story holds with a misbehaving disk).
  std::string cache_dir;
  std::size_t disk_cache_bytes = 0;
};

/// Exact nearest-rank percentile of a sorted sample (the oracle the
/// histogram in serve/metrics.h approximates from above).
inline double sorted_percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank > 0 ? rank - 1 : 0];
}

/// Submits one line, yielding until admission control accepts it (the
/// closed-loop discipline of the warm and calibration phases).
inline void submit_blocking(serve::service& svc, std::uint64_t seq, const std::string& line,
                            serve::service::callback done) {
  while (!svc.submit(seq, line, done))
    std::this_thread::sleep_for(std::chrono::microseconds(50));
}

inline void warm_catalog(serve::service& svc, std::uint64_t seed) {
  std::uint64_t seq = 0;
  for (const std::string& combo : serve_catalog(seed))
    submit_blocking(svc, ++seq, "{\"id\":\"warm\"," + combo + "}", {});
  svc.drain();
}

/// Emits the whole scenario as the value of an already-written "load" key.
/// Returns the slo.pass verdict.
inline bool write_load_scenario(json_writer& j, std::uint64_t seed,
                                const load_options& lopt = {}) {
  using clock_type = std::chrono::steady_clock;
  unsigned jobs = lopt.jobs == 0 ? thread_pool::hardware_workers() : lopt.jobs;
  constexpr int calibration_requests = 500;
  constexpr int replay_requests = 1500;
  constexpr std::size_t queue_capacity = 64;
  constexpr double overload_factor = 2.0;
  // Generous by design: the limits assert the *shape* of overload behavior
  // (bounded tails, bounded shedding), not this machine's speed - the CI
  // baseline comparison owns speed regressions.
  constexpr double p99_limit_ms = 1000.0;
  constexpr double drop_rate_limit = 0.9;

  serve::service_options sopt;
  sopt.jobs = static_cast<int>(jobs);
  sopt.queue_capacity = queue_capacity;
  sopt.emit_schedule = false;
  sopt.faults = serve::fault_plan::from_env();
  sopt.cache_dir = lopt.cache_dir;
  sopt.disk_cache_bytes = lopt.disk_cache_bytes;

  const std::vector<std::string> mix =
      make_serve_mix(seed, std::max(calibration_requests, replay_requests));

  // -- calibrate: closed-loop completion rate over a warm cache -----------
  double sustainable_rps = 0;
  {
    serve::service svc(sopt);
    warm_catalog(svc, seed);
    std::uint64_t seq = 1000000; // disjoint from warm seqs; value is arbitrary
    const auto t0 = clock_type::now();
    for (int i = 0; i < calibration_requests; ++i)
      submit_blocking(svc, ++seq, mix[static_cast<std::size_t>(i)], {});
    svc.drain();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(clock_type::now() - t0).count();
    sustainable_rps = wall_ms > 0 ? calibration_requests / (wall_ms / 1e3) : 0;
  }
  const double target_rps = std::max(1.0, sustainable_rps * overload_factor);

  // -- replay: open-loop at 2x sustainable ---------------------------------
  serve::service svc(sopt);
  warm_catalog(svc, seed);
  std::vector<double> latency_ms(replay_requests, -1);
  std::atomic<std::uint64_t> error_responses{0};
  std::uint64_t dropped = 0;
  const auto start = clock_type::now();

  // Latency is always measured from the request's *scheduled arrival* -
  // for a retried request that includes every backoff it sat through, so
  // retrying cannot launder tail latency (no coordinated omission).
  const auto submit_request = [&](int i, clock_type::time_point scheduled) {
    return svc.submit(
        static_cast<std::uint64_t>(i) + 1, mix[static_cast<std::size_t>(i)],
        [&latency_ms, &error_responses, i, scheduled](serve::response r) {
          latency_ms[static_cast<std::size_t>(i)] =
              std::chrono::duration<double, std::milli>(clock_type::now() - scheduled)
                  .count();
          if (!r.error.empty()) error_responses.fetch_add(1, std::memory_order_relaxed);
        });
  };

  // Closed-loop retry bookkeeping (lopt.retry): a shed request is
  // rescheduled after the service's retry_after_ms hint with exponential
  // backoff and deterministic +-25% jitter, up to retry_max_attempts total
  // attempts; only exhausting them counts as dropped.
  struct pending_retry {
    clock_type::time_point due;
    clock_type::time_point scheduled; ///< original arrival (latency anchor)
    int index = 0;
    int attempt = 1; ///< attempts already spent
  };
  std::vector<pending_retry> retry_queue;
  std::uint64_t retry_attempts = 0, retry_recovered = 0, retry_exhausted = 0;
  const int max_attempts = std::max(1, lopt.retry_max_attempts);
  rng jitter(seed ^ 0x72657472794c4fULL);
  const auto backoff_after = [&](int attempts_spent) {
    const double base = std::max(0.1, sopt.retry_after_ms);
    const double factor = static_cast<double>(1 << std::min(attempts_spent - 1, 10));
    const double ms = base * factor * (0.75 + 0.5 * jitter.uniform());
    return std::chrono::duration_cast<clock_type::duration>(
        std::chrono::duration<double, std::milli>(ms));
  };
  const auto process_retries = [&](clock_type::time_point now) {
    std::vector<pending_retry> still;
    still.reserve(retry_queue.size());
    for (const pending_retry& p : retry_queue) {
      if (p.due > now) {
        still.push_back(p);
        continue;
      }
      ++retry_attempts;
      if (submit_request(p.index, p.scheduled)) {
        ++retry_recovered;
      } else if (p.attempt + 1 <= max_attempts) {
        still.push_back(
            pending_retry{now + backoff_after(p.attempt), p.scheduled, p.index, p.attempt + 1});
      } else {
        ++retry_exhausted;
        ++dropped;
      }
    }
    retry_queue.swap(still);
  };

  for (int i = 0; i < replay_requests; ++i) {
    const auto scheduled =
        start + std::chrono::duration_cast<clock_type::duration>(
                    std::chrono::duration<double>(static_cast<double>(i) / target_rps));
    std::this_thread::sleep_until(scheduled);
    if (lopt.retry) process_retries(clock_type::now());
    if (!submit_request(i, scheduled)) {
      if (lopt.retry && max_attempts > 1) {
        retry_queue.push_back(
            pending_retry{clock_type::now() + backoff_after(1), scheduled, i, 1});
      } else {
        ++dropped;
      }
    }
  }
  // Drain the retry queue before draining the service: requests still
  // backing off have neither completed nor been dropped yet.
  while (!retry_queue.empty()) {
    auto due = retry_queue.front().due;
    for (const pending_retry& p : retry_queue) due = std::min(due, p.due);
    std::this_thread::sleep_until(due);
    process_retries(clock_type::now());
  }
  svc.drain();
  const double replay_wall_ms =
      std::chrono::duration<double, std::milli>(clock_type::now() - start).count();
  const serve::service_stats stats = svc.stats();

  std::vector<double> sorted;
  sorted.reserve(latency_ms.size());
  for (const double l : latency_ms)
    if (l >= 0) sorted.push_back(l);
  std::sort(sorted.begin(), sorted.end());

  const auto completed = static_cast<std::uint64_t>(sorted.size());
  const double drop_rate = static_cast<double>(dropped) / replay_requests;
  const double goodput_rps =
      replay_wall_ms > 0 ? static_cast<double>(completed) / (replay_wall_ms / 1e3) : 0;
  const double p50 = sorted_percentile(sorted, 50);
  const double p95 = sorted_percentile(sorted, 95);
  const double p99 = sorted_percentile(sorted, 99);

  const bool queue_bounded = stats.peak_queue_depth <= queue_capacity;
  const bool goodput_ok = goodput_rps > 0;
  const bool p99_ok = p99 <= p99_limit_ms;
  const bool drop_rate_ok = drop_rate <= drop_rate_limit;
  const bool pass = queue_bounded && goodput_ok && p99_ok && drop_rate_ok;

  j.begin_object();
  j.member("jobs", static_cast<unsigned long long>(jobs));
  j.member("queue_capacity", queue_capacity);
  j.member("catalog", serve_catalog(seed).size());
  j.member("calibration_requests", static_cast<long long>(calibration_requests));
  j.member("replay_requests", static_cast<long long>(replay_requests));
  j.member("sustainable_rps", sustainable_rps);
  j.member("overload_factor", overload_factor);
  j.member("target_rps", target_rps);
  j.member("completed", completed);
  j.member("dropped", dropped);
  j.member("drop_rate", drop_rate);
  j.member("goodput_rps", goodput_rps);
  j.member("p50_ms", p50);
  j.member("p95_ms", p95);
  j.member("p99_ms", p99);
  j.member("max_ms", sorted.empty() ? 0.0 : sorted.back());
  j.member("peak_queue_depth", stats.peak_queue_depth);
  j.member("hit_rate", stats.hit_rate);
  j.member("error_responses", error_responses.load());
  j.member("injected", !sopt.faults.empty());
  j.member("disk_enabled", stats.disk_enabled);
  j.member("disk_degraded", stats.disk_degraded);
  j.key("retry");
  j.begin_object();
  j.member("enabled", lopt.retry);
  j.member("max_attempts", static_cast<long long>(max_attempts));
  j.member("attempts", retry_attempts);
  j.member("recovered", retry_recovered);
  j.member("exhausted", retry_exhausted);
  j.end_object();
  j.key("slo");
  j.begin_object();
  j.member("p99_limit_ms", p99_limit_ms);
  j.member("drop_rate_limit", drop_rate_limit);
  j.member("queue_bounded", queue_bounded);
  j.member("goodput_ok", goodput_ok);
  j.member("p99_ok", p99_ok);
  j.member("drop_rate_ok", drop_rate_ok);
  j.member("pass", pass);
  j.end_object();
  j.end_object();
  return pass;
}

} // namespace softsched::bench
