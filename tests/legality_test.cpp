// legality_test.cpp - the no-cycle guard of select().
//
// docs/DESIGN.md §1 documents one deliberate deviation from the paper's abbreviated
// pseudocode: line 60 guards a position with the *input* graph's order
// (v <=G cur / cur.out[k] <=G v), but a position can be illegal through
// paths that use artificial state edges only. These tests (1) construct
// that counterexample, showing the literal <=G guard would accept a
// cycle-creating position, (2) verify our guard exactly characterizes
// acyclicity on random graphs: every accepted position commits to an
// acyclic state, every rejected one would create a cycle or a same-thread
// order violation.
#include <gtest/gtest.h>

#include "core/threaded_graph.h"
#include "graph/generators.h"
#include "graph/precedence_graph.h"
#include "graph/reachability.h"
#include "graph/topo.h"
#include "util/check.h"
#include "util/rng.h"

namespace sg = softsched::graph;
namespace sc = softsched::core;
using sg::vertex_id;
using softsched::rng;

TEST(Legality, PaperLiteralGuardAcceptsCycleCreatingPosition) {
  // G: v -> x, w -> q. Manually build the adversarial state:
  //   thread 0: [x, w]   (x before w: an artificial chain relation)
  //   thread 1: [q]      with the cross edge w -> q (from w <=G q)
  // Candidate position: insert v after q in thread 1.
  // The literal guard checks v <=G q (false) and t-sentinel <=G v (false),
  // so it would accept. But commit adds q -> v (chain) and v -> x (cross,
  // from v <=G x), closing the cycle v -> x -> w -> q -> v.
  sg::precedence_graph g;
  const vertex_id v = g.add_vertex(1, "v");
  const vertex_id x = g.add_vertex(1, "x");
  const vertex_id w = g.add_vertex(1, "w");
  const vertex_id q = g.add_vertex(1, "q");
  g.add_edge(v, x);
  g.add_edge(w, q);

  sc::threaded_graph state(g, 2);
  state.commit(state.position_front(0), x);
  state.commit(state.position_after(x), w);
  state.commit(state.position_front(1), q);
  state.check_invariants();

  // The literal <=G guard on "after q": both tests pass (no G relation
  // between v and q, and q's thread successor is the sentinel).
  const sg::transitive_closure closure(g);
  EXPECT_FALSE(closure.strictly_reaches(v, q));
  EXPECT_FALSE(closure.strictly_reaches(q, v));

  // Our select must NOT choose "after q" for v.
  const sc::insert_position chosen = state.select(v);
  EXPECT_FALSE(chosen.thread == 1 && chosen.after == state.position_after(q).after)
      << "select accepted the cycle-creating position";

  // Committing there anyway corrupts the state into a cycle, which the
  // invariant checker detects.
  sc::threaded_graph corrupted(state);
  corrupted.commit(corrupted.position_after(q), v);
  EXPECT_THROW(corrupted.check_invariants(), softsched::graph_error);

  // And the position select *did* choose keeps everything sound.
  state.commit(chosen, v);
  EXPECT_NO_THROW(state.check_invariants());
}

TEST(Legality, GuardExactlyCharacterizesAcyclicity) {
  // Ground truth for a position = "committing there keeps the state a
  // valid threaded graph" (speculative commit + invariant check). Our
  // position_legal() guard must coincide with the ground truth on every
  // (vertex, position) pair along random feed orders.
  for (const std::uint64_t seed : {3u, 5u, 8u, 21u}) {
    rng rand(seed);
    sg::layered_params lp;
    lp.layers = 4;
    lp.width = 3;
    lp.edge_prob = 0.4;
    const sg::precedence_graph g = sg::layered_random(lp, rand);
    sc::threaded_graph state(g, 2);

    std::vector<vertex_id> order = g.vertices();
    rand.shuffle(order);
    for (const vertex_id v : order) {
      for (int k = 0; k < state.thread_count(); ++k) {
        std::vector<sc::insert_position> positions{state.position_front(k)};
        for (const vertex_id u : state.thread_sequence(k))
          positions.push_back(state.position_after(u));
        for (const sc::insert_position& pos : positions) {
          bool ground_truth = true;
          sc::threaded_graph speculative(state);
          try {
            speculative.commit(pos, v);
            speculative.check_invariants();
          } catch (const softsched::precondition_error&) {
            ground_truth = false; // same-thread order violation
          } catch (const softsched::graph_error&) {
            ground_truth = false; // cycle through cross edges
          }
          EXPECT_EQ(state.position_legal(v, pos), ground_truth)
              << "guard mismatch for v" << v.value() << " at thread " << pos.thread;
        }
      }
      state.schedule(v);
      state.check_invariants();
    }
  }
}

TEST(Legality, SelectNeverFailsOnAnyFeedOrder) {
  // docs/DESIGN.md §1's existence argument: a legal slot always exists in every
  // compatible thread. Stress with many random orders including
  // anti-topological ones.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    rng rand(seed * 97);
    const sg::precedence_graph g = sg::gnp_dag(24, 0.2, 1, 2, rand);
    sc::threaded_graph state(g, 1 + static_cast<int>(seed % 4));
    std::vector<vertex_id> order = g.vertices();
    // Feed in *reverse* topological order half the time - every vertex
    // arrives before all of its predecessors.
    if (seed % 2 == 0) {
      order = sg::topological_order(g);
      std::reverse(order.begin(), order.end());
    } else {
      rand.shuffle(order);
    }
    for (const vertex_id v : order) EXPECT_NO_THROW(state.schedule(v));
    state.check_invariants();
    EXPECT_EQ(state.scheduled_count(), g.vertex_count());
  }
}

TEST(Legality, ReverseTopologicalFeedStillOptimalPerStep) {
  // Online optimality holds per step even under the worst feed order.
  rng rand(1234);
  const sg::precedence_graph g = sg::gnp_dag(18, 0.25, 1, 2, rand);
  std::vector<vertex_id> order = sg::topological_order(g);
  std::reverse(order.begin(), order.end());
  sc::threaded_graph state(g, 3);
  for (const vertex_id v : order) {
    const sc::insert_position fast = state.select(v);
    const sc::insert_position naive = state.select_naive(v);
    sc::threaded_graph probe(state);
    probe.commit(fast, v);
    EXPECT_EQ(probe.diameter(), naive.cost);
    state.commit(fast, v);
  }
  state.check_invariants();
}
