#include "graph/precedence_graph.h"

#include <algorithm>

#include "util/check.h"

namespace softsched::graph {

vertex_id precedence_graph::add_vertex(int delay, std::string name) {
  SOFTSCHED_EXPECT(delay >= 0, "vertex delay must be non-negative");
  const auto id = vertex_id(static_cast<std::uint32_t>(delay_.size()));
  delay_.push_back(delay);
  name_.push_back(std::move(name));
  out_.emplace_back();
  in_.emplace_back();
  ++revision_;
  return id;
}

void precedence_graph::require_vertex(vertex_id v) const {
  SOFTSCHED_EXPECT(v.valid() && v.value() < delay_.size(), "vertex id out of range");
}

void precedence_graph::add_edge(vertex_id from, vertex_id to) {
  require_vertex(from);
  require_vertex(to);
  SOFTSCHED_EXPECT(from != to, "self-loops are not allowed in a precedence graph");
  auto& out = out_[from.value()];
  if (std::find(out.begin(), out.end(), to) != out.end()) return; // set semantics
  out.push_back(to);
  in_[to.value()].push_back(from);
  edge_log_.emplace_back(from, to);
  ++edge_count_;
  ++revision_;
}

bool precedence_graph::remove_edge_impl(vertex_id from, vertex_id to) {
  require_vertex(from);
  require_vertex(to);
  auto& out = out_[from.value()];
  const auto it = std::find(out.begin(), out.end(), to);
  if (it == out.end()) return false;
  out.erase(it);
  auto& in = in_[to.value()];
  in.erase(std::find(in.begin(), in.end(), from));
  --edge_count_;
  ++revision_;
  return true;
}

bool precedence_graph::remove_edge(vertex_id from, vertex_id to) {
  const bool removed = remove_edge_impl(from, to);
  if (removed) ++rebuild_epoch_;
  return removed;
}

bool precedence_graph::remove_edge_reach_preserved(vertex_id from, vertex_id to) {
  return remove_edge_impl(from, to);
}

bool precedence_graph::has_edge(vertex_id from, vertex_id to) const {
  require_vertex(from);
  require_vertex(to);
  const auto& out = out_[from.value()];
  return std::find(out.begin(), out.end(), to) != out.end();
}

int precedence_graph::delay(vertex_id v) const {
  require_vertex(v);
  return delay_[v.value()];
}

void precedence_graph::set_delay(vertex_id v, int delay) {
  require_vertex(v);
  SOFTSCHED_EXPECT(delay >= 0, "vertex delay must be non-negative");
  delay_[v.value()] = delay;
  ++revision_;
}

std::string_view precedence_graph::name(vertex_id v) const {
  require_vertex(v);
  return name_[v.value()];
}

void precedence_graph::set_name(vertex_id v, std::string name) {
  require_vertex(v);
  name_[v.value()] = std::move(name);
}

std::span<const vertex_id> precedence_graph::preds(vertex_id v) const {
  require_vertex(v);
  return in_[v.value()];
}

std::span<const vertex_id> precedence_graph::succs(vertex_id v) const {
  require_vertex(v);
  return out_[v.value()];
}

std::vector<vertex_id> precedence_graph::sources() const {
  std::vector<vertex_id> result;
  for (std::size_t i = 0; i < delay_.size(); ++i)
    if (in_[i].empty()) result.emplace_back(static_cast<std::uint32_t>(i));
  return result;
}

std::vector<vertex_id> precedence_graph::sinks() const {
  std::vector<vertex_id> result;
  for (std::size_t i = 0; i < delay_.size(); ++i)
    if (out_[i].empty()) result.emplace_back(static_cast<std::uint32_t>(i));
  return result;
}

std::vector<vertex_id> precedence_graph::vertices() const {
  std::vector<vertex_id> result;
  result.reserve(delay_.size());
  for (std::size_t i = 0; i < delay_.size(); ++i)
    result.emplace_back(static_cast<std::uint32_t>(i));
  return result;
}

bool precedence_graph::is_dag() const {
  // Kahn's algorithm: the graph is acyclic iff every vertex gets popped.
  std::vector<std::size_t> in_degree(delay_.size());
  for (std::size_t i = 0; i < delay_.size(); ++i) in_degree[i] = in_[i].size();
  std::vector<std::uint32_t> stack;
  for (std::size_t i = 0; i < delay_.size(); ++i)
    if (in_degree[i] == 0) stack.push_back(static_cast<std::uint32_t>(i));
  std::size_t popped = 0;
  while (!stack.empty()) {
    const std::uint32_t u = stack.back();
    stack.pop_back();
    ++popped;
    for (const vertex_id w : out_[u])
      if (--in_degree[w.value()] == 0) stack.push_back(w.value());
  }
  return popped == delay_.size();
}

void precedence_graph::validate() const {
  if (!is_dag()) throw graph_error("precedence graph contains a cycle");
}

} // namespace softsched::graph
