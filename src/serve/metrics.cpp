#include "serve/metrics.h"

#include <cmath>

namespace softsched::serve {

namespace {

/// Bucket ratio: bounds grow by 2^(1/8) per bucket.
const double log2_scale = latency_histogram::buckets_per_octave;

} // namespace

double latency_histogram::relative_error() noexcept {
  return std::exp2(1.0 / buckets_per_octave) - 1.0;
}

int latency_histogram::bucket_of(double ms) noexcept {
  if (!(ms > floor_ms)) return 0;
  const double octaves = std::log2(ms / floor_ms);
  // ceil: bucket i covers (bound(i-1), bound(i)], so a value exactly on a
  // bound belongs to that bucket and bucket_upper_bound never undershoots.
  const auto index = static_cast<int>(std::ceil(octaves * log2_scale - 1e-9));
  if (index < 0) return 0;
  if (index >= bucket_count) return bucket_count - 1;
  return index;
}

double latency_histogram::bucket_upper_bound(int index) noexcept {
  return floor_ms * std::exp2(static_cast<double>(index) / log2_scale);
}

void latency_histogram::record(double ms) noexcept {
  counts_[static_cast<std::size_t>(bucket_of(ms))].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t latency_histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

double latency_histogram::percentile(double p) const noexcept {
  std::array<std::uint64_t, bucket_count> snap{};
  std::uint64_t total = 0;
  for (int i = 0; i < bucket_count; ++i) {
    snap[static_cast<std::size_t>(i)] =
        counts_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    total += snap[static_cast<std::size_t>(i)];
  }
  if (total == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(p/100 * total), with rank at least 1.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < bucket_count; ++i) {
    seen += snap[static_cast<std::size_t>(i)];
    if (seen >= rank) return bucket_upper_bound(i);
  }
  return bucket_upper_bound(bucket_count - 1);
}

} // namespace softsched::serve
