#include "lang/parser.h"

#include <map>
#include <optional>

namespace softsched::lang {

namespace {

using ir::op_kind;
using ir::vertex_id;

/// An expression value: either a DFG operation, or a free input (an
/// identifier/literal with no producing op).
struct value {
  std::optional<vertex_id> op; ///< empty for free inputs
};

class parser {
public:
  parser(const std::string& source, std::string name, const ir::resource_library& library)
      : tokens_(tokenize(source)), dfg_(std::move(name), library) {}

  ir::dfg run() {
    while (!at(token_kind::end_of_input)) statement();
    dfg_.validate();
    return std::move(dfg_);
  }

private:
  [[nodiscard]] const token& peek() const { return tokens_[pos_]; }
  [[nodiscard]] bool at(token_kind kind) const { return peek().kind == kind; }

  token expect(token_kind kind) {
    if (!at(kind)) {
      throw parse_error("parse error at line " + std::to_string(peek().line) +
                        ", column " + std::to_string(peek().column) + ": expected " +
                        token_kind_name(kind) + ", found " +
                        token_kind_name(peek().kind) +
                        (peek().text.empty() ? "" : " '" + peek().text + "'"));
    }
    return tokens_[pos_++];
  }

  void statement() {
    const token dest = expect(token_kind::identifier);
    expect(token_kind::assign);
    dest_ = dest.text;
    temp_counter_ = 0;
    const value result = comparison();
    expect(token_kind::semicolon);
    if (!result.op.has_value()) {
      throw parse_error("line " + std::to_string(dest.line) + ": statement '" +
                        dest.text + "' computes nothing (bare operand)");
    }
    // The statement's root op carries the destination name.
    dfg_.graph().set_name(*result.op, dest.text);
    defined_[dest.text] = *result.op;
  }

  value comparison() {
    value lhs = additive();
    if (at(token_kind::less)) {
      expect(token_kind::less);
      const value rhs = additive();
      return emit(op_kind::compare, lhs, rhs);
    }
    return lhs;
  }

  value additive() {
    value lhs = term();
    while (at(token_kind::plus) || at(token_kind::minus)) {
      const bool is_plus = at(token_kind::plus);
      ++pos_;
      const value rhs = term();
      lhs = emit(is_plus ? op_kind::add : op_kind::sub, lhs, rhs);
    }
    return lhs;
  }

  value term() {
    value lhs = factor();
    while (at(token_kind::star)) {
      expect(token_kind::star);
      const value rhs = factor();
      lhs = emit(op_kind::mul, lhs, rhs);
    }
    return lhs;
  }

  value factor() {
    if (at(token_kind::identifier)) {
      const token name = expect(token_kind::identifier);
      const auto it = defined_.find(name.text);
      if (it != defined_.end()) return value{it->second}; // a computed value
      return value{};                                     // a free primary input
    }
    if (at(token_kind::number)) {
      expect(token_kind::number);
      return value{}; // constants are free inputs too
    }
    expect(token_kind::lparen);
    const value inner = comparison();
    expect(token_kind::rparen);
    return inner;
  }

  value emit(op_kind kind, const value& lhs, const value& rhs) {
    std::vector<vertex_id> inputs;
    if (lhs.op.has_value()) inputs.push_back(*lhs.op);
    if (rhs.op.has_value()) inputs.push_back(*rhs.op);
    std::string name = dest_;
    name += "_t";
    name += std::to_string(++temp_counter_);
    return value{dfg_.add_op(kind, std::span<const vertex_id>(inputs), std::move(name))};
  }

  std::vector<token> tokens_;
  std::size_t pos_ = 0;
  ir::dfg dfg_;
  std::map<std::string, vertex_id> defined_;
  std::string dest_;
  int temp_counter_ = 0;
};

} // namespace

ir::dfg compile_behavior(const std::string& source, std::string name,
                         const ir::resource_library& library) {
  return parser(source, std::move(name), library).run();
}

} // namespace softsched::lang
