// engine.h - the batch scheduling request engine: JSONL requests in, JSONL
// responses out, backed by the canonical-hash schedule cache and the
// work-stealing thread pool.
//
// Pipeline per batch (docs/DESIGN.md §6):
//
//   parse -> sign -> hash (parallel, memoized) -> key -> dedup in-flight
//         -> consult cache (serial) -> schedule misses (parallel)
//         -> publish to cache (serial) -> respond in input order
//
// Determinism contract: every response payload is a pure function of its
// request - identical for any worker count and any cache size. Three
// design rules enforce it: (1) scheduling jobs are share-nothing and write
// pre-allocated slots (the DSE pattern); (2) all cache traffic and
// memo/dedup bookkeeping happen serially, in input order, between the
// parallel phases; (3) responses never carry hit/miss state - caching is
// observable only through the engine/cache counters, so a cold run, a hot
// run and an evicting tiny-cache run emit byte-identical payloads (only
// the `ms` latency field varies).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/run_context.h"
#include "serve/cache.h"
#include "serve/diskcache.h"
#include "serve/request.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace softsched::serve {

struct engine_options {
  int jobs = 0;                            ///< worker threads; < 1 = hardware_workers()
  std::size_t cache_bytes = 64ull << 20;   ///< schedule-cache byte budget
  unsigned cache_shards = 16;
  std::size_t batch_size = 64;             ///< requests per dispatch wave; 0 = whole stream
  bool emit_schedule = true;               ///< include start/unit arrays in JSONL output

  // Per-worker scheduling arenas (docs/DESIGN.md §8). Off = the heap
  // baseline the nightly storm cross-validates against; the mode cannot
  // change a single response byte, only allocation traffic and `ms`.
  bool arena = true;
  std::size_t arena_block_bytes = 0; ///< 0 = util::arena::default_block_bytes

  // Persistent tier (docs/SERVING.md "Persistence"): enabled iff cache_dir
  // is non-empty and disk_cache_bytes > 0. Because caching is never
  // observable in response payloads, turning the disk tier on or off
  // cannot change a single output byte - only the hit counters and `ms`.
  std::string cache_dir;
  std::size_t disk_cache_bytes = 0;
  std::size_t disk_flush_queue = 256; ///< write-behind bound (>= 1)
  disk_fault_plan disk_faults;        ///< io=<n> injection (serve/daemon.h grammar)
};

/// One response. `same_payload` ignores only the latency field - the
/// equality the determinism tests and the --jobs/cache-size acceptance
/// criterion check.
struct response {
  std::size_t line = 0;   ///< 1-based input line number
  std::string id;         ///< request id (default "line<N>")
  std::string error;      ///< parse/build error; empty = result is valid
  std::string backend;    ///< scheduler backend that produced the result
  ir::dfg_digest key;     ///< schedule-cache key (zero when errored before hashing)
  schedule_result result;
  double ms = 0;          ///< scheduling latency this request paid (0 when served
                          ///< from cache / dedup); excluded from same_payload
  double retry_after_ms = 0; ///< backpressure hint on "overloaded" errors
                             ///< (daemon admission control); serialized only
                             ///< when positive

  [[nodiscard]] bool same_payload(const response& other) const;
};

/// Serializes one response as a single-line JSON object (no trailing
/// newline). With emit_schedule off, the start/unit arrays are omitted.
/// Shared by the batch engine and the resident daemon so both speak the
/// exact same payload bytes (the input-order parity criterion).
void write_response_line(std::ostream& out, const response& r, bool emit_schedule);

/// Canonical identity of one request's *design source*: the digest behind
/// its cache key and the source-id -> canonical-index map that moves
/// results between the canonical space schedules are computed in and the
/// requester's own vertex numbering. `error` non-empty means the source
/// fails to build (and the other fields are meaningless).
struct source_info {
  ir::dfg_digest digest;
  std::string error;
  std::vector<std::uint32_t> canonical_of;
};

/// Builds + canonically hashes the request's design. Never throws: build
/// failures land in source_info::error.
[[nodiscard]] source_info hash_request_source(const request& req);

/// Derives the schedule-cache key: canonical digest + allocation +
/// backend/meta salt (identical designs under different backends must
/// never share a cache entry - docs/DESIGN.md §7).
[[nodiscard]] ir::dfg_digest schedule_key_for(const request& req,
                                              const ir::dfg_digest& digest);

/// Runs the request's scheduler backend in canonical space, staging all
/// per-run state in `ctx`. Share-nothing as long as each thread brings its
/// own context (the engine keeps one per worker). Throws on internal
/// failure (unreachable once the source built).
[[nodiscard]] schedule_result compute_canonical_schedule(
    const request& req, const std::vector<std::uint32_t>& canonical_of,
    sched::run_context& ctx);

/// Convenience overload for one-shot callers (tests, the daemon's warmup):
/// runs on a private heap-mode context.
[[nodiscard]] schedule_result compute_canonical_schedule(
    const request& req, const std::vector<std::uint32_t>& canonical_of);

/// Canonical-indexed result -> the requester's own vertex numbering.
[[nodiscard]] schedule_result result_to_source_order(
    const schedule_result& canonical, const std::vector<std::uint32_t>& canonical_of);

/// Cumulative request dispositions (every request lands in exactly one of
/// computed / deduped / cache_hits / parse_errors).
struct engine_counters {
  std::uint64_t requests = 0;
  std::uint64_t parse_errors = 0; ///< also build errors (bad benchmark, cyclic dfg)
  std::uint64_t computed = 0;     ///< ran Algorithm 1
  std::uint64_t deduped = 0;      ///< coalesced onto an identical in-flight request
  std::uint64_t cache_hits = 0;   ///< served from the schedule cache

  /// Requests served without running the scheduler / all well-formed
  /// requests - the headline `hit_rate` the perf harness reports and CI
  /// gates.
  [[nodiscard]] double hit_rate() const noexcept;

  /// Field-complete per-stream delta (run_stream subtracts the engine's
  /// cumulative counters before/after).
  [[nodiscard]] engine_counters operator-(const engine_counters& rhs) const noexcept;
};

/// Per-run_stream accounting (counters are the delta for that stream).
struct stream_summary {
  engine_counters counters;
  std::size_t batches = 0;
  double wall_ms = 0;

  [[nodiscard]] double requests_per_sec() const noexcept;
};

/// One raw JSONL input line.
struct batch_line {
  std::size_t line = 0; ///< 1-based
  std::string text;
};

class engine {
public:
  explicit engine(const engine_options& options = {});
  ~engine();

  engine(const engine&) = delete;
  engine& operator=(const engine&) = delete;

  /// Runs one batch of raw request lines through the full pipeline and
  /// returns responses in input order.
  [[nodiscard]] std::vector<response> run_batch(const std::vector<batch_line>& lines);

  /// Reads JSONL from `in` in batch_size waves, returning all responses
  /// (tests and the bench harness compare these across configurations).
  /// Blank lines are skipped.
  [[nodiscard]] std::vector<response> run_collect(std::istream& in);

  /// run_collect + JSONL serialization to `out`, one response per line.
  stream_summary run_stream(std::istream& in, std::ostream& out);

  /// Serializes one response as a single-line JSON object (no trailing
  /// newline). With emit_schedule off, the start/unit arrays are omitted.
  void write_response(std::ostream& out, const response& r) const;

  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }
  [[nodiscard]] const engine_options& options() const noexcept { return options_; }
  [[nodiscard]] const engine_counters& counters() const noexcept { return counters_; }
  [[nodiscard]] schedule_cache& cache() noexcept { return cache_; }
  /// The persistent tier, or nullptr when not configured.
  [[nodiscard]] disk_cache* disk() noexcept { return disk_.get(); }

  /// Drains the disk tier's write-behind queue; returns how many records
  /// this call flushed (0 when the disk tier is off). The destructor also
  /// flushes, so calling this is only needed to *observe* the count.
  std::size_t flush_disk();

private:
  /// Memo value: the source_info of one distinct design source.
  using memo_entry = source_info;

  /// The one JSONL read loop (line numbering, blank-line skip, batch_size
  /// waves) behind run_collect and run_stream; returns the batch count.
  std::size_t drain_stream(std::istream& in,
                           const std::function<void(std::vector<response>)>& sink);

  /// The calling thread's run_context: pool worker i owns contexts_[i],
  /// every other thread (jobs_ == 1, or the submitting thread between
  /// waves) owns the extra slot contexts_[jobs_]. Lock-free because a
  /// context is only ever touched by the one thread that owns its slot.
  [[nodiscard]] sched::run_context& context_for_current_thread() noexcept;

  engine_options options_;
  unsigned jobs_ = 1;
  schedule_cache cache_;
  std::unique_ptr<disk_cache> disk_; ///< null when the persistent tier is off
  std::unique_ptr<thread_pool> pool_; ///< null when jobs_ == 1
  /// jobs_ + 1 per-worker scheduling contexts (see context_for_current_thread).
  std::vector<std::unique_ptr<sched::run_context>> contexts_;
  engine_counters counters_;

  // Source-signature -> canonical digest memo: the hot path hashes each
  // distinct design once, then recognizes it by signature. Bounded by
  // entry count AND bytes (signatures embed raw .dfg text and the
  // canonical_of maps scale with design size, so a stream of distinct
  // large inline designs must not grow memory past the operator's cache
  // budget); wiped when either bound trips - the schedule cache, not the
  // memo, is the capacity story.
  std::unordered_map<std::string, memo_entry> source_memo_;
  std::size_t source_memo_bytes_ = 0;
  static constexpr std::size_t source_memo_limit = 1 << 16;
  [[nodiscard]] std::size_t source_memo_byte_budget() const noexcept;
};

} // namespace softsched::serve
