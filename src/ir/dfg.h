// dfg.h - a dataflow graph: the precedence graph of Definition 1 plus the
// operation kind of every vertex. This is the unit of work both the soft
// (threaded) scheduler and the hard baselines consume.
#pragma once

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "graph/precedence_graph.h"
#include "ir/operation.h"
#include "ir/resource.h"

namespace softsched::ir {

using graph::vertex_id;

/// Dataflow graph over a resource library. The vertex delay stored in the
/// underlying precedence graph is the operation latency (wire vertices may
/// carry any positive delay).
class dfg {
public:
  dfg(std::string name, const resource_library& library)
      : name_(std::move(name)), library_(&library) {}

  /// Adds an operation whose inputs are the given producer vertices.
  /// Latency comes from the library.
  vertex_id add_op(op_kind kind, std::initializer_list<vertex_id> inputs,
                   std::string name = {});
  vertex_id add_op(op_kind kind, std::span<const vertex_id> inputs,
                   std::string name = {});

  /// Adds a wire-delay pseudo operation with an explicit delay.
  vertex_id add_wire(int delay, std::initializer_list<vertex_id> inputs,
                     std::string name = {});

  /// Adds a dependence edge between existing operations.
  void add_dependence(vertex_id from, vertex_id to) { graph_.add_edge(from, to); }

  [[nodiscard]] op_kind kind(vertex_id v) const;
  [[nodiscard]] resource_class unit_class(vertex_id v) const { return class_of(kind(v)); }

  [[nodiscard]] const graph::precedence_graph& graph() const noexcept { return graph_; }
  [[nodiscard]] graph::precedence_graph& graph() noexcept { return graph_; }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const resource_library& library() const noexcept { return *library_; }

  [[nodiscard]] std::size_t op_count() const noexcept { return graph_.vertex_count(); }

  /// Number of operations of a given kind.
  [[nodiscard]] std::size_t count_kind(op_kind kind) const;

  /// Number of operations needing a given FU class.
  [[nodiscard]] std::size_t count_class(resource_class cls) const;

  /// Throws graph_error / precondition_error when structurally invalid.
  void validate() const { graph_.validate(); }

private:
  std::string name_;
  const resource_library* library_;
  graph::precedence_graph graph_;
  std::vector<op_kind> kinds_;
};

} // namespace softsched::ir
