// cache.h - the sharded, byte-budgeted LRU schedule cache behind the batch
// scheduling service: content-addressed by ir::dfg_digest schedule keys
// (canonical DFG digest + allocation + scheduler options), storing the
// complete scheduling outcome so a repeated request never re-runs
// Algorithm 1.
//
// Concurrency: N mutex-striped shards; a key maps to one shard by its
// digest bits, and every operation takes exactly one shard mutex. Eviction
// is per shard (LRU within the shard against byte_budget / N), so shards
// never contend with each other. Counters are per shard and aggregated on
// read.
//
// Determinism: lookup/insert order decides LRU state, so callers that need
// reproducible hit patterns (the serve engine) serialize their cache
// traffic; the striping exists for concurrent *readers/writers* that do
// not need that property (docs/DESIGN.md §6).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/threaded_graph.h"
#include "ir/dfg_hash.h"

namespace softsched::serve {

/// The cached outcome of scheduling one request: the exact payload a
/// response carries (minus timing). Infeasible outcomes are cached too -
/// re-asking an impossible allocation should be as cheap as re-asking a
/// possible one.
struct schedule_result {
  bool feasible = false;
  std::string infeasible_reason; ///< set iff !feasible
  std::size_t ops = 0;
  long long latency = -1;              ///< final ||S|| in states; -1 when infeasible
  std::vector<long long> start_times;  ///< per-op ASAP start cycle (source id order)
  std::vector<int> unit_of;            ///< per-op functional unit (thread index)
  core::schedule_stats stats;

  /// Approximate heap + object footprint, the unit of the cache budget.
  [[nodiscard]] std::size_t bytes() const noexcept;

  /// Value equality (stats included) - the determinism witness the serve
  /// tests compare across worker counts and cache sizes.
  [[nodiscard]] bool same_schedule(const schedule_result& other) const;
};

/// Aggregated counters across all shards. hits/misses count lookup()
/// calls; insertions/evictions/rejected_oversize count insert() outcomes;
/// entries/bytes describe current residency.
struct cache_counters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejected_oversize = 0; ///< value alone exceeded a shard's budget
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

/// Sharded LRU cache: ir::dfg_digest -> schedule_result. Thread-safe.
/// Values are held and returned as shared_ptr<const ...>: a hit bumps a
/// refcount instead of deep-copying schedule arrays inside the shard lock,
/// and the immutability makes sharing across concurrent readers sound.
class schedule_cache {
public:
  using result_ptr = std::shared_ptr<const schedule_result>;

  /// `byte_budget` is split evenly across `shard_count` shards (both
  /// clamped to >= 1). A budget of 0 caches nothing (every insert is
  /// rejected) but stays fully operational.
  explicit schedule_cache(std::size_t byte_budget, unsigned shard_count = 16);

  schedule_cache(const schedule_cache&) = delete;
  schedule_cache& operator=(const schedule_cache&) = delete;

  /// Returns the cached result and refreshes its LRU position, or nullptr
  /// on miss. O(1) regardless of schedule size.
  [[nodiscard]] result_ptr lookup(const ir::dfg_digest& key);

  /// Inserts (or refreshes) key -> value, then evicts least-recently-used
  /// entries of the same shard until the shard fits its budget. A value
  /// larger than a whole shard's budget is rejected instead of evicting
  /// everything to no avail. `value` must be non-null.
  void insert(const ir::dfg_digest& key, result_ptr value);
  void insert(const ir::dfg_digest& key, schedule_result value);

  /// Drops every entry; cumulative counters (hits/misses/...) survive.
  void clear();

  [[nodiscard]] cache_counters counters() const;

  /// Which shard a key maps to (stable for the cache's lifetime). Exposed
  /// so shard-targeted fault injection (serve/daemon.h) and tests can
  /// predict which shard a given request touches.
  [[nodiscard]] unsigned shard_index(const ir::dfg_digest& key) const noexcept;

  [[nodiscard]] unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }
  [[nodiscard]] std::size_t shard_budget() const noexcept { return shard_budget_; }

private:
  struct entry {
    ir::dfg_digest key;
    result_ptr value;
    std::size_t bytes = 0;
  };
  using lru_list = std::list<entry>;

  struct shard {
    mutable std::mutex mutex;
    lru_list lru; ///< front = most recently used
    std::unordered_map<ir::dfg_digest, lru_list::iterator, ir::dfg_digest_hash> index;
    std::size_t bytes = 0;
    cache_counters tally; ///< entries/bytes unused here (derived on read)
  };

  [[nodiscard]] shard& shard_of(const ir::dfg_digest& key);

  std::vector<std::unique_ptr<shard>> shards_;
  std::size_t shard_budget_ = 0;
};

} // namespace softsched::serve
