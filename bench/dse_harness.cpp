// dse_harness - focused runner for the design-space-exploration scenario:
// the same two fixed grids perf_harness embeds into BENCH_softsched.json
// (see bench/dse_scenario.h), as a standalone document for quick
// throughput/determinism checks without re-running the full perf suite.
//
// Usage: dse_harness [--out PATH] [--seed N] [--jobs N]
//   --jobs 0 (default) uses every hardware thread.
// Exits nonzero if any grid's 1-job and N-job runs diverged.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "dse_scenario.h"

int main(int argc, char** argv) {
  std::string out_path = "BENCH_dse.json";
  std::uint64_t seed = 20260729;
  unsigned jobs = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::stoul(argv[++i]));
    } else {
      std::cerr << "usage: dse_harness [--out PATH] [--seed N] [--jobs N]\n";
      return 2;
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }

  softsched::json_writer j(out);
  j.begin_object();
  j.member("schema", "softsched-dse-v1");
  j.member("seed", seed);
  j.key("dse");
  const bool ok = softsched::bench::write_dse_scenario(j, seed, jobs);
  j.end_object();
  out << '\n';
  if (!j.done() || !out) {
    std::cerr << "failed to emit well-formed JSON to " << out_path << "\n";
    return 1;
  }
  std::cerr << "dse_harness: wrote " << out_path << "\n";
  return ok ? 0 : 1;
}
