// extract.h - hard-schedule extraction: the deferred "hard decision" of
// Section 3. Once all information is in, the exact operation -> time-step
// mapping is read off the threaded state by an ASAP pass; the thread of
// each operation is its functional-unit binding.
#pragma once

#include "core/threaded_graph.h"
#include "hard/schedule.h"

namespace softsched::hard {

/// Converts a (fully scheduled) threaded state into a hard schedule:
/// start(v) = ||-> v|| - delay(v), unit(v) = thread(v), makespan = ||S||.
/// Operations not yet scheduled in the state keep start = -1.
[[nodiscard]] schedule extract_schedule(core::threaded_graph& state);

} // namespace softsched::hard
