// binding_test.cpp - the HLS thread binding layer: resource-class tags,
// dedicated wire threads, source-graph growth underneath a live state,
// and the transitive-closure cache refresh that makes growth safe.
#include <gtest/gtest.h>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "graph/topo.h"
#include "ir/benchmarks.h"
#include "util/check.h"

namespace sg = softsched::graph;
namespace sc = softsched::core;
namespace si = softsched::ir;
using sg::vertex_id;

TEST(Binding, ThreadLayoutFollowsResourceSet) {
  const si::resource_library lib;
  const si::dfg d = si::make_hal(lib);
  sc::threaded_graph state = sc::make_hls_state(d, si::resource_set{3, 2, 1});
  ASSERT_EQ(state.thread_count(), 6);
  EXPECT_EQ(state.thread_tag(0), static_cast<int>(si::resource_class::alu));
  EXPECT_EQ(state.thread_tag(2), static_cast<int>(si::resource_class::alu));
  EXPECT_EQ(state.thread_tag(3), static_cast<int>(si::resource_class::multiplier));
  EXPECT_EQ(state.thread_tag(4), static_cast<int>(si::resource_class::multiplier));
  EXPECT_EQ(state.thread_tag(5), static_cast<int>(si::resource_class::memory_port));
}

TEST(Binding, VertexTagsFollowOpClasses) {
  const si::resource_library lib;
  si::dfg d("t", lib);
  const vertex_id a = d.add_op(si::op_kind::add, {});
  const vertex_id m = d.add_op(si::op_kind::mul, {});
  const vertex_id ld = d.add_op(si::op_kind::load, {});
  const vertex_id w = d.add_wire(2, {});
  EXPECT_EQ(sc::hls_vertex_tag(d, a), static_cast<int>(si::resource_class::alu));
  EXPECT_EQ(sc::hls_vertex_tag(d, m), static_cast<int>(si::resource_class::multiplier));
  EXPECT_EQ(sc::hls_vertex_tag(d, ld), static_cast<int>(si::resource_class::memory_port));
  // Wire tags are unique per vertex (dedicated units).
  EXPECT_EQ(sc::hls_vertex_tag(d, w), sc::wire_tag_base + static_cast<int>(w.value()));
}

TEST(Binding, WireVertexNeedsItsDedicatedThread) {
  const si::resource_library lib;
  si::dfg d("t", lib);
  const vertex_id a = d.add_op(si::op_kind::add, {}, "a");
  const vertex_id w = d.add_wire(2, {a}, "w");
  sc::threaded_graph state = sc::make_hls_state(d, si::resource_set{1, 1, 1});
  state.schedule(a);
  // No wire thread yet: scheduling the wire has no compatible thread.
  EXPECT_THROW(state.schedule(w), softsched::infeasible_error);
  const int wire_thread = sc::add_wire_thread(state, w);
  state.schedule(w);
  EXPECT_EQ(state.thread_of(w), wire_thread);
  state.check_invariants();
}

TEST(Binding, TwoWiresNeverShareAThread) {
  const si::resource_library lib;
  si::dfg d("t", lib);
  const vertex_id a = d.add_op(si::op_kind::add, {}, "a");
  const vertex_id w1 = d.add_wire(1, {a}, "w1");
  const vertex_id w2 = d.add_wire(1, {a}, "w2");
  sc::threaded_graph state = sc::make_hls_state(d, si::resource_set{1, 1, 1});
  state.schedule(a);
  sc::add_wire_thread(state, w1);
  sc::add_wire_thread(state, w2);
  state.schedule(w1);
  state.schedule(w2);
  EXPECT_NE(state.thread_of(w1), state.thread_of(w2));
  // Wires are dedicated: two independent wires must stay unordered.
  EXPECT_FALSE(state.state_precedes(w1, w2));
  EXPECT_FALSE(state.state_precedes(w2, w1));
}

TEST(Binding, SourceGraphGrowthRefreshesClosure) {
  // The closure cache syncs via precedence_graph::cursor(): new vertices
  // and edges added mid-schedule must be honoured by later selects
  // (incrementally while the graph only grows; see docs/DESIGN.md §4).
  const si::resource_library lib;
  si::dfg d("t", lib);
  const vertex_id a = d.add_op(si::op_kind::add, {}, "a");
  const vertex_id b = d.add_op(si::op_kind::add, {}, "b");
  sc::threaded_graph state = sc::make_hls_state(d, si::resource_set{1, 1, 1});
  state.schedule(a);
  state.schedule(b); // a, b independent: both on the single ALU thread

  // Growth: c depends on both.
  const vertex_id c = d.add_op(si::op_kind::add, {a, b}, "c");
  state.schedule(c);
  EXPECT_TRUE(state.state_precedes(a, c));
  EXPECT_TRUE(state.state_precedes(b, c));
  state.check_invariants();

  // Growth again: d2 feeds nothing but must order after its input c.
  const vertex_id d2 = d.add_op(si::op_kind::add, {c}, "d");
  state.schedule(d2);
  EXPECT_TRUE(state.state_precedes(c, d2));
  state.check_invariants();
}

TEST(Binding, EdgeRemovalLoosensOnlyFutureDecisions) {
  // Removing a G edge (spill rewiring does this) must not invalidate the
  // already-committed state: the state order may stay tighter than G.
  const si::resource_library lib;
  si::dfg d("t", lib);
  const vertex_id a = d.add_op(si::op_kind::add, {}, "a");
  const vertex_id b = d.add_op(si::op_kind::add, {a}, "b");
  sc::threaded_graph state = sc::make_hls_state(d, si::resource_set{2, 1, 1});
  state.schedule(a);
  state.schedule(b);
  ASSERT_TRUE(state.state_precedes(a, b));
  d.graph().remove_edge(a, b);
  // The committed relation survives; invariants still hold (the state is
  // allowed to be tighter than G).
  EXPECT_TRUE(state.state_precedes(a, b));
  EXPECT_NO_THROW(state.check_invariants());
}

TEST(Binding, MakeStateRejectsMissingClasses) {
  const si::resource_library lib;
  const si::dfg d = si::make_hal(lib); // needs ALUs and multipliers
  EXPECT_THROW((void)sc::make_hls_state(d, si::resource_set{0, 2, 1}),
               softsched::infeasible_error);
  EXPECT_THROW((void)sc::make_hls_state(d, si::resource_set{2, 0, 1}),
               softsched::infeasible_error);
  // Memory ports only matter if the DFG has loads/stores.
  EXPECT_NO_THROW((void)sc::make_hls_state(d, si::resource_set{2, 2, 0}));
}

TEST(Binding, NegativeResourceCountsRejected) {
  const si::resource_library lib;
  const si::dfg d = si::make_hal(lib);
  EXPECT_THROW((void)sc::make_hls_state(d, si::resource_set{-1, 2, 1}),
               softsched::precondition_error);
}
