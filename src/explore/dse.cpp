#include "explore/dse.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "util/check.h"
#include "util/thread_pool.h"

namespace softsched::explore {

namespace {

using clock_type = std::chrono::steady_clock;

double millis_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - t0).count();
}

bool same_allocation(const ir::resource_set& a, const ir::resource_set& b) {
  return a.alus == b.alus && a.multipliers == b.multipliers &&
         a.memory_ports == b.memory_ports;
}

} // namespace

bool point_result::same_schedule(const point_result& other) const {
  return backend == other.backend && point.index == other.point.index &&
         same_allocation(point.resources, other.point.resources) &&
         point.mul_latency == other.point.mul_latency &&
         point.iter_budget == other.point.iter_budget && feasible == other.feasible &&
         infeasible_reason == other.infeasible_reason && ops == other.ops &&
         latency == other.latency && area == other.area &&
         start_times == other.start_times && unit_of == other.unit_of &&
         stats == other.stats;
}

std::size_t exploration_result::feasible_count() const {
  std::size_t n = 0;
  for (const point_result& p : points) n += p.feasible ? 1 : 0;
  return n;
}

double exploration_result::points_per_sec() const {
  return wall_ms > 0 ? static_cast<double>(points.size()) / (wall_ms / 1e3) : 0.0;
}

bool exploration_result::same_outcome(const exploration_result& other) const {
  if (points.size() != other.points.size() || backends != other.backends ||
      frontiers != other.frontiers || frontier != other.frontier)
    return false;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (!points[i].same_schedule(other.points[i])) return false;
  return true;
}

point_result run_point(const grid_spec& spec, const design_point& point,
                       meta::meta_kind meta) {
  sched::backend_options options;
  options.meta = meta;
  return run_point(spec, point, sched::get_backend("soft"), options);
}

point_result run_point(const grid_spec& spec, const design_point& point,
                       const sched::scheduler_backend& backend,
                       const sched::backend_options& options) {
  sched::run_context ctx(sched::arena_mode::off); // one-shot: skip the block grab
  return run_point(spec, point, backend, options, ctx);
}

point_result run_point(const grid_spec& spec, const design_point& point,
                       const sched::scheduler_backend& backend,
                       const sched::backend_options& options,
                       sched::run_context& ctx) {
  SOFTSCHED_EXPECT(options.meta != meta::meta_kind::random,
                   "exploration needs a deterministic meta schedule");
  point_result r;
  r.point = point;
  r.backend = backend.name();
  r.area = allocation_area(point.resources);

  // Everything below is private to this job: library, DFG, and whatever
  // state the backend builds. Share-nothing is the determinism argument;
  // backends are stateless, so sharing the registry instance is sound.
  ir::resource_library library;
  apply_point_latency(point, library);
  const ir::dfg design = build_design(spec.design, library);
  r.ops = design.op_count();

  // The budget axis lives on the point; a point off the axis (-1) defers
  // to whatever the caller's options carry (normally the backend default).
  sched::backend_options point_options = options;
  if (point.iter_budget >= 0) point_options.iter_budget = point.iter_budget;

  const auto t0 = clock_type::now();
  sched::backend_outcome outcome =
      backend.run({design, library, point.resources, point_options}, ctx);
  r.wall_ms = millis_since(t0);
  r.feasible = outcome.feasible;
  r.infeasible_reason = std::move(outcome.infeasible_reason);
  r.latency = outcome.latency;
  r.start_times = std::move(outcome.start_times);
  r.unit_of = std::move(outcome.unit_of);
  r.stats = outcome.stats;
  return r;
}

exploration_result run_exploration(const grid_spec& spec,
                                   const exploration_options& options) {
  const std::vector<design_point> points = enumerate_grid(spec);
  exploration_result out;
  out.backends = options.backends.empty() ? std::vector<std::string>{"soft"}
                                          : options.backends;
  // Resolve every backend before any point runs: an unknown name is a
  // caller error, not 24 infeasible points. Duplicates are rejected too -
  // they would double the grid and emit a JSON report whose "frontiers"
  // object repeats a key, which the repo's own strict parser refuses.
  std::vector<const sched::scheduler_backend*> backends;
  backends.reserve(out.backends.size());
  for (const std::string& name : out.backends) {
    const sched::scheduler_backend* backend = &sched::get_backend(name);
    SOFTSCHED_EXPECT(std::find(backends.begin(), backends.end(), backend) ==
                         backends.end(),
                     "duplicate scheduler backend '" + name + "' in exploration");
    backends.push_back(backend);
  }
  sched::backend_options bopt;
  bopt.meta = options.meta;
  bopt.iter_budget = options.iter_budget;

  const std::size_t total = points.size() * backends.size();
  out.points.resize(total);
  out.jobs = options.jobs < 1 ? thread_pool::hardware_workers()
                              : static_cast<unsigned>(options.jobs);
  // One job per (backend, point) at most: extra workers would only sit
  // idle, and an absurd --jobs value must not translate into thousands of
  // threads.
  if (out.jobs > total) out.jobs = static_cast<unsigned>(total == 0 ? 1 : total);

  const auto t0 = clock_type::now();
  {
    // Each job writes only its own pre-allocated slot, so the result vector
    // needs no lock and the outcome no longer depends on completion order.
    // Per-worker run_contexts ride along: worker i owns slot i, the
    // submitting thread the extra slot (parallel_for_index runs inline for
    // a 1-worker pool), and a context never changes a point's values.
    thread_pool pool(out.jobs);
    const auto mode = options.arena ? sched::arena_mode::on : sched::arena_mode::off;
    const std::size_t block = options.arena_block_bytes > 0
                                  ? options.arena_block_bytes
                                  : util::arena::default_block_bytes;
    std::vector<std::unique_ptr<sched::run_context>> contexts;
    contexts.reserve(out.jobs + 1);
    for (unsigned c = 0; c <= out.jobs; ++c)
      contexts.push_back(std::make_unique<sched::run_context>(mode, block));
    parallel_for_index(&pool, total, [&](std::size_t i) {
      const std::size_t b = i / points.size();
      const int worker = thread_pool::current_worker_index();
      sched::run_context& ctx =
          *contexts[worker >= 0 ? static_cast<std::size_t>(worker) : out.jobs];
      out.points[i] = run_point(spec, points[i % points.size()], *backends[b], bopt, ctx);
    });
  }
  out.wall_ms = millis_since(t0);

  // One frontier per backend, each computed over its contiguous block but
  // indexed into the global points vector.
  out.frontiers.resize(backends.size());
  for (std::size_t b = 0; b < backends.size(); ++b) {
    std::vector<objective> objectives(points.size());
    const std::size_t base = b * points.size();
    for (std::size_t i = 0; i < points.size(); ++i)
      objectives[i] = objective{out.points[base + i].area, out.points[base + i].latency,
                                out.points[base + i].feasible};
    out.frontiers[b] = pareto_frontier(objectives);
    for (int& index : out.frontiers[b]) index += static_cast<int>(base);
  }
  out.frontier = out.frontiers.front();
  return out;
}

void write_schedule_stats(json_writer& j, const core::schedule_stats& s) {
  j.begin_object();
  j.member("select_calls", s.select_calls);
  j.member("positions_scanned", s.positions_scanned);
  j.member("commits", s.commits);
  j.member("label_passes", s.label_passes);
  j.member("cross_edge_updates", s.cross_edge_updates);
  j.member("nodes_relabeled", s.nodes_relabeled);
  j.member("closure_rebuilds", s.closure_rebuilds);
  j.member("closure_syncs", s.closure_syncs);
  j.member("closure_rows_touched", s.closure_rows_touched);
  j.end_object();
}

void write_report(json_writer& j, const grid_spec& spec,
                  const exploration_result& result) {
  const auto axis = [&](std::string_view name, const axis_range& a) {
    j.key(name);
    j.begin_array();
    j.value(a.lo);
    j.value(a.hi);
    j.end_array();
  };

  j.begin_object();
  j.member("design", spec.design.name());
  j.member("ops", result.points.empty() ? std::size_t{0} : result.points.front().ops);
  j.key("grid");
  j.begin_object();
  axis("alus", spec.alus);
  axis("muls", spec.muls);
  axis("mems", spec.mems);
  axis("mul_latency", spec.mul_latency);
  axis("iter_budget", spec.iter_budget);
  j.member("points", result.points.size());
  j.end_object();
  j.member("jobs", static_cast<unsigned long long>(result.jobs));
  j.member("wall_ms", result.wall_ms);
  j.member("points_per_sec", result.points_per_sec());
  j.member("feasible", result.feasible_count());
  j.key("backends");
  j.begin_array();
  for (const std::string& name : result.backends) j.value(name);
  j.end_array();

  j.key("points");
  j.begin_array();
  for (const point_result& p : result.points) {
    j.begin_object();
    j.member("index", p.point.index);
    j.member("backend", p.backend);
    j.member("resources", p.point.resources.label());
    j.member("alus", p.point.resources.alus);
    j.member("muls", p.point.resources.multipliers);
    j.member("mems", p.point.resources.memory_ports);
    j.member("mul_latency", p.point.mul_latency);
    j.member("iter_budget", p.point.iter_budget);
    j.member("feasible", p.feasible);
    j.member("area", p.area);
    j.member("latency", p.latency);
    j.member("wall_ms", p.wall_ms);
    if (!p.feasible) j.member("infeasible_reason", p.infeasible_reason);
    j.key("stats");
    write_schedule_stats(j, p.stats);
    j.end_object();
  }
  j.end_array();

  // Per-backend Pareto frontiers side by side; "frontier" stays the first
  // backend's for pre-registry consumers of the report.
  j.key("frontiers");
  j.begin_object();
  for (std::size_t b = 0; b < result.frontiers.size(); ++b) {
    j.key(result.backends[b]);
    j.begin_array();
    for (const int i : result.frontiers[b]) {
      const point_result& p = result.points[static_cast<std::size_t>(i)];
      j.begin_object();
      j.member("index", p.point.index);
      j.member("resources", p.point.resources.label());
      j.member("mul_latency", p.point.mul_latency);
      j.member("area", p.area);
      j.member("latency", p.latency);
      j.end_object();
    }
    j.end_array();
  }
  j.end_object();
  j.key("frontier");
  j.begin_array();
  for (const int i : result.frontier) {
    const point_result& p = result.points[static_cast<std::size_t>(i)];
    j.begin_object();
    j.member("index", p.point.index);
    j.member("resources", p.point.resources.label());
    j.member("mul_latency", p.point.mul_latency);
    j.member("area", p.area);
    j.member("latency", p.latency);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

} // namespace softsched::explore
