// incremental_test.cpp - equivalence properties for the incremental hot
// path: (1) a transitive_closure grown in place through random
// add_vertex/add_edge interleavings must stay bit-for-bit equal to a
// from-scratch rebuild; (2) grow_from() must replay a precedence_graph's
// growth exactly, including across reach-preserving rewires; (3) the
// dirty-region relabeling of threaded_graph must agree with a full
// label() pass after every commit, through schedules and refinement
// storms alike.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "graph/generators.h"
#include "graph/precedence_graph.h"
#include "graph/reachability.h"
#include "ir/benchmarks.h"
#include "meta/meta_schedule.h"
#include "refine/refinement.h"
#include "util/check.h"
#include "util/rng.h"

namespace sg = softsched::graph;
namespace sc = softsched::core;
namespace si = softsched::ir;
namespace sm = softsched::meta;
namespace sf = softsched::refine;
using sg::vertex_id;
using softsched::rng;

namespace {

/// Exhaustive reaches() comparison (independent of equals(), so the two
/// check each other).
void expect_same_relation(const sg::transitive_closure& a, const sg::transitive_closure& b) {
  ASSERT_EQ(a.vertex_count(), b.vertex_count());
  for (std::uint32_t u = 0; u < a.vertex_count(); ++u)
    for (std::uint32_t w = 0; w < a.vertex_count(); ++w)
      ASSERT_EQ(a.reaches(vertex_id(u), vertex_id(w)), b.reaches(vertex_id(u), vertex_id(w)))
          << "pair (" << u << ", " << w << ")";
}

} // namespace

TEST(IncrementalClosure, RandomGrowthMatchesRebuildBitForBit) {
  // Property: interleave add_vertex / add_edge (DAG kept by construction:
  // edges only point to higher creation indices) with queries; after every
  // mutation the incrementally grown closure equals a fresh rebuild.
  for (const std::uint64_t seed : {7u, 19u, 101u, 555u}) {
    rng rand(seed);
    sg::precedence_graph g;
    g.add_vertex(1);
    sg::transitive_closure grown(g);

    for (int step = 0; step < 120; ++step) {
      if (rand.chance(0.4)) {
        g.add_vertex(1 + static_cast<int>(rand.below(3)));
        grown.add_vertex();
      } else {
        const auto n = static_cast<std::uint32_t>(g.vertex_count());
        if (n < 2) continue;
        const vertex_id from(static_cast<std::uint32_t>(rand.below(n - 1)));
        const vertex_id to(
            static_cast<std::uint32_t>(from.value() + 1 + rand.below(n - 1 - from.value())));
        const bool existed = g.has_edge(from, to);
        g.add_edge(from, to);
        const std::size_t touched = grown.add_edge(from, to);
        if (existed) {
          EXPECT_EQ(touched, 0u); // set semantics: no-op edges touch nothing
        }
      }
      const sg::transitive_closure rebuilt(g);
      ASSERT_TRUE(grown.equals(rebuilt)) << "seed " << seed << " step " << step;
      ASSERT_EQ(grown.pair_count(), rebuilt.pair_count());
    }
    expect_same_relation(grown, sg::transitive_closure(g));
  }
}

TEST(IncrementalClosure, AddEdgeRejectsCycles) {
  sg::precedence_graph g;
  const vertex_id a = g.add_vertex(1);
  const vertex_id b = g.add_vertex(1);
  const vertex_id c = g.add_vertex(1);
  g.add_edge(a, b);
  g.add_edge(b, c);
  sg::transitive_closure closure(g);
  EXPECT_THROW(closure.add_edge(c, a), softsched::graph_error);
  EXPECT_THROW(closure.add_edge(b, a), softsched::graph_error);
  EXPECT_EQ(closure.add_edge(a, c), 0u); // already implied; no rows change
}

TEST(IncrementalClosure, GrowFromReplaysGraphGrowth) {
  rng rand(42);
  sg::precedence_graph g = sg::gnp_dag(12, 0.3, 1, 2, rand);
  sg::transitive_closure closure(g);
  sg::graph_cursor cursor = g.cursor();

  for (int round = 0; round < 10; ++round) {
    // A growth burst: new vertices wired to existing ones.
    const auto base = static_cast<std::uint32_t>(g.vertex_count());
    const vertex_id fresh = g.add_vertex(1);
    for (int i = 0; i < 3; ++i) {
      const vertex_id src(static_cast<std::uint32_t>(rand.below(base)));
      g.add_edge(src, fresh);
    }
    closure.grow_from(g, cursor);
    EXPECT_EQ(cursor, g.cursor());
    ASSERT_TRUE(closure.equals(sg::transitive_closure(g))) << "round " << round;
  }
}

TEST(IncrementalClosure, ReachPreservingRemovalKeepsCursorAndConverges) {
  // a -> b; rewire to a -> w -> b with the reach-preserving removal. The
  // rebuild epoch must not change, and once the bypass is complete the
  // grown closure must again equal a rebuild exactly.
  sg::precedence_graph g;
  const vertex_id a = g.add_vertex(1);
  const vertex_id b = g.add_vertex(1);
  const vertex_id pre = g.add_vertex(1);
  g.add_edge(pre, a);
  g.add_edge(a, b);
  sg::transitive_closure closure(g);
  sg::graph_cursor cursor = g.cursor();
  const auto epoch = g.rebuild_epoch();

  g.remove_edge_reach_preserved(a, b);
  const vertex_id w = g.add_vertex(2);
  g.add_edge(a, w);
  g.add_edge(w, b);
  EXPECT_EQ(g.rebuild_epoch(), epoch);

  closure.grow_from(g, cursor);
  ASSERT_TRUE(closure.equals(sg::transitive_closure(g)));
  EXPECT_TRUE(closure.strictly_reaches(pre, b));
  EXPECT_TRUE(closure.strictly_reaches(a, b));
  EXPECT_TRUE(closure.strictly_reaches(w, b));

  // A plain removal, by contrast, demands a rebuild.
  g.remove_edge(w, b);
  EXPECT_NE(g.rebuild_epoch(), epoch);
}

TEST(IncrementalLabels, RandomSchedulesMatchFullRelabel) {
  // Property: after every commit of a random schedule, the incrementally
  // patched sdist/tdist equal a forced full label() pass.
  for (const std::uint64_t seed : {11u, 29u, 83u}) {
    rng rand(seed);
    sg::layered_params lp;
    lp.layers = 6;
    lp.width = 5;
    lp.edge_prob = 0.35;
    const sg::precedence_graph g = sg::layered_random(lp, rand);
    sc::threaded_graph state(g, 3);

    std::vector<vertex_id> order = g.vertices();
    rand.shuffle(order);
    for (const vertex_id v : order) {
      state.schedule(v);
      ASSERT_TRUE(state.labels_match_full_relabel()) << "seed " << seed;
    }
    state.check_invariants();
    // The whole run needed exactly one full pass (the first select); all
    // later labels came from dirty-region patches.
    EXPECT_GT(state.stats().nodes_relabeled, 0u);
  }
}

TEST(IncrementalLabels, RefinementStormMatchesFullRelabelAndRebuild) {
  // The hot path end to end: spills, wire delays, moves and ECOs against a
  // live HLS schedule; after every refinement the patched labels and the
  // incrementally grown closure must match their from-scratch versions
  // (labels checked directly, closure indirectly through check_invariants'
  // correctness condition).
  const si::resource_library lib;
  si::dfg d = si::make_ewf(lib);
  rng rand(404);
  sc::threaded_graph state = sc::make_hls_state(d, si::figure3_constraint(0));
  state.schedule_all(sm::meta_schedule(d.graph(), sm::meta_kind::list_priority));

  for (int step = 0; step < 30; ++step) {
    switch (rand.below(3)) {
    case 0: {
      std::vector<vertex_id> candidates;
      for (const vertex_id v : d.graph().vertices()) {
        if (d.kind(v) == si::op_kind::store || d.kind(v) == si::op_kind::wire) continue;
        if (d.graph().succs(v).empty()) continue;
        candidates.push_back(v);
      }
      sf::apply_spill(d, state,
                      candidates[static_cast<std::size_t>(rand.below(candidates.size()))]);
      break;
    }
    case 1: {
      std::vector<std::pair<vertex_id, vertex_id>> edges;
      for (const vertex_id v : d.graph().vertices()) {
        if (d.kind(v) == si::op_kind::wire) continue;
        for (const vertex_id s : d.graph().succs(v))
          if (d.kind(s) != si::op_kind::wire) edges.emplace_back(v, s);
      }
      const auto [from, to] = edges[static_cast<std::size_t>(rand.below(edges.size()))];
      sf::apply_wire_delay(d, state, from, to, 1 + static_cast<int>(rand.below(2)));
      break;
    }
    default: {
      const vertex_id a(static_cast<std::uint32_t>(rand.below(d.graph().vertex_count())));
      const vertex_id eco =
          d.add_op(si::op_kind::add, {a}, std::string("eco") += std::to_string(step));
      state.schedule(eco);
      break;
    }
    }
    ASSERT_TRUE(state.labels_match_full_relabel()) << "step " << step;
    ASSERT_NO_THROW(state.check_invariants()) << "step " << step;
  }
  // The storm must have exercised the incremental paths, not the fallback.
  EXPECT_GT(state.stats().closure_syncs, 0u);
  EXPECT_GT(state.stats().nodes_relabeled, 0u);
  EXPECT_EQ(state.stats().closure_rebuilds, 1u); // the initial build only
}

TEST(IncrementalLabels, FromScratchModeStaysEquivalent) {
  // set_incremental(false) is the measurable baseline: same decisions,
  // same schedule, only more work.
  const si::resource_library lib;
  const si::dfg d = si::make_arf(lib);
  const auto order = sm::meta_schedule(d.graph(), sm::meta_kind::list_priority);

  sc::threaded_graph fast = sc::make_hls_state(d, si::figure3_constraint(1));
  sc::threaded_graph slow = sc::make_hls_state(d, si::figure3_constraint(1));
  slow.set_incremental(false);
  fast.schedule_all(order);
  slow.schedule_all(order);

  EXPECT_EQ(fast.diameter(), slow.diameter());
  for (const vertex_id v : d.graph().vertices()) {
    EXPECT_EQ(fast.thread_of(v), slow.thread_of(v));
    EXPECT_EQ(fast.source_distance(v), slow.source_distance(v));
    EXPECT_EQ(fast.sink_distance(v), slow.sink_distance(v));
  }
  // The baseline never patches labels; the incremental run patches every
  // commit. (label_passes is not compared: SOFTSCHED_PARANOID adds full
  // self-check passes to the incremental run.)
  EXPECT_EQ(slow.stats().nodes_relabeled, 0u);
  EXPECT_GT(fast.stats().nodes_relabeled, 0u);
}

TEST(IncrementalLabels, IllegalManualCommitStillDiagnosedByNextLabelPass) {
  // Manual commits must not patch labels: an illegal position can close a
  // cycle - even a zero-weight one the patch worklist's lap detector
  // cannot see - and the pre-incremental contract is that the next full
  // label pass (here via diameter()) throws. Same adversarial shape as
  // Legality.PaperLiteralGuardAcceptsCycleCreatingPosition, with delay-0
  // ops so the cycle is zero-weight.
  sg::precedence_graph g;
  const vertex_id v = g.add_vertex(0, "v");
  const vertex_id x = g.add_vertex(0, "x");
  const vertex_id w = g.add_vertex(0, "w");
  const vertex_id q = g.add_vertex(0, "q");
  g.add_edge(v, x);
  g.add_edge(w, q);

  sc::threaded_graph state(g, 2);
  state.commit(state.position_front(0), x);
  state.commit(state.position_after(x), w);
  state.commit(state.position_front(1), q);
  (void)state.diameter(); // labels valid before the corrupting commit

  state.commit(state.position_after(q), v); // closes v -> x -> w -> q -> v
  EXPECT_THROW((void)state.diameter(), softsched::graph_error);
}

TEST(IncrementalBuffers, ReusableOutputBuffersMatchReturningOverloads) {
  const si::resource_library lib;
  const si::dfg d = si::make_fir8(lib);
  sc::threaded_graph state = sc::make_hls_state(d, si::figure3_constraint(0));
  state.schedule_all(sm::meta_schedule(d.graph(), sm::meta_kind::topological));

  std::vector<vertex_id> seq_buf;
  for (int k = 0; k < state.thread_count(); ++k) {
    state.thread_sequence(k, seq_buf);
    EXPECT_EQ(seq_buf, state.thread_sequence(k));
  }
  std::vector<std::pair<vertex_id, vertex_id>> edge_buf(7); // stale content must be cleared
  state.state_edges(edge_buf);
  EXPECT_EQ(edge_buf, state.state_edges());
}
