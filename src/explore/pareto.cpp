#include "explore/pareto.h"

#include <algorithm>

namespace softsched::explore {

long long allocation_area(const ir::resource_set& resources) {
  return alu_area * resources.alus + multiplier_area * resources.multipliers +
         memory_port_area * resources.memory_ports;
}

std::vector<int> pareto_frontier(const std::vector<objective>& objectives) {
  // Sort feasible indices by (area, latency, index); then one sweep keeps a
  // point iff its latency beats the best latency seen at strictly smaller
  // area (ties on both objectives ride along with the keeper).
  std::vector<int> order;
  order.reserve(objectives.size());
  for (std::size_t i = 0; i < objectives.size(); ++i)
    if (objectives[i].feasible) order.push_back(static_cast<int>(i));
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const objective& oa = objectives[static_cast<std::size_t>(a)];
    const objective& ob = objectives[static_cast<std::size_t>(b)];
    if (oa.area != ob.area) return oa.area < ob.area;
    if (oa.latency != ob.latency) return oa.latency < ob.latency;
    return a < b;
  });

  std::vector<int> frontier;
  long long best_latency = 0;
  bool have_best = false;
  long long group_area = 0, group_latency = 0;
  for (const int i : order) {
    const objective& o = objectives[static_cast<std::size_t>(i)];
    if (have_best && o.area == group_area && o.latency == group_latency) {
      frontier.push_back(i); // exact tie with the last keeper
      continue;
    }
    if (have_best && o.latency >= best_latency) continue; // dominated
    frontier.push_back(i);
    best_latency = o.latency;
    have_best = true;
    group_area = o.area;
    group_latency = o.latency;
  }
  return frontier;
}

} // namespace softsched::explore
