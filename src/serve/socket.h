// socket.h - TCP and Unix-domain transports for the resident daemon: the
// socket implementations of serve/transport.h's byte_stream and listener,
// plus the accept loop that runs serve_connection per client.
//
// Layering (docs/ARCHITECTURE.md "Serving"):
//
//   listener (tcp/unix) --accept()--> byte_stream     one per connection
//        socket_server  --thread----> serve_connection(stream, service)
//                                            |
//                                            v
//                                     serve::service   shared, untouched
//
// The server owns connection policy only: the --max-conns bound (beyond it
// a connection is answered with one framed "too_many_connections" +
// retry_after_ms and closed - connection-level shedding, the byte-level
// sibling of the service's queue shedding), conn=<n> fault injection
// (drop / stall the Nth accepted connection), and graceful teardown (a
// shutdown op on any connection stops the listener, half-closes every
// other connection's read side, and waits for each to drain). Everything
// about framing, control ops, and per-connection drain lives in
// serve_connection, shared verbatim with the stdio transport.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "serve/daemon.h"
#include "serve/transport.h"

namespace softsched::serve {

/// A parsed --listen value: "stdio", "tcp:HOST:PORT" (PORT 0 = ephemeral,
/// resolved at bind and reported by listener::address()), or "unix:PATH".
struct listen_spec {
  enum class transport { stdio, tcp, unix_domain };

  transport kind = transport::stdio;
  std::string host;        ///< tcp: dotted IPv4 or "localhost"
  std::uint16_t port = 0;  ///< tcp
  std::string path;        ///< unix: filesystem path of the socket

  /// Parses the --listen grammar; throws precondition_error naming the
  /// accepted forms on anything else.
  [[nodiscard]] static listen_spec parse(std::string_view text);

  /// The spec back in --listen grammar.
  [[nodiscard]] std::string label() const;
};

/// Binds a listening socket for a tcp/unix spec (stdio has no listener).
/// Throws precondition_error when the address cannot be bound. A unix
/// listener unlinks a pre-existing socket file before binding and removes
/// its own on destruction.
[[nodiscard]] std::unique_ptr<listener> make_listener(const listen_spec& spec);

/// Client side: connects to a tcp/unix listener and returns the stream,
/// or null on failure (tests and the load harness retry). The stream's
/// finish_write() half-closes the write side, turning "client sent
/// everything" into the server's clean EOF.
[[nodiscard]] std::unique_ptr<byte_stream> connect_stream(const listen_spec& spec);

/// Connection policy of one socket_server.
struct socket_server_options {
  std::size_t max_connections = 64; ///< open connections served at once
  double retry_after_ms = 10;       ///< hint on the connection shed frame
  connection_options connection;    ///< forwarded to serve_connection
};

/// What one server run did, summed over all its connections.
struct socket_server_summary {
  std::uint64_t frames = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  bool shutdown_requested = false; ///< some connection sent {"op":"shutdown"}
  connection_counters_snapshot conns;
};

/// The accept loop: one reader thread per accepted connection, all running
/// serve_connection against the shared service. run() blocks until a
/// client sends {"op":"shutdown"} or stop() is called, then tears down
/// gracefully: the listener stops, every open connection's read side is
/// half-closed (its client sees complete responses for everything already
/// submitted, then EOF), and every connection thread is joined.
class socket_server {
public:
  /// `accept_from` and `svc` must outlive the server. Connection faults
  /// come from the service's own fault plan (service_options.faults.conns).
  socket_server(listener& accept_from, service& svc, const socket_server_options& options);
  ~socket_server();

  socket_server(const socket_server&) = delete;
  socket_server& operator=(const socket_server&) = delete;

  /// Serves until shutdown; callable once.
  socket_server_summary run();

  /// Thread-safe external stop (the harness's clean end-of-run).
  void stop();

  /// Live transport counters (the stats "conns" object).
  [[nodiscard]] connection_counters& counters() noexcept;

private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

} // namespace softsched::serve
