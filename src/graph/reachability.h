// reachability.h - transitive closure of a precedence graph: the partial
// order <=G of Definition 1. Stored as one bitset row per vertex, so a
// reaches() query is O(1) and building is O(V*E/64).
//
// The closure also supports *incremental growth* (the Algorithm-1 hot
// path): add_vertex()/add_edge() update only the affected rows, and
// grow_from() replays everything a precedence_graph gained since a
// graph_cursor snapshot - an Italiano-style update that costs O(V/64) per
// row actually reaching the new edge's tail instead of a full O(V*E/64)
// rebuild per mutation.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "graph/precedence_graph.h"
#include "util/arena.h"

namespace softsched::graph {

/// Transitive closure. reaches(u, v) is true iff there is a (possibly
/// empty) directed path u ->* v; every vertex reaches itself, matching the
/// reflexive partial order <=G used throughout the paper.
class transitive_closure {
public:
  /// Builds the closure. Throws graph_error on cycles. With a non-null
  /// arena the bitset rows live in that arena (the run_context hot path);
  /// null keeps plain heap storage - results are identical either way.
  explicit transitive_closure(const precedence_graph& g, util::arena* a = nullptr);

  /// Rebuilds this closure over `g` from scratch, reusing the existing
  /// bitset storage when it is large enough - the allocation-free
  /// equivalent of *this = transitive_closure(g) for a warmed-up instance.
  void rebuild(const precedence_graph& g);

  /// u <=G v (reflexive). Defined inline: the schedulers call this once
  /// per (scheduled node, candidate) pair, so the bit test must not cost a
  /// function call.
  [[nodiscard]] bool reaches(vertex_id u, vertex_id v) const {
    return bit(u.value(), v.value());
  }

  /// u <G v (irreflexive / strict).
  [[nodiscard]] bool strictly_reaches(vertex_id u, vertex_id v) const {
    return u != v && bit(u.value(), v.value());
  }

  [[nodiscard]] std::size_t vertex_count() const noexcept { return n_; }

  /// Calls fn(w) for every w != u with u <G w, iterating u's row word by
  /// word (O(V/64) plus one call per reachable vertex). The schedulers use
  /// this to enumerate scheduled successors without testing every vertex.
  template <typename Fn>
  void for_each_strictly_reachable(vertex_id u, Fn&& fn) const {
    const std::size_t live = (n_ + 63) / 64;
    const std::uint64_t* row = bits_.data() + static_cast<std::size_t>(u.value()) * words_;
    const std::size_t self_word = u.value() / 64;
    for (std::size_t i = 0; i < live; ++i) {
      std::uint64_t word = row[i];
      if (i == self_word) word &= ~(std::uint64_t{1} << (u.value() % 64)); // strict
      while (word != 0) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(word));
        word &= word - 1;
        fn(vertex_id(static_cast<std::uint32_t>(i * 64 + b)));
      }
    }
  }

  /// Number of ordered pairs (u, v), u != v, with u <G v.
  [[nodiscard]] std::size_t pair_count() const;

  // -- incremental growth ---------------------------------------------------

  /// Appends one vertex as a new row containing only itself. Row storage
  /// widens geometrically, so a growth burst re-layouts the bitset O(log V)
  /// times, not once per 64 vertices.
  void add_vertex();

  /// Accounts for a new edge u -> v: ORs v's row into every row that
  /// already reaches u (including u's own). Returns the number of rows
  /// updated; 0 when u already reaches v (the edge adds no order). Throws
  /// graph_error if v reaches u - the edge would close a cycle.
  std::size_t add_edge(vertex_id u, vertex_id v);

  /// Replays everything `g` gained since `cursor`: missing vertices first,
  /// then the edge_log() suffix. Requires the cursor to describe this
  /// closure (same vertex count) and the graph's rebuild_epoch() to be
  /// unchanged - callers fall back to a full rebuild otherwise. Advances
  /// `cursor` to g.cursor() and returns the total rows touched.
  std::size_t grow_from(const precedence_graph& g, graph_cursor& cursor);

  /// Bit-for-bit equality of the reachability relation (row strides may
  /// differ; only live columns are compared). Used by the property tests
  /// and the SOFTSCHED_PARANOID cross-checks.
  [[nodiscard]] bool equals(const transitive_closure& other) const;

private:
  [[nodiscard]] bool bit(std::size_t row, std::size_t col) const {
    return (bits_[row * words_ + col / 64] >> (col % 64)) & 1u;
  }
  void set_bit(std::size_t row, std::size_t col) {
    bits_[row * words_ + col / 64] |= std::uint64_t{1} << (col % 64);
  }
  void widen_rows(std::size_t new_words);

  void build(const precedence_graph& g);

  std::size_t n_ = 0;
  std::size_t words_ = 0; // row stride; may exceed (n_ + 63) / 64 (growth slack)
  util::arena_vector<std::uint64_t> bits_;
};

} // namespace softsched::graph
