// fig3_table - reproduces the paper's Figure 3: schedule length (control
// states) of the HAL, AR, EF and FIR benchmarks under three resource
// constraints, for the threaded scheduler driven by meta schedules 1-4 and
// for the traditional list scheduler.
//
// The paper's own numbers are printed alongside for comparison. Absolute
// values can differ by a cycle or two because the original UCI benchmark
// netlists are reconstructions here (docs/DESIGN.md §2); the reproduction
// target is the *shape*: threaded scheduling matching list scheduling
// across meta schedules and constraints.
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "hard/list_scheduler.h"
#include "ir/benchmarks.h"
#include "meta/meta_schedule.h"
#include "util/table.h"

namespace si = softsched::ir;
namespace sc = softsched::core;
namespace sm = softsched::meta;
namespace sh = softsched::hard;

namespace {

// Figure 3 as printed in the paper: {benchmark, algorithm} -> three lengths.
const std::map<std::string, std::vector<int>> paper_reference = {
    {"HAL/meta sched1", {8, 6, 14}}, {"HAL/meta sched2", {8, 6, 14}},
    {"HAL/meta sched3", {8, 6, 13}}, {"HAL/meta sched4", {8, 6, 13}},
    {"HAL/list sched", {8, 6, 13}},  {"AR/meta sched1", {19, 11, 34}},
    {"AR/meta sched2", {19, 11, 34}}, {"AR/meta sched3", {19, 11, 34}},
    {"AR/meta sched4", {19, 11, 34}}, {"AR/list sched", {19, 11, 34}},
    {"EF/meta sched1", {19, 17, 24}}, {"EF/meta sched2", {19, 17, 24}},
    {"EF/meta sched3", {19, 17, 24}}, {"EF/meta sched4", {19, 17, 24}},
    {"EF/list sched", {19, 17, 24}},  {"FIR/meta sched1", {11, 7, 19}},
    {"FIR/meta sched2", {11, 7, 19}}, {"FIR/meta sched3", {11, 7, 19}},
    {"FIR/meta sched4", {11, 7, 19}}, {"FIR/list sched", {11, 7, 19}},
};

long long threaded_length(const si::dfg& d, const si::resource_set& rs,
                          sm::meta_kind kind) {
  sc::threaded_graph state = sc::make_hls_state(d, rs);
  state.schedule_all(sm::meta_schedule(d.graph(), kind));
  return state.diameter();
}

std::string paper_cell(const std::string& key, int column) {
  const auto it = paper_reference.find(key);
  if (it == paper_reference.end()) return "-";
  return std::to_string(it->second[static_cast<std::size_t>(column)]);
}

} // namespace

int main() {
  const si::resource_library lib;
  const std::vector<si::dfg> benchmarks = si::figure3_benchmarks(lib);

  softsched::table tbl;
  std::vector<std::string> header = {"BM", "Sched. Alg."};
  for (int c = 0; c < si::figure3_constraint_count; ++c) {
    header.push_back(si::figure3_constraint(c).label());
    header.push_back("paper");
  }
  tbl.set_header(header);

  for (const si::dfg& d : benchmarks) {
    // Benchmark name maps FIR8 -> FIR for the paper row keys.
    const std::string bm = d.name() == "FIR8" ? "FIR" : d.name();
    for (const sm::meta_kind kind : sm::figure3_meta_kinds) {
      std::vector<std::string> row = {bm, std::string(sm::meta_name(kind))};
      for (int c = 0; c < si::figure3_constraint_count; ++c) {
        const si::resource_set rs = si::figure3_constraint(c);
        row.push_back(std::to_string(threaded_length(d, rs, kind)));
        row.push_back(paper_cell(bm + "/" + std::string(sm::meta_name(kind)), c));
      }
      tbl.add_row(row);
    }
    std::vector<std::string> row = {bm, "list sched"};
    for (int c = 0; c < si::figure3_constraint_count; ++c) {
      const si::resource_set rs = si::figure3_constraint(c);
      row.push_back(std::to_string(sh::list_schedule(d, rs).makespan));
      row.push_back(paper_cell(bm + "/list sched", c));
    }
    tbl.add_row(row);
    tbl.add_separator();
  }

  std::cout << "Figure 3: scheduling results of benchmarks under resource constraints\n"
            << "(measured | paper-reported; lengths in control states)\n\n";
  tbl.print(std::cout);
  return 0;
}
