#include "graph/topo.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace softsched::graph {

std::vector<vertex_id> topological_order(const precedence_graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<std::size_t> in_degree(n);
  for (const vertex_id v : g.vertices()) in_degree[v.value()] = g.preds(v).size();

  // Min-heap on vertex id for deterministic output.
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>, std::greater<>> ready;
  for (std::size_t i = 0; i < n; ++i)
    if (in_degree[i] == 0) ready.push(static_cast<std::uint32_t>(i));

  std::vector<vertex_id> order;
  order.reserve(n);
  while (!ready.empty()) {
    const vertex_id u(ready.top());
    ready.pop();
    order.push_back(u);
    for (const vertex_id w : g.succs(u))
      if (--in_degree[w.value()] == 0) ready.push(w.value());
  }
  if (order.size() != n) throw graph_error("topological_order: graph contains a cycle");
  return order;
}

std::vector<vertex_id> depth_first_order(const precedence_graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<bool> visited(n, false);
  std::vector<vertex_id> order;
  order.reserve(n);

  // Iterative preorder DFS from each source; explicit stack keeps adjacency
  // order stable (push successors reversed so the first successor pops first).
  std::vector<vertex_id> stack;
  auto visit_from = [&](vertex_id root) {
    if (visited[root.value()]) return;
    stack.push_back(root);
    while (!stack.empty()) {
      const vertex_id u = stack.back();
      stack.pop_back();
      if (visited[u.value()]) continue;
      visited[u.value()] = true;
      order.push_back(u);
      const auto succs = g.succs(u);
      for (std::size_t i = succs.size(); i > 0; --i) {
        if (!visited[succs[i - 1].value()]) stack.push_back(succs[i - 1]);
      }
    }
  };
  for (const vertex_id s : g.sources()) visit_from(s);
  // Defensive: cover vertices unreachable from any source (only possible in
  // cyclic graphs, but depth_first_order itself must not hang or drop them).
  for (const vertex_id v : g.vertices()) visit_from(v);
  return order;
}

std::vector<std::vector<vertex_id>> path_partition(const precedence_graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<bool> taken(n, false);
  std::size_t remaining = n;
  std::vector<std::vector<vertex_id>> paths;

  const std::vector<vertex_id> base_order = topological_order(g); // throws on cycles

  while (remaining > 0) {
    // Longest-path DP over the not-yet-taken induced subgraph.
    std::vector<long long> best(n, 0);
    std::vector<vertex_id> best_pred(n, vertex_id::invalid());
    vertex_id tail = vertex_id::invalid();
    long long tail_len = -1;
    for (const vertex_id v : base_order) {
      if (taken[v.value()]) continue;
      long long acc = 0;
      vertex_id arg = vertex_id::invalid();
      for (const vertex_id p : g.preds(v)) {
        if (taken[p.value()]) continue;
        if (best[p.value()] > acc || (best[p.value()] == acc && arg.valid() && p < arg)) {
          acc = best[p.value()];
          arg = p;
        } else if (!arg.valid() && best[p.value()] == acc && acc > 0) {
          arg = p;
        }
      }
      best[v.value()] = acc + g.delay(v);
      best_pred[v.value()] = arg;
      if (best[v.value()] > tail_len || (best[v.value()] == tail_len && tail.valid() && v < tail)) {
        tail_len = best[v.value()];
        tail = v;
      }
    }

    // Peel the path ending at `tail`.
    std::vector<vertex_id> path;
    for (vertex_id v = tail; v.valid(); v = best_pred[v.value()]) {
      path.push_back(v);
      taken[v.value()] = true;
      --remaining;
    }
    std::reverse(path.begin(), path.end());
    paths.push_back(std::move(path));
  }

  // Longest-first ordering; the peeling already tends to produce it, but ties
  // and delay-weighted lengths can interleave, so sort explicitly (stable to
  // keep peel order among equals).
  std::stable_sort(paths.begin(), paths.end(), [&g](const auto& a, const auto& b) {
    auto weight = [&g](const std::vector<vertex_id>& p) {
      long long w = 0;
      for (const vertex_id v : p) w += g.delay(v);
      return w;
    };
    return weight(a) > weight(b);
  });
  return paths;
}

bool is_permutation(const precedence_graph& g, const std::vector<vertex_id>& order) {
  if (order.size() != g.vertex_count()) return false;
  std::vector<bool> seen(g.vertex_count(), false);
  for (const vertex_id v : order) {
    if (!v.valid() || v.value() >= g.vertex_count() || seen[v.value()]) return false;
    seen[v.value()] = true;
  }
  return true;
}

bool is_topological(const precedence_graph& g, const std::vector<vertex_id>& order) {
  if (!is_permutation(g, order)) return false;
  std::vector<std::size_t> position(g.vertex_count());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i].value()] = i;
  for (const vertex_id u : g.vertices())
    for (const vertex_id w : g.succs(u))
      if (position[u.value()] >= position[w.value()]) return false;
  return true;
}

} // namespace softsched::graph
