// softsched_cli - command-line driver for the whole flow: load a design
// (built-in benchmark, .dfg file, or behavioral .beh source), schedule it
// with any registered scheduler backend (soft = the threaded kernel with a
// chosen meta order, list, fds - see src/sched/backend.h), optionally
// apply refinements, and print tables / Gantt charts / DOT.
//
// Examples:
//   softsched_cli --bench ewf --alus 2 --muls 2 --gantt
//   softsched_cli --beh design.beh --backend list
//   softsched_cli --bench hal --meta dfs --spill m1 --stats --dot state.dot
//   softsched_cli --dfg design.dfg --backend fds --latency 20
//   softsched_cli --compare --bench ewf --alus 2 --muls 2
//   softsched_cli --explore --bench ewf --backend all --jobs 8
//   softsched_cli --serve-batch requests.jsonl --out responses.jsonl --jobs 8
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/hls_binding.h"
#include "core/state_dot.h"
#include "core/threaded_graph.h"
#include "explore/dse.h"
#include "graph/distances.h"
#include "hard/extract.h"
#include "hard/schedule.h"
#include "ir/benchmarks.h"
#include "ir/dfg_io.h"
#include "lang/parser.h"
#include "meta/meta_schedule.h"
#include "refine/refinement.h"
#include "regalloc/left_edge.h"
#include "sched/backend.h"
#include "serve/daemon.h"
#include "serve/engine.h"
#include "serve/options.h"
#include "serve/socket.h"
#include "regalloc/lifetime.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/table.h"

namespace si = softsched::ir;
namespace sc = softsched::core;
namespace se = softsched::explore;
namespace sg = softsched::graph;
namespace sh = softsched::hard;
namespace sm = softsched::meta;
namespace sl = softsched::lang;
namespace sf = softsched::refine;
namespace ss = softsched::sched;
namespace sv = softsched::serve;
using sg::vertex_id;

namespace {

struct options {
  std::string bench;
  std::string dfg_file;
  std::string beh_file;
  std::string scheduler = "threaded";
  std::string backend;   // registry name, "all", or comma list; wins over --scheduler
  bool compare = false;  // run every registered backend, print the comparison table
  std::string meta = "list";
  std::uint64_t seed = 1;
  long long latency = -1; // fds target; -1 = critical path + 2
  long long iter_budget = -1; // sdc-iter refinement budget; -1 = backend default
  int alus = 2;
  int muls = 2;
  int mems = 1;
  bool alus_set = false, muls_set = false, mems_set = false;
  std::vector<std::string> spills;
  std::vector<std::string> wires; // from:to:delay
  bool gantt = false;
  bool stats = false;
  bool registers = false;
  std::string dot_file;
  // design-space exploration mode
  bool explore = false;
  int jobs = 0; // 0 = all hardware threads
  std::string alus_range, muls_range, mems_range, mul_lat_range; // "lo:hi" or "n"
  std::string iter_budget_range; // sdc-iter budget axis, "lo:hi" or "n"
  std::string explore_out;
  // batch scheduling service mode
  std::string serve_batch; // JSONL request file; "-" = stdin
  std::string out_file;    // JSONL response file; "-"/empty = stdout
  // resident daemon mode: --serve [file|-], transport picked by --listen
  bool serve_mode = false;
  std::string serve = "-"; // framed request stream (stdio transport only)
  // every serving knob, validated by one shared path (serve/options.h)
  sv::serve_flags serve_flags;
};

[[noreturn]] void usage(const char* argv0, const std::string& error = {}) {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "input (one of):\n"
      << "  --bench <hal|arf|ewf|fir8|fir<N>|iir<N>|fig1>   built-in benchmark\n"
      << "  --dfg <file>                                    DFG text format\n"
      << "  --beh <file>                                    behavioral source\n"
      << "scheduling:\n"
      << "  --backend <soft|list|fds|sdc-iter|all>          scheduler backend (soft)\n"
      << "  --compare                                       all backends, one table\n"
      << "  --scheduler <threaded|list|fds>                 legacy alias of --backend\n"
      << "  --meta <dfs|topo|path|list|random>              soft-backend feed order\n"
      << "  --seed <n>                                      random meta seed\n"
      << "  --latency <n>                                   FDS latency budget\n"
      << "  --iter-budget <n>                               sdc-iter refinement budget\n"
      << "                                                  (0 = base run only; default 8)\n"
      << "  --alus/--muls/--mems <n>                        resources (2/2/1)\n"
      << "  --arena <on|off|BYTES>                          per-run arena allocator (on);\n"
      << "                                                  off = heap baseline, BYTES = block size\n"
      << "refinement (threaded only):\n"
      << "  --spill <op>                                    spill a value\n"
      << "  --wire <from>:<to>:<delay>                      insert wire delay\n"
      << "design-space exploration (needs --bench; 'random<N>' = random DFG):\n"
      << "  --explore                                       sweep a resource grid\n"
      << "  --backend <name>[,<name>...]|all                per-backend frontiers\n"
      << "  --jobs <n>                                      workers (0 = hardware)\n"
      << "  --alus-range/--muls-range/--mems-range <lo:hi>  grid axes (1:4/1:3/1:1)\n"
      << "  --mul-lat-range <lo:hi>                         mul latency axis (2:2)\n"
      << "  --iter-budget-range <lo:hi>                     sdc-iter budget axis (off)\n"
      << "  --explore-out <file>                            JSON report\n"
      << "batch scheduling service (JSONL in -> JSONL out; schema in README):\n"
      << "  --serve-batch <file|->                          request file (- = stdin)\n"
      << "  --out <file|->                                  responses (default stdout)\n"
      << "  --cache-mb <n>                                  schedule cache budget (64)\n"
      << "  --serve-batch-size <n>                          requests per wave (64)\n"
      << "  --serve-compact                                 omit start/unit arrays\n"
      << "  --cache-dir <dir>                               persistent cache tier\n"
      << "  --disk-cache-mb <n>                             disk tier budget (0 = off)\n"
      << "resident daemon (framed requests in -> framed responses out;\n"
      << "wire protocol in docs/SERVING.md; SOFTSCHED_INJECT enables fault\n"
      << "injection for tests):\n"
      << "  --serve [file|-]                                framed stream (- = stdin)\n"
      << "  --listen <stdio|tcp:HOST:PORT|unix:PATH>        transport (stdio)\n"
      << "  --max-conns <n>                                 open-connection bound (64)\n"
      << "  --serve-queue <n>                               admission capacity (256)\n"
      << "  --serve-ordered                                 input-order responses\n"
      << "persistent cache maintenance (docs/SERVING.md \"Persistence\"):\n"
      << "  cache export --cache-dir <dir> [--out <file|->] ship a warm cache\n"
      << "  cache import --cache-dir <dir> --in <file|->    load a shipped cache\n"
      << "               [--disk-cache-mb <n>]              import budget (1024)\n"
      << "output:\n"
      << "  --gantt  --stats  --registers  --dot <file|->\n";
  std::exit(error.empty() ? 0 : 2);
}

options parse_args(int argc, char** argv) {
  options opt;
  auto need = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0], std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bench") opt.bench = need(i);
    else if (arg == "--dfg") opt.dfg_file = need(i);
    else if (arg == "--beh") opt.beh_file = need(i);
    else if (arg == "--scheduler") opt.scheduler = need(i);
    else if (arg == "--backend") opt.backend = need(i);
    else if (arg == "--compare") opt.compare = true;
    else if (arg == "--meta") opt.meta = need(i);
    else if (arg == "--seed") opt.seed = std::strtoull(need(i).c_str(), nullptr, 10);
    else if (arg == "--latency") opt.latency = std::strtoll(need(i).c_str(), nullptr, 10);
    else if (arg == "--iter-budget") {
      const std::string value = need(i);
      if (value.empty() || value.find_first_not_of("0123456789") != std::string::npos)
        usage(argv[0], "--iter-budget must be a non-negative integer, got '" + value + "'");
      opt.iter_budget = std::strtoll(value.c_str(), nullptr, 10);
      if (opt.iter_budget > ss::sdc_iter_max_budget)
        usage(argv[0], "--iter-budget must be at most " +
                           std::to_string(ss::sdc_iter_max_budget));
    }
    else if (arg == "--alus") { opt.alus = std::atoi(need(i).c_str()); opt.alus_set = true; }
    else if (arg == "--muls") { opt.muls = std::atoi(need(i).c_str()); opt.muls_set = true; }
    else if (arg == "--mems") { opt.mems = std::atoi(need(i).c_str()); opt.mems_set = true; }
    else if (arg == "--spill") opt.spills.push_back(need(i));
    else if (arg == "--wire") opt.wires.push_back(need(i));
    else if (arg == "--explore") opt.explore = true;
    else if (arg == "--jobs") { opt.jobs = std::atoi(need(i).c_str()); opt.serve_flags.jobs = opt.jobs; }
    else if (arg == "--alus-range") opt.alus_range = need(i);
    else if (arg == "--muls-range") opt.muls_range = need(i);
    else if (arg == "--mems-range") opt.mems_range = need(i);
    else if (arg == "--mul-lat-range") opt.mul_lat_range = need(i);
    else if (arg == "--iter-budget-range") opt.iter_budget_range = need(i);
    else if (arg == "--explore-out") opt.explore_out = need(i);
    else if (arg == "--serve-batch") opt.serve_batch = need(i);
    else if (arg == "--serve") {
      // The stream argument is optional: `--serve --listen unix:PATH` has
      // no input file; bare `--serve` reads framed stdin.
      opt.serve_mode = true;
      if (i + 1 < argc) {
        const std::string next = argv[i + 1];
        if (next == "-" || next[0] != '-') opt.serve = argv[++i];
      }
    }
    else if (arg == "--listen") opt.serve_flags.listen = need(i);
    else if (arg == "--max-conns") opt.serve_flags.max_conns = std::atoi(need(i).c_str());
    else if (arg == "--serve-queue") opt.serve_flags.serve_queue = std::atoi(need(i).c_str());
    else if (arg == "--serve-ordered") opt.serve_flags.serve_ordered = true;
    else if (arg == "--out") opt.out_file = need(i);
    else if (arg == "--cache-mb") opt.serve_flags.cache_mb = std::atoi(need(i).c_str());
    else if (arg == "--cache-dir") opt.serve_flags.cache_dir = need(i);
    else if (arg == "--disk-cache-mb") opt.serve_flags.disk_cache_mb = std::atoi(need(i).c_str());
    else if (arg == "--serve-batch-size") opt.serve_flags.serve_batch_size = std::atoi(need(i).c_str());
    else if (arg == "--serve-compact") opt.serve_flags.serve_compact = true;
    else if (arg == "--arena") opt.serve_flags.arena = need(i);
    else if (arg == "--gantt") opt.gantt = true;
    else if (arg == "--stats") opt.stats = true;
    else if (arg == "--registers") opt.registers = true;
    else if (arg == "--dot") opt.dot_file = need(i);
    else if (arg == "--help" || arg == "-h") usage(argv[0]);
    else usage(argv[0], "unknown option " + arg);
  }
  const int inputs = static_cast<int>(!opt.bench.empty()) +
                     static_cast<int>(!opt.dfg_file.empty()) +
                     static_cast<int>(!opt.beh_file.empty());
  if (!opt.serve_batch.empty() || opt.serve_mode) {
    if (!opt.serve_batch.empty() && opt.serve_mode)
      usage(argv[0], "--serve (resident daemon) and --serve-batch (one-shot "
                     "batch) are mutually exclusive");
    if (inputs != 0)
      usage(argv[0], "--serve/--serve-batch read designs from their requests, "
                     "not from --bench/--dfg/--beh");
    if (opt.serve_flags.listen != "stdio" && opt.serve != "-")
      usage(argv[0], "--listen tcp:/unix: serves socket clients; it cannot "
                     "also read a --serve request file");
  } else if (opt.serve_flags.listen != "stdio") {
    usage(argv[0], "--listen requires --serve");
  } else if (inputs != 1) {
    usage(argv[0], "exactly one of --bench/--dfg/--beh is required");
  }
  return opt;
}

si::dfg load_design(const options& opt, const si::resource_library& lib) {
  if (!opt.bench.empty()) return si::make_benchmark(opt.bench, lib);
  if (!opt.dfg_file.empty()) {
    std::ifstream in(opt.dfg_file);
    if (!in) throw softsched::precondition_error("cannot open " + opt.dfg_file);
    return si::read_dfg(in, lib);
  }
  std::ifstream in(opt.beh_file);
  if (!in) throw softsched::precondition_error("cannot open " + opt.beh_file);
  std::ostringstream text;
  text << in.rdbuf();
  return sl::compile_behavior(text.str(), opt.beh_file, lib);
}

sm::meta_kind parse_meta(const std::string& name) {
  if (name == "dfs") return sm::meta_kind::depth_first;
  if (name == "topo") return sm::meta_kind::topological;
  if (name == "path") return sm::meta_kind::path_based;
  if (name == "list") return sm::meta_kind::list_priority;
  if (name == "random") return sm::meta_kind::random;
  throw softsched::precondition_error("unknown meta schedule '" + name + "'");
}

// "all", one registry name, or a comma list; every name is resolved before
// anything runs so a typo fails fast.
std::vector<std::string> parse_backend_list(const std::string& spec) {
  if (spec.empty()) return {"soft"};
  if (spec == "all") return ss::backend_names();
  std::vector<std::string> names;
  std::size_t pos = 0;
  for (;;) {
    const auto comma = spec.find(',', pos);
    const std::string name =
        comma == std::string::npos ? spec.substr(pos) : spec.substr(pos, comma - pos);
    (void)ss::get_backend(name);
    names.push_back(name);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return names;
}

// The one validated scheduling surface, mirroring serve/options.h: backend
// selection (with the legacy --scheduler alias folded in), meta order, FDS
// budget and the --arena knob all derive from the raw flags exactly once,
// and every mode - single run, --compare, --explore - consumes this struct
// instead of re-deriving from strings.
struct scheduling_config {
  std::vector<std::string> backends; ///< resolved registry names, never empty
  sm::meta_kind meta = sm::meta_kind::list_priority; ///< never `random`
  bool random_meta = false; ///< --meta random (interactive soft path only)
  std::uint64_t seed = 1;
  long long fds_latency = -1;
  long long iter_budget = -1; ///< sdc-iter budget; -1 = backend default
  sv::arena_flag arena; ///< --arena, parsed by the serve-shared grammar

  [[nodiscard]] const std::string& primary_backend() const { return backends.front(); }
  [[nodiscard]] ss::arena_mode arena_mode() const {
    return arena.enabled ? ss::arena_mode::on : ss::arena_mode::off;
  }
  [[nodiscard]] std::size_t arena_block_bytes() const {
    return arena.block_bytes > 0 ? arena.block_bytes
                                 : softsched::util::arena::default_block_bytes;
  }
  /// The per-run options a registry backend consumes. Backends that ignore
  /// the feed order keep ignoring --meta (the legacy `--scheduler list
  /// --meta random` spelling stays valid); backends that consume it reject
  /// `random` - registry runs need a deterministic order.
  [[nodiscard]] ss::backend_options options_for(const ss::scheduler_backend& b) const {
    ss::backend_options bopt;
    if (b.caps().uses_meta) {
      SOFTSCHED_EXPECT(!random_meta,
                       "--backend/--compare runs need a deterministic --meta");
      bopt.meta = meta;
    }
    bopt.fds_latency = fds_latency;
    if (b.caps().iterative) bopt.iter_budget = iter_budget;
    return bopt;
  }
};

scheduling_config scheduling_from_options(const options& opt) {
  scheduling_config cfg;
  // --backend wins when both are given; the legacy --scheduler spelling
  // maps threaded -> soft and otherwise passes through to the registry.
  const std::string spec = !opt.backend.empty()
                               ? opt.backend
                               : (opt.scheduler == "threaded" ? "soft" : opt.scheduler);
  cfg.backends = parse_backend_list(spec == "all" ? "all" : spec);
  const sm::meta_kind kind = parse_meta(opt.meta);
  cfg.random_meta = kind == sm::meta_kind::random;
  if (!cfg.random_meta) cfg.meta = kind;
  cfg.seed = opt.seed;
  cfg.fds_latency = opt.latency;
  cfg.iter_budget = opt.iter_budget;
  cfg.arena = sv::parse_arena_flag(opt.serve_flags.arena);
  return cfg;
}

// --compare / --backend all: run every registered backend on the design and
// print the soft-vs-list-vs-fds table (the paper's Figure 1/3 comparison,
// on any design and allocation). Every schedule is validated against the
// shared precedence + resource checker, and every backend is run twice so
// nondeterminism shows up here rather than in a cache. Returns nonzero if
// any feasible schedule fails validation.
int run_compare(const scheduling_config& cfg, const si::resource_library& lib,
                const si::dfg& design, const si::resource_set& resources) {
  std::cout << "backend comparison: " << design.name() << ", " << design.op_count()
            << " ops, resources " << resources.label() << "\n";
  softsched::table t;
  t.set_header({"backend", "feasible", "latency", "vs soft", "iters", "bound units",
                "legal"});
  long long soft_latency = -1;
  bool all_legal = true;
  // One context for the whole table: the repeat run below recycles the
  // first run's arena blocks, so comparison mode also witnesses that reuse
  // does not change an outcome.
  ss::run_context ctx(cfg.arena_mode(), cfg.arena_block_bytes());
  for (const ss::scheduler_backend* backend : ss::registered_backends()) {
    const ss::run_request request{design, lib, resources, cfg.options_for(*backend)};
    const ss::backend_outcome outcome = backend->run(request, ctx);
    const ss::backend_outcome repeat = backend->run(request, ctx);
    SOFTSCHED_EXPECT(outcome.same_outcome(repeat),
                     std::string("backend '") + std::string(backend->name()) +
                         "' is nondeterministic across repeat runs");
    if (backend->name() == "soft" && outcome.feasible) soft_latency = outcome.latency;

    std::string legal = "-";
    if (outcome.feasible) {
      const auto violations =
          sh::validate_schedule(design, ss::to_hard_schedule(outcome), &resources);
      legal = violations.empty() ? "yes" : "NO: " + violations.front();
      all_legal = all_legal && violations.empty();
    }
    int bound = 0;
    for (const int u : outcome.unit_of) bound += u >= 0 ? 1 : 0;
    std::string vs_soft = "-";
    if (outcome.feasible && soft_latency >= 0) {
      vs_soft = softsched::cell(outcome.latency - soft_latency);
      if (outcome.latency >= soft_latency) vs_soft.insert(vs_soft.begin(), '+');
    }
    t.add_row({std::string(backend->name()),
               outcome.feasible ? "yes" : "no: " + outcome.infeasible_reason,
               outcome.feasible ? softsched::cell(outcome.latency) + " states" : "-",
               vs_soft,
               backend->caps().iterative ? softsched::cell(outcome.iterations) : "-",
               softsched::cell(bound), legal});
  }
  t.print(std::cout);
  return all_legal ? 0 : 1;
}

// Strict non-negative integer parse: the whole token must be digits and in
// range, so a typo like "x:4" or an overflowing "99999999999" is rejected
// rather than silently becoming a wrong bound.
int parse_axis_bound(const std::string& token, const std::string& flag_spec) {
  SOFTSCHED_EXPECT(!token.empty() &&
                       token.find_first_not_of("0123456789") == std::string::npos,
                   "malformed axis '" + flag_spec + "' (expected <n> or <lo>:<hi>)");
  const long long value = std::strtoll(token.c_str(), nullptr, 10);
  SOFTSCHED_EXPECT(value <= 1'000'000,
                   "axis bound out of range in '" + flag_spec + "'");
  return static_cast<int>(value);
}

// "lo:hi" or a single "n"; keeps `fallback` when the flag was not given.
se::axis_range parse_axis(const std::string& spec, se::axis_range fallback) {
  if (spec.empty()) return fallback;
  const auto colon = spec.find(':');
  se::axis_range axis;
  if (colon == std::string::npos) {
    axis.lo = axis.hi = parse_axis_bound(spec, spec);
  } else {
    axis.lo = parse_axis_bound(spec.substr(0, colon), spec);
    axis.hi = parse_axis_bound(spec.substr(colon + 1), spec);
  }
  return axis;
}

int run_explore(const options& opt, const scheduling_config& cfg) {
  SOFTSCHED_EXPECT(!opt.bench.empty(),
                   "--explore needs --bench (a named benchmark or random<N>)");
  se::grid_spec spec;
  if (opt.bench.rfind("random", 0) == 0) {
    spec.design.random_vertices = std::atoi(opt.bench.c_str() + 6);
    SOFTSCHED_EXPECT(spec.design.random_vertices >= 1,
                     "random design needs a size, e.g. --bench random600");
    spec.design.seed = opt.seed;
  } else {
    spec.design.bench = opt.bench;
  }
  // A plain --alus/--muls/--mems pins that axis to a single value (so the
  // normal-mode flags keep meaning something under --explore); the *-range
  // flags override.
  if (opt.alus_set) spec.alus = {opt.alus, opt.alus};
  if (opt.muls_set) spec.muls = {opt.muls, opt.muls};
  if (opt.mems_set) spec.mems = {opt.mems, opt.mems};
  spec.alus = parse_axis(opt.alus_range, spec.alus);
  spec.muls = parse_axis(opt.muls_range, spec.muls);
  spec.mems = parse_axis(opt.mems_range, spec.mems);
  spec.mul_latency = parse_axis(opt.mul_lat_range, spec.mul_latency);
  spec.iter_budget = parse_axis(opt.iter_budget_range, spec.iter_budget);
  SOFTSCHED_EXPECT(spec.iter_budget.hi <= ss::sdc_iter_max_budget,
                   "--iter-budget-range must stay at or under " +
                       std::to_string(ss::sdc_iter_max_budget));

  se::exploration_options eopt;
  eopt.jobs = opt.jobs;
  SOFTSCHED_EXPECT(!cfg.random_meta, "--explore needs a deterministic --meta");
  eopt.meta = cfg.meta;
  eopt.backends = cfg.backends;
  eopt.iter_budget = cfg.iter_budget;
  eopt.arena = cfg.arena.enabled;
  eopt.arena_block_bytes = cfg.arena.block_bytes;

  const se::exploration_result result = se::run_exploration(spec, eopt);
  std::cout << "design-space exploration: " << spec.design.name() << ", "
            << result.points.size() << " points (alus " << spec.alus.lo << ":"
            << spec.alus.hi << " x muls " << spec.muls.lo << ":" << spec.muls.hi
            << " x mems " << spec.mems.lo << ":" << spec.mems.hi << " x mul_lat "
            << spec.mul_latency.lo << ":" << spec.mul_latency.hi << " x "
            << result.backends.size() << " backends), " << result.jobs << " jobs\n";
  std::cout << "  feasible " << result.feasible_count() << "/" << result.points.size()
            << ", " << result.wall_ms << " ms, " << result.points_per_sec()
            << " points/sec\n";
  for (std::size_t b = 0; b < result.frontiers.size(); ++b) {
    std::cout << "pareto frontier [" << result.backends[b]
              << "] (area / latency / allocation / mul latency):\n";
    for (const int i : result.frontiers[b]) {
      const se::point_result& p = result.points[static_cast<std::size_t>(i)];
      std::cout << "  area " << p.area << "  latency " << p.latency << " states  "
                << p.point.resources.label() << "  mul_lat " << p.point.mul_latency
                << "\n";
    }
  }

  if (!opt.explore_out.empty()) {
    std::ofstream out(opt.explore_out);
    if (!out) throw softsched::precondition_error("cannot open " + opt.explore_out);
    softsched::json_writer j(out);
    se::write_report(j, spec, result);
    out << '\n';
    if (!j.done() || !out)
      throw softsched::precondition_error("failed to write " + opt.explore_out);
    std::cout << "wrote " << opt.explore_out << "\n";
  }
  return 0;
}

// One stable stderr line for the persistent tier, shared by both serve
// modes (and grepped by the docs/SERVING.md warm-restart example).
void report_disk_tier(const sv::disk_cache_counters& d) {
  std::cerr << "serve: disk tier: " << d.hits << " disk hits, " << d.misses
            << " disk misses, " << d.writes << " writes, " << d.flushed
            << " flushed, " << d.evictions << " evictions, " << d.corrupt_dropped
            << " corrupt dropped, " << d.io_errors << " io errors; recovered "
            << d.recovered_entries << " entries in " << d.recovery_scan_ms
            << " ms; " << d.entries << " entries, " << d.bytes << " bytes"
            << (d.degraded ? "; DEGRADED (RAM-only)" : "") << "\n";
}

// Batch scheduling service: JSONL requests -> JSONL responses, cache and
// dedup summary on stderr (stdout stays machine-readable).
int run_serve(const options& opt) {
  // One validation path for every serving flag (serve/options.h); the
  // error messages tests pin live there, not here.
  const sv::engine_options eopt = sv::engine_options_from_flags(opt.serve_flags);

  std::ifstream in_file;
  std::istream* in = &std::cin;
  if (opt.serve_batch != "-") {
    in_file.open(opt.serve_batch);
    if (!in_file) throw softsched::precondition_error("cannot open " + opt.serve_batch);
    in = &in_file;
  }
  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (!opt.out_file.empty() && opt.out_file != "-") {
    out_file.open(opt.out_file);
    if (!out_file) throw softsched::precondition_error("cannot open " + opt.out_file);
    out = &out_file;
  }

  sv::engine eng(eopt);
  const sv::stream_summary summary = eng.run_stream(*in, *out);
  // Flush before checking: a write failure (disk full) surfacing only at
  // close must not exit 0 with a truncated response file.
  out->flush();
  if (!*out) throw softsched::precondition_error("failed to write responses");

  const sv::engine_counters& c = summary.counters;
  const sv::cache_counters cc = eng.cache().counters();
  std::cerr << "serve: " << c.requests << " requests in " << summary.batches
            << " batches on " << eng.jobs() << " jobs: " << c.computed
            << " scheduled, " << c.cache_hits << " cache hits, " << c.deduped
            << " deduped, " << c.parse_errors << " errors (hit rate "
            << c.hit_rate() << ")\n";
  std::cerr << "serve: " << summary.wall_ms << " ms, " << summary.requests_per_sec()
            << " requests/sec; cache " << cc.entries << " entries, " << cc.bytes
            << " bytes, " << cc.evictions << " evictions\n";
  if (sv::disk_cache* disk = eng.disk(); disk != nullptr) {
    (void)eng.flush_disk(); // report settled counters, not a mid-flush snapshot
    report_disk_tier(disk->counters());
  }
  return 0;
}

// The daemon session summary, shared by the stdio and socket front-ends.
void report_daemon(std::uint64_t requests, const sv::service_stats& s,
                   std::size_t queue_capacity, bool shutdown, bool transport_error,
                   const sv::connection_counters_snapshot& c) {
  std::cerr << "daemon: " << requests << " requests (" << s.admitted
            << " admitted, " << s.overloaded << " shed), " << s.computed
            << " scheduled, " << s.cache_hits << " cache hits, " << s.deduped
            << " deduped, " << s.errors << " errors (hit rate " << s.hit_rate
            << ")\n";
  std::cerr << "daemon: " << s.uptime_ms << " ms up, " << s.qps << " qps, p50/p95/p99 "
            << s.p50_ms << "/" << s.p95_ms << "/" << s.p99_ms << " ms, peak queue "
            << s.peak_queue_depth << "/" << queue_capacity
            << (shutdown ? ", shutdown" : "")
            << (transport_error ? ", transport error" : "") << "\n";
  std::cerr << "daemon: conns [" << c.transport << "] " << c.accepted << " accepted ("
            << c.shed << " shed, " << c.faulted << " dropped by fault), " << c.active
            << " active, " << c.closed << " closed, " << c.transport_errors
            << " transport errors, " << c.bytes_in << " bytes in, " << c.bytes_out
            << " bytes out\n";
  if (s.disk_enabled) {
    std::cerr << "serve: disk tier: " << s.disk_hits << " disk hits, " << s.disk_misses
              << " disk misses, " << s.disk_writes << " writes, " << s.disk_flushed
              << " flushed, " << s.disk_evictions << " evictions, "
              << s.disk_corrupt_dropped << " corrupt dropped, " << s.disk_io_errors
              << " io errors; recovered " << s.disk_recovered_entries << " entries in "
              << s.disk_recovery_scan_ms << " ms; " << s.disk_entries << " entries, "
              << s.disk_bytes << " bytes"
              << (s.disk_degraded ? "; DEGRADED (RAM-only)" : "") << "\n";
  }
}

// Resident daemon over a socket listener: accept loop + per-connection
// serve_connection threads over one shared service; runs until a client
// sends {"op":"shutdown"}. Per-connection transport errors close that
// connection only and never fail the process.
int run_socket_daemon(const sv::daemon_options& dopt, const sv::listen_spec& spec) {
  sv::service svc(dopt.service);
  const std::unique_ptr<sv::listener> accept_from = sv::make_listener(spec);
  // The one line scripts wait for (and scrape the ephemeral port from).
  std::cerr << "daemon: listening on " << accept_from->address() << "\n" << std::flush;

  sv::socket_server_options sopt;
  sopt.max_connections = dopt.max_connections;
  sopt.retry_after_ms = dopt.service.retry_after_ms;
  sopt.connection.ordered = dopt.ordered;
  sopt.connection.emit_schedule = dopt.service.emit_schedule;
  sopt.connection.limits = dopt.limits;
  sv::socket_server server(*accept_from, svc, sopt);
  const sv::socket_server_summary summary = server.run();

  svc.drain();
  (void)svc.flush_disk();
  const sv::service_stats s = svc.stats();
  report_daemon(summary.requests, s, dopt.service.queue_capacity,
                summary.shutdown_requested, /*transport_error=*/false, summary.conns);
  return 0;
}

// Resident daemon: framed requests -> framed responses (docs/SERVING.md),
// session summary on stderr. SOFTSCHED_INJECT (fault injection for tests)
// is honored here and nowhere else.
int run_daemon_mode(const options& opt) {
  // One validation path for every serving flag (serve/options.h); the
  // error messages tests pin live there, not here.
  const sv::daemon_options dopt = sv::daemon_options_from_flags(opt.serve_flags);
  const sv::listen_spec spec = sv::listen_from_flags(opt.serve_flags);
  if (spec.kind != sv::listen_spec::transport::stdio) return run_socket_daemon(dopt, spec);

  std::ifstream in_file;
  std::istream* in = &std::cin;
  if (opt.serve != "-") {
    in_file.open(opt.serve);
    if (!in_file) throw softsched::precondition_error("cannot open " + opt.serve);
    in = &in_file;
  }
  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (!opt.out_file.empty() && opt.out_file != "-") {
    out_file.open(opt.out_file);
    if (!out_file) throw softsched::precondition_error("cannot open " + opt.out_file);
    out = &out_file;
  }

  const sv::daemon_summary summary = sv::run_daemon(*in, *out, dopt);
  out->flush();
  if (!*out) throw softsched::precondition_error("failed to write responses");

  report_daemon(summary.requests, summary.stats, dopt.service.queue_capacity,
                summary.shutdown_requested, summary.transport_error, summary.conns);
  return summary.transport_error ? 1 : 0;
}

// `cache export` / `cache import`: ship a warm disk tier between hosts as
// one self-validating stream (every record re-verifies its own checksum on
// both sides; a corrupt record is skipped on export and stops an import).
int run_cache_tool(int argc, char** argv) {
  const std::string verb = argc >= 3 ? argv[2] : "";
  if (verb != "export" && verb != "import")
    usage(argv[0], "cache subcommand needs a verb: cache export | cache import");
  std::string dir, out_spec, in_spec;
  int budget_mb = 1024;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], "missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--cache-dir") dir = need();
    else if (arg == "--out") out_spec = need();
    else if (arg == "--in") in_spec = need();
    else if (arg == "--disk-cache-mb") budget_mb = std::atoi(need().c_str());
    else usage(argv[0], "unknown cache option " + arg);
  }
  SOFTSCHED_EXPECT(!dir.empty(), "cache " + verb + " needs --cache-dir");
  SOFTSCHED_EXPECT(budget_mb >= 1, "--disk-cache-mb must be >= 1");

  if (verb == "export") {
    sv::disk_cache_options copt;
    copt.directory = dir;
    // Export must never evict what it is about to ship: open with an
    // effectively unbounded budget regardless of the serving-time one.
    copt.byte_budget = static_cast<std::size_t>(-1) / 2;
    sv::disk_cache cache(copt);
    std::ofstream out_file;
    std::ostream* out = &std::cout;
    if (!out_spec.empty() && out_spec != "-") {
      out_file.open(out_spec, std::ios::binary);
      if (!out_file) throw softsched::precondition_error("cannot open " + out_spec);
      out = &out_file;
    }
    const std::optional<std::uint64_t> count = cache.export_to(*out);
    out->flush();
    if (!count.has_value() || !*out)
      throw softsched::precondition_error("cache export: write failed");
    const sv::disk_cache_counters d = cache.counters();
    std::cerr << "cache export: " << *count << " records (" << d.corrupt_dropped
              << " corrupt dropped, " << d.io_errors << " io errors)\n";
    return d.io_errors > 0 ? 1 : 0;
  }

  SOFTSCHED_EXPECT(!in_spec.empty(), "cache import needs --in <file|->");
  std::ifstream in_file;
  std::istream* in = &std::cin;
  if (in_spec != "-") {
    in_file.open(in_spec, std::ios::binary);
    if (!in_file) throw softsched::precondition_error("cannot open " + in_spec);
    in = &in_file;
  }
  sv::disk_cache_options copt;
  copt.directory = dir;
  copt.byte_budget = static_cast<std::size_t>(budget_mb) << 20;
  sv::disk_cache cache(copt);
  const sv::disk_import_summary s = cache.import_from(*in);
  const sv::disk_cache_counters d = cache.counters();
  std::cerr << "cache import: " << s.imported << " records imported ("
            << s.corrupt_skipped << " corrupt skipped"
            << (s.truncated ? ", stream truncated" : "") << "), now " << d.entries
            << " entries, " << d.bytes << " bytes"
            << (d.degraded ? "; DEGRADED" : "") << "\n";
  return (s.corrupt_skipped > 0 || s.truncated || d.degraded) ? 1 : 0;
}

int run(const options& opt) {
  if (opt.serve_mode) return run_daemon_mode(opt);
  if (!opt.serve_batch.empty()) return run_serve(opt);
  const scheduling_config cfg = scheduling_from_options(opt);
  if (opt.explore) return run_explore(opt, cfg);
  const si::resource_library lib;
  si::dfg design = load_design(opt, lib);
  const si::resource_set resources{opt.alus, opt.muls, opt.mems};

  std::cout << design.name() << ": " << design.op_count() << " ops, critical path "
            << sg::compute_distances(design.graph()).diameter << ", resources "
            << resources.label() << "\n";

  if (opt.compare || opt.backend == "all") {
    // Comparison mode produces the table and nothing else; flags whose
    // output a pipeline might wait for must not be dropped silently.
    if (opt.gantt || opt.stats || opt.registers || !opt.dot_file.empty() ||
        !opt.spills.empty() || !opt.wires.empty())
      std::cerr << "note: --gantt/--stats/--registers/--dot/--spill/--wire are "
                   "ignored in comparison mode (pick one --backend to use them)\n";
    return run_compare(cfg, lib, design, resources);
  }

  sh::schedule result;
  // The interactive soft path keeps the live state (and therefore its
  // arena) alive for refinements / --stats / --dot, so the arena is
  // declared first: members of `state` deallocate into it on destruction.
  std::unique_ptr<softsched::util::arena> arena;
  std::vector<int> tags_scratch;
  std::optional<sc::threaded_graph> state;
  const std::string backend_name = cfg.primary_backend();
  SOFTSCHED_EXPECT(cfg.backends.size() == 1,
                   "pick one --backend (or --compare for the table)");

  if (backend_name == "soft") {
    if (cfg.arena.enabled)
      arena = std::make_unique<softsched::util::arena>(cfg.arena_block_bytes());
    state.emplace(sc::make_hls_state(design, resources, arena.get(), tags_scratch));
    if (cfg.random_meta) {
      softsched::rng rand(cfg.seed);
      state->schedule_all(sm::random_meta_schedule(design.graph(), rand));
    } else {
      state->schedule_all(sm::meta_schedule(design.graph(), cfg.meta));
    }
    // Refinements against the live state.
    for (const std::string& name : opt.spills) {
      const auto report = sf::apply_spill(design, *state, si::find_op(design, name));
      std::cout << "spill " << name << ": +" << report.ops_inserted << " ops, "
                << report.diameter_before << " -> " << report.diameter_after
                << " states\n";
    }
    for (const std::string& spec : opt.wires) {
      const auto c1 = spec.find(':');
      const auto c2 = spec.find(':', c1 == std::string::npos ? c1 : c1 + 1);
      if (c1 == std::string::npos || c2 == std::string::npos)
        throw softsched::precondition_error("--wire expects from:to:delay");
      const auto report = sf::apply_wire_delay(
          design, *state, si::find_op(design, spec.substr(0, c1)),
          si::find_op(design, spec.substr(c1 + 1, c2 - c1 - 1)),
          std::atoi(spec.c_str() + c2 + 1));
      std::cout << "wire " << spec << ": " << report.diameter_before << " -> "
                << report.diameter_after << " states\n";
    }
    result = sh::extract_schedule(*state);
    std::cout << "soft schedule (" << opt.meta << " meta): " << result.makespan
              << " states\n";
  } else {
    // Hard backends (list, fds, anything registered later) run through the
    // registry; the soft path above stays special because it keeps the live
    // threaded state around for refinements / --stats / --dot.
    const ss::scheduler_backend& backend = ss::get_backend(backend_name);
    ss::run_context ctx(cfg.arena_mode(), cfg.arena_block_bytes());
    const ss::backend_outcome outcome =
        backend.run({design, lib, resources, cfg.options_for(backend)}, ctx);
    if (!outcome.feasible) {
      std::cerr << "infeasible: " << outcome.infeasible_reason << '\n';
      return 1;
    }
    result = ss::to_hard_schedule(outcome);
    std::cout << backend_name << " schedule: " << result.makespan << " states\n";
  }

  // Every backend's output goes through the shared checker; the registry's
  // fds backend searches for a budget whose schedule fits the allocation,
  // so unlike the pre-registry --scheduler fds path the resource check
  // applies to it too.
  const auto violations = sh::validate_schedule(design, result, &resources);
  if (!violations.empty()) {
    std::cerr << "INVALID schedule: " << violations.front() << '\n';
    return 1;
  }

  if (opt.gantt) {
    std::cout << '\n';
    sh::write_gantt(std::cout, design, result);
  }
  if (opt.registers) {
    const auto lifetimes = softsched::regalloc::compute_lifetimes(design, result);
    const auto binding = softsched::regalloc::left_edge_allocate(lifetimes);
    std::cout << "registers: demand " << softsched::regalloc::max_live(lifetimes)
              << ", left-edge binding uses " << binding.register_count << "\n";
  }
  if (opt.stats && state.has_value()) {
    const sc::schedule_stats& stats = state->stats();
    std::cout << "scheduler stats: " << stats.select_calls << " selects, "
              << stats.positions_scanned << " positions costed, "
              << stats.positions_rejected << " rejected, " << stats.label_passes
              << " label passes, " << stats.cross_edge_updates
              << " cross-edge updates\n";
  }
  if (!opt.dot_file.empty() && state.has_value()) {
    if (opt.dot_file == "-") {
      sc::write_state_dot(std::cout, *state, design.name());
    } else {
      std::ofstream out(opt.dot_file);
      sc::write_state_dot(out, *state, design.name());
      std::cout << "wrote " << opt.dot_file << "\n";
    }
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::string(argv[1]) == "cache") return run_cache_tool(argc, argv);
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
