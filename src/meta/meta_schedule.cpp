#include "meta/meta_schedule.h"

#include <queue>
#include <tuple>

#include "graph/distances.h"
#include "graph/topo.h"
#include "util/check.h"

namespace softsched::meta {

std::string_view meta_name(meta_kind kind) noexcept {
  switch (kind) {
  case meta_kind::depth_first: return "meta sched1";
  case meta_kind::topological: return "meta sched2";
  case meta_kind::path_based: return "meta sched3";
  case meta_kind::list_priority: return "meta sched4";
  case meta_kind::random: return "random";
  }
  return "unknown";
}

std::vector<vertex_id> list_priority_order(const precedence_graph& g) {
  const graph::distance_labels labels = graph::compute_distances(g);
  const std::size_t n = g.vertex_count();
  std::vector<std::size_t> in_degree(n);
  for (const vertex_id v : g.vertices()) in_degree[v.value()] = g.preds(v).size();

  // Max-heap on (sink distance, then lowest id) - the classic critical-path
  // list scheduling priority.
  using entry = std::tuple<long long, std::uint32_t>;
  auto cmp = [](const entry& a, const entry& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) < std::get<0>(b);
    return std::get<1>(a) > std::get<1>(b);
  };
  std::priority_queue<entry, std::vector<entry>, decltype(cmp)> ready(cmp);
  for (std::size_t i = 0; i < n; ++i)
    if (in_degree[i] == 0)
      ready.emplace(labels.tdist[i], static_cast<std::uint32_t>(i));

  std::vector<vertex_id> order;
  order.reserve(n);
  while (!ready.empty()) {
    const vertex_id u(std::get<1>(ready.top()));
    ready.pop();
    order.push_back(u);
    for (const vertex_id w : g.succs(u))
      if (--in_degree[w.value()] == 0) ready.emplace(labels.tdist[w.value()], w.value());
  }
  if (order.size() != n) throw graph_error("list_priority_order: graph contains a cycle");
  return order;
}

std::vector<vertex_id> meta_schedule(const precedence_graph& g, meta_kind kind) {
  switch (kind) {
  case meta_kind::depth_first: return graph::depth_first_order(g);
  case meta_kind::topological: return graph::topological_order(g);
  case meta_kind::path_based: {
    std::vector<vertex_id> order;
    order.reserve(g.vertex_count());
    for (const auto& path : graph::path_partition(g))
      order.insert(order.end(), path.begin(), path.end());
    return order;
  }
  case meta_kind::list_priority: return list_priority_order(g);
  case meta_kind::random:
    throw precondition_error("random meta schedule needs an rng; call random_meta_schedule");
  }
  throw precondition_error("unknown meta schedule kind");
}

std::vector<vertex_id> random_meta_schedule(const precedence_graph& g, rng& rand) {
  std::vector<vertex_id> order = g.vertices();
  rand.shuffle(order);
  return order;
}

} // namespace softsched::meta
