#include "serve/transport.h"

#include <istream>
#include <ostream>

namespace softsched::serve {

namespace {

/// The length line may not be longer than the digits of max_frame_bytes
/// plus slack; anything beyond that is a garbage stream, not a number.
constexpr std::size_t max_length_digits = 20;

} // namespace

frame_read read_frame(std::istream& in, const frame_limits& limits) {
  frame_read out;

  // -- length line: bare decimal digits up to '\n' --------------------------
  std::string digits;
  for (;;) {
    const int ch = in.get();
    if (ch == std::istream::traits_type::eof()) {
      if (digits.empty()) return out; // clean EOF at a frame boundary
      out.status = frame_status::error;
      out.error = "transport: EOF inside frame length";
      return out;
    }
    if (ch == '\n') break;
    if (ch < '0' || ch > '9' || digits.size() >= max_length_digits) {
      out.status = frame_status::error;
      out.error = "transport: malformed frame length (expected decimal digits)";
      return out;
    }
    digits.push_back(static_cast<char>(ch));
  }
  if (digits.empty()) {
    out.status = frame_status::error;
    out.error = "transport: empty frame length";
    return out;
  }

  // Accumulate with an overflow guard; the cap check runs before any
  // payload byte is buffered, so an oversize announcement costs nothing.
  std::size_t length = 0;
  for (const char d : digits) {
    if (length > (limits.max_frame_bytes / 10) + 1) {
      length = limits.max_frame_bytes + 1;
      break;
    }
    length = length * 10 + static_cast<std::size_t>(d - '0');
  }
  if (length > limits.max_frame_bytes) {
    out.status = frame_status::error;
    out.error = "transport: frame of " + digits + " bytes exceeds the " +
                std::to_string(limits.max_frame_bytes) + "-byte limit";
    return out;
  }

  // -- payload: exactly `length` bytes, then the terminator ----------------
  out.payload.resize(length);
  if (length > 0) {
    in.read(out.payload.data(), static_cast<std::streamsize>(length));
    if (static_cast<std::size_t>(in.gcount()) != length) {
      out.status = frame_status::error;
      out.payload.clear();
      out.error = "transport: truncated frame (EOF before " + digits +
                  " payload bytes)";
      return out;
    }
  }
  if (in.get() != '\n') {
    out.status = frame_status::error;
    out.payload.clear();
    out.error = "transport: missing frame terminator";
    return out;
  }
  out.status = frame_status::ok;
  return out;
}

void write_frame(std::ostream& out, std::string_view payload) {
  out << payload.size() << '\n';
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out << '\n';
  out.flush();
}

} // namespace softsched::serve
