#include "ext/tech_map.h"

#include <algorithm>
#include <string>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "meta/meta_schedule.h"
#include "util/check.h"

namespace softsched::ext {

namespace {

long long threaded_latency(const ir::dfg& d, const ir::resource_set& resources) {
  core::threaded_graph state = core::make_hls_state(d, resources);
  state.schedule_all(meta::meta_schedule(d.graph(), meta::meta_kind::list_priority));
  return state.diameter();
}

} // namespace

std::vector<mac_candidate> find_mac_candidates(const ir::dfg& d) {
  const auto& g = d.graph();
  std::vector<mac_candidate> candidates;
  std::vector<bool> add_taken(g.vertex_count(), false);
  for (const vertex_id m : g.vertices()) {
    if (d.kind(m) != ir::op_kind::mul) continue;
    if (g.succs(m).size() != 1) continue;
    const vertex_id a = g.succs(m)[0];
    if (d.kind(a) != ir::op_kind::add || add_taken[a.value()]) continue;
    add_taken[a.value()] = true;
    candidates.push_back(mac_candidate{m, a});
  }
  return candidates;
}

ir::dfg fuse_macs(const ir::dfg& d, const std::vector<mac_candidate>& fusions,
                  int mac_latency) {
  SOFTSCHED_EXPECT(mac_latency >= 1, "MAC latency must be positive");
  const auto& g = d.graph();

  std::vector<vertex_id> fused_into(g.vertex_count(), vertex_id::invalid());
  for (const mac_candidate& c : fusions) {
    SOFTSCHED_EXPECT(g.has_edge(c.mul, c.add), "stale MAC candidate");
    fused_into[c.mul.value()] = c.add; // the pair materializes at the add's slot
  }

  ir::dfg mapped(d.name() + "_mac", d.library());
  std::vector<vertex_id> remap(g.vertex_count(), vertex_id::invalid());

  // First pass: create vertices in id order (skipping fused multiplies,
  // turning their adds into MAC ops).
  for (const vertex_id v : g.vertices()) {
    if (fused_into[v.value()].valid()) continue; // folded into its add
    const bool is_mac_root =
        std::any_of(fusions.begin(), fusions.end(),
                    [v](const mac_candidate& c) { return c.add == v; });
    if (is_mac_root) {
      const vertex_id mac = mapped.add_op(ir::op_kind::mul, {},
                                          "mac_" + std::string(g.name(v)));
      mapped.graph().set_delay(mac, mac_latency);
      remap[v.value()] = mac;
    } else if (d.kind(v) == ir::op_kind::wire) {
      remap[v.value()] = mapped.add_wire(g.delay(v), {}, std::string(g.name(v)));
    } else {
      remap[v.value()] = mapped.add_op(d.kind(v), {}, std::string(g.name(v)));
    }
  }
  // Second pass: edges. Fused multiplies forward their inputs to the MAC;
  // the mul -> add internal edge disappears.
  for (const vertex_id v : g.vertices()) {
    const vertex_id tail =
        fused_into[v.value()].valid() ? remap[fused_into[v.value()].value()] : remap[v.value()];
    for (const vertex_id p : g.preds(v)) {
      const vertex_id head =
          fused_into[p.value()].valid() ? remap[fused_into[p.value()].value()] : remap[p.value()];
      if (head == tail) continue; // the internal mul->add edge
      mapped.graph().add_edge(head, tail);
    }
  }
  mapped.validate();
  return mapped;
}

tech_map_result map_macs(const ir::dfg& d, const ir::resource_set& resources,
                         int mac_latency) {
  const std::vector<mac_candidate> candidates = find_mac_candidates(d);
  tech_map_result result{fuse_macs(d, {}, mac_latency), 0, candidates.size(), 0, 0};
  result.latency_before = threaded_latency(d, resources);

  long long best = result.latency_before;
  std::vector<mac_candidate> accepted;
  for (const mac_candidate& c : candidates) {
    std::vector<mac_candidate> trial = accepted;
    trial.push_back(c);
    const ir::dfg mapped = fuse_macs(d, trial, mac_latency);
    const long long latency = threaded_latency(mapped, resources);
    if (latency <= best) {
      best = latency;
      accepted = std::move(trial);
    }
  }
  result.mapped = fuse_macs(d, accepted, mac_latency);
  result.fused = accepted.size();
  result.latency_after = best;
  return result;
}

} // namespace softsched::ext
