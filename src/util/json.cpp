#include "util/json.h"

#include <array>
#include <charconv>
#include <cmath>

#include "util/check.h"

namespace softsched {

void json_writer::newline_indent() {
  if (compact_) return;
  *os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) *os_ << "  ";
}

void json_writer::before_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  SOFTSCHED_EXPECT(stack_.empty() ? !wrote_root_ : stack_.back() == frame::array,
                   "json: value needs a key inside an object");
  if (!stack_.empty()) {
    if (has_items_.back()) *os_ << ',';
    has_items_.back() = true;
    newline_indent();
  }
  wrote_root_ = true;
}

void json_writer::begin_object() {
  before_value();
  *os_ << '{';
  stack_.push_back(frame::object);
  has_items_.push_back(false);
}

void json_writer::end_object() {
  SOFTSCHED_EXPECT(!stack_.empty() && stack_.back() == frame::object && !key_pending_,
                   "json: end_object without matching begin_object");
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  *os_ << '}';
}

void json_writer::begin_array() {
  before_value();
  *os_ << '[';
  stack_.push_back(frame::array);
  has_items_.push_back(false);
}

void json_writer::end_array() {
  SOFTSCHED_EXPECT(!stack_.empty() && stack_.back() == frame::array && !key_pending_,
                   "json: end_array without matching begin_array");
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  *os_ << ']';
}

void json_writer::key(std::string_view name) {
  SOFTSCHED_EXPECT(!stack_.empty() && stack_.back() == frame::object && !key_pending_,
                   "json: key outside of an object");
  if (has_items_.back()) *os_ << ',';
  has_items_.back() = true;
  newline_indent();
  *os_ << '"';
  write_escaped(name);
  *os_ << (compact_ ? "\":" : "\": ");
  key_pending_ = true;
}

void json_writer::write_escaped(std::string_view s) {
  for (const char c : s) {
    switch (c) {
    case '"': *os_ << "\\\""; break;
    case '\\': *os_ << "\\\\"; break;
    case '\n': *os_ << "\\n"; break;
    case '\r': *os_ << "\\r"; break;
    case '\t': *os_ << "\\t"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        constexpr char hex[] = "0123456789abcdef";
        *os_ << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
      } else {
        *os_ << c;
      }
    }
  }
}

void json_writer::value(std::string_view s) {
  before_value();
  *os_ << '"';
  write_escaped(s);
  *os_ << '"';
}

void json_writer::value(bool b) {
  before_value();
  *os_ << (b ? "true" : "false");
}

void json_writer::value(double d) {
  before_value();
  SOFTSCHED_EXPECT(std::isfinite(d), "json: non-finite number");
  std::array<char, 32> buf{};
  const auto [end, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), d);
  SOFTSCHED_EXPECT(ec == std::errc(), "json: number formatting failed");
  *os_ << std::string_view(buf.data(), static_cast<std::size_t>(end - buf.data()));
}

void json_writer::value(long long i) {
  before_value();
  *os_ << i;
}

void json_writer::value(unsigned long long i) {
  before_value();
  *os_ << i;
}

bool json_writer::done() const noexcept { return wrote_root_ && stack_.empty() && !key_pending_; }

} // namespace softsched
