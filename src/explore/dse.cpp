#include "explore/dse.h"

#include <chrono>
#include <utility>

#include "core/hls_binding.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace softsched::explore {

namespace {

using clock_type = std::chrono::steady_clock;

double millis_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - t0).count();
}

bool same_allocation(const ir::resource_set& a, const ir::resource_set& b) {
  return a.alus == b.alus && a.multipliers == b.multipliers &&
         a.memory_ports == b.memory_ports;
}

} // namespace

bool point_result::same_schedule(const point_result& other) const {
  return point.index == other.point.index &&
         same_allocation(point.resources, other.point.resources) &&
         point.mul_latency == other.point.mul_latency && feasible == other.feasible &&
         infeasible_reason == other.infeasible_reason && ops == other.ops &&
         latency == other.latency && area == other.area &&
         start_times == other.start_times && unit_of == other.unit_of &&
         stats == other.stats;
}

std::size_t exploration_result::feasible_count() const {
  std::size_t n = 0;
  for (const point_result& p : points) n += p.feasible ? 1 : 0;
  return n;
}

double exploration_result::points_per_sec() const {
  return wall_ms > 0 ? static_cast<double>(points.size()) / (wall_ms / 1e3) : 0.0;
}

bool exploration_result::same_outcome(const exploration_result& other) const {
  if (points.size() != other.points.size() || frontier != other.frontier) return false;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (!points[i].same_schedule(other.points[i])) return false;
  return true;
}

point_result run_point(const grid_spec& spec, const design_point& point,
                       meta::meta_kind meta) {
  SOFTSCHED_EXPECT(meta != meta::meta_kind::random,
                   "exploration needs a deterministic meta schedule");
  point_result r;
  r.point = point;
  r.area = allocation_area(point.resources);

  // Everything below is private to this job: library, DFG, meta order,
  // threaded state. Share-nothing is the determinism argument.
  ir::resource_library library;
  apply_point_latency(point, library);
  const ir::dfg design = build_design(spec.design, library);
  r.ops = design.op_count();

  const auto t0 = clock_type::now();
  try {
    core::threaded_graph state = core::make_hls_state(design, point.resources);
    state.schedule_all(meta::meta_schedule(design.graph(), meta));
    r.latency = state.diameter();
    r.start_times = state.asap_start_times();
    r.unit_of.reserve(design.op_count());
    for (const graph::vertex_id v : design.graph().vertices())
      r.unit_of.push_back(state.thread_of(v));
    r.stats = state.stats();
    r.feasible = true;
  } catch (const infeasible_error& e) {
    r.infeasible_reason = e.what();
  }
  r.wall_ms = millis_since(t0);
  return r;
}

exploration_result run_exploration(const grid_spec& spec,
                                   const exploration_options& options) {
  const std::vector<design_point> points = enumerate_grid(spec);
  exploration_result out;
  out.points.resize(points.size());
  out.jobs = options.jobs < 1 ? thread_pool::hardware_workers()
                              : static_cast<unsigned>(options.jobs);
  // One job per point at most: extra workers would only sit idle, and an
  // absurd --jobs value must not translate into thousands of threads.
  if (out.jobs > points.size())
    out.jobs = static_cast<unsigned>(points.empty() ? 1 : points.size());

  const auto t0 = clock_type::now();
  {
    // Each job writes only its own pre-allocated slot, so the result vector
    // needs no lock and the outcome no longer depends on completion order.
    thread_pool pool(out.jobs);
    parallel_for_index(&pool, points.size(), [&](std::size_t i) {
      out.points[i] = run_point(spec, points[i], options.meta);
    });
  }
  out.wall_ms = millis_since(t0);

  std::vector<objective> objectives(out.points.size());
  for (std::size_t i = 0; i < out.points.size(); ++i)
    objectives[i] = objective{out.points[i].area, out.points[i].latency,
                              out.points[i].feasible};
  out.frontier = pareto_frontier(objectives);
  return out;
}

void write_schedule_stats(json_writer& j, const core::schedule_stats& s) {
  j.begin_object();
  j.member("select_calls", s.select_calls);
  j.member("positions_scanned", s.positions_scanned);
  j.member("commits", s.commits);
  j.member("label_passes", s.label_passes);
  j.member("cross_edge_updates", s.cross_edge_updates);
  j.member("nodes_relabeled", s.nodes_relabeled);
  j.member("closure_rebuilds", s.closure_rebuilds);
  j.member("closure_syncs", s.closure_syncs);
  j.member("closure_rows_touched", s.closure_rows_touched);
  j.end_object();
}

void write_report(json_writer& j, const grid_spec& spec,
                  const exploration_result& result) {
  const auto axis = [&](std::string_view name, const axis_range& a) {
    j.key(name);
    j.begin_array();
    j.value(a.lo);
    j.value(a.hi);
    j.end_array();
  };

  j.begin_object();
  j.member("design", spec.design.name());
  j.member("ops", result.points.empty() ? std::size_t{0} : result.points.front().ops);
  j.key("grid");
  j.begin_object();
  axis("alus", spec.alus);
  axis("muls", spec.muls);
  axis("mems", spec.mems);
  axis("mul_latency", spec.mul_latency);
  j.member("points", result.points.size());
  j.end_object();
  j.member("jobs", static_cast<unsigned long long>(result.jobs));
  j.member("wall_ms", result.wall_ms);
  j.member("points_per_sec", result.points_per_sec());
  j.member("feasible", result.feasible_count());

  j.key("points");
  j.begin_array();
  for (const point_result& p : result.points) {
    j.begin_object();
    j.member("index", p.point.index);
    j.member("resources", p.point.resources.label());
    j.member("alus", p.point.resources.alus);
    j.member("muls", p.point.resources.multipliers);
    j.member("mems", p.point.resources.memory_ports);
    j.member("mul_latency", p.point.mul_latency);
    j.member("feasible", p.feasible);
    j.member("area", p.area);
    j.member("latency", p.latency);
    j.member("wall_ms", p.wall_ms);
    if (!p.feasible) j.member("infeasible_reason", p.infeasible_reason);
    j.key("stats");
    write_schedule_stats(j, p.stats);
    j.end_object();
  }
  j.end_array();

  j.key("frontier");
  j.begin_array();
  for (const int i : result.frontier) {
    const point_result& p = result.points[static_cast<std::size_t>(i)];
    j.begin_object();
    j.member("index", p.point.index);
    j.member("resources", p.point.resources.label());
    j.member("mul_latency", p.point.mul_latency);
    j.member("area", p.area);
    j.member("latency", p.latency);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

} // namespace softsched::explore
