// refinement.h - the soft-scheduling payoff: refining a *live* threaded
// schedule when later design phases change the behaviour, instead of
// iterating the whole flow. Three refinements from the paper's Section 1
// scenarios are implemented:
//
//   * spill code       - store/load pairs around a value pushed to memory
//                        (register-allocation coupling, Figure 1 (c)),
//   * wire delay       - interconnect-delay vertices on long transfers
//                        (physical-design coupling, Figure 1 (d)),
//   * register moves   - SSA phi nodes resolved to explicit moves.
//
// Every refinement mutates the DFG *and* schedules the new vertices into
// the existing threaded state online - the already committed soft
// decisions stay; only the partial order is tightened. The comparison
// flow (hard_reschedule) reruns the list scheduler from scratch on the
// refined DFG, which is what a traditional hard flow must do.
#pragma once

#include <vector>

#include "core/threaded_graph.h"
#include "ir/dfg.h"
#include "phys/wire_model.h"

namespace softsched::refine {

using graph::vertex_id;

/// Outcome of one refinement applied to a threaded state.
struct refinement_report {
  long long diameter_before = 0;
  long long diameter_after = 0;
  std::size_t ops_inserted = 0;

  [[nodiscard]] long long stretch() const noexcept {
    return diameter_after - diameter_before;
  }
};

/// Spills the value produced by `value`: inserts one store after it and
/// one load in front of every consumer, rewiring the dependences; each new
/// memory operation is scheduled online into `state` (memory-port
/// threads). `value` must already be scheduled and must not be a store.
refinement_report apply_spill(ir::dfg& d, core::threaded_graph& state, vertex_id value);

/// Inserts a wire-delay vertex of `delay` cycles on the dependence
/// from -> to (which must exist) and schedules it into a dedicated wire
/// thread.
refinement_report apply_wire_delay(ir::dfg& d, core::threaded_graph& state,
                                   vertex_id from, vertex_id to, int delay);

/// Applies a batch of planned wire insertions (phys::plan_wire_insertions).
refinement_report apply_wire_insertions(ir::dfg& d, core::threaded_graph& state,
                                        const std::vector<phys::wire_insertion>& plan);

/// Resolves an SSA phi into an explicit register move on the dependence
/// from -> to and schedules it (ALU threads).
refinement_report apply_register_move(ir::dfg& d, core::threaded_graph& state,
                                      vertex_id from, vertex_id to);

// -- pure-DFG variants (for the hard-flow comparison) ----------------------

/// Same DFG mutation as apply_spill, without touching any schedule.
/// Returns the inserted (store, loads...) vertices.
std::vector<vertex_id> insert_spill_ops(ir::dfg& d, vertex_id value);

/// Same DFG mutation as apply_wire_delay. Returns the wire vertex.
vertex_id insert_wire_op(ir::dfg& d, vertex_id from, vertex_id to, int delay);

/// Same DFG mutation as apply_register_move. Returns the move vertex.
vertex_id insert_move_op(ir::dfg& d, vertex_id from, vertex_id to);

} // namespace softsched::refine
