// options.h - the one place the serving flag surface is parsed and
// validated. The CLI grew three copies of "turn serve flags into an
// options struct, each with its own range checks" (batch engine, stdio
// daemon, and now socket daemon); this header collapses them: the CLI
// fills a serve_flags with raw flag values and everything downstream -
// engine_options, daemon_options, the listen spec - is derived here,
// behind a single validation/error path (validate_serve_flags) shared by
// the CLI and the tests that pin its error messages. New transport flags
// land here once, not once per mode.
#pragma once

#include <string>

#include "serve/daemon.h"
#include "serve/engine.h"
#include "serve/socket.h"

namespace softsched::serve {

/// Raw values of every serving-related CLI flag, exactly as typed
/// (defaults = flag defaults). docs/SERVING.md documents the surface.
struct serve_flags {
  int jobs = 0;               ///< --jobs (0 = hardware)
  int cache_mb = 64;          ///< --cache-mb
  int serve_batch_size = 64;  ///< --serve-batch-size (batch engine only)
  int serve_queue = 256;      ///< --serve-queue (daemon only)
  int disk_cache_mb = 0;      ///< --disk-cache-mb (0 = disk tier off)
  int max_conns = 64;         ///< --max-conns (socket transports only)
  bool serve_ordered = false; ///< --serve-ordered
  bool serve_compact = false; ///< --serve-compact
  std::string cache_dir;      ///< --cache-dir (empty = disk tier off)
  std::string listen = "stdio"; ///< --listen (stdio | tcp:HOST:PORT | unix:PATH)
  std::string arena = "on";   ///< --arena (on | off | <block bytes>)
};

/// --arena, parsed: on (default block size), off (heap baseline), or a
/// positive byte count selecting the arena block size. Shared by the serve
/// surface and the CLI's single-run/compare modes so the grammar exists
/// exactly once.
struct arena_flag {
  bool enabled = true;
  std::size_t block_bytes = 0; ///< 0 = util::arena::default_block_bytes
};

/// Throws precondition_error on anything but on | off | positive integer.
[[nodiscard]] arena_flag parse_arena_flag(const std::string& value);

/// The single error path: throws precondition_error naming the offending
/// flag for any out-of-range value or malformed --listen spec. Both
/// derivation functions below call it, so callers may rely on "derived
/// options are validated options".
void validate_serve_flags(const serve_flags& flags);

/// --listen, parsed (and validated as part of validate_serve_flags).
[[nodiscard]] listen_spec listen_from_flags(const serve_flags& flags);

/// Batch-engine options (--serve-batch). SOFTSCHED_INJECT is consumed
/// here: only its io= family applies to the batch engine.
[[nodiscard]] engine_options engine_options_from_flags(const serve_flags& flags);

/// Daemon options (--serve), transport-independent: service knobs,
/// ordering, frame limits, the --max-conns bound. SOFTSCHED_INJECT is
/// consumed here in full (slot/shard/io/conn).
[[nodiscard]] daemon_options daemon_options_from_flags(const serve_flags& flags);

} // namespace softsched::serve
