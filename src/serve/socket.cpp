#include "serve/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <list>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "serve/protocol.h"
#include "util/check.h"

namespace softsched::serve {

namespace {

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

std::uint16_t parse_port(std::string_view text, std::string_view spec) {
  bool ok = !text.empty() && text.size() <= 5;
  unsigned value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      ok = false;
      break;
    }
    value = value * 10 + static_cast<unsigned>(c - '0');
  }
  SOFTSCHED_EXPECT(ok && value <= 65535,
                   "--listen: bad tcp port in '" + std::string(spec) + "'");
  return static_cast<std::uint16_t>(value);
}

/// One connected socket as a byte_stream. Reads are buffered (the frame
/// codec consumes length lines byte by byte); writes go straight to
/// send() with MSG_NOSIGNAL, so a vanished peer is an error return, never
/// a SIGPIPE. shutdown_read()/finish_write() map to the two half-closes.
class socket_stream final : public byte_stream {
public:
  socket_stream(int fd, std::string label) : fd_(fd), label_(std::move(label)) {}
  ~socket_stream() override { close_fd(fd_); }

  socket_stream(const socket_stream&) = delete;
  socket_stream& operator=(const socket_stream&) = delete;

  int get() override {
    if (pos_ == end_ && !fill()) return -1;
    return static_cast<unsigned char>(buffer_[pos_++]);
  }

  bool read_exact(char* dst, std::size_t n) override {
    std::size_t copied = 0;
    while (copied < n) {
      if (pos_ == end_ && !fill()) return false;
      const std::size_t take = std::min(n - copied, end_ - pos_);
      std::memcpy(dst + copied, buffer_ + pos_, take);
      pos_ += take;
      copied += take;
    }
    return true;
  }

  bool write_all(std::string_view data) override {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
      count_out(static_cast<std::size_t>(n));
    }
    return true;
  }

  bool flush() override { return true; } // send() is unbuffered here

  std::string label() const override { return label_; }

  void shutdown_read() override { ::shutdown(fd_, SHUT_RD); }
  void finish_write() override { ::shutdown(fd_, SHUT_WR); }

private:
  bool fill() {
    for (;;) {
      const ssize_t n = ::recv(fd_, buffer_, sizeof buffer_, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false; // EOF or error: both end the read side
      count_in(static_cast<std::size_t>(n));
      pos_ = 0;
      end_ = static_cast<std::size_t>(n);
      return true;
    }
  }

  int fd_;
  char buffer_[4096];
  std::size_t pos_ = 0;
  std::size_t end_ = 0;
  std::string label_;
};

std::string peer_label(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof addr;
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0 &&
      addr.ss_family == AF_INET) {
    const auto* in = reinterpret_cast<const sockaddr_in*>(&addr);
    char host[INET_ADDRSTRLEN] = {};
    if (::inet_ntop(AF_INET, &in->sin_addr, host, sizeof host) != nullptr)
      return std::string("tcp:") + host + ":" + std::to_string(ntohs(in->sin_port));
  }
  return "socket";
}

/// Common accept machinery: shutdown() half-closes the listening fd, which
/// makes a blocked accept() return an error on Linux; the stopped flag
/// turns that error into the clean "no more clients" null.
class fd_listener : public listener {
public:
  fd_listener(int fd, std::string address) : fd_(fd), address_(std::move(address)) {}
  ~fd_listener() override { close_fd(fd_); }

  std::unique_ptr<byte_stream> accept() override {
    for (;;) {
      const int conn = ::accept(fd_, nullptr, nullptr);
      if (conn >= 0) return wrap(conn);
      if (errno == EINTR || errno == ECONNABORTED) {
        if (stopped_.load(std::memory_order_acquire)) return nullptr;
        continue;
      }
      return nullptr; // stopped, or the listener itself failed
    }
  }

  void shutdown() override {
    stopped_.store(true, std::memory_order_release);
    ::shutdown(fd_, SHUT_RDWR);
  }

  std::string address() const override { return address_; }

protected:
  [[nodiscard]] virtual std::unique_ptr<byte_stream> wrap(int conn_fd) = 0;

private:
  int fd_;
  std::string address_;
  std::atomic<bool> stopped_{false};
};

class tcp_listener final : public fd_listener {
public:
  using fd_listener::fd_listener;

protected:
  std::unique_ptr<byte_stream> wrap(int conn_fd) override {
    const int one = 1;
    ::setsockopt(conn_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return std::make_unique<socket_stream>(conn_fd, peer_label(conn_fd));
  }
};

class unix_listener final : public fd_listener {
public:
  unix_listener(int fd, std::string address, std::string path)
      : fd_listener(fd, std::move(address)), path_(std::move(path)) {}
  ~unix_listener() override { ::unlink(path_.c_str()); }

protected:
  std::unique_ptr<byte_stream> wrap(int conn_fd) override {
    return std::make_unique<socket_stream>(conn_fd, "unix:" + path_);
  }

private:
  std::string path_;
};

in_addr resolve_host(const std::string& host, const listen_spec& spec) {
  in_addr addr{};
  const std::string name = host == "localhost" ? "127.0.0.1" : host;
  SOFTSCHED_EXPECT(::inet_pton(AF_INET, name.c_str(), &addr) == 1,
                   "--listen: bad tcp host '" + host + "' in '" + spec.label() +
                       "' (dotted IPv4 or localhost)");
  return addr;
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  SOFTSCHED_EXPECT(path.size() < sizeof addr.sun_path,
                   "--listen: unix socket path longer than " +
                       std::to_string(sizeof addr.sun_path - 1) + " bytes: '" + path + "'");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

} // namespace

listen_spec listen_spec::parse(std::string_view text) {
  listen_spec spec;
  if (text == "stdio") return spec;
  if (text.substr(0, 4) == "tcp:") {
    spec.kind = transport::tcp;
    const std::string_view rest = text.substr(4);
    const std::size_t colon = rest.rfind(':');
    SOFTSCHED_EXPECT(colon != std::string_view::npos && colon > 0,
                     "--listen: expected tcp:HOST:PORT, got '" + std::string(text) + "'");
    spec.host = std::string(rest.substr(0, colon));
    spec.port = parse_port(rest.substr(colon + 1), text);
    return spec;
  }
  if (text.substr(0, 5) == "unix:") {
    spec.kind = transport::unix_domain;
    spec.path = std::string(text.substr(5));
    SOFTSCHED_EXPECT(!spec.path.empty(),
                     "--listen: expected unix:PATH, got '" + std::string(text) + "'");
    return spec;
  }
  SOFTSCHED_EXPECT(false, "--listen: unknown transport '" + std::string(text) +
                              "' (expected stdio, tcp:HOST:PORT or unix:PATH)");
  return spec; // unreachable
}

std::string listen_spec::label() const {
  switch (kind) {
  case transport::tcp:
    return "tcp:" + host + ":" + std::to_string(port);
  case transport::unix_domain:
    return "unix:" + path;
  default:
    return "stdio";
  }
}

std::unique_ptr<listener> make_listener(const listen_spec& spec) {
  SOFTSCHED_EXPECT(spec.kind != listen_spec::transport::stdio,
                   "make_listener: stdio has no listener (use run_daemon)");
  if (spec.kind == listen_spec::transport::tcp) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    SOFTSCHED_EXPECT(fd >= 0, "--listen: socket() failed: " + std::string(std::strerror(errno)));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr = resolve_host(spec.host, spec);
    addr.sin_port = htons(spec.port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, 128) != 0) {
      const std::string why = std::strerror(errno);
      close_fd(fd);
      SOFTSCHED_EXPECT(false, "--listen: cannot bind " + spec.label() + ": " + why);
    }
    // Ephemeral port (tcp:HOST:0): report what the kernel picked.
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    std::uint16_t port = spec.port;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
      port = ntohs(bound.sin_port);
    return std::make_unique<tcp_listener>(fd, "tcp:" + spec.host + ":" + std::to_string(port));
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  SOFTSCHED_EXPECT(fd >= 0, "--listen: socket() failed: " + std::string(std::strerror(errno)));
  const sockaddr_un addr = unix_address(spec.path);
  ::unlink(spec.path.c_str()); // a stale socket file from a dead daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 128) != 0) {
    const std::string why = std::strerror(errno);
    close_fd(fd);
    SOFTSCHED_EXPECT(false, "--listen: cannot bind " + spec.label() + ": " + why);
  }
  return std::make_unique<unix_listener>(fd, spec.label(), spec.path);
}

std::unique_ptr<byte_stream> connect_stream(const listen_spec& spec) {
  if (spec.kind == listen_spec::transport::tcp) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return nullptr;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr = resolve_host(spec.host, spec);
    addr.sin_port = htons(spec.port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      close_fd(fd);
      return nullptr;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return std::make_unique<socket_stream>(fd, spec.label());
  }
  if (spec.kind == listen_spec::transport::unix_domain) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return nullptr;
    const sockaddr_un addr = unix_address(spec.path);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      close_fd(fd);
      return nullptr;
    }
    return std::make_unique<socket_stream>(fd, spec.label());
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// socket_server

struct socket_server::impl {
  struct connection {
    std::unique_ptr<byte_stream> stream;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  listener& accept_from;
  service& svc;
  socket_server_options options;

  connection_counters counters;
  std::atomic<bool> stopping{false};

  std::mutex mutex; // guards connections + the summed counters below
  std::list<connection> connections;
  std::uint64_t frames = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  bool shutdown_requested = false;

  impl(listener& l, service& s, const socket_server_options& o)
      : accept_from(l), svc(s), options(o) {
    counters.transport = l.address();
  }

  void serve_one(connection& conn, const conn_fault_action* fault) {
    if (fault != nullptr && fault->stall_ms > 0)
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(fault->stall_ms));
    const connection_summary s =
        serve_connection(*conn.stream, svc, options.connection, &counters);
    {
      const std::lock_guard<std::mutex> lock(mutex);
      frames += s.frames;
      requests += s.requests;
      responses += s.responses;
      if (s.end == connection_end::shutdown_op) shutdown_requested = true;
    }
    if (s.end == connection_end::shutdown_op) stop();
    // The conversation is over: half-close the write side now so the
    // client sees EOF immediately (the fd itself lives until this node
    // is reaped or the server tears down).
    conn.stream->finish_write();
    counters.active.fetch_sub(1, std::memory_order_acq_rel);
    counters.closed.fetch_add(1, std::memory_order_relaxed);
    // Last touch of `conn`: once finished is set, the accept loop may
    // reap (join + destroy) this node at any moment.
    conn.finished.store(true, std::memory_order_release);
  }

  /// Joins connection threads that already finished, bounding the live
  /// thread list under connection churn. Splices them out under the lock
  /// but joins outside it - a finishing thread may itself be waiting on
  /// the mutex (or calling stop()) on its way out.
  void reap_finished() {
    std::list<connection> done;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      for (auto it = connections.begin(); it != connections.end();) {
        const auto next = std::next(it);
        if (it->finished.load(std::memory_order_acquire))
          done.splice(done.end(), connections, it);
        it = next;
      }
    }
    for (connection& conn : done)
      if (conn.thread.joinable()) conn.thread.join();
  }

  void stop() {
    stopping.store(true, std::memory_order_release);
    accept_from.shutdown();
    const std::lock_guard<std::mutex> lock(mutex);
    for (connection& conn : connections)
      if (!conn.finished.load(std::memory_order_acquire)) conn.stream->shutdown_read();
  }
};

socket_server::socket_server(listener& accept_from, service& svc,
                             const socket_server_options& options)
    : impl_(std::make_unique<impl>(accept_from, svc, options)) {}

socket_server::~socket_server() = default;

void socket_server::stop() { impl_->stop(); }

connection_counters& socket_server::counters() noexcept { return impl_->counters; }

socket_server_summary socket_server::run() {
  impl& d = *impl_;
  const auto& conn_faults = d.svc.options().faults.conns;
  unsigned accept_index = 0;

  while (!d.stopping.load(std::memory_order_acquire)) {
    std::unique_ptr<byte_stream> stream = d.accept_from.accept();
    if (stream == nullptr) break;
    d.reap_finished();
    ++accept_index;
    d.counters.accepted.fetch_add(1, std::memory_order_relaxed);

    const auto fault_it = conn_faults.find(accept_index);
    const conn_fault_action* fault =
        fault_it != conn_faults.end() ? &fault_it->second : nullptr;
    if (fault != nullptr && fault->drop) {
      // The injected mid-flight client death, server side: close without
      // reading a byte. The stream destructor closes the fd; the client
      // sees a reset/EOF, the service never hears about it.
      d.counters.faulted.fetch_add(1, std::memory_order_relaxed);
      d.counters.closed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    // Connection-level admission control: beyond --max-conns the client
    // gets one framed shed answer with a retry hint, then the door closes.
    const std::uint64_t active =
        d.counters.active.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (active > d.options.max_connections) {
      d.counters.active.fetch_sub(1, std::memory_order_acq_rel);
      d.counters.shed.fetch_add(1, std::memory_order_relaxed);
      (void)write_frame(*stream, render_connection_shed(d.options.retry_after_ms));
      d.counters.bytes_out.fetch_add(stream->bytes_out(), std::memory_order_relaxed);
      d.counters.closed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    const std::lock_guard<std::mutex> lock(d.mutex);
    auto& conn = d.connections.emplace_back();
    conn.stream = std::move(stream);
    conn.thread = std::thread([&d, &conn, fault] { d.serve_one(conn, fault); });
  }

  // Teardown: no new clients, half-close every open read side so each
  // connection drains what it admitted and closes, then join everything.
  d.stop();
  for (;;) {
    std::unique_lock<std::mutex> lock(d.mutex);
    if (d.connections.empty()) break;
    impl::connection& conn = d.connections.front();
    lock.unlock();
    if (conn.thread.joinable()) conn.thread.join();
    lock.lock();
    d.connections.pop_front();
  }

  socket_server_summary summary;
  {
    const std::lock_guard<std::mutex> lock(d.mutex);
    summary.frames = d.frames;
    summary.requests = d.requests;
    summary.responses = d.responses;
    summary.shutdown_requested = d.shutdown_requested;
  }
  summary.conns = snapshot(d.counters);
  return summary;
}

} // namespace softsched::serve
