#include "ir/benchmarks.h"

#include <cstdlib>

#include "util/check.h"

namespace softsched::ir {

dfg make_hal(const resource_library& library) {
  dfg d("HAL", library);
  // x' = x + dx; u' = u - 3*x*u*dx - 3*y*dx; y' = y + u*dx; c = x' < a.
  // Inputs (x, y, u, dx, a, 3) are implicit; source vertices read them.
  const vertex_id m1 = d.add_op(op_kind::mul, {}, "m1"); // 3 * x
  const vertex_id m2 = d.add_op(op_kind::mul, {}, "m2"); // u * dx
  const vertex_id m3 = d.add_op(op_kind::mul, {}, "m3"); // 3 * y
  const vertex_id m4 = d.add_op(op_kind::mul, {m1, m2}, "m4"); // (3x) * (u dx)
  const vertex_id m5 = d.add_op(op_kind::mul, {m3}, "m5");     // (3y) * dx
  const vertex_id m6 = d.add_op(op_kind::mul, {}, "m6");       // u * dx (for y')
  const vertex_id s1 = d.add_op(op_kind::sub, {m4}, "s1");     // u - m4
  d.add_op(op_kind::sub, {s1, m5}, "s2");                      // u' = s1 - m5
  const vertex_id a1 = d.add_op(op_kind::add, {}, "a1");       // x' = x + dx
  d.add_op(op_kind::add, {m6}, "a2");                          // y' = y + m6
  d.add_op(op_kind::compare, {a1}, "c1");                      // x' < a
  d.validate();
  return d;
}

dfg make_arf(const resource_library& library) {
  dfg d("AR", library);
  // Stage 1: eight input products reduced pairwise.
  vertex_id m[17]; // 1-based
  for (int i = 1; i <= 8; ++i)
    m[i] = d.add_op(op_kind::mul, {}, std::string("m") += std::to_string(i));
  const vertex_id a1 = d.add_op(op_kind::add, {m[1], m[2]}, "a1");
  const vertex_id a2 = d.add_op(op_kind::add, {m[3], m[4]}, "a2");
  const vertex_id a3 = d.add_op(op_kind::add, {m[5], m[6]}, "a3");
  const vertex_id a4 = d.add_op(op_kind::add, {m[7], m[8]}, "a4");
  // Stage 2: each partial sum scaled by two lattice coefficients.
  const vertex_id stage2_in[8] = {a1, a1, a2, a2, a3, a3, a4, a4};
  for (int i = 9; i <= 16; ++i)
    m[i] = d.add_op(op_kind::mul, {stage2_in[i - 9]}, std::string("m") += std::to_string(i));
  // Stage 3/4: cross reductions down to the two lattice outputs.
  const vertex_id a5 = d.add_op(op_kind::add, {m[9], m[11]}, "a5");
  const vertex_id a6 = d.add_op(op_kind::add, {m[10], m[12]}, "a6");
  const vertex_id a7 = d.add_op(op_kind::add, {m[13], m[15]}, "a7");
  const vertex_id a8 = d.add_op(op_kind::add, {m[14], m[16]}, "a8");
  const vertex_id a9 = d.add_op(op_kind::add, {a5, a7}, "a9");
  const vertex_id a10 = d.add_op(op_kind::add, {a6, a8}, "a10");
  d.add_op(op_kind::add, {a9, a10}, "a11"); // output 1
  d.add_op(op_kind::add, {a9, a7}, "a12");  // output 2
  d.validate();
  return d;
}

dfg make_ewf(const resource_library& library) {
  dfg d("EF", library);
  // Fifth-order elliptic wave filter: three two-port adaptor sections on a
  // serial spine of 11 adds and 3 multiplies (critical path
  // 11*1 + 3*2 = 17 cycles, the classic EWF minimum-latency figure), with
  // five equal-length fork/join side branches (add -> mul -> add) that
  // shadow the spine segments - they do not stretch the critical path but
  // compete for adders and multipliers exactly where the spine needs them,
  // reproducing the EWF's characteristic resource pressure.
  auto add = [&d](std::initializer_list<vertex_id> in, const char* name) {
    return d.add_op(op_kind::add, in, name);
  };
  auto mul = [&d](std::initializer_list<vertex_id> in, const char* name) {
    return d.add_op(op_kind::mul, in, name);
  };

  // Spine (adaptor ladder).
  const vertex_id s1 = add({}, "s1");
  const vertex_id s2 = add({s1}, "s2");
  const vertex_id M1 = mul({s2}, "M1");
  const vertex_id s3 = add({M1}, "s3");
  // Branch A: s1 -> b1 -> m1 -> b2 rejoins at s4 (length 4 = s2+M1+s3).
  const vertex_id b1 = add({s1}, "b1");
  const vertex_id m1 = mul({b1}, "m1");
  const vertex_id b2 = add({m1}, "b2");
  const vertex_id s4 = add({s3, b2}, "s4");
  // Branch D: s2 -> b7 -> m4 -> b8 rejoins at s5.
  const vertex_id b7 = add({s2}, "b7");
  const vertex_id m4 = mul({b7}, "m4");
  const vertex_id b8 = add({m4}, "b8");
  const vertex_id s5 = add({s4, b8}, "s5");
  const vertex_id M2 = mul({s5}, "M2");
  const vertex_id s6 = add({M2}, "s6");
  // Branch B: s4 -> b3 -> m2 -> b4 rejoins at s7.
  const vertex_id b3 = add({s4}, "b3");
  const vertex_id m2 = mul({b3}, "m2");
  const vertex_id b4 = add({m2}, "b4");
  const vertex_id s7 = add({s6, b4}, "s7");
  // Branch E: s5 -> b9 -> m5 -> b10 rejoins at s8.
  const vertex_id b9 = add({s5}, "b9");
  const vertex_id m5 = mul({b9}, "m5");
  const vertex_id b10 = add({m5}, "b10");
  const vertex_id s8 = add({s7, b10}, "s8");
  const vertex_id M3 = mul({s8}, "M3");
  const vertex_id s9 = add({M3}, "s9");
  // Branch C: s7 -> b5 -> m3 -> b6 rejoins at s10.
  const vertex_id b5 = add({s7}, "b5");
  const vertex_id m3 = mul({b5}, "m3");
  const vertex_id b6 = add({m3}, "b6");
  const vertex_id s10 = add({s9, b6}, "s10");
  add({s10}, "s11"); // output 1
  // Output taps (do not extend the critical path).
  const vertex_id b14 = add({s2}, "b14");
  add({b14}, "b15"); // early output pair
  const vertex_id b12 = add({s7}, "b12");
  add({b12}, "b13"); // mid output pair
  add({s10}, "b11"); // late output tap
  d.validate();
  return d;
}

dfg make_fir(const resource_library& library, int taps) {
  SOFTSCHED_EXPECT(taps >= 1, "FIR needs at least one tap");
  dfg d(std::string("FIR") += std::to_string(taps), library);
  std::vector<vertex_id> level;
  for (int i = 0; i < taps; ++i)
    level.push_back(d.add_op(op_kind::mul, {}, std::string("m") += std::to_string(i + 1)));
  int adder = 1;
  while (level.size() > 1) {
    std::vector<vertex_id> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(d.add_op(op_kind::add, {level[i], level[i + 1]},
                              std::string("a") += std::to_string(adder++)));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  d.validate();
  return d;
}

dfg make_fir8(const resource_library& library) {
  dfg d = make_fir(library, 8);
  return d;
}

dfg make_iir_cascade(const resource_library& library, int sections) {
  SOFTSCHED_EXPECT(sections >= 1, "IIR cascade needs at least one section");
  dfg d(std::string("IIR") += std::to_string(sections), library);
  vertex_id carry = vertex_id::invalid();
  for (int s = 0; s < sections; ++s) {
    const std::string tag = std::to_string(s + 1);
    // Direct-form-II biquad: two feedback taps, two feedforward taps.
    const vertex_id fb1 = d.add_op(op_kind::mul, {}, "fb1_" + tag);
    const vertex_id fb2 = d.add_op(op_kind::mul, {}, "fb2_" + tag);
    std::vector<vertex_id> win_in;
    if (carry.valid()) win_in.push_back(carry);
    win_in.push_back(fb1);
    const vertex_id w1 = d.add_op(op_kind::add, win_in, "w1_" + tag);
    const vertex_id w2 = d.add_op(op_kind::add, {w1, fb2}, "w2_" + tag);
    const vertex_id ff1 = d.add_op(op_kind::mul, {w2}, "ff1_" + tag);
    const vertex_id ff2 = d.add_op(op_kind::mul, {w2}, "ff2_" + tag);
    const vertex_id y1 = d.add_op(op_kind::add, {ff1, ff2}, "y1_" + tag);
    carry = d.add_op(op_kind::add, {y1}, "y2_" + tag);
  }
  d.validate();
  return d;
}

dfg make_figure1(const resource_library& library) {
  dfg d("fig1", library);
  // All seven vertices are unit-delay ALU operations in the paper's figure.
  vertex_id v[8]; // 1-based
  for (int i = 1; i <= 7; ++i)
    v[i] = d.add_op(op_kind::add, {}, std::to_string(i));
  d.add_dependence(v[1], v[2]);
  d.add_dependence(v[1], v[3]);
  d.add_dependence(v[2], v[4]);
  d.add_dependence(v[3], v[6]);
  d.add_dependence(v[4], v[6]);
  d.add_dependence(v[6], v[7]);
  d.add_dependence(v[5], v[7]);
  d.validate();
  return d;
}

dfg make_benchmark(const std::string& name, const resource_library& library) {
  if (name == "hal") return make_hal(library);
  if (name == "arf") return make_arf(library);
  if (name == "ewf") return make_ewf(library);
  if (name == "fig1") return make_figure1(library);
  const auto parameter = [&](std::size_t prefix_len) {
    const int n = std::atoi(name.c_str() + prefix_len);
    SOFTSCHED_EXPECT(n >= 1, "malformed benchmark parameter in '" + name + "'");
    return n;
  };
  if (name.rfind("fir", 0) == 0) return make_fir(library, parameter(3));
  if (name.rfind("iir", 0) == 0) return make_iir_cascade(library, parameter(3));
  throw precondition_error("unknown benchmark '" + name + "'");
}

vertex_id find_op(const dfg& graph, const std::string& name) {
  for (const vertex_id v : graph.graph().vertices())
    if (graph.graph().name(v) == name) return v;
  throw precondition_error("no operation named '" + name + "' in " + graph.name());
}

std::vector<dfg> figure3_benchmarks(const resource_library& library) {
  std::vector<dfg> result;
  result.push_back(make_hal(library));
  result.push_back(make_arf(library));
  result.push_back(make_ewf(library));
  result.push_back(make_fir8(library));
  return result;
}

} // namespace softsched::ir
