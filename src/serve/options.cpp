#include "serve/options.h"

#include "util/check.h"

namespace softsched::serve {

void validate_serve_flags(const serve_flags& flags) {
  SOFTSCHED_EXPECT(flags.cache_mb >= 0, "--cache-mb must be >= 0");
  SOFTSCHED_EXPECT(flags.disk_cache_mb >= 0, "--disk-cache-mb must be >= 0");
  SOFTSCHED_EXPECT(flags.serve_batch_size >= 0, "--serve-batch-size must be >= 0");
  SOFTSCHED_EXPECT(flags.serve_queue >= 1, "--serve-queue must be >= 1");
  SOFTSCHED_EXPECT(flags.max_conns >= 1, "--max-conns must be >= 1");
  (void)listen_spec::parse(flags.listen); // throws on a malformed spec
}

listen_spec listen_from_flags(const serve_flags& flags) {
  validate_serve_flags(flags);
  return listen_spec::parse(flags.listen);
}

engine_options engine_options_from_flags(const serve_flags& flags) {
  validate_serve_flags(flags);
  engine_options opt;
  opt.jobs = flags.jobs;
  opt.cache_bytes = static_cast<std::size_t>(flags.cache_mb) << 20;
  opt.batch_size = static_cast<std::size_t>(flags.serve_batch_size);
  opt.emit_schedule = !flags.serve_compact;
  opt.cache_dir = flags.cache_dir;
  opt.disk_cache_bytes = static_cast<std::size_t>(flags.disk_cache_mb) << 20;
  // Only the io= family applies to the batch engine (slot/shard/conn
  // target the daemon); it is consumed exclusively by the disk tier.
  opt.disk_faults = fault_plan::from_env().io;
  return opt;
}

daemon_options daemon_options_from_flags(const serve_flags& flags) {
  validate_serve_flags(flags);
  daemon_options opt;
  opt.service.jobs = flags.jobs;
  opt.service.cache_bytes = static_cast<std::size_t>(flags.cache_mb) << 20;
  opt.service.queue_capacity = static_cast<std::size_t>(flags.serve_queue);
  opt.service.emit_schedule = !flags.serve_compact;
  opt.service.faults = fault_plan::from_env();
  opt.service.cache_dir = flags.cache_dir;
  opt.service.disk_cache_bytes = static_cast<std::size_t>(flags.disk_cache_mb) << 20;
  opt.ordered = flags.serve_ordered;
  opt.max_connections = static_cast<std::size_t>(flags.max_conns);
  return opt;
}

} // namespace softsched::serve
