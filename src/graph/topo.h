// topo.h - vertex orderings over precedence graphs. These underlie the
// paper's meta schedules (Section 5) and the labeling passes.
#pragma once

#include <vector>

#include "graph/precedence_graph.h"

namespace softsched::graph {

/// Kahn topological order with deterministic tie-breaking (lowest ready id
/// first). Throws graph_error on cycles. This is the order "meta schedule 2"
/// feeds the online scheduler.
[[nodiscard]] std::vector<vertex_id> topological_order(const precedence_graph& g);

/// Depth-first preorder starting from the sources in id order, visiting
/// successors in adjacency order ("meta schedule 1"). Note this order is
/// generally NOT topological - dependents can appear before their inputs,
/// which is exactly why it stresses the online scheduler.
[[nodiscard]] std::vector<vertex_id> depth_first_order(const precedence_graph& g);

/// Partitions the vertices into vertex-disjoint paths by repeatedly peeling
/// the longest (delay-weighted) remaining path ("meta schedule 3" structure).
/// Paths are returned longest-first; every vertex is on exactly one path.
[[nodiscard]] std::vector<std::vector<vertex_id>> path_partition(const precedence_graph& g);

/// True iff `order` contains each vertex exactly once and respects all
/// edges of g (u before v for every edge u->v).
[[nodiscard]] bool is_topological(const precedence_graph& g,
                                  const std::vector<vertex_id>& order);

/// True iff `order` contains each vertex of g exactly once (any order).
[[nodiscard]] bool is_permutation(const precedence_graph& g,
                                  const std::vector<vertex_id>& order);

} // namespace softsched::graph
