// resource.h - the datapath resource model: functional-unit classes, the
// op-kind -> class mapping, per-kind latencies, and resource constraint
// sets like the paper's "2+/-,2*".
//
// In threaded scheduling each functional-unit *instance* becomes one thread
// (Section 4.1: "each thread corresponds to one functional unit in the
// datapath"), so a resource_set also describes a thread configuration.
#pragma once

#include <array>
#include <string>

#include "ir/operation.h"

namespace softsched::ir {

/// Functional-unit classes. `wire` is the pseudo-class for interconnect
/// delay vertices: each wire vertex occupies its own dedicated "unit"
/// (wires are not shared), which the schedulers special-case.
enum class resource_class { alu, multiplier, memory_port, wire };

inline constexpr int resource_class_count = 4;

[[nodiscard]] std::string_view class_name(resource_class cls) noexcept;

/// The FU class that executes an operation kind.
[[nodiscard]] resource_class class_of(op_kind kind) noexcept;

/// Latency/compatibility library. Defaults follow the standard HLSynth
/// convention the paper's numbers are consistent with: ALU ops (add, sub,
/// compare, move) take 1 cycle, multiplication takes 2 cycles
/// (non-pipelined), memory access takes 1 cycle; wire latency is
/// per-vertex (set when the wire vertex is created).
class resource_library {
public:
  resource_library();

  [[nodiscard]] int latency(op_kind kind) const noexcept;
  void set_latency(op_kind kind, int cycles);

private:
  std::array<int, op_kind_count> latency_;
};

/// A resource constraint: how many units of each class exist. This is what
/// the Figure-3 column headers ("2+/-,2*" etc.) denote.
struct resource_set {
  int alus = 1;
  int multipliers = 1;
  int memory_ports = 1;

  [[nodiscard]] int count(resource_class cls) const noexcept;

  /// Paper-style label, e.g. "2+/-,2*".
  [[nodiscard]] std::string label() const;
};

/// The three resource sets of the Figure 3 experiment.
[[nodiscard]] resource_set figure3_constraint(int index);
inline constexpr int figure3_constraint_count = 3;

} // namespace softsched::ir
