#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Validates a freshly generated BENCH JSON (schema + internal consistency,
carrying forward the checks the old bench-smoke job ran inline) and then
compares the headline metrics against the committed baseline with a
generous tolerance: the job fails only when a metric regressed by more
than 2x, so machine-to-machine noise between the committing host and the
CI runner never trips it, while a real hot-path regression does.

Usage: bench_gate.py BASELINE.json FRESH.json
Prints a GitHub-flavoured markdown summary to stdout (pipe it into
$GITHUB_STEP_SUMMARY); exits 1 on validation failure or regression.
"""

import json
import sys

# Higher-is-better metrics gate uniformly at 2x. Lower-is-better metrics
# (latency tails, drop rates) carry their own tolerance plus an absolute
# floor: tiny baselines would otherwise turn scheduler-jitter noise into a
# "4x regression", so the gate compares against max(baseline, floor).
TOLERANCE = 2.0
LOWER_IS_BETTER = {
    # name: (tolerance, floor)
    "load.p99_ms": (4.0, 1.0),
    "load.drop_rate": (2.0, 0.1),
    # Socket p99 includes the kernel socket path and reader-thread wakeups,
    # so it needs a higher floor than the in-process load scenario.
    "socket.p99_ms": (4.0, 10.0),
    "socket.shed_rate": (2.0, 0.1),
    # The recovery scan is sub-ms on the fixed mix; without the floor a
    # 0.2 ms -> 0.9 ms filesystem hiccup would read as a 4x regression.
    "persist.recovery_scan_ms": (4.0, 50.0),
    # Warmed-arena heap allocations per scheduled design. Deterministic (no
    # timing involved), so the tolerance is tight: a doubling means someone
    # reintroduced a per-run heap allocation on the hot path. The floor
    # keeps a future fully-silent arena (0 allocs) from making any nonzero
    # count look infinite.
    "memory.arena_allocs_per_design": (2.0, 4.0),
    # Summed sdc-iter latency delta against soft over the fixed grid. The
    # scenario's own gate already enforces <= 0 (never worse than soft), so
    # the committed value is zero or negative; the floor keeps the ratio
    # math meaningful and the entry exists to fail loudly if a regenerated
    # baseline ever drifts positive past it.
    "iter.qor_delta_vs_soft": (1.0, 0.0),
}


def metrics(doc):
    s = doc["scenarios"]
    return {
        "refinement_storm.speedup": s["refinement_storm"]["speedup"],
        "hls_refinement_storm.speedup": s["hls_refinement_storm"]["speedup"],
        "dse.points_per_sec_multi": s["dse"]["points_per_sec_multi"],
        "dse.points_per_sec_single": s["dse"]["points_per_sec_single"],
        "serve.requests_per_sec_hot": s["serve"]["requests_per_sec_hot"],
        "serve.requests_per_sec_cold": s["serve"]["requests_per_sec_cold"],
        "serve.hit_rate": s["serve"]["hit_rate"],
        "backend.soft_points_per_sec": s["backend"]["per_backend"]["soft"][
            "points_per_sec"
        ],
        "backend.list_points_per_sec": s["backend"]["per_backend"]["list"][
            "points_per_sec"
        ],
        "backend.fds_points_per_sec": s["backend"]["per_backend"]["fds"][
            "points_per_sec"
        ],
        "iter.qor_delta_vs_soft": s["iter"]["qor_delta_vs_soft"],
        "iter.points_per_sec": s["iter"]["points_per_sec"],
        "load.p99_ms": s["load"]["p99_ms"],
        "load.drop_rate": s["load"]["drop_rate"],
        "load.goodput_rps": s["load"]["goodput_rps"],
        "socket.p99_ms": s["socket"]["p99_ms"],
        "socket.shed_rate": s["socket"]["shed_rate"],
        "socket.goodput_rps": s["socket"]["goodput_rps"],
        "persist.warm_restart_hit_rate": s["persist"]["warm_restart_hit_rate"],
        "persist.requests_per_sec_warm": s["persist"]["requests_per_sec_warm"],
        "persist.requests_per_sec_degraded": s["persist"][
            "requests_per_sec_degraded"
        ],
        "persist.recovery_scan_ms": s["persist"]["recovery_scan_ms"],
        "memory.alloc_ratio": s["memory"]["alloc_ratio"],
        "memory.arena_allocs_per_design": s["memory"]["arena"][
            "allocations_per_design"
        ],
    }


def validate(doc, label):
    errors = []
    if doc.get("schema") != "softsched-bench-v1":
        errors.append(f"{label}: unexpected schema {doc.get('schema')!r}")
        return errors
    s = doc.get("scenarios", {})
    if not s.get("paper_benchmarks") or not s.get("random_dag_sweep"):
        errors.append(f"{label}: missing paper_benchmarks/random_dag_sweep")
    for key in ("refinement_storm", "hls_refinement_storm"):
        storm = s.get(key)
        if not storm:
            errors.append(f"{label}: missing scenario {key}")
            continue
        if not storm["modes_agree"]:
            errors.append(f"{label}: {key}: incremental vs from-scratch diverged")
        if storm["speedup"] <= 0:
            errors.append(f"{label}: {key}: bad speedup")
        if storm["incremental_stats"]["closure_rebuilds"] > 1:
            errors.append(f"{label}: {key}: incremental run fell back to rebuilds")
    dse = s.get("dse")
    if not dse:
        errors.append(f"{label}: missing scenario dse")
    else:
        if not dse["deterministic"]:
            errors.append(f"{label}: dse: 1-job vs N-job outcomes diverged")
        if dse["points_per_sec_multi"] <= 0:
            errors.append(f"{label}: dse: bad throughput")
    serve = s.get("serve")
    if not serve:
        errors.append(f"{label}: missing scenario serve")
    else:
        if not serve["deterministic"]:
            errors.append(
                f"{label}: serve: responses diverged across jobs/cache sizes"
            )
        if serve["requests_per_sec_hot"] <= 0:
            errors.append(f"{label}: serve: bad hot throughput")
        if not 0 < serve["hit_rate"] <= 1:
            errors.append(f"{label}: serve: hit_rate outside (0, 1]")
        # The tentpole's speed story is a hard floor, not a trend: a warm
        # cache must beat cold scheduling by at least 5x on the skewed mix.
        if serve["speedup_hot_over_cold"] < 5:
            errors.append(
                f"{label}: serve: hot cache only "
                f"{serve['speedup_hot_over_cold']:.2f}x faster than cold (< 5x)"
            )
    load = s.get("load")
    if not load:
        errors.append(f"{label}: missing scenario load")
    else:
        for key in (
            "p99_ms",
            "drop_rate",
            "goodput_rps",
            "peak_queue_depth",
            "queue_capacity",
            "slo",
        ):
            if key not in load:
                errors.append(f"{label}: load: missing {key}")
        if "drop_rate" in load and not 0 <= load["drop_rate"] <= 1:
            errors.append(f"{label}: load: drop_rate outside [0, 1]")
        if load.get("goodput_rps", 0) <= 0:
            errors.append(f"{label}: load: no goodput under overload")
        if load.get("peak_queue_depth", 0) > load.get("queue_capacity", 0):
            errors.append(
                f"{label}: load: queue depth {load.get('peak_queue_depth')} "
                f"exceeded capacity {load.get('queue_capacity')} - admission "
                "control is not bounding the queue"
            )
        if isinstance(load.get("slo"), dict) and not load["slo"].get("pass"):
            errors.append(f"{label}: load: scenario's own SLO gate failed")
    socket = s.get("socket")
    if not socket:
        errors.append(f"{label}: missing scenario socket")
    else:
        for key in (
            "connections",
            "p99_ms",
            "shed_rate",
            "goodput_rps",
            "peak_queue_depth",
            "queue_capacity",
            "client",
            "conns",
            "slo",
        ):
            if key not in socket:
                errors.append(f"{label}: socket: missing {key}")
        client = socket.get("client")
        if isinstance(client, dict) and client.get("reader_errors", 0) != 0:
            errors.append(
                f"{label}: socket: {client['reader_errors']} client readers "
                "died on a framing error instead of a clean EOF"
            )
        if "shed_rate" in socket and not 0 <= socket["shed_rate"] <= 1:
            errors.append(f"{label}: socket: shed_rate outside [0, 1]")
        if socket.get("goodput_rps", 0) <= 0:
            errors.append(f"{label}: socket: no goodput under overload")
        if socket.get("peak_queue_depth", 0) > socket.get("queue_capacity", 0):
            errors.append(
                f"{label}: socket: queue depth {socket.get('peak_queue_depth')} "
                f"exceeded capacity {socket.get('queue_capacity')} - admission "
                "control is not bounding the queue behind the socket transport"
            )
        conns = socket.get("conns")
        if isinstance(conns, dict):
            if conns.get("transport_errors", 0) != 0:
                errors.append(
                    f"{label}: socket: {conns['transport_errors']} transport "
                    "errors on well-formed client traffic"
                )
            if conns.get("accepted", 0) < socket.get("connections", 0):
                errors.append(
                    f"{label}: socket: accepted {conns.get('accepted')} "
                    f"connections, fewer than the {socket.get('connections')} "
                    "clients - the accept loop lost clients"
                )
        if isinstance(socket.get("slo"), dict) and not socket["slo"].get("pass"):
            errors.append(f"{label}: socket: scenario's own SLO gate failed")
    persist = s.get("persist")
    if not persist:
        errors.append(f"{label}: missing scenario persist")
    else:
        for key in (
            "warm_restart_hit_rate",
            "recovery_scan_ms",
            "recovered_entries",
            "requests_per_sec_warm",
            "requests_per_sec_degraded",
            "gate",
        ):
            if key not in persist:
                errors.append(f"{label}: persist: missing {key}")
        if not persist.get("deterministic", False):
            errors.append(
                f"{label}: persist: responses diverged across disk-tier "
                "configurations"
            )
        if not 0 < persist.get("warm_restart_hit_rate", 0) <= 1:
            errors.append(
                f"{label}: persist: warm_restart_hit_rate outside (0, 1] - "
                "the warm restart did not serve from disk"
            )
        if persist.get("recovered_entries", 0) <= 0:
            errors.append(f"{label}: persist: recovery scan indexed nothing")
        if persist.get("degraded_request_errors", 0) != 0:
            errors.append(
                f"{label}: persist: a disk outage surfaced "
                f"{persist['degraded_request_errors']} request errors - the "
                "tier must degrade to RAM-only, never error"
            )
        if isinstance(persist.get("gate"), dict) and not persist["gate"].get("pass"):
            errors.append(f"{label}: persist: scenario's own gate failed")
    memory = s.get("memory")
    if not memory:
        errors.append(f"{label}: missing scenario memory")
    else:
        for key in ("arena", "heap", "alloc_ratio", "min_alloc_ratio", "ok"):
            if key not in memory:
                errors.append(f"{label}: memory: missing {key}")
        if not memory.get("instrumented", False):
            errors.append(
                f"{label}: memory: allocation counters read zero - the harness "
                "is not linked against the counting allocator"
            )
        if not memory.get("modes_agree", False):
            errors.append(
                f"{label}: memory: arena and heap modes produced different "
                "schedules - the arena must never be a result lever"
            )
        ratio = memory.get("alloc_ratio", 0)
        min_ratio = memory.get("min_alloc_ratio", 0)
        if ratio < min_ratio:
            errors.append(
                f"{label}: memory: warmed arena only {ratio:.2f}x fewer heap "
                f"allocations than heap mode (< {min_ratio:g}x)"
            )
        if not memory.get("ok", False):
            errors.append(f"{label}: memory: scenario's own gate failed")
    backend = s.get("backend")
    if not backend:
        errors.append(f"{label}: missing scenario backend")
    else:
        if not backend["deterministic"]:
            errors.append(f"{label}: backend: a backend diverged or went illegal")
        for name, entry in backend["per_backend"].items():
            if not entry["deterministic"]:
                errors.append(f"{label}: backend: {name} diverged across passes")
            if not entry["all_legal"]:
                errors.append(
                    f"{label}: backend: {name} produced an illegal schedule"
                )
            if entry["points_per_sec"] <= 0:
                errors.append(f"{label}: backend: {name}: bad throughput")
    it = s.get("iter")
    if not it:
        errors.append(f"{label}: missing scenario iter")
    else:
        for key in (
            "budget",
            "grid",
            "qor_delta_vs_soft",
            "improved_points",
            "max_iterations",
            "points_per_sec",
            "gate",
        ):
            if key not in it:
                errors.append(f"{label}: iter: missing {key}")
        if not it.get("deterministic", False):
            errors.append(f"{label}: iter: sdc-iter diverged across passes")
        if not it.get("all_legal", False):
            errors.append(f"{label}: iter: an iterated schedule went illegal")
        # The tentpole's QoR story is a hard floor, not a trend: iteration
        # must never end worse than its soft base run anywhere on the grid,
        # and must strictly improve at least one point.
        if it.get("qor_delta_vs_soft", 1) > 0:
            errors.append(
                f"{label}: iter: qor_delta_vs_soft "
                f"{it.get('qor_delta_vs_soft')} > 0 - iteration ended worse "
                "than its soft base run"
            )
        if it.get("improved_points", 0) < 1:
            errors.append(
                f"{label}: iter: no grid point improved on soft - the "
                "iterative loop is a no-op"
            )
        if it.get("max_iterations", 0) > it.get("budget", 0):
            errors.append(
                f"{label}: iter: {it.get('max_iterations')} iterations "
                f"exceeded the default budget {it.get('budget')} - no fixed "
                "point reached"
            )
        if it.get("points_per_sec", 0) <= 0:
            errors.append(f"{label}: iter: bad throughput")
        if isinstance(it.get("gate"), dict) and not it["gate"].get("pass"):
            errors.append(f"{label}: iter: scenario's own gate failed")
    return errors


def main():
    if len(sys.argv) != 3:
        print("usage: bench_gate.py BASELINE.json FRESH.json", file=sys.stderr)
        return 2
    # Anything malformed - truncated JSON, a partial scenario block, missing
    # metrics - must come out as a readable gate failure in the summary, not
    # a traceback, so the whole load/validate/extract phase shares one net.
    errors = []
    try:
        with open(sys.argv[1]) as f:
            baseline = json.load(f)
        with open(sys.argv[2]) as f:
            fresh = json.load(f)
        errors = validate(fresh, "fresh")
        base_metrics = metrics(baseline)
        fresh_metrics = metrics(fresh)
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as e:
        errors.append(f"malformed benchmark document: {e!r}")
        print("### Benchmark gate\n\n**Gate failed:**")
        for err in errors:
            print(f"- {err}")
            print(f"bench_gate: {err}", file=sys.stderr)
        return 1

    # Only the headline metrics gate; the rest are reported for trend-reading.
    gated = {
        "refinement_storm.speedup",
        "dse.points_per_sec_multi",
        "serve.requests_per_sec_hot",
        "serve.hit_rate",
        "backend.soft_points_per_sec",
        "iter.points_per_sec",
        "persist.warm_restart_hit_rate",
        "memory.alloc_ratio",
    }

    print("### Benchmark gate (fail only on >%.0fx regression)\n" % TOLERANCE)
    print("| Metric | Baseline | Fresh | Ratio | Gate |")
    print("|---|---|---|---|---|")
    for name in sorted(base_metrics):
        base, now = base_metrics[name], fresh_metrics[name]
        ratio = now / base if base > 0 else float("inf")
        if name in LOWER_IS_BETTER:
            tolerance, floor = LOWER_IS_BETTER[name]
            if now > max(base, floor) * tolerance:
                status = "FAIL"
                errors.append(
                    f"{name} regressed more than {tolerance}x "
                    f"(floor {floor:g}): {base:.3g} -> {now:.3g}"
                )
            else:
                status = "ok"
        elif name in gated and now < base / TOLERANCE:
            status = "FAIL"
            errors.append(
                f"{name} regressed more than {TOLERANCE}x: {base:.3g} -> {now:.3g}"
            )
        else:
            status = "ok" if name in gated else "info"
        print(f"| {name} | {base:.3g} | {now:.3g} | {ratio:.2f}x | {status} |")

    dse = fresh["scenarios"]["dse"]
    print(
        f"\ndse: {dse['total_points']} points on {dse['threads']} threads, "
        f"multi-thread speedup {dse['speedup']:.2f}x, "
        f"deterministic={dse['deterministic']}"
    )
    serve = fresh["scenarios"]["serve"]
    print(
        f"\nserve: {serve['requests']} requests over {serve['catalog']} designs "
        f"on {serve['jobs']} jobs, hot/cold speedup "
        f"{serve['speedup_hot_over_cold']:.1f}x, hit rate {serve['hit_rate']:.3f}, "
        f"deterministic={serve['deterministic']}"
    )
    backend = fresh["scenarios"]["backend"]
    print(
        f"\nbackend: {len(backend['designs'])} designs under "
        f"{backend['constraint']} across {len(backend['per_backend'])} backends "
        f"({', '.join(backend['per_backend'])}), "
        f"deterministic={backend['deterministic']}"
    )
    it = fresh["scenarios"]["iter"]
    print(
        f"\niter: {len(it['grid'])} grid points at budget {it['budget']}, "
        f"qor delta vs soft {it['qor_delta_vs_soft']:+.0f} states "
        f"({it['improved_points']} points improved), max iterations "
        f"{it['max_iterations']}, {it['points_per_sec']:.0f} points/sec, "
        f"gate_pass={it['gate']['pass']}"
    )
    load = fresh["scenarios"]["load"]
    print(
        f"\nload: {load['replay_requests']} requests at "
        f"{load['overload_factor']:.0f}x sustainable on {load['jobs']} jobs, "
        f"p99 {load['p99_ms']:.2f} ms, drop rate {load['drop_rate']:.3f}, "
        f"goodput {load['goodput_rps']:.0f} rps, peak queue "
        f"{load['peak_queue_depth']}/{load['queue_capacity']}, "
        f"slo_pass={load['slo']['pass']}"
    )
    socket = fresh["scenarios"]["socket"]
    print(
        f"\nsocket: {socket['replay_requests']} requests over "
        f"{socket['connections']} connections at "
        f"{socket['overload_factor']:.0f}x sustainable "
        f"({socket['conns']['accepted']} accepts with churn), "
        f"p99 {socket['p99_ms']:.2f} ms, shed rate {socket['shed_rate']:.3f}, "
        f"goodput {socket['goodput_rps']:.0f} rps, "
        f"slo_pass={socket['slo']['pass']}"
    )
    memory = fresh["scenarios"]["memory"]
    print(
        f"\nmemory: warmed arena {memory['arena']['allocations_per_design']:.1f} "
        f"vs heap {memory['heap']['allocations_per_design']:.1f} heap "
        f"allocations/design ({memory['alloc_ratio']:.1f}x, gate "
        f"{memory['min_alloc_ratio']:g}x), peak live "
        f"{memory['peak_live_bytes']} bytes in {memory['arena_blocks']} arena "
        f"blocks, modes_agree={memory['modes_agree']}"
    )
    persist = fresh["scenarios"]["persist"]
    print(
        f"\npersist: {persist['recovered_entries']} records recovered in "
        f"{persist['recovery_scan_ms']:.2f} ms, warm-restart hit rate "
        f"{persist['warm_restart_hit_rate']:.3f}, degraded-mode "
        f"{persist['requests_per_sec_degraded']:.0f} rps with "
        f"{persist.get('degraded_request_errors', 0)} request errors, "
        f"gate_pass={persist['gate']['pass']}"
    )

    if errors:
        print("\n**Gate failed:**")
        for e in errors:
            print(f"- {e}")
        for e in errors:
            print(f"bench_gate: {e}", file=sys.stderr)
        return 1
    print("\nGate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
