// serve_test.cpp - the batch scheduling service: sharded LRU cache
// (budget, eviction order, counters, concurrency), strict request parsing,
// and the engine pipeline (in-flight dedup, cache hits, determinism across
// worker counts and cache sizes, error routing, JSONL round trip).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "ir/benchmarks.h"
#include "ir/dfg_io.h"
#include "serve/cache.h"
#include "serve/engine.h"
#include "serve/request.h"
#include "util/json_parse.h"
#include "util/thread_pool.h"

namespace si = softsched::ir;
namespace sv = softsched::serve;
namespace sm = softsched::meta;
using softsched::json_error;
using softsched::parse_json;
using softsched::thread_pool;

namespace {

si::dfg_digest key_of(std::uint64_t n) { return si::dfg_digest{n, ~n}; }

sv::schedule_result result_of(long long latency, std::size_t pad = 0) {
  sv::schedule_result r;
  r.feasible = true;
  r.ops = 1;
  r.latency = latency;
  r.start_times.assign(pad + 1, latency);
  r.unit_of.assign(pad + 1, 0);
  return r;
}

std::vector<sv::response> run_lines(sv::engine& eng, const std::vector<std::string>& lines) {
  std::string text;
  for (const std::string& l : lines) text += l + "\n";
  std::istringstream in(text);
  return eng.run_collect(in);
}

} // namespace

// -- schedule_cache ---------------------------------------------------------

TEST(ScheduleCache, InsertLookupRoundTrip) {
  sv::schedule_cache cache(1 << 20, 4);
  EXPECT_FALSE(cache.lookup(key_of(1)) != nullptr);
  cache.insert(key_of(1), result_of(17));
  const auto hit = cache.lookup(key_of(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->same_schedule(result_of(17)));
  const sv::cache_counters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.insertions, 1u);
  EXPECT_EQ(c.entries, 1u);
  EXPECT_GT(c.bytes, 0u);
}

TEST(ScheduleCache, LruEvictsColdestFirst) {
  // One shard so the LRU order is global; budget fits exactly three values.
  const std::size_t one = result_of(1).bytes();
  sv::schedule_cache cache(3 * one, 1);
  cache.insert(key_of(1), result_of(1));
  cache.insert(key_of(2), result_of(2));
  cache.insert(key_of(3), result_of(3));
  ASSERT_TRUE(cache.lookup(key_of(1)) != nullptr); // refresh 1: now 2 is coldest
  cache.insert(key_of(4), result_of(4));
  EXPECT_FALSE(cache.lookup(key_of(2)) != nullptr); // evicted
  EXPECT_TRUE(cache.lookup(key_of(1)) != nullptr);
  EXPECT_TRUE(cache.lookup(key_of(3)) != nullptr);
  EXPECT_TRUE(cache.lookup(key_of(4)) != nullptr);
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_EQ(cache.counters().entries, 3u);
}

TEST(ScheduleCache, ReinsertReplacesValue) {
  sv::schedule_cache cache(1 << 20, 2);
  cache.insert(key_of(9), result_of(5));
  cache.insert(key_of(9), result_of(6));
  const auto hit = cache.lookup(key_of(9));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->latency, 6);
  EXPECT_EQ(cache.counters().entries, 1u);
}

TEST(ScheduleCache, OversizeValueRejectedNotThrashed) {
  const std::size_t one = result_of(1).bytes();
  sv::schedule_cache cache(2 * one, 1);
  cache.insert(key_of(1), result_of(1));
  cache.insert(key_of(2), result_of(2, /*pad=*/4096)); // alone exceeds the shard
  EXPECT_FALSE(cache.lookup(key_of(2)) != nullptr);
  EXPECT_TRUE(cache.lookup(key_of(1)) != nullptr); // resident entry untouched
  EXPECT_EQ(cache.counters().rejected_oversize, 1u);
  EXPECT_EQ(cache.counters().evictions, 0u);
}

TEST(ScheduleCache, ZeroBudgetCachesNothingButOperates) {
  sv::schedule_cache cache(0, 4);
  cache.insert(key_of(1), result_of(1));
  EXPECT_FALSE(cache.lookup(key_of(1)) != nullptr);
  EXPECT_EQ(cache.counters().entries, 0u);
  EXPECT_EQ(cache.counters().rejected_oversize, 1u);
}

TEST(ScheduleCache, BudgetSplitsAcrossShards) {
  sv::schedule_cache cache(1 << 12, 8);
  EXPECT_EQ(cache.shard_count(), 8u);
  EXPECT_EQ(cache.shard_budget(), (1u << 12) / 8);
  const std::size_t one = result_of(1).bytes();
  for (std::uint64_t k = 0; k < 512; ++k) cache.insert(key_of(k), result_of(1));
  // Residency can never exceed the whole budget, whatever the key spread.
  EXPECT_LE(cache.counters().bytes, std::size_t{1} << 12);
  EXPECT_GE(cache.counters().entries, (1u << 12) / 8 / one); // >= one full shard
}

TEST(ScheduleCache, ClearDropsEntriesKeepsCounters) {
  sv::schedule_cache cache(1 << 20, 4);
  cache.insert(key_of(1), result_of(1));
  ASSERT_TRUE(cache.lookup(key_of(1)) != nullptr);
  cache.clear();
  EXPECT_EQ(cache.counters().entries, 0u);
  EXPECT_EQ(cache.counters().bytes, 0u);
  EXPECT_EQ(cache.counters().hits, 1u); // cumulative history survives
  EXPECT_FALSE(cache.lookup(key_of(1)) != nullptr);
}

TEST(ScheduleCache, ConcurrentAccessKeepsAccountsConsistent) {
  sv::schedule_cache cache(1 << 18, 8);
  thread_pool pool(4);
  constexpr std::size_t lookups_per_job = 64;
  constexpr std::size_t job_count = 32;
  std::atomic<std::uint64_t> observed_hits{0};
  softsched::parallel_for_index(&pool, job_count, [&](std::size_t job) {
    for (std::size_t i = 0; i < lookups_per_job; ++i) {
      const auto key = key_of((job * lookups_per_job + i) % 16);
      if (cache.lookup(key) != nullptr) {
        observed_hits.fetch_add(1, std::memory_order_relaxed);
      } else {
        cache.insert(key, result_of(static_cast<long long>(i)));
      }
    }
  });
  const sv::cache_counters c = cache.counters();
  EXPECT_EQ(c.hits, observed_hits.load());
  EXPECT_EQ(c.hits + c.misses, job_count * lookups_per_job);
  EXPECT_LE(c.entries, 16u);
}

// -- request parsing --------------------------------------------------------

TEST(ServeRequest, ParsesBenchRequestWithDefaults) {
  const sv::request r = sv::parse_request_line(R"({"id":"q1","bench":"ewf"})");
  EXPECT_EQ(r.id, "q1");
  EXPECT_EQ(r.design.bench, "ewf");
  EXPECT_EQ(r.resources.alus, 2);
  EXPECT_EQ(r.resources.multipliers, 2);
  EXPECT_EQ(r.resources.memory_ports, 1);
  EXPECT_EQ(r.mul_latency, 2);
  EXPECT_EQ(r.meta, sm::meta_kind::list_priority);
}

TEST(ServeRequest, ParsesRandomAndDfgSources) {
  const sv::request r = sv::parse_request_line(
      R"({"random":600,"seed":7,"edge_prob":0.5,"alus":3,"muls":1,"mems":2,"mul_latency":3,"meta":"dfs"})");
  EXPECT_EQ(r.design.random_vertices, 600);
  EXPECT_EQ(r.design.seed, 7u);
  EXPECT_DOUBLE_EQ(r.design.random_edge_prob, 0.5);
  EXPECT_EQ(r.resources.alus, 3);
  EXPECT_EQ(r.mul_latency, 3);
  EXPECT_EQ(r.meta, sm::meta_kind::depth_first);

  const sv::request d =
      sv::parse_request_line(R"({"dfg":"dfg t\nop a add\nop b add a\n"})");
  EXPECT_EQ(d.dfg_text, "dfg t\nop a add\nop b add a\n");
}

TEST(ServeRequest, RejectsMalformedRequests) {
  EXPECT_THROW(sv::parse_request_line("not json"), json_error);
  EXPECT_THROW(sv::parse_request_line("[1,2]"), json_error); // not an object
  EXPECT_THROW(sv::parse_request_line(R"({"alus":2})"), json_error); // no source
  EXPECT_THROW(sv::parse_request_line(R"({"bench":"ewf","random":5})"), json_error);
  EXPECT_THROW(sv::parse_request_line(R"({"bench":"ewf","typo":1})"), json_error);
  EXPECT_THROW(sv::parse_request_line(R"({"bench":"ewf","alus":-1})"), json_error);
  EXPECT_THROW(sv::parse_request_line(R"({"bench":"ewf","alus":2.5})"), json_error);
  EXPECT_THROW(sv::parse_request_line(R"({"bench":"ewf","meta":"random"})"), json_error);
  EXPECT_THROW(sv::parse_request_line(R"({"bench":"ewf","edge_prob":0})"), json_error);
  EXPECT_THROW(sv::parse_request_line(R"({"random":0})"), json_error);
}

TEST(ServeRequest, SourceSignatureSeparatesDesignsAndLatency) {
  const sv::request a = sv::parse_request_line(R"({"bench":"ewf"})");
  const sv::request b = sv::parse_request_line(R"({"bench":"ewf","alus":4})");
  const sv::request c = sv::parse_request_line(R"({"bench":"ewf","mul_latency":1})");
  const sv::request d = sv::parse_request_line(R"({"bench":"hal"})");
  EXPECT_EQ(a.source_signature(), b.source_signature()); // allocation not in source
  EXPECT_NE(a.source_signature(), c.source_signature()); // latency bakes delays
  EXPECT_NE(a.source_signature(), d.source_signature());
}

// -- engine -----------------------------------------------------------------

TEST(ServeEngine, DedupsIdenticalInFlightRequests) {
  sv::engine_options opt;
  opt.jobs = 1;
  sv::engine eng(opt);
  const auto responses = run_lines(eng, {
                                            R"({"id":"a","bench":"ewf"})",
                                            R"({"id":"b","bench":"ewf"})",
                                            R"({"id":"c","bench":"ewf"})",
                                            R"({"id":"d","bench":"hal"})",
                                        });
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(eng.counters().computed, 2u);
  EXPECT_EQ(eng.counters().deduped, 2u);
  EXPECT_EQ(responses[0].key, responses[1].key);
  EXPECT_TRUE(responses[0].result.same_schedule(responses[1].result));
  EXPECT_TRUE(responses[0].result.same_schedule(responses[2].result));
  EXPECT_NE(responses[0].key, responses[3].key);
  EXPECT_TRUE(responses[0].result.feasible);
  EXPECT_GT(responses[0].result.latency, 0);
}

TEST(ServeEngine, EquivalentDfgTextUnifiesWithBenchmark) {
  // A client uploading EWF as inline .dfg text (different names, ids from
  // the writer) lands on the same cache entry as {"bench":"ewf"}.
  const si::resource_library lib;
  std::ostringstream text;
  si::write_dfg(text, si::make_ewf(lib));
  std::string escaped;
  for (const char ch : text.str()) {
    if (ch == '\n') escaped += "\\n";
    else escaped += ch;
  }
  sv::engine_options opt;
  opt.jobs = 1;
  sv::engine eng(opt);
  const auto responses = run_lines(
      eng, {R"({"id":"bench","bench":"ewf"})",
            std::string(R"({"id":"text","dfg":")") + escaped + "\"}"});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_TRUE(responses[0].error.empty()) << responses[0].error;
  EXPECT_TRUE(responses[1].error.empty()) << responses[1].error;
  EXPECT_EQ(responses[0].key, responses[1].key);
  EXPECT_EQ(eng.counters().computed, 1u);
  EXPECT_EQ(eng.counters().deduped, 1u);
}

TEST(ServeEngine, DeterministicAcrossJobsAndCacheSizes) {
  const std::vector<std::string> lines = {
      R"({"id":"a","bench":"ewf"})",
      R"({"id":"b","random":120,"seed":5})",
      R"({"id":"c","bench":"ewf","alus":3,"meta":"topo"})",
      R"({"id":"bad","bench":"nope"})",
      R"({"id":"d","random":120,"seed":5})",
      R"({"id":"e","bench":"fir16","muls":3})",
      R"(garbage line)",
      R"({"id":"f","bench":"iir4","mul_latency":1})",
  };
  sv::engine_options serial;
  serial.jobs = 1;
  sv::engine reference(serial);
  const auto expected = run_lines(reference, lines);

  for (const int jobs : {1, 4}) {
    for (const std::size_t cache_bytes : {std::size_t{0}, std::size_t{1} << 26}) {
      sv::engine_options opt;
      opt.jobs = jobs;
      opt.cache_bytes = cache_bytes;
      sv::engine eng(opt);
      const auto got = run_lines(eng, lines);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(got[i].same_payload(expected[i]))
            << "jobs " << jobs << " cache " << cache_bytes << " line " << i;
    }
  }
}

TEST(ServeEngine, SecondRunServedEntirelyFromCache) {
  const std::vector<std::string> lines = {
      R"({"id":"a","bench":"ewf"})",
      R"({"id":"b","bench":"hal","alus":1})",
  };
  sv::engine_options opt;
  opt.jobs = 1;
  sv::engine eng(opt);
  const auto cold = run_lines(eng, lines);
  EXPECT_EQ(eng.counters().computed, 2u);
  const auto hot = run_lines(eng, lines);
  EXPECT_EQ(eng.counters().computed, 2u); // unchanged: nothing recomputed
  EXPECT_EQ(eng.counters().cache_hits, 2u);
  ASSERT_EQ(hot.size(), cold.size());
  for (std::size_t i = 0; i < hot.size(); ++i)
    EXPECT_TRUE(hot[i].same_payload(cold[i]));
}

TEST(ServeEngine, InfeasibleAllocationIsAResponseAndCached) {
  sv::engine_options opt;
  opt.jobs = 1;
  sv::engine eng(opt);
  const auto first = run_lines(eng, {R"({"id":"x","bench":"ewf","muls":0})"});
  ASSERT_EQ(first.size(), 1u);
  EXPECT_TRUE(first[0].error.empty());
  EXPECT_FALSE(first[0].result.feasible);
  EXPECT_FALSE(first[0].result.infeasible_reason.empty());
  EXPECT_EQ(first[0].result.latency, -1);
  const auto second = run_lines(eng, {R"({"id":"y","bench":"ewf","muls":0})"});
  EXPECT_EQ(eng.counters().cache_hits, 1u);
  EXPECT_TRUE(second[0].result.same_schedule(first[0].result));
}

TEST(ServeEngine, ErrorsStayOnTheirLines) {
  sv::engine_options opt;
  opt.jobs = 2;
  opt.batch_size = 2; // exercise multi-batch streaming too
  sv::engine eng(opt);
  const auto responses = run_lines(eng, {
                                            R"({"id":"ok1","bench":"fig1"})",
                                            R"({"broken")",
                                            R"({"id":"ok2","bench":"fig1"})",
                                            R"({"id":"nope","bench":"missing"})",
                                            R"({"id":"ok3","bench":"fig1"})",
                                        });
  ASSERT_EQ(responses.size(), 5u);
  EXPECT_TRUE(responses[0].error.empty());
  EXPECT_FALSE(responses[1].error.empty());
  EXPECT_TRUE(responses[2].error.empty());
  EXPECT_FALSE(responses[3].error.empty());
  EXPECT_TRUE(responses[4].error.empty());
  for (std::size_t i = 0; i < responses.size(); ++i)
    EXPECT_EQ(responses[i].line, i + 1);
  EXPECT_EQ(eng.counters().parse_errors, 2u);
  // fig1 was computed once; the two later fig1 requests crossed batch
  // boundaries, so they hit the cache rather than the in-flight dedup.
  EXPECT_EQ(eng.counters().computed, 1u);
  EXPECT_EQ(eng.counters().cache_hits, 2u);
}

TEST(ServeEngine, WireCarryingDfgTextSchedules) {
  sv::engine_options opt;
  opt.jobs = 1;
  sv::engine eng(opt);
  const auto responses = run_lines(
      eng, {R"({"id":"w","dfg":"dfg t\nop a add\nwire w1 2 a\nop b add\nedge w1 b\n"})"});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].error.empty()) << responses[0].error;
  EXPECT_TRUE(responses[0].result.feasible);
  EXPECT_EQ(responses[0].result.ops, 3u);
}

TEST(ServeEngine, StreamEmitsOneValidJsonObjectPerLine) {
  sv::engine_options opt;
  opt.jobs = 1;
  sv::engine eng(opt);
  std::istringstream in("{\"id\":\"a\",\"bench\":\"hal\"}\n"
                        "\n" // blank lines are skipped, numbering preserved
                        "{\"id\":\"b\",\"bench\":\"hal\",\"alus\":0}\n"
                        "broken\n");
  std::ostringstream out;
  const sv::stream_summary summary = eng.run_stream(in, out);
  EXPECT_EQ(summary.counters.requests, 3u);
  EXPECT_EQ(summary.counters.parse_errors, 1u);
  EXPECT_EQ(summary.batches, 1u);
  EXPECT_GT(summary.wall_ms, 0.0);

  std::istringstream parsed(out.str());
  std::string line;
  std::vector<softsched::json_value> docs;
  while (std::getline(parsed, line)) docs.push_back(parse_json(line));
  ASSERT_EQ(docs.size(), 3u);
  EXPECT_EQ(docs[0].find("id")->as_string(), "a");
  EXPECT_TRUE(docs[0].find("feasible")->as_bool());
  ASSERT_NE(docs[0].find("start"), nullptr);
  EXPECT_EQ(static_cast<long long>(docs[0].find("start")->items().size()),
            docs[0].find("ops")->as_integer(0, 1000));
  EXPECT_EQ(docs[1].find("line")->as_integer(0, 10), 3); // blank line skipped
  EXPECT_FALSE(docs[1].find("feasible")->as_bool());
  ASSERT_NE(docs[2].find("error"), nullptr);

  // Compact mode drops the schedule arrays but stays valid JSONL.
  sv::engine_options compact = opt;
  compact.emit_schedule = false;
  sv::engine eng2(compact);
  std::istringstream in2("{\"id\":\"a\",\"bench\":\"hal\"}\n");
  std::ostringstream out2;
  (void)eng2.run_stream(in2, out2);
  const softsched::json_value doc = parse_json(out2.str());
  EXPECT_EQ(doc.find("start"), nullptr);
  EXPECT_NE(doc.find("stats"), nullptr);
}

TEST(ServeEngine, RenumberedIsomorphGetsItsOwnNumberingRegardlessOfCacheState) {
  // Regression: EWF submitted as inline .dfg text with ops declared in a
  // *different* order than the bench builder. The canonical digest unifies
  // the two, so a warm cache serves the text request from the bench
  // request's entry - the payload must still be indexed in the text
  // request's own numbering, i.e. identical to what a fresh engine
  // computes for the text request alone (the cache-transparency half of
  // the determinism contract).
  const si::resource_library lib;
  const si::dfg ewf = si::make_ewf(lib);
  // Declare every op in *reverse* vertex order with no inline inputs and
  // express all dependences as explicit edge lines (legal .dfg: edge lines
  // may follow both endpoints) - a complete renumbering of the graph.
  const auto& g = ewf.graph();
  std::string permuted_text = "dfg perm\n";
  for (std::size_t i = g.vertex_count(); i-- > 0;) {
    const si::vertex_id v(static_cast<std::uint32_t>(i));
    permuted_text += "op " + std::string(g.name(v)) + " " +
                     std::string(si::kind_name(ewf.kind(v))) + "\n";
  }
  for (const si::vertex_id v : g.vertices())
    for (const si::vertex_id s : g.succs(v))
      permuted_text +=
          "edge " + std::string(g.name(v)) + " " + std::string(g.name(s)) + "\n";
  std::string escaped;
  for (const char ch : permuted_text)
    if (ch == '\n') escaped += "\\n";
    else escaped += ch;
  const std::string text_request =
      std::string(R"({"id":"t","dfg":")") + escaped + "\"}";

  // Reference: the text request alone, cold cache.
  sv::engine_options opt;
  opt.jobs = 1;
  sv::engine fresh(opt);
  const auto alone = run_lines(fresh, {text_request});
  ASSERT_EQ(alone.size(), 1u);
  ASSERT_TRUE(alone[0].error.empty()) << alone[0].error;

  // Warmed: the bench request populates the shared cache entry first.
  sv::engine warmed(opt);
  const auto pair =
      run_lines(warmed, {R"({"id":"b","bench":"ewf"})", text_request});
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_EQ(pair[0].key, pair[1].key); // isomorphs unify
  EXPECT_EQ(warmed.counters().computed, 1u);
  EXPECT_EQ(warmed.counters().deduped, 1u);
  // The text request's payload is independent of who computed the entry.
  EXPECT_EQ(alone[0].result.start_times, pair[1].result.start_times);
  EXPECT_EQ(alone[0].result.unit_of, pair[1].result.unit_of);
  EXPECT_TRUE(alone[0].result.same_schedule(pair[1].result));
  // And the two isomorphic requests agree on everything
  // numbering-independent.
  EXPECT_EQ(pair[0].result.latency, pair[1].result.latency);
}

TEST(ServeRequest, RandomOnlyFieldsRejectedOnOtherSources) {
  EXPECT_THROW(sv::parse_request_line(R"({"bench":"ewf","seed":9})"), json_error);
  EXPECT_THROW(sv::parse_request_line(R"({"bench":"ewf","edge_prob":0.5})"),
               json_error);
  EXPECT_THROW(sv::parse_request_line(R"({"dfg":"dfg t\nop a add\n","seed":1})"),
               json_error);
  // ...but they remain valid with a random source.
  EXPECT_NO_THROW(sv::parse_request_line(R"({"random":50,"seed":9,"edge_prob":0.5})"));
}

TEST(ServeRequest, SourceSignatureSeparatesNearbyEdgeProbabilities) {
  // Regression: a 6-decimal rendering collided these, silently serving one
  // random family's schedule for the other.
  const sv::request a =
      sv::parse_request_line(R"({"random":700,"seed":5,"edge_prob":0.1234564})");
  const sv::request b =
      sv::parse_request_line(R"({"random":700,"seed":5,"edge_prob":0.1234556})");
  EXPECT_NE(a.source_signature(), b.source_signature());
  const sv::request a2 =
      sv::parse_request_line(R"({"random":700,"seed":5,"edge_prob":0.1234564})");
  EXPECT_EQ(a.source_signature(), a2.source_signature());
}

TEST(ServeRequest, HostileNumericInputIsAnErrorNotUndefinedBehavior) {
  // Out-of-range doubles must surface as json_error (and, in the engine,
  // as per-line error responses) - never as an out-of-range cast, which
  // the UBSan CI legs would turn into a process abort.
  EXPECT_THROW(sv::parse_request_line(R"({"random":1e30})"), json_error);
  EXPECT_THROW(sv::parse_request_line(R"({"random":50,"seed":1e300})"), json_error);
  EXPECT_THROW(sv::parse_request_line(R"({"random":50,"seed":1e18})"), json_error);
  EXPECT_THROW(sv::parse_request_line(R"({"bench":"ewf","alus":-1e25})"), json_error);
  EXPECT_NO_THROW(sv::parse_request_line(R"({"random":50,"seed":4294967296})"));

  sv::engine_options opt;
  opt.jobs = 1;
  sv::engine eng(opt);
  const auto responses = run_lines(eng, {R"({"id":"x","random":1e30})"});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].error.empty());
}

TEST(ServeEngine, DedupedOversizeResultServesEveryClientAndRecomputes) {
  // The dedup x oversize corner: two clients request the same design in
  // one batch, and the cache budget is too small to retain the computed
  // schedule. The deduped follower must be served from the in-flight
  // result itself (a cache re-lookup would find nothing), and the next
  // batch must recompute rather than crash or serve a stale pointer.
  sv::engine_options opt;
  opt.jobs = 2;
  opt.cache_bytes = 0; // every insert is oversize-rejected
  opt.cache_shards = 1;
  sv::engine eng(opt);
  const auto first = run_lines(eng, {R"({"id":"a","bench":"ewf"})",
                                     R"({"id":"b","bench":"ewf"})"});
  ASSERT_EQ(first.size(), 2u);
  for (const sv::response& r : first) {
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_TRUE(r.result.feasible);
    EXPECT_FALSE(r.result.start_times.empty());
  }
  EXPECT_EQ(first[0].key, first[1].key);
  EXPECT_TRUE(first[0].result.same_schedule(first[1].result));
  EXPECT_EQ(first[0].result.start_times, first[1].result.start_times);
  EXPECT_EQ(eng.counters().computed, 1u);
  EXPECT_EQ(eng.counters().deduped, 1u);
  EXPECT_GE(eng.cache().counters().rejected_oversize, 1u);

  // Nothing was retained, so the next batch recomputes - and agrees.
  const auto second = run_lines(eng, {R"({"id":"c","bench":"ewf"})"});
  ASSERT_EQ(second.size(), 1u);
  EXPECT_TRUE(second[0].error.empty()) << second[0].error;
  EXPECT_EQ(eng.counters().computed, 2u);
  EXPECT_EQ(eng.counters().cache_hits, 0u);
  EXPECT_TRUE(second[0].result.same_schedule(first[0].result));
}

TEST(ScheduleCache, OversizeReplacementKeepsResidentValue) {
  // Regression: rejecting an oversize *replacement* must not erase the
  // value already cached under the key.
  const std::size_t one = result_of(1).bytes();
  sv::schedule_cache cache(2 * one, 1);
  cache.insert(key_of(1), result_of(7));
  cache.insert(key_of(1), result_of(8, /*pad=*/4096)); // oversize replacement
  const auto hit = cache.lookup(key_of(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->latency, 7); // original survives
  EXPECT_EQ(cache.counters().rejected_oversize, 1u);
}
