// binio.h - little-endian binary serialization for the persistent
// schedule-cache tier (serve/diskcache.h): a growable byte writer, a
// bounds-checked byte reader, and the FNV-1a 64-bit checksum the on-disk
// record format carries.
//
// The reader is built for hostile bytes: every read checks the remaining
// length first and flips a sticky `ok()` flag instead of touching
// out-of-range memory, so a truncated, torn or bit-flipped record decodes
// to "not ok" - never to UB and never to a throw on the serving path. The
// disk tier turns "not ok" into a cache miss (docs/SERVING.md
// "Persistence").
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace softsched {

/// FNV-1a 64-bit over `bytes`, optionally chaining from a previous hash.
/// Not cryptographic - it detects corruption (torn writes, bit flips), not
/// adversaries; the threat model of a local cache directory.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes,
                                    std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept;

/// Appends little-endian scalars / length-prefixed strings to a byte
/// string. All integers are written at fixed width regardless of host, so
/// records are byte-identical across machines (cache export/import ships
/// them between hosts).
class byte_writer {
public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  /// u64 length prefix + raw bytes.
  void str(std::string_view s);

  [[nodiscard]] const std::string& bytes() const noexcept { return out_; }
  [[nodiscard]] std::string take() noexcept { return std::move(out_); }
  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }

  /// Overwrites 8 bytes at `offset` (patching a checksum computed after
  /// the fields it covers were written). `offset + 8` must be <= size().
  void patch_u64(std::size_t offset, std::uint64_t v);

private:
  std::string out_;
};

/// Bounds-checked little-endian reader over a byte view. Any short read
/// (or an over-long string length) sets the sticky failure flag and
/// returns a zero value; callers check ok() once at the end instead of
/// after every field.
class byte_reader {
public:
  explicit byte_reader(std::string_view bytes) : data_(bytes) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  /// Reads a u64 length prefix then that many bytes; fails (empty string)
  /// when fewer remain.
  [[nodiscard]] std::string str();

  /// True iff every read so far stayed in bounds.
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

private:
  [[nodiscard]] bool take(std::size_t n) noexcept;

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

} // namespace softsched
