#include "explore/grid.h"

#include <string>
#include <vector>

#include "graph/generators.h"
#include "ir/benchmarks.h"
#include "util/check.h"
#include "util/rng.h"

namespace softsched::explore {

namespace sg = softsched::graph;
using sg::vertex_id;

std::string design_spec::name() const {
  if (!bench.empty()) return bench;
  return "random" + std::to_string(random_vertices);
}

std::size_t point_count(const grid_spec& spec) {
  return static_cast<std::size_t>(spec.alus.count()) *
         static_cast<std::size_t>(spec.muls.count()) *
         static_cast<std::size_t>(spec.mems.count()) *
         static_cast<std::size_t>(spec.mul_latency.count()) *
         static_cast<std::size_t>(spec.iter_budget.count());
}

std::vector<design_point> enumerate_grid(const grid_spec& spec) {
  SOFTSCHED_EXPECT(spec.alus.lo >= 0 && spec.muls.lo >= 0 && spec.mems.lo >= 0,
                   "resource axes must be non-negative");
  SOFTSCHED_EXPECT(spec.mul_latency.count() == 0 || spec.mul_latency.lo >= 1,
                   "multiplier latency must be at least 1 cycle");
  SOFTSCHED_EXPECT(spec.iter_budget.count() == 0 || spec.iter_budget.lo >= -1,
                   "iteration budget axis must start at -1 (backend default) or above");
  std::vector<design_point> points;
  points.reserve(point_count(spec));
  for (int budget = spec.iter_budget.lo; budget <= spec.iter_budget.hi; ++budget)
    for (int lat = spec.mul_latency.lo; lat <= spec.mul_latency.hi; ++lat)
      for (int a = spec.alus.lo; a <= spec.alus.hi; ++a)
        for (int m = spec.muls.lo; m <= spec.muls.hi; ++m)
          for (int p = spec.mems.lo; p <= spec.mems.hi; ++p) {
            design_point pt;
            pt.index = static_cast<int>(points.size());
            pt.resources = ir::resource_set{a, m, p};
            pt.mul_latency = lat;
            pt.iter_budget = budget;
            points.push_back(pt);
          }
  return points;
}

void apply_point_latency(const design_point& point, ir::resource_library& library) {
  library.set_latency(ir::op_kind::mul, point.mul_latency);
}

namespace {

/// Layered random DFG: the structure comes from the shared layered_random
/// generator (so "a 800-vertex random design" is the same shape the perf
/// harness sweeps); operation kinds are then drawn per vertex from a fixed
/// mix of multiplies, memory accesses, and ALU ops. Deterministic from
/// spec.seed alone.
ir::dfg build_random_dfg(const design_spec& spec, const ir::resource_library& library) {
  SOFTSCHED_EXPECT(spec.random_vertices >= 1, "random design needs >= 1 vertex");
  rng rand(spec.seed);
  const sg::precedence_graph shape = sg::layered_random(
      sg::layered_for_size(spec.random_vertices, spec.random_edge_prob), rand);

  ir::dfg d(spec.name(), library);
  std::vector<vertex_id> ops(shape.vertex_count());
  std::vector<vertex_id> inputs;
  for (const vertex_id v : shape.vertices()) {
    // Kind mix: 30% multiplies, 8% loads, 15% subtracts, 7% compares, rest
    // adds - multiplier- and ALU-bound enough that both axes matter.
    const std::uint64_t roll = rand.below(100);
    ir::op_kind kind = ir::op_kind::add;
    if (roll < 30) kind = ir::op_kind::mul;
    else if (roll < 38) kind = ir::op_kind::load;
    else if (roll < 53) kind = ir::op_kind::sub;
    else if (roll < 60) kind = ir::op_kind::compare;

    inputs.clear();
    // layered_random only adds edges toward later-created vertices, so every
    // predecessor's op already exists.
    for (const vertex_id p : shape.preds(v)) inputs.push_back(ops[p.value()]);
    ops[v.value()] = d.add_op(kind, std::span<const vertex_id>(inputs),
                              std::string("r") += std::to_string(v.value()));
  }
  d.validate();
  return d;
}

} // namespace

ir::dfg build_design(const design_spec& spec, const ir::resource_library& library) {
  const bool from_bench = !spec.bench.empty();
  const bool from_random = spec.random_vertices > 0;
  SOFTSCHED_EXPECT(from_bench != from_random,
                   "design_spec needs exactly one of bench / random_vertices");
  if (from_bench) return ir::make_benchmark(spec.bench, library);
  return build_random_dfg(spec, library);
}

} // namespace softsched::explore
