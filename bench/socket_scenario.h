// socket_scenario.h - the multi-client socket overload scenario: the
// open-loop zipf replay of load_scenario.h, but driven end-to-end over N
// real unix-socket connections against an in-process socket_server
// (serve/socket.h) instead of direct service submits - so the measured
// tail includes framing, the kernel socket path, per-connection reader
// threads, and the accept loop under connection churn.
//
// Phases (same mix and discipline as load_scenario.h):
//
//   1. warm      - every catalog entry once, directly into the service;
//   2. calibrate - closed-loop direct submits over a warm cache: the
//                  sustainable completion rate of the service core;
//   3. replay    - N client connections send the zipf mix open-loop at 2x
//                  the sustainable rate. Request i has the fixed arrival
//                  time t0 + i/rate; its latency is measured from that
//                  scheduled arrival to the moment its response frame is
//                  *read back off the socket* (matched by the request's
//                  unique id echo), so a stalled server or a slow socket
//                  shows up as tail latency (no coordinated omission).
//                  Every client rotates to a fresh connection every
//                  churn_every requests - sustained accept-path traffic,
//                  not one warm connection per client.
//
// SOFTSCHED_INJECT is honored: conn=<n> rules drop or stall chosen
// accepted connections (the nightly connection-churn storm leg); a client
// whose connection dies reconnects and carries on, counting the requests
// it could not deliver as dropped. The emitted block self-gates ("slo"):
// bounded admission queue, bounded shed rate, bounded p99, zero transport
// errors, and - in uninjected runs - every sent request answered exactly
// once. ci/bench_gate.py additionally compares p99 and shed rate against
// the committed baseline.
#pragma once

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "load_scenario.h"
#include "serve/daemon.h"
#include "serve/socket.h"
#include "serve_scenario.h"
#include "util/json.h"
#include "util/json_parse.h"

namespace softsched::bench {

/// Knobs for write_socket_scenario beyond the seed.
struct socket_load_options {
  unsigned jobs = 0;        ///< worker threads; 0 = thread_pool::hardware_workers()
  unsigned connections = 8; ///< concurrent client connections (>= 1)
};

/// Emits the whole scenario as the value of an already-written "socket"
/// key. Returns the slo.pass verdict.
inline bool write_socket_scenario(json_writer& j, std::uint64_t seed,
                                  const socket_load_options& sockopt = {}) {
  using clock_type = std::chrono::steady_clock;
  const unsigned jobs =
      sockopt.jobs == 0 ? thread_pool::hardware_workers() : sockopt.jobs;
  const unsigned connections = std::max(1u, sockopt.connections);
  constexpr int calibration_requests = 500;
  constexpr int replay_requests = 1200;
  constexpr int churn_every = 50; ///< requests per connection before rotating
  constexpr std::size_t queue_capacity = 64;
  constexpr double overload_factor = 2.0;
  // Shape limits, not speed limits (the baseline comparison owns speed).
  constexpr double p99_limit_ms = 1000.0;
  constexpr double shed_rate_limit = 0.9;

  serve::service_options sopt;
  sopt.jobs = static_cast<int>(jobs);
  sopt.queue_capacity = queue_capacity;
  sopt.emit_schedule = false;
  sopt.faults = serve::fault_plan::from_env();

  const std::vector<std::string> mix =
      make_serve_mix(seed, std::max(calibration_requests, replay_requests));

  // -- calibrate: closed-loop completion rate over a warm cache -----------
  double sustainable_rps = 0;
  {
    serve::service svc(sopt);
    warm_catalog(svc, seed);
    std::uint64_t seq = 1000000;
    const auto t0 = clock_type::now();
    for (int i = 0; i < calibration_requests; ++i)
      submit_blocking(svc, ++seq, mix[static_cast<std::size_t>(i)], {});
    svc.drain();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(clock_type::now() - t0).count();
    sustainable_rps = wall_ms > 0 ? calibration_requests / (wall_ms / 1e3) : 0;
  }
  const double target_rps = std::max(1.0, sustainable_rps * overload_factor);

  // -- replay: N socket clients, open-loop at 2x sustainable ---------------
  const serve::listen_spec spec = serve::listen_spec::parse(
      "unix:/tmp/softsched_socket_bench_" + std::to_string(::getpid()) + ".sock");
  const std::unique_ptr<serve::listener> lis = serve::make_listener(spec);
  serve::service svc(sopt);
  warm_catalog(svc, seed);
  serve::socket_server_options server_opt;
  server_opt.max_connections = connections + 1; // headroom for churn overlap
  server_opt.connection.emit_schedule = false;
  serve::socket_server server(*lis, svc, server_opt);
  serve::socket_server_summary server_summary;
  std::thread server_thread([&] { server_summary = server.run(); });

  // Arrival times are fixed up front: open-loop means request i arrives at
  // t0 + i/rate no matter how the server is doing.
  const auto start = clock_type::now() + std::chrono::milliseconds(20);
  std::vector<clock_type::time_point> scheduled(replay_requests);
  for (int i = 0; i < replay_requests; ++i)
    scheduled[static_cast<std::size_t>(i)] =
        start + std::chrono::duration_cast<clock_type::duration>(
                    std::chrono::duration<double>(static_cast<double>(i) / target_rps));

  std::vector<double> latency_ms(replay_requests, -1);
  std::atomic<std::uint64_t> responses{0}, shed{0}, error_responses{0},
      conn_shed{0}, dropped{0}, reconnects{0};
  // Client-reader telemetry, emitted as the "client" block: when delivery
  // ever falls short, these counters say where the frames went (skipped as
  // control / unparseable / out-of-range line vs. a reader that died on a
  // framing error) instead of leaving only an opaque "unanswered" total.
  std::atomic<std::uint64_t> frames_read{0}, parse_skips{0}, control_skips{0},
      range_skips{0}, clean_eofs{0}, reader_errors{0};

  // Every response frame - real or shed - carries the per-connection
  // "line" number (shed responses cannot echo the request id: admission
  // control refuses them without ever parsing the text). The writer
  // records which global request each line of the current session carried,
  // and the reader matches responses back through that map.
  struct line_map {
    std::mutex mutex;
    std::vector<int> by_line; ///< line n on this session = request by_line[n-1]
  };
  const auto read_session = [&](serve::byte_stream* stream,
                                std::shared_ptr<line_map> lines) {
    for (;;) {
      const serve::frame_read f = serve::read_frame(*stream);
      if (f.status != serve::frame_status::ok) {
        (f.status == serve::frame_status::eof ? clean_eofs : reader_errors)
            .fetch_add(1, std::memory_order_relaxed);
        break;
      }
      frames_read.fetch_add(1, std::memory_order_relaxed);
      json_value v;
      try {
        v = parse_json(f.payload);
      } catch (const std::exception&) {
        parse_skips.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const json_value* line = v.find("line");
      if (line == nullptr || !line->is_number()) {
        control_skips.fetch_add(1, std::memory_order_relaxed);
        // control frames: the connection-level shed answer, if any
        if (const json_value* e = v.find("error");
            e != nullptr && e->is_string() && e->as_string() == "too_many_connections")
          conn_shed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      int k = -1;
      {
        const std::lock_guard<std::mutex> lock(lines->mutex);
        const auto n = static_cast<std::size_t>(line->as_number());
        if (n >= 1 && n <= lines->by_line.size())
          k = lines->by_line[n - 1];
      }
      if (k < 0) {
        range_skips.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      responses.fetch_add(1, std::memory_order_relaxed);
      if (const json_value* e = v.find("error"); e != nullptr && e->is_string()) {
        if (e->as_string() == "overloaded") {
          shed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        error_responses.fetch_add(1, std::memory_order_relaxed);
      }
      latency_ms[static_cast<std::size_t>(k)] =
          std::chrono::duration<double, std::milli>(clock_type::now() -
                                                    scheduled[static_cast<std::size_t>(k)])
              .count();
    }
  };

  const auto run_client = [&](unsigned client) {
    struct session {
      std::unique_ptr<serve::byte_stream> stream;
      std::shared_ptr<line_map> lines;
      std::thread reader;
    };
    session sess;
    const auto close_session = [&] {
      if (sess.stream != nullptr) sess.stream->finish_write();
      if (sess.reader.joinable()) sess.reader.join();
      sess.stream.reset();
      sess.lines.reset();
    };
    const auto open_session = [&] {
      for (int attempt = 0; attempt < 20 && sess.stream == nullptr; ++attempt) {
        sess.stream = serve::connect_stream(spec);
        if (sess.stream == nullptr)
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      if (sess.stream != nullptr) {
        sess.lines = std::make_shared<line_map>();
        sess.reader = std::thread(read_session, sess.stream.get(), sess.lines);
      }
    };
    // One delivery retry on a fresh connection: an injected conn= drop (or
    // a shed accept) kills the session, not the client.
    const auto send_line = [&](int i) {
      for (int attempt = 0; attempt < 2; ++attempt) {
        if (sess.stream == nullptr) {
          open_session();
          if (attempt > 0) reconnects.fetch_add(1, std::memory_order_relaxed);
        }
        if (sess.stream != nullptr) {
          // Record the line -> request mapping *before* sending: the
          // response can race back before this thread resumes.
          {
            const std::lock_guard<std::mutex> lock(sess.lines->mutex);
            sess.lines->by_line.push_back(i);
          }
          if (serve::write_frame(*sess.stream, mix[static_cast<std::size_t>(i)]))
            return true;
          {
            const std::lock_guard<std::mutex> lock(sess.lines->mutex);
            sess.lines->by_line.pop_back(); // never reached the server
          }
        }
        close_session();
      }
      return false;
    };
    int sent_in_session = 0;
    for (int i = static_cast<int>(client); i < replay_requests;
         i += static_cast<int>(connections)) {
      std::this_thread::sleep_until(scheduled[static_cast<std::size_t>(i)]);
      if (!send_line(i)) {
        dropped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (++sent_in_session >= churn_every) {
        close_session(); // connection churn: drain, EOF, reconnect fresh
        sent_in_session = 0;
      }
    }
    close_session();
  };

  std::vector<std::thread> clients;
  clients.reserve(connections);
  for (unsigned c = 0; c < connections; ++c) clients.emplace_back(run_client, c);
  for (std::thread& t : clients) t.join();
  server.stop();
  server_thread.join();
  svc.drain();
  const double replay_wall_ms = std::chrono::duration<double, std::milli>(
                                    clock_type::now() - start)
                                    .count();
  const serve::service_stats stats = svc.stats();

  std::vector<double> sorted;
  sorted.reserve(latency_ms.size());
  for (const double l : latency_ms)
    if (l >= 0) sorted.push_back(l);
  std::sort(sorted.begin(), sorted.end());

  const auto completed = static_cast<std::uint64_t>(sorted.size());
  const std::uint64_t unanswered =
      static_cast<std::uint64_t>(replay_requests) - responses.load() - dropped.load();
  const double shed_rate = static_cast<double>(shed.load()) / replay_requests;
  const double goodput_rps =
      replay_wall_ms > 0 ? static_cast<double>(completed) / (replay_wall_ms / 1e3) : 0;
  const double p50 = sorted_percentile(sorted, 50);
  const double p95 = sorted_percentile(sorted, 95);
  const double p99 = sorted_percentile(sorted, 99);
  const bool injected = !sopt.faults.empty();

  const bool queue_bounded = stats.peak_queue_depth <= queue_capacity;
  const bool goodput_ok = goodput_rps > 0;
  const bool p99_ok = p99 <= p99_limit_ms;
  const bool shed_rate_ok = shed_rate <= shed_rate_limit;
  const bool no_transport_errors = server_summary.conns.transport_errors == 0;
  // Uninjected, delivery must be lossless: nothing dropped, every sent
  // request answered exactly once. Injected runs lose exactly what the
  // fault plan kills - the point is that they lose nothing else (covered
  // by the per-response accounting above never double-counting).
  const bool delivery_ok = injected || (dropped.load() == 0 && unanswered == 0);
  const bool pass = queue_bounded && goodput_ok && p99_ok && shed_rate_ok &&
                    no_transport_errors && delivery_ok;

  j.begin_object();
  j.member("transport", spec.label());
  j.member("jobs", static_cast<unsigned long long>(jobs));
  j.member("connections", static_cast<unsigned long long>(connections));
  j.member("churn_every", static_cast<long long>(churn_every));
  j.member("queue_capacity", queue_capacity);
  j.member("calibration_requests", static_cast<long long>(calibration_requests));
  j.member("replay_requests", static_cast<long long>(replay_requests));
  j.member("sustainable_rps", sustainable_rps);
  j.member("overload_factor", overload_factor);
  j.member("target_rps", target_rps);
  j.member("completed", completed);
  j.member("responses", responses.load());
  j.member("shed", shed.load());
  j.member("shed_rate", shed_rate);
  j.member("dropped", dropped.load());
  j.member("unanswered", unanswered);
  j.member("reconnects", reconnects.load());
  j.member("goodput_rps", goodput_rps);
  j.member("p50_ms", p50);
  j.member("p95_ms", p95);
  j.member("p99_ms", p99);
  j.member("max_ms", sorted.empty() ? 0.0 : sorted.back());
  j.member("peak_queue_depth", stats.peak_queue_depth);
  j.member("hit_rate", stats.hit_rate);
  j.member("error_responses", error_responses.load());
  j.member("injected", injected);
  j.key("client");
  j.begin_object();
  j.member("frames_read", frames_read.load());
  j.member("parse_skips", parse_skips.load());
  j.member("control_skips", control_skips.load());
  j.member("range_skips", range_skips.load());
  j.member("clean_eofs", clean_eofs.load());
  j.member("reader_errors", reader_errors.load());
  j.end_object();
  j.key("conns");
  j.begin_object();
  j.member("accepted", server_summary.conns.accepted);
  j.member("shed", server_summary.conns.shed);
  j.member("shed_seen_by_clients", conn_shed.load());
  j.member("closed", server_summary.conns.closed);
  j.member("faulted", server_summary.conns.faulted);
  j.member("transport_errors", server_summary.conns.transport_errors);
  j.member("bytes_in", server_summary.conns.bytes_in);
  j.member("bytes_out", server_summary.conns.bytes_out);
  j.end_object();
  j.key("slo");
  j.begin_object();
  j.member("p99_limit_ms", p99_limit_ms);
  j.member("shed_rate_limit", shed_rate_limit);
  j.member("queue_bounded", queue_bounded);
  j.member("goodput_ok", goodput_ok);
  j.member("p99_ok", p99_ok);
  j.member("shed_rate_ok", shed_rate_ok);
  j.member("no_transport_errors", no_transport_errors);
  j.member("delivery_ok", delivery_ok);
  j.member("pass", pass);
  j.end_object();
  j.end_object();
  return pass;
}

} // namespace softsched::bench
