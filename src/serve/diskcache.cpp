#include "serve/diskcache.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <istream>
#include <ostream>
#include <utility>

#include "util/binio.h"
#include "util/check.h"

namespace softsched::serve {
namespace fs = std::filesystem;

namespace {

// The stats payload is written as a field-count-prefixed block so that
// growing core::schedule_stats without bumping record_version makes old
// records read as corrupt (a safe miss) instead of as shifted garbage.
constexpr std::uint64_t stats_field_count = 10;

// Sanity ceiling for length fields parsed out of untrusted bytes, applied
// *before* any allocation sized by them. Far above any real record (a
// schedule_result is a few KB per thousand ops) and far below anything
// that could wedge the process.
constexpr std::uint64_t max_plausible_payload = 1ull << 32;

void sleep_ms(double ms) {
  if (ms > 0)
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// `<32 hex>` -> digest; false on any non-hex character or wrong length.
bool parse_hex_key(std::string_view stem, ir::dfg_digest& out) {
  if (stem.size() != 32) return false;
  std::uint64_t words[2] = {0, 0};
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 16; ++i) {
      const char c = stem[static_cast<std::size_t>(w * 16 + i)];
      std::uint64_t nibble = 0;
      if (c >= '0' && c <= '9') nibble = static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') nibble = static_cast<std::uint64_t>(c - 'a' + 10);
      else return false;
      words[w] = (words[w] << 4) | nibble;
    }
  }
  out = {words[0], words[1]};
  return true;
}

/// Checksum of one serialized record: FNV-1a 64 over everything except the
/// magic (fixed) and the checksum field itself - version, key, payload
/// length, payload. Covering the key means a bit-flipped key field cannot
/// make record A answer for key B.
std::uint64_t record_checksum(std::string_view record) {
  const std::uint64_t over_header = fnv1a64(record.substr(4, 28));
  return fnv1a64(record.substr(disk_cache::record_header_bytes), over_header);
}

/// Reads the whole file at `path`. Returns false on any I/O error;
/// `missing` distinguishes ENOENT (a vanished record: a miss, not an
/// outage) from real failures.
bool read_whole_file(const std::string& path, std::string& out, bool& missing) {
  missing = false;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    missing = errno == ENOENT;
    return false;
  }
  out.clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

} // namespace

std::string disk_cache::record_filename(const ir::dfg_digest& key) {
  return key.hex() + ".rec";
}

std::string disk_cache::serialize_record(const ir::dfg_digest& key,
                                         const schedule_result& value,
                                         std::uint32_t version) {
  byte_writer payload;
  payload.u8(value.feasible ? 1 : 0);
  payload.str(value.infeasible_reason);
  payload.u64(value.ops);
  payload.i64(value.latency);
  payload.u64(value.start_times.size());
  for (const long long t : value.start_times) payload.i64(t);
  payload.u64(value.unit_of.size());
  for (const int u : value.unit_of) payload.i64(u);
  payload.u64(stats_field_count);
  payload.u64(value.stats.select_calls);
  payload.u64(value.stats.positions_scanned);
  payload.u64(value.stats.positions_rejected);
  payload.u64(value.stats.commits);
  payload.u64(value.stats.label_passes);
  payload.u64(value.stats.cross_edge_updates);
  payload.u64(value.stats.nodes_relabeled);
  payload.u64(value.stats.closure_rebuilds);
  payload.u64(value.stats.closure_syncs);
  payload.u64(value.stats.closure_rows_touched);

  byte_writer header;
  header.u32(record_magic);
  header.u32(version);
  header.u64(key.hi);
  header.u64(key.lo);
  header.u64(payload.size());
  header.u64(0); // checksum, patched below
  std::string record = header.take();
  record += payload.bytes();
  const std::uint64_t sum = record_checksum(record);
  for (int b = 0; b < 8; ++b)
    record[32 + static_cast<std::size_t>(b)] = static_cast<char>((sum >> (8 * b)) & 0xff);
  return record;
}

std::optional<std::pair<ir::dfg_digest, schedule_result>>
disk_cache::deserialize_record(std::string_view bytes, const ir::dfg_digest* expect_key) {
  if (bytes.size() < record_header_bytes) return std::nullopt;
  byte_reader r(bytes);
  if (r.u32() != record_magic) return std::nullopt;
  if (r.u32() != record_version) return std::nullopt;
  ir::dfg_digest key;
  key.hi = r.u64();
  key.lo = r.u64();
  const std::uint64_t payload_len = r.u64();
  const std::uint64_t stored_sum = r.u64();
  if (payload_len != bytes.size() - record_header_bytes) return std::nullopt;
  if (stored_sum != record_checksum(bytes)) return std::nullopt;
  if (expect_key != nullptr && key != *expect_key) return std::nullopt;

  schedule_result v;
  v.feasible = r.u8() != 0;
  v.infeasible_reason = r.str();
  v.ops = static_cast<std::size_t>(r.u64());
  v.latency = r.i64();
  const std::uint64_t n_starts = r.u64();
  if (!r.ok() || n_starts > r.remaining() / 8) return std::nullopt;
  v.start_times.reserve(static_cast<std::size_t>(n_starts));
  for (std::uint64_t i = 0; i < n_starts; ++i) v.start_times.push_back(r.i64());
  const std::uint64_t n_units = r.u64();
  if (!r.ok() || n_units > r.remaining() / 8) return std::nullopt;
  v.unit_of.reserve(static_cast<std::size_t>(n_units));
  for (std::uint64_t i = 0; i < n_units; ++i) v.unit_of.push_back(static_cast<int>(r.i64()));
  if (r.u64() != stats_field_count) return std::nullopt;
  v.stats.select_calls = r.u64();
  v.stats.positions_scanned = r.u64();
  v.stats.positions_rejected = r.u64();
  v.stats.commits = r.u64();
  v.stats.label_passes = r.u64();
  v.stats.cross_edge_updates = r.u64();
  v.stats.nodes_relabeled = r.u64();
  v.stats.closure_rebuilds = r.u64();
  v.stats.closure_syncs = r.u64();
  v.stats.closure_rows_touched = r.u64();
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return std::make_pair(key, std::move(v));
}

disk_cache::disk_cache(const disk_cache_options& options) : options_(options) {
  SOFTSCHED_EXPECT(!options_.directory.empty(), "disk cache requires a directory");
  if (options_.flush_queue_capacity == 0) options_.flush_queue_capacity = 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    scan_directory();
  }
  flusher_ = std::thread([this] { flusher_main(); });
}

disk_cache::~disk_cache() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true; // the flusher drains what is queued, then exits
  }
  queue_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

std::string disk_cache::path_of(const ir::dfg_digest& key) const {
  return options_.directory + "/" + record_filename(key);
}

void disk_cache::degrade_locked(const char* what) {
  if (!degraded_) {
    degraded_ = true;
    std::fprintf(stderr, "softsched: disk cache degraded to RAM-only (%s failed)\n", what);
  }
}

disk_fault_action disk_cache::next_op_fault() {
  ++op_counter_;
  const auto it = options_.faults.ops.find(op_counter_);
  return it == options_.faults.ops.end() ? disk_fault_action{} : it->second;
}

void disk_cache::scan_directory() {
  const auto t0 = std::chrono::steady_clock::now();
  std::error_code ec;
  fs::create_directories(options_.directory, ec);
  struct found {
    ir::dfg_digest key;
    std::size_t size = 0;
    fs::file_time_type mtime;
  };
  std::vector<found> keep;
  std::vector<std::string> quarantine;
  if (!ec) {
    for (auto it = fs::directory_iterator(options_.directory, ec);
         !ec && it != fs::directory_iterator(); it.increment(ec)) {
      std::error_code file_ec;
      if (!it->is_regular_file(file_ec) || file_ec) continue;
      const fs::path& p = it->path();
      if (p.extension() != ".rec") continue; // foreign files are not ours to delete
      // Header-only validation: magic, version, embedded key vs filename,
      // declared length vs file size. Checksums are verified at lookup, so
      // the scan stays O(entries) header reads even for a large cache; a
      // payload bit flip is caught (and quarantined) on first access.
      ir::dfg_digest key;
      bool valid = parse_hex_key(p.stem().string(), key);
      if (valid) {
        char header[record_header_bytes];
        const int fd = ::open(p.c_str(), O_RDONLY | O_CLOEXEC);
        valid = fd >= 0;
        std::size_t file_size = 0;
        if (valid) {
          struct stat st {};
          valid = ::fstat(fd, &st) == 0;
          if (valid) file_size = static_cast<std::size_t>(st.st_size);
          ssize_t got = 0;
          while (valid && got < static_cast<ssize_t>(sizeof header)) {
            const ssize_t n = ::read(fd, header + got, sizeof header - static_cast<std::size_t>(got));
            if (n < 0 && errno == EINTR) continue;
            if (n <= 0) valid = false;
            else got += n;
          }
          ::close(fd);
        }
        if (valid) {
          byte_reader r(std::string_view(header, sizeof header));
          valid = r.u32() == record_magic && r.u32() == record_version &&
                  ir::dfg_digest{r.u64(), r.u64()} == key &&
                  r.u64() == file_size - record_header_bytes;
        }
        if (valid) {
          std::error_code mtime_ec;
          const auto mtime = fs::last_write_time(p, mtime_ec);
          keep.push_back({key, file_size, mtime_ec ? fs::file_time_type{} : mtime});
          continue;
        }
      }
      quarantine.push_back(p.string());
    }
  }
  if (ec) {
    ++tally_.io_errors;
    degrade_locked("recovery scan");
  } else {
    // Oldest first, so successive push_fronts leave the newest record in
    // the MRU slot - the restart approximates the pre-crash LRU order.
    std::sort(keep.begin(), keep.end(),
              [](const found& a, const found& b) { return a.mtime < b.mtime; });
    for (const found& f : keep) {
      lru_.push_front({f.key, f.size});
      index_.emplace(f.key, lru_.begin());
      bytes_ += f.size;
    }
    tally_.recovered_entries = keep.size();
    for (const std::string& p : quarantine) {
      if (::unlink(p.c_str()) != 0 && errno != ENOENT) {
        ++tally_.io_errors;
        degrade_locked("quarantine unlink");
      }
      ++tally_.corrupt_dropped;
    }
    evict_to_budget_locked();
  }
  tally_.recovery_scan_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
}

bool disk_cache::write_record_file(const std::string& path, std::string_view bytes,
                                   const disk_fault_action& fault) {
  sleep_ms(fault.delay_ms);
  if (fault.fail) {
    errno = EIO;
    return false;
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  // A torn write persists a strict prefix and then *reports success*: the
  // power-loss shape, where the process believed the record landed.
  const std::size_t limit = fault.torn ? bytes.size() / 2 : bytes.size();
  std::size_t done = 0;
  while (done < limit) {
    const ssize_t n = ::write(fd, bytes.data() + done, limit - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  if (options_.sync_writes && !fault.torn && ::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return false;
  }
  if (::close(fd) != 0) return false;
  return true;
}

bool disk_cache::read_record_file(const std::string& path, std::string& out,
                                  const disk_fault_action& fault, bool& missing) {
  sleep_ms(fault.delay_ms);
  if (fault.fail) {
    missing = false;
    errno = EIO;
    return false;
  }
  if (!read_whole_file(path, out, missing)) return false;
  if (fault.torn) out.resize(out.size() / 2); // deterministic short read
  return true;
}

disk_cache::result_ptr disk_cache::lookup(const ir::dfg_digest& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (degraded_) {
    ++tally_.misses;
    return nullptr;
  }
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++tally_.misses;
    return nullptr;
  }
  const disk_fault_action fault = next_op_fault();
  std::string bytes;
  bool missing = false;
  if (!read_record_file(path_of(key), bytes, fault, missing)) {
    if (missing) {
      // Someone removed the file behind us (partial directory): drop the
      // stale index entry; a vanished record is a plain miss, not an outage.
      bytes_ -= it->second->bytes;
      lru_.erase(it->second);
      index_.erase(it);
    } else {
      ++tally_.io_errors;
      degrade_locked("record read");
    }
    ++tally_.misses;
    return nullptr;
  }
  auto decoded = deserialize_record(bytes, &key);
  if (!decoded) {
    drop_record_locked(key, /*corrupt=*/true);
    ++tally_.misses;
    return nullptr;
  }
  ++tally_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return std::make_shared<const schedule_result>(std::move(decoded->second));
}

void disk_cache::store(const ir::dfg_digest& key, result_ptr value) {
  SOFTSCHED_EXPECT(value != nullptr, "disk cache store requires a value");
  std::lock_guard<std::mutex> lock(mutex_);
  if (degraded_) return;
  store_locked(key, *value);
}

void disk_cache::store_locked(const ir::dfg_digest& key, const schedule_result& value) {
  const std::string record = serialize_record(key, value);
  if (record.size() > options_.byte_budget) {
    ++tally_.rejected_oversize;
    return;
  }
  const disk_fault_action fault = next_op_fault();
  const std::string path = path_of(key);
  if (!write_record_file(path, record, fault)) {
    ++tally_.io_errors;
    degrade_locked("record write");
    ::unlink(path.c_str()); // best effort: a partial record would be dead weight
    const auto it = index_.find(key);
    if (it != index_.end()) {
      bytes_ -= it->second->bytes;
      lru_.erase(it->second);
      index_.erase(it);
    }
    return;
  }
  ++tally_.writes;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    it->second->bytes = record.size();
    bytes_ += record.size();
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front({key, record.size()});
    index_.emplace(key, lru_.begin());
    bytes_ += record.size();
  }
  evict_to_budget_locked();
}

void disk_cache::evict_to_budget_locked() {
  while (bytes_ > options_.byte_budget && !lru_.empty()) {
    const ir::dfg_digest victim = lru_.back().key;
    drop_record_locked(victim, /*corrupt=*/false);
    ++tally_.evictions;
  }
}

void disk_cache::drop_record_locked(const ir::dfg_digest& key, bool corrupt) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  if (::unlink(path_of(key).c_str()) != 0 && errno != ENOENT) {
    ++tally_.io_errors;
    degrade_locked("record unlink");
  }
  if (corrupt) ++tally_.corrupt_dropped;
}

bool disk_cache::enqueue(const ir::dfg_digest& key, result_ptr value) {
  SOFTSCHED_EXPECT(value != nullptr, "disk cache enqueue requires a value");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (degraded_) return false;
    if (queue_.size() >= options_.flush_queue_capacity) {
      ++tally_.queue_dropped;
      return false;
    }
    queue_.emplace_back(key, std::move(value));
  }
  queue_cv_.notify_one();
  return true;
}

std::size_t disk_cache::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t before = tally_.flushed;
  queue_cv_.notify_all();
  flushed_cv_.wait(lock, [this] { return queue_.empty() && !writing_; });
  return static_cast<std::size_t>(tally_.flushed - before);
}

void disk_cache::flusher_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    auto [key, value] = std::move(queue_.front());
    queue_.pop_front();
    writing_ = true;
    // The record I/O happens under the mutex on purpose: an injected
    // io=N:delay_ms holds the flusher exactly here, which is what the CI
    // kill-mid-write-behind leg aims its SIGKILL at.
    if (!degraded_) store_locked(key, *value);
    ++tally_.flushed;
    writing_ = false;
    if (queue_.empty()) flushed_cv_.notify_all();
  }
}

disk_cache_counters disk_cache::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  disk_cache_counters out = tally_;
  out.entries = index_.size();
  out.bytes = bytes_;
  out.queue_depth = queue_.size() + (writing_ ? 1 : 0);
  out.degraded = degraded_;
  return out;
}

bool disk_cache::degraded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return degraded_;
}

std::optional<std::uint64_t> disk_cache::export_to(std::ostream& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  byte_writer header;
  header.u32(export_magic);
  header.u32(record_version);
  out.write(header.bytes().data(), static_cast<std::streamsize>(header.size()));
  if (!out) return std::nullopt;
  // Snapshot the keys first: a corrupt record found mid-stream is
  // quarantined, which mutates the LRU list we would be iterating.
  std::vector<ir::dfg_digest> keys;
  keys.reserve(lru_.size());
  for (const entry& e : lru_) keys.push_back(e.key);
  std::uint64_t count = 0;
  for (const ir::dfg_digest& key : keys) {
    std::string bytes;
    bool missing = false;
    if (!read_whole_file(path_of(key), bytes, missing)) {
      if (!missing) {
        ++tally_.io_errors;
        degrade_locked("export read");
      }
      continue;
    }
    if (!deserialize_record(bytes, &key)) {
      drop_record_locked(key, /*corrupt=*/true);
      continue;
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) return std::nullopt;
    ++count;
  }
  return count;
}

disk_import_summary disk_cache::import_from(std::istream& in) {
  std::lock_guard<std::mutex> lock(mutex_);
  disk_import_summary summary;
  char container[8];
  if (!in.read(container, sizeof container)) {
    summary.truncated = true;
    return summary;
  }
  {
    byte_reader r(std::string_view(container, sizeof container));
    if (r.u32() != export_magic || r.u32() != record_version) {
      summary.truncated = true;
      return summary;
    }
  }
  for (;;) {
    std::string record(record_header_bytes, '\0');
    in.read(record.data(), static_cast<std::streamsize>(record_header_bytes));
    if (in.gcount() == 0 && in.eof()) break; // clean end of container
    if (static_cast<std::size_t>(in.gcount()) != record_header_bytes) {
      summary.truncated = true;
      break;
    }
    byte_reader r(record);
    const std::uint32_t magic = r.u32();
    const std::uint32_t version = r.u32();
    r.u64();
    r.u64();
    const std::uint64_t payload_len = r.u64();
    // A bad length field makes resynchronization unsafe: stop rather than
    // guess where the next record starts.
    if (magic != record_magic || version != record_version ||
        payload_len > max_plausible_payload) {
      ++summary.corrupt_skipped;
      break;
    }
    const std::size_t before = record.size();
    record.resize(before + static_cast<std::size_t>(payload_len));
    in.read(record.data() + before, static_cast<std::streamsize>(payload_len));
    if (static_cast<std::size_t>(in.gcount()) != payload_len) {
      summary.truncated = true;
      break;
    }
    const auto decoded = deserialize_record(record);
    if (!decoded) {
      ++summary.corrupt_skipped;
      break;
    }
    if (!degraded_) store_locked(decoded->first, decoded->second);
    ++summary.imported;
  }
  return summary;
}

} // namespace softsched::serve
