// persist_scenario.h - the "persist" benchmark scenario: the crash-tolerant
// two-tier schedule cache measured end to end. Four runs of the same
// zipf-skewed request mix (serve_scenario.h):
//
//   reference - no disk tier; the determinism yardstick every other run's
//               response payloads must match byte-for-byte (modulo `ms`);
//   cold      - fresh cache directory, disk tier on: populates the store
//               through the write-behind flusher;
//   warm      - a *new* engine over the same directory (the warm-restart
//               shape: RAM tier empty, disk tier recovered by the open
//               scan). Headline metrics: warm_restart_hit_rate (disk-tier
//               hit rate - every unique key should come back from disk,
//               not the scheduler), recovery_scan_ms, requests_per_sec;
//   degraded  - same directory with an injected I/O failure on the first
//               disk op: the tier must flip to RAM-only and keep serving
//               with zero request errors and identical payloads. Headline:
//               requests_per_sec_degraded (the outage-mode throughput).
//
// Included by bench/perf_harness.cpp (embeds the block into
// BENCH_softsched.json, gated by ci/bench_gate.py) and
// bench/persist_harness.cpp (standalone runner). The scenario self-gates:
// the emitted "gate" object records each invariant so the bench gate can
// fail on `gate.pass` without re-deriving the checks.
//
// The cache directory lives under the system temp dir, keyed by the seed,
// and is recreated from scratch each run - the scenario measures a
// *controlled* warm restart, not whatever a previous invocation left
// behind.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "serve/engine.h"
#include "serve_scenario.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace softsched::bench {

struct persist_run {
  std::vector<serve::response> responses;
  double wall_ms = 0;
};

inline persist_run run_persist_mix(serve::engine& eng, const std::string& text) {
  persist_run out;
  std::istringstream in(text);
  const auto t0 = std::chrono::steady_clock::now();
  out.responses = eng.run_collect(in);
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return out;
}

inline bool same_payloads(const std::vector<serve::response>& a,
                          const std::vector<serve::response>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!a[i].same_payload(b[i])) return false;
  return true;
}

/// Emits the whole scenario as the value of an already-written "persist"
/// key. `jobs` = 0 picks thread_pool::hardware_workers(). Returns the
/// self-gate verdict (false = some invariant broke; the block still emits
/// so the gate can print what failed).
inline bool write_persist_scenario(json_writer& j, std::uint64_t seed, unsigned jobs = 0) {
  namespace fs = std::filesystem;
  if (jobs == 0) jobs = thread_pool::hardware_workers();
  constexpr int request_count = 400;
  constexpr std::size_t disk_budget = 64ull << 20;

  const std::vector<std::string> lines = make_serve_mix(seed, request_count);
  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text += '\n';
  }

  std::error_code ec;
  const fs::path dir = fs::temp_directory_path(ec) /
                       ("softsched_persist_bench_" + std::to_string(seed));
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  bool dir_ok = !ec && fs::is_directory(dir, ec);
  if (!dir_ok)
    std::cerr << "persist: cannot create cache directory " << dir << "\n";

  serve::engine_options base;
  base.jobs = static_cast<int>(jobs);
  base.batch_size = 32;
  base.emit_schedule = false;
  base.cache_dir = dir.string();
  base.disk_cache_bytes = disk_budget;

  // Reference: the exact same engine configuration minus the disk tier.
  serve::engine_options plain = base;
  plain.cache_dir.clear();
  plain.disk_cache_bytes = 0;
  serve::engine reference_engine(plain);
  const persist_run reference = run_persist_mix(reference_engine, text);

  // Cold run: populate the store through write-behind, then flush so the
  // warm run sees every record.
  persist_run cold;
  serve::disk_cache_counters cold_disk;
  bool cold_match = false;
  if (dir_ok) {
    serve::engine eng(base);
    cold = run_persist_mix(eng, text);
    (void)eng.flush_disk();
    cold_disk = eng.disk()->counters();
    cold_match = same_payloads(reference.responses, cold.responses);
  }

  // Warm restart: a brand-new engine (empty RAM tier) over the populated
  // directory. The open scan recovers the index; every unique key should
  // be a disk hit, so nothing re-runs the scheduler.
  persist_run warm;
  serve::disk_cache_counters warm_disk;
  bool warm_match = false;
  if (dir_ok) {
    serve::engine eng(base);
    warm = run_persist_mix(eng, text);
    warm_disk = eng.disk()->counters();
    warm_match = same_payloads(reference.responses, warm.responses);
  }

  // Degraded leg: first disk op reports an I/O error, flipping the tier to
  // RAM-only. The engine must keep serving - zero request errors, payloads
  // still identical - just without persistence.
  persist_run degraded;
  serve::disk_cache_counters degraded_disk;
  bool degraded_match = false;
  if (dir_ok) {
    serve::engine_options outage = base;
    outage.disk_faults.ops[1] = serve::disk_fault_action{0, true, false};
    serve::engine eng(outage);
    degraded = run_persist_mix(eng, text);
    degraded_disk = eng.disk()->counters();
    degraded_match = same_payloads(reference.responses, degraded.responses);
  }
  std::uint64_t degraded_errors = 0;
  for (const serve::response& r : degraded.responses)
    if (!r.error.empty()) ++degraded_errors;

  fs::remove_all(dir, ec);

  const double warm_hit_rate =
      warm_disk.hits + warm_disk.misses > 0
          ? static_cast<double>(warm_disk.hits) /
                static_cast<double>(warm_disk.hits + warm_disk.misses)
          : 0.0;
  const double rps_warm =
      warm.wall_ms > 0 ? request_count / (warm.wall_ms / 1e3) : 0.0;
  const double rps_degraded =
      degraded.wall_ms > 0 ? request_count / (degraded.wall_ms / 1e3) : 0.0;

  const bool deterministic = cold_match && warm_match && degraded_match;
  const bool warm_hits_ok = warm_disk.hits > 0;
  const bool recovered_ok =
      warm_disk.recovered_entries > 0 &&
      warm_disk.recovered_entries == cold_disk.entries;
  const bool degraded_ok =
      degraded_disk.degraded && degraded_disk.io_errors > 0 && degraded_errors == 0;
  const bool pass =
      dir_ok && deterministic && warm_hits_ok && recovered_ok && degraded_ok;
  if (!pass)
    std::cerr << "persist: gate failed (dir_ok=" << dir_ok
              << " deterministic=" << deterministic
              << " warm_hits_ok=" << warm_hits_ok
              << " recovered_ok=" << recovered_ok
              << " degraded_ok=" << degraded_ok << ")\n";

  j.begin_object();
  j.member("requests", static_cast<long long>(request_count));
  j.member("catalog", serve_catalog(seed).size());
  j.member("jobs", static_cast<unsigned long long>(jobs));
  j.member("disk_budget_bytes", static_cast<unsigned long long>(disk_budget));
  j.member("cold_ms", cold.wall_ms);
  j.member("warm_ms", warm.wall_ms);
  j.member("degraded_ms", degraded.wall_ms);
  j.member("requests_per_sec_warm", rps_warm);
  j.member("requests_per_sec_degraded", rps_degraded);
  j.member("warm_restart_hit_rate", warm_hit_rate);
  j.member("recovery_scan_ms", warm_disk.recovery_scan_ms);
  j.member("recovered_entries", warm_disk.recovered_entries);
  j.member("disk_entries", static_cast<unsigned long long>(cold_disk.entries));
  j.member("disk_bytes", static_cast<unsigned long long>(cold_disk.bytes));
  j.member("disk_writes", cold_disk.writes);
  j.member("disk_hits_warm", warm_disk.hits);
  j.member("degraded_io_errors", degraded_disk.io_errors);
  j.member("degraded_request_errors", degraded_errors);
  j.member("deterministic", deterministic);
  j.key("gate");
  j.begin_object();
  j.member("dir_ok", dir_ok);
  j.member("deterministic", deterministic);
  j.member("warm_hits_ok", warm_hits_ok);
  j.member("recovered_ok", recovered_ok);
  j.member("degraded_ok", degraded_ok);
  j.member("pass", pass);
  j.end_object();
  j.end_object();
  return pass;
}

} // namespace softsched::bench
