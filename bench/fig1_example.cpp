// fig1_example - regenerates the paper's Figure 1 walk-through on the
// 7-vertex example:
//   (b) the ALAP hard schedule takes 5 states,
//   (e) the threaded soft schedule takes 5 states,
//   (c) inserting spill code for vertex 3 -> 6 states,
//   (d) inserting a wire delay on 3 -> 6 -> 5 states,
// and prints the per-scenario state counts plus the final thread contents
// and the extracted hard schedule's Gantt chart.
#include <iostream>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "graph/distances.h"
#include "graph/topo.h"
#include "hard/asap_alap.h"
#include "hard/extract.h"
#include "ir/benchmarks.h"
#include "refine/refinement.h"
#include "util/table.h"

namespace sg = softsched::graph;
namespace sc = softsched::core;
namespace si = softsched::ir;
namespace sh = softsched::hard;
namespace sf = softsched::refine;

namespace {

struct scenario_result {
  std::string name;
  long long states;
  int paper_states;
};

sc::threaded_graph fresh_state(const si::dfg& d) {
  sc::threaded_graph state = sc::make_hls_state(d, si::resource_set{2, 1, 1});
  state.schedule_all(sg::topological_order(d.graph()));
  return state;
}

} // namespace

int main() {
  const si::resource_library lib;
  std::vector<scenario_result> results;

  {
    const si::dfg d = si::make_figure1(lib);
    results.push_back({"(b) hard schedule (ALAP)",
                       sh::alap_schedule(d, sg::compute_distances(d.graph()).diameter)
                           .makespan,
                       5});
  }
  {
    si::dfg d = si::make_figure1(lib);
    sc::threaded_graph state = fresh_state(d);
    results.push_back({"(e) threaded soft schedule", state.diameter(), 5});
  }
  {
    si::dfg d = si::make_figure1(lib);
    sc::threaded_graph state = fresh_state(d);
    sf::apply_spill(d, state, si::find_op(d, "3"));
    results.push_back({"(c) + spill code for vertex 3", state.diameter(), 6});
  }
  {
    si::dfg d = si::make_figure1(lib);
    sc::threaded_graph state = fresh_state(d);
    sf::apply_wire_delay(d, state, si::find_op(d, "3"), si::find_op(d, "6"), 1);
    results.push_back({"(d) + wire delay on 3->6", state.diameter(), 5});
  }

  std::cout << "Figure 1: the 7-vertex running example (2 units, unit delays)\n\n";
  softsched::table tbl;
  tbl.set_header({"scenario", "states", "paper"});
  for (const auto& r : results)
    tbl.add_row({r.name, softsched::cell(r.states), softsched::cell(r.paper_states)});
  tbl.print(std::cout);

  // Show the soft schedule's structure: threads + extracted hard schedule.
  si::dfg d = si::make_figure1(lib);
  sc::threaded_graph state = fresh_state(d);
  std::cout << "\nthread contents (soft schedule, before refinement):\n";
  for (int k = 0; k < state.thread_count(); ++k) {
    std::cout << "  thread " << k << ":";
    for (const auto v : state.thread_sequence(k)) std::cout << ' ' << d.graph().name(v);
    std::cout << '\n';
  }
  std::cout << "\nextracted hard schedule:\n";
  sh::schedule s = sh::extract_schedule(state);
  sh::write_gantt(std::cout, d, s);
  return 0;
}
