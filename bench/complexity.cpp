// complexity - Theorem 3: one schedule() call of the threaded scheduler is
// O(|V|) for fixed K, versus the naive Definition-5 selector's quadratic
// speculative evaluation. Two google-benchmark families:
//
//   BM_ScheduleAll/<V>      full threaded scheduling of a V-vertex DAG
//                           (expect ~quadratic total = linear per op)
//   BM_SelectFast/<V>       one select() on a V-vertex scheduled state
//   BM_SelectNaive/<V>      one select_naive() on the same state
//
// The per-op linear claim shows as BM_SelectFast growing linearly in V
// while BM_SelectNaive grows ~quadratically (each of O(V) positions costs
// a full O(V) relabel).
#include <benchmark/benchmark.h>

#include "core/threaded_graph.h"
#include "graph/generators.h"
#include "graph/topo.h"
#include "util/rng.h"

namespace sg = softsched::graph;
namespace sc = softsched::core;
using sg::vertex_id;
using softsched::rng;

namespace {

constexpr int k_threads = 4;

sg::precedence_graph make_workload(int vertices) {
  rng rand(0x5eed + static_cast<std::uint64_t>(vertices));
  sg::layered_params params;
  params.width = 8;
  params.layers = vertices / params.width;
  params.edge_prob = 0.25;
  return sg::layered_random(params, rand);
}

/// Graph plus one extra *unconstrained* vertex (no dependences): every
/// insertion slot is legal for it, so the naive selector must really
/// speculate at every position - the worst case Theorem 3 is up against.
struct probe_workload {
  sg::precedence_graph graph;
  vertex_id probe;
};

probe_workload make_probe_workload(int vertices) {
  probe_workload w{make_workload(vertices - 1), vertex_id()};
  w.probe = w.graph.add_vertex(1, "probe");
  return w;
}

/// State with everything but the probe scheduled.
sc::threaded_graph full_state(const probe_workload& w) {
  sc::threaded_graph state(w.graph, k_threads);
  for (const vertex_id v : sg::topological_order(w.graph))
    if (v != w.probe) state.schedule(v);
  return state;
}

void BM_ScheduleAll(benchmark::State& bench) {
  const int vertices = static_cast<int>(bench.range(0));
  const sg::precedence_graph g = make_workload(vertices);
  const std::vector<vertex_id> order = sg::topological_order(g);
  for (auto _ : bench) {
    sc::threaded_graph state(g, k_threads);
    state.schedule_all(order);
    benchmark::DoNotOptimize(state.scheduled_count());
  }
  bench.SetComplexityN(vertices);
  // Seconds per scheduled operation (Theorem 3: grows linearly with V).
  bench.counters["per_op"] = benchmark::Counter(
      static_cast<double>(vertices),
      benchmark::Counter::kIsIterationInvariantRate | benchmark::Counter::kInvert);
}

void BM_SelectFast(benchmark::State& bench) {
  const int vertices = static_cast<int>(bench.range(0));
  const probe_workload w = make_probe_workload(vertices);
  sc::threaded_graph state = full_state(w);
  for (auto _ : bench) {
    benchmark::DoNotOptimize(state.select(w.probe));
  }
  bench.SetComplexityN(vertices);
}

void BM_SelectNaive(benchmark::State& bench) {
  const int vertices = static_cast<int>(bench.range(0));
  const probe_workload w = make_probe_workload(vertices);
  sc::threaded_graph state = full_state(w);
  for (auto _ : bench) {
    benchmark::DoNotOptimize(state.select_naive(w.probe));
  }
  bench.SetComplexityN(vertices);
}

} // namespace

BENCHMARK(BM_ScheduleAll)->RangeMultiplier(2)->Range(64, 4096)->Complexity();
BENCHMARK(BM_SelectFast)->RangeMultiplier(2)->Range(64, 4096)->Complexity();
BENCHMARK(BM_SelectNaive)->RangeMultiplier(2)->Range(64, 512)->Complexity();

BENCHMARK_MAIN();
