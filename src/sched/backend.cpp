#include "sched/backend.h"

#include <algorithm>
#include <array>

#include "core/hls_binding.h"
#include "graph/distances.h"
#include "hard/force_directed.h"
#include "hard/list_scheduler.h"
#include "util/check.h"

namespace softsched::sched {

namespace {

using graph::vertex_id;

/// The classes an allocation can actually constrain (wire is dedicated).
constexpr std::array<ir::resource_class, 3> contended_classes = {
    ir::resource_class::alu, ir::resource_class::multiplier,
    ir::resource_class::memory_port};

backend_outcome outcome_from_hard(const hard::schedule& s) {
  backend_outcome r;
  r.feasible = true;
  r.latency = s.makespan;
  r.start_times = s.start;
  r.unit_of = s.unit;
  return r;
}

// -- soft: the paper's K-threaded online scheduler -------------------------

class soft_backend final : public scheduler_backend {
public:
  [[nodiscard]] std::string_view name() const noexcept override { return "soft"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "K-threaded soft scheduler (Algorithm 1, refinable partial order)";
  }
  [[nodiscard]] backend_caps caps() const noexcept override {
    return {.binds_units = true, .uses_meta = true, .refinable = true,
            .time_constrained = false};
  }

  [[nodiscard]] backend_outcome run(const run_request& request,
                                    run_context& ctx) const override {
    SOFTSCHED_EXPECT(request.options.meta != meta::meta_kind::random,
                     "backend runs need a deterministic meta schedule");
    ctx.begin_run();
    const ir::dfg& d = request.design;
    backend_outcome r;
    try {
      ctx.state.emplace(
          core::make_hls_state(d, request.resources, ctx.arena(), ctx.thread_tags));
      core::threaded_graph& state = *ctx.state;
      // Wire pseudo-ops each need their dedicated thread before scheduling
      // (hls_binding contract) - inline .dfg designs may carry them.
      const auto n = static_cast<std::uint32_t>(d.op_count());
      for (std::uint32_t i = 0; i < n; ++i)
        if (d.kind(vertex_id(i)) == ir::op_kind::wire)
          core::add_wire_thread(state, vertex_id(i));
      meta::meta_schedule(d.graph(), request.options.meta, ctx.meta, ctx.meta_order);
      state.schedule_all(ctx.meta_order);
      r.latency = state.diameter();
      state.asap_start_times(r.start_times);
      r.unit_of.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i)
        r.unit_of.push_back(state.thread_of(vertex_id(i)));
      r.stats = state.stats();
      ctx.accumulate(r.stats);
      r.feasible = true;
    } catch (const infeasible_error& e) {
      r.infeasible_reason = e.what();
    }
    return r;
  }
};

// -- list: the resource-constrained critical-path baseline -----------------

class list_backend final : public scheduler_backend {
public:
  [[nodiscard]] std::string_view name() const noexcept override { return "list"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "resource-constrained list scheduler (critical-path priority)";
  }
  [[nodiscard]] backend_caps caps() const noexcept override {
    return {.binds_units = true, .uses_meta = false, .refinable = false,
            .time_constrained = false};
  }

  [[nodiscard]] backend_outcome run(const run_request& request,
                                    run_context& ctx) const override {
    ctx.begin_run(); // hard backends still honor the context contract
    try {
      return outcome_from_hard(hard::list_schedule(request.design, request.resources));
    } catch (const infeasible_error& e) {
      backend_outcome r;
      r.infeasible_reason = e.what();
      return r;
    }
  }
};

// -- fds: force-directed, made resource-comparable by a budget search ------

class fds_backend final : public scheduler_backend {
public:
  [[nodiscard]] std::string_view name() const noexcept override { return "fds"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "force-directed scheduling (smallest latency budget fitting the allocation)";
  }
  [[nodiscard]] backend_caps caps() const noexcept override {
    return {.binds_units = false, .uses_meta = false, .refinable = false,
            .time_constrained = true};
  }

  [[nodiscard]] backend_outcome run(const run_request& request,
                                    run_context& ctx) const override {
    ctx.begin_run(); // hard backends still honor the context contract
    const ir::dfg& d = request.design;
    const ir::resource_set& resources = request.resources;
    const backend_options& options = request.options;
    backend_outcome r;
    // Same zero-unit screen as the other backends: FDS itself is
    // time-constrained and would happily "fit" an allocation with no units
    // by smearing pressure it never checks against.
    for (const ir::resource_class cls : contended_classes) {
      if (d.count_class(cls) > 0 && resources.count(cls) == 0) {
        r.infeasible_reason = d.name() + " needs at least one " +
                              std::string(ir::class_name(cls)) + " unit";
        return r;
      }
    }

    // Lower bounds on any resource-legal latency: the critical path, and
    // per class ceil(total work / units) - FDS cannot beat either, so the
    // budget search starts at their max instead of probing dead budgets.
    const long long critical = graph::compute_distances(d.graph()).diameter;
    if (options.fds_latency > 0 && options.fds_latency < critical) {
      r.infeasible_reason = "latency budget " + std::to_string(options.fds_latency) +
                            " is below the critical path " + std::to_string(critical);
      return r;
    }
    long long floor = critical;
    for (const ir::resource_class cls : contended_classes) {
      const int units = resources.count(cls);
      if (units <= 0) continue;
      long long work = 0;
      for (const vertex_id v : d.graph().vertices())
        if (d.unit_class(v) == cls) work += d.graph().delay(v);
      floor = std::max(floor, (work + units - 1) / units);
    }

    const long long first = options.fds_latency > 0 ? options.fds_latency : floor;
    // -1 asks for the smallest fitting budget; an explicit budget runs once.
    const long long last = options.fds_latency > 0 ? first : floor + budget_scan;
    for (long long latency = first; latency <= last; ++latency) {
      hard::fds_result fds;
      try {
        fds = hard::force_directed_schedule(d, latency);
      } catch (const infeasible_error& e) {
        r.infeasible_reason = e.what(); // budget below the critical path
        return r;
      }
      const bool fits = std::ranges::all_of(contended_classes, [&](auto cls) {
        return fds.peak[static_cast<int>(cls)] <= resources.count(cls);
      });
      if (fits) return outcome_from_hard(fds.sched);
    }
    r.infeasible_reason =
        options.fds_latency > 0
            ? "force-directed peak usage exceeds " + resources.label() +
                  " at latency budget " + std::to_string(first)
            : "force-directed peak usage exceeds " + resources.label() +
                  " for every latency budget up to " + std::to_string(last);
    return r;
  }

private:
  /// How far past the lower bound the budget search walks before declaring
  /// the allocation unreachable. FDS balances well; real designs fit at or
  /// within a few states of the bound, and the cap keeps a pathological
  /// (design, allocation) pair from scanning forever.
  static constexpr long long budget_scan = 64;
};

const soft_backend soft_instance;
const list_backend list_instance;
const fds_backend fds_instance;

/// Registration order is a wire contract: backend_index feeds the serve
/// cache salt (docs/DESIGN.md §7). Append only.
constexpr std::array<const scheduler_backend*, 3> registry = {
    &soft_instance, &list_instance, &fds_instance};

} // namespace

hard::schedule to_hard_schedule(const backend_outcome& outcome) {
  hard::schedule s;
  s.start = outcome.start_times;
  s.unit = outcome.unit_of;
  s.makespan = outcome.latency;
  return s;
}

bool backend_outcome::same_outcome(const backend_outcome& other) const {
  return feasible == other.feasible && infeasible_reason == other.infeasible_reason &&
         latency == other.latency && start_times == other.start_times &&
         unit_of == other.unit_of && stats == other.stats;
}

std::span<const scheduler_backend* const> registered_backends() { return registry; }

const scheduler_backend* find_backend(std::string_view name) {
  for (const scheduler_backend* b : registry)
    if (b->name() == name) return b;
  return nullptr;
}

const scheduler_backend& get_backend(std::string_view name) {
  const scheduler_backend* b = find_backend(name);
  if (b == nullptr)
    throw precondition_error("unknown scheduler backend '" + std::string(name) +
                             "' (expected " + backend_names_joined() + ")");
  return *b;
}

int backend_index(std::string_view name) {
  for (std::size_t i = 0; i < registry.size(); ++i)
    if (registry[i]->name() == name) return static_cast<int>(i);
  return -1;
}

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  names.reserve(registry.size());
  for (const scheduler_backend* b : registry) names.emplace_back(b->name());
  return names;
}

std::string backend_names_joined() {
  std::string joined;
  for (const scheduler_backend* b : registry) {
    if (!joined.empty()) joined += "|";
    joined += b->name();
  }
  return joined;
}

std::uint64_t backend_option_salt(const scheduler_backend& backend,
                                  meta::meta_kind meta) {
  // Low byte: meta kind + 1 (the pre-registry salt, so soft keys are
  // unchanged) - but only for backends that consume the meta order; the
  // rest collapse every meta onto one salt so identical outcomes share one
  // cache entry. High bits: the registry index, so the same design +
  // allocation under two backends can never share an entry.
  const int index = backend_index(backend.name());
  SOFTSCHED_EXPECT(index >= 0, "salt requested for an unregistered backend");
  const std::uint64_t meta_bits =
      backend.caps().uses_meta ? static_cast<std::uint64_t>(meta) + 1 : 1;
  return (static_cast<std::uint64_t>(index) << 8) | meta_bits;
}

} // namespace softsched::sched
