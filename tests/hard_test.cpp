// hard_test.cpp - the hard baselines: schedule container + validator,
// ASAP/ALAP, resource-constrained list scheduling, force-directed
// scheduling, and extraction of hard schedules from threaded states.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "graph/distances.h"
#include "hard/asap_alap.h"
#include "hard/extract.h"
#include "hard/force_directed.h"
#include "hard/list_scheduler.h"
#include "hard/schedule.h"
#include "ir/benchmarks.h"
#include "meta/meta_schedule.h"
#include "util/check.h"

namespace sg = softsched::graph;
namespace sc = softsched::core;
namespace si = softsched::ir;
namespace sh = softsched::hard;
namespace sm = softsched::meta;
using sg::vertex_id;

TEST(AsapAlap, AsapMakespanEqualsCriticalPath) {
  const si::resource_library lib;
  for (const si::dfg& d : si::figure3_benchmarks(lib)) {
    const sh::schedule s = sh::asap_schedule(d);
    EXPECT_EQ(s.makespan, sg::compute_distances(d.graph()).diameter) << d.name();
    EXPECT_TRUE(sh::validate_schedule(d, s, nullptr).empty()) << d.name();
  }
}

TEST(AsapAlap, AlapRespectsLatencyAndPrecedence) {
  const si::resource_library lib;
  const si::dfg d = si::make_ewf(lib);
  const sh::schedule s = sh::alap_schedule(d, 20);
  EXPECT_EQ(s.makespan, 20);
  EXPECT_TRUE(sh::validate_schedule(d, s, nullptr).empty());
  // Sinks finish exactly at the latency in ALAP.
  for (const vertex_id v : d.graph().sinks())
    EXPECT_EQ(s.start[v.value()] + d.graph().delay(v), 20);
}

TEST(AsapAlap, AlapBelowCriticalPathThrows) {
  const si::resource_library lib;
  const si::dfg d = si::make_ewf(lib);
  EXPECT_THROW((void)sh::alap_schedule(d, 16), softsched::precondition_error);
}

TEST(AsapAlap, MobilityZeroOnCriticalPathAtMinLatency) {
  const si::resource_library lib;
  const si::dfg d = si::make_hal(lib);
  const long long cp = sg::compute_distances(d.graph()).diameter;
  const auto mob = sh::mobility(d, cp);
  // m4 sits on the critical path of HAL.
  EXPECT_EQ(mob[si::find_op(d, "m4").value()], 0);
  // a1 (x + dx) is far off the critical path.
  EXPECT_GT(mob[si::find_op(d, "a1").value()], 0);
}

TEST(Validator, CatchesPrecedenceViolation) {
  const si::resource_library lib;
  const si::dfg d = si::make_hal(lib);
  sh::schedule s = sh::asap_schedule(d);
  // Break an edge: schedule s2 before its input s1 finishes.
  s.start[si::find_op(d, "s2").value()] = 0;
  const auto violations = sh::validate_schedule(d, s, nullptr);
  EXPECT_FALSE(violations.empty());
}

TEST(Validator, CatchesResourceOversubscription) {
  const si::resource_library lib;
  const si::dfg d = si::make_hal(lib);
  const sh::schedule s = sh::asap_schedule(d); // 4 muls start at cycle 0
  const si::resource_set tight{1, 1, 1};
  const auto violations = sh::validate_schedule(d, s, &tight);
  EXPECT_FALSE(violations.empty());
}

TEST(Validator, CatchesUnitDoubleBooking) {
  const si::resource_library lib;
  si::dfg d("t", lib);
  const vertex_id a = d.add_op(si::op_kind::add, {});
  const vertex_id b = d.add_op(si::op_kind::add, {});
  sh::schedule s;
  s.start = {0, 0};
  s.unit = {0, 0}; // same unit, same cycle
  s.makespan = 1;
  const auto violations = sh::validate_schedule(d, s, nullptr);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("unit conflict"), std::string::npos);
  (void)a;
  (void)b;
}

TEST(ListScheduler, RespectsResourcesOnAllBenchmarks) {
  const si::resource_library lib;
  for (const si::dfg& d : si::figure3_benchmarks(lib)) {
    for (int c = 0; c < si::figure3_constraint_count; ++c) {
      const si::resource_set rs = si::figure3_constraint(c);
      const sh::schedule s = sh::list_schedule(d, rs);
      EXPECT_TRUE(s.complete(d));
      const auto violations = sh::validate_schedule(d, s, &rs);
      EXPECT_TRUE(violations.empty())
          << d.name() << " @ " << rs.label() << ": " << violations.front();
      EXPECT_GE(s.makespan, sg::compute_distances(d.graph()).diameter);
    }
  }
}

TEST(ListScheduler, UnconstrainedMatchesAsap) {
  const si::resource_library lib;
  const si::dfg d = si::make_fir8(lib);
  // Enough units of everything: list scheduling degenerates to ASAP.
  const sh::schedule s = sh::list_schedule(d, si::resource_set{16, 16, 4});
  EXPECT_EQ(s.makespan, sh::asap_schedule(d).makespan);
}

TEST(ListScheduler, SingleUnitSerializesEverything) {
  const si::resource_library lib;
  si::dfg d("t", lib);
  for (int i = 0; i < 5; ++i) d.add_op(si::op_kind::add, {});
  const sh::schedule s = sh::list_schedule(d, si::resource_set{1, 1, 1});
  EXPECT_EQ(s.makespan, 5);
}

TEST(ListScheduler, InfeasibleClassThrows) {
  const si::resource_library lib;
  const si::dfg d = si::make_hal(lib);
  EXPECT_THROW((void)sh::list_schedule(d, si::resource_set{2, 0, 1}),
               softsched::infeasible_error);
}

TEST(ForceDirected, FeasibleAndWithinLatency) {
  const si::resource_library lib;
  for (const si::dfg& d : si::figure3_benchmarks(lib)) {
    const long long cp = sg::compute_distances(d.graph()).diameter;
    const sh::fds_result result = sh::force_directed_schedule(d, cp + 2);
    EXPECT_TRUE(result.sched.complete(d)) << d.name();
    EXPECT_LE(result.sched.makespan, cp + 2) << d.name();
    EXPECT_TRUE(sh::validate_schedule(d, result.sched, nullptr).empty()) << d.name();
  }
}

TEST(ForceDirected, BalancesBetterThanAsapAtRelaxedLatency) {
  // The whole point of FDS: at the same latency, peak usage should not
  // exceed ASAP's peak, and typically improves it.
  const si::resource_library lib;
  const si::dfg d = si::make_ewf(lib);
  const long long latency = sg::compute_distances(d.graph()).diameter + 3;
  const sh::fds_result fds = sh::force_directed_schedule(d, latency);
  const sh::schedule asap = sh::asap_schedule(d);
  const int fds_alu = fds.peak[static_cast<int>(si::resource_class::alu)];
  const int asap_alu = sh::peak_usage(d, asap, si::resource_class::alu);
  EXPECT_LE(fds_alu, asap_alu);
  EXPECT_LT(fds_alu, static_cast<int>(d.count_kind(si::op_kind::add)));
}

TEST(ForceDirected, TooTightLatencyThrows) {
  const si::resource_library lib;
  const si::dfg d = si::make_hal(lib);
  EXPECT_THROW((void)sh::force_directed_schedule(d, 3), softsched::precondition_error);
}

TEST(Extract, ThreadedStateToHardSchedule) {
  const si::resource_library lib;
  const si::dfg d = si::make_hal(lib);
  const si::resource_set rs = si::figure3_constraint(0);
  sc::threaded_graph state = sc::make_hls_state(d, rs);
  state.schedule_all(sm::meta_schedule(d.graph(), sm::meta_kind::list_priority));
  const sh::schedule s = sh::extract_schedule(state);
  EXPECT_TRUE(s.complete(d));
  EXPECT_EQ(s.makespan, state.diameter());
  const auto violations = sh::validate_schedule(d, s, &rs);
  EXPECT_TRUE(violations.empty()) << violations.front();
  // Unit binding = thread index.
  for (const vertex_id v : d.graph().vertices())
    EXPECT_EQ(s.unit[v.value()], state.thread_of(v));
}

TEST(Extract, ExtractionValidOnAllBenchmarksAndMetas) {
  const si::resource_library lib;
  for (const si::dfg& d : si::figure3_benchmarks(lib)) {
    for (int c = 0; c < si::figure3_constraint_count; ++c) {
      const si::resource_set rs = si::figure3_constraint(c);
      for (const sm::meta_kind kind : sm::figure3_meta_kinds) {
        sc::threaded_graph state = sc::make_hls_state(d, rs);
        state.schedule_all(sm::meta_schedule(d.graph(), kind));
        const sh::schedule s = sh::extract_schedule(state);
        const auto violations = sh::validate_schedule(d, s, &rs);
        EXPECT_TRUE(violations.empty()) << d.name() << "/" << sm::meta_name(kind)
                                        << " @ " << rs.label() << ": "
                                        << violations.front();
      }
    }
  }
}

TEST(Gantt, WritesOneRowPerOp) {
  const si::resource_library lib;
  const si::dfg d = si::make_hal(lib);
  const sh::schedule s = sh::list_schedule(d, si::figure3_constraint(0));
  std::ostringstream ss;
  sh::write_gantt(ss, d, s);
  const std::string text = ss.str();
  EXPECT_EQ(static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')),
            d.op_count() + 1); // ops + header
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(UsageProfile, CountsBusyCycles) {
  const si::resource_library lib;
  si::dfg d("t", lib);
  const vertex_id m = d.add_op(si::op_kind::mul, {});
  d.add_op(si::op_kind::add, {m});
  const sh::schedule s = sh::asap_schedule(d);
  const auto mul_profile = sh::usage_profile(d, s, si::resource_class::multiplier);
  ASSERT_EQ(mul_profile.size(), 3u); // makespan = 2 + 1
  EXPECT_EQ(mul_profile[0], 1);
  EXPECT_EQ(mul_profile[1], 1);
  EXPECT_EQ(mul_profile[2], 0);
  EXPECT_EQ(sh::peak_usage(d, s, si::resource_class::alu), 1);
}
