// reachability.h - transitive closure of a precedence graph: the partial
// order <=G of Definition 1. Stored as one bitset row per vertex, so a
// reaches() query is O(1) and building is O(V*E/64).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/precedence_graph.h"

namespace softsched::graph {

/// Transitive closure. reaches(u, v) is true iff there is a (possibly
/// empty) directed path u ->* v; every vertex reaches itself, matching the
/// reflexive partial order <=G used throughout the paper.
class transitive_closure {
public:
  /// Builds the closure. Throws graph_error on cycles.
  explicit transitive_closure(const precedence_graph& g);

  /// u <=G v (reflexive).
  [[nodiscard]] bool reaches(vertex_id u, vertex_id v) const;

  /// u <G v (irreflexive / strict).
  [[nodiscard]] bool strictly_reaches(vertex_id u, vertex_id v) const;

  [[nodiscard]] std::size_t vertex_count() const noexcept { return n_; }

  /// Number of ordered pairs (u, v), u != v, with u <G v.
  [[nodiscard]] std::size_t pair_count() const;

private:
  [[nodiscard]] bool bit(std::size_t row, std::size_t col) const {
    return (bits_[row * words_ + col / 64] >> (col % 64)) & 1u;
  }
  void set_bit(std::size_t row, std::size_t col) {
    bits_[row * words_ + col / 64] |= std::uint64_t{1} << (col % 64);
  }

  std::size_t n_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> bits_;
};

} // namespace softsched::graph
