#include "hard/force_directed.h"

#include <algorithm>
#include <limits>

#include "graph/distances.h"
#include "graph/topo.h"
#include "util/check.h"

namespace softsched::hard {

namespace {

/// Start-window recomputation honouring already-fixed operations.
struct frames {
  std::vector<long long> earliest;
  std::vector<long long> latest;
};

frames compute_frames(const ir::dfg& d, long long latency,
                      const std::vector<long long>& fixed) {
  const auto& g = d.graph();
  frames f;
  f.earliest.assign(g.vertex_count(), 0);
  f.latest.assign(g.vertex_count(), 0);
  const std::vector<vertex_id> order = graph::topological_order(g);
  for (const vertex_id v : order) {
    long long e = 0;
    for (const vertex_id p : g.preds(v))
      e = std::max(e, f.earliest[p.value()] + g.delay(p));
    if (fixed[v.value()] >= 0) e = fixed[v.value()];
    f.earliest[v.value()] = e;
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const vertex_id v = *it;
    long long l = latency - g.delay(v);
    for (const vertex_id q : g.succs(v))
      l = std::min(l, f.latest[q.value()] - g.delay(v));
    if (fixed[v.value()] >= 0) l = fixed[v.value()];
    f.latest[v.value()] = l;
    if (l < f.earliest[v.value()])
      throw infeasible_error("force-directed frames collapsed: latency too tight");
  }
  return f;
}

/// Occupancy probability of op v at cycle c given start window [e, l]:
/// the fraction of feasible starts that cover c.
double occupancy(long long e, long long l, int delay, long long c) {
  const long long w = l - e + 1;
  const long long first = std::max(e, c - delay + 1);
  const long long last = std::min(l, c);
  if (first > last) return 0.0;
  return static_cast<double>(last - first + 1) / static_cast<double>(w);
}

} // namespace

fds_result force_directed_schedule(const ir::dfg& d, long long latency) {
  const auto& g = d.graph();
  const long long critical = graph::compute_distances(g).diameter;
  SOFTSCHED_EXPECT(latency >= critical, "FDS latency is below the critical path");

  const std::size_t n = g.vertex_count();
  std::vector<long long> fixed(n, -1);
  std::size_t remaining = n;

  // Wire pseudo-ops carry no resource pressure: fix them greedily at their
  // earliest slot up front and let the frames propagate.
  frames f = compute_frames(d, latency, fixed);

  while (remaining > 0) {
    f = compute_frames(d, latency, fixed);

    // Distribution graphs per contended class.
    std::vector<std::vector<double>> dg(
        ir::resource_class_count, std::vector<double>(static_cast<std::size_t>(latency), 0.0));
    for (const vertex_id v : g.vertices()) {
      const auto cls = static_cast<int>(d.unit_class(v));
      if (d.unit_class(v) == ir::resource_class::wire) continue;
      for (long long c = f.earliest[v.value()];
           c < f.latest[v.value()] + g.delay(v) && c < latency; ++c)
        dg[static_cast<std::size_t>(cls)][static_cast<std::size_t>(c)] +=
            occupancy(f.earliest[v.value()], f.latest[v.value()], g.delay(v), c);
    }

    double best_force = std::numeric_limits<double>::infinity();
    vertex_id best_v = vertex_id::invalid();
    long long best_t = -1;

    for (const vertex_id v : g.vertices()) {
      if (fixed[v.value()] >= 0) continue;
      const long long e = f.earliest[v.value()];
      const long long l = f.latest[v.value()];
      const int dv = g.delay(v);
      const auto cls = static_cast<std::size_t>(d.unit_class(v));
      const bool contended = d.unit_class(v) != ir::resource_class::wire;

      for (long long t = e; t <= l; ++t) {
        double force = 0.0;
        if (contended) {
          // Self force: how much fixing at t raises the op's own class DG
          // above its current smeared contribution.
          for (long long c = e; c < l + dv && c < latency; ++c) {
            const double p = occupancy(e, l, dv, c);
            const double x = (c >= t && c < t + dv) ? 1.0 : 0.0;
            force += dg[cls][static_cast<std::size_t>(c)] * (x - p);
          }
          // One-level predecessor/successor forces: fixing v at t shrinks
          // the neighbours' windows; charge the DG delta.
          for (const vertex_id p : g.preds(v)) {
            if (fixed[p.value()] >= 0 ||
                d.unit_class(p) == ir::resource_class::wire)
              continue;
            const long long pl = std::min(f.latest[p.value()], t - g.delay(p));
            const auto pcls = static_cast<std::size_t>(d.unit_class(p));
            for (long long c = f.earliest[p.value()];
                 c < f.latest[p.value()] + g.delay(p) && c < latency; ++c) {
              const double before =
                  occupancy(f.earliest[p.value()], f.latest[p.value()], g.delay(p), c);
              const double after = occupancy(f.earliest[p.value()], pl, g.delay(p), c);
              force += dg[pcls][static_cast<std::size_t>(c)] * (after - before);
            }
          }
          for (const vertex_id q : g.succs(v)) {
            if (fixed[q.value()] >= 0 ||
                d.unit_class(q) == ir::resource_class::wire)
              continue;
            const long long qe = std::max(f.earliest[q.value()], t + dv);
            const auto qcls = static_cast<std::size_t>(d.unit_class(q));
            for (long long c = f.earliest[q.value()];
                 c < f.latest[q.value()] + g.delay(q) && c < latency; ++c) {
              const double before =
                  occupancy(f.earliest[q.value()], f.latest[q.value()], g.delay(q), c);
              const double after = occupancy(qe, f.latest[q.value()], g.delay(q), c);
              force += dg[qcls][static_cast<std::size_t>(c)] * (after - before);
            }
          }
        }
        if (force < best_force - 1e-12) {
          best_force = force;
          best_v = v;
          best_t = t;
        }
      }
    }

    SOFTSCHED_EXPECT(best_v.valid(), "FDS found no schedulable operation");
    fixed[best_v.value()] = best_t;
    --remaining;
  }

  fds_result result;
  result.sched.start = fixed;
  result.sched.unit.assign(n, -1);
  result.sched.makespan = 0;
  for (const vertex_id v : g.vertices())
    result.sched.makespan =
        std::max(result.sched.makespan, fixed[v.value()] + g.delay(v));
  for (int cls = 0; cls < ir::resource_class_count; ++cls)
    result.peak[cls] =
        peak_usage(d, result.sched, static_cast<ir::resource_class>(cls));
  return result;
}

} // namespace softsched::hard
