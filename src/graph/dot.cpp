#include "graph/dot.h"

namespace softsched::graph {

void write_dot(std::ostream& os, const precedence_graph& g, std::string_view graph_name) {
  os << "digraph \"" << graph_name << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=circle];\n";
  for (const vertex_id v : g.vertices()) {
    os << "  v" << v.value() << " [label=\"";
    if (!g.name(v).empty())
      os << g.name(v);
    else
      os << 'v' << v.value();
    os << " (" << g.delay(v) << ")\"];\n";
  }
  for (const vertex_id u : g.vertices())
    for (const vertex_id w : g.succs(u)) os << "  v" << u.value() << " -> v" << w.value() << ";\n";
  os << "}\n";
}

} // namespace softsched::graph
