#include "lang/lexer.h"

#include <cctype>

namespace softsched::lang {

std::string token_kind_name(token_kind kind) {
  switch (kind) {
  case token_kind::identifier: return "identifier";
  case token_kind::number: return "number";
  case token_kind::assign: return "'='";
  case token_kind::plus: return "'+'";
  case token_kind::minus: return "'-'";
  case token_kind::star: return "'*'";
  case token_kind::less: return "'<'";
  case token_kind::lparen: return "'('";
  case token_kind::rparen: return "')'";
  case token_kind::semicolon: return "';'";
  case token_kind::end_of_input: return "end of input";
  }
  return "unknown";
}

std::vector<token> tokenize(const std::string& source) {
  std::vector<token> tokens;
  int line = 1;
  int column = 1;
  std::size_t i = 0;
  const auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n; ++k, ++i) {
      if (i < source.size() && source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };
  while (i < source.size()) {
    const char c = source[i];
    if (c == '#') { // comment to end of line
      while (i < source.size() && source[i] != '\n') advance();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      advance();
      continue;
    }
    token tok;
    tok.line = line;
    tok.column = column;
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) != 0 || source[i] == '_'))
        advance();
      tok.kind = token_kind::identifier;
      tok.text = source.substr(start, i - start);
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t start = i;
      while (i < source.size() && std::isdigit(static_cast<unsigned char>(source[i])) != 0)
        advance();
      tok.kind = token_kind::number;
      tok.text = source.substr(start, i - start);
    } else {
      switch (c) {
      case '=': tok.kind = token_kind::assign; break;
      case '+': tok.kind = token_kind::plus; break;
      case '-': tok.kind = token_kind::minus; break;
      case '*': tok.kind = token_kind::star; break;
      case '<': tok.kind = token_kind::less; break;
      case '(': tok.kind = token_kind::lparen; break;
      case ')': tok.kind = token_kind::rparen; break;
      case ';': tok.kind = token_kind::semicolon; break;
      default:
        throw parse_error("lex error at line " + std::to_string(line) + ", column " +
                          std::to_string(column) + ": unexpected character '" +
                          std::string(1, c) + "'");
      }
      tok.text = std::string(1, c);
      advance();
    }
    tokens.push_back(std::move(tok));
  }
  tokens.push_back(token{token_kind::end_of_input, "", line, column});
  return tokens;
}

} // namespace softsched::lang
