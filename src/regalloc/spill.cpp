#include "regalloc/spill.h"

#include <algorithm>

#include "util/check.h"

namespace softsched::regalloc {

namespace {

bool spillable(const ir::dfg& d, const value_lifetime& lt) {
  return d.kind(lt.producer) != ir::op_kind::load &&
         !d.graph().succs(lt.producer).empty() && lt.length() > 1;
}

} // namespace

int min_spillable_demand(const ir::dfg& d, const std::vector<value_lifetime>& lifetimes) {
  std::vector<value_lifetime> shrunk = lifetimes;
  for (value_lifetime& lt : shrunk)
    if (spillable(d, lt)) lt.last_use = lt.def + 1;
  return max_live(shrunk);
}

spill_plan choose_spills(const ir::dfg& d, const std::vector<value_lifetime>& lifetimes,
                         int register_budget) {
  SOFTSCHED_EXPECT(register_budget >= 1, "register budget must be at least 1");
  spill_plan plan;
  std::vector<value_lifetime> remaining = lifetimes;
  std::vector<bool> already_spilled(lifetimes.size(), false);

  while (max_live(remaining) > register_budget) {
    const long long peak = peak_cycle(remaining);
    // Among values alive at the peak, pick the one with the longest
    // remaining lifetime; ties by lowest producer id for determinism.
    // Reload results and values already spilled (their interval is the
    // one-cycle minimum - spilling again cannot reduce pressure) are
    // ineligible.
    std::size_t best = remaining.size();
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      if (!remaining[i].alive_at(peak) || already_spilled[i]) continue;
      if (!spillable(d, remaining[i])) continue;
      if (best == remaining.size() ||
          remaining[i].last_use - peak > remaining[best].last_use - peak ||
          (remaining[i].last_use == remaining[best].last_use &&
           remaining[i].producer < remaining[best].producer)) {
        best = i;
      }
    }
    if (best == remaining.size()) {
      throw infeasible_error(
          "register pressure cannot be reduced below " +
          std::to_string(max_live(remaining)) +
          ": every value alive at the peak is a reload or already spilled");
    }
    plan.values.push_back(remaining[best].producer);
    already_spilled[best] = true;
    // After spilling, the value occupies its register only in the cycle it
    // is produced (it goes straight to memory) - shrink the interval.
    remaining[best].last_use = remaining[best].def + 1;
  }
  return plan;
}

} // namespace softsched::regalloc
