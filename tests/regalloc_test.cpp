// regalloc_test.cpp - the register-allocation substrate: lifetimes,
// max-live, left-edge binding (optimality on interval graphs), and spill
// selection.
#include <gtest/gtest.h>

#include "hard/asap_alap.h"
#include "hard/list_scheduler.h"
#include "ir/benchmarks.h"
#include "regalloc/left_edge.h"
#include "regalloc/lifetime.h"
#include "regalloc/spill.h"

#include <algorithm>
#include "util/check.h"

namespace si = softsched::ir;
namespace sh = softsched::hard;
namespace sr = softsched::regalloc;
using softsched::graph::vertex_id;

namespace {

/// chain: a(1) -> b(1) -> c(1), scheduled ASAP.
std::pair<si::dfg, sh::schedule> tiny_chain(const si::resource_library& lib) {
  si::dfg d("chain", lib);
  const vertex_id a = d.add_op(si::op_kind::add, {}, "a");
  const vertex_id b = d.add_op(si::op_kind::add, {a}, "b");
  d.add_op(si::op_kind::add, {b}, "c");
  sh::schedule s = sh::asap_schedule(d);
  return {std::move(d), std::move(s)};
}

} // namespace

TEST(Lifetime, ChainLifetimesAreBackToBack) {
  const si::resource_library lib;
  si::dfg d("chain", lib);
  const vertex_id a = d.add_op(si::op_kind::add, {}, "a");
  const vertex_id b = d.add_op(si::op_kind::add, {a}, "b");
  const vertex_id c = d.add_op(si::op_kind::add, {b}, "c");
  const sh::schedule s = sh::asap_schedule(d);
  const auto lifetimes = sr::compute_lifetimes(d, s);
  ASSERT_EQ(lifetimes.size(), 3u);
  // a: defined at 1, consumed by b at 1 -> clamped to one cycle [1, 2).
  EXPECT_EQ(lifetimes[0].producer, a);
  EXPECT_EQ(lifetimes[0].def, 1);
  EXPECT_EQ(lifetimes[0].last_use, 2);
  // c: primary output, handed off the cycle it is produced: [3, 4).
  EXPECT_EQ(lifetimes[2].producer, c);
  EXPECT_EQ(lifetimes[2].def, 3);
  EXPECT_EQ(lifetimes[2].last_use, 4);
  EXPECT_EQ(sr::max_live(lifetimes), 1);
}

TEST(Lifetime, IncompleteScheduleRejected) {
  const si::resource_library lib;
  si::dfg d("t", lib);
  d.add_op(si::op_kind::add, {});
  sh::schedule s;
  s.start = {-1};
  EXPECT_THROW((void)sr::compute_lifetimes(d, s), softsched::precondition_error);
}

TEST(Lifetime, StoresProduceNoRegisterValue) {
  const si::resource_library lib;
  si::dfg d("t", lib);
  const vertex_id a = d.add_op(si::op_kind::add, {}, "a");
  d.add_op(si::op_kind::store, {a}, "st");
  const sh::schedule s = sh::asap_schedule(d);
  const auto lifetimes = sr::compute_lifetimes(d, s);
  ASSERT_EQ(lifetimes.size(), 1u);
  EXPECT_EQ(lifetimes[0].producer, a);
}

TEST(Lifetime, ParallelValuesOverlap) {
  const si::resource_library lib;
  si::dfg d("t", lib);
  std::vector<vertex_id> producers;
  for (int i = 0; i < 4; ++i) producers.push_back(d.add_op(si::op_kind::add, {}));
  d.add_op(si::op_kind::add, {producers[0], producers[1]});
  d.add_op(si::op_kind::add, {producers[2], producers[3]});
  const sh::schedule s = sh::asap_schedule(d);
  const auto lifetimes = sr::compute_lifetimes(d, s);
  EXPECT_EQ(sr::max_live(lifetimes), 4); // all four inputs alive at cycle 1
  EXPECT_EQ(sr::peak_cycle(lifetimes), 1);
}

TEST(LeftEdge, UsesExactlyMaxLiveRegisters) {
  const si::resource_library lib;
  for (const si::dfg& d : si::figure3_benchmarks(lib)) {
    const sh::schedule s = sh::list_schedule(d, si::figure3_constraint(0));
    const auto lifetimes = sr::compute_lifetimes(d, s);
    const sr::register_binding binding = sr::left_edge_allocate(lifetimes);
    EXPECT_EQ(binding.register_count, sr::max_live(lifetimes))
        << d.name() << ": left-edge must be optimal on intervals";
    // No two overlapping values share a register.
    for (std::size_t i = 0; i < lifetimes.size(); ++i) {
      for (std::size_t j = i + 1; j < lifetimes.size(); ++j) {
        if (binding.reg[i] != binding.reg[j]) continue;
        const bool overlap = lifetimes[i].def < lifetimes[j].last_use &&
                             lifetimes[j].def < lifetimes[i].last_use;
        EXPECT_FALSE(overlap) << d.name() << ": register shared by overlapping values";
      }
    }
  }
}

TEST(LeftEdge, EmptyInput) {
  const sr::register_binding binding = sr::left_edge_allocate({});
  EXPECT_EQ(binding.register_count, 0);
  EXPECT_TRUE(binding.reg.empty());
}

TEST(Spill, NoSpillWhenBudgetSuffices) {
  const si::resource_library lib;
  const auto [d, s] = tiny_chain(lib);
  const auto lifetimes = sr::compute_lifetimes(d, s);
  const sr::spill_plan plan = sr::choose_spills(d, lifetimes, 8);
  EXPECT_TRUE(plan.values.empty());
}

TEST(Spill, ReducesDemandToBudget) {
  // FIR16 keeps multiplier results alive across the adder tree: real,
  // spillable pressure (demand exceeds the one-cycle floor).
  const si::resource_library lib;
  const si::dfg d = si::make_fir(lib, 16);
  const sh::schedule s = sh::list_schedule(d, si::figure3_constraint(0));
  auto lifetimes = sr::compute_lifetimes(d, s);
  const int demand = sr::max_live(lifetimes);
  const int floor = sr::min_spillable_demand(d, lifetimes);
  ASSERT_GT(demand, floor) << "workload must have spillable pressure";
  const int budget = std::max(floor, demand - 1);
  const sr::spill_plan plan = sr::choose_spills(d, lifetimes, budget);
  EXPECT_FALSE(plan.values.empty());
  // Re-simulate: shrinking the chosen intervals must reach the budget.
  for (const vertex_id spilled : plan.values) {
    for (auto& lt : lifetimes)
      if (lt.producer == spilled) lt.last_use = lt.def + 1;
  }
  EXPECT_LE(sr::max_live(lifetimes), budget);
}

TEST(Spill, FloorIsExactFeasibilityThreshold) {
  // choose_spills succeeds at exactly the floor and throws just below it.
  const si::resource_library lib;
  const si::dfg d = si::make_fir(lib, 16);
  const sh::schedule s = sh::list_schedule(d, si::figure3_constraint(0));
  const auto lifetimes = sr::compute_lifetimes(d, s);
  const int floor = sr::min_spillable_demand(d, lifetimes);
  ASSERT_GE(floor, 2);
  EXPECT_NO_THROW((void)sr::choose_spills(d, lifetimes, floor));
  EXPECT_THROW((void)sr::choose_spills(d, lifetimes, floor - 1),
               softsched::infeasible_error);
}

TEST(Spill, InvalidBudgetThrows) {
  const si::resource_library lib;
  const auto [d, s] = tiny_chain(lib);
  const auto lifetimes = sr::compute_lifetimes(d, s);
  EXPECT_THROW((void)sr::choose_spills(d, lifetimes, 0), softsched::precondition_error);
}

TEST(Spill, DeterministicSelection) {
  const si::resource_library lib;
  const si::dfg d = si::make_arf(lib);
  const sh::schedule s = sh::list_schedule(d, si::figure3_constraint(1));
  const auto lifetimes = sr::compute_lifetimes(d, s);
  const int demand = sr::max_live(lifetimes);
  if (demand > 2) {
    const auto p1 = sr::choose_spills(d, lifetimes, demand - 1);
    const auto p2 = sr::choose_spills(d, lifetimes, demand - 1);
    EXPECT_EQ(p1.values, p2.values);
  }
}
