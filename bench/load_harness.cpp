// load_harness - focused runner for the open-loop overload scenario
// against the resident scheduling service: warm the cache, measure the
// closed-loop sustainable rate, then replay the zipf mix at 2x that rate
// and report the SLO block (p99, drop rate, goodput, peak queue depth) -
// the same block perf_harness embeds into BENCH_softsched.json (see
// bench/load_scenario.h).
//
// Usage: load_harness [--quick] [--out PATH] [--seed N] [--jobs N]
//                     [--retry] [--cache-dir DIR] [--disk-cache-mb N]
//                     [--connections N]
//   --jobs 0 (default) uses every hardware thread. --quick is accepted for
//   CI-invocation symmetry with perf_harness but changes nothing: the mix
//   is fixed so the gate always compares like against like.
//   --retry turns on the closed-loop bounded-retry client (honors the
//   retry_after_ms hint on shed requests). --cache-dir/--disk-cache-mb
//   give the service a persistent tier - with SOFTSCHED_INJECT io= rules
//   this is the nightly disk-fault storm leg.
//   --connections N switches to the multi-client socket scenario
//   (bench/socket_scenario.h): the same open-loop zipf replay driven over
//   N unix-socket connections against an in-process socket_server, with
//   connection churn - and, under SOFTSCHED_INJECT conn= rules, the
//   nightly connection-churn storm leg. Emits a "socket" block instead of
//   "load".
// Exits nonzero when the scenario's own SLO gate fails.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "load_scenario.h"
#include "socket_scenario.h"

int main(int argc, char** argv) {
  std::string out_path = "BENCH_load.json";
  std::uint64_t seed = 20260729;
  softsched::bench::load_options lopt;
  softsched::bench::socket_load_options sockopt;
  bool socket_mode = false;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        // accepted, no effect: fixed mix (see header comment)
      } else if (arg == "--retry") {
        lopt.retry = true;
      } else if (arg == "--out" && i + 1 < argc) {
        out_path = argv[++i];
      } else if (arg == "--seed" && i + 1 < argc) {
        seed = std::stoull(argv[++i]);
      } else if (arg == "--jobs" && i + 1 < argc) {
        lopt.jobs = static_cast<unsigned>(std::stoul(argv[++i]));
      } else if (arg == "--cache-dir" && i + 1 < argc) {
        lopt.cache_dir = argv[++i];
        if (lopt.disk_cache_bytes == 0) lopt.disk_cache_bytes = 64ull << 20;
      } else if (arg == "--disk-cache-mb" && i + 1 < argc) {
        lopt.disk_cache_bytes = std::stoull(argv[++i]) << 20;
      } else if (arg == "--connections" && i + 1 < argc) {
        socket_mode = true;
        sockopt.connections = static_cast<unsigned>(std::stoul(argv[++i]));
        if (sockopt.connections == 0) throw std::invalid_argument(arg);
      } else {
        throw std::invalid_argument(arg);
      }
    }
  } catch (const std::exception&) {
    std::cerr << "usage: load_harness [--quick] [--out PATH] [--seed N] [--jobs N]"
                 " [--retry] [--cache-dir DIR] [--disk-cache-mb N]"
                 " [--connections N]\n";
    return 2;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }

  softsched::json_writer j(out);
  j.begin_object();
  j.member("schema", "softsched-load-v1");
  j.member("seed", seed);
  bool ok = false;
  if (socket_mode) {
    sockopt.jobs = lopt.jobs;
    j.key("socket");
    ok = softsched::bench::write_socket_scenario(j, seed, sockopt);
  } else {
    j.key("load");
    ok = softsched::bench::write_load_scenario(j, seed, lopt);
  }
  j.end_object();
  out << '\n';
  if (!j.done() || !out) {
    std::cerr << "failed to emit well-formed JSON to " << out_path << "\n";
    return 1;
  }
  std::cerr << "load_harness: wrote " << out_path << (ok ? "" : " (SLO FAILED)") << "\n";
  return ok ? 0 : 1;
}
