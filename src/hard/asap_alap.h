// asap_alap.h - unconstrained as-soon-as-possible / as-late-as-possible
// schedules and operation mobility. ALAP of the input DFG is what the
// paper's Figure 1 (b) shows as "the" hard schedule; mobility feeds the
// force-directed baseline.
#pragma once

#include "hard/schedule.h"

namespace softsched::hard {

/// ASAP: every operation starts as soon as its predecessors finish.
/// Makespan equals the graph diameter (critical path).
[[nodiscard]] schedule asap_schedule(const ir::dfg& d);

/// ALAP against a target latency (must be >= the critical path, or
/// precondition_error is thrown). Operations start as late as possible.
[[nodiscard]] schedule alap_schedule(const ir::dfg& d, long long latency);

/// alap.start - asap.start per op under the given latency; the "time
/// frame" width + 1 of force-directed scheduling.
[[nodiscard]] std::vector<long long> mobility(const ir::dfg& d, long long latency);

} // namespace softsched::hard
