#!/usr/bin/env python3
"""Documentation checks for CI.

Two subcommands, both run by the `docs` job:

  links    — scan README.md and docs/*.md for dead *relative* links:
             every [text](target) whose target is a path inside the repo
             must exist. External links (http/https/mailto), pure
             anchors, and site-relative paths that escape the checkout
             (e.g. the CI badge's ../../actions/...) are skipped — the
             checker validates the repo, not the internet.

  examples — extract the fenced ```sh blocks from a markdown file and run
             them sequentially, in one shared scratch directory, with the
             built CLI's directory prepended to PATH. docs/SERVING.md's
             worked examples are written to pass verbatim, so a schema
             drift between the docs and the CLI fails CI.

Usage:
  check_docs.py links [REPO_ROOT]
  check_docs.py examples FILE.md --cli PATH/TO/softsched_cli
"""

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path

# [text](target) — good enough for these docs; fenced code is stripped
# first so example snippets cannot contribute false links.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE = re.compile(r"```.*?```", re.DOTALL)


def check_links(root: Path) -> int:
    failures = []
    docs = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    for doc in docs:
        if not doc.exists():
            failures.append(f"{doc}: file listed for checking does not exist")
            continue
        text = FENCE.sub("", doc.read_text())
        for target in LINK.findall(text):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # pure #anchor
                continue
            resolved = (doc.parent / path_part).resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                continue  # site-relative (badge links), not a repo path
            if not resolved.exists():
                failures.append(f"{doc.relative_to(root)}: dead link -> {target}")
    for failure in failures:
        print(f"check_docs: {failure}", file=sys.stderr)
    if not failures:
        print(f"check_docs: links ok across {len(docs)} documents")
    return 1 if failures else 0


def run_examples(doc: Path, cli: Path, workdir: Path) -> int:
    blocks = re.findall(r"```sh\n(.*?)```", doc.read_text(), re.DOTALL)
    if not blocks:
        print(f"check_docs: no sh blocks found in {doc}", file=sys.stderr)
        return 1
    env = dict(os.environ)
    env["PATH"] = f"{cli.resolve().parent}{os.pathsep}{env['PATH']}"
    for index, block in enumerate(blocks, 1):
        script = "set -euo pipefail\n" + block
        print(f"check_docs: running {doc.name} example block {index}/{len(blocks)}")
        result = subprocess.run(
            ["bash", "-c", script], cwd=workdir, env=env
        )
        if result.returncode != 0:
            print(
                f"check_docs: {doc.name} example block {index} failed "
                f"(exit {result.returncode}):\n{block}",
                file=sys.stderr,
            )
            return 1
    print(f"check_docs: all {len(blocks)} example blocks passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    links = sub.add_parser("links")
    links.add_argument("root", nargs="?", default=".")
    examples = sub.add_parser("examples")
    examples.add_argument("doc")
    examples.add_argument("--cli", required=True)
    examples.add_argument("--workdir", default=None)
    args = parser.parse_args()

    if args.command == "links":
        return check_links(Path(args.root))
    cli = Path(args.cli)
    if not cli.exists():
        print(f"check_docs: CLI not found at {cli}", file=sys.stderr)
        return 1
    import tempfile

    if args.workdir:
        return run_examples(Path(args.doc).resolve(), cli, Path(args.workdir))
    with tempfile.TemporaryDirectory() as scratch:
        return run_examples(Path(args.doc).resolve(), cli, Path(scratch))


if __name__ == "__main__":
    sys.exit(main())
