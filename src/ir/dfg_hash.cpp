#include "ir/dfg_hash.h"

#include <algorithm>
#include <set>

#include "graph/topo.h"
#include "util/check.h"

namespace softsched::ir {

namespace {

using graph::vertex_id;

/// SplitMix64 finalizer - the avalanche step all mixing goes through.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Two independently-seeded 64-bit lanes absorbed in lockstep; together
/// they form the 128-bit digest.
struct hasher128 {
  std::uint64_t a = 0x736f6674736368ULL; // "softsch"
  std::uint64_t b = 0x64666768617368ULL; // "dfghash"

  void absorb(std::uint64_t x) noexcept {
    a = mix64(a ^ x);
    b = mix64(b + (x * 0xd1342543de82ef95ULL | 1));
  }
};

std::size_t distinct_count(std::vector<std::uint64_t> values) {
  std::sort(values.begin(), values.end());
  return static_cast<std::size_t>(
      std::unique(values.begin(), values.end()) - values.begin());
}

/// Per-vertex structural signatures. Seed: a forward hash over the full
/// predecessor cone and a backward hash over the full successor cone
/// (whole-depth information in two topological passes). Sharpened by
/// bounded bidirectional Weisfeiler-Leman rounds - each round mixes every
/// vertex's signature with the sorted signatures of its direct
/// predecessors and successors - until the signature partition stops
/// refining. The seed alone cannot separate signature-equal vertices whose
/// *neighbours* are separated (the cone hash of a neighbour does not see
/// that neighbour's other edges); the WL rounds propagate exactly that
/// information. Neighbour hashes always enter as a sorted sequence so the
/// result is independent of adjacency-list order.
std::vector<std::uint64_t> structural_signatures(const dfg& d,
                                                 const std::vector<vertex_id>& topo) {
  const graph::precedence_graph& g = d.graph();
  const std::size_t n = g.vertex_count();
  std::vector<std::uint64_t> forward(n), backward(n), sig(n);
  std::vector<std::uint64_t> neighbour;

  const auto local = [&](vertex_id v) {
    return mix64((static_cast<std::uint64_t>(d.kind(v)) << 32) ^
                 static_cast<std::uint64_t>(static_cast<std::uint32_t>(g.delay(v))));
  };

  for (const vertex_id v : topo) {
    neighbour.clear();
    for (const vertex_id p : g.preds(v)) neighbour.push_back(forward[p.value()]);
    std::sort(neighbour.begin(), neighbour.end());
    std::uint64_t h = local(v);
    for (const std::uint64_t ph : neighbour) h = mix64(h ^ ph);
    forward[v.value()] = h;
  }
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const vertex_id v = *it;
    neighbour.clear();
    for (const vertex_id s : g.succs(v)) neighbour.push_back(backward[s.value()]);
    std::sort(neighbour.begin(), neighbour.end());
    std::uint64_t h = local(v);
    for (const std::uint64_t sh : neighbour) h = mix64(h ^ sh);
    backward[v.value()] = h;
  }
  for (std::size_t i = 0; i < n; ++i)
    sig[i] = mix64(forward[i] ^ (backward[i] * 0x2545f4914f6cdd1dULL));

  // WL rounds. The cap bounds the cost on deep uniform structures (a long
  // chain refines one layer per round but its Kahn order is forced by the
  // topology anyway); realistic asymmetries resolve within a few hops.
  constexpr int max_rounds = 16;
  std::vector<std::uint64_t> next(n);
  std::size_t classes = distinct_count(sig);
  for (int round = 0; round < max_rounds && classes < n; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      const vertex_id v(static_cast<std::uint32_t>(i));
      std::uint64_t h = mix64(sig[i]);
      neighbour.clear();
      for (const vertex_id p : g.preds(v)) neighbour.push_back(sig[p.value()]);
      std::sort(neighbour.begin(), neighbour.end());
      h = mix64(h ^ 0x70726564ULL); // "pred" separator: direction matters
      for (const std::uint64_t ph : neighbour) h = mix64(h ^ ph);
      neighbour.clear();
      for (const vertex_id s : g.succs(v)) neighbour.push_back(sig[s.value()]);
      std::sort(neighbour.begin(), neighbour.end());
      h = mix64(h ^ 0x73756363ULL); // "succ" separator
      for (const std::uint64_t sh : neighbour) h = mix64(h ^ sh);
      next[i] = h;
    }
    sig.swap(next);
    const std::size_t refined = distinct_count(sig);
    if (refined <= classes) break; // partition stable
    classes = refined;
  }
  return sig;
}

} // namespace

std::string dfg_digest::hex() const {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = digits[(hi >> (4 * i)) & 0xF];
    out[static_cast<std::size_t>(31 - i)] = digits[(lo >> (4 * i)) & 0xF];
  }
  return out;
}

std::vector<graph::vertex_id> canonical_topo_order(const dfg& d) {
  const graph::precedence_graph& g = d.graph();
  // Any topological order works as the hash processing order (throws
  // graph_error on cycles for us).
  const std::vector<vertex_id> topo = graph::topological_order(g);
  const std::vector<std::uint64_t> sig = structural_signatures(d, topo);

  // Kahn's algorithm with the ready set ordered by structural signature.
  // The vertex id only breaks signature ties, where candidates are
  // symmetric (up to collision), so the emitted *record sequence* - and
  // hence the digest - does not depend on the numbering.
  const std::size_t n = g.vertex_count();
  std::vector<std::size_t> missing(n);
  std::set<std::pair<std::uint64_t, std::uint32_t>> ready;
  std::vector<vertex_id> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const vertex_id v(static_cast<std::uint32_t>(i));
    missing[i] = g.preds(v).size();
    if (missing[i] == 0) ready.emplace(sig[i], v.value());
  }
  while (!ready.empty()) {
    const auto [vsig, value] = *ready.begin();
    ready.erase(ready.begin());
    const vertex_id v(value);
    order.push_back(v);
    for (const vertex_id s : g.succs(v))
      if (--missing[s.value()] == 0) ready.emplace(sig[s.value()], s.value());
  }
  return order;
}

dfg_digest canonical_dfg_digest(const dfg& d) {
  return canonical_dfg_digest(d, canonical_topo_order(d));
}

dfg_digest canonical_dfg_digest(const dfg& d, const std::vector<vertex_id>& order) {
  const graph::precedence_graph& g = d.graph();
  SOFTSCHED_EXPECT(order.size() == g.vertex_count(),
                   "canonical order does not cover the graph");

  std::vector<std::uint32_t> canonical_index(g.vertex_count());
  for (std::size_t i = 0; i < order.size(); ++i)
    canonical_index[order[i].value()] = static_cast<std::uint32_t>(i);

  hasher128 h;
  h.absorb(g.vertex_count());
  h.absorb(g.edge_count());
  std::vector<std::uint32_t> preds;
  for (const vertex_id v : order) {
    preds.clear();
    for (const vertex_id p : g.preds(v)) preds.push_back(canonical_index[p.value()]);
    std::sort(preds.begin(), preds.end());
    h.absorb((static_cast<std::uint64_t>(d.kind(v)) << 32) ^
             static_cast<std::uint64_t>(static_cast<std::uint32_t>(g.delay(v))));
    h.absorb(preds.size());
    for (const std::uint32_t p : preds) h.absorb(p);
  }
  return dfg_digest{h.a, h.b};
}

dfg canonical_form(const dfg& d, const std::vector<vertex_id>& canonical_order,
                   const resource_library& library) {
  const graph::precedence_graph& g = d.graph();
  SOFTSCHED_EXPECT(canonical_order.size() == g.vertex_count(),
                   "canonical order does not cover the graph");
  std::vector<std::uint32_t> canonical_index(g.vertex_count());
  for (std::size_t i = 0; i < canonical_order.size(); ++i)
    canonical_index[canonical_order[i].value()] = static_cast<std::uint32_t>(i);

  dfg canon(d.name(), library);
  std::vector<vertex_id> preds;
  for (std::size_t ci = 0; ci < canonical_order.size(); ++ci) {
    const vertex_id source = canonical_order[ci];
    preds.clear();
    for (const vertex_id p : g.preds(source))
      preds.push_back(vertex_id(canonical_index[p.value()]));
    // Sorted predecessor lists make the canonical form a pure function of
    // the digest's record sequence, not of the source's adjacency order.
    std::sort(preds.begin(), preds.end());
    vertex_id added;
    if (d.kind(source) == op_kind::wire) {
      added = canon.add_wire(g.delay(source), {});
      for (const vertex_id p : preds) canon.add_dependence(p, added);
    } else {
      added = canon.add_op(d.kind(source), std::span<const vertex_id>(preds));
    }
    // Delays are copied verbatim rather than re-derived from the library,
    // so canonical_form(d).digest == d.digest holds unconditionally.
    canon.graph().set_delay(added, g.delay(source));
  }
  return canon;
}

dfg_digest schedule_key(const dfg_digest& digest, const resource_set& resources,
                        std::uint64_t option_salt) {
  hasher128 h;
  h.a = digest.hi;
  h.b = digest.lo;
  h.absorb(static_cast<std::uint64_t>(static_cast<std::uint32_t>(resources.alus)) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(resources.multipliers))
            << 32));
  h.absorb(static_cast<std::uint64_t>(static_cast<std::uint32_t>(resources.memory_ports)));
  h.absorb(option_salt);
  return dfg_digest{h.a, h.b};
}

dfg_digest schedule_key(const dfg& d, const resource_set& resources,
                        std::uint64_t option_salt) {
  return schedule_key(canonical_dfg_digest(d), resources, option_salt);
}

} // namespace softsched::ir
