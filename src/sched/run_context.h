// run_context.h - the request/context pair of the scheduler-backend API:
//
//   backend.run(run_request, run_context&) -> backend_outcome
//
// run_request aggregates everything one scheduling run consumes (design,
// library, allocation, options) so future constraint fields - the ROADMAP
// item-4 memory-bank/window work - extend the struct instead of breaking
// the signature again.
//
// run_context is the reusable per-WORKER scratch object: an arena plus the
// staging buffers (thread tags, meta-order, label/closure/worklist arrays
// inside the threaded state) that the soft backend re-fills on every run.
// Per-worker, not per-request: a serve worker schedules thousands of
// canonical designs back to back, and the whole point is that run N+1
// reuses the blocks run N warmed up - begin_run() tears the previous
// state down and rewinds the arena in O(1), so a warmed-up worker runs
// heap-silent (docs/DESIGN.md §8). Contexts are single-threaded by
// construction; ownership by exactly one worker is the synchronization.
//
// Arena off (arena_mode::off) is the cross-validated heap baseline, the
// same escape-hatch pattern as threaded_graph::set_incremental(false):
// every backend outcome must be byte-identical in both modes - only cost
// differs - and CI's paranoid storm schedules both side by side.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/threaded_graph.h"
#include "ir/dfg.h"
#include "ir/resource.h"
#include "meta/meta_schedule.h"
#include "util/arena.h"

namespace softsched::sched {

/// Per-run knobs. Fields a backend does not consume are ignored (but still
/// participate in the serve cache key via the meta salt - see
/// backend_option_salt in backend.h).
struct backend_options {
  meta::meta_kind meta = meta::meta_kind::list_priority; ///< soft feed order; never `random`
  /// Force-directed latency budget; -1 = search the smallest budget whose
  /// FDS schedule fits the allocation (what makes FDS resource-comparable).
  long long fds_latency = -1;
  /// sdc-iter refinement budget: the maximum number of re-scheduling
  /// iterations past the base run. 0 = base schedule only (byte-for-byte
  /// the soft backend); -1 = sdc_iter_default_budget. Ignored by
  /// non-iterative backends.
  long long iter_budget = -1;
};

/// Everything one backend run consumes. The referenced objects must
/// outlive the run() call (not the context - the context never retains
/// them past begin_run() of the next run).
struct run_request {
  const ir::dfg& design;
  const ir::resource_library& library; ///< the library design's delays were baked from
  const ir::resource_set& resources;   ///< the unit allocation to respect
  backend_options options = {};
};

/// Whether a run_context backs the scheduling state with its arena or with
/// plain heap allocation (the measurable baseline).
enum class arena_mode { off, on };

class run_context {
public:
  explicit run_context(arena_mode mode = arena_mode::on,
                       std::size_t arena_block_bytes = util::arena::default_block_bytes);
  ~run_context();

  run_context(const run_context&) = delete;
  run_context& operator=(const run_context&) = delete;

  /// The backing arena; nullptr in heap mode. Passed straight into the
  /// threaded state's storage by the soft backend.
  [[nodiscard]] util::arena* arena() noexcept { return arena_.get(); }
  [[nodiscard]] bool arena_enabled() const noexcept { return arena_ != nullptr; }

  /// Starts a fresh run: destroys the previous run's state (its storage
  /// lives in the arena, so destruction must precede the rewind), then
  /// rewinds the arena in O(1) keeping its blocks. Every backend calls
  /// this once on entry to run().
  void begin_run();

  /// Runs started on this context since construction.
  [[nodiscard]] std::uint64_t runs() const noexcept { return runs_; }

  /// Arena counters, or nullptr in heap mode.
  [[nodiscard]] const util::arena_stats* arena_stats() const noexcept {
    return arena_ != nullptr ? &arena_->stats() : nullptr;
  }

  /// Folds one run's kernel counters into `totals` (the per-worker stats
  /// sink the serve engine and harnesses can aggregate without re-walking
  /// outcomes).
  void accumulate(const core::schedule_stats& s) noexcept;

  // -- backend scratch ----------------------------------------------------
  // Owned by the backend between begin_run() and the end of run(); opaque
  // (and possibly dangling into the previous request's graph) outside that
  // window. Consumers must not touch these.

  /// The soft scheduling state, rebuilt per run over the context's arena.
  std::optional<core::threaded_graph> state;
  /// Thread-tag staging for core::make_hls_state.
  std::vector<int> thread_tags;
  /// meta::meta_schedule internal buffers + the order it emits.
  meta::meta_scratch meta;
  std::vector<graph::vertex_id> meta_order;

  /// Kernel counters accumulated across runs (see accumulate()).
  core::schedule_stats totals;

private:
  std::unique_ptr<util::arena> arena_; ///< null in heap mode
  std::uint64_t runs_ = 0;
};

} // namespace softsched::sched
