// thread_pool.h - a small work-stealing thread pool for coarse-grained,
// independent jobs (one design-space-exploration point each). This is the
// first concurrency layer in the repository, so the contract is deliberately
// narrow:
//
//   * Jobs are fire-and-forget closures; results travel through whatever
//     storage the closure captures (the DSE engine gives every job its own
//     pre-allocated result slot, so no synchronization is needed on the
//     result path and outcomes are independent of scheduling order).
//   * Jobs must not throw. A job that lets an exception escape would
//     std::terminate the process (it is running on a worker thread), so the
//     pool catches and latches the first failure instead; wait_idle()
//     rethrows it on the submitting thread.
//   * Determinism is the *caller's* property: the pool promises only that
//     every submitted job runs exactly once (or is explicitly cancelled),
//     never that jobs run in submission order. Callers that want identical
//     results for any worker count must make jobs independent - see
//     docs/DESIGN.md §5.
//
// Topology: one deque per worker. submit() deals jobs round-robin across
// the deques; a worker pops from the front of its own deque and, when
// empty, steals from the back of a sibling's - so an unlucky distribution
// rebalances itself. Queue operations are serialized under one pool mutex
// (see the locking note in thread_pool.cpp): jobs are milliseconds-coarse,
// queue ops are nanoseconds, and the single lock makes claim/cancel
// accounting exact - the stealing *policy* and the API would not change if
// the lock were later sharded per lane.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace softsched {

class thread_pool {
public:
  using job = std::function<void()>;

  /// Spins up `worker_count` threads (clamped to >= 1).
  explicit thread_pool(unsigned worker_count);

  /// Cancels every job that has not started, waits for in-flight jobs to
  /// finish, and joins the workers. Never blocks on *pending* work - a
  /// full queue at destruction time is discarded, not drained.
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues one job. Throws precondition_error after shutdown began.
  void submit(job j);

  /// Blocks until every submitted job has either run or been cancelled.
  /// If any job threw, rethrows the first such exception here (once).
  void wait_idle();

  /// Discards all jobs that have not started yet and returns how many were
  /// dropped. In-flight jobs are unaffected.
  std::size_t cancel_pending();

  /// max(1, std::thread::hardware_concurrency()) - the default worker
  /// count for "--jobs 0 = use the machine".
  [[nodiscard]] static unsigned hardware_workers() noexcept;

  /// Index of the pool worker the calling thread is, or -1 on any thread
  /// that is not a pool worker (including the thread that owns the pool).
  /// This is how per-worker scratch (sched::run_context) is picked without
  /// a lock: worker i owns slot i, non-workers own the extra slot.
  [[nodiscard]] static int current_worker_index() noexcept;

private:
  // One lane per worker. Workers pop their own lane's front; thieves take
  // a victim's back. Guarded by state_mutex_.
  struct lane {
    std::deque<job> jobs;
  };

  bool try_pop(std::size_t self, job& out);

  void worker_main(std::size_t self);

  std::vector<std::unique_ptr<lane>> lanes_;
  std::vector<std::thread> workers_;

  // Sleep/wake + lifecycle. outstanding_ counts submitted-but-unfinished
  // jobs (pending + in flight); guarded by state_mutex_ so wait_idle() and
  // the workers agree on "idle".
  std::mutex state_mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t outstanding_ = 0;
  std::size_t next_lane_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Runs fn(0) .. fn(count - 1), fanning out over `pool`. Blocks until all
/// calls finished; rethrows the first job exception. A null pool (or a
/// 1-worker pool) still runs everything - just without parallelism.
void parallel_for_index(thread_pool* pool, std::size_t count,
                        const std::function<void(std::size_t)>& fn);

} // namespace softsched
