// lang_test.cpp - the behavioral front-end: lexer tokens, expression
// parsing (precedence, parentheses), input-vs-defined-value resolution,
// error reporting, and the flagship check: compiling the HAL source text
// reproduces the canonical HAL benchmark DFG op-for-op.
#include <gtest/gtest.h>

#include "graph/distances.h"
#include "ir/benchmarks.h"
#include "lang/lexer.h"
#include "lang/parser.h"

namespace si = softsched::ir;
namespace sl = softsched::lang;
namespace sg = softsched::graph;
using sg::vertex_id;

TEST(Lexer, TokenizesAllKinds) {
  const auto tokens = sl::tokenize("x1 = x + 3*(y - z) < w;");
  ASSERT_EQ(tokens.size(), 15u); // 14 tokens + end_of_input
  EXPECT_EQ(tokens[0].kind, sl::token_kind::identifier);
  EXPECT_EQ(tokens[0].text, "x1");
  EXPECT_EQ(tokens[1].kind, sl::token_kind::assign);
  EXPECT_EQ(tokens[3].kind, sl::token_kind::plus);
  EXPECT_EQ(tokens[4].kind, sl::token_kind::number);
  EXPECT_EQ(tokens[4].text, "3");
  EXPECT_EQ(tokens[5].kind, sl::token_kind::star);
  EXPECT_EQ(tokens[6].kind, sl::token_kind::lparen);
  EXPECT_EQ(tokens[8].kind, sl::token_kind::minus);
  EXPECT_EQ(tokens[10].kind, sl::token_kind::rparen);
  EXPECT_EQ(tokens[11].kind, sl::token_kind::less);
  EXPECT_EQ(tokens[13].kind, sl::token_kind::semicolon);
  EXPECT_EQ(tokens[14].kind, sl::token_kind::end_of_input);
}

TEST(Lexer, TracksLinesAndColumns) {
  const auto tokens = sl::tokenize("a = b;\n cc = d;");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[4].text, "cc");
  EXPECT_EQ(tokens[4].line, 2);
  EXPECT_EQ(tokens[4].column, 2);
}

TEST(Lexer, SkipsComments) {
  const auto tokens = sl::tokenize("# full line\na = b + c; # trailing\n");
  EXPECT_EQ(tokens.size(), 7u);
  EXPECT_EQ(tokens[0].text, "a");
}

TEST(Lexer, RejectsUnknownCharacters) {
  EXPECT_THROW((void)sl::tokenize("a = b $ c;"), sl::parse_error);
  try {
    (void)sl::tokenize("a = b\n  @ c;");
    FAIL();
  } catch (const sl::parse_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, SingleOperation) {
  const si::resource_library lib;
  const si::dfg d = sl::compile_behavior("s = a + b;", "t", lib);
  EXPECT_EQ(d.op_count(), 1u);
  EXPECT_EQ(d.kind(si::find_op(d, "s")), si::op_kind::add);
  EXPECT_TRUE(d.graph().preds(si::find_op(d, "s")).empty()) << "a, b are free inputs";
}

TEST(Parser, PrecedenceMulBeforeAdd) {
  const si::resource_library lib;
  const si::dfg d = sl::compile_behavior("y = a + b * c;", "t", lib);
  // b*c is an operand of the add: mul -> add edge.
  ASSERT_EQ(d.op_count(), 2u);
  const vertex_id add = si::find_op(d, "y");
  EXPECT_EQ(d.kind(add), si::op_kind::add);
  ASSERT_EQ(d.graph().preds(add).size(), 1u);
  EXPECT_EQ(d.kind(d.graph().preds(add)[0]), si::op_kind::mul);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  const si::resource_library lib;
  const si::dfg d = sl::compile_behavior("y = (a + b) * c;", "t", lib);
  ASSERT_EQ(d.op_count(), 2u);
  const vertex_id mul = si::find_op(d, "y");
  EXPECT_EQ(d.kind(mul), si::op_kind::mul);
  ASSERT_EQ(d.graph().preds(mul).size(), 1u);
  EXPECT_EQ(d.kind(d.graph().preds(mul)[0]), si::op_kind::add);
}

TEST(Parser, CompareBindsLoosest) {
  const si::resource_library lib;
  const si::dfg d = sl::compile_behavior("c = a + b < x * y;", "t", lib);
  ASSERT_EQ(d.op_count(), 3u);
  const vertex_id cmp = si::find_op(d, "c");
  EXPECT_EQ(d.kind(cmp), si::op_kind::compare);
  EXPECT_EQ(d.graph().preds(cmp).size(), 2u); // the add and the mul
}

TEST(Parser, DefinedValuesBecomeDependences) {
  const si::resource_library lib;
  const si::dfg d = sl::compile_behavior("t1 = a * b;\nt2 = t1 + c;\nt3 = t1 + t2;", "t", lib);
  ASSERT_EQ(d.op_count(), 3u);
  const vertex_id t1 = si::find_op(d, "t1");
  const vertex_id t2 = si::find_op(d, "t2");
  const vertex_id t3 = si::find_op(d, "t3");
  EXPECT_TRUE(d.graph().has_edge(t1, t2));
  EXPECT_TRUE(d.graph().has_edge(t1, t3));
  EXPECT_TRUE(d.graph().has_edge(t2, t3));
}

TEST(Parser, LeftAssociativeChains) {
  const si::resource_library lib;
  // a - b - c must parse as (a - b) - c: two subs chained.
  const si::dfg d = sl::compile_behavior("r = a - b - c;", "t", lib);
  ASSERT_EQ(d.op_count(), 2u);
  const vertex_id root = si::find_op(d, "r");
  ASSERT_EQ(d.graph().preds(root).size(), 1u);
  EXPECT_EQ(d.kind(d.graph().preds(root)[0]), si::op_kind::sub);
}

TEST(Parser, SyntaxErrors) {
  const si::resource_library lib;
  EXPECT_THROW((void)sl::compile_behavior("x = ;", "t", lib), sl::parse_error);
  EXPECT_THROW((void)sl::compile_behavior("x = a + b", "t", lib), sl::parse_error);
  EXPECT_THROW((void)sl::compile_behavior("= a + b;", "t", lib), sl::parse_error);
  EXPECT_THROW((void)sl::compile_behavior("x = (a + b;", "t", lib), sl::parse_error);
  EXPECT_THROW((void)sl::compile_behavior("x = a ++ b;", "t", lib), sl::parse_error);
}

TEST(Parser, BareOperandStatementRejected) {
  const si::resource_library lib;
  // "x = a;" computes nothing - there is no operation to schedule.
  EXPECT_THROW((void)sl::compile_behavior("x = a;", "t", lib), sl::parse_error);
  EXPECT_THROW((void)sl::compile_behavior("x = 42;", "t", lib), sl::parse_error);
}

TEST(Parser, HalSourceReproducesCanonicalBenchmark) {
  // The flagship front-end check: the diffeq body from the paper's era
  // compiles to the same op mix and critical path as the hand-built HAL.
  const si::resource_library lib;
  // Parenthesized as in the canonical balanced decomposition: (3x)(u dx)
  // rather than the left-associative ((3x)u)dx chain.
  const si::dfg compiled = sl::compile_behavior(
      "x1 = x + dx;\n"
      "u1 = u - (3*x)*(u*dx) - (3*y)*dx;\n"
      "y1 = y + u*dx;\n"
      "c  = x1 < a;\n",
      "HAL", lib);
  const si::dfg canonical = si::make_hal(lib);

  EXPECT_EQ(compiled.op_count(), canonical.op_count());
  for (const si::op_kind kind : {si::op_kind::add, si::op_kind::sub, si::op_kind::mul,
                                 si::op_kind::compare}) {
    EXPECT_EQ(compiled.count_kind(kind), canonical.count_kind(kind))
        << si::kind_name(kind);
  }
  EXPECT_EQ(sg::compute_distances(compiled.graph()).diameter,
            sg::compute_distances(canonical.graph()).diameter);
}

TEST(Parser, EmptySourceGivesEmptyDfg) {
  const si::resource_library lib;
  const si::dfg d = sl::compile_behavior("# nothing here\n", "empty", lib);
  EXPECT_EQ(d.op_count(), 0u);
}
