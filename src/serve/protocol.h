// protocol.h - the versioned wire contract of the resident daemon: what
// makes a frame a control frame, which ops exist, and the exact JSON each
// control answer carries. Before this lived here, every transport grew its
// own ad-hoc "op" sniffing; now classify_control() is the single decision
// and the render_* functions are the single source of every control
// payload, shared by the stdio adapter and every socket connection. The
// schema is documented (and pinned by executable examples) in
// docs/SERVING.md §"Wire protocol".
//
// Versioning: `wire_version` counts protocol-breaking changes. A client
// opens with {"op":"hello"} and receives the version plus the transport
// and capability lists; everything it needs to decide whether it can talk
// to this daemon. Unknown ops answer a structured
// {"id":"control","error":"unknown_op","op":"<name>"} - control frames
// never fall through to request parsing, so a typo'd op cannot be
// misread as a malformed scheduling request.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/metrics.h"
#include "serve/transport.h"

namespace softsched::serve {

/// Protocol generation; bumped only on breaking wire changes.
inline constexpr int wire_version = 1;

enum class control_kind {
  none,     ///< not a control frame - submit it as a request
  hello,    ///< version / capability negotiation
  stats,    ///< live counter snapshot
  shutdown, ///< drain, ack, stop
  unknown   ///< an "op" member the daemon does not recognize
};

/// Verdict of classify_control on one payload.
struct control_frame {
  control_kind kind = control_kind::none;
  std::string op; ///< the op as sent; empty when "op" was not a string
};

/// The one rule that separates control frames from requests: a payload
/// that parses as a JSON object carrying an "op" member - of *any* type -
/// is a control frame (the request schema rejects unknown keys, so no
/// request ever carries one). Unrecognized or non-string ops classify as
/// control_kind::unknown; anything unparseable is none, and the service's
/// strict request parser owns its error response.
[[nodiscard]] control_frame classify_control(std::string_view payload);

/// One connection's own live numbers, rendered next to the aggregate in
/// render_stats as the "conn" object.
struct connection_view {
  std::uint64_t frames = 0;   ///< well-formed frames read on this connection
  std::uint64_t requests = 0; ///< frames submitted to the service
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::string transport; ///< this connection's stream label
};

/// {"op":"hello","v":1,"transports":[...],"caps":[...]}
[[nodiscard]] std::string render_hello();

/// {"id":"control","error":"unknown_op","op":"<name>"} (op omitted when
/// the member was not a string).
[[nodiscard]] std::string render_unknown_op(const control_frame& frame);

/// The {"op":"stats"} answer: service counters plus the "conns" aggregate
/// and the asking connection's own "conn" object.
[[nodiscard]] std::string render_stats(const service_stats& s,
                                       const connection_counters_snapshot& conns,
                                       const connection_view& conn);

/// The connection-level shed frame a socket listener answers (and then
/// closes) when --max-conns is reached:
/// {"id":"control","error":"too_many_connections","retry_after_ms":<hint>}.
[[nodiscard]] std::string render_connection_shed(double retry_after_ms);

/// The shutdown ack, always the final frame of its connection:
/// {"op":"shutdown","drained":true,"flushed":<n>}.
[[nodiscard]] std::string render_shutdown_ack(std::size_t flushed);

} // namespace softsched::serve
