// alloc_count.h - process-wide heap-allocation counting for the memory
// micro-profile (bench/perf_harness "memory" block) and the instrumented
// allocation-regression test.
//
// Linking the companion TU (the `softsched_alloc_count` library) replaces
// the global operator new/delete with counting versions backed by malloc/
// free - ASan and UBSan still interpose at the malloc layer, so the nightly
// sanitizer jobs run the instrumented binaries unchanged. Binaries that do
// not link the library are unaffected; referencing heap_alloc_count() is
// what pulls the replacement in (same-TU rule for static archives).
//
// Counters are relaxed atomics: the consumers diff them around a
// single-threaded measured region, so cross-thread ordering is irrelevant
// and the probe stays invisible in the measured cost.
#pragma once

#include <cstdint>

namespace softsched::util {

/// operator new calls since process start.
[[nodiscard]] std::uint64_t heap_alloc_count() noexcept;

/// Bytes requested from operator new since process start.
[[nodiscard]] std::uint64_t heap_alloc_bytes() noexcept;

/// operator delete calls since process start.
[[nodiscard]] std::uint64_t heap_free_count() noexcept;

} // namespace softsched::util
