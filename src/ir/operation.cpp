#include "ir/operation.h"

namespace softsched::ir {

std::string_view mnemonic(op_kind kind) noexcept {
  switch (kind) {
  case op_kind::add: return "+";
  case op_kind::sub: return "-";
  case op_kind::mul: return "*";
  case op_kind::compare: return "<";
  case op_kind::load: return "ld";
  case op_kind::store: return "st";
  case op_kind::move: return "mv";
  case op_kind::wire: return "wd";
  }
  return "?";
}

std::string_view kind_name(op_kind kind) noexcept {
  switch (kind) {
  case op_kind::add: return "add";
  case op_kind::sub: return "sub";
  case op_kind::mul: return "mul";
  case op_kind::compare: return "compare";
  case op_kind::load: return "load";
  case op_kind::store: return "store";
  case op_kind::move: return "move";
  case op_kind::wire: return "wire";
  }
  return "unknown";
}

} // namespace softsched::ir
