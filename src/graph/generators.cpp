#include "graph/generators.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace softsched::graph {

precedence_graph layered_random(const layered_params& params, rng& rand) {
  SOFTSCHED_EXPECT(params.layers >= 1 && params.width >= 1, "layers/width must be positive");
  SOFTSCHED_EXPECT(params.min_delay >= 0 && params.min_delay <= params.max_delay,
                   "invalid delay range");
  precedence_graph g;
  std::vector<std::vector<vertex_id>> layers(static_cast<std::size_t>(params.layers));
  for (int layer = 0; layer < params.layers; ++layer) {
    for (int i = 0; i < params.width; ++i) {
      const int delay = static_cast<int>(rand.range(params.min_delay, params.max_delay));
      layers[static_cast<std::size_t>(layer)].push_back(g.add_vertex(delay));
    }
  }
  for (int layer = 0; layer + 1 < params.layers; ++layer) {
    const auto& from = layers[static_cast<std::size_t>(layer)];
    const auto& to = layers[static_cast<std::size_t>(layer) + 1];
    for (const vertex_id v : to) {
      bool connected = false;
      for (const vertex_id u : from) {
        if (rand.chance(params.edge_prob)) {
          g.add_edge(u, v);
          connected = true;
        }
      }
      if (!connected && params.connect_layers) {
        g.add_edge(from[static_cast<std::size_t>(rand.below(from.size()))], v);
      }
    }
  }
  return g;
}

layered_params layered_for_size(int vertices, double edge_prob, int vertices_per_layer) {
  SOFTSCHED_EXPECT(vertices >= 1, "vertex count must be positive");
  SOFTSCHED_EXPECT(vertices_per_layer >= 1, "vertices_per_layer must be positive");
  layered_params lp;
  lp.layers = std::max(8, vertices / vertices_per_layer);
  lp.width = std::max(1, vertices / lp.layers);
  lp.edge_prob = edge_prob;
  return lp;
}

precedence_graph gnp_dag(int n, double p, int min_delay, int max_delay, rng& rand) {
  SOFTSCHED_EXPECT(n >= 0, "vertex count must be non-negative");
  SOFTSCHED_EXPECT(min_delay >= 0 && min_delay <= max_delay, "invalid delay range");
  precedence_graph g;
  std::vector<vertex_id> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    ids.push_back(g.add_vertex(static_cast<int>(rand.range(min_delay, max_delay))));
  // A hidden random permutation decides edge direction so low vertex ids do
  // not systematically become sources.
  std::vector<vertex_id> perm = ids;
  rand.shuffle(perm);
  for (std::size_t i = 0; i < perm.size(); ++i)
    for (std::size_t j = i + 1; j < perm.size(); ++j)
      if (rand.chance(p)) g.add_edge(perm[i], perm[j]);
  return g;
}

precedence_graph chain(int n, int delay) {
  SOFTSCHED_EXPECT(n >= 0, "vertex count must be non-negative");
  precedence_graph g;
  vertex_id prev = vertex_id::invalid();
  for (int i = 0; i < n; ++i) {
    const vertex_id v = g.add_vertex(delay);
    if (prev.valid()) g.add_edge(prev, v);
    prev = v;
  }
  return g;
}

precedence_graph reduction_tree(int leaves, int leaf_delay, int node_delay) {
  SOFTSCHED_EXPECT(leaves >= 1, "tree needs at least one leaf");
  precedence_graph g;
  std::vector<vertex_id> frontier;
  for (int i = 0; i < leaves; ++i) frontier.push_back(g.add_vertex(leaf_delay));
  while (frontier.size() > 1) {
    std::vector<vertex_id> next;
    for (std::size_t i = 0; i + 1 < frontier.size(); i += 2) {
      const vertex_id parent = g.add_vertex(node_delay);
      g.add_edge(frontier[i], parent);
      g.add_edge(frontier[i + 1], parent);
      next.push_back(parent);
    }
    if (frontier.size() % 2 == 1) next.push_back(frontier.back());
    frontier = std::move(next);
  }
  return g;
}

} // namespace softsched::graph
