#include "meta/meta_schedule.h"

#include <algorithm>

#include "graph/topo.h"
#include "util/check.h"

namespace softsched::meta {

std::string_view meta_name(meta_kind kind) noexcept {
  switch (kind) {
  case meta_kind::depth_first: return "meta sched1";
  case meta_kind::topological: return "meta sched2";
  case meta_kind::path_based: return "meta sched3";
  case meta_kind::list_priority: return "meta sched4";
  case meta_kind::random: return "random";
  }
  return "unknown";
}

namespace {

/// The one list-priority implementation, on caller-owned buffers. The
/// allocating list_priority_order wraps it, so the allocation-free serve
/// path cannot drift from the documented order.
void list_priority_into(const precedence_graph& g, meta_scratch& s,
                        std::vector<vertex_id>& out) {
  const std::size_t n = g.vertex_count();

  // Forward topological order (Kahn) into s.topo, then sink distances by a
  // backward sweep - the same labels graph::compute_distances produces,
  // without its temporaries.
  s.degree.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    s.degree[i] = static_cast<std::int32_t>(g.preds(vertex_id(static_cast<std::uint32_t>(i))).size());
  s.topo.clear();
  s.topo.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    if (s.degree[i] == 0) s.topo.push_back(static_cast<std::int32_t>(i));
  for (std::size_t head = 0; head < s.topo.size(); ++head) {
    const vertex_id u(static_cast<std::uint32_t>(s.topo[head]));
    for (const vertex_id w : g.succs(u))
      if (--s.degree[w.value()] == 0) s.topo.push_back(static_cast<std::int32_t>(w.value()));
  }
  if (s.topo.size() != n) throw graph_error("list_priority_order: graph contains a cycle");
  s.tdist.assign(n, 0);
  for (auto it = s.topo.rbegin(); it != s.topo.rend(); ++it) {
    const vertex_id v(static_cast<std::uint32_t>(*it));
    long long best = 0;
    for (const vertex_id q : g.succs(v)) best = std::max(best, s.tdist[q.value()]);
    s.tdist[static_cast<std::size_t>(*it)] = best + g.delay(v);
  }

  // Max-heap on (sink distance, then lowest id) - the classic critical-path
  // list scheduling priority. push_heap/pop_heap on the scratch vector is
  // exactly what std::priority_queue did here before; the comparator is a
  // strict total order (ids are unique), so the popped sequence is
  // identical on any conforming heap.
  using entry = std::pair<long long, std::uint32_t>;
  const auto cmp = [](const entry& a, const entry& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  };
  s.degree.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    s.degree[i] = static_cast<std::int32_t>(g.preds(vertex_id(static_cast<std::uint32_t>(i))).size());
  s.heap.clear();
  for (std::size_t i = 0; i < n; ++i)
    if (s.degree[i] == 0) {
      s.heap.emplace_back(s.tdist[i], static_cast<std::uint32_t>(i));
      std::push_heap(s.heap.begin(), s.heap.end(), cmp);
    }

  out.clear();
  out.reserve(n);
  while (!s.heap.empty()) {
    std::pop_heap(s.heap.begin(), s.heap.end(), cmp);
    const vertex_id u(s.heap.back().second);
    s.heap.pop_back();
    out.push_back(u);
    for (const vertex_id w : g.succs(u))
      if (--s.degree[w.value()] == 0) {
        s.heap.emplace_back(s.tdist[w.value()], w.value());
        std::push_heap(s.heap.begin(), s.heap.end(), cmp);
      }
  }
}

} // namespace

std::vector<vertex_id> list_priority_order(const precedence_graph& g) {
  meta_scratch scratch;
  std::vector<vertex_id> order;
  list_priority_into(g, scratch, order);
  return order;
}

std::vector<vertex_id> meta_schedule(const precedence_graph& g, meta_kind kind) {
  switch (kind) {
  case meta_kind::depth_first: return graph::depth_first_order(g);
  case meta_kind::topological: return graph::topological_order(g);
  case meta_kind::path_based: {
    std::vector<vertex_id> order;
    order.reserve(g.vertex_count());
    for (const auto& path : graph::path_partition(g))
      order.insert(order.end(), path.begin(), path.end());
    return order;
  }
  case meta_kind::list_priority: return list_priority_order(g);
  case meta_kind::random:
    throw precondition_error("random meta schedule needs an rng; call random_meta_schedule");
  }
  throw precondition_error("unknown meta schedule kind");
}

void meta_schedule(const precedence_graph& g, meta_kind kind, meta_scratch& scratch,
                   std::vector<vertex_id>& out) {
  if (kind == meta_kind::list_priority) {
    list_priority_into(g, scratch, out);
    return;
  }
  out = meta_schedule(g, kind); // non-default kinds keep the allocating path
}

std::vector<vertex_id> random_meta_schedule(const precedence_graph& g, rng& rand) {
  std::vector<vertex_id> order = g.vertices();
  rand.shuffle(order);
  return order;
}

} // namespace softsched::meta
