#include "ir/resource.h"

#include "util/check.h"

namespace softsched::ir {

std::string_view class_name(resource_class cls) noexcept {
  switch (cls) {
  case resource_class::alu: return "alu";
  case resource_class::multiplier: return "multiplier";
  case resource_class::memory_port: return "memory_port";
  case resource_class::wire: return "wire";
  }
  return "unknown";
}

resource_class class_of(op_kind kind) noexcept {
  switch (kind) {
  case op_kind::add:
  case op_kind::sub:
  case op_kind::compare:
  case op_kind::move: return resource_class::alu;
  case op_kind::mul: return resource_class::multiplier;
  case op_kind::load:
  case op_kind::store: return resource_class::memory_port;
  case op_kind::wire: return resource_class::wire;
  }
  return resource_class::alu;
}

resource_library::resource_library() {
  latency_[static_cast<int>(op_kind::add)] = 1;
  latency_[static_cast<int>(op_kind::sub)] = 1;
  latency_[static_cast<int>(op_kind::mul)] = 2;
  latency_[static_cast<int>(op_kind::compare)] = 1;
  latency_[static_cast<int>(op_kind::load)] = 1;
  latency_[static_cast<int>(op_kind::store)] = 1;
  latency_[static_cast<int>(op_kind::move)] = 1;
  latency_[static_cast<int>(op_kind::wire)] = 1; // default; wire vertices override
}

int resource_library::latency(op_kind kind) const noexcept {
  return latency_[static_cast<int>(kind)];
}

void resource_library::set_latency(op_kind kind, int cycles) {
  SOFTSCHED_EXPECT(cycles >= 1, "operation latency must be at least one cycle");
  latency_[static_cast<int>(kind)] = cycles;
}

int resource_set::count(resource_class cls) const noexcept {
  switch (cls) {
  case resource_class::alu: return alus;
  case resource_class::multiplier: return multipliers;
  case resource_class::memory_port: return memory_ports;
  case resource_class::wire: return 0; // dedicated per-vertex, not pooled
  }
  return 0;
}

std::string resource_set::label() const {
  return std::to_string(alus) + "+/-," + std::to_string(multipliers) + "*";
}

resource_set figure3_constraint(int index) {
  // Column groups of Figure 3: "2+/-,2*", "4+/-,4*", "2+/-,1*".
  switch (index) {
  case 0: return resource_set{2, 2, 1};
  case 1: return resource_set{4, 4, 1};
  case 2: return resource_set{2, 1, 1};
  default: throw precondition_error("figure3_constraint index must be 0..2");
  }
}

} // namespace softsched::ir
