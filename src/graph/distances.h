// distances.h - the distance metrics of Definition 1:
//   source distance ||->v||   longest delay-sum over paths PI ... v (incl. v)
//   sink distance   ||v->||   longest delay-sum over paths v ... PO (incl. v)
//   distance        ||->v->|| longest PI ... PO path through v
//   diameter        ||G||     max distance over all vertices (critical path)
#pragma once

#include <vector>

#include "graph/precedence_graph.h"

namespace softsched::graph {

/// All Definition-1 labels of a graph, computed in one pass each direction.
struct distance_labels {
  std::vector<long long> sdist; ///< ||->v||, indexed by vertex id
  std::vector<long long> tdist; ///< ||v->||
  long long diameter = 0;       ///< ||G||

  /// ||->v->|| = sdist + tdist - delay (v's own delay is in both labels).
  [[nodiscard]] long long through(vertex_id v, const precedence_graph& g) const;
};

/// Computes source/sink distances and the diameter. Throws graph_error if
/// the graph is cyclic. O(V + E).
[[nodiscard]] distance_labels compute_distances(const precedence_graph& g);

/// One longest (critical) path from a source to a sink, as a vertex list.
/// Empty for an empty graph. Deterministic tie-breaking (lowest id).
[[nodiscard]] std::vector<vertex_id> critical_path(const precedence_graph& g);

} // namespace softsched::graph
